module github.com/tagspin/tagspin

go 1.22
