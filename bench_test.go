// Benchmarks: one per paper table/figure (wrapping the experiment runners
// at reduced trial counts) plus micro-benchmarks of the hot paths. Run the
// full set with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// and regenerate the full-size tables with cmd/tagspin-bench.
package tagspin_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/experiment"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// benchExperiment runs one experiment per iteration at a reduced trial
// count and reports its headline metric as a custom unit.
func benchExperiment(b *testing.B, id, metric string, scale float64, unit string) {
	b.Helper()
	runner, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(experiment.Options{Seed: 1, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			last = res.Values[metric]
		}
	}
	if metric != "" {
		b.ReportMetric(last*scale, unit)
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig03RawPhase(b *testing.B) {
	benchExperiment(b, "F3", "wrapsPerFiveTurns", 1, "wraps")
}

func BenchmarkFig04Calibration(b *testing.B) {
	benchExperiment(b, "F4", "rmsdAfterOrientation", 1, "rad-resid")
}

func BenchmarkFig05Orientation(b *testing.B) {
	benchExperiment(b, "F5", "peakToPeakRad", 1, "rad-pp")
}

func BenchmarkFig06Profiles2D(b *testing.B) {
	benchExperiment(b, "F6", "sharpnessGain", 1, "R/Q-sharpness")
}

func BenchmarkFig08Profiles3D(b *testing.B) {
	benchExperiment(b, "F8", "mirrorPeaks", 1, "peaks")
}

func BenchmarkFig10aLocalize2D(b *testing.B) {
	benchExperiment(b, "F10a", "meanCombined", 100, "cm-mean")
}

func BenchmarkFig10bLocalize3D(b *testing.B) {
	benchExperiment(b, "F10b", "meanCombined", 100, "cm-mean")
}

func BenchmarkFig11aOrientationSweep(b *testing.B) {
	benchExperiment(b, "F11a", "peakToPeakRad", 1, "rad-pp")
}

func BenchmarkFig11bCalibrationImpact(b *testing.B) {
	benchExperiment(b, "F11b", "improvement", 1, "x-improve")
}

func BenchmarkFig12aCentersDistance(b *testing.B) {
	benchExperiment(b, "F12a", "mean@50cm", 100, "cm-mean")
}

func BenchmarkFig12bRadius(b *testing.B) {
	benchExperiment(b, "F12b", "mean@10cm", 100, "cm-mean")
}

func BenchmarkFig12cTagDiversity(b *testing.B) {
	benchExperiment(b, "F12c", "spread", 100, "cm-spread")
}

func BenchmarkFig12dAntennaDiversity(b *testing.B) {
	benchExperiment(b, "F12d", "mean@antenna1", 100, "cm-mean")
}

func BenchmarkTable1Catalog(b *testing.B) {
	benchExperiment(b, "T1", "models", 1, "models")
}

func BenchmarkTable2Baselines(b *testing.B) {
	benchExperiment(b, "T2", "factor@LandMarc", 1, "x-vs-landmarc")
}

// --- ablation benchmarks ---

func BenchmarkAblationWeightSigma(b *testing.B) {
	benchExperiment(b, "A1", "mean@sigma0.10", 100, "cm-mean")
}

func BenchmarkAblationPeakSearch(b *testing.B) {
	benchExperiment(b, "A2", "speedup", 1, "x-speedup")
}

func BenchmarkAblationReadRate(b *testing.B) {
	benchExperiment(b, "A3", "mean@80Hz", 100, "cm-mean")
}

func BenchmarkAblationMultipath(b *testing.B) {
	benchExperiment(b, "A4", "mean@gamma0.1", 100, "cm-mean")
}

func BenchmarkAblationManyDisks(b *testing.B) {
	benchExperiment(b, "A5", "mean@4disks", 100, "cm-mean")
}

func BenchmarkAblationLiteralReference(b *testing.B) {
	benchExperiment(b, "A6", "ratio", 1, "x-robust-gain")
}

// --- micro-benchmarks of the hot paths ---

// benchSnapshots synthesizes one session's snapshots for profile benches.
func benchSnapshots(b *testing.B) ([]phase.Snapshot, spectrum.Params) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		b.Fatal(err)
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	return snaps, spectrum.Params{Disk: sc.Installs[0].Disk}
}

func BenchmarkSpectrumQ2D(b *testing.B) {
	snaps, params := benchSnapshots(b)
	angles := spectrum.UniformAngles(720)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.Compute2D(snaps, params, spectrum.KindQ, angles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectrumR2D(b *testing.B) {
	snaps, params := benchSnapshots(b)
	angles := spectrum.UniformAngles(720)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.Compute2D(snaps, params, spectrum.KindR, angles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPeak2D(b *testing.B) {
	snaps, params := benchSnapshots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectrum.FindPeak2D(snaps, params, spectrum.KindR, spectrum.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindPeak3D(b *testing.B) {
	snaps, params := benchSnapshots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.FindPeak3D(snaps, params, spectrum.KindR, spectrum.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineLocate2D(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		b.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		b.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Locate2D(registered, col.Obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnwrap(b *testing.B) {
	phases := make([]float64, 4096)
	for i := range phases {
		phases[i] = mathx.WrapPhase(float64(i) * 0.37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.Unwrap(phases)
	}
}

func BenchmarkFitFourier(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 360)
	ys := make([]float64, 360)
	for i := range xs {
		xs[i] = 2 * math.Pi * float64(i) / 360
		ys[i] = 0.3*math.Sin(2*xs[i]) + rng.NormFloat64()*0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mathx.FitFourier(xs, ys, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLLRPReportRoundTrip(b *testing.B) {
	report := &llrp.ROAccessReport{Reports: make([]llrp.TagReportData, 16)}
	for i := range report.Reports {
		report.Reports[i] = llrp.TagReportData{
			AntennaID:       1,
			ChannelIndex:    8,
			PeakRSSI:        -6200,
			PhaseWord:       uint16(i * 255),
			FirstSeenMicros: uint64(i) * 12_500,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := llrp.Encode(uint32(i), report)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := llrp.ReadMessage(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-2.0, 1.0, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		b.Fatal(err)
	}
	// Collect exercised Observe already; measure a fresh scenario's
	// collection throughput per snapshot instead.
	total := 0
	for _, snaps := range col.Obs {
		total += len(snaps)
	}
	if total == 0 {
		b.Fatal("no snapshots")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Collect(rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "snaps/session")
}

func BenchmarkOrientationFit(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	samples := make([]phase.OrientationSample, 320)
	for i := range samples {
		rho := 2 * math.Pi * float64(i) / float64(len(samples))
		samples[i] = phase.OrientationSample{
			Rho:   rho,
			Phase: mathx.WrapPhase(1.2 + 0.33*math.Sin(2*rho) + rng.NormFloat64()*0.1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phase.FitOrientation(samples, phase.DefaultOrientationOrder); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOutliers(b *testing.B) {
	benchExperiment(b, "A7", "meanR@0.20", 100, "cm-mean-R")
}

func BenchmarkExtensionVerticalDisk(b *testing.B) {
	benchExperiment(b, "X1", "signAccuracy", 100, "pct-sign-correct")
}

func BenchmarkAblationHologram(b *testing.B) {
	benchExperiment(b, "A8", "meanHologram", 100, "cm-mean-holo")
}

func BenchmarkAblationGen2(b *testing.B) {
	benchExperiment(b, "A9", "meanGen2", 100, "cm-mean-gen2")
}

func BenchmarkFig01Overview(b *testing.B) {
	benchExperiment(b, "F1", "errCm", 1, "cm-err")
}
