GO ?= go

.PHONY: check build test race vet vet-strict bench bench-json bench-load bench-stream bench-sublin bench-nufft bench-compare run-fleet

.DEFAULT_GOAL := check

# check is the default tier-1 gate: build, vet-strict (vet plus the
# bounds-check-elimination spot check on the spectrum hot loops), and the
# full test suite under the race detector — the
# collection pipeline's retry/cancellation paths are all concurrent. The
# two pinned-GOMAXPROCS passes re-run the compute-pool equivalence and
# plan-cache tests at the scheduling extremes (single-threaded runtime vs
# 4-way) to catch regressions that only show under a particular worker/CPU
# ratio.
check: build vet-strict
	$(GO) test -race ./...
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestSched|TestPooled|TestPlanCache' ./internal/sched/ ./internal/spectrum/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestSched|TestPooled|TestPlanCache' ./internal/sched/ ./internal/spectrum/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestAccumulator|TestStream' ./internal/spectrum/ ./internal/core/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestReroute|TestKill|TestDrain|TestHealth|TestRing' ./internal/coord/ ./internal/locsrv/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the pre-merge gate for the parallel spectrum/locator paths:
# vet plus the full test suite under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-strict is vet plus the bounds-check-elimination spot check: the SoA
# hot loops in internal/spectrum (allcells.go synthesis and weighting
# kernels) are written so the compiler can prove every index in range, and
# scripts/check-bce.sh fails if a bounds check creeps back in (DESIGN.md
# §13 documents the layout rules the script enforces).
vet-strict: vet
	sh scripts/check-bce.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/spectrum/

# bench-json regenerates the machine-readable perf snapshot consumed by
# trajectory tooling (see cmd/tagspin-bench): schema tagspin-bench/8 —
# micro rows, concurrent-load rows (K simultaneous Locate2D pipelines on
# the shared compute pool, grid and ml solve backends) with plan-cache hit
# rates, the streaming rows (StreamLocate2D tail-latency pairs,
# LoadLocate2DStream throughput), the MLLocate2D/3D grid-vs-ml
# solve-backend A/B rows with meanErrM, the sub-linear coarse-scan rows
# (SubLinLocate2D/3D vs their dense Locate2D/3D baselines), and the
# all-cells rows (SubLinLocateR plus the DenseProfile/AllCellsProfile 2D/3D
# pairs per kind, with their speedup floors), and the non-uniform-grid
# rows (DenseLocateNU2D/NUFFTLocate2D with the ≥3x NUFFT floor,
# DenseLocateNUR/NUFFTLocateR, and the LoadLocate2DStream/ml estimator
# A/B).
bench-json:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_8.json

# bench-load is bench-json under its serving-path name: the schema-8 report
# is where the concurrent-load rows live.
bench-load:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_8.json

# bench-stream is bench-json under its streaming-path name: the schema-8
# report is where the StreamLocate2D/LoadLocate2DStream rows live.
bench-stream:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_8.json

# bench-sublin is bench-json under its sub-linear-search name: the schema-8
# report is where the SubLinLocate2D/3D rows (≥5x 2D floor), the
# SubLinLocateR row (≥4x floor) and the AllCellsProfile rows (≥3x floor on
# the 2D/Q pair) live.
bench-sublin:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_8.json

# bench-nufft is bench-json under its non-uniform-grid name: the schema-8
# report is where the DenseLocateNU2D/NUFFTLocate2D pair (≥3x floor on the
# NUFFT row) and the DenseLocateNUR/NUFFTLocateR pair live.
bench-nufft:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_8.json

# bench-compare diffs the two newest BENCH_<n>.json snapshots and fails on
# any >10% ns/op regression — the pre-merge perf gate for the spectrum
# engine. `make bench-compare REBASELINE=1` first re-measures the baseline
# snapshot (the older of the two newest) on this machine, marking it
# `rebaselined: true` — separating container drift from real regressions
# when the baseline came from different hardware.
bench-compare:
ifdef REBASELINE
	$(GO) run ./cmd/tagspin-bench -rebaseline auto
endif
	$(GO) run ./cmd/tagspin-bench -benchcompare auto

# run-fleet brings up a local fleet — simulated reader, 2 locsrv replicas,
# and the tagspin-coord router — smokes a locate through the coordinator,
# prints the cluster-stats rollup, and drains everything down.
# `make run-fleet KEEP=1` leaves the fleet running until ^C.
run-fleet:
ifdef KEEP
	sh scripts/run-fleet.sh keep
else
	sh scripts/run-fleet.sh
endif
