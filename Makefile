GO ?= go

.PHONY: check build test race vet bench bench-json bench-compare

.DEFAULT_GOAL := check

# check is the default tier-1 gate: build, vet (catches context misuse like
# lost cancel funcs), and the full test suite under the race detector — the
# collection pipeline's retry/cancellation paths are all concurrent.
check: build vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the pre-merge gate for the parallel spectrum/locator paths:
# vet plus the full test suite under the race detector.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/spectrum/

# bench-json regenerates the machine-readable perf snapshot consumed by
# trajectory tooling (see cmd/tagspin-bench).
bench-json:
	$(GO) run ./cmd/tagspin-bench -benchjson BENCH_2.json

# bench-compare diffs the two newest BENCH_<n>.json snapshots and fails on
# any >10% ns/op regression — the pre-merge perf gate for the spectrum
# engine.
bench-compare:
	$(GO) run ./cmd/tagspin-bench -benchcompare auto
