// Package tagspin is a library reproduction of "Accurate Spatial Calibration
// of RFID Antennas via Spinning Tags" (Duan, Yang, Liu — ICDCS 2016): a
// system that localizes a fixed RFID reader antenna to centimeter accuracy
// using a few reference tags spinning on rotating disks.
//
// A tag on the rim of a uniformly rotating disk emulates a circular
// synthetic-aperture antenna array. From the reader's phase reports for that
// tag, the library computes an enhanced angle spectrum R(φ) (or R(φ,γ) in
// 3D) whose peak points from the disk center toward the reader; bearings
// from two or more disks intersect at the reader's position. Hardware
// diversity is cancelled with relative phasors, and the tag's
// orientation-dependent phase response — the paper's Observation 3.1 — is
// fitted with a Fourier series during an installation-time prelude and
// subtracted online.
//
// # Quick start
//
//	loc := tagspin.NewLocator(tagspin.Config{})
//	res, err := loc.Locate2D(registeredTags, observations)
//	// res.Position is the reader's estimated position.
//
// The library ships a full simulated testbed (internal/testbed and friends)
// standing in for the paper's hardware; see examples/quickstart for an
// end-to-end run and DESIGN.md for the system inventory.
package tagspin

import (
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

// Core pipeline types, re-exported for the public API surface.
type (
	// Locator runs the Tagspin pipeline; build one with NewLocator.
	Locator = core.Locator
	// Config tunes the pipeline (profile kind, noise model, peak search,
	// orientation handling, 3D ambiguity policy).
	Config = core.Config
	// SpinningTag is one registered infrastructure tag: EPC, disk
	// geometry, optional orientation calibration.
	SpinningTag = core.SpinningTag
	// Observations maps tag EPCs to their snapshot series for a session.
	Observations = core.Observations
	// Result2D is a planar localization result.
	Result2D = core.Result2D
	// Result3D is a spatial localization result, including the z-mirror
	// candidate.
	Result3D = core.Result3D
	// TagEstimate is a per-tag angle-spectrum peak.
	TagEstimate = core.TagEstimate
	// Diagnosis reports how well a tag's snapshots fit its registered
	// disk geometry (see Locator.ValidateRegistration).
	Diagnosis = core.Diagnosis
)

// Measurement and geometry types.
type (
	// Snapshot is one phase report from the reader.
	Snapshot = phase.Snapshot
	// OrientationSample is one prelude observation for orientation
	// calibration.
	OrientationSample = phase.OrientationSample
	// OrientationCalibration is the fitted phase-orientation function.
	OrientationCalibration = phase.OrientationCalibration
	// Disk describes a spinning-tag installation.
	Disk = spindisk.Disk
	// EPC is a 96-bit tag identity.
	EPC = tags.EPC
	// ProfileKind selects the classic Q or enhanced R power profile.
	ProfileKind = spectrum.Kind
	// ZPolicy resolves the 3D mirror ambiguity.
	ZPolicy = locate.ZPolicy
)

// Re-exported enum values.
const (
	// ProfileQ is the traditional AoA power profile (Eqn. 7/11).
	ProfileQ = spectrum.KindQ
	// ProfileR is the paper's enhanced profile (Definitions 4.1/5.1).
	ProfileR = spectrum.KindR
	// ZPreferNonNegative keeps the z ≥ 0 candidate (default).
	ZPreferNonNegative = locate.ZPreferNonNegative
	// ZPreferNonPositive keeps the z ≤ 0 candidate.
	ZPreferNonPositive = locate.ZPreferNonPositive
	// ZKeepBoth returns both mirror candidates.
	ZKeepBoth = locate.ZKeepBoth
)

// Pipeline errors.
var (
	// ErrTooFewTags reports fewer than two usable spinning tags.
	ErrTooFewTags = core.ErrTooFewTags
	// ErrTooFewSnapshots reports a tag with too few reads.
	ErrTooFewSnapshots = core.ErrTooFewSnapshots
)

// NewLocator builds a Locator with the given configuration.
func NewLocator(cfg Config) *Locator { return core.NewLocator(cfg) }

// FitOrientation runs the §III-B calibration prelude fit: given samples of
// (orientation, phase) collected with the tag spinning at the disk center,
// it fits the phase-orientation Fourier series. order ≤ 0 selects the
// default (4).
func FitOrientation(samples []OrientationSample, order int) (OrientationCalibration, error) {
	return phase.FitOrientation(samples, order)
}

// ParseEPC parses a 24-character hex string into an EPC.
func ParseEPC(s string) (EPC, error) { return tags.ParseEPC(s) }
