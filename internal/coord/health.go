package coord

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// replica is one locsrv instance in the coordinator's table. Static
// replicas come from the -replicas flag and never expire; dynamic ones
// register over /v1/replicas and are dropped when their heartbeats stop.
type replica struct {
	addr   string
	static bool

	// mu guards the health state machine and the heartbeat clock.
	mu         sync.Mutex
	healthy    bool
	consecFail int
	consecOK   int
	lastSeen   time.Time

	// routed counts locate payloads sent to this replica; sheds counts the
	// 503/504/transport outcomes the coordinator absorbed and rerouted away
	// from it.
	routed atomic.Uint64
	sheds  atomic.Uint64
}

// newReplica builds a table entry. Replicas start healthy: a fresh fleet
// serves immediately, and a replica that is actually down trips after its
// first failed probes (or the first transport error routed into it).
func newReplica(addr string, static bool, now time.Time) *replica {
	return &replica{addr: addr, static: static, healthy: true, lastSeen: now}
}

// isHealthy reports the current verdict of the trip/restore machine.
func (rep *replica) isHealthy() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.healthy
}

// noteSuccess feeds one successful probe into the state machine: restoreAfter
// consecutive successes bring a tripped replica back.
func (rep *replica) noteSuccess(restoreAfter int) (restored bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFail = 0
	rep.consecOK++
	if !rep.healthy && rep.consecOK >= restoreAfter {
		rep.healthy = true
		return true
	}
	return false
}

// noteFailure feeds one failed probe (or routed transport error) into the
// state machine: tripAfter consecutive failures trip the replica out of the
// routing set.
func (rep *replica) noteFailure(tripAfter int) (tripped bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecOK = 0
	rep.consecFail++
	if rep.healthy && rep.consecFail >= tripAfter {
		rep.healthy = false
		return true
	}
	return false
}

// beat refreshes the heartbeat clock.
func (rep *replica) beat(now time.Time) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.lastSeen = now
}

// expired reports whether a dynamic replica's heartbeats have stopped.
func (rep *replica) expired(now time.Time, ttl time.Duration) bool {
	if rep.static {
		return false
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return now.Sub(rep.lastSeen) > ttl
}

// Run drives the active health loop until ctx is done: every ProbeInterval
// it probes each replica's /healthz, feeds the trip/restore state machine,
// and expires dynamic replicas whose heartbeats stopped. A replica that is
// draining answers its health check with 503, so drains trip out of the
// routing set by the same mechanism as crashes — the coordinator needs no
// separate drain signal.
func (c *Coordinator) Run(ctx context.Context) {
	ticker := time.NewTicker(c.probeInterval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.probeAll(ctx)
			c.expireReplicas(time.Now())
		}
	}
}

// probeAll checks every replica concurrently and waits for the sweep.
func (c *Coordinator) probeAll(ctx context.Context) {
	c.mu.RLock()
	reps := make([]*replica, 0, len(c.replicas))
	for _, rep := range c.replicas {
		reps = append(reps, rep)
	}
	c.mu.RUnlock()
	var wg sync.WaitGroup
	wg.Add(len(reps))
	for _, rep := range reps {
		go func(rep *replica) {
			defer wg.Done()
			c.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe runs one health check against rep and feeds the state machine.
func (c *Coordinator) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+rep.addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.httpc.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		resp.Body.Close() //nolint:errcheck // drained health probe
	}
	if ok {
		if rep.noteSuccess(c.restoreAfter()) {
			c.logf("coord: replica %s restored after %d healthy probes", rep.addr, c.restoreAfter())
		}
	} else {
		if rep.noteFailure(c.tripAfter()) {
			c.logf("coord: replica %s tripped unhealthy (probe: status/err %v)", rep.addr, err)
		}
	}
}

// expireReplicas drops dynamic replicas whose heartbeats went silent for
// longer than the TTL and rebuilds the ring when membership changed.
func (c *Coordinator) expireReplicas(now time.Time) {
	ttl := c.heartbeatTTL()
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for addr, rep := range c.replicas {
		if rep.expired(now, ttl) {
			delete(c.replicas, addr)
			changed = true
			c.expiredReplicas.Add(1)
			c.logf("coord: replica %s expired (no heartbeat for %v)", addr, ttl)
		}
	}
	if changed {
		c.rebuildRingLocked()
	}
}
