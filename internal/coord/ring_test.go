package coord

import (
	"fmt"
	"testing"
)

// keys returns n synthetic reader addresses.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.%d.%d:5084", i/256, i%256)
	}
	return out
}

func replicaAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%d:8080", i)
	}
	return out
}

// TestRingBoundedMovementOnAdd pins the consistency property that makes the
// ring worth its name: growing N replicas to N+1 may move only the keys the
// new replica now owns — about 1/(N+1) of the keyspace — while every other
// key keeps its owner (and its warm caches).
func TestRingBoundedMovementOnAdd(t *testing.T) {
	const nKeys = 10000
	addrs := replicaAddrs(5)
	before := newRing(addrs, 0)
	after := newRing(append(append([]string{}, addrs...), "replica-new:8080"), 0)
	moved := 0
	for _, key := range testKeys(nKeys) {
		was, is := before.owner(key), after.owner(key)
		if was == is {
			continue
		}
		moved++
		if is != "replica-new:8080" {
			t.Fatalf("key %s moved %s -> %s: only the new replica may gain keys", key, was, is)
		}
	}
	// Expect ≈ nKeys/6; allow generous slack for hash unevenness but fail
	// on anything resembling a full reshuffle (a modulo hash moves ~5/6).
	if moved == 0 {
		t.Fatal("adding a replica moved no keys — it would receive no load")
	}
	if limit := nKeys / 3; moved > limit {
		t.Errorf("adding 1 replica to 5 moved %d/%d keys, want < %d (≈1/6 expected)", moved, nKeys, limit)
	}
}

// TestRingBoundedMovementOnRemove is the drain/crash direction: removing a
// replica may only re-home the keys it owned; everyone else stays put.
func TestRingBoundedMovementOnRemove(t *testing.T) {
	const nKeys = 10000
	addrs := replicaAddrs(5)
	before := newRing(addrs, 0)
	after := newRing(addrs[:4], 0) // replica-4 removed
	for _, key := range testKeys(nKeys) {
		was, is := before.owner(key), after.owner(key)
		if was == "replica-4:8080" {
			if is == "replica-4:8080" {
				t.Fatalf("key %s still owned by removed replica", key)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, was, is)
		}
	}
}

// TestRingSpread checks the virtual nodes keep per-replica load within a
// sane band — no replica starves or takes a multiple of its fair share.
func TestRingSpread(t *testing.T) {
	const nKeys = 20000
	addrs := replicaAddrs(4)
	r := newRing(addrs, 0)
	counts := make(map[string]int)
	for _, key := range testKeys(nKeys) {
		counts[r.owner(key)]++
	}
	fair := nKeys / len(addrs)
	for _, a := range addrs {
		got := counts[a]
		if got < fair/2 || got > fair*2 {
			t.Errorf("replica %s owns %d keys, want within [%d, %d] of fair %d", a, got, fair/2, fair*2, fair)
		}
	}
}

// TestRingSequence pins the reroute walk: distinct replicas, owner first,
// stable for the same key, and bounded by the fleet size.
func TestRingSequence(t *testing.T) {
	addrs := replicaAddrs(3)
	r := newRing(addrs, 0)
	seq := r.sequence("10.1.2.3:5084", 5)
	if len(seq) != 3 {
		t.Fatalf("sequence = %v, want all 3 distinct replicas", seq)
	}
	seen := map[string]bool{}
	for _, a := range seq {
		if seen[a] {
			t.Fatalf("sequence %v repeats %s", seq, a)
		}
		seen[a] = true
	}
	if seq[0] != r.owner("10.1.2.3:5084") {
		t.Errorf("sequence head %s != owner %s", seq[0], r.owner("10.1.2.3:5084"))
	}
	again := r.sequence("10.1.2.3:5084", 5)
	for i := range seq {
		if seq[i] != again[i] {
			t.Fatalf("sequence not stable: %v vs %v", seq, again)
		}
	}
	if got := r.sequence("anything", 2); len(got) != 2 {
		t.Errorf("truncated sequence = %v, want 2 entries", got)
	}
}

// TestRingEmpty covers the degenerate table.
func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 0)
	if got := r.sequence("key", 3); got != nil {
		t.Errorf("empty ring sequence = %v, want nil", got)
	}
	if got := r.owner("key"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}
