package coord

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVirtualNodes is the per-replica point count on the hash ring. More
// points smooth the load split (the owner arcs approach 1/N of keyspace) at
// the cost of a larger sorted array; 64 keeps the imbalance within a few
// percent for fleets of up to dozens of replicas while lookups stay a single
// binary search.
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a replica's position on the hash circle.
type ringPoint struct {
	hash uint64
	addr string
}

// ring is an immutable consistent-hash ring over replica addresses. Routing
// a key (a reader address) walks clockwise from the key's hash to the first
// virtual node; successive distinct replicas on the walk are the reroute
// candidates. Immutability is the concurrency story: membership changes
// build a fresh ring and swap it under the coordinator's lock, so lookups
// never see a half-updated ring.
//
// Consistency is the point: adding or removing one replica moves only the
// keys in the arcs that replica's virtual nodes owned (≈1/N of the
// keyspace), so the per-reader stickiness that keeps replica-side plan/trig
// caches hot survives fleet resizes.
type ring struct {
	points []ringPoint
}

// hashKey positions a string on the circle: FNV-1a pushed through a
// MurmurHash3-style finalizer. Plain FNV avalanches poorly on the short,
// near-identical strings this ring hashes (host:port plus a vnode suffix),
// which visibly skews the arc split; the finalizer spreads those deltas
// across all 64 bits.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds a ring with vnodes virtual nodes per replica (0 means
// defaultVirtualNodes).
func newRing(addrs []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(addrs)*vnodes)}
	for _, a := range addrs {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(a + "#" + strconv.Itoa(i)), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// sequence returns up to n distinct replica addresses for key: the owner
// first, then the clockwise successors — the order reroutes try them.
func (r *ring) sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// owner returns the replica that owns key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	seq := r.sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
