package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Announcer keeps one replica registered with a coordinator: it registers on
// start, re-registers on every heartbeat tick (the register endpoint doubles
// as the heartbeat, refreshing the TTL), and deregisters on shutdown so the
// coordinator re-homes the replica's arc immediately instead of waiting out
// the TTL. It lives in coord rather than locsrv so the server package never
// learns about fleet topology.
type Announcer struct {
	// Coordinator is the coordinator's API address (host:port). Required.
	Coordinator string
	// Addr is this replica's advertised API address (host:port) — what the
	// coordinator routes locates to. Required.
	Addr string
	// Interval is the heartbeat period. It must undercut the coordinator's
	// HeartbeatTTL with room for a lost beat or two; zero means 5s (a third
	// of the default 15s TTL).
	Interval time.Duration
	// HTTPClient overrides the heartbeat transport; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Logf, when non-nil, receives announce/heartbeat log lines.
	Logf func(format string, args ...any)
}

// heartbeatTimeout bounds a single register/deregister round trip.
const heartbeatTimeout = 3 * time.Second

func (a *Announcer) interval() time.Duration {
	if a.Interval > 0 {
		return a.Interval
	}
	return 5 * time.Second
}

func (a *Announcer) client() *http.Client {
	if a.HTTPClient != nil {
		return a.HTTPClient
	}
	return http.DefaultClient
}

func (a *Announcer) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Run registers and heartbeats until ctx is cancelled, then deregisters on a
// fresh short-lived context (the run context is already dead by then). A
// failed beat is logged and retried next tick — the coordinator tolerates
// missed beats up to its TTL, so transient coordinator outages do not
// unregister a healthy replica.
func (a *Announcer) Run(ctx context.Context) error {
	if a.Coordinator == "" || a.Addr == "" {
		return fmt.Errorf("coord: announcer needs Coordinator and Addr")
	}
	if err := a.beat(ctx); err != nil {
		// First registration failing is worth logging loudly, but keep
		// trying: the coordinator may simply not be up yet.
		a.logf("coord: initial register with %s failed (will retry): %v", a.Coordinator, err)
	} else {
		a.logf("coord: registered %s with coordinator %s", a.Addr, a.Coordinator)
	}
	t := time.NewTicker(a.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			dctx, cancel := context.WithTimeout(context.Background(), heartbeatTimeout)
			defer cancel()
			if err := a.deregister(dctx); err != nil {
				a.logf("coord: deregister from %s failed: %v", a.Coordinator, err)
			} else {
				a.logf("coord: deregistered %s from coordinator %s", a.Addr, a.Coordinator)
			}
			return ctx.Err()
		case <-t.C:
			if err := a.beat(ctx); err != nil && ctx.Err() == nil {
				a.logf("coord: heartbeat to %s failed: %v", a.Coordinator, err)
			}
		}
	}
}

// beat POSTs one register/heartbeat.
func (a *Announcer) beat(ctx context.Context) error {
	body, err := json.Marshal(RegisterRequest{Addr: a.Addr})
	if err != nil {
		return err
	}
	bctx, cancel := context.WithTimeout(ctx, heartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(bctx, http.MethodPost,
		"http://"+a.Coordinator+"/v1/replicas", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return a.do(req)
}

// deregister removes the replica from the table.
func (a *Announcer) deregister(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		"http://"+a.Coordinator+"/v1/replicas/"+url.PathEscape(a.Addr), nil)
	if err != nil {
		return err
	}
	return a.do(req)
}

func (a *Announcer) do(req *http.Request) error {
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // drained below
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // connection reuse
	if resp.StatusCode >= 300 {
		return fmt.Errorf("coordinator %s: status %d", a.Coordinator, resp.StatusCode)
	}
	return nil
}
