package coord_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/coord"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// fleetFixture is a canned scenario shared by every replica of a test
// fleet: one set of calibrated entries and one set of observations any
// reader address resolves to. Each replica gets its OWN registry built from
// the entries — replicas are independent processes in production, and the
// tag fan-out path depends on that (a shared registry would turn the second
// replica's Add into a duplicate).
type fleetFixture struct {
	entries []registry.Entry
	obs     core.Observations
}

var (
	fixtureOnce   sync.Once
	cachedFixture *fleetFixture
	fixtureErr    error
)

// newFleetFixture builds the scenario once per test binary — the simulated
// collect is by far the most expensive step and is identical for every test.
func newFleetFixture(t *testing.T) *fleetFixture {
	t.Helper()
	fixtureOnce.Do(func() { cachedFixture, fixtureErr = buildFleetFixture() })
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return cachedFixture
}

func buildFleetFixture() (*fleetFixture, error) {
	rng := rand.New(rand.NewSource(99))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.7, 1.3, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return nil, err
	}
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	f := &fleetFixture{obs: col.Obs}
	for _, st := range registered {
		f.entries = append(f.entries, registry.EntryFromSpinningTag(st))
	}
	return f, nil
}

func (f *fleetFixture) newRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	for _, e := range f.entries {
		if err := reg.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// startReplica brings up one real locsrv replica with a canned collector
// that sleeps for delay (simulating the collection window) and returns its
// host:port address alongside the handles.
func (f *fleetFixture) startReplica(t *testing.T, delay time.Duration, cfg locsrv.Config) (string, *locsrv.Server, *httptest.Server) {
	t.Helper()
	cfg.Registry = f.newRegistry(t)
	if cfg.Search == (spectrum.SearchOptions{}) {
		// Coordinator tests exercise routing, not solver accuracy; a coarse
		// grid keeps the ~hundreds of locates cheap under -race.
		cfg.Search = spectrum.SearchOptions{CoarseStep: geom.Radians(5)}
	}
	if cfg.Collect == nil {
		cfg.Collect = func(ctx context.Context, _ string, _ client.Config) (core.Observations, error) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return f.obs, nil
		}
	}
	srv, err := locsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return hostPort(ts), srv, ts
}

// hostPort strips the scheme off an httptest server URL.
func hostPort(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

// startCoordinator builds a coordinator over the replicas and serves it.
func startCoordinator(t *testing.T, cfg coord.Config) (*coord.Coordinator, *httptest.Server) {
	t.Helper()
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func postLocate(t *testing.T, url, readerAddr string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(locsrv.LocateRequest{ReaderAddr: readerAddr})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/locate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	return resp, buf.Bytes()
}

// shedReplica is a stub that sheds every locate with the PR-4 backpressure
// shape (503 + Retry-After) while staying healthy on /healthz — the
// MaxInFlight=0-slot equivalent: permanently saturated but alive.
func shedReplica(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"at capacity"}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return hostPort(ts)
}

// TestRerouteOn503 is the backpressure-to-resilience acceptance: one of two
// replicas is permanently saturated (every locate sheds 503), yet every
// coordinator locate must succeed by rerouting to the healthy replica, and
// the rollup must report the absorbed sheds.
func TestRerouteOn503(t *testing.T) {
	f := newFleetFixture(t)
	good, _, _ := f.startReplica(t, 0, locsrv.Config{})
	saturated := shedReplica(t)
	c, ts := startCoordinator(t, coord.Config{
		Replicas:       []string{good, saturated},
		RerouteBackoff: time.Millisecond,
	})

	const locates = 40
	for i := 0; i < locates; i++ {
		resp, body := postLocate(t, ts.URL, fmt.Sprintf("10.9.0.%d:5084", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("locate %d = %d (%s), want 200 via reroute", i, resp.StatusCode, body)
		}
		var out locsrv.LocateResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("locate %d: bad body: %v", i, err)
		}
		if out.Position == [3]float64{} {
			t.Fatalf("locate %d returned a zero position", i)
		}
	}
	st := c.Stats()
	if st.Routed != locates {
		t.Errorf("routed = %d, want %d", st.Routed, locates)
	}
	// With 40 distinct readers hashed over 2 replicas, some must have been
	// owned by the saturated one and shed-rerouted.
	if st.ShedsAbsorbed == 0 {
		t.Error("no sheds absorbed — saturated replica never owned a key or sheds were not counted")
	}
	if st.Rerouted != st.ShedsAbsorbed {
		t.Errorf("rerouted = %d, sheds = %d: every shed must become a reroute", st.Rerouted, st.ShedsAbsorbed)
	}
	if st.RouteFailures != 0 {
		t.Errorf("route failures = %d, want 0", st.RouteFailures)
	}
}

// TestKillReplicaMidRun is the crash acceptance: with 2 replicas and one
// killed mid-run (listener closed, live connections severed), ≥99% of
// coordinator locates must still succeed via transport-error reroutes, and
// the rollup must report them.
func TestKillReplicaMidRun(t *testing.T) {
	f := newFleetFixture(t)
	survivorAddr, _, _ := f.startReplica(t, 5*time.Millisecond, locsrv.Config{MaxInFlight: -1})
	victimAddr, _, victim := f.startReplica(t, 5*time.Millisecond, locsrv.Config{MaxInFlight: -1})
	c, ts := startCoordinator(t, coord.Config{
		Replicas:       []string{survivorAddr, victimAddr},
		RerouteBackoff: time.Millisecond,
	})

	const locates = 200
	var ok, failed atomic.Uint64
	var wg sync.WaitGroup
	killed := make(chan struct{})
	go func() {
		// Kill the victim while locates are in flight.
		time.Sleep(30 * time.Millisecond)
		victim.CloseClientConnections()
		victim.Close()
		close(killed)
	}()
	sem := make(chan struct{}, 16)
	wg.Add(locates)
	for i := 0; i < locates; i++ {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, _ := json.Marshal(locsrv.LocateRequest{ReaderAddr: fmt.Sprintf("10.7.%d.%d:5084", i/256, i%256)})
			resp, err := http.Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	<-killed
	if got := ok.Load(); got < locates*99/100 {
		t.Fatalf("%d/%d locates succeeded (%d failed), want ≥99%%", got, locates, failed.Load())
	}
	st := c.Stats()
	if st.TransportReroutes == 0 && st.ShedsAbsorbed == 0 {
		t.Error("kill-mid-run produced no recorded sheds/transport reroutes")
	}
	t.Logf("kill-mid-run: ok=%d failed=%d transportReroutes=%d shedsAbsorbed=%d rerouted=%d",
		ok.Load(), failed.Load(), st.TransportReroutes, st.ShedsAbsorbed, st.Rerouted)
}

// TestDrainZeroDrops pins the drain sequence: a replica that drains mid-run
// finishes its in-flight locates (zero drops) while new work sheds to the
// other replica; the client sees 100% success.
func TestDrainZeroDrops(t *testing.T) {
	f := newFleetFixture(t)
	drainAddr, drainSrv, _ := f.startReplica(t, 20*time.Millisecond, locsrv.Config{MaxInFlight: -1})
	otherAddr, _, _ := f.startReplica(t, 0, locsrv.Config{MaxInFlight: -1})
	c, ts := startCoordinator(t, coord.Config{
		Replicas:       []string{drainAddr, otherAddr},
		RerouteBackoff: time.Millisecond,
	})

	const locates = 80
	var wg sync.WaitGroup
	var failures atomic.Uint64
	wg.Add(locates)
	go func() {
		time.Sleep(10 * time.Millisecond) // land mid-flight
		drainSrv.Drain()
	}()
	sem := make(chan struct{}, 12)
	for i := 0; i < locates; i++ {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, _ := json.Marshal(locsrv.LocateRequest{ReaderAddr: fmt.Sprintf("10.8.0.%d:5084", i)})
			resp, err := http.Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
			if err != nil {
				failures.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := failures.Load(); got != 0 {
		t.Fatalf("%d/%d locates failed across the drain, want 0 drops", got, locates)
	}
	// The drained replica's sheds were absorbed, not surfaced.
	if st := c.Stats(); st.RouteFailures != 0 {
		t.Errorf("route failures = %d, want 0", st.RouteFailures)
	}
	if !drainSrv.Stats().Draining {
		t.Error("replica does not report draining")
	}
}

// flakyHealth is a stub whose /healthz answer is switchable at runtime.
type flakyHealth struct {
	up atomic.Bool
}

func (f *flakyHealth) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && f.up.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHealthTripRestore drives the active checker through a full
// trip/restore cycle and pins the thresholds: TripAfter consecutive failures
// take the replica out, RestoreAfter consecutive successes bring it back.
func TestHealthTripRestore(t *testing.T) {
	var fh flakyHealth
	fh.up.Store(true)
	stub := httptest.NewServer(fh.handler())
	t.Cleanup(stub.Close)

	c, _ := startCoordinator(t, coord.Config{
		Replicas:      []string{hostPort(stub)},
		ProbeInterval: 10 * time.Millisecond,
		TripAfter:     3,
		RestoreAfter:  2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go c.Run(ctx)

	waitFor(t, "initial healthy", func() bool { return c.Stats().HealthyReplicas == 1 })
	fh.up.Store(false)
	waitFor(t, "trip after consecutive failures", func() bool { return c.Stats().HealthyReplicas == 0 })
	fh.up.Store(true)
	waitFor(t, "restore after consecutive successes", func() bool { return c.Stats().HealthyReplicas == 1 })
}

// TestRegisterHeartbeatExpire covers the dynamic membership path: a replica
// registers over the API, serves traffic, then silently dies and is expired
// once its heartbeats stop; the static replica stays.
func TestRegisterHeartbeatExpire(t *testing.T) {
	f := newFleetFixture(t)
	staticAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	dynAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	c, ts := startCoordinator(t, coord.Config{
		Replicas:      []string{staticAddr},
		ProbeInterval: 10 * time.Millisecond,
		HeartbeatTTL:  60 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go c.Run(ctx)

	body, _ := json.Marshal(coord.RegisterRequest{Addr: dynAddr})
	resp, err := http.Post(ts.URL+"/v1/replicas", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var table coord.ReplicasResponse
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(table.Replicas) != 2 {
		t.Fatalf("table after register = %+v, want 2 replicas", table.Replicas)
	}
	// Heartbeats stop; the dynamic replica must expire, the static stay.
	waitFor(t, "dynamic replica expiry", func() bool { return c.Stats().Replicas == 1 })
	if got := c.Stats().PerReplica[0].Addr; got != staticAddr {
		t.Errorf("surviving replica = %s, want static %s", got, staticAddr)
	}
	// Traffic still flows after the expiry re-homed the keyspace.
	if resp, bodyOut := postLocate(t, ts.URL, "10.3.0.1:5084"); resp.StatusCode != http.StatusOK {
		t.Errorf("post-expiry locate = %d (%s)", resp.StatusCode, bodyOut)
	}
}

// TestBatchSplitAndReassemble pins the batch path: items are split by ring
// owner, forwarded as sub-batches, and reassembled in request order.
func TestBatchSplitAndReassemble(t *testing.T) {
	f := newFleetFixture(t)
	aAddr, aSrv, _ := f.startReplica(t, 0, locsrv.Config{})
	bAddr, bSrv, _ := f.startReplica(t, 0, locsrv.Config{})
	_, ts := startCoordinator(t, coord.Config{
		Replicas:       []string{aAddr, bAddr},
		RerouteBackoff: time.Millisecond,
	})

	const n = 24
	req := locsrv.BatchRequest{}
	for i := 0; i < n; i++ {
		req.Requests = append(req.Requests, locsrv.LocateRequest{ReaderAddr: fmt.Sprintf("10.5.0.%d:5084", i)})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/locate-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	var out locsrv.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != n {
		t.Fatalf("items = %d, want %d", len(out.Items), n)
	}
	for i, item := range out.Items {
		if item.ReaderAddr != req.Requests[i].ReaderAddr {
			t.Fatalf("item %d readerAddr = %s, want %s (order must survive the split)", i, item.ReaderAddr, req.Requests[i].ReaderAddr)
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
	}
	// The split actually fanned out: with 24 readers over 2 replicas both
	// must have seen batch traffic.
	if aSrv.Stats().Batches == 0 || bSrv.Stats().Batches == 0 {
		t.Errorf("batch fan-out lopsided: a=%d b=%d batches", aSrv.Stats().Batches, bSrv.Stats().Batches)
	}
}

// TestClientErrorsRelayedNotRerouted pins the reroute taxonomy's negative
// space: a 4xx (bad request) and a 499 (client gone) are relayed untouched —
// rerouting them would waste replica slots re-answering a request that is
// wrong or abandoned.
func TestClientErrorsRelayedNotRerouted(t *testing.T) {
	for _, status := range []int{http.StatusUnprocessableEntity, locsrv.StatusClientClosedRequest} {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
		mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, fmt.Sprintf(`{"error":"status %d"}`, status), status)
		})
		stub := httptest.NewServer(mux)
		c, ts := startCoordinator(t, coord.Config{
			Replicas:       []string{hostPort(stub)},
			RerouteBackoff: time.Millisecond,
		})
		resp, _ := postLocate(t, ts.URL, "10.4.0.1:5084")
		if resp.StatusCode != status {
			t.Errorf("status %d relayed as %d", status, resp.StatusCode)
		}
		if st := c.Stats(); st.Rerouted != 0 {
			t.Errorf("status %d caused %d reroutes, want 0", status, st.Rerouted)
		}
		stub.Close()
		ts.Close()
	}
}

// TestClusterStatsRollup verifies the fleet-wide rollup: per-replica
// locsrv stats are fetched and summed, and coordinator counters ride along.
func TestClusterStatsRollup(t *testing.T) {
	f := newFleetFixture(t)
	aAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	bAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	c, ts := startCoordinator(t, coord.Config{
		Replicas:       []string{aAddr, bAddr},
		RerouteBackoff: time.Millisecond,
	})
	const locates = 20
	for i := 0; i < locates; i++ {
		if resp, body := postLocate(t, ts.URL, fmt.Sprintf("10.6.0.%d:5084", i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("locate %d = %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/cluster-stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs coord.ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Unreachable) != 0 {
		t.Fatalf("unreachable replicas: %v", cs.Unreachable)
	}
	if cs.Cluster.Locates != locates {
		t.Errorf("cluster locates = %d, want %d (sum over replicas)", cs.Cluster.Locates, locates)
	}
	if len(cs.Replicas) != 2 {
		t.Fatalf("replica snapshots = %d, want 2", len(cs.Replicas))
	}
	sum := cs.Replicas[aAddr].Locates + cs.Replicas[bAddr].Locates
	if sum != locates {
		t.Errorf("per-replica locates sum = %d, want %d", sum, locates)
	}
	if cs.Coordinator.Routed != locates {
		t.Errorf("coordinator routed = %d, want %d", cs.Coordinator.Routed, locates)
	}
	_ = c
}

// TestCoordinatorDrain pins the coordinator's own drain: new locates shed
// with 503 + Retry-After and health fails, mirroring replica semantics.
func TestCoordinatorDrain(t *testing.T) {
	f := newFleetFixture(t)
	addr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	c, ts := startCoordinator(t, coord.Config{Replicas: []string{addr}})
	c.Drain()
	resp, _ := postLocate(t, ts.URL, "10.2.0.1:5084")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining locate = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining shed carries no Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hresp.StatusCode)
	}
}

// TestTagFanOut verifies registry mutations reach every replica so any
// route answers locates identically.
func TestTagFanOut(t *testing.T) {
	f := newFleetFixture(t)
	aAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	bAddr, _, _ := f.startReplica(t, 0, locsrv.Config{})
	_, ts := startCoordinator(t, coord.Config{Replicas: []string{aAddr, bAddr}})

	entry := registry.Entry{EPC: "E200AABBCCDD00000000FFFF", Center: [3]float64{0.4, 0.4, 0}, RadiusM: 0.2, OmegaRadPerSec: 3.14}
	body, _ := json.Marshal(entry)
	resp, err := http.Post(ts.URL+"/v1/tags", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fan-out add = %d, want 201", resp.StatusCode)
	}
	for _, addr := range []string{aAddr, bAddr} {
		lresp, err := http.Get("http://" + addr + "/v1/tags")
		if err != nil {
			t.Fatal(err)
		}
		var listed []registry.Entry
		if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
			t.Fatal(err)
		}
		lresp.Body.Close()
		found := false
		for _, e := range listed {
			if e.EPC == entry.EPC {
				found = true
			}
		}
		if !found {
			t.Errorf("replica %s missing fanned-out tag", addr)
		}
	}
}
