package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/tagspin/tagspin/internal/locsrv"
)

// Stats is the coordinator's own counter snapshot, shaped for expvar.
type Stats struct {
	// Replicas and HealthyReplicas size the current table.
	Replicas        int
	HealthyReplicas int
	// Routed counts locate items admitted and sent into the fleet
	// (batch items count individually).
	Routed uint64
	// Rerouted counts reroute hops: payloads moved to the next ring
	// candidate after their current replica failed them.
	Rerouted uint64
	// ShedsAbsorbed counts replica 503/504 answers converted into reroutes
	// instead of client-visible failures; TransportReroutes counts the
	// transport-level equivalents (connection refused/reset, mid-reply
	// death).
	ShedsAbsorbed     uint64
	TransportReroutes uint64
	// RouteFailures counts client-visible routing failures: the reroute
	// budget ran dry or the table was empty.
	RouteFailures uint64
	// AdmissionRejects counts requests shed while the coordinator drains.
	AdmissionRejects uint64
	// Heartbeats counts /v1/replicas register/heartbeat calls;
	// ExpiredReplicas counts dynamic replicas dropped for silent
	// heartbeats.
	Heartbeats      uint64
	ExpiredReplicas uint64
	// Draining reports whether the coordinator has begun its drain.
	Draining bool
	// PerReplica carries the routing table with per-replica route/shed
	// counters and health verdicts.
	PerReplica []ReplicaInfo
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	table := c.replicaTable()
	healthy := 0
	for _, info := range table {
		if info.Healthy {
			healthy++
		}
	}
	return Stats{
		Replicas:          len(table),
		HealthyReplicas:   healthy,
		Routed:            c.routed.Load(),
		Rerouted:          c.rerouted.Load(),
		ShedsAbsorbed:     c.shedsAbsorbed.Load(),
		TransportReroutes: c.transportReroutes.Load(),
		RouteFailures:     c.routeFailures.Load(),
		AdmissionRejects:  c.admissionRejects.Load(),
		Heartbeats:        c.heartbeats.Load(),
		ExpiredReplicas:   c.expiredReplicas.Load(),
		Draining:          c.draining.Load(),
		PerReplica:        table,
	}
}

// ClusterStats is the cluster-wide rollup: the coordinator's own counters,
// every reachable replica's locsrv.Stats, and their sum.
type ClusterStats struct {
	Coordinator Stats `json:"coordinator"`
	// Cluster is the element-wise sum of every reachable replica's
	// counters (MaxAccumBacklog takes the max — it is a high-water mark).
	Cluster locsrv.Stats `json:"cluster"`
	// Replicas maps each reachable replica to its own snapshot.
	Replicas map[string]locsrv.Stats `json:"replicas"`
	// Unreachable lists replicas whose /v1/stats did not answer.
	Unreachable []string `json:"unreachable,omitempty"`
}

// statsProbeTimeout bounds one replica /v1/stats fetch inside the rollup.
const statsProbeTimeout = 2 * time.Second

// ClusterStats fetches every replica's /v1/stats concurrently and rolls the
// fleet up into one report.
func (c *Coordinator) ClusterStats(ctx context.Context) ClusterStats {
	out := ClusterStats{
		Coordinator: c.Stats(),
		Replicas:    make(map[string]locsrv.Stats),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(out.Coordinator.PerReplica))
	for _, info := range out.Coordinator.PerReplica {
		go func(addr string) {
			defer wg.Done()
			st, err := c.fetchReplicaStats(ctx, addr)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				out.Unreachable = append(out.Unreachable, addr)
				return
			}
			out.Replicas[addr] = st
			addStats(&out.Cluster, st)
		}(info.Addr)
	}
	wg.Wait()
	sort.Strings(out.Unreachable)
	return out
}

// fetchReplicaStats pulls one replica's counter snapshot off its API
// listener.
func (c *Coordinator) fetchReplicaStats(ctx context.Context, addr string) (locsrv.Stats, error) {
	var st locsrv.Stats
	sctx, cancel := context.WithTimeout(ctx, statsProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, "http://"+addr+"/v1/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully read
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("replica %s /v1/stats: status %d", addr, resp.StatusCode)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return st, fmt.Errorf("replica %s /v1/stats: %w", addr, err)
	}
	return st, nil
}

// addStats folds one replica's counters into the cluster sum. Counters add;
// the backlog high-water mark takes the max; Draining is a per-replica fact
// and stays out of the sum.
func addStats(dst *locsrv.Stats, s locsrv.Stats) {
	dst.Locates += s.Locates
	dst.MLLocates += s.MLLocates
	dst.Batches += s.Batches
	dst.AdmissionRejects += s.AdmissionRejects
	dst.MalformedReports += s.MalformedReports
	dst.InFlight += s.InFlight
	dst.MaxInFlight += s.MaxInFlight
	dst.StreamLocates += s.StreamLocates
	dst.StreamFallbackTags += s.StreamFallbackTags
	dst.SnapshotsStreamed += s.SnapshotsStreamed
	if s.MaxAccumBacklog > dst.MaxAccumBacklog {
		dst.MaxAccumBacklog = s.MaxAccumBacklog
	}
	dst.FinalizeCount += s.FinalizeCount
	dst.FinalizeNsTotal += s.FinalizeNsTotal
}

// handleClusterStats serves the rollup on the coordinator's API listener;
// the same report is published as expvar on the debug listener.
func (c *Coordinator) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.ClusterStats(r.Context()))
}
