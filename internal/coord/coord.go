// Package coord is the fleet coordinator tier: one HTTP front that
// multiplexes calibration sessions across N locsrv replicas. It keeps a
// replica table (a static seed list plus register/heartbeat entries), routes
// locate traffic by consistent hash over the reader address — sticky per
// reader, so each replica's trig-plan and session caches stay hot — and
// converts replica backpressure into resilience: a 503 + Retry-After, a 504
// server deadline, or a transient transport failure triggers shed-and-
// reroute to the next replica on the ring instead of a client-visible
// error, within a per-request reroute budget and jittered backoff.
//
// The paper's motivating deployment calibrates every antenna of a warehouse
// portal at once; this tier is what lets that fan-out land on a fleet
// instead of a single server.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/locsrv"
)

// Config configures a Coordinator.
type Config struct {
	// Replicas is the static seed list of locsrv API addresses
	// (host:port). Static replicas never expire; more can register at
	// runtime via POST /v1/replicas.
	Replicas []string
	// VirtualNodes is the per-replica point count on the hash ring; zero
	// means 64.
	VirtualNodes int
	// ProbeInterval is the active health-check period; zero means 2 s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe; zero means min(ProbeInterval, 1 s).
	ProbeTimeout time.Duration
	// TripAfter is how many consecutive failed probes (or routed transport
	// errors) take a replica out of the routing set; zero means 3.
	TripAfter int
	// RestoreAfter is how many consecutive healthy probes bring a tripped
	// replica back; zero means 2.
	RestoreAfter int
	// HeartbeatTTL expires dynamically registered replicas whose
	// heartbeats stop; zero means 15 s. Static replicas never expire.
	HeartbeatTTL time.Duration
	// RerouteBudget is how many *additional* replicas one request may be
	// rerouted to after its ring owner fails it; zero means 2, negative
	// disables rerouting.
	RerouteBudget int
	// RerouteBackoff is the base delay between reroute hops, doubled per
	// hop with the client package's ±50% jitter; zero means 25 ms.
	RerouteBackoff time.Duration
	// HTTPClient overrides the outbound client (tests); nil means a
	// dedicated client with no global timeout — locates are long-lived and
	// are bounded by the inbound request context instead.
	HTTPClient *http.Client
	// Logf, when non-nil, receives coordinator log lines.
	Logf func(format string, args ...any)
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval <= 0 {
		return 2 * time.Second
	}
	return c.ProbeInterval
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	if pi := c.probeInterval(); pi < time.Second {
		return pi
	}
	return time.Second
}

func (c Config) tripAfter() int {
	if c.TripAfter <= 0 {
		return 3
	}
	return c.TripAfter
}

func (c Config) restoreAfter() int {
	if c.RestoreAfter <= 0 {
		return 2
	}
	return c.RestoreAfter
}

func (c Config) heartbeatTTL() time.Duration {
	if c.HeartbeatTTL <= 0 {
		return 15 * time.Second
	}
	return c.HeartbeatTTL
}

func (c Config) rerouteBudget() int {
	if c.RerouteBudget < 0 {
		return 0
	}
	if c.RerouteBudget == 0 {
		return 2
	}
	return c.RerouteBudget
}

func (c Config) rerouteBackoff() time.Duration {
	if c.RerouteBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return c.RerouteBackoff
}

// Coordinator fronts a fleet of locsrv replicas.
type Coordinator struct {
	cfg   Config
	httpc *http.Client
	mux   *http.ServeMux

	// mu guards the replica table and the ring pointer; the ring itself is
	// immutable and rebuilt on every membership change.
	mu       sync.RWMutex
	replicas map[string]*replica
	ring     *ring

	// draining sheds new locates with 503 while in-flight proxies finish.
	draining atomic.Bool

	routed            atomic.Uint64
	rerouted          atomic.Uint64
	shedsAbsorbed     atomic.Uint64
	transportReroutes atomic.Uint64
	routeFailures     atomic.Uint64
	admissionRejects  atomic.Uint64
	heartbeats        atomic.Uint64
	expiredReplicas   atomic.Uint64
}

// New builds a Coordinator with the static replica seed list registered.
func New(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		cfg:      cfg,
		httpc:    cfg.HTTPClient,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	now := time.Now()
	for _, addr := range cfg.Replicas {
		if addr == "" {
			return nil, errors.New("coord: empty replica address")
		}
		if _, dup := c.replicas[addr]; dup {
			return nil, fmt.Errorf("coord: duplicate replica %s", addr)
		}
		c.replicas[addr] = newReplica(addr, true, now)
	}
	c.rebuildRingLocked()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /v1/replicas", c.handleListReplicas)
	mux.HandleFunc("POST /v1/replicas", c.handleRegisterReplica)
	mux.HandleFunc("DELETE /v1/replicas/{addr}", c.handleDeregisterReplica)
	mux.HandleFunc("POST /v1/locate", c.handleLocate)
	mux.HandleFunc("POST /v1/locate-batch", c.handleLocateBatch)
	mux.HandleFunc("GET /v1/tags", c.handleListTags)
	mux.HandleFunc("POST /v1/tags", c.handleAddTag)
	mux.HandleFunc("DELETE /v1/tags/{epc}", c.handleRemoveTag)
	mux.HandleFunc("GET /v1/cluster-stats", c.handleClusterStats)
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler, with panic recovery.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			c.logf("coord: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}()
		c.mux.ServeHTTP(w, r)
	})
}

// Drain flips the coordinator into draining: the health check fails, new
// locates are shed with 503 + Retry-After, and in-flight proxies run to
// completion under http.Server.Shutdown.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// config default passthroughs used by health.go.
func (c *Coordinator) probeInterval() time.Duration { return c.cfg.probeInterval() }
func (c *Coordinator) probeTimeout() time.Duration  { return c.cfg.probeTimeout() }
func (c *Coordinator) tripAfter() int               { return c.cfg.tripAfter() }
func (c *Coordinator) restoreAfter() int            { return c.cfg.restoreAfter() }
func (c *Coordinator) heartbeatTTL() time.Duration  { return c.cfg.heartbeatTTL() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// rebuildRingLocked rebuilds the immutable ring from the current table.
// Callers hold c.mu (New runs before the Coordinator escapes).
func (c *Coordinator) rebuildRingLocked() {
	addrs := make([]string, 0, len(c.replicas))
	for addr := range c.replicas {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	c.ring = newRing(addrs, c.cfg.VirtualNodes)
}

// writeJSON / writeError mirror locsrv's JSON envelope so coordinator and
// replica errors look the same to clients.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// shedResponse writes the coordinator's own 503 backpressure shape.
func shedResponse(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// admit rejects new locate work while draining.
func (c *Coordinator) admit(w http.ResponseWriter) bool {
	if c.draining.Load() {
		c.admissionRejects.Add(1)
		shedResponse(w, errors.New("coordinator draining"))
		return false
	}
	return true
}

// RegisterRequest is the body of POST /v1/replicas: a replica announcing
// (or re-announcing — the same call is the heartbeat) its API address.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// ReplicaInfo is one row of the replica table as served to clients.
type ReplicaInfo struct {
	Addr    string `json:"addr"`
	Static  bool   `json:"static"`
	Healthy bool   `json:"healthy"`
	// Routed counts locate payloads sent to the replica; Sheds counts the
	// failures the coordinator absorbed and rerouted away from it.
	Routed uint64 `json:"routed"`
	Sheds  uint64 `json:"sheds"`
}

// ReplicasResponse carries the table, owner-sorted for stable output.
type ReplicasResponse struct {
	Replicas []ReplicaInfo `json:"replicas"`
}

// replicaTable snapshots the table sorted by address.
func (c *Coordinator) replicaTable() []ReplicaInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ReplicaInfo, 0, len(c.replicas))
	for _, rep := range c.replicas {
		out = append(out, ReplicaInfo{
			Addr:    rep.addr,
			Static:  rep.static,
			Healthy: rep.isHealthy(),
			Routed:  rep.routed.Load(),
			Sheds:   rep.sheds.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func (c *Coordinator) handleListReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ReplicasResponse{Replicas: c.replicaTable()})
}

func (c *Coordinator) handleRegisterReplica(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode register: %w", err))
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("addr required"))
		return
	}
	c.heartbeats.Add(1)
	now := time.Now()
	c.mu.Lock()
	rep, known := c.replicas[req.Addr]
	if known {
		rep.beat(now)
	} else {
		c.replicas[req.Addr] = newReplica(req.Addr, false, now)
		c.rebuildRingLocked()
	}
	c.mu.Unlock()
	if !known {
		c.logf("coord: replica %s registered", req.Addr)
	}
	writeJSON(w, http.StatusOK, ReplicasResponse{Replicas: c.replicaTable()})
}

func (c *Coordinator) handleDeregisterReplica(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	c.mu.Lock()
	_, known := c.replicas[addr]
	if known {
		delete(c.replicas, addr)
		c.rebuildRingLocked()
	}
	c.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown replica %s", addr))
		return
	}
	c.logf("coord: replica %s deregistered", addr)
	writeJSON(w, http.StatusOK, map[string]string{"removed": addr})
}

// candidates returns the replicas to try for key, ring owner first, healthy
// before tripped (tripped ones stay as a last resort — with every replica
// tripped, routing into one beats failing without trying), truncated to the
// reroute budget.
func (c *Coordinator) candidates(key string) []*replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seq := c.ring.sequence(key, len(c.replicas))
	healthy := make([]*replica, 0, len(seq))
	var tripped []*replica
	for _, addr := range seq {
		rep := c.replicas[addr]
		if rep == nil {
			continue
		}
		if rep.isHealthy() {
			healthy = append(healthy, rep)
		} else {
			tripped = append(tripped, rep)
		}
	}
	out := append(healthy, tripped...)
	if max := c.cfg.rerouteBudget() + 1; len(out) > max {
		out = out[:max]
	}
	return out
}

// errNoReplicas means the table is empty (or every candidate was consumed).
var errNoReplicas = errors.New("coord: no replicas available")

// proxyResult is one replica's reply, buffered for relay.
type proxyResult struct {
	status int
	body   []byte
	// addr is the replica that produced the reply.
	addr string
}

// rerouteable classifies a replica transport failure as worth trying the
// next ring candidate. The base taxonomy is the collection client's
// (client.Transient: dial failures, timeouts, connection resets); on top of
// it an abrupt EOF — a replica dying mid-response — is rerouteable here
// because locate requests are idempotent: re-collecting from the reader on
// another replica produces an equivalent answer.
func rerouteable(err error) bool {
	return client.Transient(err) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// forward sends one buffered payload to one replica and buffers the reply.
func (c *Coordinator) forward(ctx context.Context, rep *replica, path string, body []byte) (*proxyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+rep.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // fully read below
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, body: b, addr: rep.addr}, nil
}

// route proxies one payload along key's ring sequence with shed-and-reroute:
// a 503 (replica at capacity or draining), a 504 (replica deadline — the
// work died there, another replica may finish in time), or a rerouteable
// transport error moves on to the next candidate after a jittered backoff;
// every other reply — including 499, the client is gone — relays as-is.
func (c *Coordinator) route(ctx context.Context, path, key string, body []byte) (*proxyResult, error) {
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.routeFailures.Add(1)
		return nil, errNoReplicas
	}
	backoff := c.cfg.rerouteBackoff()
	var lastErr error
	for i, rep := range cands {
		if i > 0 {
			c.rerouted.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(client.RetryJitter(backoff)):
			}
			backoff *= 2
		}
		rep.routed.Add(1)
		res, err := c.forward(ctx, rep, path, body)
		if err != nil {
			if ctx.Err() != nil {
				// The *inbound* request died (client gone or its deadline
				// fired) — not the replica's fault, nothing to reroute.
				return nil, ctx.Err()
			}
			if !rerouteable(err) {
				c.routeFailures.Add(1)
				return nil, fmt.Errorf("replica %s: %w", rep.addr, err)
			}
			c.transportReroutes.Add(1)
			rep.sheds.Add(1)
			// Feed the trip machine so a dead replica leaves the routing
			// set before the next active probe sweep.
			if rep.noteFailure(c.tripAfter()) {
				c.logf("coord: replica %s tripped unhealthy (transport error on %s)", rep.addr, path)
			}
			lastErr = fmt.Errorf("replica %s: %w", rep.addr, err)
			c.logf("coord: %s via %s: transport error, rerouting: %v", path, rep.addr, err)
			continue
		}
		if res.status == http.StatusServiceUnavailable || res.status == http.StatusGatewayTimeout {
			c.shedsAbsorbed.Add(1)
			rep.sheds.Add(1)
			lastErr = fmt.Errorf("replica %s answered %d", rep.addr, res.status)
			c.logf("coord: %s via %s: %d, rerouting", path, rep.addr, res.status)
			continue
		}
		return res, nil
	}
	c.routeFailures.Add(1)
	return nil, fmt.Errorf("coord: all %d route candidates failed: %w", len(cands), lastErr)
}

// relay writes a buffered replica reply to the client unchanged.
func relay(w http.ResponseWriter, res *proxyResult) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tagspin-Replica", res.addr)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // client gone is not actionable
}

// routeErrorStatus maps a route failure to the client-visible status.
func routeErrorStatus(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, locsrv.StatusClientClosedRequest, err)
	default:
		// Exhausted budget or an empty table: the cluster is saturated or
		// degraded — the same "retry later" shape replicas shed with, so
		// clients need one backoff policy for both tiers.
		shedResponse(w, err)
	}
}

// maxLocateBody bounds buffered locate payloads; far above any legal batch.
const maxLocateBody = 1 << 20

func (c *Coordinator) handleLocate(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxLocateBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var req locsrv.LocateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.ReaderAddr == "" {
		writeError(w, http.StatusBadRequest, errors.New("readerAddr required"))
		return
	}
	c.routed.Add(1)
	res, err := c.route(r.Context(), "/v1/locate", req.ReaderAddr, body)
	if err != nil {
		routeErrorStatus(w, err)
		return
	}
	relay(w, res)
}

// handleLocateBatch splits a batch by ring owner, forwards each sub-batch to
// its replica concurrently (with the same shed-and-reroute semantics per
// sub-batch), and reassembles the items in request order.
func (c *Coordinator) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxLocateBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	var req locsrv.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > locsrv.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Requests), locsrv.MaxBatch))
		return
	}
	// Group item indices by ring owner so each reader's traffic stays
	// sticky to its replica even inside batches.
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	groups := make(map[string][]int)
	order := make([]string, 0, 4)
	for i, item := range req.Requests {
		owner := ring.owner(item.ReaderAddr)
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	items := make([]locsrv.BatchItem, len(req.Requests))
	var wg sync.WaitGroup
	wg.Add(len(order))
	for _, owner := range order {
		go func(idx []int) {
			defer wg.Done()
			sub := locsrv.BatchRequest{Requests: make([]locsrv.LocateRequest, len(idx))}
			for j, i := range idx {
				sub.Requests[j] = req.Requests[i]
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				c.failGroup(items, idx, sub, err)
				return
			}
			c.routed.Add(uint64(len(idx)))
			// The group's first reader keys the route; all members share
			// the owner, so the reroute sequence is the same for any key.
			res, err := c.route(r.Context(), "/v1/locate-batch", sub.Requests[0].ReaderAddr, subBody)
			if err != nil {
				c.failGroup(items, idx, sub, err)
				return
			}
			var out locsrv.BatchResponse
			if err := json.Unmarshal(res.body, &out); err != nil || len(out.Items) != len(idx) {
				c.failGroup(items, idx, sub, fmt.Errorf("replica %s: malformed batch reply (%d items, err %v)", res.addr, len(out.Items), err))
				return
			}
			for j, i := range idx {
				items[i] = out.Items[j]
			}
		}(groups[owner])
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, locsrv.BatchResponse{Items: items})
}

// failGroup fills a routed group's items with the route failure.
func (c *Coordinator) failGroup(items []locsrv.BatchItem, idx []int, sub locsrv.BatchRequest, err error) {
	for j, i := range idx {
		items[i] = locsrv.BatchItem{ReaderAddr: sub.Requests[j].ReaderAddr, Error: err.Error()}
	}
}

// handleListTags serves the registry from the first replica that answers —
// tag writes fan out to all replicas, so any reachable registry is
// authoritative.
func (c *Coordinator) handleListTags(w http.ResponseWriter, r *http.Request) {
	var lastErr error = errNoReplicas
	for _, info := range c.replicaTable() {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://"+info.Addr+"/v1/tags", nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck // fully read
		if err != nil {
			lastErr = err
			continue
		}
		relay(w, &proxyResult{status: resp.StatusCode, body: b, addr: info.Addr})
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no replica answered /v1/tags: %w", lastErr))
}

// fanOut sends the same registry mutation to every replica; the fleet's
// registries must agree or locates would answer differently per route.
func (c *Coordinator) fanOut(ctx context.Context, method, path string, body []byte) (*proxyResult, error) {
	table := c.replicaTable()
	if len(table) == 0 {
		return nil, errNoReplicas
	}
	var first *proxyResult
	var failures []string
	for _, info := range table {
		req, err := http.NewRequestWithContext(ctx, method, "http://"+info.Addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", info.Addr, err))
			continue
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck // fully read
		if rerr != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", info.Addr, rerr))
			continue
		}
		if resp.StatusCode >= 300 {
			failures = append(failures, fmt.Sprintf("%s: status %d: %s", info.Addr, resp.StatusCode, bytes.TrimSpace(b)))
			continue
		}
		if first == nil {
			first = &proxyResult{status: resp.StatusCode, body: b, addr: info.Addr}
		}
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("%s %s failed on %d/%d replicas: %s", method, path, len(failures), len(table), failures)
	}
	return first, nil
}

func (c *Coordinator) handleAddTag(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxLocateBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	res, err := c.fanOut(r.Context(), http.MethodPost, "/v1/tags", body)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, res)
}

func (c *Coordinator) handleRemoveTag(w http.ResponseWriter, r *http.Request) {
	res, err := c.fanOut(r.Context(), http.MethodDelete, "/v1/tags/"+r.PathValue("epc"), nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, res)
}
