package core_test

import (
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

// TestDebugBearingErrors is a diagnostic that prints per-tag azimuth errors;
// it never fails. Run with -v to inspect.
func TestDebugBearingErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.8, 1.4, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{{}, {DisableOrientation: true}} {
		res, err := core.NewLocator(cfg).Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range res.Bearings {
			var diskCenter geom.Vec3
			for _, r := range registered {
				if r.EPC == b.EPC {
					diskCenter = r.Disk.Center
				}
			}
			want := target.Sub(diskCenter).Azimuth()
			t.Logf("disableOrient=%v tag %s: az=%.3f° want=%.3f° err=%.3f° n=%d",
				cfg.DisableOrientation, b.EPC.String()[:6],
				geom.Degrees(b.Azimuth), geom.Degrees(want),
				geom.Degrees(geom.AngleDistance(b.Azimuth, want)), b.Snapshots)
		}
		t.Logf("disableOrient=%v pos=%v err=%.1fcm", cfg.DisableOrientation,
			res.Position, res.Position.DistanceTo(target.XY())*100)
	}
}
