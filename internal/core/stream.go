package core

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/tags"
)

// streamBuffer is the ingestion queue depth between the collecting
// goroutine and the accumulation worker. Folding one snapshot into a 720
// cell grid takes a few microseconds while reader reports arrive hundreds
// of microseconds apart, so the queue's steady-state depth is ~0; the
// buffer absorbs report bursts (one ROAccessReport can carry many tags)
// without backpressuring the protocol loop.
const streamBuffer = 256

// streamItem is one queued snapshot, or (when sync is non-nil) a Quiesce
// marker the worker closes once everything queued before it has been folded.
type streamItem struct {
	epc  tags.EPC
	snap phase.Snapshot
	sync chan struct{}
}

// StreamStats counts what a Stream did, for serving metrics.
type StreamStats struct {
	// Snapshots is how many snapshots were enqueued.
	Snapshots int64
	// MaxBacklog is the ingestion queue's high-water mark.
	MaxBacklog int64
	// StreamedTags counts tag estimates served from streamed sums at
	// finalize; FallbackTags counts tag estimates that fell back to the
	// batch path (disordered arrival, channel mismatch, or a bootstrap-kind
	// mismatch between construction and finalize).
	StreamedTags, FallbackTags int64
}

// freqAcc accumulates one tag's snapshots on one carrier frequency. The
// batch pipeline localizes each tag on its dominant channel only; streaming
// cannot know the dominant channel until the session ends, so it folds
// every channel into its own accumulator and finalizes from whichever one
// matches the batch selection.
type freqAcc struct {
	freq   float64
	acc    *spectrum.Accumulator
	last   time.Duration
	failed bool // disordered arrival or Add failure: unusable at finalize
}

// tagStream is the per-registered-tag ingestion state.
type tagStream struct {
	tag  SpinningTag
	accs []*freqAcc
}

// find returns the accumulator for freq, or nil.
func (ts *tagStream) find(freq float64) *freqAcc {
	for _, fa := range ts.accs {
		if fa.freq == freq {
			return fa
		}
	}
	return nil
}

// Stream overlaps spectrum accumulation with tag collection: snapshots
// reported mid-session are folded into per-tag, per-channel streaming
// accumulators (spectrum.Accumulator) as they arrive, so the coarse grid
// scan — the bulk of a locate's cost — is already done when the session
// ends, and Finalize2D/Finalize3D only run the argmax, the refinement
// rounds, and the bearing intersection.
//
// The finalize result is bit-identical to the batch Locate2D/Locate3D on
// the same observations: the accumulators reproduce the batch coarse scan
// exactly for in-order arrivals, and any condition that would break that
// equivalence — out-of-order or duplicate timestamps on a tag's dominant
// channel, a snapshot the accumulator rejects, a bootstrap-kind mismatch —
// quietly downgrades the affected tag (or the whole finalize) to the batch
// path. Fallbacks are counted in Stats.
//
// Report is called from the collecting goroutine; everything else must run
// on the owner's goroutine, after collection has returned. Reset discards
// all accumulated state for a retry attempt; Close releases the worker.
type Stream struct {
	loc        *Locator
	registered []SpinningTag
	threeD     bool
	kind       spectrum.Kind // predicted bootstrap kind accumulators use

	byEPC   map[tags.EPC]*tagStream
	ch      chan streamItem
	done    chan struct{}
	stopped bool

	snapshots  atomic.Int64
	maxBacklog atomic.Int64
	streamed   atomic.Int64
	fallbacks  atomic.Int64
}

// NewStream2D builds a streaming session for a 2D locate of the registered
// tags. The accumulators assume the bootstrap kind the registration list
// implies (Q when any registered tag carries an orientation calibration);
// if the tags actually present at finalize imply a different kind, the
// finalize falls back to batch wholesale.
func (l *Locator) NewStream2D(registered []SpinningTag) *Stream {
	return l.newStream(registered, false)
}

// NewStream3D is NewStream2D for a 3D locate.
func (l *Locator) NewStream3D(registered []SpinningTag) *Stream {
	return l.newStream(registered, true)
}

func (l *Locator) newStream(registered []SpinningTag, threeD bool) *Stream {
	s := &Stream{
		loc:        l,
		registered: registered,
		threeD:     threeD,
		kind:       l.bootstrapKind(registered),
	}
	s.start()
	return s
}

// start (re)initializes the ingestion state and launches the worker.
func (s *Stream) start() {
	s.byEPC = make(map[tags.EPC]*tagStream, len(s.registered))
	for _, tag := range s.registered {
		tag := tag
		s.byEPC[tag.EPC] = &tagStream{tag: tag}
	}
	s.ch = make(chan streamItem, streamBuffer)
	s.done = make(chan struct{})
	s.stopped = false
	go s.run()
}

// stop closes the queue and joins the worker; idempotent.
func (s *Stream) stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.ch)
	<-s.done
}

// Close stops the worker without finalizing. Safe after Finalize (no-op).
func (s *Stream) Close() { s.stop() }

// Reset discards every accumulated snapshot and restarts the worker — the
// hook for collection retries, where a failed attempt has already streamed
// a partial prefix that must not contaminate the next attempt. Must not be
// called while a collector might still call Report.
func (s *Stream) Reset() {
	s.stop()
	s.start()
}

// Report ingests one snapshot; it is the client.ReportFunc for this
// session. It only enqueues — accumulation happens on the Stream's worker —
// so the collection protocol loop is never blocked for more than a queue
// slot. Must not be called after Finalize, Reset, or Close.
func (s *Stream) Report(epc tags.EPC, snap phase.Snapshot) {
	s.snapshots.Add(1)
	if b := int64(len(s.ch)) + 1; b > s.maxBacklog.Load() {
		s.maxBacklog.Store(b)
	}
	s.ch <- streamItem{epc: epc, snap: snap}
}

// Backlog reports the snapshots currently queued but not yet folded.
func (s *Stream) Backlog() int { return len(s.ch) }

// Quiesce blocks until every snapshot reported so far has been folded. A
// session that keeps up with its reader finishes collection with an empty
// queue, so Finalize pays no fold cost; Quiesce reproduces that steady state
// for benchmarks and tests that replay a session faster than real time.
// Like Report, it must not be called after Finalize, Reset, or Close.
func (s *Stream) Quiesce() {
	done := make(chan struct{})
	s.ch <- streamItem{sync: done}
	<-done
}

// Stats returns the session's counters. Safe to call concurrently with
// Report (gauges may lag by one snapshot).
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		Snapshots:    s.snapshots.Load(),
		MaxBacklog:   s.maxBacklog.Load(),
		StreamedTags: s.streamed.Load(),
		FallbackTags: s.fallbacks.Load(),
	}
}

// run is the accumulation worker: it drains the queue into the per-tag
// accumulators until the queue closes.
func (s *Stream) run() {
	defer close(s.done)
	for it := range s.ch {
		if it.sync != nil {
			close(it.sync)
			continue
		}
		s.ingest(it)
	}
}

// ingest folds one snapshot. Unregistered tags and broken channels are
// ignored (the batch path drops or rejects them too); ordering violations
// poison only the affected (tag, channel) accumulator.
func (s *Stream) ingest(it streamItem) {
	ts := s.byEPC[it.epc]
	if ts == nil || it.snap.FrequencyHz <= 0 {
		return
	}
	fa := ts.find(it.snap.FrequencyHz)
	if fa == nil {
		fa = &freqAcc{freq: it.snap.FrequencyHz}
		if acc, err := s.newAccumulator(ts.tag); err != nil {
			fa.failed = true
		} else {
			fa.acc = acc
		}
		ts.accs = append(ts.accs, fa)
	}
	if fa.failed {
		return
	}
	if fa.acc.Snapshots() > 0 && it.snap.Time <= fa.last {
		// The batch path time-sorts with a non-stable sort, so only a
		// strictly increasing arrival order is guaranteed to reproduce its
		// snapshot order bit for bit. Anything else downgrades this
		// channel to the batch path at finalize.
		fa.failed = true
		return
	}
	fa.last = it.snap.Time
	if err := fa.acc.Add(it.snap); err != nil {
		fa.failed = true
	}
}

// newAccumulator builds the per-(tag, channel) accumulator with exactly the
// parameters the batch per-tag estimate would use.
func (s *Stream) newAccumulator(tag SpinningTag) (*spectrum.Accumulator, error) {
	cfg := s.loc.cfg
	params := spectrum.Params{Disk: tag.Disk, Sigma: cfg.Sigma, LiteralReference: cfg.LiteralReference}
	if s.threeD {
		return spectrum.NewAccumulator3D(params, s.kind, cfg.Search, cfg.evalOpts()...)
	}
	return spectrum.NewAccumulator2D(params, s.kind, cfg.Search, cfg.evalOpts()...)
}

// usableAcc returns the accumulator that matches the batch selection for
// this tag — same dominant channel, same snapshot count, clean in-order
// history — or nil when the tag must fall back to batch.
func (s *Stream) usableAcc(tag SpinningTag, selected []phase.Snapshot) *freqAcc {
	ts := s.byEPC[tag.EPC]
	if ts == nil || len(selected) == 0 {
		return nil
	}
	fa := ts.find(selected[0].FrequencyHz)
	if fa == nil || fa.failed || fa.acc == nil || fa.acc.Snapshots() != len(selected) {
		return nil
	}
	return fa
}

// Finalize2D completes the streamed session against the full observations
// the collection returned: batch-identical selection and validation, per-tag
// peaks from the streamed sums (or batch fallback), then the shared solve
// and orientation passes. The result is bit-identical to
// Locate2DContext(ctx, registered, obs).
func (s *Stream) Finalize2D(ctx context.Context, obs Observations) (Result2D, error) {
	s.stop()
	l := s.loc
	present, selected, err := l.selectAll(s.registered, obs)
	if err != nil {
		return Result2D{}, err
	}
	if err := ctxErr(ctx); err != nil {
		return Result2D{}, err
	}
	kind := l.bootstrapKind(present)
	streamable := kind == s.kind && !s.threeD
	etags, err := estimateAll(present, func(tag SpinningTag) (EstimatorTag, error) {
		sel := selected[tag.EPC.String()]
		if streamable {
			if fa := s.usableAcc(tag, sel); fa != nil {
				if az, pow, err := fa.acc.FindPeak2D(); err == nil {
					s.streamed.Add(1)
					return EstimatorTag{
						Tag:   tag,
						Snaps: sel,
						Est:   TagEstimate{EPC: tag.EPC, Azimuth: az, Power: pow, Snapshots: len(sel)},
					}, nil
				}
			}
		}
		s.fallbacks.Add(1)
		return l.estimate2D(tag, sel, kind, nil)
	})
	if err != nil {
		return Result2D{}, err
	}
	sol, err := l.est.Solve2D(etags)
	if err != nil {
		return Result2D{}, err
	}
	return l.finish2D(ctx, present, selected, etags, sol)
}

// Finalize3D is Finalize2D for a 3D locate; bit-identical to
// Locate3DContext(ctx, registered, obs).
func (s *Stream) Finalize3D(ctx context.Context, obs Observations) (Result3D, error) {
	s.stop()
	l := s.loc
	present, selected, err := l.selectAll(s.registered, obs)
	if err != nil {
		return Result3D{}, err
	}
	if err := ctxErr(ctx); err != nil {
		return Result3D{}, err
	}
	kind := l.bootstrapKind(present)
	streamable := kind == s.kind && s.threeD
	etags, err := estimateAll(present, func(tag SpinningTag) (EstimatorTag, error) {
		sel := selected[tag.EPC.String()]
		if streamable {
			if fa := s.usableAcc(tag, sel); fa != nil {
				if pk, err := fa.acc.FindPeak3D(); err == nil {
					s.streamed.Add(1)
					return EstimatorTag{
						Tag:   tag,
						Snaps: sel,
						Est: TagEstimate{
							EPC:       tag.EPC,
							Azimuth:   pk.Azimuth,
							Polar:     pk.Polar,
							Power:     pk.Power,
							Snapshots: len(sel),
						},
					}, nil
				}
			}
		}
		s.fallbacks.Add(1)
		return l.estimate3D(tag, sel, kind, nil)
	})
	if err != nil {
		return Result3D{}, err
	}
	sol, err := l.est.Solve3D(etags)
	if err != nil {
		return Result3D{}, err
	}
	return l.finish3D(ctx, present, selected, etags, sol)
}

// Locate2DStream runs a 2D locate with collection and accumulation
// overlapped: collect receives a sink to call per decoded snapshot (wire it
// to client.CollectStream) and returns the complete observations, which
// Finalize2D then turns into the position. The result is bit-identical to
// collecting first and calling Locate2DContext after.
func (l *Locator) Locate2DStream(ctx context.Context, registered []SpinningTag, collect func(sink func(tags.EPC, phase.Snapshot)) (Observations, error)) (Result2D, error) {
	st := l.NewStream2D(registered)
	defer st.Close()
	obs, err := collect(st.Report)
	if err != nil {
		return Result2D{}, err
	}
	return st.Finalize2D(ctx, obs)
}

// Locate3DStream is Locate2DStream for a 3D locate.
func (l *Locator) Locate3DStream(ctx context.Context, registered []SpinningTag, collect func(sink func(tags.EPC, phase.Snapshot)) (Observations, error)) (Result3D, error) {
	st := l.NewStream3D(registered)
	defer st.Close()
	obs, err := collect(st.Report)
	if err != nil {
		return Result3D{}, err
	}
	return st.Finalize3D(ctx, obs)
}
