package core

import (
	"fmt"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/phase"
)

// EstimatorTag is one tag's input to the solve stage: the registered tag,
// the snapshots behind the spectrum pass (channel-filtered, time-sorted,
// and orientation-corrected when a correction pass produced them), and the
// spectrum peak. Grid backends consume only Est; model-based backends
// (internal/estimate) rebuild their own likelihood from Snaps.
type EstimatorTag struct {
	// Tag is the registered spinning tag.
	Tag SpinningTag
	// Snaps are the snapshots the estimate was computed from.
	Snaps []phase.Snapshot
	// Est is the per-tag spectrum peak.
	Est TagEstimate
}

// Confidence is an estimator's uncertainty report for a position estimate.
// Backends that cannot quantify uncertainty (the grid backend) return nil
// instead.
type Confidence struct {
	// Cov is the position covariance in m²; 2D solutions populate the
	// upper-left 2×2 block and leave the z row/column zero.
	Cov [3][3]float64
	// SemiMajorM, SemiMinorM, and OrientationRad describe the horizontal
	// 1σ confidence ellipse: semi-axes in meters and the semi-major axis
	// direction CCW from +x. A 2D Gaussian puts ≈39.3% of its mass inside
	// the 1σ contour.
	SemiMajorM     float64
	SemiMinorM     float64
	OrientationRad float64
	// SigmaZM is the 1σ height uncertainty (3D solutions only).
	SigmaZM float64
	// LogLikelihood is the joint log-likelihood at the optimum.
	LogLikelihood float64
	// MirrorLogLikelihood is the rejected ±z mirror candidate's
	// log-likelihood (3D only): the margin to LogLikelihood is how
	// decisively the likelihood resolved the ambiguity.
	MirrorLogLikelihood float64
}

// Solution2D is an estimator's 2D output.
type Solution2D struct {
	// Position is the estimated reader position in the plane.
	Position geom.Vec2
	// Confidence, when non-nil, quantifies the estimate's uncertainty.
	Confidence *Confidence
}

// Solution3D is an estimator's 3D output.
type Solution3D struct {
	// Position is the selected reader position estimate.
	Position geom.Vec3
	// Mirror is the rejected ±z mirror candidate (§V-B).
	Mirror geom.Vec3
	// ZSpread is the disagreement between the selected candidate's
	// per-tag height estimates.
	ZSpread float64
	// Confidence, when non-nil, quantifies the estimate's uncertainty.
	Confidence *Confidence
}

// Estimator turns per-tag spectrum estimates into a position. It is the
// pluggable solve stage of the pipeline: the default GridEstimator
// intersects bearing lines exactly as §V of the paper describes, while
// internal/estimate provides a joint maximum-likelihood backend with
// covariance output. Both the batch and streaming pipelines route every
// solve pass (bootstrap and orientation-correction iterations alike)
// through the configured Estimator.
//
// Implementations must be safe for concurrent use by multiple locates.
type Estimator interface {
	// Name identifies the backend ("grid", "ml") in results and stats.
	Name() string
	// Solve2D fuses the tags' azimuth estimates into a planar position.
	Solve2D(tags []EstimatorTag) (Solution2D, error)
	// Solve3D fuses the tags' (azimuth, polar) estimates into a spatial
	// position and its ±z mirror.
	Solve3D(tags []EstimatorTag) (Solution3D, error)
}

// GridEstimator is the default solve backend: weighted bearing-line
// intersection (locate.Solve2D/Solve3D) with the ±z mirror resolved by the
// configured dead-space policy.
type GridEstimator struct {
	// Policy resolves the 3D mirror ambiguity; zero means
	// locate.ZPreferNonNegative.
	Policy locate.ZPolicy
}

// Name implements Estimator.
func (GridEstimator) Name() string { return "grid" }

// liveTags drops tags whose spectrum peak carries no weight evidence: a
// dead tag's all-zero profile reports Power 0, and locate's Weight-0
// sentinel would silently fuse it at full strength (Weight 0 means 1
// there). At least two live tags must remain.
func liveTags(tags []EstimatorTag) ([]EstimatorTag, error) {
	live := make([]EstimatorTag, 0, len(tags))
	for _, t := range tags {
		if t.Est.Power > 0 {
			live = append(live, t)
		}
	}
	if len(live) < 2 {
		return nil, fmt.Errorf("core: only %d of %d tags have a usable (power > 0) spectrum peak: %w",
			len(live), len(tags), locate.ErrTooFewBearings)
	}
	return live, nil
}

// Solve2D implements Estimator.
func (GridEstimator) Solve2D(tags []EstimatorTag) (Solution2D, error) {
	live, err := liveTags(tags)
	if err != nil {
		return Solution2D{}, err
	}
	bearings := make([]locate.Bearing2D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing2D{
			Origin:  t.Tag.Disk.Center.XY(),
			Azimuth: t.Est.Azimuth,
			Weight:  t.Est.Power,
		}
	}
	pos, err := locate.Solve2D(bearings)
	if err != nil {
		return Solution2D{}, err
	}
	return Solution2D{Position: pos}, nil
}

// Solve3D implements Estimator.
func (g GridEstimator) Solve3D(tags []EstimatorTag) (Solution3D, error) {
	live, err := liveTags(tags)
	if err != nil {
		return Solution3D{}, err
	}
	bearings := make([]locate.Bearing3D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing3D{
			Origin:  t.Tag.Disk.Center,
			Azimuth: t.Est.Azimuth,
			Polar:   t.Est.Polar,
			Weight:  t.Est.Power,
		}
	}
	cands, err := locate.Solve3D(bearings, locate.Options3D{Policy: locate.ZKeepBoth})
	if err != nil {
		return Solution3D{}, err
	}
	best, mirror := cands[0], cands[1] // above-planes first
	if g.Policy == locate.ZPreferNonPositive {
		best, mirror = mirror, best
	}
	return Solution3D{
		Position: best.Position,
		Mirror:   mirror.Position,
		ZSpread:  best.ZSpread,
	}, nil
}

// tagEstimates extracts the per-tag peaks for a result's Bearings field.
func tagEstimates(tags []EstimatorTag) []TagEstimate {
	out := make([]TagEstimate, len(tags))
	for i, t := range tags {
		out[i] = t.Est
	}
	return out
}
