package core_test

import (
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

// TestDebugBiasSources isolates systematic bearing-error sources. Diagnostic
// only; run with -v.
func TestDebugBiasSources(t *testing.T) {
	cases := []struct {
		name        string
		orientation float64 // channel injection scale
		noise       float64
		calibrate   bool
	}{
		{"clean-no-orient-no-noise", 0, 0, false},
		{"noise-only", 0, 0.1, false},
		{"orient-only-uncal", 1, 0, false},
		{"orient-only-cal", 1, 0, true},
		{"full-cal", 1, 0.1, true},
	}
	target := geom.V3(-1.8, 1.4, 0)
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(42))
		sc := testbed.DefaultScenario(0, rng)
		sc.Channel.OrientationEffect = tc.orientation
		sc.Channel.PhaseNoiseStd = tc.noise
		sc.PlaceReader(target)
		registered := []core.SpinningTag(nil)
		var err error
		if tc.calibrate {
			registered, err = sc.CalibratedSpinningTags(rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		col, err := sc.Collect(rng)
		if err != nil {
			t.Fatal(err)
		}
		if registered == nil {
			registered = col.Registered
		}
		res, err := core.NewLocator(core.Config{}).Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range res.Bearings {
			var diskCenter geom.Vec3
			for _, r := range registered {
				if r.EPC == b.EPC {
					diskCenter = r.Disk.Center
				}
			}
			want := target.Sub(diskCenter).Azimuth()
			t.Logf("%-26s tag%d err=%.3f°", tc.name, i,
				geom.Degrees(geom.AngleDistance(b.Azimuth, want)))
		}
		t.Logf("%-26s pos err=%.1fcm", tc.name, res.Position.DistanceTo(target.XY())*100)
	}
}
