package core

import (
	"errors"
	"math"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

// bearingTag builds an EstimatorTag whose peak points from origin toward
// target (exact azimuth/polar, unit power).
func bearingTag(id byte, origin, target geom.Vec3, power float64) EstimatorTag {
	d := target.Sub(origin)
	horiz := math.Hypot(d.X, d.Y)
	epc := tags.EPC{id}
	return EstimatorTag{
		Tag: SpinningTag{
			EPC:  epc,
			Disk: spindisk.Disk{Center: origin, Radius: 0.10, Omega: math.Pi},
		},
		Est: TagEstimate{
			EPC:     epc,
			Azimuth: math.Atan2(d.Y, d.X),
			Polar:   math.Atan2(d.Z, horiz),
			Power:   power,
		},
	}
}

func TestGridEstimatorSolve2D(t *testing.T) {
	target := geom.V3(1.3, -0.8, 0)
	etags := []EstimatorTag{
		bearingTag(1, geom.V3(-0.25, 0, 0), target, 1),
		bearingTag(2, geom.V3(0.25, 0, 0), target, 1),
	}
	sol, err := GridEstimator{}.Solve2D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if d := sol.Position.DistanceTo(target.XY()); d > 1e-9 {
		t.Errorf("position %v, want %v (err %g)", sol.Position, target.XY(), d)
	}
	if sol.Confidence != nil {
		t.Errorf("grid backend should not report confidence")
	}
}

func TestGridEstimatorDropsZeroPowerTags(t *testing.T) {
	target := geom.V3(1.3, -0.8, 0)
	good1 := bearingTag(1, geom.V3(-0.25, 0, 0), target, 1)
	good2 := bearingTag(2, geom.V3(0.25, 0, 0), target, 1)
	// A dead tag's all-zero profile: Power 0 and a wildly wrong azimuth.
	// Before the liveTags filter this fused at full weight (locate's
	// Weight-0 sentinel means 1) and dragged the fix away from the target.
	dead := bearingTag(3, geom.V3(0, 0.25, 0), geom.V3(-5, 5, 0), 0)

	sol, err := GridEstimator{}.Solve2D([]EstimatorTag{good1, good2, dead})
	if err != nil {
		t.Fatal(err)
	}
	if d := sol.Position.DistanceTo(target.XY()); d > 1e-9 {
		t.Errorf("zero-power tag was not dropped: position %v, want %v", sol.Position, target.XY())
	}

	sol3, err := GridEstimator{}.Solve3D([]EstimatorTag{good1, good2, dead})
	if err != nil {
		t.Fatal(err)
	}
	if d := sol3.Position.DistanceTo(target); d > 1e-9 {
		t.Errorf("3D: zero-power tag was not dropped: position %v, want %v", sol3.Position, target)
	}

	// With fewer than two live tags the solve must refuse, wrapping the
	// locate sentinel.
	_, err = GridEstimator{}.Solve2D([]EstimatorTag{good1, dead})
	if !errors.Is(err, locate.ErrTooFewBearings) {
		t.Errorf("err = %v, want ErrTooFewBearings", err)
	}
}

func TestGridEstimatorSolve3DPolicy(t *testing.T) {
	planeZ := 0.5
	target := geom.V3(1.1, 0.7, 1.3)
	etags := []EstimatorTag{
		bearingTag(1, geom.V3(-0.25, 0, planeZ), target, 1),
		bearingTag(2, geom.V3(0.25, 0, planeZ), target, 1),
	}
	sol, err := GridEstimator{}.Solve3D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if d := sol.Position.DistanceTo(target); d > 1e-9 {
		t.Errorf("position %v, want %v", sol.Position, target)
	}
	mirrorZ := 2*planeZ - target.Z
	if math.Abs(sol.Mirror.Z-mirrorZ) > 1e-9 {
		t.Errorf("mirror z = %v, want %v (reflection about the disk planes)", sol.Mirror.Z, mirrorZ)
	}

	below, err := GridEstimator{Policy: locate.ZPreferNonPositive}.Solve3D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(below.Position.Z-mirrorZ) > 1e-9 {
		t.Errorf("ZPreferNonPositive position z = %v, want %v", below.Position.Z, mirrorZ)
	}
	if math.Abs(below.Mirror.Z-target.Z) > 1e-9 {
		t.Errorf("ZPreferNonPositive mirror z = %v, want %v", below.Mirror.Z, target.Z)
	}
}

func TestWithEstimatorSwapsBackend(t *testing.T) {
	l := NewLocator(Config{ZPolicy: locate.ZPreferNonPositive})
	if l.est.Name() != "grid" {
		t.Fatalf("default backend = %q, want grid", l.est.Name())
	}
	if g, ok := l.est.(GridEstimator); !ok || g.Policy != locate.ZPreferNonPositive {
		t.Fatalf("default backend does not carry the configured ZPolicy: %#v", l.est)
	}
	swapped := l.WithEstimator(fakeEstimator{})
	if swapped.est.Name() != "fake" {
		t.Errorf("swapped backend = %q, want fake", swapped.est.Name())
	}
	if l.est.Name() != "grid" {
		t.Errorf("original locator mutated by WithEstimator")
	}
	back := swapped.WithEstimator(nil)
	if g, ok := back.est.(GridEstimator); !ok || g.Policy != locate.ZPreferNonPositive {
		t.Errorf("WithEstimator(nil) should restore the configured grid backend, got %#v", back.est)
	}
}

type fakeEstimator struct{}

func (fakeEstimator) Name() string { return "fake" }
func (fakeEstimator) Solve2D(tags []EstimatorTag) (Solution2D, error) {
	return Solution2D{}, nil
}
func (fakeEstimator) Solve3D(tags []EstimatorTag) (Solution3D, error) {
	return Solution3D{}, nil
}
