package core_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

func TestLocate2DRecoversReader(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.8, 1.4, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	res, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	errDist := res.Position.DistanceTo(target.XY())
	if errDist > 0.10 {
		t.Errorf("2D error %.1f cm, want < 10 cm (pos %v)", errDist*100, res.Position)
	}
	if len(res.Bearings) != 2 {
		t.Errorf("bearings = %d, want 2", len(res.Bearings))
	}
	for _, b := range res.Bearings {
		if b.Snapshots < 20 {
			t.Errorf("tag %s contributed only %d snapshots", b.EPC, b.Snapshots)
		}
		if b.Power <= 0 {
			t.Errorf("tag %s peak power %v", b.EPC, b.Power)
		}
	}
}

func TestLocate2DAcrossPlacements(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(2.5, 0.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	for i := 0; i < 5; i++ {
		az := rng.Float64() * 2 * math.Pi
		d := 1.2 + 1.3*rng.Float64()
		target := geom.V3(d*math.Cos(az), d*math.Sin(az), 0)
		// Skip near-collinear placements where bearing intersection is
		// ill-conditioned by construction (the F10 experiment
		// characterizes the full error distribution including those).
		if math.Abs(math.Sin(az)) < 0.4 {
			continue
		}
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := loc.Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
		if e := res.Position.DistanceTo(target.XY()); e > 0.25 {
			t.Errorf("placement %d (%v): error %.1f cm", i, target, e*100)
		}
	}
}

func TestLocate3DRecoversElevatedReader(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := testbed.DefaultScenario(0.095, rng)
	target := geom.V3(-1.6, 1.2, 1.1)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	res, err := loc.Locate3D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Position.DistanceTo(target); e > 0.25 {
		t.Errorf("3D error %.1f cm (pos %v)", e*100, res.Position)
	}
	// The mirror candidate reflects through the fused disk plane height.
	if res.Mirror.XY().DistanceTo(res.Position.XY()) > 1e-9 {
		t.Error("mirror candidate moved horizontally")
	}
	if res.Mirror.Z >= res.Position.Z {
		t.Errorf("mirror z %v should sit below selected z %v", res.Mirror.Z, res.Position.Z)
	}
}

func TestLocate3DZPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.5, 1.0, 0.8)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	down := core.NewLocator(core.Config{ZPolicy: locate.ZPreferNonPositive})
	res, err := down.Locate3D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position.Z > 0 {
		t.Errorf("ZPreferNonPositive picked z = %v", res.Position.Z)
	}
}

func TestOrientationCalibrationImprovesAccuracy(t *testing.T) {
	// The Fig. 11(b) effect, as a statistical test over several trials:
	// with calibration the mean error must be smaller.
	rng := rand.New(rand.NewSource(17))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(2.0, 1.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	withCal := core.NewLocator(core.Config{})
	without := core.NewLocator(core.Config{DisableOrientation: true})
	var sumWith, sumWithout float64
	const trials = 8
	for i := 0; i < trials; i++ {
		az := 0.4 + 2.2*rng.Float64()
		d := 1.5 + 2.0*rng.Float64()
		target := geom.V3(d*math.Cos(az), d*math.Sin(az), 0)
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			t.Fatal(err)
		}
		a, err := withCal.Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := without.Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatal(err)
		}
		sumWith += a.Position.DistanceTo(target.XY())
		sumWithout += b.Position.DistanceTo(target.XY())
	}
	if sumWith >= sumWithout {
		t.Errorf("orientation calibration did not help: with %.1f cm vs without %.1f cm (means)",
			sumWith/trials*100, sumWithout/trials*100)
	}
}

func TestLocate2DWithHoppingReader(t *testing.T) {
	// With random channel hopping the pipeline must select the dominant
	// channel group rather than mixing carriers.
	rng := rand.New(rand.NewSource(19))
	sc := testbed.DefaultScenario(0, rng)
	sc.HopChannel = -1
	sc.Rotations = 6 // more rotations so the dominant channel still has enough reads
	sc.ReadRateHz = 160
	target := geom.V3(-1.2, 2.0, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{MinSnapshots: 8})
	res, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Position.DistanceTo(target.XY()); e > 0.30 {
		t.Errorf("hopping 2D error %.1f cm", e*100)
	}
}

func TestLocate2DErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(2, 1, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	// No registered tags at all.
	if _, err := loc.Locate2D(nil, col.Obs); !errors.Is(err, core.ErrTooFewTags) {
		t.Errorf("err = %v, want ErrTooFewTags", err)
	}
	// Only one tag has observations.
	one := col.Registered[:1]
	if _, err := loc.Locate2D(one, col.Obs); !errors.Is(err, core.ErrTooFewTags) {
		t.Errorf("err = %v, want ErrTooFewTags", err)
	}
	// A tag with too few snapshots.
	starved := make(core.Observations)
	for epc, snaps := range col.Obs {
		starved[epc] = snaps[:3]
	}
	if _, err := loc.Locate2D(col.Registered, starved); !errors.Is(err, core.ErrTooFewSnapshots) {
		t.Errorf("err = %v, want ErrTooFewSnapshots", err)
	}
	if _, err := loc.Locate3D(col.Registered, starved); !errors.Is(err, core.ErrTooFewSnapshots) {
		t.Errorf("3D err = %v, want ErrTooFewSnapshots", err)
	}
}

func TestLocatorKindQAlsoWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(1.9, -1.3, 0)
	sc.PlaceReader(target)
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{Kind: spectrum.KindQ})
	res, err := loc.Locate2D(col.Registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Position.DistanceTo(target.XY()); e > 0.3 {
		t.Errorf("Q-profile 2D error %.1f cm", e*100)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() geom.Vec2 {
		rng := rand.New(rand.NewSource(31))
		sc := testbed.DefaultScenario(0, rng)
		target := geom.V3(-2.0, 1.0, 0)
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.NewLocator(core.Config{}).Locate2D(col.Registered, col.Obs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Position
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
}

func TestSnapshotsUnmodifiedByPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-2.0, 1.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Deep-copy the observations for comparison.
	before := make(map[string][]phase.Snapshot, len(col.Obs))
	for epc, snaps := range col.Obs {
		before[epc.String()] = append([]phase.Snapshot(nil), snaps...)
	}
	if _, err := core.NewLocator(core.Config{}).Locate2D(registered, col.Obs); err != nil {
		t.Fatal(err)
	}
	for epc, snaps := range col.Obs {
		orig := before[epc.String()]
		for i := range snaps {
			if snaps[i] != orig[i] {
				t.Fatalf("tag %s snapshot %d mutated", epc, i)
			}
		}
	}
}

func TestValidateRegistration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	good := col.Registered[0]
	diag, err := loc.ValidateRegistration(good, col.Obs[good.EPC])
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Coherent {
		t.Errorf("correct registration flagged incoherent: %+v", diag)
	}
	// Corrupt the registered angular velocity: the stack must decohere.
	bad := good
	bad.Disk.Omega *= 1.5
	diag, err = loc.ValidateRegistration(bad, col.Obs[good.EPC])
	if err != nil {
		t.Fatal(err)
	}
	if diag.Coherent {
		t.Errorf("wrong omega not detected: peak power %v", diag.PeakPower)
	}
	// Corrupt the radius: likewise.
	bad = good
	bad.Disk.Radius = 0.03
	diag, err = loc.ValidateRegistration(bad, col.Obs[good.EPC])
	if err != nil {
		t.Fatal(err)
	}
	if diag.Coherent {
		t.Errorf("wrong radius not detected: peak power %v", diag.PeakPower)
	}
	// Too few snapshots errors.
	if _, err := loc.ValidateRegistration(good, col.Obs[good.EPC][:2]); err == nil {
		t.Error("starved validation accepted")
	}
}

// TestLocateParallelDeterministic pins the concurrency contract of the
// per-tag bearing fan-out: repeated runs over identical snapshots must give
// bit-identical results (positions, bearings, powers), regardless of
// goroutine scheduling. Run with -race to also check memory safety.
func TestLocateParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.7, 1.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	ref, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, err := loc.Locate2D(registered, col.Obs)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Position != ref.Position {
			t.Fatalf("run %d: position %v != %v", run, res.Position, ref.Position)
		}
		if len(res.Bearings) != len(ref.Bearings) {
			t.Fatalf("run %d: %d bearings != %d", run, len(res.Bearings), len(ref.Bearings))
		}
		for i, b := range res.Bearings {
			if b != ref.Bearings[i] {
				t.Fatalf("run %d bearing %d: %+v != %+v", run, i, b, ref.Bearings[i])
			}
		}
	}
}

// TestFastSpectrumPipelineAgreement runs the whole 2D and 3D pipelines with
// FastSpectrum enabled and checks the answers stay within millimetres of the
// exact-kernel locator — the end-to-end form of the spectrum package's
// kernel-equivalence bounds.
func TestFastSpectrumPipelineAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.8, 1.4, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := core.NewLocator(core.Config{})
	fast := core.NewLocator(core.Config{FastSpectrum: true})
	resE, err := exact.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := fast.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := resF.Position.DistanceTo(resE.Position); d > 1e-3 {
		t.Errorf("fast 2D position drifts %.2f mm from exact (fast %v, exact %v)", d*1000, resF.Position, resE.Position)
	}
	if e := resF.Position.DistanceTo(target.XY()); e > 0.10 {
		t.Errorf("fast 2D error %.1f cm, want < 10 cm", e*100)
	}

	rng3 := rand.New(rand.NewSource(11))
	sc3 := testbed.DefaultScenario(0.095, rng3)
	target3 := geom.V3(-1.6, 1.2, 1.1)
	sc3.PlaceReader(target3)
	registered3, err := sc3.CalibratedSpinningTags(rng3)
	if err != nil {
		t.Fatal(err)
	}
	col3, err := sc3.Collect(rng3)
	if err != nil {
		t.Fatal(err)
	}
	res3E, err := exact.Locate3D(registered3, col3.Obs)
	if err != nil {
		t.Fatal(err)
	}
	res3F, err := fast.Locate3D(registered3, col3.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := res3F.Position.DistanceTo(res3E.Position); d > 2e-3 {
		t.Errorf("fast 3D position drifts %.2f mm from exact (fast %v, exact %v)", d*1000, res3F.Position, res3E.Position)
	}
}

// TestLocateContextCanceled verifies the pipeline aborts between spectrum
// passes when its context dies: an already-canceled context must return
// context.Canceled from both solvers without producing a result.
func TestLocateContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.Locate2DContext(ctx, registered, col.Obs); !errors.Is(err, context.Canceled) {
		t.Errorf("Locate2DContext err = %v, want context.Canceled", err)
	}
	if _, err := loc.Locate3DContext(ctx, registered, col.Obs); !errors.Is(err, context.Canceled) {
		t.Errorf("Locate3DContext err = %v, want context.Canceled", err)
	}
	// A live context must still produce the normal result through the
	// context-threaded path.
	res, err := loc.Locate2DContext(context.Background(), registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Position.DistanceTo(geom.V2(-1.8, 1.4)); e > 0.10 {
		t.Errorf("ctx path 2D error %.1f cm", e*100)
	}
}
