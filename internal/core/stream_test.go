package core_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// replay feeds every snapshot in obs to sink in global time order,
// interleaving tags the way a live reader session would, then returns obs —
// the shape Locate2DStream's collect callback expects.
func replay(obs core.Observations) func(sink func(tags.EPC, phase.Snapshot)) (core.Observations, error) {
	type item struct {
		epc  tags.EPC
		snap phase.Snapshot
	}
	var items []item
	for epc, snaps := range obs {
		for _, s := range snaps {
			items = append(items, item{epc, s})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].snap.Time < items[j].snap.Time })
	return func(sink func(tags.EPC, phase.Snapshot)) (core.Observations, error) {
		for _, it := range items {
			sink(it.epc, it.snap)
		}
		return obs, nil
	}
}

// streamScenario builds a collected 2D scenario for equivalence tests.
func streamScenario(t *testing.T, seed int64) ([]core.SpinningTag, core.Observations) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	return registered, col.Obs
}

// TestStreamLocate2DMatchesBatch checks the headline equivalence: a streamed
// 2D locate is bit-identical to the batch locate on the same observations,
// with every tag actually served from streamed sums.
func TestStreamLocate2DMatchesBatch(t *testing.T) {
	for _, cfg := range []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.Config{}},
		{"fast", core.Config{FastSpectrum: true}},
		{"orientation-off", core.Config{DisableOrientation: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			registered, obs := streamScenario(t, 42)
			loc := core.NewLocator(cfg.cfg)
			want, err := loc.Locate2D(registered, obs)
			if err != nil {
				t.Fatal(err)
			}

			st := loc.NewStream2D(registered)
			defer st.Close()
			if _, err := replay(obs)(st.Report); err != nil {
				t.Fatal(err)
			}
			st.Quiesce()
			if b := st.Backlog(); b != 0 {
				t.Errorf("backlog = %d after Quiesce, want 0", b)
			}
			got, err := st.Finalize2D(t.Context(), obs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("streamed result differs from batch:\n got %+v\nwant %+v", got, want)
			}
			stats := st.Stats()
			if stats.StreamedTags != int64(len(want.Bearings)) || stats.FallbackTags != 0 {
				t.Errorf("stats = %+v, want all %d tags streamed", stats, len(want.Bearings))
			}
			if stats.Snapshots == 0 {
				t.Error("no snapshots counted")
			}
		})
	}
}

// TestStreamLocate2DHelper exercises the one-call Locate2DStream wrapper on
// a hopping scenario, where each tag accumulates on several carriers and the
// finalize must pick the dominant one just like batch selection does.
func TestStreamLocate2DHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sc := testbed.DefaultScenario(0, rng)
	sc.HopChannel = -1
	sc.Rotations = 6
	sc.ReadRateHz = 160
	sc.PlaceReader(geom.V3(-1.2, 2.0, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{MinSnapshots: 8})
	want, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loc.Locate2DStream(t.Context(), registered, replay(col.Obs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed hopping result differs from batch:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamLocate3DMatchesBatch is the 3D equivalence check.
func TestStreamLocate3DMatchesBatch(t *testing.T) {
	for _, fast := range []bool{false, true} {
		name := "exact"
		if fast {
			name = "fast"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			sc := testbed.DefaultScenario(0.095, rng)
			sc.PlaceReader(geom.V3(-1.5, 1.6, 0.8))
			registered, err := sc.CalibratedSpinningTags(rng)
			if err != nil {
				t.Fatal(err)
			}
			col, err := sc.Collect(rng)
			if err != nil {
				t.Fatal(err)
			}
			loc := core.NewLocator(core.Config{FastSpectrum: fast})
			want, err := loc.Locate3D(registered, col.Obs)
			if err != nil {
				t.Fatal(err)
			}
			st := loc.NewStream3D(registered)
			defer st.Close()
			if _, err := replay(col.Obs)(st.Report); err != nil {
				t.Fatal(err)
			}
			got, err := st.Finalize3D(t.Context(), col.Obs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("streamed 3D result differs from batch:\n got %+v\nwant %+v", got, want)
			}
			if stats := st.Stats(); stats.StreamedTags == 0 {
				t.Errorf("stats = %+v, want streamed tags", stats)
			}
		})
	}
}

// TestStreamDisorderedFallsBack poisons one tag's channel with an
// out-of-order snapshot: that tag must fall back to the batch path, the rest
// must still stream, and the final answer must be unchanged.
func TestStreamDisorderedFallsBack(t *testing.T) {
	registered, obs := streamScenario(t, 42)
	loc := core.NewLocator(core.Config{})
	want, err := loc.Locate2D(registered, obs)
	if err != nil {
		t.Fatal(err)
	}

	st := loc.NewStream2D(registered)
	defer st.Close()
	victim := registered[0].EPC
	for epc, snaps := range obs {
		if epc == victim {
			// Reverse order breaks the strictly-increasing guarantee.
			for i := len(snaps) - 1; i >= 0; i-- {
				st.Report(epc, snaps[i])
			}
			continue
		}
		for _, s := range snaps {
			st.Report(epc, s)
		}
	}
	got, err := st.Finalize2D(t.Context(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disordered stream result differs from batch:\n got %+v\nwant %+v", got, want)
	}
	stats := st.Stats()
	if stats.FallbackTags == 0 {
		t.Errorf("stats = %+v, want the poisoned tag to fall back", stats)
	}
	if stats.StreamedTags == 0 {
		t.Errorf("stats = %+v, want the clean tags to stream", stats)
	}
}

// TestStreamKindMismatchFallsBack registers an orientation-calibrated tag
// that never shows up in the observations: the stream bootstraps KindQ but
// the finalize's present set implies KindR, so every tag must take the batch
// path — and still match the batch answer for the same registration list.
func TestStreamKindMismatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	calibrated, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the orientation from every present tag, then register one extra
	// orientation-calibrated tag that has no observations.
	registered := make([]core.SpinningTag, len(calibrated))
	for i, tag := range calibrated {
		tag.Orientation = nil
		registered[i] = tag
	}
	ghost := calibrated[0]
	ghost.EPC = tags.EPC{0xde, 0xad, 0xbe, 0xef}
	registered = append(registered, ghost)

	loc := core.NewLocator(core.Config{})
	want, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	st := loc.NewStream2D(registered)
	defer st.Close()
	if _, err := replay(col.Obs)(st.Report); err != nil {
		t.Fatal(err)
	}
	got, err := st.Finalize2D(t.Context(), col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kind-mismatch stream result differs from batch:\n got %+v\nwant %+v", got, want)
	}
	stats := st.Stats()
	if stats.StreamedTags != 0 || stats.FallbackTags == 0 {
		t.Errorf("stats = %+v, want full batch fallback", stats)
	}
}

// TestStreamResetDiscardsState streams a garbage prefix, resets (as a
// collection retry would), streams the real session, and checks the poisoned
// first attempt leaves no trace in the final answer.
func TestStreamResetDiscardsState(t *testing.T) {
	registered, obs := streamScenario(t, 42)
	loc := core.NewLocator(core.Config{})
	want, err := loc.Locate2D(registered, obs)
	if err != nil {
		t.Fatal(err)
	}
	st := loc.NewStream2D(registered)
	defer st.Close()
	// Failed first attempt: a partial, disordered prefix.
	for epc, snaps := range obs {
		for i := len(snaps) - 1; i >= 0 && i > len(snaps)-5; i-- {
			st.Report(epc, snaps[i])
		}
	}
	st.Reset()
	if _, err := replay(obs)(st.Report); err != nil {
		t.Fatal(err)
	}
	got, err := st.Finalize2D(t.Context(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-reset result differs from batch:\n got %+v\nwant %+v", got, want)
	}
	if stats := st.Stats(); stats.FallbackTags != 0 {
		t.Errorf("stats = %+v, want no fallbacks after reset", stats)
	}
}

// TestStreamFinalizeCanceled cancels the request context after streaming:
// the finalize must surface the cancellation exactly like the batch
// pipeline's context check.
func TestStreamFinalizeCanceled(t *testing.T) {
	registered, obs := streamScenario(t, 42)
	loc := core.NewLocator(core.Config{})
	st := loc.NewStream2D(registered)
	defer st.Close()
	if _, err := replay(obs)(st.Report); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := st.Finalize2D(ctx, obs); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestStreamErrorParity checks the streamed finalize surfaces the same
// validation errors as batch.
func TestStreamErrorParity(t *testing.T) {
	registered, obs := streamScenario(t, 23)
	loc := core.NewLocator(core.Config{})

	starved := make(core.Observations)
	for epc, snaps := range obs {
		starved[epc] = snaps[:3]
	}
	st := loc.NewStream2D(registered)
	defer st.Close()
	if _, err := replay(starved)(st.Report); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Finalize2D(t.Context(), starved); !errors.Is(err, core.ErrTooFewSnapshots) {
		t.Errorf("err = %v, want ErrTooFewSnapshots", err)
	}

	st2 := loc.NewStream2D(nil)
	defer st2.Close()
	if _, err := st2.Finalize2D(t.Context(), obs); !errors.Is(err, core.ErrTooFewTags) {
		t.Errorf("err = %v, want ErrTooFewTags", err)
	}
}
