// Package core orchestrates the full Tagspin pipeline (§II): given phase
// snapshots of registered spinning tags, it calibrates the phase sequences,
// generates an angle spectrum per tag, and intersects the resulting bearings
// to pinpoint the reader antenna in 2D or 3D.
//
// The orientation calibration runs as a two-pass scheme: the reader
// direction is first estimated from uncalibrated snapshots, the orientation
// ρ of each snapshot is computed against that coarse direction, the fitted
// phase-orientation function is subtracted, and the spectrum is recomputed.
// (§III-B specifies *that* the offset must be erased per sampled
// orientation; the orientation is only computable once a direction estimate
// exists, hence the two passes.)
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/sched"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

// Errors returned by the pipeline.
var (
	// ErrTooFewTags reports fewer than two usable spinning tags.
	ErrTooFewTags = errors.New("core: need snapshots from at least two spinning tags")
	// ErrTooFewSnapshots reports a tag with too few reads to form a
	// spectrum.
	ErrTooFewSnapshots = errors.New("core: too few snapshots for tag")
)

// SpinningTag is one registered infrastructure tag: its identity, disk
// geometry as surveyed at installation, and (optionally) the orientation
// calibration fitted during the §III-B prelude.
type SpinningTag struct {
	// EPC identifies the tag.
	EPC tags.EPC
	// Disk is the nominal disk geometry.
	Disk spindisk.Disk
	// Orientation, when non-nil, enables the orientation correction.
	Orientation *phase.OrientationCalibration
}

// Config tunes the pipeline.
type Config struct {
	// Kind selects the power profile; zero means the enhanced KindR.
	Kind spectrum.Kind
	// Sigma is the assumed phase noise for R weights; zero means
	// spectrum.DefaultSigma.
	Sigma float64
	// LiteralReference uses Definition 4.1's weights verbatim instead of
	// the robust common-offset-cancelling variant (ablation A6; see
	// spectrum.Params.LiteralReference).
	LiteralReference bool
	// Search tunes the peak search.
	Search spectrum.SearchOptions
	// MinSnapshots is the per-tag minimum; zero means 10.
	MinSnapshots int
	// DisableOrientation skips the orientation correction even when a
	// calibration is present (the Fig. 11(b) control arm).
	DisableOrientation bool
	// ZPolicy resolves the 3D mirror ambiguity; zero means
	// locate.ZPreferNonNegative.
	ZPolicy locate.ZPolicy
	// FastSpectrum selects the fast trig kernel (spectrum.WithFastTrig) for
	// every spectrum evaluation the pipeline runs. Profile values move by
	// ≲1e-6 and refined peaks by well under 1e-5 rad relative to the exact
	// default — far below the phase-noise floor — in exchange for several-×
	// faster grid scans. Leave it off to reproduce paper figures bit for
	// bit.
	FastSpectrum bool
	// Workers, when positive, pins the width of the process-wide spectrum
	// compute pool (sched.SetWorkers) at NewLocator time. The pool is
	// shared by every Locator in the process — this is a convenience for
	// single-locator programs, not a per-locator knob; the last setter
	// wins. Zero leaves the pool at its current width (TAGSPIN_WORKERS or
	// GOMAXPROCS by default). Results are identical at any width.
	Workers int
	// Estimator is the solve backend that fuses per-tag spectrum peaks
	// into a position; nil means the GridEstimator (bearing-line
	// intersection with ZPolicy mirror resolution). See internal/estimate
	// for the joint maximum-likelihood backend.
	Estimator Estimator
}

// evalOpts returns the spectrum.NewEvaluator options the config implies.
func (c Config) evalOpts() []spectrum.EvalOption {
	if c.FastSpectrum {
		return []spectrum.EvalOption{spectrum.WithFastTrig()}
	}
	return nil
}

// kind returns the effective profile kind.
func (c Config) kind() spectrum.Kind {
	if c.Kind == 0 {
		return spectrum.KindR
	}
	return c.Kind
}

// minSnapshots returns the effective per-tag minimum.
func (c Config) minSnapshots() int {
	if c.MinSnapshots <= 0 {
		return 10
	}
	return c.MinSnapshots
}

// Locator runs the Tagspin pipeline.
type Locator struct {
	cfg Config
	est Estimator
}

// NewLocator builds a Locator.
func NewLocator(cfg Config) *Locator {
	if cfg.Workers > 0 {
		sched.SetWorkers(cfg.Workers)
	}
	est := cfg.Estimator
	if est == nil {
		est = GridEstimator{Policy: cfg.ZPolicy}
	}
	return &Locator{cfg: cfg, est: est}
}

// WithEstimator returns a copy of the Locator that solves through est,
// sharing every other setting. It lets a server keep one configuration and
// swap the solve backend per request.
func (l *Locator) WithEstimator(est Estimator) *Locator {
	cp := &Locator{cfg: l.cfg, est: est}
	if est == nil {
		cp.est = GridEstimator{Policy: l.cfg.ZPolicy}
	}
	return cp
}

// TagEstimate is the per-tag intermediate result: the angle spectrum peak.
type TagEstimate struct {
	// EPC identifies the spinning tag.
	EPC tags.EPC
	// Azimuth is the estimated direction from disk center to reader.
	Azimuth float64
	// Polar is the estimated polar angle (3D only; 0 in 2D).
	Polar float64
	// Power is the profile value at the peak, used as fusion weight.
	Power float64
	// Snapshots is how many reads contributed.
	Snapshots int
}

// Result2D is the output of Locate2D.
type Result2D struct {
	// Position is the estimated reader position in the plane.
	Position geom.Vec2
	// Bearings holds the per-tag spectrum peaks that were fused.
	Bearings []TagEstimate
	// Backend names the estimator that produced Position ("grid", "ml").
	Backend string
	// Confidence, when the backend reports uncertainty (the ML backend),
	// carries the covariance and 1σ ellipse; nil otherwise.
	Confidence *Confidence
}

// Result3D is the output of Locate3D.
type Result3D struct {
	// Position is the selected reader position estimate.
	Position geom.Vec3
	// Mirror is the rejected mirror candidate, reflected about the disk
	// planes (§V-B).
	Mirror geom.Vec3
	// ZSpread is the disagreement between per-tag height estimates.
	ZSpread float64
	// Bearings holds the per-tag spectrum peaks that were fused.
	Bearings []TagEstimate
	// Backend names the estimator that produced Position ("grid", "ml").
	Backend string
	// Confidence, when the backend reports uncertainty (the ML backend),
	// carries the covariance, 1σ ellipse, and mirror likelihood margin.
	Confidence *Confidence
}

// Observations maps each spinning tag's EPC to its snapshot series for one
// collection session against one target antenna.
type Observations map[tags.EPC][]phase.Snapshot

// selectSnapshots validates, sorts, and reduces a tag's snapshots to the
// dominant carrier frequency (with hopping readers, mixing channels would
// break the θ_div cancellation because the D-dependent term differs per λ).
func (l *Locator) selectSnapshots(snaps []phase.Snapshot) ([]phase.Snapshot, error) {
	if len(snaps) < l.cfg.minSnapshots() {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewSnapshots, len(snaps), l.cfg.minSnapshots())
	}
	groups := make(map[float64][]phase.Snapshot)
	for _, s := range snaps {
		groups[s.FrequencyHz] = append(groups[s.FrequencyHz], s)
	}
	var best []phase.Snapshot
	var bestFreq float64
	for freq, g := range groups {
		if len(g) > len(best) || (len(g) == len(best) && freq < bestFreq) {
			best, bestFreq = g, freq
		}
	}
	if len(best) < l.cfg.minSnapshots() {
		return nil, fmt.Errorf("%w: dominant channel has %d reads, need %d",
			ErrTooFewSnapshots, len(best), l.cfg.minSnapshots())
	}
	out := make([]phase.Snapshot, len(best))
	copy(out, best)
	phase.SortByTime(out)
	return out, nil
}

// applyOrientation removes the fitted orientation offset from snaps given a
// coarse reader position estimate. The orientation ρ of each snapshot is
// computed against the sight line from the tag's *rim position* at that
// instant — using the disk center instead would leave an ω-frequency
// residual (the rim-to-reader azimuth oscillates by ≈r/D) that couples into
// the aperture term.
func applyOrientation(tag SpinningTag, snaps []phase.Snapshot, readerPos geom.Vec3) []phase.Snapshot {
	return tag.Orientation.Apply(snaps, func(i int) float64 {
		a := tag.Disk.Angle(snaps[i].Time)
		rim := tag.Disk.TagPositionAt(a)
		az := readerPos.Sub(rim).Azimuth()
		return geom.NormalizeAngle(tag.Disk.TagPlaneAngle(a) - az)
	})
}

// estimate2D runs the per-tag 2D spectrum. When correctAgainst is non-nil
// and the tag has an orientation calibration, the fitted offset is removed
// against that reader-position estimate first. The returned EstimatorTag
// carries the (possibly corrected) input snapshots so a model-based solve
// backend can rebuild its likelihood from exactly what the peak saw.
func (l *Locator) estimate2D(tag SpinningTag, selected []phase.Snapshot, kind spectrum.Kind, correctAgainst *geom.Vec2) (EstimatorTag, error) {
	params := spectrum.Params{Disk: tag.Disk, Sigma: l.cfg.Sigma, LiteralReference: l.cfg.LiteralReference}
	input := selected
	if correctAgainst != nil && tag.Orientation != nil && !l.cfg.DisableOrientation {
		input = applyOrientation(tag, selected, geom.V3(correctAgainst.X, correctAgainst.Y, tag.Disk.Center.Z))
	}
	ev, err := spectrum.NewEvaluator(input, params, kind, l.cfg.evalOpts()...)
	if err != nil {
		return EstimatorTag{}, fmt.Errorf("tag %s: %w", tag.EPC, err)
	}
	az, power := spectrum.FindPeak2DEval(ev, l.cfg.Search)
	return EstimatorTag{
		Tag:   tag,
		Snaps: input,
		Est: TagEstimate{
			EPC:       tag.EPC,
			Azimuth:   az,
			Power:     power,
			Snapshots: len(selected),
		},
	}, nil
}

// estimate3D is the 3D analogue of estimate2D.
func (l *Locator) estimate3D(tag SpinningTag, selected []phase.Snapshot, kind spectrum.Kind, correctAgainst *geom.Vec3) (EstimatorTag, error) {
	params := spectrum.Params{Disk: tag.Disk, Sigma: l.cfg.Sigma, LiteralReference: l.cfg.LiteralReference}
	input := selected
	if correctAgainst != nil && tag.Orientation != nil && !l.cfg.DisableOrientation {
		input = applyOrientation(tag, selected, *correctAgainst)
	}
	ev, err := spectrum.NewEvaluator(input, params, kind, l.cfg.evalOpts()...)
	if err != nil {
		return EstimatorTag{}, fmt.Errorf("tag %s: %w", tag.EPC, err)
	}
	pk := spectrum.FindPeak3DEval(ev, l.cfg.Search)
	return EstimatorTag{
		Tag:   tag,
		Snaps: input,
		Est: TagEstimate{
			EPC:       tag.EPC,
			Azimuth:   pk.Azimuth,
			Polar:     pk.Polar,
			Power:     pk.Power,
			Snapshots: len(selected),
		},
	}, nil
}

// orderTags returns the registered tags that have observations, in a
// deterministic order (by EPC).
func orderTags(registered []SpinningTag, obs Observations) []SpinningTag {
	var present []SpinningTag
	for _, t := range registered {
		if len(obs[t.EPC]) > 0 {
			present = append(present, t)
		}
	}
	sort.Slice(present, func(i, j int) bool {
		return present[i].EPC.String() < present[j].EPC.String()
	})
	return present
}

// estimateAll runs fn — a per-tag spectrum estimate — for every present tag
// concurrently. The per-tag peak searches are independent and dominate a
// pass's cost. One lightweight goroutine per tag submits that tag's grid
// scans; the scans themselves execute on the shared compute pool
// (internal/sched), which interleaves them at chunk granularity, so this
// fan-out sizes pending work, not CPU parallelism — the pool's worker count
// bounds the latter. Results land in tag-index slots and the first error
// *in tag order* is returned, so the output is deterministic regardless of
// goroutine scheduling.
func estimateAll(present []SpinningTag, fn func(tag SpinningTag) (EstimatorTag, error)) ([]EstimatorTag, error) {
	etags := make([]EstimatorTag, len(present))
	errs := make([]error, len(present))
	var wg sync.WaitGroup
	wg.Add(len(present))
	for i, tag := range present {
		go func(i int, tag SpinningTag) {
			defer wg.Done()
			etags[i], errs[i] = fn(tag)
		}(i, tag)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return etags, nil
}

// solvePass2D runs one estimate-and-solve pass through the configured
// estimator backend.
func (l *Locator) solvePass2D(present []SpinningTag, selected map[string][]phase.Snapshot, kind spectrum.Kind, correctAgainst *geom.Vec2) ([]EstimatorTag, Solution2D, error) {
	etags, err := estimateAll(present, func(tag SpinningTag) (EstimatorTag, error) {
		return l.estimate2D(tag, selected[tag.EPC.String()], kind, correctAgainst)
	})
	if err != nil {
		return nil, Solution2D{}, err
	}
	sol, err := l.est.Solve2D(etags)
	if err != nil {
		return nil, Solution2D{}, err
	}
	return etags, sol, nil
}

// Locate2D estimates the reader position in the plane from the observations
// of two or more registered spinning tags. When orientation calibrations are
// available it runs two passes: an uncorrected solve provides the coarse
// position the per-snapshot orientations are computed against, then the
// corrected snapshots are solved again (§III-B's Step 2 needs a direction,
// which only exists after a first estimate).
func (l *Locator) Locate2D(registered []SpinningTag, obs Observations) (Result2D, error) {
	return l.Locate2DContext(context.Background(), registered, obs)
}

// ctxErr wraps a context failure so callers can distinguish an abandoned
// request from a pipeline failure.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: locate aborted: %w", err)
	}
	return nil
}

// Locate2DContext is Locate2D with cancellation: the context is checked
// between spectrum passes (each pass scans the full angle grid for every
// tag), so an abandoned request stops burning cores at the next pass
// boundary instead of running the full multi-pass solve to completion.
func (l *Locator) Locate2DContext(ctx context.Context, registered []SpinningTag, obs Observations) (Result2D, error) {
	present, selected, err := l.selectAll(registered, obs)
	if err != nil {
		return Result2D{}, err
	}
	if err := ctxErr(ctx); err != nil {
		return Result2D{}, err
	}
	etags, sol, err := l.solvePass2D(present, selected, l.bootstrapKind(present), nil)
	if err != nil {
		return Result2D{}, err
	}
	return l.finish2D(ctx, present, selected, etags, sol)
}

// bootstrapKind returns the profile kind of the first solve pass. The
// enhanced profile's likelihood weights are brittle under the
// *uncalibrated* orientation error (structured, not Gaussian), so whenever
// orientation passes will follow, the bootstrap pass always uses the
// traditional Q profile; the corrected passes use the configured profile.
func (l *Locator) bootstrapKind(present []SpinningTag) spectrum.Kind {
	if l.wantsOrientation(present) {
		return spectrum.KindQ
	}
	return l.cfg.kind()
}

// finish2D completes a 2D locate from the bootstrap pass's estimates:
// when orientation calibrations apply, it iterates correction passes — a
// better position estimate gives more accurate per-snapshot orientations,
// which gives a better position; convergence is fast since 1 cm of position
// movement changes ρ by well under a degree at operating distances. Both
// the batch Locate2DContext and the streaming Finalize2D end here, so the
// two paths share everything after the bootstrap estimates.
func (l *Locator) finish2D(ctx context.Context, present []SpinningTag, selected map[string][]phase.Snapshot, etags []EstimatorTag, sol Solution2D) (Result2D, error) {
	if l.wantsOrientation(present) {
		for pass := 0; pass < 3; pass++ {
			if err := ctxErr(ctx); err != nil {
				return Result2D{}, err
			}
			coarse := sol.Position
			var err error
			etags, sol, err = l.solvePass2D(present, selected, l.cfg.kind(), &coarse)
			if err != nil {
				return Result2D{}, err
			}
			if sol.Position.DistanceTo(coarse) < 0.01 {
				break
			}
		}
	}
	return Result2D{
		Position:   sol.Position,
		Bearings:   tagEstimates(etags),
		Backend:    l.est.Name(),
		Confidence: sol.Confidence,
	}, nil
}

// selectAll validates and channel-filters every present tag's snapshots.
func (l *Locator) selectAll(registered []SpinningTag, obs Observations) ([]SpinningTag, map[string][]phase.Snapshot, error) {
	present := orderTags(registered, obs)
	if len(present) < 2 {
		return nil, nil, ErrTooFewTags
	}
	selected := make(map[string][]phase.Snapshot, len(present))
	for _, tag := range present {
		snaps, err := l.selectSnapshots(obs[tag.EPC])
		if err != nil {
			return nil, nil, fmt.Errorf("tag %s: %w", tag.EPC, err)
		}
		selected[tag.EPC.String()] = snaps
	}
	return present, selected, nil
}

// wantsOrientation reports whether a correction pass would change anything.
func (l *Locator) wantsOrientation(present []SpinningTag) bool {
	if l.cfg.DisableOrientation {
		return false
	}
	for _, tag := range present {
		if tag.Orientation != nil {
			return true
		}
	}
	return false
}

// solvePass3D runs one estimate-and-solve pass through the configured
// estimator backend.
func (l *Locator) solvePass3D(present []SpinningTag, selected map[string][]phase.Snapshot, kind spectrum.Kind, correctAgainst *geom.Vec3) ([]EstimatorTag, Solution3D, error) {
	etags, err := estimateAll(present, func(tag SpinningTag) (EstimatorTag, error) {
		return l.estimate3D(tag, selected[tag.EPC.String()], kind, correctAgainst)
	})
	if err != nil {
		return nil, Solution3D{}, err
	}
	sol, err := l.est.Solve3D(etags)
	if err != nil {
		return nil, Solution3D{}, err
	}
	return etags, sol, nil
}

// Locate3D estimates the reader position in space from the observations of
// two or more registered spinning tags, with the same two-pass orientation
// handling as Locate2D.
func (l *Locator) Locate3D(registered []SpinningTag, obs Observations) (Result3D, error) {
	return l.Locate3DContext(context.Background(), registered, obs)
}

// Locate3DContext is Locate3D with cancellation, checked between spectrum
// passes exactly as in Locate2DContext.
func (l *Locator) Locate3DContext(ctx context.Context, registered []SpinningTag, obs Observations) (Result3D, error) {
	present, selected, err := l.selectAll(registered, obs)
	if err != nil {
		return Result3D{}, err
	}
	if err := ctxErr(ctx); err != nil {
		return Result3D{}, err
	}
	etags, sol, err := l.solvePass3D(present, selected, l.bootstrapKind(present), nil)
	if err != nil {
		return Result3D{}, err
	}
	return l.finish3D(ctx, present, selected, etags, sol)
}

// finish3D completes a 3D locate from the bootstrap pass's estimates and
// solution: orientation-correction passes iterate against the selected
// candidate (the orientation ρ is, to first order, insensitive to the sign
// of z, so correcting against it is safe even when the backend resolved the
// mirror by policy rather than evidence). Mirror selection itself belongs to
// the estimator backend. Shared by the batch and streaming paths like
// finish2D.
func (l *Locator) finish3D(ctx context.Context, present []SpinningTag, selected map[string][]phase.Snapshot, etags []EstimatorTag, sol Solution3D) (Result3D, error) {
	if l.wantsOrientation(present) {
		for pass := 0; pass < 3; pass++ {
			if err := ctxErr(ctx); err != nil {
				return Result3D{}, err
			}
			coarse := sol.Position
			var err error
			etags, sol, err = l.solvePass3D(present, selected, l.cfg.kind(), &coarse)
			if err != nil {
				return Result3D{}, err
			}
			if sol.Position.DistanceTo(coarse) < 0.01 {
				break
			}
		}
	}
	return Result3D{
		Position:   sol.Position,
		Mirror:     sol.Mirror,
		ZSpread:    sol.ZSpread,
		Bearings:   tagEstimates(etags),
		Backend:    l.est.Name(),
		Confidence: sol.Confidence,
	}, nil
}

// Diagnosis reports how well a tag's snapshots fit its registered disk
// geometry. Operators use it to catch registry mistakes — a wrong angular
// velocity, radius, or phase reference makes the angle spectrum incoherent
// long before it shows up as a silently wrong position.
type Diagnosis struct {
	// EPC identifies the tag.
	EPC tags.EPC
	// Snapshots is how many reads were usable.
	Snapshots int
	// PeakPower is the Q-profile peak (1.0 = perfectly coherent stack).
	PeakPower float64
	// Coherent reports whether the fit clears CoherenceThreshold.
	Coherent bool
}

// CoherenceThreshold is the Q-profile peak power below which a registration
// is considered inconsistent with the measurements. A correct geometry
// under nominal noise scores ≈e^(−σ²/2) ≈ 0.95; mis-registered kinematics
// scatter the phasors toward ~1/√n.
const CoherenceThreshold = 0.6

// ValidateRegistration checks one registered tag against a snapshot series.
// It uses the Q profile: unlike R it has no weighting that could mask an
// incoherent stack.
func (l *Locator) ValidateRegistration(tag SpinningTag, snaps []phase.Snapshot) (Diagnosis, error) {
	selected, err := l.selectSnapshots(snaps)
	if err != nil {
		return Diagnosis{}, fmt.Errorf("tag %s: %w", tag.EPC, err)
	}
	params := spectrum.Params{Disk: tag.Disk, Sigma: l.cfg.Sigma}
	ev, err := spectrum.NewEvaluator(selected, params, spectrum.KindQ, l.cfg.evalOpts()...)
	if err != nil {
		return Diagnosis{}, fmt.Errorf("tag %s: %w", tag.EPC, err)
	}
	_, power := spectrum.FindPeak2DEval(ev, l.cfg.Search)
	return Diagnosis{
		EPC:       tag.EPC,
		Snapshots: len(selected),
		PeakPower: power,
		Coherent:  power >= CoherenceThreshold,
	}, nil
}
