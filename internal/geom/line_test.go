package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntersectLines2DBasic(t *testing.T) {
	// A ray east from the origin and a ray north from (2,-1) meet at (2,0).
	a := Line2D{Origin: V2(0, 0), Bearing: 0}
	b := Line2D{Origin: V2(2, -1), Bearing: math.Pi / 2}
	p, err := IntersectLines2D(a, b)
	if err != nil {
		t.Fatalf("IntersectLines2D: %v", err)
	}
	if !almostEqual(p.X, 2, eps) || !almostEqual(p.Y, 0, eps) {
		t.Errorf("intersection = %v, want (2,0)", p)
	}
}

func TestIntersectLines2DVertical(t *testing.T) {
	// Eqn. 9 in tan form degenerates at φ = π/2; the vector form must not.
	a := Line2D{Origin: V2(-1, 0), Bearing: math.Pi / 2}
	b := Line2D{Origin: V2(1, 0), Bearing: 3 * math.Pi / 4}
	p, err := IntersectLines2D(a, b)
	if err != nil {
		t.Fatalf("IntersectLines2D: %v", err)
	}
	if !almostEqual(p.X, -1, eps) || !almostEqual(p.Y, 2, eps) {
		t.Errorf("intersection = %v, want (-1,2)", p)
	}
}

func TestIntersectLines2DParallel(t *testing.T) {
	a := Line2D{Origin: V2(0, 0), Bearing: 1}
	b := Line2D{Origin: V2(1, 0), Bearing: 1}
	if _, err := IntersectLines2D(a, b); !errors.Is(err, ErrParallelLines) {
		t.Errorf("err = %v, want ErrParallelLines", err)
	}
	// Anti-parallel bearings describe the same pencil of directions.
	b.Bearing = 1 + math.Pi
	if _, err := IntersectLines2D(a, b); !errors.Is(err, ErrParallelLines) {
		t.Errorf("anti-parallel err = %v, want ErrParallelLines", err)
	}
}

// TestIntersectionRecoversTarget synthesizes bearings from two origins to a
// random target and checks the intersection recovers the target.
func TestIntersectionRecoversTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		o1 := V2(rng.Float64()*4-2, rng.Float64()*4-2)
		o2 := V2(rng.Float64()*4-2, rng.Float64()*4-2)
		target := V2(rng.Float64()*10-5, rng.Float64()*10-5)
		if o1.DistanceTo(o2) < 0.1 ||
			target.DistanceTo(o1) < 0.2 || target.DistanceTo(o2) < 0.2 {
			continue
		}
		l1 := Line2D{Origin: o1, Bearing: target.Sub(o1).Bearing()}
		l2 := Line2D{Origin: o2, Bearing: target.Sub(o2).Bearing()}
		p, err := IntersectLines2D(l1, l2)
		if err != nil {
			continue // target collinear with the two origins
		}
		if p.DistanceTo(target) > 1e-6 {
			t.Fatalf("trial %d: got %v, want %v", i, p, target)
		}
	}
}

func TestLeastSquaresPoint2DMatchesPairwise(t *testing.T) {
	a := Line2D{Origin: V2(0, 0), Bearing: math.Pi / 4}
	b := Line2D{Origin: V2(3, 0), Bearing: 3 * math.Pi / 4}
	want, err := IntersectLines2D(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LeastSquaresPoint2D([]Line2D{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(want) > 1e-9 {
		t.Errorf("LS point %v != intersection %v", got, want)
	}
}

func TestLeastSquaresPoint2DThreeLines(t *testing.T) {
	target := V2(1.5, 2.5)
	origins := []Vec2{V2(-1, 0), V2(1, 0), V2(0, -2)}
	lines := make([]Line2D, 0, len(origins))
	for _, o := range origins {
		lines = append(lines, Line2D{Origin: o, Bearing: target.Sub(o).Bearing()})
	}
	got, err := LeastSquaresPoint2D(lines)
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(target) > 1e-9 {
		t.Errorf("LS point = %v, want %v", got, target)
	}
}

func TestLeastSquaresPoint2DWeighted(t *testing.T) {
	// Two lines agree on (0,1); a third, heavily down-weighted, disagrees.
	good1 := Line2D{Origin: V2(-1, 0), Bearing: V2(1, 1).Bearing(), Weight: 1}
	good2 := Line2D{Origin: V2(1, 0), Bearing: V2(-1, 1).Bearing(), Weight: 1}
	bad := Line2D{Origin: V2(0, -3), Bearing: V2(1, 1).Bearing(), Weight: 1e-9}
	got, err := LeastSquaresPoint2D([]Line2D{good1, good2, bad})
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(V2(0, 1)) > 1e-3 {
		t.Errorf("weighted LS point = %v, want ≈(0,1)", got)
	}
}

func TestLeastSquaresPoint2DErrors(t *testing.T) {
	if _, err := LeastSquaresPoint2D(nil); !errors.Is(err, ErrNoLines) {
		t.Errorf("nil lines err = %v, want ErrNoLines", err)
	}
	same := Line2D{Origin: V2(0, 0), Bearing: 0.3}
	if _, err := LeastSquaresPoint2D([]Line2D{same, same}); !errors.Is(err, ErrParallelLines) {
		t.Errorf("parallel err = %v, want ErrParallelLines", err)
	}
}

func TestLine2DDistanceToPoint(t *testing.T) {
	l := Line2D{Origin: V2(0, 0), Bearing: 0}
	if got := l.DistanceToPoint(V2(5, 3)); !almostEqual(got, 3, eps) {
		t.Errorf("distance = %v, want 3", got)
	}
	if got := l.DistanceToPoint(V2(-7, -2)); !almostEqual(got, 2, eps) {
		t.Errorf("distance = %v, want 2", got)
	}
}

func TestLine3DDistanceToPoint(t *testing.T) {
	l := Line3D{Origin: V3(0, 0, 0), Dir: V3(1, 0, 0)}
	if got := l.DistanceToPoint(V3(10, 3, 4)); !almostEqual(got, 5, eps) {
		t.Errorf("distance = %v, want 5", got)
	}
}

func TestLeastSquaresPoint3DRecoversTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		target := V3(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*2)
		var lines []Line3D
		for k := 0; k < 3; k++ {
			o := V3(rng.Float64()*2-1, rng.Float64()*2-1, 0)
			if target.DistanceTo(o) < 0.3 {
				o = o.Add(V3(0.5, 0.5, 0))
			}
			lines = append(lines, Line3D{Origin: o, Dir: target.Sub(o).Unit()})
		}
		got, err := LeastSquaresPoint3D(lines)
		if err != nil {
			continue // degenerate random draw
		}
		if got.DistanceTo(target) > 1e-6 {
			t.Fatalf("trial %d: got %v, want %v", i, got, target)
		}
	}
}

func TestLeastSquaresPoint3DErrors(t *testing.T) {
	if _, err := LeastSquaresPoint3D(nil); !errors.Is(err, ErrNoLines) {
		t.Errorf("nil lines err = %v, want ErrNoLines", err)
	}
	l := Line3D{Origin: V3(0, 0, 0), Dir: V3(0, 0, 1)}
	m := Line3D{Origin: V3(1, 1, 0), Dir: V3(0, 0, 1)}
	// Two parallel vertical lines: x/y are determined (average), z is not.
	if _, err := LeastSquaresPoint3D([]Line3D{l, m}); !errors.Is(err, ErrParallelLines) {
		t.Errorf("parallel err = %v, want ErrParallelLines", err)
	}
}

// TestLeastSquaresPoint3DResidualOptimality perturbs the LS solution in
// random directions and verifies the weighted residual never decreases —
// i.e. the solver actually found the minimum.
func TestLeastSquaresPoint3DResidualOptimality(t *testing.T) {
	lines := []Line3D{
		{Origin: V3(0, 0, 0), Dir: V3(1, 0.2, 0.1).Unit()},
		{Origin: V3(1, -1, 0), Dir: V3(-0.3, 1, 0.2).Unit()},
		{Origin: V3(-1, 1, 0.5), Dir: V3(0.5, -0.2, 1).Unit(), Weight: 2},
	}
	p, err := LeastSquaresPoint3D(lines)
	if err != nil {
		t.Fatal(err)
	}
	resid := func(q Vec3) float64 {
		var s float64
		for _, l := range lines {
			d := l.DistanceToPoint(q)
			s += l.weight() * d * d
		}
		return s
	}
	base := resid(p)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		dir := V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		if r := resid(p.Add(dir.Scale(0.01))); r < base-1e-12 {
			t.Fatalf("perturbation %d lowered residual: %v < %v", i, r, base)
		}
	}
}

func TestSolve3x3Property(t *testing.T) {
	// For random well-conditioned systems, m·solve(m,b) ≈ b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m [3][3]float64
		var b [3]float64
		for i := range m {
			for j := range m[i] {
				m[i][j] = rng.NormFloat64()
			}
			m[i][i] += 4 // diagonal dominance keeps it well-conditioned
			b[i] = rng.NormFloat64()
		}
		x, err := solve3x3(m, b)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			var got float64
			for j := 0; j < 3; j++ {
				got += m[i][j] * x[j]
			}
			if !almostEqual(got, b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLeastSquaresPoint2DAgreesWithIntersection is the property tying the
// two-line special case of the normal-equation solver to the direct Eqn. 9
// intersection: away from degeneracy they are the same point. Sampling stays
// clear of near-parallel pairs (|sin Δ| > 1e-3), where both solvers refuse
// rather than return garbage — see TestNearParallelLinesRefuseCleanly.
func TestLeastSquaresPoint2DAgreesWithIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := Line2D{
			Origin:  V2(rng.Float64()*6-3, rng.Float64()*6-3),
			Bearing: rng.Float64()*2*math.Pi - math.Pi,
		}
		b := Line2D{
			Origin:  V2(rng.Float64()*6-3, rng.Float64()*6-3),
			Bearing: rng.Float64()*2*math.Pi - math.Pi,
		}
		if math.Abs(math.Sin(a.Bearing-b.Bearing)) <= 1e-3 {
			continue
		}
		direct, errA := IntersectLines2D(a, b)
		fused, errB := LeastSquaresPoint2D([]Line2D{a, b})
		if errA != nil || errB != nil {
			t.Fatalf("trial %d: non-degenerate pair rejected: %v / %v (a=%v b=%v)",
				trial, errA, errB, a, b)
		}
		tol := 1e-6 * (1 + direct.Norm())
		if d := direct.DistanceTo(fused); d > tol {
			t.Fatalf("trial %d: solvers disagree by %g m (tol %g)\n  a=%v\n  b=%v\n  direct=%v fused=%v",
				trial, d, tol, a, b, direct, fused)
		}
	}
}

// TestNearParallelLinesRefuseCleanly pins the degenerate-geometry contract:
// bearings split by 1e-13 rad must yield ErrParallelLines from the 2D
// intersection, the 2D least-squares fusion, and the 3D least-squares
// fusion alike — never a NaN/Inf coordinate.
func TestNearParallelLinesRefuseCleanly(t *testing.T) {
	const delta = 1e-13
	a2 := Line2D{Origin: V2(0, 0), Bearing: 0.3}
	b2 := Line2D{Origin: V2(1, -2), Bearing: 0.3 + delta}

	p, err := IntersectLines2D(a2, b2)
	if !errors.Is(err, ErrParallelLines) {
		t.Errorf("IntersectLines2D err = %v, want ErrParallelLines", err)
	}
	checkFinite2D(t, "IntersectLines2D", p)

	p, err = LeastSquaresPoint2D([]Line2D{a2, b2})
	if !errors.Is(err, ErrParallelLines) {
		t.Errorf("LeastSquaresPoint2D err = %v, want ErrParallelLines", err)
	}
	checkFinite2D(t, "LeastSquaresPoint2D", p)

	dir := V3(math.Cos(0.3), math.Sin(0.3), 0.4).Unit()
	tilted := V3(math.Cos(0.3+delta), math.Sin(0.3+delta), 0.4).Unit()
	q, err := LeastSquaresPoint3D([]Line3D{
		{Origin: V3(0, 0, 0), Dir: dir},
		{Origin: V3(1, -2, 0.5), Dir: tilted},
	})
	if !errors.Is(err, ErrParallelLines) {
		t.Errorf("LeastSquaresPoint3D err = %v, want ErrParallelLines", err)
	}
	if math.IsNaN(q.X) || math.IsInf(q.X, 0) ||
		math.IsNaN(q.Y) || math.IsInf(q.Y, 0) ||
		math.IsNaN(q.Z) || math.IsInf(q.Z, 0) {
		t.Errorf("LeastSquaresPoint3D returned non-finite point %v", q)
	}
}

func checkFinite2D(t *testing.T, name string, p Vec2) {
	t.Helper()
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		t.Errorf("%s returned non-finite point %v", name, p)
	}
}
