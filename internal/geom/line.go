package geom

import (
	"errors"
	"fmt"
	"math"
)

// ErrParallelLines reports that a set of bearing lines has no usable
// intersection because the lines are (nearly) parallel.
var ErrParallelLines = errors.New("geom: bearing lines are parallel")

// ErrNoLines reports that a solver was invoked with too few lines.
var ErrNoLines = errors.New("geom: need at least two lines")

// Line2D is a ray anchored at Origin heading along azimuthal angle Bearing.
// Tagspin uses it to represent "the reader lies in direction Bearing as seen
// from this disk center".
type Line2D struct {
	Origin  Vec2
	Bearing float64
	// Weight scales this line's contribution in least-squares fusion.
	// Zero is a sentinel for "unweighted" and is treated as 1, NOT as
	// zero influence — callers that want to drop a bearing (e.g. one
	// whose spectrum peak carried no power) must filter it out before
	// building the line, as locate's solvers do.
	Weight float64
}

// Direction returns the unit direction vector of the line.
func (l Line2D) Direction() Vec2 {
	return Vec2{X: math.Cos(l.Bearing), Y: math.Sin(l.Bearing)}
}

// weight returns the effective fusion weight of the line.
func (l Line2D) weight() float64 {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// DistanceToPoint returns the perpendicular distance from p to the infinite
// extension of the line.
func (l Line2D) DistanceToPoint(p Vec2) float64 {
	d := l.Direction()
	r := p.Sub(l.Origin)
	// Perpendicular component: |r - (r·d)d|, i.e. the 2D cross magnitude.
	return math.Abs(r.X*d.Y - r.Y*d.X)
}

// String renders the line for diagnostics.
func (l Line2D) String() string {
	return fmt.Sprintf("line{origin=%v bearing=%.2f°}", l.Origin, Degrees(l.Bearing))
}

// IntersectLines2D solves the intersection of two bearing lines. This is
// Eqn. 9 of the paper, written in vector form so it does not degenerate when
// a bearing approaches ±π/2 (where tan φ blows up).
func IntersectLines2D(a, b Line2D) (Vec2, error) {
	da, db := a.Direction(), b.Direction()
	// Solve a.Origin + s*da = b.Origin + t*db.
	det := da.X*(-db.Y) - (-db.X)*da.Y
	if math.Abs(det) < 1e-12 {
		return Vec2{}, ErrParallelLines
	}
	rhs := b.Origin.Sub(a.Origin)
	s := (rhs.X*(-db.Y) - (-db.X)*rhs.Y) / det
	return a.Origin.Add(da.Scale(s)), nil
}

// LeastSquaresPoint2D returns the point minimizing the weighted sum of
// squared perpendicular distances to the given lines. With two
// non-degenerate lines it coincides with IntersectLines2D; with three or
// more it fuses redundant bearings (ablation A5).
func LeastSquaresPoint2D(lines []Line2D) (Vec2, error) {
	if len(lines) < 2 {
		return Vec2{}, ErrNoLines
	}
	// For each line with unit normal n, the residual is n·(p - origin).
	// Accumulate the normal equations sum(w n nᵀ) p = sum(w n nᵀ origin).
	var a11, a12, a22, b1, b2 float64
	for _, l := range lines {
		d := l.Direction()
		n := Vec2{X: -d.Y, Y: d.X}
		w := l.weight()
		a11 += w * n.X * n.X
		a12 += w * n.X * n.Y
		a22 += w * n.Y * n.Y
		c := n.Dot(l.Origin)
		b1 += w * n.X * c
		b2 += w * n.Y * c
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-12 {
		return Vec2{}, ErrParallelLines
	}
	return Vec2{
		X: (a22*b1 - a12*b2) / det,
		Y: (a11*b2 - a12*b1) / det,
	}, nil
}

// Line3D is a ray anchored at Origin heading along the unit vector Dir.
type Line3D struct {
	Origin Vec3
	Dir    Vec3
	// Weight scales this line's contribution in least-squares fusion.
	// Zero is a sentinel for "unweighted" and is treated as 1, NOT as
	// zero influence — filter out lines that should not contribute.
	Weight float64
}

// weight returns the effective fusion weight of the line.
func (l Line3D) weight() float64 {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// DistanceToPoint returns the perpendicular distance from p to the infinite
// extension of the line.
func (l Line3D) DistanceToPoint(p Vec3) float64 {
	d := l.Dir.Unit()
	r := p.Sub(l.Origin)
	return r.Sub(d.Scale(r.Dot(d))).Norm()
}

// LeastSquaresPoint3D returns the point minimizing the weighted sum of
// squared perpendicular distances to the given 3D lines ("midpoint of the
// common perpendicular", generalized). It solves sum(w(I - ddᵀ)) p =
// sum(w(I - ddᵀ) origin) with a direct 3×3 solve.
func LeastSquaresPoint3D(lines []Line3D) (Vec3, error) {
	if len(lines) < 2 {
		return Vec3{}, ErrNoLines
	}
	var m [3][3]float64
	var b [3]float64
	for _, l := range lines {
		d := l.Dir.Unit()
		w := l.weight()
		// p = I - d dᵀ (projector onto the plane normal to d).
		proj := [3][3]float64{
			{1 - d.X*d.X, -d.X * d.Y, -d.X * d.Z},
			{-d.Y * d.X, 1 - d.Y*d.Y, -d.Y * d.Z},
			{-d.Z * d.X, -d.Z * d.Y, 1 - d.Z*d.Z},
		}
		o := [3]float64{l.Origin.X, l.Origin.Y, l.Origin.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += w * proj[i][j]
				b[i] += w * proj[i][j] * o[j]
			}
		}
	}
	sol, err := solve3x3(m, b)
	if err != nil {
		return Vec3{}, err
	}
	return Vec3{X: sol[0], Y: sol[1], Z: sol[2]}, nil
}

// solve3x3 solves m·x = b by Gaussian elimination with partial pivoting.
func solve3x3(m [3][3]float64, b [3]float64) ([3]float64, error) {
	var x [3]float64
	for col := 0; col < 3; col++ {
		pivot := col
		for row := col + 1; row < 3; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return x, ErrParallelLines
		}
		m[col], m[pivot] = m[pivot], m[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < 3; row++ {
			f := m[row][col] / m[col][col]
			for k := col; k < 3; k++ {
				m[row][k] -= f * m[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	for row := 2; row >= 0; row-- {
		sum := b[row]
		for k := row + 1; k < 3; k++ {
			sum -= m[row][k] * x[k]
		}
		x[row] = sum / m[row][row]
	}
	return x, nil
}
