package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Arithmetic(t *testing.T) {
	a, b := V2(1, 2), V2(3, -4)
	if got := a.Add(b); got != V2(4, -2) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := a.Sub(b); got != V2(-2, 6) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := a.Scale(2); got != V2(2, 4) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := b.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V2(0, 3).DistanceTo(V2(4, 0)); got != 5 {
		t.Errorf("DistanceTo = %v, want 5", got)
	}
}

func TestVec2Bearing(t *testing.T) {
	tests := []struct {
		name string
		v    Vec2
		want float64
	}{
		{"east", V2(1, 0), 0},
		{"north", V2(0, 1), math.Pi / 2},
		{"west", V2(-1, 0), math.Pi},
		{"south", V2(0, -1), 3 * math.Pi / 2},
		{"diagonal", V2(1, 1), math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Bearing(); !almostEqual(got, tt.want, eps) {
				t.Errorf("Bearing(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestVec2Unit(t *testing.T) {
	u := V2(3, 4).Unit()
	if !almostEqual(u.Norm(), 1, eps) {
		t.Errorf("unit norm = %v, want 1", u.Norm())
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("zero unit = %v, want zero", got)
	}
}

func TestVec3Arithmetic(t *testing.T) {
	a, b := V3(1, 2, 3), V3(-1, 0, 2)
	if got := a.Add(b); got != V3(0, 2, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V3(2, 2, 1) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != -1+0+6 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := a.Scale(-1); got != V3(-1, -2, -3) {
		t.Errorf("Scale = %v", got)
	}
	if got := V3(1, 2, 2).Norm(); got != 3 {
		t.Errorf("Norm = %v, want 3", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestVec3Angles(t *testing.T) {
	v := V3(1, 1, math.Sqrt2)
	if got := v.Azimuth(); !almostEqual(got, math.Pi/4, eps) {
		t.Errorf("Azimuth = %v, want π/4", got)
	}
	if got := v.Polar(); !almostEqual(got, math.Pi/4, eps) {
		t.Errorf("Polar = %v, want π/4", got)
	}
	down := V3(0, 0, -1)
	if got := down.Polar(); !almostEqual(got, -math.Pi/2, eps) {
		t.Errorf("Polar(down) = %v, want -π/2", got)
	}
}

func TestDirectionFromAnglesRoundTrip(t *testing.T) {
	f := func(azRaw, polRaw float64) bool {
		az := NormalizeAngle(azRaw)
		pol := math.Mod(polRaw, math.Pi/2) // keep away from the ±π/2 poles
		d := DirectionFromAngles(az, pol)
		if !almostEqual(d.Norm(), 1, 1e-9) {
			return false
		}
		if !almostEqual(d.Polar(), pol, 1e-9) {
			return false
		}
		// Azimuth is undefined at the poles; only check away from them.
		if math.Abs(math.Cos(pol)) > 1e-6 {
			return AngleDistance(d.Azimuth(), az) < 1e-9
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-7 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEqual(got, tt.want, eps) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapToPi(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi / 2, -math.Pi / 2},
		{2 * math.Pi, 0},
		{-5 * math.Pi / 2, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapToPi(tt.in); !almostEqual(got, tt.want, eps) {
			t.Errorf("WrapToPi(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapToPiProperties(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true
		}
		w := WrapToPi(a)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Wrapping preserves the angle modulo 2π.
		return almostEqual(math.Mod(a-w, 2*math.Pi), 0, 1e-6) ||
			almostEqual(math.Abs(math.Mod(a-w, 2*math.Pi)), 2*math.Pi, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDistance(t *testing.T) {
	if got := AngleDistance(0.1, 2*math.Pi-0.1); !almostEqual(got, 0.2, eps) {
		t.Errorf("AngleDistance across 0 = %v, want 0.2", got)
	}
	if got := AngleDistance(math.Pi/2, -math.Pi/2); !almostEqual(got, math.Pi, eps) {
		t.Errorf("AngleDistance opposite = %v, want π", got)
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) || math.Abs(deg) > 1e300 {
			return true
		}
		return almostEqual(Degrees(Radians(deg)), deg, math.Abs(deg)*1e-9+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
