// Package geom provides the small amount of 2D/3D vector geometry Tagspin
// needs: vectors, bearings, lines, and point-from-lines solvers.
//
// Conventions: distances are in meters, angles in radians. Azimuthal angles
// are measured counter-clockwise from the +x axis in [0, 2π); polar angles
// are measured from the horizontal plane toward +z in [-π/2, π/2].
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or direction in the horizontal plane.
type Vec2 struct {
	X float64
	Y float64
}

// Vec3 is a point or direction in 3D space.
type Vec3 struct {
	X float64
	Y float64
	Z float64
}

// V2 builds a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// V3 builds a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{X: v.X + o.X, Y: v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{X: v.X - o.X, Y: v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{X: v.X * s, Y: v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// DistanceTo returns the Euclidean distance between two points.
func (v Vec2) DistanceTo(o Vec2) float64 { return v.Sub(o).Norm() }

// Bearing returns the azimuthal angle of v in [0, 2π).
func (v Vec2) Bearing() float64 { return NormalizeAngle(math.Atan2(v.Y, v.X)) }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// String renders the vector with centimeter precision, for logs and errors.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// XY projects a Vec3 onto the horizontal plane.
func (v Vec3) XY() Vec2 { return Vec2{X: v.X, Y: v.Y} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{X: v.X + o.X, Y: v.Y + o.Y, Z: v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{X: v.X - o.X, Y: v.Y - o.Y, Z: v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{X: v.X * s, Y: v.Y * s, Z: v.Z * s} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		X: v.Y*o.Z - v.Z*o.Y,
		Y: v.Z*o.X - v.X*o.Z,
		Z: v.X*o.Y - v.Y*o.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// DistanceTo returns the Euclidean distance between two points.
func (v Vec3) DistanceTo(o Vec3) float64 { return v.Sub(o).Norm() }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Azimuth returns the azimuthal angle of v's horizontal projection in [0, 2π).
func (v Vec3) Azimuth() float64 { return v.XY().Bearing() }

// Polar returns the elevation angle of v from the horizontal plane, in
// [-π/2, π/2].
func (v Vec3) Polar() float64 {
	h := v.XY().Norm()
	return math.Atan2(v.Z, h)
}

// String renders the vector with millimeter precision, for logs and errors.
func (v Vec3) String() string { return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z) }

// DirectionFromAngles converts an azimuth/polar angle pair back into a unit
// direction vector. It is the inverse of (Azimuth, Polar) for unit vectors.
func DirectionFromAngles(azimuth, polar float64) Vec3 {
	ch := math.Cos(polar)
	return Vec3{
		X: ch * math.Cos(azimuth),
		Y: ch * math.Sin(azimuth),
		Z: math.Sin(polar),
	}
}

// NormalizeAngle maps an angle to [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// WrapToPi maps an angle to (-π, π].
func WrapToPi(a float64) float64 {
	a = math.Mod(a+math.Pi, 2*math.Pi)
	if a <= 0 {
		a += 2 * math.Pi
	}
	return a - math.Pi
}

// AngleDistance returns the absolute angular separation between two angles,
// in [0, π].
func AngleDistance(a, b float64) float64 { return math.Abs(WrapToPi(a - b)) }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
