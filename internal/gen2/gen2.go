// Package gen2 simulates the EPC Class-1 Generation-2 inventory MAC — the
// slotted-ALOHA singulation protocol with the adaptive Q algorithm — that
// produced the paper's read timing. The reader issues Query/QueryRep
// commands; each participating tag draws a random slot; a slot with exactly
// one reply singulates that tag (an EPC read), colliding and idle slots
// burn shorter amounts of air time; and the reader adapts the frame-size
// exponent Q toward one reply per slot.
//
// Tagspin itself never inspects MAC details — it only sees timestamps — but
// the MAC shapes those timestamps: reads arrive irregularly, rates fall as
// the tag population grows, and per-tag read rates fluctuate with link
// margin. testbed.Scenario can schedule its sessions through this package
// instead of the uniform-rate default.
package gen2

import (
	"fmt"
	"math/rand"
	"time"
)

// Config sets the MAC parameters.
type Config struct {
	// InitialQ is the starting frame-size exponent; zero means 2 (a sane
	// start for the handful of tags a Tagspin deployment carries).
	InitialQ int
	// AdaptiveQ enables the Q algorithm (Qfp ± C on collision/idle);
	// when false the frame size stays fixed.
	AdaptiveQ bool
	// QStep is the Qfp adjustment constant C in (0.1, 0.5]; zero
	// means 0.25.
	QStep float64
	// SuccessSlot is the air time of a singulation (RN16 + ACK + EPC);
	// zero means 2.4 ms, typical of Miller-4 at 250 kHz BLF with a 96-bit
	// EPC.
	SuccessSlot time.Duration
	// CollisionSlot is the air time wasted on a collided RN16; zero
	// means 575 µs.
	CollisionSlot time.Duration
	// IdleSlot is the air time of an empty slot; zero means 150 µs.
	IdleSlot time.Duration
	// QueryOverhead is the extra air time of the Query that opens each
	// round; zero means 250 µs.
	QueryOverhead time.Duration
}

func (c Config) initialQ() int {
	if c.InitialQ <= 0 {
		return 2
	}
	if c.InitialQ > 15 {
		return 15
	}
	return c.InitialQ
}

func (c Config) qStep() float64 {
	if c.QStep <= 0 {
		return 0.25
	}
	return c.QStep
}

func (c Config) successSlot() time.Duration {
	if c.SuccessSlot <= 0 {
		return 2400 * time.Microsecond
	}
	return c.SuccessSlot
}

func (c Config) collisionSlot() time.Duration {
	if c.CollisionSlot <= 0 {
		return 575 * time.Microsecond
	}
	return c.CollisionSlot
}

func (c Config) idleSlot() time.Duration {
	if c.IdleSlot <= 0 {
		return 150 * time.Microsecond
	}
	return c.IdleSlot
}

func (c Config) queryOverhead() time.Duration {
	if c.QueryOverhead <= 0 {
		return 250 * time.Microsecond
	}
	return c.QueryOverhead
}

// Read is one singulation event on the session timeline.
type Read struct {
	// Tag is the index (into the population passed to Run) of the tag
	// that was singulated.
	Tag int
	// At is the session time of the EPC read.
	At time.Duration
}

// Participation decides, per round and tag, whether the tag hears the
// reader and replies — the power-dependent behaviour the channel model
// owns. Returning false keeps the tag silent for that round.
type Participation func(tag int, at time.Duration) bool

// Simulator runs inventory rounds.
type Simulator struct {
	cfg Config
	rng *rand.Rand
}

// New builds a Simulator.
func New(cfg Config, rng *rand.Rand) (*Simulator, error) {
	if rng == nil {
		return nil, fmt.Errorf("gen2: nil rng")
	}
	if cfg.InitialQ > 15 {
		return nil, fmt.Errorf("gen2: initial Q %d exceeds the protocol maximum 15", cfg.InitialQ)
	}
	return &Simulator{cfg: cfg, rng: rng}, nil
}

// Run simulates inventory rounds over the session duration for a population
// of tagCount tags and returns the time-ordered singulations. participate
// may be nil (every tag always participates).
//
// Continuous-inventory behaviour is modelled: after a round ends (every tag
// singulated or all slots exhausted), the reader immediately starts a new
// round in which all tags participate again — which is how a reader keeps
// re-reading the same spinning tags hundreds of times per session.
func (s *Simulator) Run(duration time.Duration, tagCount int, participate Participation) ([]Read, error) {
	if tagCount <= 0 {
		return nil, fmt.Errorf("gen2: tag count %d", tagCount)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("gen2: non-positive duration %v", duration)
	}
	var reads []Read
	now := time.Duration(0)
	qfp := float64(s.cfg.initialQ())
	for now < duration {
		// One inventory round.
		now += s.cfg.queryOverhead()
		q := int(qfp + 0.5)
		if q < 0 {
			q = 0
		}
		if q > 15 {
			q = 15
		}
		slots := 1 << q

		// Tags that hear this round's Query draw slots.
		pending := make([]int, 0, tagCount)
		for tag := 0; tag < tagCount; tag++ {
			if participate == nil || participate(tag, now) {
				pending = append(pending, tag)
			}
		}
		if len(pending) == 0 {
			// Nothing in the field: burn an idle frame and retry.
			now += time.Duration(slots) * s.cfg.idleSlot()
			continue
		}
		slotOf := make(map[int][]int, slots)
		for _, tag := range pending {
			slot := s.rng.Intn(slots)
			slotOf[slot] = append(slotOf[slot], tag)
		}
		for slot := 0; slot < slots && now < duration; slot++ {
			occupants := slotOf[slot]
			switch len(occupants) {
			case 0:
				now += s.cfg.idleSlot()
				if s.cfg.AdaptiveQ {
					qfp -= s.cfg.qStep()
					if qfp < 0 {
						qfp = 0
					}
				}
			case 1:
				now += s.cfg.successSlot()
				reads = append(reads, Read{Tag: occupants[0], At: now})
			default:
				now += s.cfg.collisionSlot()
				if s.cfg.AdaptiveQ {
					qfp += s.cfg.qStep()
					if qfp > 15 {
						qfp = 15
					}
				}
			}
		}
	}
	return reads, nil
}
