package gen2

import (
	"math/rand"
	"testing"
	"time"
)

func sim(t *testing.T, cfg Config, seed int64) *Simulator {
	t.Helper()
	s, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := New(Config{InitialQ: 20}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Q > 15 accepted")
	}
}

func TestRunValidation(t *testing.T) {
	s := sim(t, Config{}, 1)
	if _, err := s.Run(time.Second, 0, nil); err == nil {
		t.Error("zero tags accepted")
	}
	if _, err := s.Run(0, 2, nil); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestReadsAreOrderedAndBounded(t *testing.T) {
	s := sim(t, Config{AdaptiveQ: true}, 2)
	reads, err := s.Run(4*time.Second, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
	for i, r := range reads {
		if r.Tag < 0 || r.Tag >= 2 {
			t.Fatalf("read %d: tag %d", i, r.Tag)
		}
		if r.At <= 0 || r.At > 4*time.Second+3*time.Millisecond {
			t.Fatalf("read %d: time %v", i, r.At)
		}
		if i > 0 && r.At < reads[i-1].At {
			t.Fatalf("reads out of order at %d", i)
		}
	}
}

func TestReadRateRegime(t *testing.T) {
	// Two tags, adaptive Q: a Gen2 reader sees each of two lone tags some
	// tens to a few hundred times per second.
	s := sim(t, Config{AdaptiveQ: true}, 3)
	reads, err := s.Run(4*time.Second, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	perTag := map[int]int{}
	for _, r := range reads {
		perTag[r.Tag]++
	}
	for tag, n := range perTag {
		rate := float64(n) / 4
		if rate < 30 || rate > 400 {
			t.Errorf("tag %d rate %.0f/s outside the Gen2 regime", tag, rate)
		}
	}
	// Both tags get read a comparable number of times.
	if perTag[0] == 0 || perTag[1] == 0 {
		t.Fatalf("starved tag: %+v", perTag)
	}
	ratio := float64(perTag[0]) / float64(perTag[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("unfair singulation: %+v", perTag)
	}
}

func TestRateFallsWithPopulation(t *testing.T) {
	perTagRate := func(tags int) float64 {
		s := sim(t, Config{AdaptiveQ: true}, 4)
		reads, err := s.Run(4*time.Second, tags, nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(reads)) / float64(tags) / 4
	}
	small, large := perTagRate(2), perTagRate(30)
	if large >= small {
		t.Errorf("per-tag rate should fall with population: 2 tags %.0f/s vs 30 tags %.0f/s", small, large)
	}
}

func TestAdaptiveQBeatsFixedQForLargePopulations(t *testing.T) {
	run := func(adaptive bool) int {
		s := sim(t, Config{InitialQ: 1, AdaptiveQ: adaptive}, 5)
		reads, err := s.Run(2*time.Second, 40, nil)
		if err != nil {
			t.Fatal(err)
		}
		return len(reads)
	}
	fixed, adaptive := run(false), run(true)
	// A Q of 1 against 40 tags collides almost every slot; adaptation must
	// claw throughput back.
	if adaptive <= fixed {
		t.Errorf("adaptive Q (%d reads) did not beat fixed tiny Q (%d reads)", adaptive, fixed)
	}
}

func TestParticipationGatesReads(t *testing.T) {
	s := sim(t, Config{AdaptiveQ: true}, 6)
	// Tag 1 never participates (out of power range).
	reads, err := s.Run(2*time.Second, 2, func(tag int, _ time.Duration) bool {
		return tag == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if r.Tag != 0 {
			t.Fatalf("silent tag was read: %+v", r)
		}
	}
	if len(reads) == 0 {
		t.Error("participating tag starved")
	}
}

func TestAllSilentBurnsTimeWithoutReads(t *testing.T) {
	s := sim(t, Config{}, 7)
	reads, err := s.Run(100*time.Millisecond, 3, func(int, time.Duration) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 0 {
		t.Errorf("reads from silent field: %d", len(reads))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []Read {
		s := sim(t, Config{AdaptiveQ: true}, 8)
		reads, err := s.Run(time.Second, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		return reads
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
