// Package locate implements §V of the paper: pinpointing the reader from the
// angle spectra of multiple spinning tags. In 2D the bearing lines of two
// (or more) disks are intersected (Eqn. 9, generalized to weighted least
// squares for redundant disks). In 3D the horizontal position comes from the
// azimuths and the height from the polar angles (Eqn. 14a/14b, "compared and
// balanced" as a weighted mean), with the inherent ±z mirror ambiguity
// resolved by a dead-space policy.
package locate

import (
	"errors"
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/geom"
)

// ErrTooFewBearings reports that fewer than two bearings were supplied.
var ErrTooFewBearings = errors.New("locate: need at least two bearings")

// Bearing2D is one disk's output in the plane: "the reader lies at this
// azimuth from my center".
type Bearing2D struct {
	// Origin is the disk center.
	Origin geom.Vec2
	// Azimuth is the estimated direction φ toward the reader.
	Azimuth float64
	// Weight optionally scales this bearing's influence (e.g. by profile
	// peak power). Zero means 1 — the zero value is a sentinel for
	// "unweighted", not "worthless", so callers fusing genuinely
	// zero-confidence bearings (a dead tag's all-zero profile) must drop
	// them before the solve rather than pass Weight 0.
	Weight float64
}

// Solve2D intersects the bearing lines. With exactly two bearings it is
// Eqn. 9; with more it returns the weighted least-squares point.
func Solve2D(bearings []Bearing2D) (geom.Vec2, error) {
	if len(bearings) < 2 {
		return geom.Vec2{}, ErrTooFewBearings
	}
	lines := make([]geom.Line2D, 0, len(bearings))
	for _, b := range bearings {
		lines = append(lines, geom.Line2D{Origin: b.Origin, Bearing: b.Azimuth, Weight: b.Weight})
	}
	p, err := geom.LeastSquaresPoint2D(lines)
	if err != nil {
		return geom.Vec2{}, fmt.Errorf("solve 2d: %w", err)
	}
	return p, nil
}

// Bearing3D is one disk's output in space: azimuth and polar angle toward
// the reader. Because a horizontal disk cannot tell +z from -z (§V-B), only
// |Polar| is meaningful; Solve3D treats the magnitude as the measurement.
type Bearing3D struct {
	// Origin is the disk center (the paper's disks sit at z = 0 of the
	// local frame; any origin works).
	Origin geom.Vec3
	// Azimuth is the estimated horizontal direction φ.
	Azimuth float64
	// Polar is the estimated polar angle γ; its sign is ambiguous.
	Polar float64
	// Weight optionally scales this bearing's influence. Zero means 1 —
	// the same "unweighted" sentinel as Bearing2D.Weight: zero-confidence
	// bearings must be dropped by the caller, not passed with Weight 0.
	Weight float64
}

// weight returns the effective weight.
func (b Bearing3D) weight() float64 {
	if b.Weight <= 0 {
		return 1
	}
	return b.Weight
}

// ZPolicy selects how the ±z mirror ambiguity is resolved.
type ZPolicy int

const (
	// ZPreferNonNegative keeps the z ≥ 0 candidate (the paper's
	// dead-space argument: the mirror position is usually inside the
	// floor or otherwise impossible). It is the default.
	ZPreferNonNegative ZPolicy = iota + 1
	// ZPreferNonPositive keeps the z ≤ 0 candidate.
	ZPreferNonPositive
	// ZKeepBoth returns both candidates, best first per policy order.
	ZKeepBoth
)

// Options3D configures the 3D solver.
type Options3D struct {
	// Policy resolves the mirror ambiguity. Zero means ZPreferNonNegative.
	Policy ZPolicy
}

// policy returns the effective policy.
func (o Options3D) policy() ZPolicy {
	if o.Policy == 0 {
		return ZPreferNonNegative
	}
	return o.Policy
}

// Candidate is one 3D solution.
type Candidate struct {
	// Position is the estimated reader position.
	Position geom.Vec3
	// ZSpread is the standard deviation of the per-bearing height
	// estimates the candidate was balanced from — a confidence signal
	// (0 when the bearings agree perfectly).
	ZSpread float64
}

// weightedMeanSpread combines per-bearing height estimates into a weighted
// mean and the weighted standard deviation around it.
func weightedMeanSpread(zs, weights []float64) (mean, spread float64) {
	var zSum, wSum float64
	for i, z := range zs {
		zSum += weights[i] * z
		wSum += weights[i]
	}
	mean = zSum / wSum
	for i, z := range zs {
		spread += weights[i] * (z - mean) * (z - mean)
	}
	return mean, math.Sqrt(spread / wSum)
}

// Solve3D estimates the reader position from two or more 3D bearings.
//
// The horizontal fix uses the azimuths exactly as in 2D. The height is then
// estimated per bearing as dist_i·tan|γ_i| above OR below that bearing's
// disk plane (Eqn. 14a/14b; the sign of γ is what a horizontal disk cannot
// observe), and each sign's per-bearing heights are combined as a weighted
// mean with its own ZSpread — the paper's "comparing and balancing" step.
// The mirror of the above-planes candidate is therefore the reflection of
// each height about its own disk plane (Origin.Z − dist·tan|γ|), not the
// negation of the combined mean; the two coincide only when every disk
// plane sits at z = 0. With disks at different heights the two candidates'
// ZSpreads also differ — the true side's per-bearing heights agree while
// the mirror side's disagree — which is itself a (weak) disambiguation
// signal.
//
// ZPreferNonNegative keeps the above-planes candidate and
// ZPreferNonPositive the below-planes one: in the paper's frame (disk
// planes at z = 0) these are exactly the z ≥ 0 / z ≤ 0 candidates, and
// with elevated planes "the mirror is inside the furniture the disks sit
// on" is the faithful reading of the dead-space argument. ZKeepBoth
// returns both, above-planes first.
func Solve3D(bearings []Bearing3D, opts Options3D) ([]Candidate, error) {
	if len(bearings) < 2 {
		return nil, ErrTooFewBearings
	}
	flat := make([]Bearing2D, 0, len(bearings))
	for _, b := range bearings {
		flat = append(flat, Bearing2D{Origin: b.Origin.XY(), Azimuth: b.Azimuth, Weight: b.Weight})
	}
	xy, err := Solve2D(flat)
	if err != nil {
		return nil, err
	}

	// Per-bearing height above/below each disk plane, Eqn. 14.
	ups := make([]float64, 0, len(bearings))
	downs := make([]float64, 0, len(bearings))
	weights := make([]float64, 0, len(bearings))
	for _, b := range bearings {
		horiz := b.Origin.XY().DistanceTo(xy)
		dz := horiz * math.Tan(math.Abs(b.Polar))
		ups = append(ups, b.Origin.Z+dz)
		downs = append(downs, b.Origin.Z-dz)
		weights = append(weights, b.weight())
	}
	upMean, upSpread := weightedMeanSpread(ups, weights)
	downMean, downSpread := weightedMeanSpread(downs, weights)

	up := Candidate{Position: geom.V3(xy.X, xy.Y, upMean), ZSpread: upSpread}
	down := Candidate{Position: geom.V3(xy.X, xy.Y, downMean), ZSpread: downSpread}
	switch opts.policy() {
	case ZPreferNonPositive:
		return []Candidate{down}, nil
	case ZKeepBoth:
		return []Candidate{up, down}, nil
	default: // ZPreferNonNegative
		return []Candidate{up}, nil
	}
}

// SolveLines3D is the alternative full-3D solver used by the many-disk
// ablation (A5): each bearing becomes a 3D ray (using the signed polar
// angle) and the weighted least-squares closest point is returned. It
// assumes the ±z ambiguity was already resolved upstream, e.g. by a
// vertical disk.
func SolveLines3D(bearings []Bearing3D) (geom.Vec3, error) {
	if len(bearings) < 2 {
		return geom.Vec3{}, ErrTooFewBearings
	}
	lines := make([]geom.Line3D, 0, len(bearings))
	for _, b := range bearings {
		lines = append(lines, geom.Line3D{
			Origin: b.Origin,
			Dir:    geom.DirectionFromAngles(b.Azimuth, b.Polar),
			Weight: b.Weight,
		})
	}
	p, err := geom.LeastSquaresPoint3D(lines)
	if err != nil {
		return geom.Vec3{}, fmt.Errorf("solve lines 3d: %w", err)
	}
	return p, nil
}
