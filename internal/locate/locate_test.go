package locate

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

func bearingTo2D(origin geom.Vec2, target geom.Vec2) Bearing2D {
	return Bearing2D{Origin: origin, Azimuth: target.Sub(origin).Bearing()}
}

func bearingTo3D(origin, target geom.Vec3) Bearing3D {
	rel := target.Sub(origin)
	return Bearing3D{Origin: origin, Azimuth: rel.Azimuth(), Polar: rel.Polar()}
}

func TestSolve2DTwoBearings(t *testing.T) {
	target := geom.V2(1.2, 2.4)
	bs := []Bearing2D{
		bearingTo2D(geom.V2(-0.25, 0), target),
		bearingTo2D(geom.V2(0.25, 0), target),
	}
	got, err := Solve2D(bs)
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(target) > 1e-9 {
		t.Errorf("Solve2D = %v, want %v", got, target)
	}
}

func TestSolve2DPaperGeometry(t *testing.T) {
	// The paper's default layout: disks at (±25 cm, 0), reader a few
	// meters away at an arbitrary angle.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		az := rng.Float64() * 2 * math.Pi
		d := 1.5 + 2.5*rng.Float64()
		target := geom.V2(d*math.Cos(az), d*math.Sin(az))
		bs := []Bearing2D{
			bearingTo2D(geom.V2(-0.25, 0), target),
			bearingTo2D(geom.V2(0.25, 0), target),
		}
		got, err := Solve2D(bs)
		if err != nil {
			continue // reader collinear with both disks
		}
		if got.DistanceTo(target) > 1e-6 {
			t.Fatalf("trial %d: %v vs %v", i, got, target)
		}
	}
}

func TestSolve2DErrors(t *testing.T) {
	if _, err := Solve2D(nil); !errors.Is(err, ErrTooFewBearings) {
		t.Errorf("err = %v", err)
	}
	same := Bearing2D{Origin: geom.V2(0, 0), Azimuth: 1}
	same2 := Bearing2D{Origin: geom.V2(1, 1), Azimuth: 1}
	if _, err := Solve2D([]Bearing2D{same, same2}); err == nil {
		t.Error("parallel bearings accepted")
	}
}

func TestSolve2DRedundantBearings(t *testing.T) {
	target := geom.V2(-1.8, 0.9)
	bs := []Bearing2D{
		bearingTo2D(geom.V2(-0.25, 0), target),
		bearingTo2D(geom.V2(0.25, 0), target),
		bearingTo2D(geom.V2(0, -0.5), target),
	}
	got, err := Solve2D(bs)
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(target) > 1e-9 {
		t.Errorf("3-bearing fix = %v, want %v", got, target)
	}
}

func TestSolve3DRecoversElevatedReader(t *testing.T) {
	target := geom.V3(-2.0, 1.0, 1.2)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0), target),
		bearingTo3D(geom.V3(0.25, 0, 0), target),
	}
	cands, err := Solve3D(bs, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if cands[0].Position.DistanceTo(target) > 1e-6 {
		t.Errorf("Solve3D = %v, want %v", cands[0].Position, target)
	}
	if cands[0].ZSpread > 1e-9 {
		t.Errorf("perfect bearings should have zero spread, got %v", cands[0].ZSpread)
	}
}

func TestSolve3DMirrorAmbiguity(t *testing.T) {
	target := geom.V3(-2.0, 0.5, 0.9)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0), target),
		bearingTo3D(geom.V3(0.25, 0, 0), target),
	}
	// Flipping the polar sign of the measurements must not change the
	// solution: only |γ| is used.
	flipped := append([]Bearing3D(nil), bs...)
	for i := range flipped {
		flipped[i].Polar = -flipped[i].Polar
	}
	a, err := Solve3D(bs, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve3D(flipped, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Position.DistanceTo(b[0].Position) > 1e-9 {
		t.Errorf("sign of polar leaked into the solution: %v vs %v", a[0].Position, b[0].Position)
	}
}

func TestSolve3DPolicies(t *testing.T) {
	target := geom.V3(-1.5, 0.8, 1.0)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0), target),
		bearingTo3D(geom.V3(0.25, 0, 0), target),
	}
	both, err := Solve3D(bs, Options3D{Policy: ZKeepBoth})
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 {
		t.Fatalf("ZKeepBoth returned %d candidates", len(both))
	}
	if math.Abs(both[0].Position.Z-1.0) > 1e-6 || math.Abs(both[1].Position.Z+1.0) > 1e-6 {
		t.Errorf("candidates = %v, %v", both[0].Position, both[1].Position)
	}
	neg, err := Solve3D(bs, Options3D{Policy: ZPreferNonPositive})
	if err != nil {
		t.Fatal(err)
	}
	if neg[0].Position.Z > 0 {
		t.Errorf("ZPreferNonPositive returned z = %v", neg[0].Position.Z)
	}
}

func TestSolve3DSpreadSignalsDisagreement(t *testing.T) {
	target := geom.V3(-2.0, 0.8, 1.0)
	b1 := bearingTo3D(geom.V3(-0.25, 0, 0), target)
	b2 := bearingTo3D(geom.V3(0.25, 0, 0), target)
	b2.Polar += 0.1 // corrupt one polar estimate
	cands, err := Solve3D([]Bearing3D{b1, b2}, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].ZSpread < 0.01 {
		t.Errorf("spread = %v, want > 0 for disagreeing bearings", cands[0].ZSpread)
	}
}

func TestSolve3DElevatedDiskOrigins(t *testing.T) {
	// Disks mounted at z = 9.5 cm, as in the paper's 3D experiments.
	target := geom.V3(-2.2, 0.4, 1.1)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0.095), target),
		bearingTo3D(geom.V3(0.25, 0, 0.095), target),
	}
	cands, err := Solve3D(bs, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Position.DistanceTo(target) > 1e-6 {
		t.Errorf("elevated-disk fix = %v, want %v", cands[0].Position, target)
	}
}

func TestSolve3DErrors(t *testing.T) {
	if _, err := Solve3D(nil, Options3D{}); !errors.Is(err, ErrTooFewBearings) {
		t.Errorf("err = %v", err)
	}
}

func TestSolveLines3D(t *testing.T) {
	target := geom.V3(-1.1, 2.2, 0.7)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0), target),
		bearingTo3D(geom.V3(0.25, 0, 0), target),
		bearingTo3D(geom.V3(0, 0.5, 0.2), target),
	}
	got, err := SolveLines3D(bs)
	if err != nil {
		t.Fatal(err)
	}
	if got.DistanceTo(target) > 1e-6 {
		t.Errorf("SolveLines3D = %v, want %v", got, target)
	}
	if _, err := SolveLines3D(bs[:1]); !errors.Is(err, ErrTooFewBearings) {
		t.Errorf("err = %v", err)
	}
}

func TestSolve3DWeighting(t *testing.T) {
	target := geom.V3(-2.0, 0, 1.0)
	good1 := bearingTo3D(geom.V3(-0.25, 0, 0), target)
	good2 := bearingTo3D(geom.V3(0.25, 0, 0), target)
	bad := bearingTo3D(geom.V3(0, -0.5, 0), target)
	bad.Polar += 0.3
	bad.Weight = 1e-9
	good1.Weight, good2.Weight = 1, 1
	cands, err := Solve3D([]Bearing3D{good1, good2, bad}, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cands[0].Position.Z-1.0) > 1e-3 {
		t.Errorf("down-weighted bad polar still moved z: %v", cands[0].Position.Z)
	}
}

func TestSolve3DMirrorReflectsAboutDiskPlanes(t *testing.T) {
	// Regression: with elevated disk origins the mirror candidate must be
	// the reflection of the reader about the disk planes (z = 2·planeZ −
	// z_true), not the negation of the combined mean. The old code
	// returned z = −z_true here, off by 2·planeZ.
	planeZ := 0.095
	target := geom.V3(-2.2, 0.4, 1.1)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, planeZ), target),
		bearingTo3D(geom.V3(0.25, 0, planeZ), target),
	}
	cands, err := Solve3D(bs, Options3D{Policy: ZKeepBoth})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("ZKeepBoth returned %d candidates", len(cands))
	}
	wantMirror := 2*planeZ - target.Z
	if got := cands[1].Position.Z; math.Abs(got-wantMirror) > 1e-6 {
		t.Errorf("mirror z = %v, want reflection about plane %v", got, wantMirror)
	}
	if cands[0].Position.DistanceTo(target) > 1e-6 {
		t.Errorf("preferred = %v, want %v", cands[0].Position, target)
	}
}

func TestSolve3DPerCandidateZSpread(t *testing.T) {
	// Disks at different heights: the true side's per-bearing heights
	// agree exactly (spread 0) while the mirror side's are reflections
	// about two different planes and must disagree — ZSpread is a
	// per-candidate quantity.
	target := geom.V3(-1.8, 0.9, 1.4)
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, 0), target),
		bearingTo3D(geom.V3(0.25, 0, 0.4), target),
	}
	cands, err := Solve3D(bs, Options3D{Policy: ZKeepBoth})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].ZSpread > 1e-9 {
		t.Errorf("true-side spread = %v, want 0", cands[0].ZSpread)
	}
	if cands[1].ZSpread < 0.1 {
		t.Errorf("mirror-side spread = %v, want > 0 (planes at different heights)", cands[1].ZSpread)
	}
	// Mirror mean: average of the two per-plane reflections.
	wantMirror := ((2*0-target.Z)+(2*0.4-target.Z))/2 + 0
	if got := cands[1].Position.Z; math.Abs(got-wantMirror) > 1e-6 {
		t.Errorf("mirror z = %v, want %v", got, wantMirror)
	}
}

func TestSolve3DPoliciesPickPlaneSides(t *testing.T) {
	// With elevated planes the policies select the above-planes /
	// below-planes candidate; a reader below elevated planes but above
	// z = 0 stays selectable via ZPreferNonPositive's mirror.
	planeZ := 1.0
	target := geom.V3(-1.5, 0.8, 1.6) // above the planes
	bs := []Bearing3D{
		bearingTo3D(geom.V3(-0.25, 0, planeZ), target),
		bearingTo3D(geom.V3(0.25, 0, planeZ), target),
	}
	up, err := Solve3D(bs, Options3D{})
	if err != nil {
		t.Fatal(err)
	}
	if up[0].Position.DistanceTo(target) > 1e-6 {
		t.Errorf("above-planes candidate = %v, want %v", up[0].Position, target)
	}
	down, err := Solve3D(bs, Options3D{Policy: ZPreferNonPositive})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*planeZ - target.Z; math.Abs(down[0].Position.Z-want) > 1e-6 {
		t.Errorf("below-planes candidate z = %v, want %v", down[0].Position.Z, want)
	}
}
