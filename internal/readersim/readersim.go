// Package readersim emulates the network face of an Impinj-style RFID
// reader: it accepts LLRP-flavoured TCP connections, runs inventory sessions
// against the simulated radio world (internal/testbed), and streams batched
// tag reports carrying quantized phase words and reader-clock timestamps —
// the same data path the paper's host software consumed.
//
// Sessions run on a compressed clock: TimeScale simulated seconds pass per
// wall-clock second, so a 4-second (two-rotation) session can stream in
// 20 ms of real time during tests while preserving the simulated timestamps.
package readersim

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// Faults injects deterministic wire-level failures so the robustness of the
// collection pipeline (retries, deadlines, cancellation) can be tested
// against real protocol traffic instead of mocks.
type Faults struct {
	// RejectSessions rejects the first K StartROSpec requests across the
	// whole reader (StatusError), then serves normally — the transient
	// "reader busy" condition a retrying client must ride out.
	RejectSessions int
	// DropAfterReports abruptly closes the TCP connection after the Nth
	// ROAccessReport of a session, with no protocol goodbye; zero
	// disables the fault.
	DropAfterReports int
	// StallBeforeDone streams every report but never sends ROSpecDone;
	// the session hangs until the client gives up or disconnects.
	StallBeforeDone bool
	// CloseMidSession sends a protocol-level CloseConnection after the
	// first report batch and drops the connection, on every session.
	CloseMidSession bool
	// CloseMidSessions does the same to only the first K sessions across
	// the whole reader, then serves normally — the transient flavor a
	// retrying client must ride out (mirroring RejectSessions). Ignored
	// when CloseMidSession is set.
	CloseMidSessions int
}

// Config configures the simulated reader.
type Config struct {
	// World is the simulated deployment the reader interrogates.
	World *testbed.Scenario
	// TimeScale is simulated seconds per wall second; zero means 200.
	TimeScale float64
	// ReportBatch is the number of reads per ROAccessReport; zero
	// means 16.
	ReportBatch int
	// Seed seeds the session randomness.
	Seed int64
	// Faults, when non-zero, injects wire-level failures (see Faults).
	Faults Faults
	// Logf, when non-nil, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

// timeScale returns the effective time compression.
func (c Config) timeScale() float64 {
	if c.TimeScale <= 0 {
		return 200
	}
	return c.TimeScale
}

// reportBatch returns the effective batch size.
func (c Config) reportBatch() int {
	if c.ReportBatch <= 0 {
		return 16
	}
	return c.ReportBatch
}

// logf logs through the configured sink.
func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Reader is a running simulated reader.
type Reader struct {
	cfg Config

	mu        sync.Mutex
	seed      int64
	rejected  int
	midClosed int
	closed    chan struct{}
	wg       sync.WaitGroup
	lis      net.Listener
	conns    map[*llrp.Conn]struct{}
}

// New builds a Reader.
func New(cfg Config) (*Reader, error) {
	if cfg.World == nil {
		return nil, errors.New("readersim: nil world")
	}
	if len(cfg.World.Installs) == 0 {
		return nil, errors.New("readersim: world has no spinning tags")
	}
	return &Reader{
		cfg:    cfg,
		seed:   cfg.Seed,
		closed: make(chan struct{}),
		conns:  make(map[*llrp.Conn]struct{}),
	}, nil
}

// track registers a live connection so Close can interrupt its blocked
// Receive; it returns false when the reader is already closed.
func (r *Reader) track(conn *llrp.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.closed:
		return false
	default:
	}
	r.conns[conn] = struct{}{}
	return true
}

// untrack removes a finished connection.
func (r *Reader) untrack(conn *llrp.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, conn)
}

// Serve accepts connections on l until Close is called. It blocks.
func (r *Reader) Serve(l net.Listener) error {
	r.mu.Lock()
	r.lis = l
	r.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return nil
			default:
				return fmt.Errorf("readersim accept: %w", err)
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handle(llrp.NewConn(conn))
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (r *Reader) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(l)
}

// Addr returns the listener address, once Serve has been called.
func (r *Reader) Addr() net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lis == nil {
		return nil
	}
	return r.lis.Addr()
}

// Close stops accepting, closes the listener, and waits for in-flight
// sessions to finish.
func (r *Reader) Close() error {
	r.mu.Lock()
	select {
	case <-r.closed:
	default:
		close(r.closed)
		if r.lis != nil {
			r.lis.Close() //nolint:errcheck // best-effort shutdown
		}
		// Interrupt handlers blocked in Receive.
		for conn := range r.conns {
			conn.Close() //nolint:errcheck // best-effort shutdown
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// nextSeed hands out distinct deterministic seeds to sessions.
func (r *Reader) nextSeed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seed++
	return r.seed
}

// takeRejection consumes one injected session rejection, if any remain.
func (r *Reader) takeRejection() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rejected < r.cfg.Faults.RejectSessions {
		r.rejected++
		return true
	}
	return false
}

// takeCloseMidSession decides, once per session, whether this session is
// closed mid-stream: always under CloseMidSession, else it consumes one of
// the CloseMidSessions injections while any remain.
func (r *Reader) takeCloseMidSession() bool {
	if r.cfg.Faults.CloseMidSession {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.midClosed < r.cfg.Faults.CloseMidSessions {
		r.midClosed++
		return true
	}
	return false
}

// read is one generated tag read on the session timeline.
type read struct {
	epc  tags.EPC
	snap phase.Snapshot
}

// generate produces the session's reads, time-ordered, covering duration of
// simulated time.
func (r *Reader) generate(duration time.Duration) ([]read, error) {
	world := *r.cfg.World // shallow copy; we only adjust Rotations
	period := world.Installs[0].Disk.Period()
	for _, in := range world.Installs[1:] {
		if p := in.Disk.Period(); p > period {
			period = p
		}
	}
	world.Rotations = float64(duration) / float64(period)
	rng := rand.New(rand.NewSource(r.nextSeed()))
	col, err := world.Collect(rng)
	if err != nil {
		return nil, err
	}
	var out []read
	for epc, snaps := range col.Obs {
		for _, s := range snaps {
			if s.Time < duration {
				out = append(out, read{epc: epc, snap: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].snap.Time != out[j].snap.Time {
			return out[i].snap.Time < out[j].snap.Time
		}
		return out[i].epc.String() < out[j].epc.String()
	})
	return out, nil
}

// channelIndexFor inverts the world's frequency plan for the report field.
func (r *Reader) channelIndexFor(freqHz float64) uint16 {
	band := r.cfg.World.Band
	idx := int((freqHz-band.StartHz)/band.StepHz + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= band.Channels {
		idx = band.Channels - 1
	}
	return uint16(idx)
}

// handle runs one client connection.
func (r *Reader) handle(conn *llrp.Conn) {
	defer conn.Close() //nolint:errcheck // nothing to do on close failure
	if !r.track(conn) {
		return
	}
	defer r.untrack(conn)
	if _, err := conn.Send(&llrp.ReaderEventNotification{Event: llrp.EventConnectionAttempt}); err != nil {
		return
	}
	var (
		stopSession chan struct{}
		sessionDone chan struct{}
	)
	stopRunning := func() {
		if stopSession != nil {
			close(stopSession)
			<-sessionDone
			stopSession, sessionDone = nil, nil
		}
	}
	defer stopRunning()
	for {
		id, msg, err := conn.Receive()
		if err != nil {
			return // client went away; deferred cleanup stops the session
		}
		switch m := msg.(type) {
		case *llrp.StartROSpec:
			stopRunning()
			if r.takeRejection() {
				r.cfg.logf("readersim: injected rejection of ROSpec %d", m.ROSpecID)
				if err := conn.Reply(id, &llrp.StartROSpecResponse{ROSpecID: m.ROSpecID, Status: llrp.StatusError}); err != nil {
					return
				}
				continue
			}
			duration := time.Duration(m.DurationMicros) * time.Microsecond
			if duration <= 0 {
				duration = 4 * time.Second
			}
			reads, err := r.generate(duration)
			if err != nil {
				r.cfg.logf("readersim: generate: %v", err)
				if err := conn.Reply(id, &llrp.StartROSpecResponse{ROSpecID: m.ROSpecID, Status: llrp.StatusError}); err != nil {
					return
				}
				continue
			}
			if err := conn.Reply(id, &llrp.StartROSpecResponse{ROSpecID: m.ROSpecID, Status: llrp.StatusOK}); err != nil {
				return
			}
			stopSession = make(chan struct{})
			sessionDone = make(chan struct{})
			go r.stream(conn, reads, duration, r.takeCloseMidSession(), stopSession, sessionDone)
		case *llrp.StopROSpec:
			stopRunning()
			if err := conn.Reply(id, &llrp.StopROSpecResponse{ROSpecID: m.ROSpecID, Status: llrp.StatusOK}); err != nil {
				return
			}
		case *llrp.KeepAlive:
			if err := conn.Reply(id, &llrp.KeepAliveAck{}); err != nil {
				return
			}
		case *llrp.CloseConnection:
			return
		default:
			r.cfg.logf("readersim: ignoring %v", msg.MsgType())
		}
	}
}

// stream paces the generated reads onto the connection in batches, honoring
// the time compression, then announces completion. closeMid, decided once at
// session start, injects a protocol-level CloseConnection after the first
// report batch.
func (r *Reader) stream(conn *llrp.Conn, reads []read, duration time.Duration, closeMid bool, stop, done chan struct{}) {
	defer close(done)
	if _, err := conn.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecStarted}); err != nil {
		return
	}
	batch := r.cfg.reportBatch()
	scale := r.cfg.timeScale()
	f := r.cfg.Faults
	reportsSent := 0
	sent := time.Duration(0) // simulated time already streamed
	for start := 0; start < len(reads); start += batch {
		end := start + batch
		if end > len(reads) {
			end = len(reads)
		}
		// Sleep until the last read of the batch "happens" on the
		// compressed clock.
		batchTime := reads[end-1].snap.Time
		wait := time.Duration(float64(batchTime-sent) / scale)
		sent = batchTime
		select {
		case <-stop:
			return
		case <-r.closed:
			return
		case <-time.After(wait):
		}
		report := &llrp.ROAccessReport{Reports: make([]llrp.TagReportData, 0, end-start)}
		for _, rd := range reads[start:end] {
			report.Reports = append(report.Reports, llrp.TagReportData{
				EPC:             rd.epc,
				AntennaID:       uint16(rd.snap.AntennaID),
				ChannelIndex:    r.channelIndexFor(rd.snap.FrequencyHz),
				PeakRSSI:        llrp.RSSIWordFromDBm(rd.snap.RSSIdBm),
				PhaseWord:       llrp.PhaseWordFromRadians(rd.snap.Phase),
				FirstSeenMicros: uint64(rd.snap.Time / time.Microsecond),
			})
		}
		if _, err := conn.Send(report); err != nil {
			return
		}
		reportsSent++
		if closeMid && reportsSent == 1 {
			r.cfg.logf("readersim: injected CloseConnection mid-session")
			conn.Send(&llrp.CloseConnection{}) //nolint:errcheck // dropping anyway
			conn.Close()                       //nolint:errcheck // dropping anyway
			return
		}
		if f.DropAfterReports > 0 && reportsSent >= f.DropAfterReports {
			r.cfg.logf("readersim: injected drop after %d reports", reportsSent)
			conn.Close() //nolint:errcheck // abrupt drop is the point
			return
		}
	}
	// Wait out any remaining simulated time so Done matches the duration.
	if tail := time.Duration(float64(duration-sent) / scale); tail > 0 {
		select {
		case <-stop:
			return
		case <-r.closed:
			return
		case <-time.After(tail):
		}
	}
	if f.StallBeforeDone {
		// Hang instead of completing: the client sees a live but silent
		// connection until it cancels, times out, or disconnects.
		r.cfg.logf("readersim: injected stall before ROSpecDone")
		select {
		case <-stop:
		case <-r.closed:
		}
		return
	}
	if _, err := conn.Send(&llrp.ReaderEventNotification{
		Event:           llrp.EventROSpecDone,
		TimestampMicros: uint64(duration / time.Microsecond),
	}); err != nil {
		log.Printf("readersim: send done: %v", err)
	}
}
