package readersim_test

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/readersim"
	"github.com/tagspin/tagspin/internal/testbed"
)

// startReader spins up a reader on a loopback listener and returns its
// address plus a shutdown func.
func startReader(t *testing.T, cfg readersim.Config) (string, func()) {
	t.Helper()
	r, err := readersim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(l) }()
	return l.Addr().String(), func() {
		if err := r.Close(); err != nil {
			t.Errorf("reader close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func world(t *testing.T, seed int64) *testbed.Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.8, 1.4, 0))
	return sc
}

func TestNewValidation(t *testing.T) {
	if _, err := readersim.New(readersim.Config{}); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := readersim.New(readersim.Config{World: &testbed.Scenario{}}); err == nil {
		t.Error("empty world accepted")
	}
}

func TestEndToEndCollection(t *testing.T) {
	sc := world(t, 1)
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 400, Seed: 9})
	defer shutdown()

	obs, err := client.Collect(context.Background(), addr, client.Config{Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("tags observed = %d, want 2", len(obs))
	}
	for epc, snaps := range obs {
		if len(snaps) < 50 {
			t.Errorf("tag %s: only %d snapshots", epc, len(snaps))
		}
		for i, s := range snaps {
			if s.Time < 0 || s.Time >= 4*time.Second {
				t.Fatalf("tag %s snap %d: time %v outside session", epc, i, s.Time)
			}
			if s.Phase < 0 || s.Phase >= 2*3.14159266 {
				t.Fatalf("tag %s snap %d: phase %v out of range", epc, i, s.Phase)
			}
			if s.FrequencyHz < 920e6 || s.FrequencyHz > 925e6 {
				t.Fatalf("tag %s snap %d: freq %v", epc, i, s.FrequencyHz)
			}
			if i > 0 && s.Time < snaps[i-1].Time {
				t.Fatalf("tag %s: timestamps not monotone", epc)
			}
		}
	}
}

func TestLocalizationOverTheWire(t *testing.T) {
	// The full distributed flow: reads streamed over TCP with 12-bit phase
	// quantization must still localize the reader to centimeters.
	sc := world(t, 2)
	target := sc.Antenna.Position
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 400, Seed: 5})
	defer shutdown()

	obs, err := client.Collect(context.Background(), addr, client.Config{Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var registered []core.SpinningTag
	for _, in := range sc.Installs {
		registered = append(registered, core.SpinningTag{EPC: in.Tag.EPC, Disk: in.Disk})
	}
	res, err := core.NewLocator(core.Config{}).Locate2D(registered, obs)
	if err != nil {
		t.Fatal(err)
	}
	// No orientation calibration is registered here — this test checks the
	// transport (framing, quantization, timestamps), so the bound only needs
	// to rule out gross corruption, not match the calibrated accuracy.
	if e := res.Position.DistanceTo(target.XY()); e > 0.50 {
		t.Errorf("over-the-wire 2D error %.1f cm", e*100)
	}
}

func TestStopROSpecEndsSession(t *testing.T) {
	sc := world(t, 3)
	// Very slow time scale so the session would take long without a stop.
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 2, Seed: 1})
	defer shutdown()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := llrp.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(&llrp.StartROSpec{ROSpecID: 3, DurationMicros: 60_000_000}); err != nil {
		t.Fatal(err)
	}
	// Drain until the start response arrives.
	for {
		_, msg, err := conn.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := msg.(*llrp.StartROSpecResponse); ok {
			if r.Status != llrp.StatusOK {
				t.Fatalf("start rejected")
			}
			break
		}
	}
	if _, err := conn.Send(&llrp.StopROSpec{ROSpecID: 3}); err != nil {
		t.Fatal(err)
	}
	// The stop response must arrive even though the session was mid-flight;
	// reports may interleave before it.
	deadline := time.After(8 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no StopROSpecResponse")
		default:
		}
		_, msg, err := conn.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := msg.(*llrp.StopROSpecResponse); ok {
			if r.ROSpecID != 3 || r.Status != llrp.StatusOK {
				t.Fatalf("stop response = %+v", r)
			}
			return
		}
	}
}

func TestKeepAlive(t *testing.T) {
	sc := world(t, 4)
	addr, shutdown := startReader(t, readersim.Config{World: sc})
	defer shutdown()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := llrp.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(&llrp.KeepAlive{}); err != nil {
		t.Fatal(err)
	}
	for {
		_, msg, err := conn.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*llrp.KeepAliveAck); ok {
			return
		}
	}
}

func TestTwoClientsConcurrently(t *testing.T) {
	sc := world(t, 5)
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 400})
	defer shutdown()
	type result struct {
		n   int
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			obs, err := client.Collect(context.Background(), addr, client.Config{Duration: 2 * time.Second})
			results <- result{n: len(obs), err: err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.n != 2 {
			t.Errorf("client %d saw %d tags", i, r.n)
		}
	}
}

func TestClientRejectsUnknownChannel(t *testing.T) {
	// A malformed world whose frequencies fall outside the client's band
	// should surface as an error, not silently wrong wavelengths. Simulate
	// by giving the client a band with too few channels.
	sc := world(t, 6)
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 400})
	defer shutdown()
	_, err := client.Collect(context.Background(), addr, client.Config{
		Duration: time.Second,
		Band:     sc.Band, // same plan: should succeed
	})
	if err != nil {
		t.Fatalf("matching band failed: %v", err)
	}
}

// TestCloseDuringSession shuts the reader down while a slow session is
// streaming; Close must return (no goroutine hangs) and the client must see
// the connection end rather than a corrupted stream.
func TestCloseDuringSession(t *testing.T) {
	sc := world(t, 7)
	r, err := readersim.New(readersim.Config{World: sc, TimeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(l) }()

	clientErr := make(chan error, 1)
	go func() {
		_, err := client.Collect(context.Background(), l.Addr().String(), client.Config{
			Duration: 30 * time.Second,
			Timeout:  20 * time.Second,
		})
		clientErr <- err
	}()
	// Give the session a moment to start streaming, then pull the plug.
	time.Sleep(300 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		if err := r.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reader.Close hung")
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
	if err := <-clientErr; err == nil {
		t.Error("client should see the session die, not succeed")
	}
}
