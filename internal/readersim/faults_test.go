package readersim_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/readersim"
)

// These tests drive the client's retry/cancellation machinery against real
// wire-level failures injected by the simulated reader — no mocks anywhere
// on the path: TCP, LLRP framing, and the fault all behave as deployed.

func TestFaultRejectSessionsThenRetrySucceeds(t *testing.T) {
	sc := world(t, 11)
	addr, shutdown := startReader(t, readersim.Config{
		World:     sc,
		TimeScale: 400,
		Faults:    readersim.Faults{RejectSessions: 2},
	})
	defer shutdown()

	// A single attempt must surface the rejection...
	_, err := client.Collect(context.Background(), addr, client.Config{Duration: 2 * time.Second})
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("first attempt err = %v, want ErrRejected", err)
	}
	// ...and the retry layer must ride out the remaining injected rejection
	// and then complete a full session.
	obs, err := client.CollectRetry(context.Background(), addr, client.Config{
		Duration:    2 * time.Second,
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if len(obs) != 2 {
		t.Errorf("tags observed = %d, want 2", len(obs))
	}
}

func TestFaultStallBeforeDoneHonorsDeadline(t *testing.T) {
	sc := world(t, 12)
	addr, shutdown := startReader(t, readersim.Config{
		World:     sc,
		TimeScale: 400,
		Faults:    readersim.Faults{StallBeforeDone: true},
	})
	defer shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, err := client.Collect(ctx, addr, client.Config{Duration: 2 * time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// Without the context the client would sit on the stalled session until
	// the 30 s wall-clock deadline; the ctx must cut that to ~1 s.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stalled collect took %v, want ≈1 s", elapsed)
	}
}

func TestFaultCancelUnblocksMidStream(t *testing.T) {
	sc := world(t, 13)
	// Slow time scale: the session streams for many wall-clock seconds, so
	// the cancel lands mid-stream with reports still flowing.
	addr, shutdown := startReader(t, readersim.Config{World: sc, TimeScale: 2})
	defer shutdown()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Collect(ctx, addr, client.Config{
		Duration: 30 * time.Second,
		Timeout:  20 * time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancel took %v, want prompt unblock", elapsed)
	}
}

func TestFaultDropAfterReports(t *testing.T) {
	sc := world(t, 14)
	addr, shutdown := startReader(t, readersim.Config{
		World:     sc,
		TimeScale: 400,
		Faults:    readersim.Faults{DropAfterReports: 1},
	})
	defer shutdown()

	_, err := client.Collect(context.Background(), addr, client.Config{Duration: 2 * time.Second})
	if err == nil {
		t.Fatal("abrupt mid-stream drop produced no error")
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drop misreported as context failure: %v", err)
	}
}

func TestFaultCloseMidSession(t *testing.T) {
	sc := world(t, 15)
	addr, shutdown := startReader(t, readersim.Config{
		World:     sc,
		TimeScale: 400,
		Faults:    readersim.Faults{CloseMidSession: true},
	})
	defer shutdown()

	_, err := client.Collect(context.Background(), addr, client.Config{Duration: 2 * time.Second})
	if !errors.Is(err, client.ErrReaderClosed) {
		t.Fatalf("err = %v, want ErrReaderClosed", err)
	}
	if !strings.Contains(err.Error(), "mid-session") {
		t.Errorf("err = %v, want mid-session close", err)
	}
	// A mid-session close is a flaky-link condition — it used to surface as
	// a terminal protocol error, leaving CollectRetry no chance to recover.
	if !client.Transient(err) {
		t.Errorf("mid-session close not classified transient: %v", err)
	}
}

// TestFaultCloseMidSessionRetryRecovers is the wire-level recovery proof:
// the reader closes the first session mid-stream (protocol CloseConnection +
// TCP drop), and CollectRetry must ride it out and complete a full session
// on the retry instead of surfacing the flaky link to the caller.
func TestFaultCloseMidSessionRetryRecovers(t *testing.T) {
	sc := world(t, 16)
	addr, shutdown := startReader(t, readersim.Config{
		World:     sc,
		TimeScale: 400,
		Faults:    readersim.Faults{CloseMidSessions: 1},
	})
	defer shutdown()

	obs, err := client.CollectRetry(context.Background(), addr, client.Config{
		Duration:    2 * time.Second,
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("retry did not ride out the mid-session close: %v", err)
	}
	if len(obs) != 2 {
		t.Errorf("tags observed = %d, want 2", len(obs))
	}
}
