package spectrum

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

// This file implements the paper's future-work extension (§V-B): a third
// spinning tag whose disk rotates in a *vertical* plane. For a tag whose
// rim offset from the disk center at time t is the vector o(t), the
// far-field distance to a reader in direction û is d(t) ≈ D − o(t)·û. A
// horizontal disk gives o·û = r·cos(a−φ)·cos γ, which is even in γ — hence
// the mirror ambiguity. A vertical disk in the plane spanned by the
// horizontal direction ψ and the z axis gives
//
//	o·û = r·(cos a · cos γ · cos(φ−ψ) + sin a · sin γ),
//
// which is NOT even in γ: its spectrum distinguishes +γ from −γ and
// resolves the ambiguity.

// VerticalParams configures profile computation for a vertically spinning
// tag.
type VerticalParams struct {
	// Disk is the nominal vertical-disk geometry.
	Disk spindisk.VerticalDisk
	// Sigma is the assumed phase-noise σ for the R weights. Zero means
	// DefaultSigma.
	Sigma float64
	// LiteralReference selects the Definition 4.1 weight form (see
	// Params.LiteralReference).
	LiteralReference bool
}

// sigma returns the effective noise parameter.
func (p VerticalParams) sigma() float64 {
	if p.Sigma <= 0 {
		return DefaultSigma
	}
	return p.Sigma
}

// Validate checks the parameters.
func (p VerticalParams) Validate() error {
	if p.Disk.Radius <= 0 {
		return fmt.Errorf("spectrum: vertical disk radius %v", p.Disk.Radius)
	}
	if p.Disk.Omega == 0 {
		return fmt.Errorf("spectrum: vertical disk zero angular velocity")
	}
	if p.Sigma < 0 {
		return fmt.Errorf("spectrum: negative sigma")
	}
	return nil
}

// verticalTerm caches per-snapshot quantities for the vertical aperture.
type verticalTerm struct {
	relPhase float64 // θ_i − θ_1, wrapped
	cosA     float64 // cos of the disk angle
	sinA     float64 // sin of the disk angle
	scale    float64 // 4π r / λ_i
}

// prepareVertical converts snapshots into cached terms.
func prepareVertical(snaps []phase.Snapshot, p VerticalParams) ([]verticalTerm, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) < 2 {
		return nil, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(snaps))
	}
	ref := snaps[0]
	terms := make([]verticalTerm, len(snaps))
	for i, s := range snaps {
		if s.FrequencyHz <= 0 {
			return nil, fmt.Errorf("spectrum: snapshot %d has no carrier frequency", i)
		}
		a := p.Disk.Angle(s.Time)
		terms[i] = verticalTerm{
			relPhase: mathx.WrapToPi(s.Phase - ref.Phase),
			cosA:     math.Cos(a),
			sinA:     math.Sin(a),
			scale:    4 * math.Pi * p.Disk.Radius / s.Wavelength(),
		}
	}
	return terms, nil
}

// evalVertical computes the selected power formula for the vertical
// aperture at candidate direction (phi, gamma).
func evalVertical(terms []verticalTerm, kind Kind, sigma float64, literalRef bool, planeAz, phi, gamma float64) float64 {
	cg, sg := math.Cos(gamma), math.Sin(gamma)
	inPlane := cg * math.Cos(phi-planeAz)
	aperture := func(t verticalTerm) float64 {
		return t.scale * (t.cosA*inPlane + t.sinA*sg)
	}
	refAperture := aperture(terms[0])
	var sum complex128
	if kind != KindR {
		for _, t := range terms {
			sum += complexRect(1, t.relPhase+aperture(t))
		}
		return complexAbs(sum) / float64(len(terms))
	}
	residuals := make([]float64, len(terms))
	apertures := make([]float64, len(terms))
	var rs, rc float64
	for i, t := range terms {
		ap := aperture(t)
		apertures[i] = ap
		res := mathx.WrapToPi(t.relPhase - (refAperture - ap))
		residuals[i] = res
		rs += math.Sin(res)
		rc += math.Cos(res)
	}
	var weightSigma, mu float64
	if literalRef {
		weightSigma = sigma * math.Sqrt2
	} else {
		weightSigma = math.Hypot(sigma, modelResidualSigma)
		mu = math.Atan2(rs, rc)
	}
	for i, res := range residuals {
		w := mathx.GaussPDF(mathx.WrapToPi(res-mu), 0, weightSigma)
		sum += complexRect(w, terms[i].relPhase+apertures[i])
	}
	return complexAbs(sum) / float64(len(terms))
}

// complexRect and complexAbs are local shims so this file reads like its
// horizontal sibling without re-importing math/cmplx under an alias.
func complexRect(r, theta float64) complex128 {
	return complex(r*math.Cos(theta), r*math.Sin(theta))
}

func complexAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// FindPeakVertical locates the (azimuth, polar) pair maximizing the
// vertical disk's profile, coarse-to-fine. Unlike the horizontal search the
// result's Polar sign is meaningful.
func FindPeakVertical(snaps []phase.Snapshot, p VerticalParams, kind Kind, opts SearchOptions) (Peak3D, error) {
	terms, err := prepareVertical(snaps, p)
	if err != nil {
		return Peak3D{}, err
	}
	sigma := p.sigma()
	eval := func(phi, gamma float64) float64 {
		return evalVertical(terms, kind, sigma, p.LiteralReference, p.Disk.PlaneAzimuth, phi, gamma)
	}
	coarse := terms
	if len(terms) > 64 {
		stride := (len(terms) + 63) / 64
		coarse = make([]verticalTerm, 0, 64)
		for i := 0; i < len(terms); i += stride {
			coarse = append(coarse, terms[i])
		}
	}
	coarseEval := func(phi, gamma float64) float64 {
		return evalVertical(coarse, kind, sigma, p.LiteralReference, p.Disk.PlaneAzimuth, phi, gamma)
	}

	azStep := opts.coarseStep() * 4
	polStep := opts.coarsePolarStep()
	best := Peak3D{Power: math.Inf(-1)}
	for gamma := -math.Pi / 2; gamma <= math.Pi/2; gamma += polStep {
		for phi := 0.0; phi < 2*math.Pi; phi += azStep {
			if v := coarseEval(phi, gamma); v > best.Power {
				best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
			}
		}
	}
	best.Power = eval(best.Azimuth, best.Polar)
	for r := 0; r < opts.refinements(); r++ {
		fineAz, finePol := azStep/5, polStep/5
		azLo, polLo := best.Azimuth-azStep, best.Polar-polStep
		for i := 0; i <= 10; i++ {
			gamma := clampPolar(polLo + float64(i)*finePol)
			for k := 0; k <= 10; k++ {
				phi := azLo + float64(k)*fineAz
				if v := eval(phi, gamma); v > best.Power {
					best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
				}
			}
		}
		azStep, polStep = fineAz, finePol
	}
	best.Azimuth = geom.NormalizeAngle(best.Azimuth)
	return best, nil
}

// ResolveMirror decides the sign of a horizontal-disk polar estimate using
// a vertical disk's signed peak: it returns +|polar| when the vertical
// disk's profile scores the +γ candidate at least as high as the −γ one,
// and −|polar| otherwise.
func ResolveMirror(snaps []phase.Snapshot, p VerticalParams, kind Kind, azimuth, polarMagnitude float64) (float64, error) {
	terms, err := prepareVertical(snaps, p)
	if err != nil {
		return 0, err
	}
	sigma := p.sigma()
	up := evalVertical(terms, kind, sigma, p.LiteralReference, p.Disk.PlaneAzimuth, azimuth, math.Abs(polarMagnitude))
	down := evalVertical(terms, kind, sigma, p.LiteralReference, p.Disk.PlaneAzimuth, azimuth, -math.Abs(polarMagnitude))
	if up >= down {
		return math.Abs(polarMagnitude), nil
	}
	return -math.Abs(polarMagnitude), nil
}
