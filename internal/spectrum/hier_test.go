package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

// randReader draws a reader position at a workable range from the disk.
func randReader(rng *rand.Rand, flat bool) geom.Vec3 {
	az := rng.Float64() * 2 * math.Pi
	r := 1.2 + rng.Float64()*2.5
	z := 0.0
	if !flat {
		z = rng.Float64()*2 - 1
	}
	return geom.V3(r*math.Cos(az), r*math.Sin(az), z)
}

// TestPeakCaptureBound is the tentpole property test: across 500 randomized
// sessions spanning 2D and 3D grids and both profile kinds, the
// hierarchical search's refined peak must land within one coarse cell of
// the full-scan batch peak. For KindQ the claim is stronger and exact —
// the Lipschitz retention threshold provably keeps the dense argmax cell in
// the evaluated set at every level (DESIGN.md §11 derives the bound), so
// the refined result is bit-identical to the dense path. KindR scores the
// hierarchy with Q and rescores the top cells with R, so it inherits the
// prescreen pass's within-one-cell contract rather than bit identity.
func TestPeakCaptureBound(t *testing.T) {
	p := testParams()
	opts := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOn}
	dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}

	t.Run("2D", func(t *testing.T) {
		for _, kind := range []Kind{KindQ, KindR} {
			name := "Q"
			if kind == KindR {
				name = "R"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(100 + int64(kind)))
				for trial := 0; trial < 210; trial++ {
					snaps := synth(p, randReader(rng, true), 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
					ev, err := NewEvaluator(snaps, p, kind)
					if err != nil {
						t.Fatal(err)
					}
					wantAz, wantPow := FindPeak2DEval(ev, dense)
					gotAz, gotPow := FindPeak2DEval(ev, opts)
					if kind == KindQ {
						if gotAz != wantAz || gotPow != wantPow {
							t.Fatalf("trial %d: hierarchical (%v, %v) != dense (%v, %v)", trial, gotAz, gotPow, wantAz, wantPow)
						}
						continue
					}
					if d := geom.AngleDistance(gotAz, wantAz); d > opts.coarseStep() {
						t.Fatalf("trial %d: hierarchical R peak %v is %v rad from dense peak %v (> one coarse cell %v)",
							trial, gotAz, d, wantAz, opts.coarseStep())
					}
				}
			})
		}
	})

	t.Run("3D", func(t *testing.T) {
		for _, kind := range []Kind{KindQ, KindR} {
			name := "Q"
			if kind == KindR {
				name = "R"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(200 + int64(kind)))
				for trial := 0; trial < 40; trial++ {
					snaps := synth3D(p, randReader(rng, false), 24+rng.Intn(40), rng.Float64()*0.15, rng)
					ev, err := NewEvaluator(snaps, p, kind)
					if err != nil {
						t.Fatal(err)
					}
					want := FindPeak3DEval(ev, dense)
					got := FindPeak3DEval(ev, opts)
					if kind == KindQ {
						if got != want {
							t.Fatalf("trial %d: hierarchical %+v != dense %+v", trial, got, want)
						}
						continue
					}
					azStep := opts.coarseStep() * 4
					if d := geom.AngleDistance(got.Azimuth, want.Azimuth); d > azStep {
						t.Fatalf("trial %d: hierarchical R azimuth %v is %v rad from dense %v (> one coarse cell %v)",
							trial, got.Azimuth, d, want.Azimuth, azStep)
					}
					if d := math.Abs(got.Polar - want.Polar); d > opts.coarsePolarStep() {
						t.Fatalf("trial %d: hierarchical R polar %v is %v rad from dense %v (> one coarse cell %v)",
							trial, got.Polar, d, want.Polar, opts.coarsePolarStep())
					}
				}
			})
		}
	})
}

// TestHierarchicalDefaultOn3D pins the routing: zero-valued SearchOptions
// on a KindQ evaluator take the hierarchical path for the 3D coarse scan
// and still match the forced-dense answer bit for bit.
func TestHierarchicalDefaultOn3D(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := testParams()
	snaps := synth3D(p, geom.V3(-2.1, 0.7, 0.9), 60, 0.05, rng)
	ev, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	want := FindPeak3DEval(ev, SearchOptions{Hierarchical: ToggleOff})
	got := FindPeak3DEval(ev, SearchOptions{})
	if got != want {
		t.Fatalf("default %+v != dense %+v", got, want)
	}
}

// TestHierLevels pins the level chooser's guard rails: degenerate Lipschitz
// constants and tiny grids must fall back to level 0 (dense), and the
// default grids must engage the hierarchy.
func TestHierLevels(t *testing.T) {
	lf := 3.85 // testbed aperture scale 4πr/λ
	if got := hierLevels(0, 0.0087, 720, 1); got != 0 {
		t.Fatalf("zero Lipschitz constant: level %d, want 0", got)
	}
	if got := hierLevels(lf, 0.0087, 24, 1); got != 0 {
		t.Fatalf("tiny grid: level %d, want 0", got)
	}
	if got := hierLevels(lf, geom.Radians(0.5), 720, 1); got < 2 {
		t.Fatalf("default 2D grid: level %d, want >= 2", got)
	}
	if got := hierLevels(lf, geom.Radians(2)+geom.Radians(2), 180, 91); got < 1 {
		t.Fatalf("default 3D grid: level %d, want >= 1", got)
	}
}

// TestLatticeRows pins the polar lattice construction: the last row is a
// member at every level so the clamped boundary stays covered, and level 0
// is the full row set.
func TestLatticeRows(t *testing.T) {
	rows := latticeRows(91, 1)
	if rows[0] != 0 || rows[len(rows)-1] != 90 {
		t.Fatalf("level 1 rows misses an endpoint: %v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			t.Fatalf("rows not strictly ascending: %v", rows)
		}
		if rows[i]-rows[i-1] > 2 {
			t.Fatalf("level 1 gap exceeds 2 rows: %v", rows)
		}
	}
	if got := latticeRows(5, 0); len(got) != 5 {
		t.Fatalf("level 0 should keep every row, got %v", got)
	}
	if got := latticeRows(1, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-row grid: %v", got)
	}
}
