package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

// TestRHarmonicArgmax is the randomized capture pin for the two-pass R
// all-cells route: across hundreds of random sessions (geometry, snapshot
// count, diversity, noise, reference mode, trig mode), the default-routed
// FindPeak2DEval — which now takes harmonicArgmaxR2D for KindR — must return
// the dense scan's answer bit for bit. The shortlist-then-exact-rescore
// construction makes this an equality claim, not a tolerance claim.
func TestRHarmonicArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}
	trials := 500
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		p := testParams()
		p.LiteralReference = trial%2 == 1
		n := 16 + rng.Intn(48)
		snaps := synth(p, randReader(rng, true), n, rng.Float64()*2, rng.Float64()*0.2, rng)
		var evalOpts []EvalOption
		if trial%3 == 2 {
			evalOpts = append(evalOpts, WithFastTrig())
		}
		ev, err := NewEvaluator(snaps, p, KindR, evalOpts...)
		if err != nil {
			t.Fatal(err)
		}
		gotAz, gotPow := FindPeak2DEval(ev, SearchOptions{})
		wantAz, wantPow := FindPeak2DEval(ev, dense)
		if gotAz != wantAz || gotPow != wantPow {
			t.Fatalf("trial %d (n=%d literal=%v fast=%v): harmonic-R (%v, %v) != dense (%v, %v)",
				trial, n, p.LiteralReference, len(evalOpts) > 0, gotAz, gotPow, wantAz, wantPow)
		}
	}
}

// TestAccumulatorHarmonicRBoundary mirrors the coarseTermLimit seam walk for
// the harmonic streaming fold with every accumulator mode forced through
// HarmonicEval: under and at the limit the finalize synthesizes from the
// streamed coefficients (and, for plain KindR, allocates no per-cell arrays
// at all); past it the batch fallback engages — and every session size must
// return the batch search's bits, which in turn are the dense scan's bits.
func TestAccumulatorHarmonicRBoundary(t *testing.T) {
	p := testParams()
	counts := []int{coarseTermLimit - 1, coarseTermLimit, coarseTermLimit + 1, coarseTermLimit + 16}
	dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}
	for i, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(70 + int64(i)))
			for _, n := range counts {
				snaps := synth(p, geom.V3(-2.2, 1.3, 0), n, 0.8, 0.05, rng)
				pp := p
				pp.LiteralReference = tc.literal
				so := SearchOptions{PrescreenTopK: tc.prescreen, HarmonicEval: ToggleOn}
				a, err := NewAccumulator2D(pp, tc.kind, so)
				if err != nil {
					t.Fatal(err)
				}
				if tc.kind == KindR && tc.prescreen <= 0 && a.refAper != nil {
					t.Fatal("harmonic R streaming must not allocate per-cell arrays")
				}
				feedAccumulator(t, a, snaps)
				gotAz, gotPow, err := a.FindPeak2D()
				if err != nil {
					t.Fatal(err)
				}
				ev, err := NewEvaluator(snaps, pp, tc.kind)
				if err != nil {
					t.Fatal(err)
				}
				wantAz, wantPow := FindPeak2DEval(ev, so)
				if gotAz != wantAz || gotPow != wantPow {
					t.Fatalf("%d snapshots: streamed (%v, %v) != batch (%v, %v)",
						n, gotAz, gotPow, wantAz, wantPow)
				}
				denseAz, densePow := FindPeak2DEval(ev, dense)
				if gotAz != denseAz || gotPow != densePow {
					t.Fatalf("%d snapshots: streamed (%v, %v) != dense (%v, %v)",
						n, gotAz, gotPow, denseAz, densePow)
				}
			}
		})
	}
}

// TestProfile2DOptSlack pins the all-cells value contract on random
// sessions: synthesized Q profiles sit within harmonicSlack of the exact
// dense profile, synthesized R profiles within rSlack — including when the
// synthesizing evaluator runs fast trig while the comparator is exact.
func TestProfile2DOptSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	angles := UniformAngles(720)
	for trial := 0; trial < 20; trial++ {
		p := testParams()
		p.LiteralReference = trial%2 == 1
		snaps := synth(p, randReader(rng, true), 16+rng.Intn(64), rng.Float64()*2, rng.Float64()*0.15, rng)
		for _, kind := range []Kind{KindQ, KindR} {
			slack := harmonicSlack
			if kind == KindR {
				slack = rSlack
			}
			exact, err := NewEvaluator(snaps, p, kind)
			if err != nil {
				t.Fatal(err)
			}
			want := exact.Profile2D(angles)
			for _, fast := range []bool{false, trial%3 == 0} {
				ev := exact
				if fast {
					if ev, err = NewEvaluator(snaps, p, kind, WithFastTrig()); err != nil {
						t.Fatal(err)
					}
				}
				got := ev.Profile2DOpt(angles, SearchOptions{})
				for k := range got.Power {
					if d := math.Abs(got.Power[k] - want.Power[k]); d > slack {
						t.Fatalf("trial %d %v fast=%v cell %d: synthesized %v vs exact %v (Δ=%v > %v)",
							trial, kind, fast, k, got.Power[k], want.Power[k], d, slack)
					}
				}
			}
		}
	}
}

// TestProfile3DOptSlack is the polar-sweep version of the value contract:
// every (γ, φ) cell of the synthesized 3D profile sits within the kind's
// slack of the exact dense grid.
func TestProfile3DOptSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := testParams()
	az := UniformAngles(96)
	pol := make([]float64, 9)
	for i := range pol {
		pol[i] = -math.Pi/2 + float64(i)*math.Pi/8
	}
	snaps := synth(p, geom.V3(-1.8, 1.1, 0.7), 48, 0.9, 0.05, rng)
	for _, kind := range []Kind{KindQ, KindR} {
		slack := harmonicSlack
		if kind == KindR {
			slack = rSlack
		}
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.Profile3D(az, pol)
		got := ev.Profile3DOpt(az, pol, SearchOptions{})
		for i := range want.Power {
			for j := range want.Power[i] {
				if d := math.Abs(got.Power[i][j] - want.Power[i][j]); d > slack {
					t.Fatalf("%v cell (%d,%d): synthesized %v vs exact %v (Δ=%v > %v)",
						kind, i, j, got.Power[i][j], want.Power[i][j], d, slack)
				}
			}
		}
	}
}

// TestProfileOptToggleOff pins the escape hatch: with HarmonicEval forced
// off, the Opt entry points must delegate to the dense scans bit for bit.
func TestProfileOptToggleOff(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	p := testParams()
	angles := UniformAngles(240)
	pol := []float64{-0.5, 0, 0.5}
	snaps := synth(p, geom.V3(1.4, -1.9, 0), 40, 1.0, 0.05, rng)
	off := SearchOptions{HarmonicEval: ToggleOff}
	for _, kind := range []Kind{KindQ, KindR} {
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		want2 := ev.Profile2D(angles)
		got2 := ev.Profile2DOpt(angles, off)
		for k := range want2.Power {
			if got2.Power[k] != want2.Power[k] {
				t.Fatalf("%v cell %d: ToggleOff profile diverged from dense", kind, k)
			}
		}
		want3 := ev.Profile3D(angles[:60], pol)
		got3 := ev.Profile3DOpt(angles[:60], pol, off)
		for i := range want3.Power {
			for j := range want3.Power[i] {
				if got3.Power[i][j] != want3.Power[i][j] {
					t.Fatalf("%v cell (%d,%d): ToggleOff 3D profile diverged from dense", kind, i, j)
				}
			}
		}
	}
}

// TestWrappedSincos pins both wrapped-range phasor kernels' error bounds on
// the full |d| ≤ π domain the weighting pass feeds them (wrapToPiFast
// output), including the wrap boundary where polynomial error peaks.
func TestWrappedSincos(t *testing.T) {
	const steps = 200000
	for i := -steps; i <= steps; i++ {
		d := math.Pi * float64(i) / steps
		ws, wc := math.Sincos(d)
		s, c := wrappedSincos(d, d*d)
		if e := math.Abs(s - ws); e > wrappedSincosMaxErr {
			t.Fatalf("sin(%v): error %v > %v", d, e, wrappedSincosMaxErr)
		}
		if e := math.Abs(c - wc); e > wrappedSincosMaxErr {
			t.Fatalf("cos(%v): error %v > %v", d, e, wrappedSincosMaxErr)
		}
		s, c = coarseWrappedSincos(d, d*d)
		if e := math.Abs(s - ws); e > coarseSincosMaxErr {
			t.Fatalf("coarse sin(%v): error %v > %v", d, e, coarseSincosMaxErr)
		}
		if e := math.Abs(c - wc); e > coarseSincosMaxErr {
			t.Fatalf("coarse cos(%v): error %v > %v", d, e, coarseSincosMaxErr)
		}
	}
}

// TestSearchStatsCounters smoke-tests the routing telemetry: each route
// increments its counter, and the snapshot surfaces through the exported
// struct that locsrv and the server expvar publish.
func TestSearchStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	p := testParams()
	snaps := synth(p, geom.V3(-2.0, 1.2, 0), 32, 0.8, 0.05, rng)
	evQ, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	evR, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	ResetSearchStats()
	FindPeak2DEval(evQ, SearchOptions{})
	FindPeak2DEval(evR, SearchOptions{})
	FindPeak2DEval(evR, SearchOptions{PrescreenTopK: 8, Hierarchical: ToggleOff})
	FindPeak2DEval(evR, SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff})
	evR.Profile2DOpt(UniformAngles(64), SearchOptions{})
	evR.Profile2DOpt(UniformAngles(64), SearchOptions{HarmonicEval: ToggleOff})
	a, err := NewAccumulator2D(p, KindR, SearchOptions{HarmonicEval: ToggleOn})
	if err != nil {
		t.Fatal(err)
	}
	feedAccumulator(t, a, snaps)
	if _, _, err := a.FindPeak2D(); err != nil {
		t.Fatal(err)
	}
	st := SearchStatsSnapshot()
	if st.HarmonicQ2D == 0 || st.HarmonicR2D == 0 || st.Prescreen2D == 0 ||
		st.Dense2D == 0 || st.ProfileSynth == 0 || st.ProfileDense == 0 ||
		st.StreamSynth == 0 {
		t.Fatalf("missing route counts: %+v", st)
	}
}
