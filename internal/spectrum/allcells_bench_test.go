package spectrum

import (
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

// BenchmarkHarmonicArgmaxR2D pins the sub-linear R argmax at roughly the
// tagspin-bench scenario shape (720-cell grid, ~50-term session) so the
// pass-two kernel can be profiled without the bench harness around it.
func BenchmarkHarmonicArgmaxR2D(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 56, 0.8, 0.05, rng)
	ev, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		b.Fatal(err)
	}
	opts := SearchOptions{Refinements: NoRefine}
	FindPeak2DEval(ev, opts)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		az, pow := FindPeak2DEval(ev, opts)
		sink = az + pow
	}
	benchSinkR = sink
}

var benchSinkR float64
