package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
)

// TestUniformTrigRecurrenceDrift pins the rotation-recurrence contract: the
// fast trig table for a uniform grid must stay within 1e-13 of per-point
// math.Sincos across runs far longer than the re-seed interval, so the
// periodic exact re-seeding provably stops drift.
func TestUniformTrigRecurrenceDrift(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2, 1, 0), 20, 0.4, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindQ, WithFastTrig())
	if err != nil {
		t.Fatal(err)
	}
	sc := ev.NewScratch()
	const n = 10 * trigReseedInterval
	for _, step := range []float64{geom.Radians(0.5), geom.Radians(2), 0.123456} {
		for _, i0 := range []int{0, 17, 1000} {
			ev.fillUniformTrig(sc, i0, n, step)
			var maxErr float64
			for k := 0; k < n; k++ {
				es, ec := math.Sincos(float64(i0+k) * step)
				maxErr = math.Max(maxErr, math.Abs(sc.sinPhi[k]-es))
				maxErr = math.Max(maxErr, math.Abs(sc.cosPhi[k]-ec))
			}
			if maxErr > 1e-13 {
				t.Errorf("step %v i0 %d: recurrence drift %.3g, want ≤ 1e-13", step, i0, maxErr)
			}
		}
	}
}

// TestUniformTrigExactMatchesSincos pins the exact-path table: bit-identical
// to math.Sincos of float64(i0+k)*step, which is what the bit-exactness of
// the whole peak search rests on.
func TestUniformTrigExactMatchesSincos(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2, 1, 0), 20, 0.4, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	sc := ev.NewScratch()
	step := geom.Radians(0.5)
	ev.fillUniformTrig(sc, 5, 200, step)
	for k := 0; k < 200; k++ {
		es, ec := math.Sincos(float64(5+k) * step)
		if sc.sinPhi[k] != es || sc.cosPhi[k] != ec {
			t.Fatalf("exact table diverges at k=%d", k)
		}
	}
}

// TestRowKernelMatchesEvalAt asserts that for both kinds and both trig
// modes, the row kernels produce exactly what repeated single-candidate
// evaluation produces — the row batching itself must never change a value,
// in either mode (the fast mode's error budget is spent in FastSincos, not
// in the batching).
func TestRowKernelMatchesEvalAt(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 0.8, 0.5), 150, 0.7, 0, nil)
	angles := UniformAngles(257) // odd length exercises partial chunks
	for _, kind := range []Kind{KindQ, KindR} {
		for _, fast := range []bool{false, true} {
			var opts []EvalOption
			if fast {
				opts = append(opts, WithFastTrig())
			}
			ev, err := NewEvaluator(snaps, p, kind, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sc := ev.NewScratch()
			for _, gamma := range []float64{0, 0.31} {
				ev.fillAngleTrig(sc, angles)
				out := make([]float64, len(angles))
				ev.evalRow(ev.kind, ev.terms, sc, gamma, len(angles), out)
				ref := ev.NewScratch()
				for k, phi := range angles {
					want := ev.EvalAt(ref, phi, gamma)
					if fast {
						// Fast single-candidate eval uses math.Sincos for
						// the candidate trig while the row table uses
						// FastSincos; allow that sliver.
						if math.Abs(out[k]-want) > 1e-6 {
							t.Fatalf("%v fast γ=%v: row[%d]=%v, EvalAt=%v", kind, gamma, k, out[k], want)
						}
						continue
					}
					if out[k] != want {
						t.Fatalf("%v exact γ=%v: row[%d]=%v != EvalAt %v", kind, gamma, k, out[k], want)
					}
				}
			}
		}
	}
}

// TestFastTrigEquivalence is the tolerance-bounded equivalence suite for
// the FastSincos path: over randomized sessions, profile values stay
// within 1e-6 of the exact path and the refined peak direction drifts by
// less than 1e-5 rad in azimuth and polar angle.
func TestFastTrigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := testParams()
	angles := UniformAngles(720)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 31)
	// One extra refinement round (5 instead of the default 4) puts the
	// final grid at ≈2.8e-6 rad, so even a one-cell argmax flip between
	// the two paths stays under the 1e-5 rad drift budget.
	search := SearchOptions{Refinements: 5}
	for trial := 0; trial < 6; trial++ {
		reader := geom.V3(-2.5+rng.Float64(), -1+2*rng.Float64(), rng.Float64())
		snaps := synth(p, reader, 80+trial*30, rng.Float64()*2, 0.05, rng)
		for _, kind := range []Kind{KindQ, KindR} {
			exact, err := NewEvaluator(snaps, p, kind)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := NewEvaluator(snaps, p, kind, WithFastTrig())
			if err != nil {
				t.Fatal(err)
			}

			pe := exact.Profile2D(angles)
			pf := fast.Profile2D(angles)
			var maxDP float64
			for i := range pe.Power {
				maxDP = math.Max(maxDP, math.Abs(pe.Power[i]-pf.Power[i]))
			}
			pe3 := exact.Profile3D(angles[:90], pol)
			pf3 := fast.Profile3D(angles[:90], pol)
			for i := range pe3.Power {
				for j := range pe3.Power[i] {
					maxDP = math.Max(maxDP, math.Abs(pe3.Power[i][j]-pf3.Power[i][j]))
				}
			}
			if maxDP > 1e-6 {
				t.Errorf("trial %d %v: max |ΔP| = %.3g, want ≤ 1e-6", trial, kind, maxDP)
			}

			azE, powE := FindPeak2DEval(exact, search)
			azF, powF := FindPeak2DEval(fast, search)
			if d := geom.AngleDistance(azE, azF); d > 1e-5 {
				t.Errorf("trial %d %v: 2D peak drift %.3g rad, want < 1e-5", trial, kind, d)
			}
			if math.Abs(powE-powF) > 1e-5 {
				t.Errorf("trial %d %v: 2D peak power drift %.3g", trial, kind, math.Abs(powE-powF))
			}
			pkE := FindPeak3DEval(exact, search)
			pkF := FindPeak3DEval(fast, search)
			if d := geom.AngleDistance(pkE.Azimuth, pkF.Azimuth); d > 1e-5 {
				t.Errorf("trial %d %v: 3D azimuth drift %.3g rad, want < 1e-5", trial, kind, d)
			}
			if d := math.Abs(pkE.Polar - pkF.Polar); d > 1e-5 {
				t.Errorf("trial %d %v: 3D polar drift %.3g rad, want < 1e-5", trial, kind, d)
			}
		}
	}
}

// TestPooledParallelBitExact re-runs the parallel-vs-serial bit-exactness
// property specifically through the pooled-Scratch row-kernel paths, with
// scratches deliberately dirtied between runs: pooling must never leak
// state between evaluations.
func TestPooledParallelBitExact(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-1.9, 1.2, 0.4), 130, 1.0, 0, nil)
	angles := UniformAngles(333)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 19)
	for _, kind := range []Kind{KindQ, KindR} {
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		ser2 := ev.Profile2DSerial(angles)
		ser3 := ev.Profile3DSerial(angles[:64], pol)
		azWant, powWant := FindPeak2DEval(ev, SearchOptions{})
		for round := 0; round < 3; round++ {
			par2 := ev.Profile2D(angles)
			for i := range ser2.Power {
				if par2.Power[i] != ser2.Power[i] {
					t.Fatalf("%v round %d: 2D diverged at %d", kind, round, i)
				}
			}
			par3 := ev.Profile3D(angles[:64], pol)
			for i := range ser3.Power {
				for j := range ser3.Power[i] {
					if par3.Power[i][j] != ser3.Power[i][j] {
						t.Fatalf("%v round %d: 3D diverged at %d,%d", kind, round, i, j)
					}
				}
			}
			az, pow := FindPeak2DEval(ev, SearchOptions{})
			if az != azWant || pow != powWant {
				t.Fatalf("%v round %d: peak (%v,%v) != (%v,%v)", kind, round, az, pow, azWant, powWant)
			}
			// Dirty a pooled scratch to prove the next run cannot be
			// affected by stale buffer contents.
			sc := ev.getScratch()
			for i := range sc.residuals {
				sc.residuals[i] = math.NaN()
			}
			sc.ensureRow(8)
			for i := range sc.sumRe {
				sc.sumRe[i], sc.sumIm[i] = math.NaN(), math.NaN()
				sc.sinPhi[i], sc.cosPhi[i] = math.NaN(), math.NaN()
			}
			ev.putScratch(sc)
		}
	}
}

// TestNoRefineCoarseOnly pins the Refinements sentinel semantics: NoRefine
// returns the raw coarse-grid argmax (a grid multiple of the coarse step),
// the zero value keeps the default 4 rounds, and positive counts are used
// as given.
func TestNoRefineCoarseOnly(t *testing.T) {
	if (SearchOptions{Refinements: NoRefine}).refinements() != 0 {
		t.Error("NoRefine should yield 0 rounds")
	}
	if (SearchOptions{}).refinements() != 4 {
		t.Error("zero value should yield the default 4 rounds")
	}
	if (SearchOptions{Refinements: 2}).refinements() != 2 {
		t.Error("explicit rounds should be used as given")
	}

	p := testParams()
	snaps := synth(p, geom.V3(-2.3, 0.4, 0), 100, 0.9, 0, nil)
	step := geom.Radians(0.5)
	az, pow, err := FindPeak2D(snaps, p, KindR, SearchOptions{Refinements: NoRefine})
	if err != nil {
		t.Fatal(err)
	}
	// The coarse-only result must sit exactly on the coarse grid.
	k := math.Round(az / step)
	if math.Abs(az-k*step) > 1e-12 {
		t.Errorf("coarse-only azimuth %v is off the %v-step grid", az, step)
	}
	if pow <= 0 {
		t.Errorf("coarse-only power %v", pow)
	}
	// And refinement must actually move (and improve) the estimate.
	azRef, powRef, err := FindPeak2D(snaps, p, KindR, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if powRef < pow {
		t.Errorf("refined power %v worse than coarse-only %v", powRef, pow)
	}
	if azRef == az {
		t.Logf("note: refined azimuth landed exactly on the coarse grid point %v", az)
	}
}

// TestFindPeakEvalZeroAllocs pins the pooled steady state: with a prebuilt
// Evaluator, whole peak searches and Profile2DInto scans allocate nothing.
// (testing.AllocsPerRun runs at GOMAXPROCS=1, which exercises the pooled
// serial path — the parallel path reuses the same pooled scratches and is
// covered by the benchmarks.)
func TestFindPeakEvalZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are pinned in the non-race run")
	}
	p := testParams()
	snaps := synth(p, geom.V3(-2.0, 0.7, 0.3), 120, 0.5, 0, nil)
	angles := UniformAngles(360)
	for _, kind := range []Kind{KindQ, KindR} {
		for _, fast := range []bool{false, true} {
			var opts []EvalOption
			if fast {
				opts = append(opts, WithFastTrig())
			}
			ev, err := NewEvaluator(snaps, p, kind, opts...)
			if err != nil {
				t.Fatal(err)
			}
			var prof Profile
			// Warm the pools and the Into buffers once.
			ev.Profile2DInto(&prof, angles)
			FindPeak2DEval(ev, SearchOptions{})
			FindPeak3DEval(ev, SearchOptions{CoarsePolarStep: geom.Radians(6)})

			if a := testing.AllocsPerRun(20, func() { ev.Profile2DInto(&prof, angles) }); a != 0 {
				t.Errorf("%v fast=%v: Profile2DInto allocates %v/op, want 0", kind, fast, a)
			}
			if a := testing.AllocsPerRun(10, func() { FindPeak2DEval(ev, SearchOptions{}) }); a != 0 {
				t.Errorf("%v fast=%v: FindPeak2DEval allocates %v/op, want 0", kind, fast, a)
			}
			if a := testing.AllocsPerRun(3, func() {
				FindPeak3DEval(ev, SearchOptions{CoarsePolarStep: geom.Radians(6)})
			}); a != 0 {
				t.Errorf("%v fast=%v: FindPeak3DEval allocates %v/op, want 0", kind, fast, a)
			}
		}
	}
}

// --- fast-path micro-benchmarks (the exact-path set lives in
// evaluator_test.go; BENCH_2.json records both) ---

func benchEvaluatorOpts(b *testing.B, kind Kind, n int, opts ...EvalOption) *Evaluator {
	b.Helper()
	p := testParams()
	snaps := synth(p, geom.V3(-2.3, 1.0, 0.6), n, 0.9, 0, nil)
	ev, err := NewEvaluator(snaps, p, kind, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

func benchRow(b *testing.B, kind Kind, opts ...EvalOption) {
	ev := benchEvaluatorOpts(b, kind, 200, opts...)
	const rowLen = 256
	step := geom.Radians(0.5)
	sc := ev.NewScratch()
	out := make([]float64, rowLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.fillUniformTrig(sc, 0, rowLen, step)
		ev.evalRow(ev.kind, ev.terms, sc, 0.1, rowLen, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/rowLen, "ns/candidate")
}

func BenchmarkEvalRowQExact(b *testing.B) { benchRow(b, KindQ) }
func BenchmarkEvalRowQFast(b *testing.B)  { benchRow(b, KindQ, WithFastTrig()) }
func BenchmarkEvalRowRExact(b *testing.B) { benchRow(b, KindR) }
func BenchmarkEvalRowRFast(b *testing.B)  { benchRow(b, KindR, WithFastTrig()) }

func BenchmarkFindPeak2DREval(b *testing.B) {
	ev := benchEvaluatorOpts(b, KindR, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindPeak2DEval(ev, SearchOptions{})
	}
}

func BenchmarkFindPeak2DREvalFast(b *testing.B) {
	ev := benchEvaluatorOpts(b, KindR, 200, WithFastTrig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindPeak2DEval(ev, SearchOptions{})
	}
}

func BenchmarkProfile3DCoarseParallelFast(b *testing.B) {
	ev := benchEvaluatorOpts(b, KindR, 200, WithFastTrig())
	az := UniformAngles(180)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Profile3D(az, pol)
	}
}

// TestWrapToPiFast pins the rounded wrap against the exact mathx.WrapToPi
// across the magnitudes spectrum residuals produce, including the ±π
// boundaries where the two conventions may differ by a full turn (which
// every consumer treats as the same angle).
func TestWrapToPiFast(t *testing.T) {
	angleDiff := func(a, b float64) float64 {
		d := math.Abs(a - b)
		return math.Min(d, mathx.TwoPi-d)
	}
	for i := -200_000; i <= 200_000; i++ {
		x := float64(i) * 2.5e-4 // covers [-50, 50]
		got := wrapToPiFast(x)
		if got > math.Pi || got < -math.Pi {
			t.Fatalf("wrapToPiFast(%v) = %v out of [-π, π]", x, got)
		}
		if d := angleDiff(got, mathx.WrapToPi(x)); d > 1e-12 {
			t.Fatalf("wrapToPiFast(%v) = %v, exact %v (Δ=%g)", x, got, mathx.WrapToPi(x), d)
		}
	}
	for _, x := range []float64{math.Pi, -math.Pi, 3 * math.Pi, -3 * math.Pi, 1e7, -1e7, 1e12} {
		got := wrapToPiFast(x)
		if got > math.Pi || got < -math.Pi {
			t.Fatalf("wrapToPiFast(%v) = %v out of [-π, π]", x, got)
		}
		if d := angleDiff(got, mathx.WrapToPi(x)); d > 1e-9 {
			t.Fatalf("wrapToPiFast(%v) = %v, exact %v (Δ=%g)", x, got, mathx.WrapToPi(x), d)
		}
	}
}
