package spectrum

import (
	"math"
	"sync"
	"testing"

	gg "github.com/tagspin/tagspin/internal/geom"
)

// TestPlanCacheBitIdentical pins the cache's core soundness claim: a table
// served from the cache is bit-identical to a fresh build, for both trig
// modes, across the chunk shapes the peak searches actually request
// (including i0 offsets and partial tails).
func TestPlanCacheBitIdentical(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	step := 2 * math.Pi / 720
	for _, fast := range []bool{false, true} {
		for _, tc := range []struct{ i0, n int }{
			{0, 64}, {64, 64}, {704, 16}, {0, 720}, {128, 100},
		} {
			want := make([]float64, 2*tc.n)
			buildUniformTrig(want[:tc.n], want[tc.n:], tc.i0, step, fast)
			// First fill misses and builds; second fill must hit.
			for round := 0; round < 2; round++ {
				got := make([]float64, 2*tc.n)
				planCache.fill(got[:tc.n], got[tc.n:], planKey{i0: tc.i0, n: tc.n, step: step, fast: fast})
				for k := 0; k < 2*tc.n; k++ {
					if got[k] != want[k] {
						t.Fatalf("fast=%v i0=%d n=%d round=%d: table differs at %d: %v != %v",
							fast, tc.i0, tc.n, round, k, got[k], want[k])
					}
				}
			}
		}
	}
	st := PlanCacheSnapshot()
	if st.Hits != 10 || st.Misses != 10 {
		t.Errorf("hits=%d misses=%d, want 10/10 (one miss then one hit per key)", st.Hits, st.Misses)
	}
	if st.Entries != 10 {
		t.Errorf("Entries = %d, want 10", st.Entries)
	}
	if st.HitRate != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", st.HitRate)
	}
}

// TestPlanCacheKeyedByTrigMode proves exact and fast tables never alias:
// the same grid in the two modes yields different bytes (the recurrence
// differs from per-point sincos in the last ulps), so a shared key would
// corrupt exact-mode results.
func TestPlanCacheKeyedByTrigMode(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	const n = 128
	step := 2 * math.Pi / 720
	exact := make([]float64, 2*n)
	fast := make([]float64, 2*n)
	planCache.fill(exact[:n], exact[n:], planKey{i0: 0, n: n, step: step, fast: false})
	planCache.fill(fast[:n], fast[n:], planKey{i0: 0, n: n, step: step, fast: true})
	if st := PlanCacheSnapshot(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("misses=%d entries=%d, want 2/2 — modes must occupy distinct keys", st.Misses, st.Entries)
	}
	// Each cached entry must match its own mode's reference build.
	wantExact := make([]float64, 2*n)
	buildUniformTrig(wantExact[:n], wantExact[n:], 0, step, false)
	wantFast := make([]float64, 2*n)
	buildUniformTrig(wantFast[:n], wantFast[n:], 0, step, true)
	for k := 0; k < 2*n; k++ {
		if exact[k] != wantExact[k] {
			t.Fatalf("exact table differs from exact build at %d", k)
		}
		if fast[k] != wantFast[k] {
			t.Fatalf("fast table differs from fast build at %d", k)
		}
	}
}

// TestPlanCacheConcurrentFirstBuild races many goroutines on the same cold
// key under -race: every caller must receive the canonical bytes, and the
// cache must end up with exactly one entry for the key.
func TestPlanCacheConcurrentFirstBuild(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	const n = 256
	step := 2 * math.Pi / 1440
	want := make([]float64, 2*n)
	buildUniformTrig(want[:n], want[n:], 32, step, true)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]float64, 2*n)
			planCache.fill(got[:n], got[n:], planKey{i0: 32, n: n, step: step, fast: true})
			for k := 0; k < 2*n; k++ {
				if got[k] != want[k] {
					errs <- "racing fill returned non-canonical table"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if st := PlanCacheSnapshot(); st.Entries != 1 {
		t.Errorf("Entries = %d after racing fills of one key, want 1", st.Entries)
	}
}

// TestPlanCacheShardCap checks the memory bound: a shard at capacity stops
// inserting but keeps building correct tables.
func TestPlanCacheShardCap(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	// Fill well past the total capacity; every n is a distinct key.
	step := 1e-3
	for n := planMinN; n < planMinN+planShards*planShardCap+64; n++ {
		buf := make([]float64, 2*n)
		planCache.fill(buf[:n], buf[n:], planKey{i0: 0, n: n, step: step, fast: false})
	}
	st := PlanCacheSnapshot()
	if st.Entries > planShards*planShardCap {
		t.Errorf("Entries = %d, want ≤ %d", st.Entries, planShards*planShardCap)
	}
	// A post-cap key must still produce correct values (built directly).
	const n = 9999
	got := make([]float64, 2*n)
	planCache.fill(got[:n], got[n:], planKey{i0: 7, n: n, step: step, fast: false})
	want := make([]float64, 2*n)
	buildUniformTrig(want[:n], want[n:], 7, step, false)
	for k := 0; k < 2*n; k++ {
		if got[k] != want[k] {
			t.Fatalf("post-cap fill differs at %d", k)
		}
	}
}

// TestPlanCacheHitRateOnRepeatedGrid is the acceptance-criteria scenario:
// repeated peak searches at the default grid must hit the cache almost
// always after warm-up.
func TestPlanCacheHitRateOnRepeatedGrid(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	p := testParams()
	snaps := synth(p, gg.V3(-2.2, 1.3, 0), 90, 0.7, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindR, WithFastTrig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		FindPeak2DEval(ev, SearchOptions{})
	}
	st := PlanCacheSnapshot()
	if total := st.Hits + st.Misses; total == 0 {
		t.Fatal("no plan-cache traffic from FindPeak2DEval")
	}
	if st.HitRate <= 0.9 {
		t.Errorf("hit rate %.3f after 20 repeated searches, want > 0.9 (hits=%d misses=%d)",
			st.HitRate, st.Hits, st.Misses)
	}
}
