package spectrum

import (
	"errors"
	"math"
	"sync/atomic"

	"github.com/tagspin/tagspin/internal/geom"
)

// ErrNonUniformAngles is returned by the checked profile metrics when the
// profile's Angles are not a uniform-step grid: bin-count arithmetic (e.g.
// the beamwidth's bins-to-radians conversion) silently mis-scales on
// irregular grids, so the checked variants refuse instead.
var ErrNonUniformAngles = errors.New("spectrum: profile angles are not uniformly spaced")

// searchCountersT tallies which coarse-search route each scan actually took
// — the accelerators (harmonic, hierarchical, prescreen, all-cells
// synthesis) versus the dense fallback. Bench and soak runs read the
// snapshot to confirm the intended path ran; a soak where Dense2D climbs
// while HarmonicR2D stays flat means the routing gate regressed, not the
// kernel. Counters are process-wide (route selection is per-call, not
// per-Evaluator) and atomically maintained, mirroring the plan-cache
// telemetry in plancache.go.
type searchCountersT struct {
	harmonicQ2D  atomic.Uint64
	harmonicR2D  atomic.Uint64
	hier2D       atomic.Uint64
	hier3D       atomic.Uint64
	prescreen2D  atomic.Uint64
	prescreen3D  atomic.Uint64
	dense2D      atomic.Uint64
	dense3D      atomic.Uint64
	profileSynth atomic.Uint64
	profileDense atomic.Uint64
	streamSynth  atomic.Uint64
	nufft2D      atomic.Uint64
	nufftR2D     atomic.Uint64
	denseNU2D    atomic.Uint64
	hierSynth    atomic.Uint64
	nufftProfile atomic.Uint64
}

var searchCounters searchCountersT

// SearchStats is a point-in-time snapshot of the coarse-search routing
// counters. The 2D/3D argmax counters sum to the number of coarse scans;
// the Profile counters count option-gated full-profile calls
// (Profile2DIntoOpt/Profile3DOpt) by route; StreamSynth counts streaming
// Accumulator finalizes served from harmonic coefficients without a dense
// replay.
type SearchStats struct {
	HarmonicQ2D  uint64 // 2D argmax via Q harmonic synthesis
	HarmonicR2D  uint64 // 2D argmax via the two-pass R synthesis
	Hier2D       uint64 // 2D argmax via the hierarchical scanner
	Hier3D       uint64 // 3D argmax via the hierarchical scanner
	Prescreen2D  uint64 // 2D argmax via the Q-prescreen pass
	Prescreen3D  uint64 // 3D argmax via the Q-prescreen pass
	Dense2D      uint64 // 2D argmax via the dense scan
	Dense3D      uint64 // 3D argmax via the dense scan
	ProfileSynth uint64 // full profiles synthesized all-cells
	ProfileDense uint64 // full profiles from Opt entry points scanned densely
	StreamSynth  uint64 // streaming finalizes served from harmonic coefficients
	NUFFT2D      uint64 // angle-grid argmax via the Q NUFFT synthesis
	NUFFTR2D     uint64 // angle-grid argmax via the R NUFFT replay
	DenseNU2D    uint64 // angle-grid argmax via the dense scan
	HierSynth    uint64 // hierarchical scans with synthesized basin evals
	NUFFTProfile uint64 // full Q profiles spread through the NUFFT kernel
}

// SearchStatsSnapshot returns the current routing counters.
func SearchStatsSnapshot() SearchStats {
	return SearchStats{
		HarmonicQ2D:  searchCounters.harmonicQ2D.Load(),
		HarmonicR2D:  searchCounters.harmonicR2D.Load(),
		Hier2D:       searchCounters.hier2D.Load(),
		Hier3D:       searchCounters.hier3D.Load(),
		Prescreen2D:  searchCounters.prescreen2D.Load(),
		Prescreen3D:  searchCounters.prescreen3D.Load(),
		Dense2D:      searchCounters.dense2D.Load(),
		Dense3D:      searchCounters.dense3D.Load(),
		ProfileSynth: searchCounters.profileSynth.Load(),
		ProfileDense: searchCounters.profileDense.Load(),
		StreamSynth:  searchCounters.streamSynth.Load(),
		NUFFT2D:      searchCounters.nufft2D.Load(),
		NUFFTR2D:     searchCounters.nufftR2D.Load(),
		DenseNU2D:    searchCounters.denseNU2D.Load(),
		HierSynth:    searchCounters.hierSynth.Load(),
		NUFFTProfile: searchCounters.nufftProfile.Load(),
	}
}

// ResetSearchStats zeroes the routing counters (tests and bench preambles).
func ResetSearchStats() {
	searchCounters.harmonicQ2D.Store(0)
	searchCounters.harmonicR2D.Store(0)
	searchCounters.hier2D.Store(0)
	searchCounters.hier3D.Store(0)
	searchCounters.prescreen2D.Store(0)
	searchCounters.prescreen3D.Store(0)
	searchCounters.dense2D.Store(0)
	searchCounters.dense3D.Store(0)
	searchCounters.profileSynth.Store(0)
	searchCounters.profileDense.Store(0)
	searchCounters.streamSynth.Store(0)
	searchCounters.nufft2D.Store(0)
	searchCounters.nufftR2D.Store(0)
	searchCounters.denseNU2D.Store(0)
	searchCounters.hierSynth.Store(0)
	searchCounters.nufftProfile.Store(0)
}

// Normalized returns a copy of the profile scaled so its maximum is 1.
// An all-zero profile is returned unchanged.
func (p Profile) Normalized() Profile {
	_, peak := p.Peak()
	out := Profile{
		Angles: append([]float64(nil), p.Angles...),
		Power:  make([]float64, len(p.Power)),
	}
	if peak == 0 {
		copy(out.Power, p.Power)
		return out
	}
	for i, v := range p.Power {
		out.Power[i] = v / peak
	}
	return out
}

// Sharpness returns peak power divided by mean power. Higher means the
// profile concentrates energy at the peak — the property Fig. 6 illustrates
// for R versus Q.
func (p Profile) Sharpness() float64 {
	_, peak := p.Peak()
	if len(p.Power) == 0 || peak == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range p.Power {
		sum += v
	}
	return peak / (sum / float64(len(p.Power)))
}

// HalfPowerBeamwidth returns the angular width (radians) of the contiguous
// region around the peak where power stays at or above half the peak.
//
// The bin-to-radian conversion derives the grid spacing from the first two
// entries of Angles, so the profile must be sampled on a *uniform* angular
// grid (as produced by UniformAngles); on an irregular grid the bin count
// has no single radian scale, and the method reports NaN rather than a
// wrongly-scaled width (HalfPowerBeamwidthChecked distinguishes that case
// with a typed error). A profile with fewer than two samples has no
// measurable width and also reports NaN.
func (p Profile) HalfPowerBeamwidth() float64 {
	v, _ := p.HalfPowerBeamwidthChecked()
	return v
}

// HalfPowerBeamwidthChecked is HalfPowerBeamwidth with the failure modes
// split out: it returns (NaN, ErrNonUniformAngles) when the profile was
// sampled on a non-uniform grid — the NUFFT entry points produce such
// profiles routinely — and (NaN, nil) for the too-short-to-measure case.
func (p Profile) HalfPowerBeamwidthChecked() (float64, error) {
	n := len(p.Power)
	if n < 2 {
		return math.NaN(), nil
	}
	if !anglesApproxUniform(p.Angles) {
		return math.NaN(), ErrNonUniformAngles
	}
	peakIdx := 0
	for i, v := range p.Power {
		if v > p.Power[peakIdx] {
			peakIdx = i
		}
	}
	half := p.Power[peakIdx] / 2
	// Walk left and right on the circular grid until power drops below half.
	left, right := 0, 0
	for step := 1; step < n; step++ {
		if p.Power[(peakIdx-step+n)%n] < half {
			break
		}
		left = step
	}
	for step := 1; step < n; step++ {
		if p.Power[(peakIdx+step)%n] < half {
			break
		}
		right = step
	}
	if left+right >= n-1 {
		return 2 * math.Pi, nil // never drops below half power
	}
	// Convert bin counts to radians using the (uniform) grid spacing.
	spacing := geom.AngleDistance(p.Angles[1], p.Angles[0])
	return float64(left+right+1) * spacing, nil
}

// PeakToSidelobe returns the ratio of the main peak to the highest local
// maximum outside the main lobe (the main lobe being the contiguous
// above-half-power region). It returns +Inf when no sidelobe exists.
func (p Profile) PeakToSidelobe() float64 {
	n := len(p.Power)
	if n < 3 {
		return math.NaN()
	}
	peakIdx := 0
	for i, v := range p.Power {
		if v > p.Power[peakIdx] {
			peakIdx = i
		}
	}
	peak := p.Power[peakIdx]
	if peak == 0 {
		return math.NaN()
	}
	half := peak / 2
	inMain := make([]bool, n)
	inMain[peakIdx] = true
	for step := 1; step < n; step++ {
		i := (peakIdx + step) % n
		if p.Power[i] < half {
			break
		}
		inMain[i] = true
	}
	for step := 1; step < n; step++ {
		i := (peakIdx - step + n) % n
		if p.Power[i] < half {
			break
		}
		inMain[i] = true
	}
	best := 0.0
	for i := 0; i < n; i++ {
		if inMain[i] {
			continue
		}
		prev := p.Power[(i-1+n)%n]
		next := p.Power[(i+1)%n]
		if p.Power[i] >= prev && p.Power[i] >= next && p.Power[i] > best {
			best = p.Power[i]
		}
	}
	if best == 0 {
		return math.Inf(1)
	}
	return peak / best
}

// Normalized returns a copy of the 3D profile scaled so its maximum is 1.
func (p Profile3D) Normalized() Profile3D {
	_, _, peak := p.Peak()
	out := Profile3D{
		Azimuths: append([]float64(nil), p.Azimuths...),
		Polars:   append([]float64(nil), p.Polars...),
		Power:    make([][]float64, len(p.Power)),
	}
	for i, row := range p.Power {
		r := make([]float64, len(row))
		for j, v := range row {
			if peak == 0 {
				r[j] = v
			} else {
				r[j] = v / peak
			}
		}
		out.Power[i] = r
	}
	return out
}

// Sharpness returns peak power over mean power for the 3D profile.
func (p Profile3D) Sharpness() float64 {
	_, _, peak := p.Peak()
	var sum float64
	var count int
	for _, row := range p.Power {
		for _, v := range row {
			sum += v
			count++
		}
	}
	if count == 0 || peak == 0 {
		return math.NaN()
	}
	return peak / (sum / float64(count))
}

// ValueAt returns the profile value at the grid point nearest to
// (azimuth, polar).
func (p Profile3D) ValueAt(azimuth, polar float64) float64 {
	if len(p.Power) == 0 || len(p.Azimuths) == 0 {
		return math.NaN()
	}
	bi, bj := 0, 0
	bestPol := math.Inf(1)
	for i, g := range p.Polars {
		if d := math.Abs(g - polar); d < bestPol {
			bestPol, bi = d, i
		}
	}
	bestAz := math.Inf(1)
	for j, a := range p.Azimuths {
		if d := geom.AngleDistance(a, azimuth); d < bestAz {
			bestAz, bj = d, j
		}
	}
	return p.Power[bi][bj]
}

// LocalMaxima returns all strict interior local maxima of the 3D profile at
// or above threshold·peak, sorted by descending power. It is how the Fig. 8
// experiment demonstrates the two z-mirror peaks.
func (p Profile3D) LocalMaxima(threshold float64) []Peak3D {
	_, _, peak := p.Peak()
	var out []Peak3D
	rows := len(p.Power)
	if rows == 0 {
		return nil
	}
	cols := len(p.Power[0])
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := p.Power[i][j]
			if v < threshold*peak {
				continue
			}
			isMax := true
			for di := -1; di <= 1 && isMax; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ni := i + di
					nj := (j + dj + cols) % cols // azimuth wraps
					if ni < 0 || ni >= rows {
						continue
					}
					if p.Power[ni][nj] > v {
						isMax = false
						break
					}
				}
			}
			if isMax {
				out = append(out, Peak3D{Azimuth: p.Azimuths[j], Polar: p.Polars[i], Power: v})
			}
		}
	}
	// Insertion sort by descending power; the list is short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Power > out[j-1].Power; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
