package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

// TestBesselJArray checks Miller's downward recurrence against the standard
// library's math.Jn across the aperture-scale range the testbed produces
// (w = 4πr/λ ≈ 3.9) and beyond.
func TestBesselJArray(t *testing.T) {
	out := make([]float64, 30)
	for _, w := range []float64{0, 1e-13, 0.05, 0.7, 1.9, 3.85, 4.2, 7.7, 12.5} {
		besselJArray(w, out)
		for m := range out {
			want := math.Jn(m, w)
			if d := math.Abs(out[m] - want); d > 1e-13 {
				t.Fatalf("w=%v: J_%d = %v, want %v (Δ=%v)", w, m, out[m], want, d)
			}
		}
	}
}

// TestHarmonicSynthesisMatchesExact bounds the synthesized Q values against
// the exact dense row kernel over the default coarse grid: the documented
// harmonicSlack envelope must hold with wide margin (truncation and
// resummation rounding land near 1e-12).
func TestHarmonicSynthesisMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := testParams()
	for trial := 0; trial < 25; trial++ {
		reader := geom.V3(rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*2-1)
		if reader.Norm() < 0.8 {
			reader = reader.Scale(2)
		}
		snaps := synth(p, reader, 30+rng.Intn(60), rng.Float64()*2, rng.Float64()*0.1, rng)
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		n := 720
		step := geom.Radians(0.5)

		hs := &harmonicScratch{}
		foldTermsHarmonic(hs, ev.coarse, 1)
		got := make([]float64, n)
		sc := ev.NewScratch()
		ev.fillUniformTrig(sc, 0, n, step)
		hs.coeffs.synthesize(got, sc.sinPhi[:n], sc.cosPhi[:n])

		want := make([]float64, n)
		ev.evalRow(KindQ, ev.coarse, sc, 0, n, want)

		var maxD float64
		for k := range got {
			if d := math.Abs(got[k] - want[k]); d > maxD {
				maxD = d
			}
		}
		if maxD > harmonicSlack {
			t.Fatalf("trial %d: synthesis error %v exceeds harmonicSlack %v", trial, maxD, harmonicSlack)
		}
		if maxD > 1e-9 {
			t.Errorf("trial %d: synthesis error %v is far above the expected ~1e-12 floor", trial, maxD)
		}
	}
}

// TestHarmonicArgmaxMatchesDense pins the exact-path contract that lets the
// harmonic route default on: the full 2D search with HarmonicEval on must
// return the dense scan's answer bit for bit, because the synthesized
// shortlist is rescored with the exact per-cell formula.
func TestHarmonicArgmaxMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := testParams()
	for trial := 0; trial < 120; trial++ {
		reader := geom.V3(rng.Float64()*5-2.5, rng.Float64()*5-2.5, 0)
		if reader.Norm() < 0.8 {
			reader = reader.Scale(3)
		}
		snaps := synth(p, reader, 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}
		harm := SearchOptions{HarmonicEval: ToggleOn}
		wantAz, wantPow := FindPeak2DEval(ev, dense)
		gotAz, gotPow := FindPeak2DEval(ev, harm)
		if gotAz != wantAz || gotPow != wantPow {
			t.Fatalf("trial %d: harmonic (%v, %v) != dense (%v, %v)", trial, gotAz, gotPow, wantAz, wantPow)
		}
	}
}

// TestHarmonicDefaultOn pins the routing: zero-valued SearchOptions on a
// KindQ evaluator take the harmonic path and still match the forced-dense
// answer bit for bit, while KindR ignores the toggle entirely.
func TestHarmonicDefaultOn(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 64, 0.8, 0.05, rng)
	ev, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	denseAz, densePow := FindPeak2DEval(ev, SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff})
	defAz, defPow := FindPeak2DEval(ev, SearchOptions{})
	if defAz != denseAz || defPow != densePow {
		t.Fatalf("default (%v, %v) != dense (%v, %v)", defAz, defPow, denseAz, densePow)
	}
	evR, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	rDense, rDensePow := FindPeak2DEval(evR, SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff})
	rOn, rOnPow := FindPeak2DEval(evR, SearchOptions{HarmonicEval: ToggleOn})
	if rOn != rDense || rOnPow != rDensePow {
		t.Fatalf("KindR with HarmonicEval on (%v, %v) != dense (%v, %v)", rOn, rOnPow, rDense, rDensePow)
	}
}
