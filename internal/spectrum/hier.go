package spectrum

import (
	"math"
	"sort"
	"sync"
)

// This file holds the hierarchical coarse-to-fine grid scanner: instead of
// evaluating every cell of the coarse grid, it evaluates a sparse lattice,
// keeps every basin whose score is within a Lipschitz-derived slack of the
// running maximum, and subdivides only those basins down to the full grid.
//
// The guarantee (the "peak capture bound", pinned by TestPeakCaptureBound
// and derived in DESIGN.md §11): the normalized Q profile is Lipschitz with
// constant L = (Σ z_i)/n per radian on each axis (termSlices.meanScale), so
// the level-ℓ lattice cell nearest the true full-grid argmax t scores at
// least F(t) − L·d_ℓ, where d_ℓ is the lattice's worst-case axis distance
// to any grid cell. Every evaluated cell is a real grid cell, so the
// running maximum never exceeds F(t) — retaining all evaluated cells within
// τ_ℓ = L·d_ℓ of the running maximum therefore always retains the cell
// nearest t, and its subdivision window contains the next level's nearest
// cell. By induction level 0 evaluates t itself, so the lowest-index
// maximum over evaluated cells IS the dense scan's argmax, evaluated with
// the very same per-cell arithmetic.
//
// Lattice geometry: level ℓ keeps every 2^ℓ-th azimuth (circular; the wrap
// gap is at most 2^ℓ cells) and every 2^ℓ-th polar row plus the last row
// (so the clamped [-π/2, π/2] boundary stays covered at every level).
// Subdividing a retained cell evaluates the level-(ℓ−1) lattice points
// within two lattice positions on each axis: the nearest level-(ℓ−1) point
// to t sits within 3·2^{ℓ-2} cells of the retained nearest level-ℓ point,
// and two positions of the finer lattice always span at least 2^ℓ cells,
// so the ±2 window provably contains it.
//
// Both profile kinds score the hierarchy with the Q formula (the cheap
// kernel; for KindR this mirrors the PrescreenTopK pass — R is Q with
// per-snapshot likelihood weights and peaks in the same basin), and KindR
// rescores the top-scoring evaluated cells with the full R formula.

const (
	// hierMaxSlack caps the top-level retention slack τ as a fraction of
	// the Q profile's [0, 1] range. Sparser starts are still *correct* —
	// τ grows with spacing and more cells get retained — but past ~0.3 the
	// retained set stops shrinking the work.
	hierMaxSlack = 0.3
	// hierMinTopCells is the minimum top-level lattice size; coarser starts
	// save nothing and give the threshold too few samples of the profile.
	hierMinTopCells = 16
	// hierRescoreK is the KindR rescore width when SearchOptions leaves
	// PrescreenTopK unset, matching the prescreen pass's "few handfuls".
	hierRescoreK = 12
)

// hierScratch bundles the per-search buffers; pooled so steady-state
// hierarchical scans allocate nothing.
type hierScratch struct {
	vals   []float64 // per-grid-cell Q score; -1 = not evaluated
	active []int     // evaluated cell indices, in evaluation order
	front  []int     // retained cells for the current subdivision round
}

var hierPool = sync.Pool{New: func() any { return new(hierScratch) }}

// hierSynthT holds the synthesized-basin-evaluation state (SearchOptions
// NUFFT: On): one harmonic coefficient set per polar row, folded lazily the
// first time the lattice touches the row. A row fold costs O(terms·H) — the
// same as ~H dense cell evaluations — so it pays for itself as soon as a
// row's basin keeps more than a couple dozen cells alive.
type hierSynthT struct {
	rows []harmonicCoeffs
	done []bool
	bess []float64
}

var hierSynthPool = sync.Pool{New: func() any { return new(hierSynthT) }}

// hierLevels picks the starting lattice level: the sparsest power-of-two
// subsampling whose retention slack L·d stays under hierMaxSlack and whose
// lattice still has hierMinTopCells cells. Returns 0 when no level helps
// (degenerate Lipschitz constant or tiny grids) — the caller falls back to
// the dense scan.
func hierLevels(lf, axisSum float64, nAz, nPol int) int {
	if lf <= 0 || axisSum <= 0 {
		return 0
	}
	top := 0
	for top < 16 {
		next := top + 1
		if lf*float64(int(1)<<(next-1))*axisSum > hierMaxSlack {
			break
		}
		ka := (nAz + (1 << next) - 1) >> next
		kp := 1
		if nPol > 1 {
			kp = len(latticeRows(nPol, next))
		}
		if ka*kp < hierMinTopCells {
			break
		}
		top = next
	}
	return top
}

// latticeRows returns the level-ℓ polar row lattice: every 2^ℓ-th row plus
// the last row, sorted ascending. Level 0 is every row. Keeping the last
// row at every level preserves the coverage bound at the clamped polar
// boundary, where the final gap may be shorter than 2^ℓ.
func latticeRows(nPol, level int) []int {
	if nPol <= 1 {
		return []int{0}
	}
	stepR := 1 << level
	rows := make([]int, 0, (nPol-1)/stepR+2)
	for r := 0; r < nPol-1; r += stepR {
		rows = append(rows, r)
	}
	return append(rows, nPol-1)
}

// evalCellQ scores one grid cell with the Q formula over the given terms,
// using exactly the per-cell arithmetic of the dense scan (math.Sincos
// candidate trig, the evaluator's configured phasor kernel), so a captured
// argmax cell carries the same value bits the dense scan would assign it.
func (e *Evaluator) evalCellQ(terms termSlices, phi, gamma float64) float64 {
	sinPhi, cosPhi := math.Sincos(phi)
	cg := math.Cos(gamma)
	if e.fastTrig {
		return evalQFast(terms, sinPhi, cosPhi, cg)
	}
	return evalQExact(terms, sinPhi, cosPhi, cg)
}

// hierarchicalArgmax runs the coarse-to-fine scan over the row-major
// nAz × nPol grid (nPol == 1 is the 2D azimuth circle) and returns the
// argmax cell index under the dense scan's lowest-index tie rule. KindR
// evaluators rescore the top evaluated Q cells with the full R formula.
//
// With SearchOptions NUFFT: On, basin cells are scored by per-row harmonic
// synthesis (synthAt) instead of the dense per-cell formula: each touched
// polar row folds its coefficient set once (γ is constant along a row) and
// every cell on it costs O(H) multiply-adds with one sincos. Synthesized
// scores sit within harmonicSlack of the dense ones, so the retention slack
// widens by 2·harmonicSlack per round — the cell nearest the true argmax
// still clears the (synthesized) running maximum — and the KindQ final pick
// becomes a shortlist-within-2·harmonicSlack plus exact rescore, preserving
// the capture guarantee bit for bit. KindR's top-K rescore already re-scores
// exactly and needs no widening beyond the retention term.
func (e *Evaluator) hierarchicalArgmax(terms termSlices, nAz, nPol int, azStep, polStep, polBase float64, opts SearchOptions) int {
	lf := terms.meanScale()
	axisSum := azStep
	if nPol > 1 {
		axisSum += polStep
	}
	top := hierLevels(lf, axisSum, nAz, nPol)
	if top < 1 {
		if nPol > 1 {
			return e.denseArgmax3D(terms, nAz, nPol, azStep, polStep)
		}
		return e.denseArgmax2D(terms, nAz, azStep)
	}

	synth := opts.NUFFT == ToggleOn
	var hsy *hierSynthT
	if synth {
		searchCounters.hierSynth.Add(1)
		hsy = hierSynthPool.Get().(*hierSynthT)
		if cap(hsy.rows) < nPol {
			hsy.rows = make([]harmonicCoeffs, nPol)
			hsy.done = make([]bool, nPol)
		}
		hsy.rows = hsy.rows[:nPol]
		hsy.done = hsy.done[:nPol]
		for r := range hsy.done {
			hsy.done[r] = false
		}
	}

	hs := hierPool.Get().(*hierScratch)
	nCells := nAz * nPol
	if cap(hs.vals) < nCells {
		hs.vals = make([]float64, nCells)
	}
	vals := hs.vals[:nCells]
	for i := range vals {
		vals[i] = -1
	}
	active := hs.active[:0]
	globalMax := math.Inf(-1)

	evalCell := func(a, r int) {
		idx := r*nAz + a
		if vals[idx] >= 0 {
			return
		}
		gamma := polBase + float64(r)*polStep
		var v float64
		if synth {
			if !hsy.done[r] {
				foldTermsInto(&hsy.rows[r], &hsy.bess, terms, math.Cos(gamma))
				hsy.done[r] = true
			}
			v = hsy.rows[r].synthAt(float64(a) * azStep)
		} else {
			v = e.evalCellQ(terms, float64(a)*azStep, gamma)
		}
		vals[idx] = v
		active = append(active, idx)
		if v > globalMax {
			globalMax = v
		}
	}

	// Top level: the full level-`top` lattice.
	stepA := 1 << top
	for _, r := range latticeRows(nPol, top) {
		for a := 0; a < nAz; a += stepA {
			evalCell(a, r)
		}
	}

	// Subdivide retained basins level by level down to the full grid.
	for level := top; level >= 1; level-- {
		tau := lf * float64(int(1)<<(level-1)) * axisSum
		if synth {
			// Synthesized scores carry ±harmonicSlack: the running maximum
			// may be high by one slack and the nearest cell's score low by
			// another, so the retention window widens by both.
			tau += 2 * harmonicSlack
		}
		front := hs.front[:0]
		for _, idx := range active {
			if vals[idx] >= globalMax-tau {
				front = append(front, idx)
			}
		}
		hs.front = front
		rowsC := latticeRows(nPol, level-1)
		half := 1 << (level - 1)
		kAz := (nAz + half - 1) / half
		for _, idx := range front {
			a, r := idx%nAz, idx/nAz
			q := a / half
			rpos := 0
			if nPol > 1 {
				rpos = sort.SearchInts(rowsC, r) // r is on every coarser lattice
			}
			for dq := -2; dq <= 2; dq++ {
				ca := ((q+dq)%kAz + kAz) % kAz * half
				if nPol <= 1 {
					evalCell(ca, 0)
					continue
				}
				for dr := -2; dr <= 2; dr++ {
					if rp := rpos + dr; rp >= 0 && rp < len(rowsC) {
						evalCell(ca, rowsC[rp])
					}
				}
			}
		}
	}

	var best int
	azCount := 0
	if nPol > 1 {
		azCount = nAz
	}
	switch {
	case e.kind == KindR:
		k := opts.PrescreenTopK
		if k <= 0 {
			k = hierRescoreK
		}
		if k > len(active) {
			k = len(active)
		}
		best = e.rescoreTopK(terms, topKIndices(vals, k), azStep, azCount, polBase, polStep)
	case synth:
		// Synthesized scores cannot pick the winner directly without risking
		// a flipped tie; shortlist everything within the slack window of the
		// synthesized maximum and exact-rescore, as on the harmonic routes.
		cand := hs.front[:0]
		for idx, v := range vals { // ascending index → lowest-index tie rule
			if v >= 0 && v >= globalMax-2*harmonicSlack {
				cand = append(cand, idx)
			}
		}
		hs.front = cand
		best = e.rescoreTopK(terms, cand, azStep, azCount, polBase, polStep)
	default:
		bestV := math.Inf(-1)
		for idx, v := range vals { // ascending index → lowest-index tie rule
			if v > bestV {
				best, bestV = idx, v
			}
		}
	}
	hs.active = active
	hierPool.Put(hs)
	if synth {
		hierSynthPool.Put(hsy)
	}
	return best
}

// hierarchicalArgmax2D is hierarchicalArgmax over the 2D azimuth circle.
func (e *Evaluator) hierarchicalArgmax2D(terms termSlices, n int, step float64, opts SearchOptions) int {
	return e.hierarchicalArgmax(terms, n, 1, step, 0, 0, opts)
}

// hierarchicalArgmax3D is hierarchicalArgmax over the az × polar grid.
func (e *Evaluator) hierarchicalArgmax3D(terms termSlices, nAz, nPol int, azStep, polStep float64, opts SearchOptions) int {
	return e.hierarchicalArgmax(terms, nAz, nPol, azStep, polStep, -math.Pi/2, opts)
}
