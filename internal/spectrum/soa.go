package spectrum

// termSlices is the struct-of-arrays layout of prepared snapshot terms: the
// same four per-snapshot quantities as snapshotTerm, but split into
// contiguous parallel slices. The hot evaluation loops iterate all terms for
// one candidate (or all candidates for one term); with the AoS layout every
// field access strides 32 bytes, while the SoA layout turns each field into
// a dense sequential stream the hardware prefetches trivially and the
// compiler can keep in vector registers for the pure-arithmetic passes
// (aperture products, harmonic synthesis). Values are copied bit-for-bit
// from the AoS terms, and every loop preserves the original iteration order
// and expression shapes, so the layout change alone cannot move a result.
type termSlices struct {
	relPhase []float64 // θ_i − θ_1, wrapped to (-π, π]
	cosA     []float64 // cos a_i
	sinA     []float64 // sin a_i
	scale    []float64 // 4π r / λ_i (the aperture scale, a.k.a. z_i)
}

// makeTermSlices converts prepared AoS terms into the SoA layout. All four
// slices share one backing array so a term set stays a single allocation.
func makeTermSlices(terms []snapshotTerm) termSlices {
	n := len(terms)
	backing := make([]float64, 4*n)
	ts := termSlices{
		relPhase: backing[0*n : 1*n : 1*n],
		cosA:     backing[1*n : 2*n : 2*n],
		sinA:     backing[2*n : 3*n : 3*n],
		scale:    backing[3*n : 4*n : 4*n],
	}
	for i, t := range terms {
		ts.relPhase[i] = t.relPhase
		ts.cosA[i] = t.cosA
		ts.sinA[i] = t.sinA
		ts.scale[i] = t.scale
	}
	return ts
}

// n returns the term count.
func (ts termSlices) n() int { return len(ts.scale) }

// stride subsamples the term set down to at most limit entries, with the
// same stride rule as the historical strideTerms (so coarse subsets are
// unchanged snapshot-for-snapshot).
func (ts termSlices) stride(limit int) termSlices {
	if ts.n() <= limit {
		return ts
	}
	stride := (ts.n() + limit - 1) / limit
	kept := 0
	for i := 0; i < ts.n(); i += stride {
		kept++
	}
	backing := make([]float64, 4*kept)
	out := termSlices{
		relPhase: backing[0*kept : 1*kept : 1*kept],
		cosA:     backing[1*kept : 2*kept : 2*kept],
		sinA:     backing[2*kept : 3*kept : 3*kept],
		scale:    backing[3*kept : 4*kept : 4*kept],
	}
	k := 0
	for i := 0; i < ts.n(); i += stride {
		out.relPhase[k] = ts.relPhase[i]
		out.cosA[k] = ts.cosA[i]
		out.sinA[k] = ts.sinA[i]
		out.scale[k] = ts.scale[i]
		k++
	}
	return out
}

// maxScale returns the largest aperture scale z_i = 4πr/λ_i in the set —
// the maximum angular frequency of the Q phasor sum as a function of the
// candidate azimuth, i.e. its bandwidth bound (each snapshot contributes
// the phasor e^{j(θ_i + z_i cos(φ−a_i))}, whose instantaneous frequency in
// φ is bounded by z_i).
func (ts termSlices) maxScale() float64 {
	var m float64
	for _, z := range ts.scale {
		if z > m {
			m = z
		}
	}
	return m
}

// meanScale returns the mean aperture scale (Σ z_i)/n: the Lipschitz
// constant of the normalized Q profile. |Q'(φ)| ≤ (Σ|dψ_i/dφ|)/n ≤
// (Σ z_i)/n, since Q = |Σ e^{jψ_i}|/n and |ψ_i'| = z_i|sin(φ−a_i)| ≤ z_i.
func (ts termSlices) meanScale() float64 {
	if ts.n() == 0 {
		return 0
	}
	var s float64
	for _, z := range ts.scale {
		s += z
	}
	return s / float64(ts.n())
}
