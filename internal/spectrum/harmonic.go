package spectrum

import (
	"math"
	"sync"
)

// This file holds the FFT-style azimuth evaluator: the Q profile over a
// uniform azimuth grid computed through a harmonic (Fourier) expansion
// instead of a dense per-cell × per-snapshot scan.
//
// The unnormalized Q phasor sum at fixed polar angle γ is
//
//	S(φ) = Σ_i e^{j(ρ_i + w_i·cos(φ − a_i))},   w_i = z_i·cos γ,
//
// a trigonometric polynomial in φ whose bandwidth is bounded by max w_i
// (each summand's instantaneous frequency is |w_i·sin(φ−a_i)| ≤ w_i). The
// Jacobi–Anger expansion makes the structure explicit:
//
//	e^{jw·cosθ} = J₀(w) + 2·Σ_{m≥1} j^m·J_m(w)·cos(mθ),
//
// so with cos(m(φ−a_i)) = cos(ma_i)cos(mφ) + sin(ma_i)sin(mφ),
//
//	S(φ) = A₀ + 2·Σ_{m=1}^{H} (A_m·cos(mφ) + B_m·sin(mφ)),
//	A_m  = Σ_i j^m·J_m(w_i)·e^{jρ_i}·cos(m·a_i)   (complex; j^m folded in),
//	B_m  = Σ_i j^m·J_m(w_i)·e^{jρ_i}·sin(m·a_i).
//
// The Bessel factors J_m(w) die super-exponentially past m ≈ w, so H stays
// ~w + 20 ≈ 25 for the testbed's w = 4πr/λ ≈ 3.9 — far below the snapshot
// count. Accumulating the coefficients costs O(snapshots × H) (one sincos
// per snapshot, then multiply-adds), and synthesizing every azimuth cell
// costs O(cells × H) multiply-adds with no trig at all (Chebyshev-style
// recurrences supply cos/sin(mφ)). The dense scan is O(cells × snapshots)
// sincos calls; on the default 720-cell × 64-snapshot coarse grid the
// harmonic route is an order of magnitude cheaper.
//
// Exactness: the synthesized values differ from evalQExact only by Bessel
// truncation (≲1e-14) and resummation rounding (≲1e-12) — bounded well
// under harmonicSlack. The argmax therefore cannot be read directly off the
// synthesized values without risking a flipped tie, so harmonicArgmax2D
// collects every cell within 2·harmonicSlack of the synthesized maximum and
// rescores those few cells with the exact per-cell formula. Any cell the
// dense scan could have returned is within harmonicSlack of its synthesized
// value and hence inside the collection threshold, so the returned index is
// exactly the dense scan's argmax — which is what keeps the default-on
// harmonic path gated by the existing bit-identity suites.

// harmonicSlack is the documented bound on |synthesized − exact| per cell.
// It covers Bessel truncation, synthesis rounding, and (in fast-trig mode)
// the bounded-error trig tables; the measured exact-mode error is ~1e-12
// (TestHarmonicSynthesisMatchesExact pins it).
const harmonicSlack = 1e-6

// harmonicsNeeded returns the harmonic count H for aperture scale w:
// J_m(w) ≈ (w/2)^m/m! for m ≫ w, so H = ⌈w⌉ + 20 puts the truncated tail
// below 1e-20 — far under harmonicSlack.
func harmonicsNeeded(w float64) int {
	if w < 0 {
		w = -w
	}
	return int(math.Ceil(w)) + 20
}

// besselJArray fills out[m] = J_m(w) for m = 0..len(out)-1 using Miller's
// downward recurrence: seed a tiny J at a start order safely above the
// highest requested, recur down with J_{m-1} = (2m/w)·J_m − J_{m+1} (stable
// downward), and normalize with the identity J₀ + 2·Σ_{k≥1} J_{2k} = 1.
func besselJArray(w float64, out []float64) {
	h := len(out) - 1
	for i := range out {
		out[i] = 0
	}
	if w < 1e-12 {
		// J₀(0) = 1; higher orders vanish (J₁(w) ≈ w/2 covers the rounding
		// tail for denormal-scale w).
		out[0] = 1
		if h >= 1 {
			out[1] = w / 2
		}
		return
	}
	start := h + 16
	if start&1 == 1 {
		start++
	}
	var (
		jNext = 0.0   // J_{m+1}, unnormalized
		jCur  = 1e-30 // J_m, unnormalized
		norm  float64
	)
	for m := start; m >= 0; m-- {
		if m <= h {
			out[m] = jCur
		}
		if m == 0 {
			norm += jCur
		} else if m&1 == 0 {
			norm += 2 * jCur
		}
		if m > 0 {
			jPrev := float64(2*m)/w*jCur - jNext
			jNext = jCur
			jCur = jPrev
		}
	}
	inv := 1 / norm
	for i := range out {
		out[i] *= inv
	}
}

// harmonicCoeffs accumulates the twisted Fourier coefficients of the Q
// phasor sum. Entry m of aRe/aIm is the complex A_m above (j^m already
// folded in), bRe/bIm is B_m; index 0 of b is unused (sin 0 = 0). The
// accumulation is a per-snapshot fold — term order is the only order — so
// the streaming Accumulator produces bit-identical coefficients to a batch
// fold over the same terms.
type harmonicCoeffs struct {
	aRe, aIm []float64
	bRe, bIm []float64
	n        int // snapshots folded in (the 1/n normalization)
	maxM     int // highest harmonic any folded term touched
}

// reset clears the coefficients for reuse, growing to hold harmonics up to
// order maxM.
func (h *harmonicCoeffs) reset(maxM int) {
	need := maxM + 1
	if cap(h.aRe) < need {
		backing := make([]float64, 4*need)
		h.aRe = backing[0*need : 1*need : 1*need]
		h.aIm = backing[1*need : 2*need : 2*need]
		h.bRe = backing[2*need : 3*need : 3*need]
		h.bIm = backing[3*need : 4*need : 4*need]
	}
	h.aRe = h.aRe[:need]
	h.aIm = h.aIm[:need]
	h.bRe = h.bRe[:need]
	h.bIm = h.bIm[:need]
	for i := 0; i < need; i++ {
		h.aRe[i], h.aIm[i], h.bRe[i], h.bIm[i] = 0, 0, 0, 0
	}
	h.n = 0
	h.maxM = 0
}

// ensure grows the coefficient arrays to hold harmonics up to order maxM,
// preserving accumulated values (new entries are zero). The streaming
// Accumulator discovers the needed order term by term, so unlike reset the
// growth must not clear; addition order per entry is unchanged, keeping the
// grown fold bit-identical to a batch fold sized up front.
func (h *harmonicCoeffs) ensure(maxM int) {
	need := maxM + 1
	if len(h.aRe) >= need {
		return
	}
	backing := make([]float64, 4*need)
	aRe := backing[0*need : 1*need : 1*need]
	aIm := backing[1*need : 2*need : 2*need]
	bRe := backing[2*need : 3*need : 3*need]
	bIm := backing[3*need : 4*need : 4*need]
	copy(aRe, h.aRe)
	copy(aIm, h.aIm)
	copy(bRe, h.bRe)
	copy(bIm, h.bIm)
	h.aRe, h.aIm, h.bRe, h.bIm = aRe, aIm, bRe, bIm
}

// foldTerm folds one snapshot term into the coefficients. bess must hold
// J_0..J_H(w) for this term's w = z·cos γ (besselJArray); the fold touches
// harmonics 0..H only, so each term contributes exactly the same bits
// whether folded batch-style or one Add at a time. Cost: one sincos plus
// O(H) multiply-adds — cos/sin(m·a) and the j^m twist both advance by
// recurrence.
func (h *harmonicCoeffs) foldTerm(relPhase, cosA, sinA float64, bess []float64) {
	sinRho, cosRho := math.Sincos(relPhase)
	// j^m·e^{jρ}: rotate by 90° per harmonic.
	reRot, imRot := cosRho, sinRho
	// cos(m·a), sin(m·a) by the Chebyshev-style recurrence
	// x_{m+1} = 2·cos a·x_m − x_{m-1}.
	cPrev, sPrev := 1.0, 0.0
	cCur, sCur := cosA, sinA
	// Reslice the coefficient banks to the harmonic count up front: one
	// length check here instead of four bounds checks per iteration.
	nb := len(bess)
	aRe, aIm := h.aRe[:nb], h.aIm[:nb]
	bRe, bIm := h.bRe[:nb], h.bIm[:nb]
	aRe[0] += bess[0] * reRot
	aIm[0] += bess[0] * imRot
	for m := 1; m < nb; m++ {
		reRot, imRot = -imRot, reRot // multiply by j
		jm := bess[m]
		aRe[m] += jm * reRot * cCur
		aIm[m] += jm * imRot * cCur
		bRe[m] += jm * reRot * sCur
		bIm[m] += jm * imRot * sCur
		cCur, cPrev = 2*cosA*cCur-cPrev, cCur
		sCur, sPrev = 2*cosA*sCur-sPrev, sCur
	}
	h.n++
	if len(bess)-1 > h.maxM {
		h.maxM = len(bess) - 1
	}
}

// synthesize materializes the normalized Q value at every grid cell from
// the accumulated coefficients: out[k] = |S(φ_k)|/n, with cos/sin(m·φ_k)
// advanced by recurrence from the supplied first-harmonic tables. No trig
// in the loop — O(maxM) multiply-adds per cell.
func (h *harmonicCoeffs) synthesize(out, sinPhi, cosPhi []float64) {
	inv := 1 / float64(h.n)
	nb := h.maxM + 1
	aRe, aIm := h.aRe[:nb], h.aIm[:nb]
	bRe, bIm := h.bRe[:nb], h.bIm[:nb]
	n := len(out)
	sinPhi = sinPhi[:n]
	cosPhi = cosPhi[:n]
	for k := 0; k < n; k++ {
		c1, s1 := cosPhi[k], sinPhi[k]
		sumRe, sumIm := aRe[0], aIm[0]
		cPrev, sPrev := 1.0, 0.0
		cCur, sCur := c1, s1
		for m := 1; m < nb; m++ {
			sumRe += 2 * (aRe[m]*cCur + bRe[m]*sCur)
			sumIm += 2 * (aIm[m]*cCur + bIm[m]*sCur)
			cCur, cPrev = 2*c1*cCur-cPrev, cCur
			sCur, sPrev = 2*c1*sCur-sPrev, sCur
		}
		out[k] = math.Sqrt(sumRe*sumRe+sumIm*sumIm) * inv
	}
}

// harmonicScratch bundles the per-search harmonic buffers; Evaluators pool
// them so steady-state harmonic searches allocate nothing.
type harmonicScratch struct {
	coeffs harmonicCoeffs
	bess   []float64
	vals   []float64
	cand   []int
}

var harmPool = sync.Pool{New: func() any { return new(harmonicScratch) }}

// foldTermsHarmonic folds a whole term set (at fixed γ) into hs.coeffs,
// computing each term's Bessel table as it goes.
func foldTermsHarmonic(hs *harmonicScratch, terms termSlices, cosGamma float64) {
	foldTermsInto(&hs.coeffs, &hs.bess, terms, cosGamma)
}

// foldTermsInto is foldTermsHarmonic targeting caller-owned coefficient and
// Bessel buffers: the hierarchical scanner's synthesized basin evaluation
// folds one coefficient set per polar row (hier.go) and cannot route them
// all through a single harmonicScratch.
func foldTermsInto(hc *harmonicCoeffs, bessBuf *[]float64, terms termSlices, cosGamma float64) {
	maxM := harmonicsNeeded(terms.maxScale() * math.Abs(cosGamma))
	hc.reset(maxM)
	if cap(*bessBuf) < maxM+1 {
		*bessBuf = make([]float64, maxM+1)
	}
	for i := 0; i < terms.n(); i++ {
		w := terms.scale[i] * cosGamma
		need := harmonicsNeeded(w)
		bess := (*bessBuf)[:need+1]
		besselJArray(w, bess)
		hc.foldTerm(terms.relPhase[i], terms.cosA[i], terms.sinA[i], bess)
	}
}

// harmonicArgmax2D is the coarseArgmax2D drop-in for KindQ on the uniform
// azimuth grid φ_k = k·step (γ = 0): fold coefficients, synthesize all
// cells, then exact-rescore every cell within 2·harmonicSlack of the
// synthesized maximum. The rescore evaluates the very same expression the
// dense scan uses at those cells (ascending index, strict >), so the
// returned index equals the dense scan's argmax whenever synthesis error
// stays within harmonicSlack — which the equivalence tests pin.
func (e *Evaluator) harmonicArgmax2D(terms termSlices, n int, step float64) int {
	hs := harmPool.Get().(*harmonicScratch)
	foldTermsHarmonic(hs, terms, 1)
	if cap(hs.vals) < n {
		hs.vals = make([]float64, n)
	}
	vals := hs.vals[:n]
	sc := e.getScratch()
	e.fillUniformTrig(sc, 0, n, step)
	hs.coeffs.synthesize(vals, sc.sinPhi[:n], sc.cosPhi[:n])
	e.putScratch(sc)
	maxV := math.Inf(-1)
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	cand := hs.cand[:0]
	for k, v := range vals {
		if v >= maxV-2*harmonicSlack {
			cand = append(cand, k)
		}
	}
	hs.cand = cand
	idx := e.rescoreTopK(terms, cand, step, 0, 0, 0)
	harmPool.Put(hs)
	return idx
}
