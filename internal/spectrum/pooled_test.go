package spectrum

import (
	"math"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/sched"
)

// withPoolWidth runs fn with the shared compute pool pinned to the given
// width, restoring the previous width afterwards. Width 1 forces the
// evaluator's inline serial path; wider forces the pooled path.
func withPoolWidth(t *testing.T, workers int, fn func()) {
	t.Helper()
	old := sched.Workers()
	sched.SetWorkers(workers)
	defer sched.SetWorkers(old)
	fn()
}

// TestPooledScanEquivalence is the pool-path bit-exactness pin required by
// the shared-pool migration: Profile2DInto, Profile3D, FindPeak2DEval and
// FindPeak3DEval must produce bit-identical results whether scans run
// inline (1-worker pool → serial fallback) or on the shared pool, for both
// trig modes. Run under -race at GOMAXPROCS=1 and 4 by `make check`.
func TestPooledScanEquivalence(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.0, 1.1, 0.5), 120, 0.8, 0, nil)
	angles := UniformAngles(407) // odd count → partial final chunk
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 17)

	for _, kind := range []Kind{KindQ, KindR} {
		for _, fast := range []bool{false, true} {
			var opts []EvalOption
			if fast {
				opts = append(opts, WithFastTrig())
			}
			ev, err := NewEvaluator(snaps, p, kind, opts...)
			if err != nil {
				t.Fatal(err)
			}

			var ser2, pool2 Profile
			var ser3, pool3 Profile3D
			var serAz, serPow, poolAz, poolPow float64
			var ser3D, pool3D Peak3D
			withPoolWidth(t, 1, func() {
				ev.Profile2DInto(&ser2, angles)
				ser3 = ev.Profile3D(angles[:96], pol)
				serAz, serPow = FindPeak2DEval(ev, SearchOptions{})
				ser3D = FindPeak3DEval(ev, SearchOptions{})
			})
			withPoolWidth(t, 4, func() {
				ev.Profile2DInto(&pool2, angles)
				pool3 = ev.Profile3D(angles[:96], pol)
				poolAz, poolPow = FindPeak2DEval(ev, SearchOptions{})
				pool3D = FindPeak3DEval(ev, SearchOptions{})
			})

			tag := kindTag(kind, fast)
			for i := range ser2.Power {
				if pool2.Power[i] != ser2.Power[i] {
					t.Fatalf("%s: Profile2DInto diverged at %d: %v != %v",
						tag, i, pool2.Power[i], ser2.Power[i])
				}
			}
			for i := range ser3.Power {
				for j := range ser3.Power[i] {
					if pool3.Power[i][j] != ser3.Power[i][j] {
						t.Fatalf("%s: Profile3D diverged at %d,%d", tag, i, j)
					}
				}
			}
			if poolAz != serAz || poolPow != serPow {
				t.Fatalf("%s: FindPeak2DEval pooled (%v,%v) != serial (%v,%v)",
					tag, poolAz, poolPow, serAz, serPow)
			}
			if pool3D != ser3D {
				t.Fatalf("%s: FindPeak3DEval pooled %+v != serial %+v", tag, pool3D, ser3D)
			}
		}
	}
}

func kindTag(kind Kind, fast bool) string {
	s := "Q"
	if kind == KindR {
		s = "R"
	}
	if fast {
		return s + "/fast"
	}
	return s + "/exact"
}

// TestPooledConcurrentScansEquivalence runs many evaluators' scans on the
// shared pool at once — the serving-path shape where jobs interleave at
// chunk granularity — and checks every result against the serial reference.
// Under -race this is the cross-job interference test.
func TestPooledConcurrentScansEquivalence(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-1.7, 0.9, 0), 100, 1.1, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindR, WithFastTrig())
	if err != nil {
		t.Fatal(err)
	}
	wantAz, wantPow := 0.0, 0.0
	withPoolWidth(t, 1, func() { wantAz, wantPow = FindPeak2DEval(ev, SearchOptions{}) })

	withPoolWidth(t, 2, func() {
		const goroutines = 6
		done := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				for round := 0; round < 10; round++ {
					if az, pow := FindPeak2DEval(ev, SearchOptions{}); az != wantAz || pow != wantPow {
						done <- &equivErr{az, pow, wantAz, wantPow}
						return
					}
				}
				done <- nil
			}()
		}
		for g := 0; g < goroutines; g++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	})
}

type equivErr struct{ az, pow, wantAz, wantPow float64 }

func (e *equivErr) Error() string {
	return "concurrent pooled peak diverged from serial reference"
}
