package spectrum

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
)

// SearchOptions tunes the coarse-to-fine peak search.
type SearchOptions struct {
	// CoarseStep is the initial azimuth grid spacing. Zero means 0.5°.
	CoarseStep float64
	// CoarsePolarStep is the initial polar grid spacing (3D only). Zero
	// means 2°.
	CoarsePolarStep float64
	// Refinements is the number of local-grid refinement rounds; each
	// shrinks the step by 5×. Zero means 4 (≈0.0008° final resolution
	// from a 0.5° start).
	Refinements int
}

func (o SearchOptions) coarseStep() float64 {
	if o.CoarseStep <= 0 {
		return geom.Radians(0.5)
	}
	return o.CoarseStep
}

func (o SearchOptions) coarsePolarStep() float64 {
	if o.CoarsePolarStep <= 0 {
		return geom.Radians(2)
	}
	return o.CoarsePolarStep
}

func (o SearchOptions) refinements() int {
	if o.Refinements <= 0 {
		return 4
	}
	return o.Refinements
}

// FindPeak2D locates the azimuth maximizing the selected profile using a
// coarse global grid followed by local refinement (ablation A2 validates it
// against exhaustive search). It returns the refined azimuth and the profile
// power there.
func FindPeak2D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (float64, float64, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return 0, 0, err
	}
	sigma := p.sigma()
	eval := func(phi float64) float64 { return evalAt(terms, kind, sigma, p.LiteralReference, phi, 0) }

	// Coarse pass on a strided snapshot subset (≤64), as in FindPeak3D;
	// the refinement rounds use the full set.
	coarse := strideTerms(terms, 64)
	step := opts.coarseStep()
	best, bestPow := 0.0, math.Inf(-1)
	for phi := 0.0; phi < 2*math.Pi; phi += step {
		if v := evalAt(coarse, kind, sigma, p.LiteralReference, phi, 0); v > bestPow {
			best, bestPow = phi, v
		}
	}
	bestPow = eval(best)
	for r := 0; r < opts.refinements(); r++ {
		fine := step / 5
		lo := best - step
		for k := 0; k <= 10; k++ {
			phi := lo + float64(k)*fine
			if v := eval(phi); v > bestPow {
				best, bestPow = phi, v
			}
		}
		step = fine
	}
	return geom.NormalizeAngle(best), bestPow, nil
}

// ExhaustivePeak2D locates the peak on a single dense grid with the given
// step. It exists as the ground-truth comparator for the coarse-to-fine
// search (ablation A2); it is O(n/step) and much slower at fine steps.
func ExhaustivePeak2D(snaps []phase.Snapshot, p Params, kind Kind, step float64) (float64, float64, error) {
	if step <= 0 {
		return 0, 0, fmt.Errorf("spectrum: non-positive step %v", step)
	}
	terms, err := prepare(snaps, p)
	if err != nil {
		return 0, 0, err
	}
	sigma := p.sigma()
	best, bestPow := 0.0, math.Inf(-1)
	for phi := 0.0; phi < 2*math.Pi; phi += step {
		if v := evalAt(terms, kind, sigma, p.LiteralReference, phi, 0); v > bestPow {
			best, bestPow = phi, v
		}
	}
	return best, bestPow, nil
}

// Peak3D is one located maximum of a 3D profile.
type Peak3D struct {
	Azimuth float64
	Polar   float64
	Power   float64
}

// FindPeak3D locates the (azimuth, polar) pair maximizing the selected 3D
// profile, coarse-to-fine. Because the z-mirror of the true direction scores
// identically (§V-B), callers usually restrict interpretation to γ ≥ 0 or
// use dead-space rules; this function simply returns the global maximum it
// finds.
func FindPeak3D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (Peak3D, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return Peak3D{}, err
	}
	sigma := p.sigma()
	eval := func(phi, gamma float64) float64 { return evalAt(terms, kind, sigma, p.LiteralReference, phi, gamma) }

	// The global coarse scan costs |grid|·|snapshots|; a strided snapshot
	// subset (≤64) is plenty to find the right cell, and the refinement
	// rounds below use the full set.
	coarseTerms := strideTerms(terms, 64)
	coarseEval := func(phi, gamma float64) float64 {
		return evalAt(coarseTerms, kind, sigma, p.LiteralReference, phi, gamma)
	}

	azStep := opts.coarseStep() * 4 // 3D coarse pass can be coarser; refined below
	polStep := opts.coarsePolarStep()
	best := Peak3D{Power: math.Inf(-1)}
	for gamma := -math.Pi / 2; gamma <= math.Pi/2; gamma += polStep {
		for phi := 0.0; phi < 2*math.Pi; phi += azStep {
			if v := coarseEval(phi, gamma); v > best.Power {
				best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
			}
		}
	}
	// Re-score the coarse winner with the full snapshot set so the
	// refinement comparisons are apples-to-apples.
	best.Power = eval(best.Azimuth, best.Polar)
	for r := 0; r < opts.refinements(); r++ {
		fineAz, finePol := azStep/5, polStep/5
		azLo, polLo := best.Azimuth-azStep, best.Polar-polStep
		for i := 0; i <= 10; i++ {
			gamma := clampPolar(polLo + float64(i)*finePol)
			for k := 0; k <= 10; k++ {
				phi := azLo + float64(k)*fineAz
				if v := eval(phi, gamma); v > best.Power {
					best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
				}
			}
		}
		azStep, polStep = fineAz, finePol
	}
	best.Azimuth = geom.NormalizeAngle(best.Azimuth)
	return best, nil
}

// clampPolar keeps a polar candidate inside [-π/2, π/2].
func clampPolar(g float64) float64 {
	if g < -math.Pi/2 {
		return -math.Pi / 2
	}
	if g > math.Pi/2 {
		return math.Pi / 2
	}
	return g
}

// strideTerms subsamples terms down to at most limit entries.
func strideTerms(terms []snapshotTerm, limit int) []snapshotTerm {
	if len(terms) <= limit {
		return terms
	}
	stride := (len(terms) + limit - 1) / limit
	out := make([]snapshotTerm, 0, limit)
	for i := 0; i < len(terms); i += stride {
		out = append(out, terms[i])
	}
	return out
}
