package spectrum

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
)

// NoRefine, set as SearchOptions.Refinements, requests a coarse-only
// search: the grid argmax is returned without any local refinement rounds.
// Any negative Refinements value means the same thing; the zero value keeps
// meaning "default rounds", so existing callers are unaffected.
const NoRefine = -1

// SearchOptions tunes the coarse-to-fine peak search.
type SearchOptions struct {
	// CoarseStep is the initial azimuth grid spacing. Zero means 0.5°.
	CoarseStep float64
	// CoarsePolarStep is the initial polar grid spacing (3D only). Zero
	// means 2°.
	CoarsePolarStep float64
	// Refinements is the number of local-grid refinement rounds; each
	// shrinks the step by 5×. Zero means 4 (≈0.0008° final resolution
	// from a 0.5° start); NoRefine (or any negative value) disables
	// refinement entirely, returning the raw coarse-grid argmax.
	Refinements int
}

func (o SearchOptions) coarseStep() float64 {
	if o.CoarseStep <= 0 {
		return geom.Radians(0.5)
	}
	return o.CoarseStep
}

func (o SearchOptions) coarsePolarStep() float64 {
	if o.CoarsePolarStep <= 0 {
		return geom.Radians(2)
	}
	return o.CoarsePolarStep
}

func (o SearchOptions) refinements() int {
	switch {
	case o.Refinements < 0: // NoRefine: coarse-only search
		return 0
	case o.Refinements == 0: // zero value: default rounds
		return 4
	default:
		return o.Refinements
	}
}

// gridSteps returns how many grid points of the given spacing cover the
// half-open span [0, span).
func gridSteps(span, step float64) int {
	n := int(math.Ceil(span / step))
	if n < 1 {
		n = 1
	}
	return n
}

// FindPeak2D locates the azimuth maximizing the selected profile using a
// coarse global grid followed by local refinement (ablation A2 validates it
// against exhaustive search). It returns the refined azimuth and the profile
// power there. Callers that already hold an Evaluator — or localize the
// same session repeatedly — should use FindPeak2DEval, which skips the
// snapshot-term preparation.
func FindPeak2D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (float64, float64, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return 0, 0, err
	}
	az, pow := FindPeak2DEval(ev, opts)
	return az, pow, nil
}

// FindPeak2DEval is FindPeak2D on a prebuilt Evaluator: the coarse pass
// runs the batched row kernel over the strided snapshot subset (≤64),
// parallel across the angle grid, and the refinement rounds use the full
// set. Steady-state calls allocate nothing — scratch and argmax state come
// from the Evaluator's pools.
func FindPeak2DEval(ev *Evaluator, opts SearchOptions) (float64, float64) {
	step := opts.coarseStep()
	j := ev.getJob()
	j.terms = ev.coarse
	j.n = gridSteps(2*math.Pi, step)
	j.chunk = chunkTarget
	j.step = step
	idx, _ := ev.argmaxJob(j)
	ev.putJob(j)
	best := float64(idx) * step
	sc := ev.getScratch()
	defer ev.putScratch(sc)
	bestPow := ev.EvalAt(sc, best, 0)
	for r := 0; r < opts.refinements(); r++ {
		fine := step / 5
		lo := best - step
		for k := 0; k <= 10; k++ {
			phi := lo + float64(k)*fine
			if v := ev.EvalAt(sc, phi, 0); v > bestPow {
				best, bestPow = phi, v
			}
		}
		step = fine
	}
	return geom.NormalizeAngle(best), bestPow
}

// ExhaustivePeak2D locates the peak on a single dense grid with the given
// step, evaluated in parallel across the grid. It exists as the ground-truth
// comparator for the coarse-to-fine search (ablation A2); it is O(n/step)
// and much slower at fine steps.
func ExhaustivePeak2D(snaps []phase.Snapshot, p Params, kind Kind, step float64) (float64, float64, error) {
	if step <= 0 {
		return 0, 0, fmt.Errorf("spectrum: non-positive step %v", step)
	}
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return 0, 0, err
	}
	j := ev.getJob()
	j.terms = ev.terms
	j.n = gridSteps(2*math.Pi, step)
	j.chunk = chunkTarget
	j.step = step
	idx, pow := ev.argmaxJob(j)
	ev.putJob(j)
	return float64(idx) * step, pow, nil
}

// Peak3D is one located maximum of a 3D profile.
type Peak3D struct {
	Azimuth float64
	Polar   float64
	Power   float64
}

// FindPeak3D locates the (azimuth, polar) pair maximizing the selected 3D
// profile, coarse-to-fine. Because the z-mirror of the true direction scores
// identically (§V-B), callers usually restrict interpretation to γ ≥ 0 or
// use dead-space rules; this function simply returns the global maximum it
// finds. Callers that already hold an Evaluator should use FindPeak3DEval.
func FindPeak3D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (Peak3D, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return Peak3D{}, err
	}
	return FindPeak3DEval(ev, opts), nil
}

// FindPeak3DEval is FindPeak3D on a prebuilt Evaluator. The global coarse
// scan costs |grid|·|snapshots|; it runs the batched row kernel on the
// strided snapshot subset (≤64), parallel across grid rows (each argmax
// chunk is exactly one polar row, so γ is fixed per row evaluation), and
// the refinement rounds use the full set.
func FindPeak3DEval(ev *Evaluator, opts SearchOptions) Peak3D {
	azStep := opts.coarseStep() * 4 // 3D coarse pass can be coarser; refined below
	polStep := opts.coarsePolarStep()
	nAz := gridSteps(2*math.Pi, azStep)
	nPol := int(math.Floor(math.Pi/polStep+1e-9)) + 1 // [-π/2, π/2] inclusive
	j := ev.getJob()
	j.terms = ev.coarse
	j.n = nAz * nPol
	j.chunk = nAz
	j.step = azStep
	j.azCount = nAz
	j.polBase = -math.Pi / 2
	j.polStep = polStep
	idx, _ := ev.argmaxJob(j)
	ev.putJob(j)
	best := Peak3D{
		Azimuth: float64(idx%nAz) * azStep,
		Polar:   -math.Pi/2 + float64(idx/nAz)*polStep,
	}
	// Re-score the coarse winner with the full snapshot set so the
	// refinement comparisons are apples-to-apples.
	sc := ev.getScratch()
	defer ev.putScratch(sc)
	best.Power = ev.EvalAt(sc, best.Azimuth, best.Polar)
	for r := 0; r < opts.refinements(); r++ {
		fineAz, finePol := azStep/5, polStep/5
		azLo, polLo := best.Azimuth-azStep, best.Polar-polStep
		for i := 0; i <= 10; i++ {
			gamma := clampPolar(polLo + float64(i)*finePol)
			for k := 0; k <= 10; k++ {
				phi := azLo + float64(k)*fineAz
				if v := ev.EvalAt(sc, phi, gamma); v > best.Power {
					best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
				}
			}
		}
		azStep, polStep = fineAz, finePol
	}
	best.Azimuth = geom.NormalizeAngle(best.Azimuth)
	return best
}

// clampPolar keeps a polar candidate inside [-π/2, π/2].
func clampPolar(g float64) float64 {
	if g < -math.Pi/2 {
		return -math.Pi / 2
	}
	if g > math.Pi/2 {
		return math.Pi / 2
	}
	return g
}

// strideTerms subsamples terms down to at most limit entries.
func strideTerms(terms []snapshotTerm, limit int) []snapshotTerm {
	if len(terms) <= limit {
		return terms
	}
	stride := (len(terms) + limit - 1) / limit
	out := make([]snapshotTerm, 0, limit)
	for i := 0; i < len(terms); i += stride {
		out = append(out, terms[i])
	}
	return out
}
