package spectrum

import (
	"fmt"
	"math"
	"sort"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
)

// NoRefine, set as SearchOptions.Refinements, requests a coarse-only
// search: the grid argmax is returned without any local refinement rounds.
// Any negative Refinements value means the same thing; the zero value keeps
// meaning "default rounds", so existing callers are unaffected.
const NoRefine = -1

// Toggle is a tri-state switch for the sub-linear search features: the
// zero value picks the kind-dependent default, so existing zero-valued
// SearchOptions keep working when a feature becomes default-on.
type Toggle int8

const (
	// ToggleAuto defers to the per-feature, per-kind default (e.g. the
	// harmonic evaluator defaults on for both kinds, the hierarchical
	// scanner only for KindQ — each SearchOptions field documents its own
	// resolution).
	ToggleAuto Toggle = 0
	// ToggleOn forces the feature on regardless of profile kind.
	ToggleOn Toggle = 1
	// ToggleOff forces the feature off.
	ToggleOff Toggle = -1
)

// enabled resolves the tri-state against the kind-dependent default.
func (t Toggle) enabled(auto bool) bool {
	switch t {
	case ToggleOn:
		return true
	case ToggleOff:
		return false
	}
	return auto
}

// SearchOptions tunes the coarse-to-fine peak search.
type SearchOptions struct {
	// CoarseStep is the initial azimuth grid spacing. Zero means 0.5°.
	CoarseStep float64
	// CoarsePolarStep is the initial polar grid spacing (3D only). Zero
	// means 2°.
	CoarsePolarStep float64
	// Refinements is the number of local-grid refinement rounds; each
	// shrinks the step by 5×. Zero means 4 (≈0.0008° final resolution
	// from a 0.5° start); NoRefine (or any negative value) disables
	// refinement entirely, returning the raw coarse-grid argmax.
	Refinements int
	// PrescreenTopK, when positive, replaces KindR coarse scans with a
	// two-stage pass: the ~4× cheaper Q row kernel scores the whole grid,
	// then only the top-K cells are rescored with the full R formula and
	// the best R cell seeds refinement (Q is 1.9 ms vs R 6.6 ms on the
	// default 720-cell grid per BENCH_3). Q and R peak in the same basin —
	// R is Q with per-snapshot likelihood weights — so K of a few handfuls
	// keeps the refined peak within the coarse cell of the full-R pass
	// (the ablation test bounds the drift). Zero disables prescreening;
	// KindQ searches ignore it. The 3D coarse pass honors it the same way
	// as 2D (coarseArgmax3D routes KindR scans through the row-chunked
	// Q prescreen); it also sets the KindR rescore width of the
	// hierarchical scanner.
	PrescreenTopK int
	// HarmonicEval selects the FFT-style harmonic evaluator (harmonic.go,
	// allcells.go) for 2D azimuth coarse scans: O(snapshots×H + cells×H)
	// coefficient work instead of O(cells×snapshots) trig, returning
	// exactly the dense scan's argmax cell (the synthesized shortlist is
	// rescored with the exact per-cell formula). Auto means on for both
	// kinds — KindQ synthesizes the phasor magnitude directly, KindR runs
	// the two-pass all-cells transform (the weights' inputs are
	// bandlimited even though R itself is not; see allcells.go). A KindR
	// scan with PrescreenTopK set keeps the prescreen route, and
	// Hierarchical: On keeps the lattice scanner, matching the streaming
	// Accumulator's replay rules.
	HarmonicEval Toggle
	// Hierarchical selects the Lipschitz-bounded coarse-to-fine lattice
	// scanner (hier.go) for coarse grid scans — 3D always, 2D when the
	// harmonic evaluator is off. Auto means on for KindQ (where the
	// captured argmax is exactly the dense scan's cell) and off for KindR
	// (where enabling it scores with Q and rescores the top cells with R,
	// like the prescreen pass).
	Hierarchical Toggle
	// NUFFT selects the type-2 NUFFT synthesis route (nufft.go) for the
	// non-uniform-grid entry points — FindPeak2DAngles, Profile2DInto/
	// Profile3D Q synthesis on ≥nufftMinCells grids, and the Accumulator's
	// angle-grid finalize: fold once, synthesize on an oversampled uniform
	// grid, spread to the requested cells through a truncated Gaussian
	// kernel. Auto means on for those entry points (argmaxes stay exact
	// via shortlist-then-rescore; synthesized profile values carry
	// ≤nufftSlackQ error) and off for the hierarchical scanner's basin
	// evaluation, which only ToggleOn switches to per-cell harmonic
	// synthesis (synthAt). ToggleOff forces the dense per-cell scan
	// everywhere the grid is non-uniform.
	NUFFT Toggle
}

func (o SearchOptions) coarseStep() float64 {
	if o.CoarseStep <= 0 {
		return geom.Radians(0.5)
	}
	return o.CoarseStep
}

func (o SearchOptions) coarsePolarStep() float64 {
	if o.CoarsePolarStep <= 0 {
		return geom.Radians(2)
	}
	return o.CoarsePolarStep
}

func (o SearchOptions) refinements() int {
	switch {
	case o.Refinements < 0: // NoRefine: coarse-only search
		return 0
	case o.Refinements == 0: // zero value: default rounds
		return 4
	default:
		return o.Refinements
	}
}

// gridSteps returns how many grid points of the given spacing cover the
// half-open span [0, span).
func gridSteps(span, step float64) int {
	n := int(math.Ceil(span / step))
	if n < 1 {
		n = 1
	}
	return n
}

// FindPeak2D locates the azimuth maximizing the selected profile using a
// coarse global grid followed by local refinement (ablation A2 validates it
// against exhaustive search). It returns the refined azimuth and the profile
// power there. Callers that already hold an Evaluator — or localize the
// same session repeatedly — should use FindPeak2DEval, which skips the
// snapshot-term preparation.
func FindPeak2D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (float64, float64, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return 0, 0, err
	}
	az, pow := FindPeak2DEval(ev, opts)
	return az, pow, nil
}

// FindPeak2DEval is FindPeak2D on a prebuilt Evaluator: the coarse pass
// runs the batched row kernel over the strided snapshot subset (≤64),
// parallel across the angle grid, and the refinement rounds use the full
// set. Steady-state calls allocate nothing — scratch and argmax state come
// from the Evaluator's pools (the optional Q-prescreen pass is the one
// exception: it buys its dense Q buffer per call).
func FindPeak2DEval(ev *Evaluator, opts SearchOptions) (float64, float64) {
	step := opts.coarseStep()
	idx := ev.coarseArgmax2D(ev.coarse, gridSteps(2*math.Pi, step), step, opts)
	return ev.refine2D(float64(idx)*step, step, opts)
}

// FindPeak2DAngles locates the azimuth maximizing the selected profile over
// an arbitrary (typically non-uniform) candidate grid, then refines locally.
// It is FindPeak2D for callers whose candidate set is not φ_i = i·step —
// jittered survey grids, importance-sampled cells, externally supplied
// candidate lists. The coarse argmax over the given angles is bit-identical
// to a dense scan of the same grid (the NUFFT route keeps the
// shortlist-then-rescore contract); refinement then searches the winner's
// neighborhood at the grid's mean spacing.
func FindPeak2DAngles(snaps []phase.Snapshot, p Params, kind Kind, angles []float64, opts SearchOptions) (float64, float64, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return 0, 0, err
	}
	az, pow := FindPeak2DAnglesEval(ev, angles, opts)
	return az, pow, nil
}

// FindPeak2DAnglesEval is FindPeak2DAngles on a prebuilt Evaluator. An empty
// grid returns (0, 0), matching the all-zero-profile default of the uniform
// search.
func FindPeak2DAnglesEval(ev *Evaluator, angles []float64, opts SearchOptions) (float64, float64) {
	if len(angles) == 0 {
		return 0, 0
	}
	idx := ev.coarseArgmax2DAngles(ev.coarse, angles, opts)
	step := 2 * math.Pi / float64(len(angles))
	return ev.refine2D(angles[idx], step, opts)
}

// coarseArgmax2DAngles is coarseArgmax2D over an arbitrary angle grid: the
// NUFFT route (default on) folds the harmonic coefficients once and
// synthesizes every cell through the oversampled-grid spreader — KindQ on
// magnitudes, KindR replaying the robust weighting over the spread phasor
// sums — then shortlists and exact-rescores, so the returned index matches
// the dense scan bit for bit. ToggleOff (or a fold too large to be coarse,
// which cannot happen for the ≤64-term coarse subset) scans densely.
func (e *Evaluator) coarseArgmax2DAngles(terms termSlices, angles []float64, opts SearchOptions) int {
	if opts.NUFFT.enabled(true) {
		if e.kind == KindR {
			searchCounters.nufftR2D.Add(1)
			return e.nufftArgmaxR(terms, angles)
		}
		searchCounters.nufft2D.Add(1)
		return e.nufftArgmaxQ(terms, angles)
	}
	searchCounters.denseNU2D.Add(1)
	return e.denseArgmax2DAngles(terms, angles)
}

// denseArgmax2DAngles is the full parallel scan over an arbitrary angle
// grid: the row kernels fill a pooled value buffer (the angles geometry has
// no bests reduction), and a serial ascending strict-> pass picks the
// winner — the same lowest-index tie rule as every other argmax.
func (e *Evaluator) denseArgmax2DAngles(terms termSlices, angles []float64) int {
	n := len(angles)
	hs := harmPool.Get().(*harmonicScratch)
	if cap(hs.vals) < n {
		hs.vals = make([]float64, n)
	}
	vals := hs.vals[:n]
	j := e.getJob()
	j.terms = terms
	j.n = n
	j.chunk = chunkTarget
	j.angles = angles
	j.out = vals
	e.scanChunks(j)
	e.putJob(j)
	best, bestVal := 0, math.Inf(-1)
	for k, v := range vals {
		if v > bestVal {
			best, bestVal = k, v
		}
	}
	harmPool.Put(hs)
	return best
}

// rescoreAngles evaluates the exact per-cell formula at the given grid cells
// (indices ascending) and returns the winner — rescoreTopK for arbitrary
// angle grids. The streaming Accumulator's angle-grid finalize reuses this,
// so batch and streamed picks share one selection path.
func (e *Evaluator) rescoreAngles(terms termSlices, idxs []int, angles []float64) int {
	sc := e.getScratch()
	defer e.putScratch(sc)
	bestIdx, bestVal := idxs[0], math.Inf(-1)
	for _, k := range idxs { // ascending index → lowest-index tie rule
		if v := e.evalTerms(terms, sc, angles[k], 0); v > bestVal {
			bestIdx, bestVal = k, v
		}
	}
	return bestIdx
}

// coarseArgmax2D returns the argmax index over the uniform grid
// φ_i = i·step, i < n, scored on the given term subset. Both kinds now
// default to a harmonic route: KindQ through the magnitude synthesis, KindR
// through the two-pass all-cells transform (allcells.go) — each returning
// exactly the dense scan's cell via the shortlist-and-rescore guarantee.
// Explicit overrides keep their historical precedence: Hierarchical: On
// selects the lattice scanner, and a KindR search with PrescreenTopK set
// keeps the Q-prescreen pass (also what the streaming Accumulator replays,
// so batch and streamed picks stay aligned).
func (e *Evaluator) coarseArgmax2D(terms termSlices, n int, step float64, opts SearchOptions) int {
	autoOn := e.kind != KindR
	if autoOn && opts.HarmonicEval.enabled(true) {
		searchCounters.harmonicQ2D.Add(1)
		return e.harmonicArgmax2D(terms, n, step)
	}
	if opts.Hierarchical.enabled(autoOn) {
		searchCounters.hier2D.Add(1)
		return e.hierarchicalArgmax2D(terms, n, step, opts)
	}
	if e.kind == KindR && opts.PrescreenTopK > 0 {
		searchCounters.prescreen2D.Add(1)
		return e.prescreenArgmax(terms, n, step, 0, 0, 0, opts.PrescreenTopK)
	}
	if e.kind == KindR && opts.HarmonicEval.enabled(true) {
		searchCounters.harmonicR2D.Add(1)
		return e.harmonicArgmaxR2D(terms, n, step)
	}
	searchCounters.dense2D.Add(1)
	return e.denseArgmax2D(terms, n, step)
}

// denseArgmax2D is the full parallel scan over the uniform azimuth grid.
func (e *Evaluator) denseArgmax2D(terms termSlices, n int, step float64) int {
	j := e.getJob()
	j.terms = terms
	j.n = n
	j.chunk = chunkTarget
	j.step = step
	idx, _ := e.argmaxJob(j)
	e.putJob(j)
	return idx
}

// refine2D runs the local refinement rounds from a coarse-grid winner,
// re-scoring it with the full snapshot set first so the comparisons are
// apples-to-apples. Both the batch peak search and the streaming
// Accumulator finalize through this helper, which is what keeps the two
// paths' refined answers bit-identical when their coarse argmax agrees.
func (e *Evaluator) refine2D(best, step float64, opts SearchOptions) (float64, float64) {
	sc := e.getScratch()
	defer e.putScratch(sc)
	bestPow := e.EvalAt(sc, best, 0)
	for r := 0; r < opts.refinements(); r++ {
		fine := step / 5
		lo := best - step
		for k := 0; k <= 10; k++ {
			phi := lo + float64(k)*fine
			if v := e.EvalAt(sc, phi, 0); v > bestPow {
				best, bestPow = phi, v
			}
		}
		step = fine
	}
	return geom.NormalizeAngle(best), bestPow
}

// ExhaustivePeak2D locates the peak on a single dense grid with the given
// step, evaluated in parallel across the grid. It exists as the ground-truth
// comparator for the coarse-to-fine search (ablation A2); it is O(n/step)
// and much slower at fine steps.
func ExhaustivePeak2D(snaps []phase.Snapshot, p Params, kind Kind, step float64) (float64, float64, error) {
	if step <= 0 {
		return 0, 0, fmt.Errorf("spectrum: non-positive step %v", step)
	}
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return 0, 0, err
	}
	j := ev.getJob()
	j.terms = ev.terms
	j.n = gridSteps(2*math.Pi, step)
	j.chunk = chunkTarget
	j.step = step
	idx, pow := ev.argmaxJob(j)
	ev.putJob(j)
	return float64(idx) * step, pow, nil
}

// Peak3D is one located maximum of a 3D profile.
type Peak3D struct {
	Azimuth float64
	Polar   float64
	Power   float64
}

// FindPeak3D locates the (azimuth, polar) pair maximizing the selected 3D
// profile, coarse-to-fine. Because the z-mirror of the true direction scores
// identically (§V-B), callers usually restrict interpretation to γ ≥ 0 or
// use dead-space rules; this function simply returns the global maximum it
// finds. Callers that already hold an Evaluator should use FindPeak3DEval.
func FindPeak3D(snaps []phase.Snapshot, p Params, kind Kind, opts SearchOptions) (Peak3D, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return Peak3D{}, err
	}
	return FindPeak3DEval(ev, opts), nil
}

// FindPeak3DEval is FindPeak3D on a prebuilt Evaluator. The global coarse
// scan costs |grid|·|snapshots|; it runs the batched row kernel on the
// strided snapshot subset (≤64), parallel across grid rows (each argmax
// chunk is exactly one polar row, so γ is fixed per row evaluation), and
// the refinement rounds use the full set.
func FindPeak3DEval(ev *Evaluator, opts SearchOptions) Peak3D {
	azStep := opts.coarseStep() * 4 // 3D coarse pass can be coarser; refined below
	polStep := opts.coarsePolarStep()
	nAz := gridSteps(2*math.Pi, azStep)
	nPol := int(math.Floor(math.Pi/polStep+1e-9)) + 1 // [-π/2, π/2] inclusive
	idx := ev.coarseArgmax3D(ev.coarse, nAz, nPol, azStep, polStep, opts)
	best := Peak3D{
		Azimuth: float64(idx%nAz) * azStep,
		Polar:   -math.Pi/2 + float64(idx/nAz)*polStep,
	}
	return ev.refine3D(best, azStep, polStep, opts)
}

// coarseArgmax3D is coarseArgmax2D over the az × polar grid (row-major,
// cell k = (k/nAz)-th polar row, (k%nAz)-th azimuth). KindQ searches
// default to the hierarchical scanner (the harmonic route would refold
// Bessel tables per polar row, which costs more than it saves); KindR
// honors PrescreenTopK exactly like the 2D path.
func (e *Evaluator) coarseArgmax3D(terms termSlices, nAz, nPol int, azStep, polStep float64, opts SearchOptions) int {
	if opts.Hierarchical.enabled(e.kind != KindR) {
		searchCounters.hier3D.Add(1)
		return e.hierarchicalArgmax3D(terms, nAz, nPol, azStep, polStep, opts)
	}
	if e.kind == KindR && opts.PrescreenTopK > 0 {
		searchCounters.prescreen3D.Add(1)
		return e.prescreenArgmax(terms, nAz*nPol, azStep, nAz, -math.Pi/2, polStep, opts.PrescreenTopK)
	}
	searchCounters.dense3D.Add(1)
	return e.denseArgmax3D(terms, nAz, nPol, azStep, polStep)
}

// denseArgmax3D is the full parallel scan over the az × polar grid, chunked
// by polar row.
func (e *Evaluator) denseArgmax3D(terms termSlices, nAz, nPol int, azStep, polStep float64) int {
	j := e.getJob()
	j.terms = terms
	j.n = nAz * nPol
	j.chunk = nAz
	j.step = azStep
	j.azCount = nAz
	j.polBase = -math.Pi / 2
	j.polStep = polStep
	idx, _ := e.argmaxJob(j)
	e.putJob(j)
	return idx
}

// refine3D is refine2D over (azimuth, polar); see there for the sharing
// rationale.
func (e *Evaluator) refine3D(best Peak3D, azStep, polStep float64, opts SearchOptions) Peak3D {
	// Re-score the coarse winner with the full snapshot set so the
	// refinement comparisons are apples-to-apples.
	sc := e.getScratch()
	defer e.putScratch(sc)
	best.Power = e.EvalAt(sc, best.Azimuth, best.Polar)
	for r := 0; r < opts.refinements(); r++ {
		fineAz, finePol := azStep/5, polStep/5
		azLo, polLo := best.Azimuth-azStep, best.Polar-polStep
		for i := 0; i <= 10; i++ {
			gamma := clampPolar(polLo + float64(i)*finePol)
			for k := 0; k <= 10; k++ {
				phi := azLo + float64(k)*fineAz
				if v := e.EvalAt(sc, phi, gamma); v > best.Power {
					best = Peak3D{Azimuth: phi, Polar: gamma, Power: v}
				}
			}
		}
		azStep, polStep = fineAz, finePol
	}
	best.Azimuth = geom.NormalizeAngle(best.Azimuth)
	return best
}

// prescreenArgmax implements SearchOptions.PrescreenTopK: one dense Q scan
// over the uniform grid (2D when azCount == 0, az × polar rows otherwise),
// then an R rescore of only the top-K Q cells. Ties in the rescore resolve
// to the lowest index, matching the full scan's argmax rule.
func (e *Evaluator) prescreenArgmax(terms termSlices, n int, step float64, azCount int, polBase, polStep float64, topK int) int {
	out := make([]float64, n)
	j := e.getJob()
	j.terms = terms
	j.kind = KindQ
	j.n = n
	j.step = step
	j.out = out
	if azCount > 0 {
		j.chunk = azCount
		j.azCount = azCount
		j.polBase = polBase
		j.polStep = polStep
	} else {
		j.chunk = chunkTarget
	}
	e.scanChunks(j)
	e.putJob(j)
	return e.rescoreTopK(terms, topKIndices(out, topK), step, azCount, polBase, polStep)
}

// rescoreTopK evaluates the full R formula at the given grid cells (indices
// ascending) and returns the winner. The streaming Accumulator reuses this
// for its prescreened finalize, so batch and streaming pick the same cell
// from the same Q shortlist.
func (e *Evaluator) rescoreTopK(terms termSlices, idxs []int, step float64, azCount int, polBase, polStep float64) int {
	sc := e.getScratch()
	defer e.putScratch(sc)
	bestIdx, bestVal := idxs[0], math.Inf(-1)
	for _, k := range idxs { // ascending index → lowest-index tie rule
		phi := float64(k) * step
		var gamma float64
		if azCount > 0 {
			phi = float64(k%azCount) * step
			gamma = polBase + float64(k/azCount)*polStep
		}
		if v := e.evalTerms(terms, sc, phi, gamma); v > bestVal {
			bestIdx, bestVal = k, v
		}
	}
	return bestIdx
}

// topKIndices returns the indices of the k largest values, in ascending
// index order. k is clamped to len(vals). Selection keeps a small
// descending-by-value window (k is a few handfuls), so the pass over n
// values is effectively linear.
func topKIndices(vals []float64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	type iv struct {
		idx int
		val float64
	}
	top := make([]iv, 0, k)
	for i, v := range vals {
		if len(top) == k && v <= top[k-1].val {
			continue
		}
		pos := len(top)
		for pos > 0 && v > top[pos-1].val {
			pos--
		}
		if len(top) < k {
			top = append(top, iv{})
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		top[pos] = iv{i, v}
	}
	idxs := make([]int, len(top))
	for i, t := range top {
		idxs[i] = t.idx
	}
	sort.Ints(idxs)
	return idxs
}

// clampPolar keeps a polar candidate inside [-π/2, π/2].
func clampPolar(g float64) float64 {
	if g < -math.Pi/2 {
		return -math.Pi / 2
	}
	if g > math.Pi/2 {
		return math.Pi / 2
	}
	return g
}
