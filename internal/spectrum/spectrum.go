// Package spectrum implements §IV and §V-B of the paper: the angle spectrum
// of a spinning tag. Given the phase snapshots of one rotation session and
// the disk geometry, it computes
//
//   - Q(φ), Q(φ,γ): the traditional relative-phasor AoA power profile
//     (Eqn. 7 and Eqn. 11), and
//   - R(φ), R(φ,γ): the paper's enhanced profile (Definitions 4.1 and 5.1)
//     that weights every snapshot by the Gaussian likelihood of its measured
//     relative phase under the candidate direction, sharpening the peak and
//     suppressing false candidates,
//
// plus coarse-to-fine peak search and profile-quality metrics used by the
// Fig. 6 / Fig. 8 experiments.
package spectrum

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

// DefaultSigma is the per-read phase noise standard deviation assumed by the
// R-profile weights (0.1 rad on COTS readers, per the paper).
const DefaultSigma = 0.1

// modelResidualSigma is the structured-residual allowance folded into the
// robust R-weight kernel (in quadrature with the thermal σ): far-field
// approximation error, orientation-calibration residue, mild multipath.
const modelResidualSigma = 0.15

// Params configures profile computation for one spinning tag.
type Params struct {
	// Disk is the nominal disk geometry from the registry.
	Disk spindisk.Disk
	// Sigma is the assumed phase-noise σ for the R weights. Zero means
	// DefaultSigma.
	Sigma float64
	// LiteralReference computes the R weights exactly as Definition 4.1
	// writes them: residuals against the first snapshot with σ·√2. That
	// form inherits the reference snapshot's own noise ε₁ into every
	// weight, which tilts the argmax by up to ≈ε₁/(4πr/λ) — over a
	// degree for σ = 0.1 rad. The default (false) removes the common
	// offset — the circular mean of the residuals — before weighting,
	// which cancels ε₁ while preserving the discriminative weighting.
	// Ablation A6 quantifies the difference.
	LiteralReference bool
}

// sigma returns the effective noise parameter.
func (p Params) sigma() float64 {
	if p.Sigma <= 0 {
		return DefaultSigma
	}
	return p.Sigma
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Disk.Validate(); err != nil {
		return err
	}
	if p.Disk.Radius == 0 {
		return fmt.Errorf("spectrum: zero disk radius gives no aperture")
	}
	if p.Sigma < 0 {
		return fmt.Errorf("spectrum: negative sigma")
	}
	return nil
}

// Kind selects which power formula a profile uses.
type Kind int

const (
	// KindQ is the traditional profile Q (Eqn. 7 / 11).
	KindQ Kind = iota + 1
	// KindR is the enhanced profile R (Definitions 4.1 / 5.1).
	KindR
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQ:
		return "Q"
	case KindR:
		return "R"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile is a sampled 2D angle spectrum.
type Profile struct {
	// Angles are the candidate azimuths φ in [0, 2π).
	Angles []float64
	// Power holds the (non-negative) profile values, parallel to Angles.
	Power []float64
}

// Profile3D is a sampled 3D angle spectrum over azimuth × polar angle.
type Profile3D struct {
	// Azimuths are the candidate azimuths φ in [0, 2π).
	Azimuths []float64
	// Polars are the candidate polar angles γ in [-π/2, π/2].
	Polars []float64
	// Power[i][j] is the profile value at (Polars[i], Azimuths[j]).
	Power [][]float64
}

// snapshotTerm caches the per-snapshot quantities every candidate angle
// reuses: the measured relative phasor and the aperture scale 4πr/λ.
type snapshotTerm struct {
	relPhase  float64 // θ_i − θ_1, wrapped to (-π, π]
	diskAngle float64 // a_i = ω t_i + θ0
	scale     float64 // 4π r / λ_i
}

// prepare converts snapshots into cached terms. It requires at least two
// snapshots; the first one is the phase reference that cancels θ_div.
func prepare(snaps []phase.Snapshot, p Params) ([]snapshotTerm, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) < 2 {
		return nil, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(snaps))
	}
	ref := snaps[0]
	terms := make([]snapshotTerm, len(snaps))
	for i, s := range snaps {
		if s.FrequencyHz <= 0 {
			return nil, fmt.Errorf("spectrum: snapshot %d has no carrier frequency", i)
		}
		terms[i] = snapshotTerm{
			relPhase:  mathx.WrapToPi(s.Phase - ref.Phase),
			diskAngle: p.Disk.Angle(s.Time),
			scale:     4 * math.Pi * p.Disk.Radius / s.Wavelength(),
		}
	}
	return terms, nil
}

// evalAt computes the selected power formula at candidate direction
// (phi, gamma); gamma = 0 reduces Eqn. 11/12 to Eqn. 7/8.
func evalAt(terms []snapshotTerm, kind Kind, sigma float64, literalRef bool, phi, gamma float64) float64 {
	cg := math.Cos(gamma)
	// c_i(φ,γ) = scale·(cos(a_1−φ) − cos(a_i−φ))·cos γ with the reference
	// term folded in per snapshot below.
	refAperture := terms[0].scale * math.Cos(terms[0].diskAngle-phi) * cg
	var sum complex128
	if kind != KindR {
		for _, t := range terms {
			aperture := t.scale * math.Cos(t.diskAngle-phi) * cg
			sum += cmplx.Rect(1, t.relPhase+aperture)
		}
		return cmplx.Abs(sum) / float64(len(terms))
	}

	// R profile: residual of each snapshot's relative phase against the
	// candidate direction's prediction.
	residuals := make([]float64, len(terms))
	apertures := make([]float64, len(terms))
	var rs, rc float64
	for i, t := range terms {
		aperture := t.scale * math.Cos(t.diskAngle-phi) * cg
		apertures[i] = aperture
		ci := refAperture - aperture // ϑ_i − ϑ_1 under candidate (φ,γ)
		res := mathx.WrapToPi(t.relPhase - ci)
		residuals[i] = res
		rs += math.Sin(res)
		rc += math.Cos(res)
	}
	var weightSigma, mu float64
	if literalRef {
		// Definition 4.1 verbatim: residuals are N(0, 2σ²) because they
		// carry both ε_i and the reference's ε₁.
		weightSigma = sigma * math.Sqrt2
	} else {
		// Robust variant: cancel the shared ε₁ (and any common model
		// offset) via the circular mean of the residuals, and widen the
		// kernel to cover the *structured* residuals real sessions carry
		// beyond thermal noise — the far-field approximation of Eqn. 2
		// (≈0.08 rad at r = 10 cm, D = 2.5 m), orientation-calibration
		// residue, and mild multipath. A kernel at exactly the thermal σ
		// over-trusts the model and latches onto whichever snapshot
		// subset the structured error happens to align (ablation A1
		// sweeps this).
		weightSigma = math.Hypot(sigma, modelResidualSigma)
		mu = math.Atan2(rs, rc)
	}
	for i, res := range residuals {
		w := mathx.GaussPDF(mathx.WrapToPi(res-mu), 0, weightSigma)
		sum += cmplx.Rect(w, terms[i].relPhase+apertures[i])
	}
	// The paper normalizes by 1/n (Eqn. 7, Definition 4.1): the Q profile
	// then peaks at 1 for a perfectly coherent stack, while the R profile
	// peaks near the Gaussian kernel's mode. Normalizing by Σw instead
	// would let a single accidentally-agreeing snapshot dominate at wrong
	// angles.
	return cmplx.Abs(sum) / float64(len(terms))
}

// Compute2D evaluates a 2D profile of the given kind over the angle grid.
func Compute2D(snaps []phase.Snapshot, p Params, kind Kind, angles []float64) (Profile, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return Profile{}, err
	}
	prof := Profile{
		Angles: append([]float64(nil), angles...),
		Power:  make([]float64, len(angles)),
	}
	for i, phi := range angles {
		prof.Power[i] = evalAt(terms, kind, p.sigma(), p.LiteralReference, phi, 0)
	}
	return prof, nil
}

// Compute3D evaluates a 3D profile of the given kind over the az × polar
// grid.
func Compute3D(snaps []phase.Snapshot, p Params, kind Kind, azimuths, polars []float64) (Profile3D, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return Profile3D{}, err
	}
	prof := Profile3D{
		Azimuths: append([]float64(nil), azimuths...),
		Polars:   append([]float64(nil), polars...),
		Power:    make([][]float64, len(polars)),
	}
	for i, gamma := range polars {
		row := make([]float64, len(azimuths))
		for j, phi := range azimuths {
			row[j] = evalAt(terms, kind, p.sigma(), p.LiteralReference, phi, gamma)
		}
		prof.Power[i] = row
	}
	return prof, nil
}

// UniformAngles returns n candidate azimuths evenly covering [0, 2π).
func UniformAngles(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	return out
}

// Peak returns the grid argmax of a 2D profile.
func (p Profile) Peak() (angle, power float64) {
	for i, v := range p.Power {
		if v > power {
			power = v
			angle = p.Angles[i]
		}
	}
	return angle, power
}

// Peak returns the grid argmax of a 3D profile.
func (p Profile3D) Peak() (azimuth, polar, power float64) {
	for i, row := range p.Power {
		for j, v := range row {
			if v > power {
				power = v
				azimuth = p.Azimuths[j]
				polar = p.Polars[i]
			}
		}
	}
	return azimuth, polar, power
}
