// Package spectrum implements §IV and §V-B of the paper: the angle spectrum
// of a spinning tag. Given the phase snapshots of one rotation session and
// the disk geometry, it computes
//
//   - Q(φ), Q(φ,γ): the traditional relative-phasor AoA power profile
//     (Eqn. 7 and Eqn. 11), and
//   - R(φ), R(φ,γ): the paper's enhanced profile (Definitions 4.1 and 5.1)
//     that weights every snapshot by the Gaussian likelihood of its measured
//     relative phase under the candidate direction, sharpening the peak and
//     suppressing false candidates,
//
// plus coarse-to-fine peak search and profile-quality metrics used by the
// Fig. 6 / Fig. 8 experiments.
package spectrum

import (
	"errors"
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

// DefaultSigma is the per-read phase noise standard deviation assumed by the
// R-profile weights (0.1 rad on COTS readers, per the paper).
const DefaultSigma = 0.1

// modelResidualSigma is the structured-residual allowance folded into the
// robust R-weight kernel (in quadrature with the thermal σ): far-field
// approximation error, orientation-calibration residue, mild multipath.
const modelResidualSigma = 0.15

// Params configures profile computation for one spinning tag.
type Params struct {
	// Disk is the nominal disk geometry from the registry.
	Disk spindisk.Disk
	// Sigma is the assumed phase-noise σ for the R weights. Zero means
	// DefaultSigma.
	Sigma float64
	// LiteralReference computes the R weights exactly as Definition 4.1
	// writes them: residuals against the first snapshot with σ·√2. That
	// form inherits the reference snapshot's own noise ε₁ into every
	// weight, which tilts the argmax by up to ≈ε₁/(4πr/λ) — over a
	// degree for σ = 0.1 rad. The default (false) removes the common
	// offset — the circular mean of the residuals — before weighting,
	// which cancels ε₁ while preserving the discriminative weighting.
	// Ablation A6 quantifies the difference.
	LiteralReference bool
}

// sigma returns the effective noise parameter.
func (p Params) sigma() float64 {
	if p.Sigma <= 0 {
		return DefaultSigma
	}
	return p.Sigma
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Disk.Validate(); err != nil {
		return err
	}
	if p.Disk.Radius == 0 {
		return fmt.Errorf("spectrum: zero disk radius gives no aperture")
	}
	if p.Sigma < 0 {
		return fmt.Errorf("spectrum: negative sigma")
	}
	return nil
}

// Kind selects which power formula a profile uses.
type Kind int

const (
	// KindQ is the traditional profile Q (Eqn. 7 / 11).
	KindQ Kind = iota + 1
	// KindR is the enhanced profile R (Definitions 4.1 / 5.1).
	KindR
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQ:
		return "Q"
	case KindR:
		return "R"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile is a sampled 2D angle spectrum.
type Profile struct {
	// Angles are the candidate azimuths φ in [0, 2π).
	Angles []float64
	// Power holds the (non-negative) profile values, parallel to Angles.
	Power []float64
}

// Profile3D is a sampled 3D angle spectrum over azimuth × polar angle.
type Profile3D struct {
	// Azimuths are the candidate azimuths φ in [0, 2π).
	Azimuths []float64
	// Polars are the candidate polar angles γ in [-π/2, π/2].
	Polars []float64
	// Power[i][j] is the profile value at (Polars[i], Azimuths[j]).
	Power [][]float64
}

// errNoFrequency reports a snapshot without a carrier frequency; prepare
// and Accumulator.Add wrap it with their own position context.
var errNoFrequency = errors.New("has no carrier frequency")

// snapshotTerm caches the per-snapshot quantities every candidate angle
// reuses: the measured relative phasor, the sin/cos trig table of the disk
// angle, and the aperture scale 4πr/λ.
type snapshotTerm struct {
	relPhase float64 // θ_i − θ_1, wrapped to (-π, π]
	cosA     float64 // cos a_i, a_i = ω t_i + θ0
	sinA     float64 // sin a_i
	scale    float64 // 4π r / λ_i
}

// makeTerm converts one snapshot into its cached term, relative to the
// session's phase reference. Both the batch prepare below and the streaming
// Accumulator build terms through this single function, so the two paths'
// per-snapshot arithmetic cannot drift.
func makeTerm(s, ref phase.Snapshot, p Params) (snapshotTerm, error) {
	if s.FrequencyHz <= 0 {
		return snapshotTerm{}, errNoFrequency
	}
	sinA, cosA := math.Sincos(p.Disk.Angle(s.Time))
	return snapshotTerm{
		relPhase: mathx.WrapToPi(s.Phase - ref.Phase),
		cosA:     cosA,
		sinA:     sinA,
		scale:    4 * math.Pi * p.Disk.Radius / s.Wavelength(),
	}, nil
}

// prepare converts snapshots into cached terms. It requires at least two
// snapshots; the first one is the phase reference that cancels θ_div.
func prepare(snaps []phase.Snapshot, p Params) ([]snapshotTerm, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) < 2 {
		return nil, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(snaps))
	}
	ref := snaps[0]
	terms := make([]snapshotTerm, len(snaps))
	for i, s := range snaps {
		t, err := makeTerm(s, ref, p)
		if err != nil {
			return nil, fmt.Errorf("spectrum: snapshot %d %w", i, err)
		}
		terms[i] = t
	}
	return terms, nil
}

// Compute2D evaluates a 2D profile of the given kind over the angle grid,
// in parallel across the grid (see Evaluator for the engine).
func Compute2D(snaps []phase.Snapshot, p Params, kind Kind, angles []float64) (Profile, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return Profile{}, err
	}
	return ev.Profile2D(angles), nil
}

// Compute3D evaluates a 3D profile of the given kind over the az × polar
// grid, in parallel across grid rows (see Evaluator for the engine).
func Compute3D(snaps []phase.Snapshot, p Params, kind Kind, azimuths, polars []float64) (Profile3D, error) {
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		return Profile3D{}, err
	}
	return ev.Profile3D(azimuths, polars), nil
}

// UniformAngles returns n candidate azimuths evenly covering [0, 2π).
func UniformAngles(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 2 * math.Pi * float64(i) / float64(n)
	}
	return out
}

// Peak returns the grid argmax of a 2D profile. Ties — including the
// degenerate all-zero profile — resolve to the first grid point, so the
// returned angle is always one of Angles; an empty profile reports zeros.
func (p Profile) Peak() (angle, power float64) {
	if len(p.Power) == 0 {
		return 0, 0
	}
	best := 0
	for i, v := range p.Power {
		if v > p.Power[best] {
			best = i
		}
	}
	return p.Angles[best], p.Power[best]
}

// Peak returns the grid argmax of a 3D profile. Ties — including the
// degenerate all-zero profile — resolve to the first grid point, so the
// returned angles are always on the grid; an empty profile reports zeros.
func (p Profile3D) Peak() (azimuth, polar, power float64) {
	bi, bj := -1, 0
	for i, row := range p.Power {
		for j, v := range row {
			if bi < 0 || v > p.Power[bi][bj] {
				bi, bj = i, j
			}
		}
	}
	if bi < 0 {
		return 0, 0, 0
	}
	return p.Azimuths[bj], p.Polars[bi], p.Power[bi][bj]
}
