package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

// TestAccumulatorCoarseTermLimitBoundary walks the streamed-vs-batch
// contract across the coarseTermLimit seam for every streaming mode: one
// under the limit and exactly at it the streamed sums ARE the batch coarse
// scan (the strided subset is the full term set), one past it and beyond the
// finalize must hand off to the batch fallback — and all four session sizes
// must return the batch search's bits.
func TestAccumulatorCoarseTermLimitBoundary(t *testing.T) {
	p := testParams()
	counts := []int{coarseTermLimit - 1, coarseTermLimit, coarseTermLimit + 1, coarseTermLimit + 16}
	for i, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(60 + int64(i)))
			for _, n := range counts {
				snaps := synth(p, geom.V3(-2.2, 1.3, 0), n, 0.8, 0.05, rng)
				pp := p
				pp.LiteralReference = tc.literal
				so := SearchOptions{PrescreenTopK: tc.prescreen}
				a, err := NewAccumulator2D(pp, tc.kind, so)
				if err != nil {
					t.Fatal(err)
				}
				feedAccumulator(t, a, snaps)
				gotAz, gotPow, err := a.FindPeak2D()
				if err != nil {
					t.Fatal(err)
				}
				ev, err := NewEvaluator(snaps, pp, tc.kind)
				if err != nil {
					t.Fatal(err)
				}
				wantAz, wantPow := FindPeak2DEval(ev, so)
				if gotAz != wantAz || gotPow != wantPow {
					t.Fatalf("%d snapshots: streamed (%v, %v) != batch (%v, %v)",
						n, gotAz, gotPow, wantAz, wantPow)
				}
			}
		})
	}
}

// TestAccumulator3DCoarseTermLimitBoundary is the 3D seam walk, on the
// enlarged test grid to keep the dense reference scans quick.
func TestAccumulator3DCoarseTermLimitBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := testParams()
	so := SearchOptions{CoarseStep: geom.Radians(1), CoarsePolarStep: geom.Radians(5)}
	for _, n := range []int{coarseTermLimit, coarseTermLimit + 1} {
		snaps := synth3D(p, geom.V3(-2.1, 0.4, 0.98), n, 0.05, rng)
		for _, kind := range []Kind{KindQ, KindR} {
			a, err := NewAccumulator3D(p, kind, so)
			if err != nil {
				t.Fatal(err)
			}
			feedAccumulator(t, a, snaps)
			got, err := a.FindPeak3D()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEvaluator(snaps, p, kind)
			if err != nil {
				t.Fatal(err)
			}
			if want := FindPeak3DEval(ev, so); got != want {
				t.Fatalf("%v, %d snapshots: streamed %+v != batch %+v", kind, n, got, want)
			}
		}
	}
}

// TestAccumulatorFallbackEngagesMidSession pins the crossing itself: a
// session finalized at exactly coarseTermLimit gives the streamed answer,
// and one more Add must invalidate it and route the next finalize through
// the batch fallback — both answers matching their batch counterparts.
func TestAccumulatorFallbackEngagesMidSession(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := testParams()
	snaps := synth(p, geom.V3(1.9, -1.4, 0), coarseTermLimit+1, 0.8, 0.05, rng)
	a, err := NewAccumulator2D(p, KindQ, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	feedAccumulator(t, a, snaps[:coarseTermLimit])
	gotAz, gotPow, err := a.FindPeak2D()
	if err != nil {
		t.Fatal(err)
	}
	evAt, err := NewEvaluator(snaps[:coarseTermLimit], p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	wantAz, wantPow := FindPeak2DEval(evAt, SearchOptions{})
	if gotAz != wantAz || gotPow != wantPow {
		t.Fatalf("at the limit: streamed (%v, %v) != batch (%v, %v)", gotAz, gotPow, wantAz, wantPow)
	}

	if err := a.Add(snaps[coarseTermLimit]); err != nil {
		t.Fatal(err)
	}
	gotAz, gotPow, err = a.FindPeak2D()
	if err != nil {
		t.Fatal(err)
	}
	evPast, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	wantAz, wantPow = FindPeak2DEval(evPast, SearchOptions{})
	if gotAz != wantAz || gotPow != wantPow {
		t.Fatalf("past the limit: streamed (%v, %v) != batch (%v, %v)", gotAz, gotPow, wantAz, wantPow)
	}
}

// TestAccumulatorHarmonicStreaming pins the opt-in O(harmonics) streaming
// fold: with HarmonicEval forced on, the accumulator allocates no per-cell
// Q sums at all, yet FindPeak2D still returns the batch search's bits — the
// finalize synthesizes, shortlists within 2·harmonicSlack, and
// exact-rescores exactly like the batch harmonic pass — and CoarseProfile
// stays within the documented harmonicSlack of the batch profile.
func TestAccumulatorHarmonicStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	p := testParams()
	so := SearchOptions{HarmonicEval: ToggleOn}
	dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}
	for trial := 0; trial < 20; trial++ {
		snaps := synth(p, randReader(rng, true), 8+rng.Intn(coarseTermLimit-7), rng.Float64()*2, rng.Float64()*0.15, rng)
		a, err := NewAccumulator2D(p, KindQ, so)
		if err != nil {
			t.Fatal(err)
		}
		if a.qRe != nil {
			t.Fatal("harmonic mode must not allocate per-cell Q sums")
		}
		feedAccumulator(t, a, snaps)
		gotAz, gotPow, err := a.FindPeak2D()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		wantAz, wantPow := FindPeak2DEval(ev, so)
		if gotAz != wantAz || gotPow != wantPow {
			t.Fatalf("trial %d: streamed harmonic (%v, %v) != batch harmonic (%v, %v)",
				trial, gotAz, gotPow, wantAz, wantPow)
		}
		denseAz, densePow := FindPeak2DEval(ev, dense)
		if gotAz != denseAz || gotPow != densePow {
			t.Fatalf("trial %d: streamed harmonic (%v, %v) != dense (%v, %v)",
				trial, gotAz, gotPow, denseAz, densePow)
		}
		prof, err := a.CoarseProfile()
		if err != nil {
			t.Fatal(err)
		}
		want := ev.Profile2D(prof.Angles)
		for i := range prof.Power {
			if d := math.Abs(prof.Power[i] - want.Power[i]); d > harmonicSlack {
				t.Fatalf("trial %d cell %d: synthesized %v vs batch %v (Δ=%v)",
					trial, i, prof.Power[i], want.Power[i], d)
			}
		}
	}

	// Past coarseTermLimit the harmonic finalize hands off to the batch
	// search like every other mode.
	snaps := synth(p, randReader(rng, true), coarseTermLimit+10, 0.8, 0.05, rng)
	a, err := NewAccumulator2D(p, KindQ, so)
	if err != nil {
		t.Fatal(err)
	}
	feedAccumulator(t, a, snaps)
	gotAz, gotPow, err := a.FindPeak2D()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}
	if wantAz, wantPow := FindPeak2DEval(ev, so); gotAz != wantAz || gotPow != wantPow {
		t.Fatalf("fallback: streamed (%v, %v) != batch (%v, %v)", gotAz, gotPow, wantAz, wantPow)
	}
}
