//go:build race

package spectrum

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip under it.
const raceEnabled = true
