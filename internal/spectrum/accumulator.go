package spectrum

import (
	"context"
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/sched"
)

// Accumulator folds snapshots into per-cell running sums over a coarse
// candidate grid — uniform by default, arbitrary via NewAccumulator2DAngles
// — the moment they arrive, so that by the time a spin session ends the
// coarse profile is already computed and only the argmax plus the local
// refinement rounds remain. Both profile kinds are additive in the
// snapshot index: Q(φ) sums one phasor per snapshot, and R(φ)'s
// Gaussian-likelihood weights are per-snapshot too (Definitions 4.1/5.1).
// Concretely, Add streams:
//
//   - KindQ: the phasor sums Σ e^{j(θ_k+aperture_k(cell))} per cell.
//   - KindR with LiteralReference: the weighted sums Σ w_k·e^{j(…)} — the
//     weight needs only the snapshot's own residual, so the whole profile
//     streams and Finalize is O(cells).
//   - KindR robust (default): the residual circular sums Σ sin/cos(res_k)
//     per cell. The robust weight subtracts the circular mean μ(cell) of
//     *all* residuals, which only exists at the end of the session, so
//     Finalize runs the weighting pass — still saving the streamed first
//     pass, and reduced to a top-K rescore when SearchOptions.PrescreenTopK
//     is set (the Q sums are then tracked during Add as well).
//
// The exact-trig path is bit-identical to the batch Evaluator's per-cell
// arithmetic: terms come from the same makeTerm, cells use the same
// float64(i)*step angles and plan-cached trig tables, and each cell's sum
// accumulates in snapshot order with the same expression shapes as
// evalQExact/evalRExact. Equivalence tests pin CoarseProfile against
// Profile2D/Profile3D bit for bit.
//
// An Accumulator is NOT safe for concurrent use: Add, Finalize-side calls,
// and CoarseProfile must run on one goroutine at a time (core.Stream gives
// it a single ingestion worker). Wide grids chunk each Add through the
// shared compute pool internally; chunks write disjoint cell ranges.
type Accumulator struct {
	params   Params
	kind     Kind
	opts     SearchOptions
	evalOpts []EvalOption
	fastTrig bool
	trackQ   bool // accumulate Q sums alongside robust-R pass-1 (prescreen)
	harmonic bool // fold harmonic coefficients instead of per-cell Q sums

	// Hoisted R-weight constants, mirroring Evaluator.
	weightSigma float64
	wNorm       float64
	wInv2Sig    float64

	// Grid geometry. 2D grids have nPol == 1 with polStep 0 and cosG[0] ==
	// cos(0); 3D grids are row-major (cell k = polar row k/nAz, azimuth
	// k%nAz), exactly like the batch coarse argmax.
	threeD           bool
	step             float64 // azimuth spacing (mean spacing in angles mode)
	polBase, polStep float64
	nAz, nPol, n     int
	// angles, when non-nil, is the arbitrary 2D candidate grid of
	// NewAccumulator2DAngles: cell k is angles[k] instead of k·step, the
	// trig tables below are built per angle (no plan-cache key exists), and
	// the finalize replays the batch angle-grid selection
	// (coarseArgmax2DAngles / FindPeak2DAnglesEval).
	angles []float64

	sinPhi, cosPhi []float64 // uniform azimuth trig table (plan cache)
	cosG           []float64 // cos γ per polar row

	// Per-cell running sums (allocated per mode).
	qRe, qIm       []float64 // Q phasor sums
	wRe, wIm       []float64 // literal-R weighted phasor sums
	resSin, resCos []float64 // robust-R residual circular sums
	refAper        []float64 // reference aperture per cell (KindR)

	// Harmonic-mode state (HarmonicEval == ToggleOn, 2D, both kinds —
	// KindR only without PrescreenTopK): the O(harmonics) coefficient fold
	// replaces the O(cells) per-cell fold.
	hcoeffs harmonicCoeffs
	hbess   []float64

	terms   []snapshotTerm
	ref     phase.Snapshot
	haveRef bool
	pending snapshotTerm // the term the in-flight chunked fold reads
	ev      *Evaluator   // lazily built at finalize, invalidated by Add
}

// NewAccumulator2D builds a streaming accumulator over the 2D coarse grid
// the batch peak search would scan for the same SearchOptions. opts also
// carries PrescreenTopK for the robust-R finalize. evalOpts accepts the
// same options as NewEvaluator (WithFastTrig) and is forwarded to the
// finalize Evaluator.
func NewAccumulator2D(p Params, kind Kind, opts SearchOptions, evalOpts ...EvalOption) (*Accumulator, error) {
	return newAccumulator(p, kind, opts, false, nil, evalOpts)
}

// NewAccumulator2DAngles is NewAccumulator2D over an arbitrary (typically
// non-uniform) 2D candidate grid: cell k accumulates at angles[k]. The
// uniform-grid restriction of the streaming finalize is lifted the same way
// the batch side lifts it — exact-path per-cell sums stay bit-identical to
// the batch dense scan over the same angles (the trig table is built per
// angle with the same kernel fillAngleTrig uses), and the finalize replays
// the batch angle-grid selection so FindPeak2D returns
// FindPeak2DAnglesEval's bits. The grid must be non-empty.
func NewAccumulator2DAngles(p Params, kind Kind, angles []float64, opts SearchOptions, evalOpts ...EvalOption) (*Accumulator, error) {
	if len(angles) == 0 {
		return nil, fmt.Errorf("spectrum: angle-grid accumulator needs a non-empty grid")
	}
	return newAccumulator(p, kind, opts, false, angles, evalOpts)
}

// NewAccumulator3D is NewAccumulator2D over the az × polar coarse grid of
// the batch 3D peak search.
func NewAccumulator3D(p Params, kind Kind, opts SearchOptions, evalOpts ...EvalOption) (*Accumulator, error) {
	return newAccumulator(p, kind, opts, true, nil, evalOpts)
}

func newAccumulator(p Params, kind Kind, opts SearchOptions, threeD bool, angles []float64, evalOpts []EvalOption) (*Accumulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Accumulator{
		params:      p,
		kind:        kind,
		opts:        opts,
		evalOpts:    evalOpts,
		weightSigma: p.weightSigma(),
		threeD:      threeD,
	}
	a.wNorm = 1 / (a.weightSigma * math.Sqrt(mathx.TwoPi))
	a.wInv2Sig = 1 / (2 * a.weightSigma * a.weightSigma)
	// Probe the EvalOptions through a throwaway Evaluator: the option type
	// is shared with NewEvaluator so callers configure both engines with
	// one vocabulary.
	var probe Evaluator
	for _, opt := range evalOpts {
		opt(&probe)
	}
	a.fastTrig = probe.fastTrig

	switch {
	case threeD:
		a.step = opts.coarseStep() * 4 // matches FindPeak3DEval
		a.polStep = opts.coarsePolarStep()
		a.polBase = -math.Pi / 2
		a.nAz = gridSteps(2*math.Pi, a.step)
		a.nPol = int(math.Floor(math.Pi/a.polStep+1e-9)) + 1
	case angles != nil:
		a.angles = append([]float64(nil), angles...)
		a.nAz = len(angles)
		a.nPol = 1
		// Refinement step only: FindPeak2DAnglesEval refines the winner at
		// the grid's mean spacing, and the streamed finalize must match it.
		a.step = 2 * math.Pi / float64(a.nAz)
	default:
		a.step = opts.coarseStep()
		a.nAz = gridSteps(2*math.Pi, a.step)
		a.nPol = 1
	}
	a.n = a.nAz * a.nPol

	a.sinPhi = make([]float64, a.nAz)
	a.cosPhi = make([]float64, a.nAz)
	switch {
	case a.angles != nil:
		// No uniform-step plan key exists for an arbitrary grid (counted
		// like fillAngleTrig's bypass); the per-angle build uses the same
		// kernel per trig mode as fillAngleTrig, so the streamed folds see
		// exactly the table bits the batch dense scan would.
		if a.nAz >= planMinN {
			planCache.nonUniformMiss.Add(1)
		}
		if a.fastTrig {
			for k, phi := range a.angles {
				a.sinPhi[k], a.cosPhi[k] = mathx.FastSincos(phi)
			}
		} else {
			for k, phi := range a.angles {
				a.sinPhi[k], a.cosPhi[k] = math.Sincos(phi)
			}
		}
	case a.nAz >= planMinN:
		planCache.fill(a.sinPhi, a.cosPhi, planKey{i0: 0, n: a.nAz, step: a.step, fast: a.fastTrig})
	default:
		buildUniformTrig(a.sinPhi, a.cosPhi, 0, a.step, a.fastTrig)
	}
	a.cosG = make([]float64, a.nPol)
	for r := range a.cosG {
		// Same expression chain as the batch row scan: γ = polBase +
		// row·polStep (0 in 2D), then cos γ.
		a.cosG[r] = math.Cos(a.polBase + float64(r)*a.polStep)
	}

	// Harmonic streaming is explicit opt-in (ToggleOn, not auto): the
	// default per-cell fold keeps CoarseProfile bit-identical to the batch
	// Profile2D, which the equivalence suite pins. With the harmonic fold,
	// Add costs O(harmonics) instead of O(cells) and CoarseProfile is
	// synthesized from the coefficients (within harmonicSlack of batch for
	// Q, rSlack for R — the two-pass kernel in allcells.go); the finalize
	// argmax still rescores exactly, so FindPeak2D returns the batch
	// search's bits either way. Both kinds stream the same Q-phasor
	// coefficients; a KindR finalize re-derives μ and the weights from
	// them. A KindR session with PrescreenTopK set keeps the per-cell fold:
	// its finalize must replay the streamed-Q prescreen selection, exactly
	// like the batch route.
	a.harmonic = !threeD && opts.HarmonicEval == ToggleOn &&
		(kind != KindR || opts.PrescreenTopK <= 0)
	a.trackQ = (kind != KindR || opts.PrescreenTopK > 0) && !a.harmonic
	if a.trackQ {
		a.qRe = make([]float64, a.n)
		a.qIm = make([]float64, a.n)
	}
	if kind == KindR && !a.harmonic {
		a.refAper = make([]float64, a.n)
		if p.LiteralReference {
			a.wRe = make([]float64, a.n)
			a.wIm = make([]float64, a.n)
		} else {
			a.resSin = make([]float64, a.n)
			a.resCos = make([]float64, a.n)
		}
	}
	return a, nil
}

// Snapshots returns how many snapshots have been folded in.
func (a *Accumulator) Snapshots() int { return len(a.terms) }

// accAddChunk adapts the in-flight Add fold to sched.Chunked without an
// allocation per Add.
type accAddChunk Accumulator

// RunChunk implements sched.Chunked for a chunked Add fold.
func (c *accAddChunk) RunChunk(lo, hi int) { (*Accumulator)(c).foldRange(lo, hi) }

// addChunkMin is the grid width below which Add folds inline: narrow grids
// finish faster than a pool round-trip.
const addChunkMin = 4 * chunkTarget

// Add folds one snapshot into the per-cell sums. The first snapshot becomes
// the session's phase reference, exactly like prepare. Snapshots must
// arrive in the order the batch path would sort them (ascending time) for
// the exact path to stay bit-identical to batch — the caller owns that
// guarantee (core.Stream checks it and falls back to batch otherwise).
func (a *Accumulator) Add(s phase.Snapshot) error {
	if !a.haveRef {
		a.ref = s
		a.haveRef = true
	}
	t, err := makeTerm(s, a.ref, a.params)
	if err != nil {
		return fmt.Errorf("spectrum: snapshot %d %w", len(a.terms), err)
	}
	a.ev = nil
	a.pending = t
	if len(a.terms) == 0 && a.refAper != nil {
		// Capture the reference aperture per cell once: it is a pure
		// function of the first term and the cell, recomputed identically
		// by evalRExact/evalRFast on every batch call.
		for k := 0; k < a.n; k++ {
			az, cg := a.cell(k)
			a.refAper[k] = t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
		}
	}
	a.terms = append(a.terms, t)
	if a.harmonic {
		a.foldHarmonic(t)
		return nil
	}
	if a.n >= addChunkMin && sched.Workers() > 1 {
		// Chunks write disjoint cell ranges; order never enters the
		// arithmetic (each cell's sum gets exactly one contribution per
		// Add), so pooled and inline folds are bit-identical.
		_ = sched.Run(context.Background(), (*accAddChunk)(a), a.n, chunkTarget)
	} else {
		a.foldRange(0, a.n)
	}
	return nil
}

// foldHarmonic folds one term into the harmonic coefficients — O(harmonics)
// instead of O(cells). The fold mirrors foldTermsHarmonic at γ = 0 term for
// term (w = scale·cos 0 = scale, same bits), so after n ≤ coarseTermLimit
// Adds the coefficients are bit-identical to the batch fold over ev.coarse.
func (a *Accumulator) foldHarmonic(t snapshotTerm) {
	w := t.scale
	need := harmonicsNeeded(w)
	a.hcoeffs.ensure(need)
	if cap(a.hbess) < need+1 {
		a.hbess = make([]float64, need+1)
	}
	bess := a.hbess[:need+1]
	besselJArray(w, bess)
	a.hcoeffs.foldTerm(t.relPhase, t.cosA, t.sinA, bess)
}

// cell resolves a cell index to its azimuth-table index and cos γ.
func (a *Accumulator) cell(k int) (az int, cg float64) {
	if a.nPol == 1 {
		return k, a.cosG[0]
	}
	return k % a.nAz, a.cosG[k/a.nAz]
}

// foldRange folds the pending term into cells [lo, hi). Each branch mirrors
// the expression shapes of its batch counterpart (evalQExact/evalQFast,
// evalRExact/evalRFast) so exact-path sums match bit for bit.
func (a *Accumulator) foldRange(lo, hi int) {
	t := a.pending
	switch {
	case a.kind != KindR:
		a.foldQ(t, lo, hi)
	case a.params.LiteralReference:
		a.foldRLiteral(t, lo, hi)
	default:
		a.foldRRobust(t, lo, hi)
	}
}

func (a *Accumulator) foldQ(t snapshotTerm, lo, hi int) {
	if a.nPol == 1 {
		a.foldQ2D(t, lo, hi)
		return
	}
	if a.fastTrig {
		for k := lo; k < hi; k++ {
			az, cg := a.cell(k)
			aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
			s, c := mathx.FastSincos(t.relPhase + aperture)
			a.qRe[k] += c
			a.qIm[k] += s
		}
		return
	}
	for k := lo; k < hi; k++ {
		az, cg := a.cell(k)
		aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
		s, c := math.Sincos(t.relPhase + aperture)
		a.qRe[k] += c
		a.qIm[k] += s
	}
}

// foldQ2D is the single-polar-row specialization of foldQ: the cell →
// (azimuth, cos γ) mapping collapses to the identity, so the per-cell
// branch, division and modulo hoist out of the loop, and reslicing every
// table to the [lo,hi) window retires the bounds checks. The folded
// expression is byte-for-byte the generic one — exact-path sums keep their
// batch bits.
func (a *Accumulator) foldQ2D(t snapshotTerm, lo, hi int) {
	cg := a.cosG[0]
	cosPhi := a.cosPhi[lo:hi]
	sinPhi := a.sinPhi[lo:hi]
	qRe := a.qRe[lo:hi]
	qIm := a.qIm[lo:hi]
	if a.fastTrig {
		for i := range cosPhi {
			aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
			s, c := mathx.FastSincos(t.relPhase + aperture)
			qRe[i] += c
			qIm[i] += s
		}
		return
	}
	for i := range cosPhi {
		aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
		s, c := math.Sincos(t.relPhase + aperture)
		qRe[i] += c
		qIm[i] += s
	}
}

// foldRLiteral streams the literal-reference R sums completely: with μ ≡ 0
// the weight depends only on the snapshot's own residual, and res−μ is
// bitwise res (x−0.0 == x for every float64), so the streamed weight equals
// the batch weighting-pass weight.
func (a *Accumulator) foldRLiteral(t snapshotTerm, lo, hi int) {
	if a.nPol == 1 {
		a.foldRLiteral2D(t, lo, hi)
		return
	}
	if a.fastTrig {
		for k := lo; k < hi; k++ {
			az, cg := a.cell(k)
			aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
			res := wrapToPiFast(t.relPhase - (a.refAper[k] - aperture))
			d := wrapToPiFast(res)
			w := a.wNorm * math.Exp(-d*d*a.wInv2Sig)
			s, c := mathx.FastSincos(t.relPhase + aperture)
			a.wRe[k] += w * c
			a.wIm[k] += w * s
			if a.trackQ {
				a.qRe[k] += c
				a.qIm[k] += s
			}
		}
		return
	}
	for k := lo; k < hi; k++ {
		az, cg := a.cell(k)
		aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
		ci := a.refAper[k] - aperture
		res := mathx.WrapToPi(t.relPhase - ci)
		w := mathx.GaussPDF(mathx.WrapToPi(res), 0, a.weightSigma)
		s, c := math.Sincos(t.relPhase + aperture)
		a.wRe[k] += w * c
		a.wIm[k] += w * s
		if a.trackQ {
			a.qRe[k] += c
			a.qIm[k] += s
		}
	}
}

// foldRLiteral2D is the single-polar-row specialization of foldRLiteral;
// see foldQ2D for the restructuring rules. The trackQ branch stays inside
// the loop — it is loop-invariant and predicted perfectly — because
// splitting it would double the variants for no measured win.
func (a *Accumulator) foldRLiteral2D(t snapshotTerm, lo, hi int) {
	cg := a.cosG[0]
	cosPhi := a.cosPhi[lo:hi]
	sinPhi := a.sinPhi[lo:hi]
	refAper := a.refAper[lo:hi]
	wRe := a.wRe[lo:hi]
	wIm := a.wIm[lo:hi]
	trackQ := a.trackQ
	var qRe, qIm []float64
	if trackQ {
		qRe = a.qRe[lo:hi]
		qIm = a.qIm[lo:hi]
	}
	if a.fastTrig {
		for i := range cosPhi {
			aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
			res := wrapToPiFast(t.relPhase - (refAper[i] - aperture))
			d := wrapToPiFast(res)
			w := a.wNorm * math.Exp(-d*d*a.wInv2Sig)
			s, c := mathx.FastSincos(t.relPhase + aperture)
			wRe[i] += w * c
			wIm[i] += w * s
			if trackQ {
				qRe[i] += c
				qIm[i] += s
			}
		}
		return
	}
	for i := range cosPhi {
		aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
		ci := refAper[i] - aperture
		res := mathx.WrapToPi(t.relPhase - ci)
		w := mathx.GaussPDF(mathx.WrapToPi(res), 0, a.weightSigma)
		s, c := math.Sincos(t.relPhase + aperture)
		wRe[i] += w * c
		wIm[i] += w * s
		if trackQ {
			qRe[i] += c
			qIm[i] += s
		}
	}
}

// foldRRobust streams the robust-R first pass — the residual circular sums
// the per-cell mean μ is taken over — plus the Q sums when the finalize
// will prescreen.
func (a *Accumulator) foldRRobust(t snapshotTerm, lo, hi int) {
	if a.nPol == 1 {
		a.foldRRobust2D(t, lo, hi)
		return
	}
	if a.fastTrig {
		for k := lo; k < hi; k++ {
			az, cg := a.cell(k)
			aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
			res := wrapToPiFast(t.relPhase - (a.refAper[k] - aperture))
			s, c := mathx.FastSincos(res)
			a.resSin[k] += s
			a.resCos[k] += c
			if a.trackQ {
				sq, cq := mathx.FastSincos(t.relPhase + aperture)
				a.qRe[k] += cq
				a.qIm[k] += sq
			}
		}
		return
	}
	for k := lo; k < hi; k++ {
		az, cg := a.cell(k)
		aperture := t.scale * (t.cosA*a.cosPhi[az] + t.sinA*a.sinPhi[az]) * cg
		ci := a.refAper[k] - aperture
		res := mathx.WrapToPi(t.relPhase - ci)
		s, c := math.Sincos(res)
		a.resSin[k] += s
		a.resCos[k] += c
		if a.trackQ {
			sq, cq := math.Sincos(t.relPhase + aperture)
			a.qRe[k] += cq
			a.qIm[k] += sq
		}
	}
}

// foldRRobust2D is the single-polar-row specialization of foldRRobust; see
// foldQ2D for the restructuring rules.
func (a *Accumulator) foldRRobust2D(t snapshotTerm, lo, hi int) {
	cg := a.cosG[0]
	cosPhi := a.cosPhi[lo:hi]
	sinPhi := a.sinPhi[lo:hi]
	refAper := a.refAper[lo:hi]
	resSin := a.resSin[lo:hi]
	resCos := a.resCos[lo:hi]
	trackQ := a.trackQ
	var qRe, qIm []float64
	if trackQ {
		qRe = a.qRe[lo:hi]
		qIm = a.qIm[lo:hi]
	}
	if a.fastTrig {
		for i := range cosPhi {
			aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
			res := wrapToPiFast(t.relPhase - (refAper[i] - aperture))
			s, c := mathx.FastSincos(res)
			resSin[i] += s
			resCos[i] += c
			if trackQ {
				sq, cq := mathx.FastSincos(t.relPhase + aperture)
				qRe[i] += cq
				qIm[i] += sq
			}
		}
		return
	}
	for i := range cosPhi {
		aperture := t.scale * (t.cosA*cosPhi[i] + t.sinA*sinPhi[i]) * cg
		ci := refAper[i] - aperture
		res := mathx.WrapToPi(t.relPhase - ci)
		s, c := math.Sincos(res)
		resSin[i] += s
		resCos[i] += c
		if trackQ {
			sq, cq := math.Sincos(t.relPhase + aperture)
			qRe[i] += cq
			qIm[i] += sq
		}
	}
}

// Evaluator returns the full-term batch engine over the accumulated
// snapshots, for refinement rounds and rescoring. It is (re)built lazily
// after the last Add.
func (a *Accumulator) Evaluator() (*Evaluator, error) {
	if len(a.terms) < 2 {
		return nil, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(a.terms))
	}
	if a.ev == nil {
		a.ev = newEvaluatorFromTerms(a.terms, a.params, a.kind, a.evalOpts...)
	}
	return a.ev, nil
}

// accFinishChunk adapts the finalize finishing pass to sched.Chunked.
type accFinishChunk struct {
	a   *Accumulator
	out []float64
}

// RunChunk implements sched.Chunked for the chunked finishing pass.
func (c *accFinishChunk) RunChunk(lo, hi int) { c.a.finishRange(c.out, lo, hi) }

// finish computes the per-cell profile values from the accumulated sums
// into out, chunking wide grids through the shared pool. The robust-R
// branch is the expensive one (one weighting pass over all terms per cell);
// Q and literal-R are O(1) per cell.
func (a *Accumulator) finish(out []float64) {
	if a.harmonic {
		// Harmonic mode has no per-cell sums; synthesize from the
		// coefficients (within harmonicSlack of the batch profile for Q,
		// rSlack for R). The R synthesis runs on the finalize Evaluator's
		// full term set — the same terms the coefficients folded.
		if a.kind == KindR {
			ev, err := a.Evaluator()
			if err != nil {
				return // <2 snapshots; callers guard before finish
			}
			sc := ev.getScratch()
			ev.synthRowR(ev.terms, &a.hcoeffs, sc, a.cosG[0], a.sinPhi, a.cosPhi, out, false)
			ev.putScratch(sc)
			return
		}
		a.hcoeffs.synthesize(out, a.sinPhi, a.cosPhi)
		return
	}
	heavy := a.kind == KindR && !a.params.LiteralReference
	if (heavy || a.n >= addChunkMin) && sched.Workers() > 1 {
		c := accFinishChunk{a: a, out: out}
		_ = sched.Run(context.Background(), &c, a.n, chunkTarget)
		return
	}
	a.finishRange(out, 0, a.n)
}

// finishRange finishes cells [lo, hi). Every expression mirrors the tail of
// its batch kernel: Q divides the phasor magnitude by n exactly like
// evalRowQ, and robust R replays evalRExact's weighting pass with the
// streamed circular sums substituted for the batch-recomputed ones (they
// are the same bits — same contributions, same order).
func (a *Accumulator) finishRange(out []float64, lo, hi int) {
	nTerms := len(a.terms)
	switch {
	case a.kind != KindR:
		if a.fastTrig {
			inv := 1 / float64(nTerms)
			for k := lo; k < hi; k++ {
				out[k] = math.Sqrt(a.qRe[k]*a.qRe[k]+a.qIm[k]*a.qIm[k]) * inv
			}
			return
		}
		for k := lo; k < hi; k++ {
			out[k] = math.Hypot(a.qRe[k], a.qIm[k]) / float64(nTerms)
		}
	case a.params.LiteralReference:
		if a.fastTrig {
			for k := lo; k < hi; k++ {
				out[k] = math.Sqrt(a.wRe[k]*a.wRe[k]+a.wIm[k]*a.wIm[k]) / float64(nTerms)
			}
			return
		}
		for k := lo; k < hi; k++ {
			out[k] = math.Hypot(a.wRe[k], a.wIm[k]) / float64(nTerms)
		}
	default:
		for k := lo; k < hi; k++ {
			out[k] = a.finishRobustCell(k)
		}
	}
}

// finishRobustCell runs the robust-R weighting pass for one cell, using the
// streamed circular sums for μ.
func (a *Accumulator) finishRobustCell(k int) float64 {
	az, cg := a.cell(k)
	cosPhi, sinPhi := a.cosPhi[az], a.sinPhi[az]
	refAperture := a.refAper[k]
	mu := math.Atan2(a.resSin[k], a.resCos[k])
	var sumRe, sumIm float64
	if a.fastTrig {
		for _, t := range a.terms {
			aperture := t.scale * (t.cosA*cosPhi + t.sinA*sinPhi) * cg
			res := wrapToPiFast(t.relPhase - (refAperture - aperture))
			d := wrapToPiFast(res - mu)
			w := a.wNorm * math.Exp(-d*d*a.wInv2Sig)
			s, c := mathx.FastSincos(t.relPhase + aperture)
			sumRe += w * c
			sumIm += w * s
		}
		return math.Sqrt(sumRe*sumRe+sumIm*sumIm) / float64(len(a.terms))
	}
	for _, t := range a.terms {
		aperture := t.scale * (t.cosA*cosPhi + t.sinA*sinPhi) * cg
		ci := refAperture - aperture
		res := mathx.WrapToPi(t.relPhase - ci)
		w := mathx.GaussPDF(mathx.WrapToPi(res-mu), 0, a.weightSigma)
		s, c := math.Sincos(t.relPhase + aperture)
		sumRe += w * c
		sumIm += w * s
	}
	return math.Hypot(sumRe, sumIm) / float64(len(a.terms))
}

// finishQ computes the per-cell Q values from the tracked Q sums (prescreen
// finalize path).
func (a *Accumulator) finishQ(out []float64) {
	nTerms := len(a.terms)
	if a.fastTrig {
		inv := 1 / float64(nTerms)
		for k := range out {
			out[k] = math.Sqrt(a.qRe[k]*a.qRe[k]+a.qIm[k]*a.qIm[k]) * inv
		}
		return
	}
	for k := range out {
		out[k] = math.Hypot(a.qRe[k], a.qIm[k]) / float64(nTerms)
	}
}

// CoarseProfile returns the accumulated 2D profile over the uniform coarse
// grid (angles φ_i = i·step). Exact-trig values are bit-identical to
// Evaluator.Profile2D over the same angles and full term set — except in
// harmonic mode (HarmonicEval ToggleOn), where the profile is synthesized
// from the streamed coefficients and lands within harmonicSlack (Q) /
// rSlack (R) of batch.
func (a *Accumulator) CoarseProfile() (Profile, error) {
	if a.threeD {
		return Profile{}, fmt.Errorf("spectrum: 3D accumulator has no 2D profile")
	}
	if len(a.terms) < 2 {
		return Profile{}, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(a.terms))
	}
	prof := Profile{
		Angles: make([]float64, a.n),
		Power:  make([]float64, a.n),
	}
	if a.angles != nil {
		copy(prof.Angles, a.angles)
	} else {
		for i := range prof.Angles {
			prof.Angles[i] = float64(i) * a.step
		}
	}
	a.finish(prof.Power)
	return prof, nil
}

// CoarseProfile3D is CoarseProfile over the az × polar grid.
func (a *Accumulator) CoarseProfile3D() (Profile3D, error) {
	if !a.threeD {
		return Profile3D{}, fmt.Errorf("spectrum: 2D accumulator has no 3D profile")
	}
	if len(a.terms) < 2 {
		return Profile3D{}, fmt.Errorf("spectrum: need ≥2 snapshots, have %d", len(a.terms))
	}
	azimuths := make([]float64, a.nAz)
	for i := range azimuths {
		azimuths[i] = float64(i) * a.step
	}
	polars := make([]float64, a.nPol)
	for i := range polars {
		polars[i] = a.polBase + float64(i)*a.polStep
	}
	prof := newProfile3D(azimuths, polars)
	flat := make([]float64, a.n)
	a.finish(flat)
	for i := range prof.Power {
		copy(prof.Power[i], flat[i*a.nAz:(i+1)*a.nAz])
	}
	return prof, nil
}

// coarseArgmaxAccum picks the coarse winner from the accumulated sums. The
// selection replays the batch coarse argmax rules — strict > with the
// lowest index winning ties, and the Q-prescreen + R top-K rescore when
// configured — but on the streamed sums, so the expensive grid scan the
// batch path runs after the session is already paid for.
func (a *Accumulator) coarseArgmaxAccum(ev *Evaluator) int {
	if a.harmonic {
		// Replay the batch harmonicArgmax2D/harmonicArgmaxR2D selection on
		// the streamed coefficients: synthesize, shortlist within 2·slack of
		// the synthesized maximum, exact-rescore the shortlist. This path
		// only runs for sessions within coarseTermLimit (see FindPeak2D), so
		// ev.coarse is the full streamed set and coefficients, trig tables,
		// synthesized values, and rescore terms all match the batch pass bit
		// for bit — the pick does too.
		searchCounters.streamSynth.Add(1)
		if a.angles != nil {
			// Angle-grid finalize: the batch selection over an arbitrary
			// grid is nufftSelectQ/R (coarseArgmax2DAngles); running the
			// very same selection code on the streamed coefficients makes
			// the streamed pick bit-identical to the batch one.
			hs := harmPool.Get().(*harmonicScratch)
			var idx int
			if a.kind == KindR {
				idx = ev.nufftSelectR(ev.coarse, &a.hcoeffs, a.angles, hs)
			} else {
				idx = ev.nufftSelectQ(ev.coarse, &a.hcoeffs, a.angles, hs)
			}
			harmPool.Put(hs)
			return idx
		}
		vals := make([]float64, a.n)
		slack := harmonicSlack
		if a.kind == KindR {
			sc := ev.getScratch()
			ev.synthRowR(ev.coarse, &a.hcoeffs, sc, a.cosG[0], a.sinPhi, a.cosPhi, vals, true)
			ev.putScratch(sc)
			slack = rSlack + rCoarseRel*ev.wNorm
		} else {
			a.hcoeffs.synthesize(vals, a.sinPhi, a.cosPhi)
		}
		maxV := math.Inf(-1)
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		var cand []int
		for k, v := range vals {
			if v >= maxV-2*slack {
				cand = append(cand, k)
			}
		}
		return ev.rescoreTopK(ev.coarse, cand, a.step, 0, 0, 0)
	}
	if a.kind == KindR && a.opts.PrescreenTopK > 0 && a.angles == nil {
		// Batch R searches with prescreen shortlist by Q then rescore with
		// the full R formula; replaying that selection on the streamed Q
		// sums keeps the two paths' picks identical (including when the Q
		// and R shortlists diverge for literal-reference sessions). The
		// batch angle-grid route has no prescreen pass, so angles-mode
		// sessions fall through to the dense finish instead.
		qVals := make([]float64, a.n)
		a.finishQ(qVals)
		return ev.rescoreTopK(ev.coarse, topKIndices(qVals, a.opts.PrescreenTopK), a.step, a.azCountArg(), a.polBase, a.polStep)
	}
	vals := make([]float64, a.n)
	a.finish(vals)
	best, bestVal := 0, math.Inf(-1)
	for k, v := range vals {
		if v > bestVal {
			best, bestVal = k, v
		}
	}
	return best
}

// azCountArg returns the azCount argument batch helpers expect: the row
// width in 3D, 0 in 2D.
func (a *Accumulator) azCountArg() int {
	if a.threeD {
		return a.nAz
	}
	return 0
}

// FindPeak2D finalizes the accumulated session into the refined 2D peak,
// running the same refinement rounds (on the same full-term Evaluator
// machinery) as the batch FindPeak2DEval. The result is bit-identical to
// the batch search for every session: up to coarseTermLimit snapshots the
// streamed sums ARE the batch coarse scan (the strided subset is the full
// set), and beyond that — where the batch coarse pass scores only the
// strided subset, which no streaming pass can reproduce because the stride
// depends on the final count — the finalize falls back to the batch search
// itself, trading the streamed head start for the guarantee.
func (a *Accumulator) FindPeak2D() (float64, float64, error) {
	if a.threeD {
		return 0, 0, fmt.Errorf("spectrum: 3D accumulator cannot run a 2D peak search")
	}
	ev, err := a.Evaluator()
	if err != nil {
		return 0, 0, err
	}
	if len(a.terms) > coarseTermLimit {
		if a.angles != nil {
			az, pow := FindPeak2DAnglesEval(ev, a.angles, a.opts)
			return az, pow, nil
		}
		az, pow := FindPeak2DEval(ev, a.opts)
		return az, pow, nil
	}
	idx := a.coarseArgmaxAccum(ev)
	base := float64(idx) * a.step
	if a.angles != nil {
		base = a.angles[idx]
	}
	az, pow := ev.refine2D(base, a.step, a.opts)
	return az, pow, nil
}

// FindPeak3D is FindPeak2D over the az × polar grid, with the same
// bit-identity contract (including the batch fallback past coarseTermLimit).
func (a *Accumulator) FindPeak3D() (Peak3D, error) {
	if !a.threeD {
		return Peak3D{}, fmt.Errorf("spectrum: 2D accumulator cannot run a 3D peak search")
	}
	ev, err := a.Evaluator()
	if err != nil {
		return Peak3D{}, err
	}
	if len(a.terms) > coarseTermLimit {
		return FindPeak3DEval(ev, a.opts), nil
	}
	idx := a.coarseArgmaxAccum(ev)
	best := Peak3D{
		Azimuth: float64(idx%a.nAz) * a.step,
		Polar:   a.polBase + float64(idx/a.nAz)*a.polStep,
	}
	return ev.refine3D(best, a.step, a.polStep, a.opts), nil
}
