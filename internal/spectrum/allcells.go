package spectrum

import (
	"math"

	"github.com/tagspin/tagspin/internal/mathx"
)

// This file holds the all-cells transform: full-profile synthesis through
// the harmonic (Jacobi–Anger) expansion for both profile kinds, extending
// harmonic.go's argmax-only Q route to whole profiles and to KindR.
//
// Q is immediate: the phasor sum S(φ) is the bandlimited trigonometric
// polynomial harmonic.go already folds, so a full Q profile is one
// O(snaps·H) fold plus an O(cells·H) synthesis.
//
// R is not bandlimited — the Gaussian residual weights
// w_i(φ) = N(wrap(res_i(φ) − μ(φ)); σ_w) are only piecewise smooth in φ, so
// no usable harmonic expansion of R itself exists (DESIGN.md §13 works the
// rejected expansions: the kernel's own Fourier series needs ~20 harmonics
// and each circular moment M_q another q·2z + 20, ~1300 coefficient pairs
// per cell — more flops than the dense scan it would replace). What *is*
// bandlimited is everything the weights depend on:
//
//	res_i(φ) = wrap(ψ_i(φ) − refAper(φ)),  ψ_i(φ) = ρ_i + z_i·cos(φ−a_i)·cos γ,
//	μ(φ)     = arg Σ_i e^{j·res_i(φ)} = arg( e^{−j·refAper(φ)} · S(φ) ),
//
// so the two-pass structure synthesizes pass one and only *evaluates* pass
// two. Per cell: (1) read the complex S(φ_k) off the harmonic coefficients
// (O(H), no trig), rotate by the closed-form reference aperture, and take
// atan2 for μ̂; (2) run the weighting pass over the snapshot terms with the
// phase ψ_i linear in (cos φ_k, sin φ_k) — one fused wrap against the
// combined offset refAper+μ̂, one inlined FastExpNegCore for the Gaussian,
// one wrapped-range phasor kernel (wrappedSincos, no range reduction), and
// an early skip when the Gaussian argument is past the synthesis flush
// cutoff (rFlushX). That drops every per-cell
// math.Sincos/math.Exp/math.Mod of the dense R scan; the remaining pass-two
// arithmetic is a short branch-light multiply-add chain over the SoA term
// slices.
//
// Exactness: the synthesized values carry bounded error (rSlack below), so
// argmax routes use the established shortlist-then-exact-rescore guarantee
// from harmonic.go — collect every cell within 2·rSlack of the synthesized
// maximum, rescore those few with the dense per-cell formula — making the
// returned peak bit-identical to the dense scan's. Full-profile routes
// (Profile2DIntoOpt/Profile3DOpt) document the value slack instead.

// rSlack bounds |synthesized − dense| per cell for the two-pass R synthesis,
// in either trig mode of the dense comparator. Budget: wrapped-range phasors
// ≤ mean(w)·1.5·wrappedSincosMaxErr ≈ 7e-9, FastExpNeg weights ≤
// wNorm·FastExpNegMaxErr ≈ 2.2e-8, the rFlushX weight tail ≤ wNorm·e^(−24)
// ≈ 1e-8 even at extreme user σ, μ̂ error ≤ (synthesis 1e-12 /
// muGuardFrac)·max|∂R/∂μ| ≈ 1e-7 (guarded below), wrap and association
// rounding ≲1e-13 — about 2e-7 against an exact comparator, plus the fast
// path's own documented ≲1.5e-6 when the comparator runs WithFastTrig.
// 2.5e-6 covers both with margin; the randomized slack test pins the
// exact-mode bound at a fraction of it.
const rSlack = 2.5e-6

// ProfileSlackQ and ProfileSlackR are the exported per-cell value slacks of
// the option-gated profile synthesis (Profile2DIntoOpt / Profile3DOpt)
// relative to the exact dense profile — the numbers the API contract and the
// bench preflight check against.
const (
	ProfileSlackQ = harmonicSlack
	ProfileSlackR = rSlack
)

// wrappedSincos computes (sin d, cos d) for a residual already wrapped to
// |d| ≤ π (+rounding), taking the precomputed d² so the weighting pass
// shares it with the Gaussian argument. Unlike mathx.FastSincos there is no
// range reduction and no quadrant switch — the switch's data-dependent
// branch mispredicts on essentially every term of the weighting pass, where
// residuals hop across quadrants cell to cell — just two polynomial chains
// fit for the full wrapped range. The coefficients are least-squares fits
// over Chebyshev-distributed nodes on [−π, π] (near-minimax): unlike the
// Taylor series, whose error piles up at the wrap boundary, the fit spreads
// the error across the range, which is why degree 13 (sin) and 14 (cos)
// beat the degree-17/18 Taylor chains by more than an order of magnitude
// while costing four fewer multiply-adds. TestWrappedSincos pins the ≤
// wrappedSincosMaxErr bound on the full range; the rSlack budget consumes
// it as the phasor term.
func wrappedSincos(d, d2 float64) (sin, cos float64) {
	sin = d * (sinC1 + d2*(sinC3+d2*(sinC5+d2*(sinC7+d2*(sinC9+d2*(sinC11+d2*sinC13))))))
	cos = cosC0 + d2*(cosC2+d2*(cosC4+d2*(cosC6+d2*(cosC8+d2*(cosC10+d2*(cosC12+d2*cosC14))))))
	return sin, cos
}

// wrappedSincosMaxErr bounds |wrappedSincos − math.Sincos| on |d| ≤ π: the
// fits scan at ≤1.5e-9 over two million points; 2e-9 adds Horner-rounding
// margin.
const wrappedSincosMaxErr = 2e-9

const (
	sinC1  = 0.999999996377795
	sinC3  = -0.16666665080850687
	sinC5  = 0.008333314278752557
	sinC7  = -0.00019840286404354516
	sinC9  = 2.753161674539678e-06
	sinC11 = -2.4694177257260836e-08
	sinC13 = 1.3504316538636013e-10

	cosC0  = 0.9999999986162815
	cosC2  = -0.49999998665055884
	cosC4  = 0.041666645056016825
	cosC6  = -0.0013888754429391766
	cosC8  = 2.4797484198345088e-05
	cosC10 = -2.749006087067763e-07
	cosC12 = 2.0279063724017644e-09
	cosC14 = -8.795317299676032e-12
)

// coarseWrappedSincos is the shortlist-grade sibling of wrappedSincos:
// degree-9 sin and degree-10 cos fits over the same Chebyshev-node scheme,
// four fewer multiply-adds per call at ≤ coarseSincosMaxErr. Only the
// argmax route uses it — the coarse synthesized values feed a shortlist
// whose window is widened by rCoarseRel·wNorm, and the exact rescore that
// follows erases the kernel error from the returned peak entirely. Profile
// routes, whose values are the product, keep the accurate kernel.
func coarseWrappedSincos(d, d2 float64) (sin, cos float64) {
	sin = d * (sinE1 + d2*(sinE3+d2*(sinE5+d2*(sinE7+d2*sinE9))))
	cos = cosE0 + d2*(cosE2+d2*(cosE4+d2*(cosE6+d2*(cosE8+d2*cosE10))))
	return sin, cos
}

// coarseSincosMaxErr bounds both components of coarseWrappedSincos against
// math.Sincos on |d| ≤ π (sin scans at ≤6e-6, cos at ≤8e-7).
const coarseSincosMaxErr = 8e-6

const (
	sinE1 = 0.999979115860923
	sinE3 = -0.16662401693199214
	sinE5 = 0.008308850585528799
	sinE7 = -0.00019263180002474788
	sinE9 = 2.1470546873814776e-06

	cosE0  = 0.9999992107375251
	cosE2  = -0.49999421317501624
	cosE4  = 0.04165977764482001
	cosE6  = -0.0013858789476276247
	cosE8  = 2.42029363618941e-05
	cosE10 = -2.1972943922323797e-07
)

// rCoarseRel is the extra per-cell value error of the coarse-kernel
// weighting pass, relative to wNorm (synthesized R values and their errors
// both scale with wNorm, so the bound is naturally relative): exp ≤
// FastExpNegCoarseMaxErr·wNorm ≈ 2e-5·wNorm, phasor ≤
// coarseSincosMaxErr·wNorm ≈ 8e-6·wNorm — 4e-5 covers the sum with margin.
// Argmax shortlist windows widen by 2·rCoarseRel·wNorm so the dense argmax
// cell always survives the coarse pass into the exact rescore.
const rCoarseRel = 4e-5

// rFlushX is the synthesis weighting pass's Gaussian flush cutoff, much
// tighter than mathx.FastExpNegCutoff: a term with x = d²/(2σ_w²) ≥ 24
// carries weight ≤ wNorm·e^(−24) ≈ 1e-8 even at extreme user σ (robust mode
// floors σ_w at modelResidualSigma; literal mode would need σ < 1e-3 to
// push wNorm past ~300) — invisible next to rSlack, so the exp, the phasor,
// and the accumulate are all skipped. At the default σ this skips ~60% of
// the terms in profile valleys versus ~47% at the 42.0 cutoff. The dense
// comparator never flushes; the skipped tail is part of the rSlack budget.
// Aliasing mathx's coarse cutoff also makes it the domain guard for the
// coarse loop's table-backed FastExpNegCoarseCore — the two constants must
// not drift apart, so they are one constant.
const rFlushX = mathx.FastExpNegCoarseCutoff

// muGuardFrac is the |S(φ)|/n floor below which the synthesized circular
// mean μ̂ is not trusted: Δμ̂ scales as synthErr/|S|, so cells where the
// residual phasors nearly cancel (no coherence at all — profile valleys)
// get the dense per-cell evaluation instead. On real profiles this triggers
// rarely; it exists so the rSlack bound needs no assumption about |S|.
const muGuardFrac = 1e-4

// synthesizeComplex materializes the normalized complex phasor sum
// S(φ_k)/n at every cell from the accumulated coefficients — the complex
// counterpart of synthesize, kept separate so the magnitude-only Q path
// pays nothing for the split outputs. Each iteration advances two cells at
// once — cell k from the front half and cell half+k from the back half: the
// two Chebyshev recurrence chains are independent, which is what lets the
// multiply-add stream saturate the FMA pipes instead of serializing on one
// chain's 2-multiply dependency. The halves split (rather than an even/odd
// interleave) keeps both loops unit-stride, which is the form the compiler's
// prove pass can fully bounds-check-eliminate (make vet-strict verifies);
// cell order does not affect the result because every cell's recurrence is
// seeded only from its own trig entry.
func (h *harmonicCoeffs) synthesizeComplex(outRe, outIm, sinPhi, cosPhi []float64) {
	inv := 1 / float64(h.n)
	maxM := h.maxM
	aRe := h.aRe[:maxM+1]
	aIm := h.aIm[:maxM+1]
	bRe := h.bRe[:maxM+1]
	bIm := h.bIm[:maxM+1]
	if len(aRe) == 0 { // never true (maxM ≥ 0); hands prove the aRe[0] fact
		return
	}
	re0, im0 := aRe[0], aIm[0]
	n := len(outRe)
	outIm = outIm[:n]
	sinPhi = sinPhi[:n]
	cosPhi = cosPhi[:n]
	half := n / 2
	cpA, spA := cosPhi[:half], sinPhi[:half]
	orA, oiA := outRe[:half], outIm[:half]
	cpB, spB := cosPhi[half:half+half], sinPhi[half:half+half]
	orB, oiB := outRe[half:half+half], outIm[half:half+half]
	for k := 0; k < half; k++ {
		c1a, s1a := cpA[k], spA[k]
		c1b, s1b := cpB[k], spB[k]
		reA, imA := re0, im0
		reB, imB := re0, im0
		cPrevA, sPrevA := 1.0, 0.0
		cPrevB, sPrevB := 1.0, 0.0
		cCurA, sCurA := c1a, s1a
		cCurB, sCurB := c1b, s1b
		for m := 1; m < len(aRe); m++ {
			am, aim := aRe[m], aIm[m]
			bm, bim := bRe[m], bIm[m]
			reA += 2 * (am*cCurA + bm*sCurA)
			imA += 2 * (aim*cCurA + bim*sCurA)
			reB += 2 * (am*cCurB + bm*sCurB)
			imB += 2 * (aim*cCurB + bim*sCurB)
			cCurA, cPrevA = 2*c1a*cCurA-cPrevA, cCurA
			sCurA, sPrevA = 2*c1a*sCurA-sPrevA, sCurA
			cCurB, cPrevB = 2*c1b*cCurB-cPrevB, cCurB
			sCurB, sPrevB = 2*c1b*sCurB-sPrevB, sCurB
		}
		orA[k], oiA[k] = reA*inv, imA*inv
		orB[k], oiB[k] = reB*inv, imB*inv
	}
	if k := half + half; k < n { // odd n leaves exactly one tail cell
		c1, s1 := cosPhi[k], sinPhi[k]
		re, im := re0, im0
		cPrev, sPrev := 1.0, 0.0
		cCur, sCur := c1, s1
		for m := 1; m < len(aRe); m++ {
			re += 2 * (aRe[m]*cCur + bRe[m]*sCur)
			im += 2 * (aIm[m]*cCur + bIm[m]*sCur)
			cCur, cPrev = 2*c1*cCur-cPrev, cCur
			sCur, sPrev = 2*c1*sCur-sPrev, sCur
		}
		outRe[k], outIm[k] = re*inv, im*inv
	}
}

// synthRowR computes the R profile for the candidate cells whose trig sits
// in sinPhi/cosPhi, from the harmonic coefficients in hc (folded over
// exactly these terms at this cos γ) plus one tight weighting pass per
// cell. With coarse false, values land within rSlack of the dense per-cell
// formula; with coarse true the weighting pass swaps in the shortlist-grade
// kernels (FastExpNegCoarseCore, coarseWrappedSincos) and the bound loosens
// by rCoarseRel·wNorm — only argmax routes may pass coarse, and they widen
// their shortlist windows to match. Cells whose residual phasor sum falls
// under muGuardFrac are evaluated densely instead (see the constant). sc
// supplies the working buffers — residuals/apertures are repurposed as the
// per-term phase-coefficient arrays, so the rare guard fallback runs on a
// second pooled Scratch. The trig tables are parameters rather than sc
// fields because the streaming Accumulator synthesizes against its own
// plan-cached tables.
func (e *Evaluator) synthRowR(terms termSlices, hc *harmonicCoeffs, sc *Scratch, cg float64, sinPhi, cosPhi, out []float64, coarse bool) {
	n := len(out)
	if terms.n() == 0 || n == 0 {
		return
	}
	sc.ensureRow(n)
	qRe := sc.sumRe[:n]
	qIm := sc.sumIm[:n]
	hc.synthesizeComplex(qRe, qIm, sinPhi[:n], cosPhi[:n])
	e.weightRowR(terms, sc, cg, sinPhi, cosPhi, qRe, qIm, out, coarse, muGuardFrac)
}

// weightRowR is synthRowR's per-cell pass: given the normalized pass-one
// phasor sums qRe/qIm (from exact Chebyshev synthesis or the NUFFT
// spreader), recover the robust mean per cell and run the tight weighting
// loop. muGuard is the |Ŝ|/n floor below which the cell is evaluated
// densely instead — muGuardFrac for exact-synthesis sums, nufftMuGuard for
// spread sums whose error is ~1e−7 rather than ~1e−12. Split out so the
// NUFFT route replays the identical weighting over its spread sums.
func (e *Evaluator) weightRowR(terms termSlices, sc *Scratch, cg float64, sinPhi, cosPhi, qRe, qIm, out []float64, coarse bool, muGuard float64) {
	m := terms.n()
	n := len(out)
	if m == 0 || n == 0 {
		return
	}
	rho := terms.relPhase[:m]
	cosA := terms.cosA[:m]
	sinA := terms.sinA[:m]
	scale := terms.scale[:m]
	// ψ_i(φ) = ρ_i + pcg_i·cos φ + psg_i·sin φ, and the reference aperture is
	// the i = 0 entry of the same linearization (stride keeps index 0, so a
	// subset's reference snapshot is the full set's).
	pcg := sc.residuals[:m]
	psg := sc.apertures[:m]
	for i := 0; i < m; i++ {
		pcg[i] = scale[i] * cosA[i] * cg
		psg[i] = scale[i] * sinA[i] * cg
	}
	sinPhi = sinPhi[:n]
	cosPhi = cosPhi[:n]
	qRe = qRe[:n]
	qIm = qIm[:n]
	pc0, ps0 := pcg[0], psg[0]
	invN := 1 / float64(m)
	wNorm, wInv2Sig := e.wNorm, e.wInv2Sig
	robust := !e.literalRef
	var fb *Scratch // lazily acquired for guard-cell dense fallback
	out = out[:n]
	for k := 0; k < n; k++ {
		c, s := cosPhi[k], sinPhi[k]
		refA := pc0*c + ps0*s
		off := refA
		if robust {
			re, im := qRe[k], qIm[k]
			if re*re+im*im < muGuard*muGuard {
				if fb == nil {
					fb = e.getScratch()
				}
				if e.fastTrig {
					out[k] = e.evalRFast(terms, fb, s, c, cg)
				} else {
					out[k] = e.evalRExact(terms, fb, s, c, cg)
				}
				continue
			}
			// μ̂ = arg(e^{−j·refA}·Ŝ); fold it into the wrap offset so pass
			// two pays a single wrap per term.
			sv, cv := math.Sincos(refA)
			off = refA + math.Atan2(im*cv-re*sv, re*cv+im*sv)
		}
		var sumRe, sumIm float64
		if coarse {
			// Same loop, shortlist-grade kernels: seven fewer multiply-adds
			// per term, error absorbed by the caller's widened window.
			for i := 0; i < m; i++ {
				psi := rho[i] + pcg[i]*c + psg[i]*s
				d := wrapToPiFast(psi - off)
				d2 := d * d
				x := d2 * wInv2Sig
				if x < rFlushX {
					w := wNorm * mathx.FastExpNegCoarseCore(x)
					si, ci := coarseWrappedSincos(d, d2)
					sumRe += w * ci
					sumIm += w * si
				}
			}
		} else {
			for i := 0; i < m; i++ {
				psi := rho[i] + pcg[i]*c + psg[i]*s
				d := wrapToPiFast(psi - off)
				d2 := d * d
				x := d2 * wInv2Sig
				if x < rFlushX {
					w := wNorm * mathx.FastExpNegCore(x)
					// e^{jd} stands in for e^{jψ}: d differs from ψ by the
					// per-cell constant off (mod 2π), and the magnitude taken
					// below is invariant under that rotation — which is what
					// lets the phasor come from the branch-free wrapped-range
					// kernel (sharing d²) instead of a range-reduced sincos
					// of the unbounded ψ.
					si, ci := wrappedSincos(d, d2)
					sumRe += w * ci
					sumIm += w * si
				}
			}
		}
		out[k] = math.Sqrt(sumRe*sumRe+sumIm*sumIm) * invN
	}
	if fb != nil {
		e.putScratch(fb)
	}
}

// harmonicArgmaxR2D is the coarseArgmax2D drop-in for KindR on the uniform
// azimuth grid (γ = 0): fold the Q coefficients once, synthesize the whole R
// row through the two-pass kernel with the shortlist-grade coarse kernels,
// then exact-rescore every cell within 2·(rSlack + rCoarseRel·wNorm) of the
// synthesized maximum — the window is wide enough that the dense argmax
// cell always shortlists despite the coarse kernels' error. The rescore
// evaluates exactly what the dense scan evaluates at those cells (ascending
// index, strict >), so the returned index equals the dense scan's argmax —
// TestRHarmonicArgmax and the streaming boundary suite pin this.
func (e *Evaluator) harmonicArgmaxR2D(terms termSlices, n int, step float64) int {
	hs := harmPool.Get().(*harmonicScratch)
	foldTermsHarmonic(hs, terms, 1)
	if cap(hs.vals) < n {
		hs.vals = make([]float64, n)
	}
	vals := hs.vals[:n]
	sc := e.getScratch()
	e.fillUniformTrig(sc, 0, n, step)
	e.synthRowR(terms, &hs.coeffs, sc, 1, sc.sinPhi[:n], sc.cosPhi[:n], vals, true)
	e.putScratch(sc)
	maxV := math.Inf(-1)
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	window := 2 * (rSlack + rCoarseRel*e.wNorm)
	cand := hs.cand[:0]
	for k, v := range vals {
		if v >= maxV-window {
			cand = append(cand, k)
		}
	}
	hs.cand = cand
	idx := e.rescoreTopK(terms, cand, step, 0, 0, 0)
	harmPool.Put(hs)
	return idx
}

// fillAngleTrigExact fills sc.sinPhi/cosPhi with math.Sincos regardless of
// the Evaluator's trig mode. Synthesis seeds Chebyshev recurrences from the
// per-cell (sin φ, cos φ), and a seed error δ amplifies like m²·δ through
// harmonic m — FastSincos's 1e-7 would swamp the synthesis budget, while
// one exact sincos per cell is amortized over the whole O(H) synthesis and
// the whole pass-two term loop.
func fillAngleTrigExact(sc *Scratch, angles []float64) {
	n := len(angles)
	if n >= planMinN {
		planCache.nonUniformMiss.Add(1)
	}
	sc.ensureRow(n)
	sinPhi := sc.sinPhi[:n]
	cosPhi := sc.cosPhi[:n]
	for k := range angles {
		sinPhi[k], cosPhi[k] = math.Sincos(angles[k])
	}
}

// Profile2DOpt is Profile2D routed through the all-cells transform when
// opts permit; see Profile2DIntoOpt.
func (e *Evaluator) Profile2DOpt(angles []float64, opts SearchOptions) Profile {
	var prof Profile
	e.Profile2DIntoOpt(&prof, angles, opts)
	return prof
}

// Profile2DIntoOpt is Profile2DInto with the coarse-search options applied
// to full-profile computation: when opts.HarmonicEval permits (the default —
// both kinds now synthesize), the profile is produced by one O(snaps·H)
// coefficient fold plus an O(cells·H) synthesis (Q), or the fold plus the
// two-pass weighting kernel (R), instead of the dense O(cells·snaps) scan.
//
// Contract: synthesized values approximate the *exact* dense profile within
// harmonicSlack (Q) / rSlack (R) per cell, in either trig mode — callers
// needing Profile2DInto's bit-for-bit guarantee keep calling Profile2DInto
// (or pass HarmonicEval: ToggleOff). Angles may be arbitrary; uniformity is
// not required.
func (e *Evaluator) Profile2DIntoOpt(prof *Profile, angles []float64, opts SearchOptions) {
	if !opts.HarmonicEval.enabled(true) {
		searchCounters.profileDense.Add(1)
		e.Profile2DInto(prof, angles)
		return
	}
	searchCounters.profileSynth.Add(1)
	prof.Angles = append(prof.Angles[:0], angles...)
	if cap(prof.Power) >= len(angles) {
		prof.Power = prof.Power[:len(angles)]
	} else {
		prof.Power = make([]float64, len(angles))
	}
	n := len(prof.Angles)
	hs := harmPool.Get().(*harmonicScratch)
	foldTermsHarmonic(hs, e.terms, 1)
	if e.kind != KindR && opts.NUFFT.enabled(true) && n >= nufftMinCells {
		// Large Q grids go through the gridded spreader: no per-cell trig
		// at all, and the value error stays inside the same harmonicSlack
		// contract (nufftSlackQ == harmonicSlack). The R pass keeps the
		// exact synthesis — its robust mean amplifies pass-one error by
		// 1/|Ŝ|, which would break the documented rSlack value bound.
		searchCounters.nufftProfile.Add(1)
		nufftSynthQ(&hs.coeffs, prof.Angles, prof.Power)
		harmPool.Put(hs)
		return
	}
	sc := e.getScratch()
	fillAngleTrigExact(sc, prof.Angles)
	if e.kind == KindR {
		e.synthRowR(e.terms, &hs.coeffs, sc, 1, sc.sinPhi[:n], sc.cosPhi[:n], prof.Power, false)
	} else {
		hs.coeffs.synthesize(prof.Power, sc.sinPhi[:n], sc.cosPhi[:n])
	}
	e.putScratch(sc)
	harmPool.Put(hs)
}

// Profile3DOpt is Profile3D under the same option-gated synthesis: each
// polar row refolds the coefficients at its cos γ (O(snaps·H) per row) and
// synthesizes the row's cells, so the whole grid costs
// O(rows·(snaps+cells)·H) instead of the dense O(rows·cells·snaps). The
// same value contract as Profile2DIntoOpt applies per cell.
func (e *Evaluator) Profile3DOpt(azimuths, polars []float64, opts SearchOptions) Profile3D {
	if !opts.HarmonicEval.enabled(true) {
		searchCounters.profileDense.Add(1)
		return e.Profile3D(azimuths, polars)
	}
	searchCounters.profileSynth.Add(1)
	prof := newProfile3D(azimuths, polars)
	n := len(prof.Azimuths)
	hs := harmPool.Get().(*harmonicScratch)
	// Large Q rows spread instead of running the per-cell recurrences; the
	// azimuth set is shared by every row, so the spreader's target wrap and
	// exponentials re-run per row but its grid synthesis replaces the
	// O(cells·H) row synthesis — and no per-cell trig table is built at
	// all. R rows keep exact synthesis (see Profile2DIntoOpt on the μ̂
	// amplification).
	spreadQ := e.kind != KindR && opts.NUFFT.enabled(true) && n >= nufftMinCells
	if spreadQ {
		searchCounters.nufftProfile.Add(1)
	}
	sc := e.getScratch()
	var sinPhi, cosPhi []float64
	if !spreadQ {
		fillAngleTrigExact(sc, prof.Azimuths)
		sinPhi = sc.sinPhi[:n]
		cosPhi = sc.cosPhi[:n]
	}
	rows := prof.Power
	pols := prof.Polars[:len(rows)]
	for i := range rows {
		cg := math.Cos(pols[i])
		foldTermsHarmonic(hs, e.terms, cg)
		if e.kind == KindR {
			e.synthRowR(e.terms, &hs.coeffs, sc, cg, sinPhi, cosPhi, rows[i], false)
		} else if spreadQ {
			nufftSynthQ(&hs.coeffs, prof.Azimuths, rows[i])
		} else {
			hs.coeffs.synthesize(rows[i], sinPhi, cosPhi)
		}
	}
	e.putScratch(sc)
	harmPool.Put(hs)
	return prof
}
