package spectrum

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

func verticalParams() VerticalParams {
	return VerticalParams{Disk: spindisk.VerticalDisk{
		Center:       geom.V3(0, -0.35, 0.3),
		Radius:       0.10,
		Omega:        math.Pi,
		PlaneAzimuth: 0,
	}}
}

// synthVertical generates snapshots of a vertically spinning tag using
// exact geometry.
func synthVertical(p VerticalParams, reader geom.Vec3, n int, sigma float64, rng *rand.Rand) []phase.Snapshot {
	period := time.Duration(2 * math.Pi / math.Abs(p.Disk.Omega) * float64(time.Second))
	snaps := make([]phase.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		tm := time.Duration(float64(period) * float64(i) / float64(n))
		tagPos := p.Disk.TagPositionAt(p.Disk.Angle(tm))
		ph := 4*math.Pi*tagPos.DistanceTo(reader)/testWave + 0.9
		if sigma > 0 {
			ph += rng.NormFloat64() * sigma
		}
		snaps = append(snaps, phase.Snapshot{
			Time:        tm,
			Phase:       mathx.WrapPhase(ph),
			FrequencyHz: testFreq,
		})
	}
	return snaps
}

func TestFindPeakVerticalSignedPolar(t *testing.T) {
	p := verticalParams()
	for _, zSign := range []float64{+1, -1} {
		reader := geom.V3(-2.0, 0.5, 0.3+zSign*0.9)
		rel := reader.Sub(p.Disk.Center)
		snaps := synthVertical(p, reader, 90, 0, nil)
		pk, err := FindPeakVertical(snaps, p, KindR, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if geom.AngleDistance(pk.Azimuth, rel.Azimuth()) > geom.Radians(3) {
			t.Errorf("zSign %v: azimuth %.1f°, want %.1f°",
				zSign, geom.Degrees(pk.Azimuth), geom.Degrees(rel.Azimuth()))
		}
		// The signed polar must come out with the right sign — that is the
		// whole point of the vertical disk.
		if pk.Polar*rel.Polar() <= 0 {
			t.Errorf("zSign %v: polar %.1f° has wrong sign (want like %.1f°)",
				zSign, geom.Degrees(pk.Polar), geom.Degrees(rel.Polar()))
		}
		if math.Abs(pk.Polar-rel.Polar()) > geom.Radians(5) {
			t.Errorf("zSign %v: polar %.1f°, want %.1f°",
				zSign, geom.Degrees(pk.Polar), geom.Degrees(rel.Polar()))
		}
	}
}

func TestResolveMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := verticalParams()
	for _, zSign := range []float64{+1, -1} {
		reader := geom.V3(-1.8, 0.8, 0.3+zSign*1.0)
		rel := reader.Sub(p.Disk.Center)
		snaps := synthVertical(p, reader, 90, 0.1, rng)
		got, err := ResolveMirror(snaps, p, KindR, rel.Azimuth(), math.Abs(rel.Polar()))
		if err != nil {
			t.Fatal(err)
		}
		if got*rel.Polar() <= 0 {
			t.Errorf("zSign %v: resolved polar %.1f°, truth %.1f°",
				zSign, geom.Degrees(got), geom.Degrees(rel.Polar()))
		}
	}
}

func TestVerticalValidation(t *testing.T) {
	p := verticalParams()
	good := synthVertical(p, geom.V3(-2, 0, 1), 20, 0, nil)
	bad := p
	bad.Disk.Radius = 0
	if _, err := FindPeakVertical(good, bad, KindR, SearchOptions{}); err == nil {
		t.Error("zero radius accepted")
	}
	bad = p
	bad.Disk.Omega = 0
	if _, err := FindPeakVertical(good, bad, KindR, SearchOptions{}); err == nil {
		t.Error("zero omega accepted")
	}
	if _, err := FindPeakVertical(good[:1], p, KindR, SearchOptions{}); err == nil {
		t.Error("single snapshot accepted")
	}
	noFreq := append([]phase.Snapshot(nil), good...)
	noFreq[2].FrequencyHz = 0
	if _, err := FindPeakVertical(noFreq, p, KindR, SearchOptions{}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := ResolveMirror(good[:1], p, KindR, 0, 0.3); err == nil {
		t.Error("ResolveMirror single snapshot accepted")
	}
}

func TestVerticalQAlsoPeaks(t *testing.T) {
	p := verticalParams()
	reader := geom.V3(-2.2, 0.4, 1.2)
	rel := reader.Sub(p.Disk.Center)
	snaps := synthVertical(p, reader, 90, 0, nil)
	pk, err := FindPeakVertical(snaps, p, KindQ, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if geom.AngleDistance(pk.Azimuth, rel.Azimuth()) > geom.Radians(3) ||
		pk.Polar*rel.Polar() <= 0 {
		t.Errorf("Q vertical peak (%.1f°, %.1f°), want (%.1f°, %.1f°)",
			geom.Degrees(pk.Azimuth), geom.Degrees(pk.Polar),
			geom.Degrees(rel.Azimuth()), geom.Degrees(rel.Polar()))
	}
}
