package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
)

// accumKinds enumerates the (kind, literal, prescreen) combinations the
// accumulator streams differently.
var accumKinds = []struct {
	name      string
	kind      Kind
	literal   bool
	prescreen int
}{
	{"Q", KindQ, false, 0},
	{"R-robust", KindR, false, 0},
	{"R-literal", KindR, true, 0},
	{"R-robust-prescreen", KindR, false, 8},
	{"R-literal-prescreen", KindR, true, 8},
}

// feedAccumulator streams snapshots through Add in order.
func feedAccumulator(t *testing.T, a *Accumulator, snaps []phase.Snapshot) {
	t.Helper()
	for _, s := range snaps {
		if err := a.Add(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAccumulatorCoarseProfileBitIdentical pins the tentpole equivalence:
// the streamed per-cell sums, finished after the last Add, must reproduce
// the batch Profile2D over the same uniform angles bit for bit on the exact
// path — same terms, same trig table values, same per-cell snapshot-order
// summation.
func TestAccumulatorCoarseProfileBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	opts := SearchOptions{}
	for _, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			pp := p
			pp.LiteralReference = tc.literal
			so := opts
			so.PrescreenTopK = tc.prescreen
			a, err := NewAccumulator2D(pp, tc.kind, so)
			if err != nil {
				t.Fatal(err)
			}
			feedAccumulator(t, a, snaps)
			got, err := a.CoarseProfile()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEvaluator(snaps, pp, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			want := ev.Profile2D(got.Angles)
			for i := range got.Power {
				if got.Power[i] != want.Power[i] {
					t.Fatalf("cell %d: streamed %v != batch %v", i, got.Power[i], want.Power[i])
				}
			}
		})
	}
}

// TestAccumulatorCoarseProfileFastWithinBudget bounds the fast-trig
// streamed profile against the exact batch profile: the FastSincos phasors
// and the recurrence candidate table must stay inside the documented ≲1e-6
// envelope (the batch fast path obeys the same budget, so streamed-fast
// inherits it).
func TestAccumulatorCoarseProfileFastWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	for _, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			pp := p
			pp.LiteralReference = tc.literal
			a, err := NewAccumulator2D(pp, tc.kind, SearchOptions{}, WithFastTrig())
			if err != nil {
				t.Fatal(err)
			}
			feedAccumulator(t, a, snaps)
			got, err := a.CoarseProfile()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEvaluator(snaps, pp, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			want := ev.Profile2D(got.Angles)
			for i := range got.Power {
				if d := math.Abs(got.Power[i] - want.Power[i]); d > 1.5e-6 {
					t.Fatalf("cell %d: streamed fast %v vs exact %v (Δ=%v)", i, got.Power[i], want.Power[i], d)
				}
			}
		})
	}
}

// TestAccumulatorFindPeak2DBitIdentical pins the end-to-end finalize: for
// ordered sessions of up to coarseTermLimit snapshots the streamed coarse
// argmax plus shared refinement must return the very same bits as the batch
// FindPeak2DEval — in both trig modes, since the accumulator's full trig
// table reseeds at the same 64-aligned points as the batch chunked fills.
func TestAccumulatorFindPeak2DBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	for _, tc := range accumKinds {
		for _, fast := range []bool{false, true} {
			name := tc.name
			if fast {
				name += "-fast"
			}
			t.Run(name, func(t *testing.T) {
				pp := p
				pp.LiteralReference = tc.literal
				so := SearchOptions{PrescreenTopK: tc.prescreen}
				var eo []EvalOption
				if fast {
					eo = append(eo, WithFastTrig())
				}
				a, err := NewAccumulator2D(pp, tc.kind, so, eo...)
				if err != nil {
					t.Fatal(err)
				}
				feedAccumulator(t, a, snaps)
				gotAz, gotPow, err := a.FindPeak2D()
				if err != nil {
					t.Fatal(err)
				}
				ev, err := NewEvaluator(snaps, pp, tc.kind, eo...)
				if err != nil {
					t.Fatal(err)
				}
				wantAz, wantPow := FindPeak2DEval(ev, so)
				if gotAz != wantAz || gotPow != wantPow {
					t.Fatalf("streamed peak (%v, %v) != batch (%v, %v)", gotAz, gotPow, wantAz, wantPow)
				}
			})
		}
	}
}

// TestAccumulatorFindPeak3DBitIdentical is the 3D version of the finalize
// pin, on an enlarged grid to keep the scan quick.
func TestAccumulatorFindPeak3DBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := testParams()
	snaps := synth3D(p, geom.V3(-2.1, 0.4, 0.98), 60, 0.05, rng)
	so := SearchOptions{CoarseStep: geom.Radians(1), CoarsePolarStep: geom.Radians(5)}
	for _, tc := range accumKinds {
		for _, fast := range []bool{false, true} {
			name := tc.name
			if fast {
				name += "-fast"
			}
			t.Run(name, func(t *testing.T) {
				pp := p
				pp.LiteralReference = tc.literal
				opts := so
				opts.PrescreenTopK = tc.prescreen
				var eo []EvalOption
				if fast {
					eo = append(eo, WithFastTrig())
				}
				a, err := NewAccumulator3D(pp, tc.kind, opts, eo...)
				if err != nil {
					t.Fatal(err)
				}
				feedAccumulator(t, a, snaps)
				got, err := a.FindPeak3D()
				if err != nil {
					t.Fatal(err)
				}
				ev, err := NewEvaluator(snaps, pp, tc.kind, eo...)
				if err != nil {
					t.Fatal(err)
				}
				want := FindPeak3DEval(ev, opts)
				if got != want {
					t.Fatalf("streamed 3D peak %+v != batch %+v", got, want)
				}
			})
		}
	}
}

// TestAccumulatorCoarseProfile3DBitIdentical pins the streamed 3D profile
// against the batch Profile3D over the same grid.
func TestAccumulatorCoarseProfile3DBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := testParams()
	snaps := synth3D(p, geom.V3(-2.1, 0.4, 0.98), 48, 0.05, rng)
	so := SearchOptions{CoarseStep: geom.Radians(1), CoarsePolarStep: geom.Radians(5)}
	for _, kind := range []Kind{KindQ, KindR} {
		a, err := NewAccumulator3D(p, kind, so)
		if err != nil {
			t.Fatal(err)
		}
		feedAccumulator(t, a, snaps)
		got, err := a.CoarseProfile3D()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.Profile3D(got.Azimuths, got.Polars)
		for i := range got.Power {
			for j := range got.Power[i] {
				if got.Power[i][j] != want.Power[i][j] {
					t.Fatalf("%v cell (%d,%d): streamed %v != batch %v", kind, i, j, got.Power[i][j], want.Power[i][j])
				}
			}
		}
	}
}

// TestAccumulatorLargeSessionFallback proves the bit-identity contract
// survives sessions past coarseTermLimit: there the batch coarse pass uses
// the strided subset, which streaming cannot reproduce, so FindPeak must
// fall back to the batch search rather than return a near-miss.
func TestAccumulatorLargeSessionFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), coarseTermLimit+40, 0.8, 0.05, rng)
	for _, kind := range []Kind{KindQ, KindR} {
		a, err := NewAccumulator2D(p, kind, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		feedAccumulator(t, a, snaps)
		gotAz, gotPow, err := a.FindPeak2D()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		wantAz, wantPow := FindPeak2DEval(ev, SearchOptions{})
		if gotAz != wantAz || gotPow != wantPow {
			t.Fatalf("%v: streamed (%v, %v) != batch (%v, %v)", kind, gotAz, gotPow, wantAz, wantPow)
		}
	}
}

// TestPooledAccumulatorEquivalence is the pool-path pin for the streaming
// folds: Add and the robust finish chunk through the shared pool on wide
// grids, and must produce the same bits as the inline serial path. Run
// under -race at GOMAXPROCS=1 and 4 by `make check`.
func TestPooledAccumulatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 50, 0.8, 0.05, rng)
	for _, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			pp := p
			pp.LiteralReference = tc.literal
			so := SearchOptions{PrescreenTopK: tc.prescreen}
			run := func() (Profile, float64, float64) {
				a, err := NewAccumulator2D(pp, tc.kind, so)
				if err != nil {
					t.Fatal(err)
				}
				feedAccumulator(t, a, snaps)
				prof, err := a.CoarseProfile()
				if err != nil {
					t.Fatal(err)
				}
				az, pow, err := a.FindPeak2D()
				if err != nil {
					t.Fatal(err)
				}
				return prof, az, pow
			}
			var serProf, poolProf Profile
			var serAz, serPow, poolAz, poolPow float64
			withPoolWidth(t, 1, func() { serProf, serAz, serPow = run() })
			withPoolWidth(t, 4, func() { poolProf, poolAz, poolPow = run() })
			for i := range serProf.Power {
				if serProf.Power[i] != poolProf.Power[i] {
					t.Fatalf("cell %d: serial %v != pooled %v", i, serProf.Power[i], poolProf.Power[i])
				}
			}
			if serAz != poolAz || serPow != poolPow {
				t.Fatalf("peak: serial (%v, %v) != pooled (%v, %v)", serAz, serPow, poolAz, poolPow)
			}
		})
	}
}

// TestPrescreenAblation is the satellite's drift bound: the refined peak of
// a prescreened robust-R search must land within one coarse cell of the
// full-R scan's refined peak on noisy sessions.
func TestPrescreenAblation(t *testing.T) {
	p := testParams()
	step := SearchOptions{}.coarseStep()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		reader := geom.V3(-2.2+0.3*float64(seed), 1.3, 0)
		snaps := synth(p, reader, 80, 0.8, 0.12, rng)
		ev, err := NewEvaluator(snaps, p, KindR)
		if err != nil {
			t.Fatal(err)
		}
		fullAz, _ := FindPeak2DEval(ev, SearchOptions{})
		preAz, _ := FindPeak2DEval(ev, SearchOptions{PrescreenTopK: 8})
		if d := geom.AngleDistance(fullAz, preAz); d > step {
			t.Fatalf("seed %d: prescreened peak %v° drifted %v° from full scan %v°",
				seed, geom.Degrees(preAz), geom.Degrees(d), geom.Degrees(fullAz))
		}
	}
}

// TestPrescreenMatchesFullScan checks that on clean sessions — where Q and
// R agree on the basin — the prescreen picks the exact same refined peak.
func TestPrescreenMatchesFullScan(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	fullAz, fullPow := FindPeak2DEval(ev, SearchOptions{})
	preAz, prePow := FindPeak2DEval(ev, SearchOptions{PrescreenTopK: 8})
	if fullAz != preAz || fullPow != prePow {
		t.Fatalf("prescreen (%v, %v) != full (%v, %v)", preAz, prePow, fullAz, fullPow)
	}
}

// TestTopKIndices pins the shortlist helper: largest k values, ascending
// index order, lowest index kept on ties.
func TestTopKIndices(t *testing.T) {
	vals := []float64{3, 9, 1, 9, 7, 2, 8}
	got := topKIndices(vals, 3)
	want := []int{1, 3, 6} // both 9s and the 8
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if n := len(topKIndices(vals, 100)); n != len(vals) {
		t.Fatalf("overlong k returned %d indices", n)
	}
}

// TestAccumulatorErrors covers the misuse surface: too few snapshots, bad
// snapshots, and 2D/3D cross-calls.
func TestAccumulatorErrors(t *testing.T) {
	p := testParams()
	a, err := NewAccumulator2D(p, KindQ, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.FindPeak2D(); err == nil {
		t.Error("empty accumulator produced a peak")
	}
	if _, err := a.CoarseProfile(); err == nil {
		t.Error("empty accumulator produced a profile")
	}
	if _, err := a.CoarseProfile3D(); err == nil {
		t.Error("2D accumulator produced a 3D profile")
	}
	if _, err := a.FindPeak3D(); err == nil {
		t.Error("2D accumulator ran a 3D search")
	}
	if err := a.Add(phase.Snapshot{}); err == nil {
		t.Error("zero-frequency snapshot accepted")
	}
	a3, err := NewAccumulator3D(p, KindQ, SearchOptions{CoarseStep: geom.Radians(2), CoarsePolarStep: geom.Radians(10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a3.CoarseProfile(); err == nil {
		t.Error("3D accumulator produced a 2D profile")
	}
	if _, _, err := a3.FindPeak2D(); err == nil {
		t.Error("3D accumulator ran a 2D search")
	}
	bad := Params{}
	if _, err := NewAccumulator2D(bad, KindQ, SearchOptions{}); err == nil {
		t.Error("invalid params accepted")
	}
}
