package spectrum

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
)

// coarseTermLimit is the snapshot-subset size global coarse scans use: a
// strided subset of at most this many snapshots is plenty to find the right
// grid cell, and the refinement rounds use the full set.
const coarseTermLimit = 64

// chunkTarget is the number of candidate evaluations a worker grabs at a
// time during a parallel grid scan. It keeps the coordination cost (one
// atomic add per chunk) negligible while giving each worker contiguous,
// cache-local runs of the output slice.
const chunkTarget = 64

// Evaluator is the reusable spectrum evaluation engine behind Compute2D/3D
// and the peak searches (§IV / §V-B, Eqn. 7/11, Definitions 4.1/5.1). It is
// constructed once per collection session from the prepared snapshot terms
// and holds the per-snapshot trig tables — sin/cos of the disk angles and
// the aperture scales 4πr/λ — so that each candidate direction costs a
// handful of multiply-adds per snapshot instead of a cosine, and no heap
// allocation at all: the residual/aperture buffers the R profile needs live
// in a caller-owned Scratch.
//
// An Evaluator is immutable after construction and safe for concurrent use.
// All mutable per-evaluation state lives in a Scratch, which must be owned
// by exactly one goroutine at a time.
type Evaluator struct {
	terms       []snapshotTerm
	coarse      []snapshotTerm // strided subset (≤coarseTermLimit) for coarse scans
	kind        Kind
	literalRef  bool
	weightSigma float64 // Gaussian kernel width for the R weights
}

// NewEvaluator prepares the snapshot terms and trig tables for repeated
// evaluation of the selected profile kind.
func NewEvaluator(snaps []phase.Snapshot, p Params, kind Kind) (*Evaluator, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		terms:      terms,
		coarse:     strideTerms(terms, coarseTermLimit),
		kind:       kind,
		literalRef: p.LiteralReference,
	}
	if p.LiteralReference {
		// Definition 4.1 verbatim: residuals are N(0, 2σ²) because they
		// carry both ε_i and the reference's ε₁.
		e.weightSigma = p.sigma() * math.Sqrt2
	} else {
		// Robust variant: the kernel covers the structured residuals real
		// sessions carry beyond thermal noise (see evalTerms).
		e.weightSigma = math.Hypot(p.sigma(), modelResidualSigma)
	}
	return e, nil
}

// Scratch holds the per-evaluation buffers EvalAt writes into, so the hot
// path never allocates. Create one per worker goroutine with NewScratch; a
// Scratch must not be shared between concurrently running evaluations.
type Scratch struct {
	residuals []float64
	apertures []float64
}

// NewScratch returns a Scratch sized for this Evaluator's snapshot set.
func (e *Evaluator) NewScratch() *Scratch {
	return &Scratch{
		residuals: make([]float64, len(e.terms)),
		apertures: make([]float64, len(e.terms)),
	}
}

// EvalAt computes the configured power formula at candidate direction
// (phi, gamma) over the full snapshot set; gamma = 0 reduces Eqn. 11/12 to
// Eqn. 7/8. sc must come from NewScratch on this Evaluator.
func (e *Evaluator) EvalAt(sc *Scratch, phi, gamma float64) float64 {
	return e.evalTerms(e.terms, sc, phi, gamma)
}

// EvalCoarse is EvalAt restricted to the strided coarse snapshot subset.
func (e *Evaluator) EvalCoarse(sc *Scratch, phi, gamma float64) float64 {
	return e.evalTerms(e.coarse, sc, phi, gamma)
}

// evalTerms is the engine core. Per candidate it spends two trig calls on
// (sin φ, cos φ) and one on cos γ; the per-snapshot factor cos(a_i−φ) then
// falls out of the tables as cos a_i·cos φ + sin a_i·sin φ.
func (e *Evaluator) evalTerms(terms []snapshotTerm, sc *Scratch, phi, gamma float64) float64 {
	sinPhi, cosPhi := math.Sincos(phi)
	cg := math.Cos(gamma)
	// c_i(φ,γ) = scale·(cos(a_1−φ) − cos(a_i−φ))·cos γ with the reference
	// term folded in per snapshot below.
	t0 := terms[0]
	refAperture := t0.scale * (t0.cosA*cosPhi + t0.sinA*sinPhi) * cg
	var sumRe, sumIm float64
	if e.kind != KindR {
		for _, t := range terms {
			aperture := t.scale * (t.cosA*cosPhi + t.sinA*sinPhi) * cg
			s, c := math.Sincos(t.relPhase + aperture)
			sumRe += c
			sumIm += s
		}
		return math.Hypot(sumRe, sumIm) / float64(len(terms))
	}

	// R profile: residual of each snapshot's relative phase against the
	// candidate direction's prediction.
	residuals := sc.residuals[:len(terms)]
	apertures := sc.apertures[:len(terms)]
	var rs, rc float64
	for i, t := range terms {
		aperture := t.scale * (t.cosA*cosPhi + t.sinA*sinPhi) * cg
		apertures[i] = aperture
		ci := refAperture - aperture // ϑ_i − ϑ_1 under candidate (φ,γ)
		res := mathx.WrapToPi(t.relPhase - ci)
		residuals[i] = res
		s, c := math.Sincos(res)
		rs += s
		rc += c
	}
	var mu float64
	if !e.literalRef {
		// Cancel the shared ε₁ (and any common model offset) via the
		// circular mean of the residuals; the widened kernel in weightSigma
		// covers the structured residuals — far-field approximation error,
		// orientation-calibration residue, mild multipath — that a kernel at
		// exactly the thermal σ would over-trust (ablation A1 sweeps this).
		mu = math.Atan2(rs, rc)
	}
	for i, res := range residuals {
		w := mathx.GaussPDF(mathx.WrapToPi(res-mu), 0, e.weightSigma)
		s, c := math.Sincos(terms[i].relPhase + apertures[i])
		sumRe += w * c
		sumIm += w * s
	}
	// The paper normalizes by 1/n (Eqn. 7, Definition 4.1): the Q profile
	// then peaks at 1 for a perfectly coherent stack, while the R profile
	// peaks near the Gaussian kernel's mode. Normalizing by Σw instead
	// would let a single accidentally-agreeing snapshot dominate at wrong
	// angles.
	return math.Hypot(sumRe, sumIm) / float64(len(terms))
}

// parallelChunks runs fn over contiguous index chunks of [0, n) on up to
// GOMAXPROCS workers, each with its own Scratch. Chunks are handed out by an
// atomic counter (work stealing), so a straggler worker never serializes the
// scan; every index is processed by exactly one worker, so output writes
// never race and results are bit-identical to a serial loop regardless of
// scheduling.
func (e *Evaluator) parallelChunks(n, chunk int, fn func(sc *Scratch, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = chunkTarget
	}
	nChunks := (n + chunk - 1) / chunk
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		fn(e.NewScratch(), 0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := e.NewScratch()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(sc, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// maxEntry records one chunk's best candidate during a parallel argmax.
type maxEntry struct {
	idx int
	val float64
}

// argmax evaluates eval for every index in [0, n) — in parallel — and
// returns the index and value of the maximum. Per-chunk winners are reduced
// in chunk order with a strict > comparison, so ties resolve to the lowest
// index exactly like a serial left-to-right scan.
func (e *Evaluator) argmax(n, chunk int, eval func(sc *Scratch, i int) float64) (int, float64) {
	if n <= 0 {
		return 0, math.Inf(-1)
	}
	if chunk <= 0 {
		chunk = chunkTarget
	}
	nChunks := (n + chunk - 1) / chunk
	bests := make([]maxEntry, nChunks)
	for i := range bests {
		bests[i] = maxEntry{idx: -1, val: math.Inf(-1)}
	}
	e.parallelChunks(n, chunk, func(sc *Scratch, lo, hi int) {
		best := maxEntry{idx: -1, val: math.Inf(-1)}
		for i := lo; i < hi; i++ {
			if v := eval(sc, i); v > best.val {
				best = maxEntry{idx: i, val: v}
			}
		}
		bests[lo/chunk] = best
	})
	best := maxEntry{idx: 0, val: math.Inf(-1)}
	for _, b := range bests {
		if b.idx >= 0 && b.val > best.val {
			best = b
		}
	}
	return best.idx, best.val
}

// Profile2D evaluates the 2D profile over the angle grid, parallelized
// across the grid. The result is bit-identical to Profile2DSerial: each
// power value is written by exactly one worker into its own index, and
// evaluation order never enters the arithmetic.
func (e *Evaluator) Profile2D(angles []float64) Profile {
	prof := Profile{
		Angles: append([]float64(nil), angles...),
		Power:  make([]float64, len(angles)),
	}
	e.parallelChunks(len(prof.Angles), chunkTarget, func(sc *Scratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			prof.Power[i] = e.EvalAt(sc, prof.Angles[i], 0)
		}
	})
	return prof
}

// Profile2DSerial is the single-threaded reference implementation of
// Profile2D, kept for equivalence tests and speedup baselines.
func (e *Evaluator) Profile2DSerial(angles []float64) Profile {
	prof := Profile{
		Angles: append([]float64(nil), angles...),
		Power:  make([]float64, len(angles)),
	}
	sc := e.NewScratch()
	for i, phi := range prof.Angles {
		prof.Power[i] = e.EvalAt(sc, phi, 0)
	}
	return prof
}

// newProfile3D allocates a 3D profile with all rows carved from one backing
// array, so parallel row writers share nothing but still fill contiguous
// memory.
func newProfile3D(azimuths, polars []float64) Profile3D {
	prof := Profile3D{
		Azimuths: append([]float64(nil), azimuths...),
		Polars:   append([]float64(nil), polars...),
		Power:    make([][]float64, len(polars)),
	}
	backing := make([]float64, len(polars)*len(azimuths))
	for i := range prof.Power {
		prof.Power[i] = backing[i*len(azimuths) : (i+1)*len(azimuths) : (i+1)*len(azimuths)]
	}
	return prof
}

// rowChunk sizes a row-granular chunk so each grabbed chunk holds at least
// chunkTarget evaluations even for narrow azimuth grids.
func rowChunk(cols int) int {
	if cols >= chunkTarget || cols <= 0 {
		return 1
	}
	return (chunkTarget + cols - 1) / cols
}

// Profile3D evaluates the 3D profile over the az × polar grid, parallelized
// across whole grid rows to keep each worker's writes cache-local. The
// result is bit-identical to Profile3DSerial.
func (e *Evaluator) Profile3D(azimuths, polars []float64) Profile3D {
	prof := newProfile3D(azimuths, polars)
	e.parallelChunks(len(prof.Polars), rowChunk(len(prof.Azimuths)), func(sc *Scratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := prof.Power[i]
			gamma := prof.Polars[i]
			for j, phi := range prof.Azimuths {
				row[j] = e.EvalAt(sc, phi, gamma)
			}
		}
	})
	return prof
}

// Profile3DSerial is the single-threaded reference implementation of
// Profile3D, kept for equivalence tests and speedup baselines.
func (e *Evaluator) Profile3DSerial(azimuths, polars []float64) Profile3D {
	prof := newProfile3D(azimuths, polars)
	sc := e.NewScratch()
	for i, gamma := range prof.Polars {
		row := prof.Power[i]
		for j, phi := range prof.Azimuths {
			row[j] = e.EvalAt(sc, phi, gamma)
		}
	}
	return prof
}
