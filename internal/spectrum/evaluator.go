package spectrum

import (
	"context"
	"math"
	"sync"

	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/sched"
)

// coarseTermLimit is the snapshot-subset size global coarse scans use: a
// strided subset of at most this many snapshots is plenty to find the right
// grid cell, and the refinement rounds use the full set.
const coarseTermLimit = 64

// chunkTarget is the number of candidate evaluations a worker grabs at a
// time during a parallel grid scan. It keeps the coordination cost (one
// atomic add per chunk) negligible while giving each worker contiguous,
// cache-local runs of the output slice.
const chunkTarget = 64

// Evaluator is the reusable spectrum evaluation engine behind Compute2D/3D
// and the peak searches (§IV / §V-B, Eqn. 7/11, Definitions 4.1/5.1). It is
// constructed once per collection session from the prepared snapshot terms
// and holds the per-snapshot trig tables — sin/cos of the disk angles and
// the aperture scales 4πr/λ — so that each candidate direction costs a
// handful of multiply-adds per snapshot instead of a cosine, and no heap
// allocation at all: the residual/aperture buffers the R profile needs live
// in a caller-owned Scratch (grid scans draw theirs from an internal
// sync.Pool, so steady-state scans allocate nothing either).
//
// Two trig paths exist. The default exact path uses math.Sincos everywhere
// and is bit-identical to a naive serial evaluation — equivalence tests pin
// this. WithFastTrig selects the batched fast kernel: mathx.FastSincos for
// the per-snapshot phasors (absolute error ≤ mathx.FastSincosMaxErr) and a
// rotation-recurrence trig table for uniform candidate grids (re-seeded
// from math.Sincos every trigReseedInterval points). The fast path changes
// profile values by ≲1e-6 and peak locations by well under 1e-5 rad; the
// kernel tests bound both.
//
// An Evaluator is immutable after construction (the pools are internally
// synchronized) and safe for concurrent use. All mutable per-evaluation
// state lives in a Scratch, which must be owned by exactly one goroutine at
// a time.
type Evaluator struct {
	terms       termSlices
	coarse      termSlices // strided subset (≤coarseTermLimit) for coarse scans
	kind        Kind
	literalRef  bool
	weightSigma float64 // Gaussian kernel width for the R weights
	fastTrig    bool    // FastSincos + recurrence tables instead of math.Sincos

	// Hoisted Gaussian-kernel constants for the fast R path: GaussPDF's
	// per-call 1/(σ√2π) and 1/(2σ²) pulled out of the inner loop. The
	// exact path keeps calling mathx.GaussPDF so its results stay
	// bit-identical to the pre-kernel engine.
	wNorm    float64
	wInv2Sig float64

	scratchPool sync.Pool // *Scratch, reused across grid scans and peak searches
	bestsPool   sync.Pool // *[]maxEntry, reused across argmax reductions
	jobPool     sync.Pool // *scanJob, reused across grid scans
}

// EvalOption configures an Evaluator at construction.
type EvalOption func(*Evaluator)

// WithFastTrig selects the fast trig kernel (mathx.FastSincos plus
// rotation-recurrence candidate tables) for every evaluation this Evaluator
// performs. Profile values move by ≲1e-6 and refined peak locations by well
// under 1e-5 rad relative to the default exact path; grid scans get several
// times faster. Use it on serving paths; leave the default for equivalence
// tests and paper-figure reproduction.
func WithFastTrig() EvalOption {
	return func(e *Evaluator) { e.fastTrig = true }
}

// NewEvaluator prepares the snapshot terms and trig tables for repeated
// evaluation of the selected profile kind.
func NewEvaluator(snaps []phase.Snapshot, p Params, kind Kind, opts ...EvalOption) (*Evaluator, error) {
	terms, err := prepare(snaps, p)
	if err != nil {
		return nil, err
	}
	return newEvaluatorFromTerms(terms, p, kind, opts...), nil
}

// weightSigma returns the Gaussian kernel width the R weights use.
func (p Params) weightSigma() float64 {
	if p.LiteralReference {
		// Definition 4.1 verbatim: residuals are N(0, 2σ²) because they
		// carry both ε_i and the reference's ε₁.
		return p.sigma() * math.Sqrt2
	}
	// Robust variant: the kernel covers the structured residuals real
	// sessions carry beyond thermal noise (see evalQR).
	return math.Hypot(p.sigma(), modelResidualSigma)
}

// newEvaluatorFromTerms builds an Evaluator over already-prepared terms. The
// streaming Accumulator finalizes through this path so batch and streaming
// refinement run on the very same engine.
func newEvaluatorFromTerms(terms []snapshotTerm, p Params, kind Kind, opts ...EvalOption) *Evaluator {
	ts := makeTermSlices(terms)
	e := &Evaluator{
		terms:       ts,
		coarse:      ts.stride(coarseTermLimit),
		kind:        kind,
		literalRef:  p.LiteralReference,
		weightSigma: p.weightSigma(),
	}
	e.wNorm = 1 / (e.weightSigma * math.Sqrt(mathx.TwoPi))
	e.wInv2Sig = 1 / (2 * e.weightSigma * e.weightSigma)
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Scratch holds the per-evaluation buffers EvalAt and the row kernels write
// into, so the hot paths never allocate. Create one per worker goroutine
// with NewScratch; a Scratch must not be shared between concurrently
// running evaluations.
type Scratch struct {
	residuals []float64 // per-snapshot R residuals
	apertures []float64 // per-snapshot aperture terms

	// Row-kernel buffers, sized to the widest row seen so far.
	sinPhi []float64 // per-candidate sin φ table
	cosPhi []float64 // per-candidate cos φ table
	sumRe  []float64 // per-candidate phasor accumulators (interchanged Q)
	sumIm  []float64
	row    []float64 // per-candidate values during argmax scans
}

// NewScratch returns a Scratch sized for this Evaluator's snapshot set.
func (e *Evaluator) NewScratch() *Scratch {
	return &Scratch{
		residuals: make([]float64, e.terms.n()),
		apertures: make([]float64, e.terms.n()),
	}
}

// ensureRow grows the row-kernel buffers to hold n candidates.
func (sc *Scratch) ensureRow(n int) {
	if cap(sc.sinPhi) < n {
		sc.sinPhi = make([]float64, n)
		sc.cosPhi = make([]float64, n)
		sc.sumRe = make([]float64, n)
		sc.sumIm = make([]float64, n)
		sc.row = make([]float64, n)
	}
	sc.sinPhi = sc.sinPhi[:n]
	sc.cosPhi = sc.cosPhi[:n]
	sc.sumRe = sc.sumRe[:n]
	sc.sumIm = sc.sumIm[:n]
	sc.row = sc.row[:n]
}

// getScratch draws a Scratch from the pool (allocating only when the pool
// is empty); putScratch returns it. Grid scans and peak searches route all
// their transient state through this pair, which is what makes whole
// Profile2D/FindPeak calls allocation-free in steady state.
func (e *Evaluator) getScratch() *Scratch {
	if sc, ok := e.scratchPool.Get().(*Scratch); ok {
		return sc
	}
	return e.NewScratch()
}

func (e *Evaluator) putScratch(sc *Scratch) { e.scratchPool.Put(sc) }

// EvalAt computes the configured power formula at candidate direction
// (phi, gamma) over the full snapshot set; gamma = 0 reduces Eqn. 11/12 to
// Eqn. 7/8. sc must come from NewScratch on this Evaluator.
func (e *Evaluator) EvalAt(sc *Scratch, phi, gamma float64) float64 {
	return e.evalTerms(e.terms, sc, phi, gamma)
}

// EvalCoarse is EvalAt restricted to the strided coarse snapshot subset.
func (e *Evaluator) EvalCoarse(sc *Scratch, phi, gamma float64) float64 {
	return e.evalTerms(e.coarse, sc, phi, gamma)
}

// evalTerms evaluates one candidate. Per candidate it spends two trig calls
// on (sin φ, cos φ) and one on cos γ; the per-snapshot factor cos(a_i−φ)
// then falls out of the tables as cos a_i·cos φ + sin a_i·sin φ. The row
// kernels in kernel.go amortize the candidate trig across uniform grids;
// this single-candidate form remains for refinement loops and callers off
// the grid.
func (e *Evaluator) evalTerms(terms termSlices, sc *Scratch, phi, gamma float64) float64 {
	sinPhi, cosPhi := math.Sincos(phi)
	cg := math.Cos(gamma)
	if e.kind != KindR {
		if e.fastTrig {
			return evalQFast(terms, sinPhi, cosPhi, cg)
		}
		return evalQExact(terms, sinPhi, cosPhi, cg)
	}
	if e.fastTrig {
		return e.evalRFast(terms, sc, sinPhi, cosPhi, cg)
	}
	return e.evalRExact(terms, sc, sinPhi, cosPhi, cg)
}

// evalQExact is the exact-trig Q profile for one candidate; its arithmetic
// (expression shapes and accumulation order) is the bit-exactness reference
// every other Q path must reproduce.
func evalQExact(terms termSlices, sinPhi, cosPhi, cg float64) float64 {
	var sumRe, sumIm float64
	relPhase, cosA, sinA, scale := terms.relPhase, terms.cosA, terms.sinA, terms.scale
	for i := range scale {
		aperture := scale[i] * (cosA[i]*cosPhi + sinA[i]*sinPhi) * cg
		s, c := math.Sincos(relPhase[i] + aperture)
		sumRe += c
		sumIm += s
	}
	return math.Hypot(sumRe, sumIm) / float64(len(scale))
}

// evalQFast is evalQExact with the per-snapshot sincos replaced by the
// bounded-error fast kernel (and Hypot by a plain sqrt — the sums are
// bounded by the term count, so overflow protection buys nothing).
func evalQFast(terms termSlices, sinPhi, cosPhi, cg float64) float64 {
	var sumRe, sumIm float64
	relPhase, cosA, sinA, scale := terms.relPhase, terms.cosA, terms.sinA, terms.scale
	for i := range scale {
		aperture := scale[i] * (cosA[i]*cosPhi + sinA[i]*sinPhi) * cg
		s, c := mathx.FastSincos(relPhase[i] + aperture)
		sumRe += c
		sumIm += s
	}
	return math.Sqrt(sumRe*sumRe+sumIm*sumIm) / float64(len(scale))
}

// evalRExact is the exact-trig R profile for one candidate: residual of
// each snapshot's relative phase against the candidate direction's
// prediction, Gaussian-weighted phasor stack (Definition 4.1 / 5.1).
func (e *Evaluator) evalRExact(terms termSlices, sc *Scratch, sinPhi, cosPhi, cg float64) float64 {
	// c_i(φ,γ) = scale·(cos(a_1−φ) − cos(a_i−φ))·cos γ with the reference
	// term folded in per snapshot below.
	// Reslicing every stream to the common length n lets the compiler
	// retire the bounds checks in both passes (make vet-strict spot-checks
	// the kernels); the arithmetic below is untouched, so the exact path
	// keeps producing the reference bits.
	scale := terms.scale
	n := len(scale)
	relPhase := terms.relPhase[:n]
	cosA := terms.cosA[:n]
	sinA := terms.sinA[:n]
	refAperture := scale[0] * (cosA[0]*cosPhi + sinA[0]*sinPhi) * cg
	residuals := sc.residuals[:n]
	apertures := sc.apertures[:n]
	var rs, rc float64
	for i := 0; i < n; i++ {
		aperture := scale[i] * (cosA[i]*cosPhi + sinA[i]*sinPhi) * cg
		apertures[i] = aperture
		ci := refAperture - aperture // ϑ_i − ϑ_1 under candidate (φ,γ)
		res := mathx.WrapToPi(relPhase[i] - ci)
		residuals[i] = res
		s, c := math.Sincos(res)
		rs += s
		rc += c
	}
	var mu float64
	if !e.literalRef {
		// Cancel the shared ε₁ (and any common model offset) via the
		// circular mean of the residuals; the widened kernel in weightSigma
		// covers the structured residuals — far-field approximation error,
		// orientation-calibration residue, mild multipath — that a kernel at
		// exactly the thermal σ would over-trust (ablation A1 sweeps this).
		mu = math.Atan2(rs, rc)
	}
	var sumRe, sumIm float64
	for i, res := range residuals {
		w := mathx.GaussPDF(mathx.WrapToPi(res-mu), 0, e.weightSigma)
		s, c := math.Sincos(relPhase[i] + apertures[i])
		sumRe += w * c
		sumIm += w * s
	}
	// The paper normalizes by 1/n (Eqn. 7, Definition 4.1): the Q profile
	// then peaks at 1 for a perfectly coherent stack, while the R profile
	// peaks near the Gaussian kernel's mode. Normalizing by Σw instead
	// would let a single accidentally-agreeing snapshot dominate at wrong
	// angles.
	return math.Hypot(sumRe, sumIm) / float64(n)
}

// evalRFast is evalRExact on the fast kernel: FastSincos phasors, an
// additive phase wrap (arguments are bounded by π + 2·4πr/λ, so the mod in
// WrapToPi is overkill), and the Gaussian weight with the normalization and
// 1/2σ² hoisted into the Evaluator.
func (e *Evaluator) evalRFast(terms termSlices, sc *Scratch, sinPhi, cosPhi, cg float64) float64 {
	scale := terms.scale
	n := len(scale)
	relPhase := terms.relPhase[:n]
	cosA := terms.cosA[:n]
	sinA := terms.sinA[:n]
	refAperture := scale[0] * (cosA[0]*cosPhi + sinA[0]*sinPhi) * cg
	residuals := sc.residuals[:n]
	apertures := sc.apertures[:n]
	var rs, rc float64
	for i := 0; i < n; i++ {
		aperture := scale[i] * (cosA[i]*cosPhi + sinA[i]*sinPhi) * cg
		apertures[i] = aperture
		res := wrapToPiFast(relPhase[i] - (refAperture - aperture))
		residuals[i] = res
		s, c := mathx.FastSincos(res)
		rs += s
		rc += c
	}
	var mu float64
	if !e.literalRef {
		mu = math.Atan2(rs, rc)
	}
	var sumRe, sumIm float64
	for i, res := range residuals {
		d := wrapToPiFast(res - mu)
		w := e.wNorm * math.Exp(-d*d*e.wInv2Sig)
		s, c := mathx.FastSincos(relPhase[i] + apertures[i])
		sumRe += w * c
		sumIm += w * s
	}
	return math.Sqrt(sumRe*sumRe+sumIm*sumIm) / float64(n)
}

// inv2Pi is 1/2π for the rounded phase wrap below.
const inv2Pi = 1 / mathx.TwoPi

// wrapToPiFast maps a phase difference into [-π, π] by subtracting the
// rounded multiple of 2π — one multiply, an intrinsic floor, and one
// fused subtract, against math.Mod inside mathx.WrapToPi. The subtracted
// multiple k carries |k|·ulp(2π) ≲ 1e-14 rad of error for the |x| ≤
// π + 2·4πr/λ arguments spectrum residuals produce, far inside the fast
// path's 1e-7 budget; the boundary case that lands on −π instead of the
// exact wrap's (−π, π] is harmless because every consumer (sincos, the
// squared Gaussian distance) is continuous through ±π. Pathological
// magnitudes fall back to the exact wrap before the k·2π cancellation
// could lose precision.
func wrapToPiFast(x float64) float64 {
	if x > 1e6 || x < -1e6 {
		return mathx.WrapToPi(x)
	}
	if x > math.Pi || x < -math.Pi {
		x -= math.Floor(x*inv2Pi+0.5) * mathx.TwoPi
	}
	return x
}

// scanJob describes one grid scan as plain data — which snapshot terms,
// which candidate geometry, and where results go. Scans dispatch through a
// pooled *scanJob and the runChunk method instead of closures: a closure
// passed into the parallel machinery escapes to the worker goroutines and
// would cost the caller a heap allocation per scan, which is exactly what
// the zero-alloc steady-state contract forbids.
//
// Candidate geometry, in precedence order:
//   - rows != nil: 3D profile — chunks index polar rows; row i evaluates
//     angles at γ = polars[i] into rows[i].
//   - angles != nil: 1D profile — chunks index candidates; candidate i
//     evaluates angles[i] at fixed gamma into out[i].
//   - out != nil (uniform profile): candidate i is φ_i = i·step; with
//     azCount > 0 chunks are whole polar rows as below. Used by the
//     Q-prescreen pass, which scans a uniform grid into a dense buffer.
//   - azCount > 0: 3D coarse argmax — chunks are exactly one polar row of
//     azCount uniform candidates (φ_k = k·step, γ = polBase +
//     (i/azCount)·polStep); winners land in bests.
//   - otherwise: 1D uniform argmax — candidate i is φ_i = i·step at fixed
//     gamma; winners land in bests.
type scanJob struct {
	ev    *Evaluator // back-reference so RunChunk can reach the kernels
	terms termSlices
	kind  Kind // profile formula for this scan (getJob defaults it to ev.kind)
	n     int  // candidate (or row) count
	chunk int  // chunk size handed to one worker grab

	// Output: profile scans write out/rows; argmax scans reduce into bests.
	out   []float64
	rows  [][]float64
	bests []maxEntry

	// Candidate geometry.
	angles           []float64
	polars           []float64
	step             float64
	azCount          int
	polBase, polStep float64
	gamma            float64
}

// reset clears slice references so a pooled job cannot retain caller
// memory across uses.
func (j *scanJob) reset() {
	*j = scanJob{}
}

// getJob draws a scan descriptor from the pool; putJob resets and returns
// it.
func (e *Evaluator) getJob() *scanJob {
	j, ok := e.jobPool.Get().(*scanJob)
	if !ok {
		j = new(scanJob)
	}
	j.ev = e
	j.kind = e.kind
	return j
}

func (e *Evaluator) putJob(j *scanJob) {
	j.reset()
	e.jobPool.Put(j)
}

// runChunk evaluates one contiguous chunk [lo, hi) of a scan job on the
// given Scratch, per the job's candidate geometry.
func (e *Evaluator) runChunk(j *scanJob, sc *Scratch, lo, hi int) {
	switch {
	case j.rows != nil:
		for i := lo; i < hi; i++ {
			e.fillAngleTrig(sc, j.angles)
			e.evalRow(j.kind, j.terms, sc, j.polars[i], len(j.angles), j.rows[i])
		}
	case j.angles != nil:
		e.fillAngleTrig(sc, j.angles[lo:hi])
		e.evalRow(j.kind, j.terms, sc, j.gamma, hi-lo, j.out[lo:hi])
	case j.out != nil && j.azCount > 0:
		gamma := j.polBase + float64(lo/j.azCount)*j.polStep
		e.fillUniformTrig(sc, 0, hi-lo, j.step)
		e.evalRow(j.kind, j.terms, sc, gamma, hi-lo, j.out[lo:hi])
	case j.out != nil:
		e.fillUniformTrig(sc, lo, hi-lo, j.step)
		e.evalRow(j.kind, j.terms, sc, j.gamma, hi-lo, j.out[lo:hi])
	case j.azCount > 0:
		gamma := j.polBase + float64(lo/j.azCount)*j.polStep
		e.fillUniformTrig(sc, 0, hi-lo, j.step)
		e.evalRow(j.kind, j.terms, sc, gamma, hi-lo, sc.row[:hi-lo])
		j.reduceChunk(sc, lo, hi)
	default:
		e.fillUniformTrig(sc, lo, hi-lo, j.step)
		e.evalRow(j.kind, j.terms, sc, j.gamma, hi-lo, sc.row[:hi-lo])
		j.reduceChunk(sc, lo, hi)
	}
}

// reduceChunk records the chunk's argmax winner. Strict > keeps the
// serial lowest-index tie rule.
func (j *scanJob) reduceChunk(sc *Scratch, lo, hi int) {
	best := maxEntry{idx: -1, val: math.Inf(-1)}
	for k, v := range sc.row[:hi-lo] {
		if v > best.val {
			best = maxEntry{idx: lo + k, val: v}
		}
	}
	j.bests[lo/j.chunk] = best
}

// RunChunk implements sched.Chunked: execute one claimed chunk of the scan
// on a pooled Scratch. It runs on shared-pool workers and the submitting
// goroutine alike; the scratch pool is internally synchronized and every
// chunk writes a disjoint slice of the job's output, so no further locking
// is needed.
func (j *scanJob) RunChunk(lo, hi int) {
	e := j.ev
	sc := e.getScratch()
	e.runChunk(j, sc, lo, hi)
	e.putScratch(sc)
}

// scanChunks runs a job's chunks of [0, n). Multi-chunk scans are submitted
// to the process-wide compute pool (internal/sched): persistent workers
// claim chunks from the job's cursor and concurrent scans interleave at
// chunk granularity instead of each spawning its own GOMAXPROCS goroutines.
// Single-chunk scans — and every scan when the pool is pinned to one worker
// (sched.SetWorkers(1) / TAGSPIN_WORKERS=1) — run inline on one Scratch.
//
// Every index is processed exactly once, output writes never race, and
// evaluation order never enters the arithmetic, so results are bit-identical
// to a serial loop regardless of scheduling. Chunk boundaries are part of
// the contract: each runChunk call covers at most one chunk (the 3D coarse
// scan relies on a chunk being exactly one polar row), in both the serial
// and pooled paths.
func (e *Evaluator) scanChunks(j *scanJob) {
	if j.n <= 0 {
		return
	}
	if j.chunk <= 0 {
		j.chunk = chunkTarget
	}
	nChunks := (j.n + j.chunk - 1) / j.chunk
	if nChunks <= 1 || sched.Workers() <= 1 {
		sc := e.getScratch()
		for c := 0; c < nChunks; c++ {
			lo := c * j.chunk
			hi := lo + j.chunk
			if hi > j.n {
				hi = j.n
			}
			e.runChunk(j, sc, lo, hi)
		}
		e.putScratch(sc)
		return
	}
	// Background context: scans are short (a request's cancellation is
	// checked between pipeline passes in core), and an uncancelable submit
	// keeps this path allocation-free.
	_ = sched.Run(context.Background(), j, j.n, j.chunk)
}

// maxEntry records one chunk's best candidate during a parallel argmax.
type maxEntry struct {
	idx int
	val float64
}

// getBests draws a chunk-winner slice of length n from the pool; putBests
// returns it. Pooling here removes the per-call allocate-and-zero that
// peak searches used to pay (BENCH_1 recorded 13 allocs/op on FindPeak2DR).
func (e *Evaluator) getBests(n int) *[]maxEntry {
	p, ok := e.bestsPool.Get().(*[]maxEntry)
	if !ok {
		p = new([]maxEntry)
	}
	if cap(*p) < n {
		*p = make([]maxEntry, n)
	}
	*p = (*p)[:n]
	for i := range *p {
		(*p)[i] = maxEntry{idx: -1, val: math.Inf(-1)}
	}
	return p
}

func (e *Evaluator) putBests(p *[]maxEntry) { e.bestsPool.Put(p) }

// argmaxJob runs an argmax-shaped scan job and returns the index and value
// of the maximum candidate. Per-chunk winners are reduced in chunk order
// with a strict > comparison, so ties resolve to the lowest index exactly
// like a serial left-to-right scan.
func (e *Evaluator) argmaxJob(j *scanJob) (int, float64) {
	if j.n <= 0 {
		return 0, math.Inf(-1)
	}
	if j.chunk <= 0 {
		j.chunk = chunkTarget
	}
	nChunks := (j.n + j.chunk - 1) / j.chunk
	bestsPtr := e.getBests(nChunks)
	j.bests = *bestsPtr
	e.scanChunks(j)
	best := maxEntry{idx: 0, val: math.Inf(-1)}
	for _, b := range j.bests {
		if b.idx >= 0 && b.val > best.val {
			best = b
		}
	}
	e.putBests(bestsPtr)
	return best.idx, best.val
}

// Profile2D evaluates the 2D profile over the angle grid, parallelized
// across the grid through the row kernel. The result is bit-identical to
// Profile2DSerial: each power value is written by exactly one worker into
// its own index, and evaluation order never enters the arithmetic.
func (e *Evaluator) Profile2D(angles []float64) Profile {
	var prof Profile
	e.Profile2DInto(&prof, angles)
	return prof
}

// Profile2DInto is Profile2D writing into a caller-owned Profile, reusing
// its backing slices when they are large enough. Together with the pooled
// Scratch underneath, a steady-state caller (e.g. a serving loop computing
// the same-size profile per request) allocates nothing.
func (e *Evaluator) Profile2DInto(prof *Profile, angles []float64) {
	prof.Angles = append(prof.Angles[:0], angles...)
	if cap(prof.Power) >= len(angles) {
		prof.Power = prof.Power[:len(angles)]
	} else {
		prof.Power = make([]float64, len(angles))
	}
	j := e.getJob()
	j.terms = e.terms
	j.n = len(prof.Angles)
	j.chunk = chunkTarget
	j.angles = prof.Angles
	j.out = prof.Power
	e.scanChunks(j)
	e.putJob(j)
}

// Profile2DSerial is the single-threaded reference implementation of
// Profile2D, kept for equivalence tests and speedup baselines.
func (e *Evaluator) Profile2DSerial(angles []float64) Profile {
	prof := Profile{
		Angles: append([]float64(nil), angles...),
		Power:  make([]float64, len(angles)),
	}
	sc := e.NewScratch()
	for i, phi := range prof.Angles {
		prof.Power[i] = e.EvalAt(sc, phi, 0)
	}
	return prof
}

// newProfile3D allocates a 3D profile with all rows carved from one backing
// array, so parallel row writers share nothing but still fill contiguous
// memory.
func newProfile3D(azimuths, polars []float64) Profile3D {
	prof := Profile3D{
		Azimuths: append([]float64(nil), azimuths...),
		Polars:   append([]float64(nil), polars...),
		Power:    make([][]float64, len(polars)),
	}
	nc := len(azimuths)
	backing := make([]float64, len(polars)*nc)
	rows := prof.Power
	for i := range rows {
		rows[i] = backing[i*nc : (i+1)*nc : (i+1)*nc]
	}
	return prof
}

// rowChunk sizes a row-granular chunk so each grabbed chunk holds at least
// chunkTarget evaluations even for narrow azimuth grids.
func rowChunk(cols int) int {
	if cols >= chunkTarget || cols <= 0 {
		return 1
	}
	return (chunkTarget + cols - 1) / cols
}

// Profile3D evaluates the 3D profile over the az × polar grid, parallelized
// across whole grid rows to keep each worker's writes cache-local; each row
// goes through the batched row kernel. The result is bit-identical to
// Profile3DSerial.
func (e *Evaluator) Profile3D(azimuths, polars []float64) Profile3D {
	prof := newProfile3D(azimuths, polars)
	j := e.getJob()
	j.terms = e.terms
	j.n = len(prof.Polars)
	j.chunk = rowChunk(len(prof.Azimuths))
	j.angles = prof.Azimuths
	j.polars = prof.Polars
	j.rows = prof.Power
	e.scanChunks(j)
	e.putJob(j)
	return prof
}

// Profile3DSerial is the single-threaded reference implementation of
// Profile3D, kept for equivalence tests and speedup baselines.
func (e *Evaluator) Profile3DSerial(azimuths, polars []float64) Profile3D {
	prof := newProfile3D(azimuths, polars)
	sc := e.NewScratch()
	for i, gamma := range prof.Polars {
		row := prof.Power[i]
		for j, phi := range prof.Azimuths {
			row[j] = e.EvalAt(sc, phi, gamma)
		}
	}
	return prof
}
