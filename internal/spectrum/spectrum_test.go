package spectrum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

const (
	testFreq = 922.5e6
	testWave = 299_792_458.0 / testFreq
)

func testParams() Params {
	return Params{Disk: spindisk.Disk{
		Center: geom.V3(0.4, 0, 0),
		Radius: 0.10,
		Omega:  math.Pi,
	}}
}

// synth generates snapshots of a full rotation using exact geometry: the
// phase is 4π·|tag−reader|/λ plus a diversity constant plus noise.
func synth(p Params, reader geom.Vec3, n int, diversity, sigma float64, rng *rand.Rand) []phase.Snapshot {
	period := p.Disk.Period()
	snaps := make([]phase.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		tm := time.Duration(float64(period) * float64(i) / float64(n))
		tagPos := p.Disk.TagPosition(tm)
		ph := 4*math.Pi*tagPos.DistanceTo(reader)/testWave + diversity
		if sigma > 0 {
			ph += rng.NormFloat64() * sigma
		}
		snaps = append(snaps, phase.Snapshot{
			Time:        tm,
			Phase:       mathx.WrapPhase(ph),
			FrequencyHz: testFreq,
		})
	}
	return snaps
}

func TestProfilesPeakAtReaderDirection(t *testing.T) {
	p := testParams()
	reader := geom.V3(-2.8, 0, 0) // φ_R = 180° from the disk center
	snaps := synth(p, reader, 80, 1.3, 0, nil)
	angles := UniformAngles(720)
	for _, kind := range []Kind{KindQ, KindR} {
		prof, err := Compute2D(snaps, p, kind, angles)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		peak, power := prof.Peak()
		if geom.AngleDistance(peak, math.Pi) > geom.Radians(1.5) {
			t.Errorf("%v peak at %v°, want 180°", kind, geom.Degrees(peak))
		}
		if power <= 0 {
			t.Errorf("%v peak power %v", kind, power)
		}
	}
}

func TestRSharperThanQUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := testParams()
	reader := geom.V3(-2.8, 0, 0)
	snaps := synth(p, reader, 80, 0.7, 0.1, rng)
	angles := UniformAngles(720)
	q, err := Compute2D(snaps, p, KindQ, angles)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compute2D(snaps, p, KindR, angles)
	if err != nil {
		t.Fatal(err)
	}
	if rs, qs := r.Sharpness(), q.Sharpness(); rs <= qs {
		t.Errorf("R sharpness %v not greater than Q sharpness %v", rs, qs)
	}
	if rw, qw := r.HalfPowerBeamwidth(), q.HalfPowerBeamwidth(); rw >= qw {
		t.Errorf("R HPBW %v° not narrower than Q HPBW %v°", geom.Degrees(rw), geom.Degrees(qw))
	}
	// Both must still point at the truth.
	qPeak, _ := q.Peak()
	rPeak, _ := r.Peak()
	if geom.AngleDistance(qPeak, math.Pi) > geom.Radians(4) ||
		geom.AngleDistance(rPeak, math.Pi) > geom.Radians(4) {
		t.Errorf("peaks strayed: Q %v°, R %v°", geom.Degrees(qPeak), geom.Degrees(rPeak))
	}
}

func TestDiversityTermCancelled(t *testing.T) {
	// Two datasets differing only in θ_div must give identical profiles.
	p := testParams()
	reader := geom.V3(-1.5, 2.0, 0)
	a := synth(p, reader, 60, 0.0, 0, nil)
	b := synth(p, reader, 60, 2.9, 0, nil)
	angles := UniformAngles(360)
	pa, err := Compute2D(a, p, KindR, angles)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Compute2D(b, p, KindR, angles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa.Power {
		if math.Abs(pa.Power[i]-pb.Power[i]) > 1e-9 {
			t.Fatalf("profiles differ at %d: %v vs %v", i, pa.Power[i], pb.Power[i])
		}
	}
}

func TestFindPeak2DAccuracy(t *testing.T) {
	p := testParams()
	for _, azDeg := range []float64{0, 45, 135, 180, 250, 333} {
		az := geom.Radians(azDeg)
		reader := p.Disk.Center.Add(geom.V3(2.5*math.Cos(az), 2.5*math.Sin(az), 0))
		snaps := synth(p, reader, 80, 1.0, 0, nil)
		got, _, err := FindPeak2D(snaps, p, KindR, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The residual error of Eqn. 2's far-field approximation against
		// the exact geometry used by the synthesizer biases the peak by
		// up to ≈0.3° at D = 2.5 m, r = 0.1 m.
		if geom.AngleDistance(got, az) > geom.Radians(0.5) {
			t.Errorf("azimuth %v°: found %v°", azDeg, geom.Degrees(got))
		}
	}
}

func TestFindPeak2DMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := testParams()
	reader := geom.V3(-2.0, 1.0, 0)
	snaps := synth(p, reader, 70, 0.4, 0.1, rng)
	fast, _, err := FindPeak2D(snaps, p, KindR, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := ExhaustivePeak2D(snaps, p, KindR, geom.Radians(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if geom.AngleDistance(fast, slow) > geom.Radians(0.1) {
		t.Errorf("coarse-to-fine %v° vs exhaustive %v°", geom.Degrees(fast), geom.Degrees(slow))
	}
}

func TestExhaustivePeak2DBadStep(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2, 0, 0), 10, 0, 0, nil)
	if _, _, err := ExhaustivePeak2D(snaps, p, KindR, 0); err == nil {
		t.Error("zero step accepted")
	}
}

// synth3D generates snapshots with the reader off-plane.
func synth3D(p Params, reader geom.Vec3, n int, sigma float64, rng *rand.Rand) []phase.Snapshot {
	return synth(p, reader, n, 0.9, sigma, rng)
}

func TestProfile3DPeakAndMirror(t *testing.T) {
	p := testParams()
	// Reader at azimuth 180°, elevation ≈ 21.4° from the disk center.
	reader := geom.V3(-2.1, 0, 0.98)
	rel := reader.Sub(p.Disk.Center)
	wantAz, wantPol := rel.Azimuth(), rel.Polar()
	snaps := synth3D(p, reader, 90, 0, nil)
	az := UniformAngles(360)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	prof, err := Compute3D(snaps, p, KindR, az, pol)
	if err != nil {
		t.Fatal(err)
	}
	pkAz, pkPol, _ := prof.Peak()
	if geom.AngleDistance(pkAz, wantAz) > geom.Radians(2) {
		t.Errorf("3D peak azimuth %v°, want %v°", geom.Degrees(pkAz), geom.Degrees(wantAz))
	}
	if math.Abs(math.Abs(pkPol)-math.Abs(wantPol)) > geom.Radians(3) {
		t.Errorf("3D peak |polar| %v°, want %v°", geom.Degrees(math.Abs(pkPol)), geom.Degrees(math.Abs(wantPol)))
	}
	// The z-mirror of the truth scores the same (±z ambiguity, §V-B).
	up := prof.ValueAt(wantAz, wantPol)
	down := prof.ValueAt(wantAz, -wantPol)
	if math.Abs(up-down) > 0.05*up {
		t.Errorf("mirror asymmetry: %v vs %v", up, down)
	}
	maxima := prof.LocalMaxima(0.8)
	if len(maxima) < 2 {
		t.Fatalf("expected ≥2 mirror peaks, found %d", len(maxima))
	}
	if maxima[0].Polar*maxima[1].Polar > 0 {
		t.Errorf("top-2 peaks not z-mirrored: %+v", maxima[:2])
	}
}

func TestFindPeak3DAccuracy(t *testing.T) {
	p := testParams()
	reader := geom.V3(-2.1, 0.6, 0.9)
	rel := reader.Sub(p.Disk.Center)
	snaps := synth3D(p, reader, 90, 0, nil)
	pk, err := FindPeak3D(snaps, p, KindR, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if geom.AngleDistance(pk.Azimuth, rel.Azimuth()) > geom.Radians(1) {
		t.Errorf("azimuth %v°, want %v°", geom.Degrees(pk.Azimuth), geom.Degrees(rel.Azimuth()))
	}
	if math.Abs(math.Abs(pk.Polar)-math.Abs(rel.Polar())) > geom.Radians(2) {
		t.Errorf("|polar| %v°, want %v°", geom.Degrees(math.Abs(pk.Polar)), geom.Degrees(rel.Polar()))
	}
}

func TestComputeErrors(t *testing.T) {
	p := testParams()
	good := synth(p, geom.V3(-2, 0, 0), 10, 0, 0, nil)
	if _, err := Compute2D(good[:1], p, KindQ, UniformAngles(8)); err == nil {
		t.Error("single snapshot accepted")
	}
	noFreq := append([]phase.Snapshot(nil), good...)
	noFreq[3].FrequencyHz = 0
	if _, err := Compute2D(noFreq, p, KindQ, UniformAngles(8)); err == nil {
		t.Error("zero frequency accepted")
	}
	bad := p
	bad.Disk.Radius = 0
	if _, err := Compute2D(good, bad, KindQ, UniformAngles(8)); err == nil {
		t.Error("zero radius accepted")
	}
	bad = p
	bad.Sigma = -0.1
	if _, err := Compute2D(good, bad, KindQ, UniformAngles(8)); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Compute3D(good[:1], p, KindR, UniformAngles(8), []float64{0}); err == nil {
		t.Error("3D single snapshot accepted")
	}
}

func TestNormalized(t *testing.T) {
	prof := Profile{Angles: []float64{0, 1, 2}, Power: []float64{1, 4, 2}}
	n := prof.Normalized()
	if n.Power[1] != 1 || n.Power[0] != 0.25 {
		t.Errorf("normalized = %v", n.Power)
	}
	if prof.Power[1] != 4 {
		t.Error("Normalized mutated the input")
	}
	zero := Profile{Angles: []float64{0, 1}, Power: []float64{0, 0}}
	if z := zero.Normalized(); z.Power[0] != 0 {
		t.Error("zero profile mishandled")
	}
}

func TestMetricsOnSyntheticShapes(t *testing.T) {
	// A delta-like profile: huge sharpness, tiny HPBW, infinite PSLR.
	n := 360
	delta := Profile{Angles: UniformAngles(n), Power: make([]float64, n)}
	delta.Power[100] = 1
	if s := delta.Sharpness(); s < 100 {
		t.Errorf("delta sharpness = %v", s)
	}
	if w := delta.HalfPowerBeamwidth(); w > 3*2*math.Pi/float64(n) {
		t.Errorf("delta HPBW = %v", w)
	}
	if pslr := delta.PeakToSidelobe(); !math.IsInf(pslr, 1) {
		t.Errorf("delta PSLR = %v, want +Inf", pslr)
	}
	// A flat profile never drops below half power.
	flat := Profile{Angles: UniformAngles(n), Power: make([]float64, n)}
	for i := range flat.Power {
		flat.Power[i] = 1
	}
	if w := flat.HalfPowerBeamwidth(); w != 2*math.Pi {
		t.Errorf("flat HPBW = %v, want 2π", w)
	}
	// A two-lobe profile has a finite PSLR of peak/sidelobe.
	two := Profile{Angles: UniformAngles(n), Power: make([]float64, n)}
	two.Power[50] = 1
	two.Power[250] = 0.4
	if pslr := two.PeakToSidelobe(); math.Abs(pslr-2.5) > 1e-9 {
		t.Errorf("two-lobe PSLR = %v, want 2.5", pslr)
	}
}

func TestKindString(t *testing.T) {
	if KindQ.String() != "Q" || KindR.String() != "R" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestUniformAngles(t *testing.T) {
	a := UniformAngles(4)
	want := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Errorf("angle %d = %v, want %v", i, a[i], want[i])
		}
	}
}

// TestProfileInvariantToGlobalPhaseShift checks the θ_div cancellation as a
// property: adding any constant to every snapshot phase leaves both
// profiles unchanged.
func TestProfileInvariantToGlobalPhaseShift(t *testing.T) {
	p := testParams()
	base := synth(p, geom.V3(-2.0, 1.5, 0), 50, 0, 0, nil)
	angles := UniformAngles(180)
	ref := map[Kind]Profile{}
	for _, kind := range []Kind{KindQ, KindR} {
		prof, err := Compute2D(base, p, kind, angles)
		if err != nil {
			t.Fatal(err)
		}
		ref[kind] = prof
	}
	f := func(shiftRaw float64) bool {
		if math.IsNaN(shiftRaw) || math.IsInf(shiftRaw, 0) {
			return true
		}
		shift := mathx.WrapPhase(shiftRaw)
		shifted := make([]phase.Snapshot, len(base))
		for i, s := range base {
			s.Phase = mathx.WrapPhase(s.Phase + shift)
			shifted[i] = s
		}
		for _, kind := range []Kind{KindQ, KindR} {
			prof, err := Compute2D(shifted, p, kind, angles)
			if err != nil {
				return false
			}
			for i := range prof.Power {
				if math.Abs(prof.Power[i]-ref[kind].Power[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPeakTracksReaderRotation is a property over the whole azimuth circle:
// rotating the reader around the disk rotates the found peak with it.
func TestPeakTracksReaderRotation(t *testing.T) {
	p := testParams()
	f := func(azRaw float64) bool {
		if math.IsNaN(azRaw) || math.IsInf(azRaw, 0) {
			return true
		}
		az := geom.NormalizeAngle(azRaw)
		reader := p.Disk.Center.Add(geom.V3(2.2*math.Cos(az), 2.2*math.Sin(az), 0))
		snaps := synth(p, reader, 60, 0.5, 0, nil)
		got, _, err := FindPeak2D(snaps, p, KindR, SearchOptions{})
		if err != nil {
			return false
		}
		return geom.AngleDistance(got, az) < geom.Radians(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
