package spectrum

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
)

// TestPeakDegenerateProfiles is the regression test for the off-grid peak
// default: an all-zero (or all-tied) profile must report the *first grid
// point*, not angle 0, because 0 need not be on the grid at all.
func TestPeakDegenerateProfiles(t *testing.T) {
	flatZero := Profile{Angles: []float64{0.1, 0.2, 0.3}, Power: []float64{0, 0, 0}}
	if angle, power := flatZero.Peak(); angle != 0.1 || power != 0 {
		t.Errorf("all-zero 2D peak = (%v, %v), want (0.1, 0)", angle, power)
	}
	tied := Profile{Angles: []float64{1.5, 2.5}, Power: []float64{0.7, 0.7}}
	if angle, _ := tied.Peak(); angle != 1.5 {
		t.Errorf("tied 2D peak at %v, want first grid point 1.5", angle)
	}
	var empty Profile
	if angle, power := empty.Peak(); angle != 0 || power != 0 {
		t.Errorf("empty 2D peak = (%v, %v), want zeros", angle, power)
	}

	flat3D := Profile3D{
		Azimuths: []float64{0.4, 0.5},
		Polars:   []float64{0.1, 0.2},
		Power:    [][]float64{{0, 0}, {0, 0}},
	}
	if az, pol, power := flat3D.Peak(); az != 0.4 || pol != 0.1 || power != 0 {
		t.Errorf("all-zero 3D peak = (%v, %v, %v), want (0.4, 0.1, 0)", az, pol, power)
	}
	var empty3D Profile3D
	if az, pol, power := empty3D.Peak(); az != 0 || pol != 0 || power != 0 {
		t.Errorf("empty 3D peak = (%v, %v, %v), want zeros", az, pol, power)
	}
	// Rows may exist but be empty; still no out-of-range access.
	hollow := Profile3D{Azimuths: nil, Polars: []float64{0.3}, Power: [][]float64{{}}}
	if az, pol, power := hollow.Peak(); az != 0 || pol != 0 || power != 0 {
		t.Errorf("hollow 3D peak = (%v, %v, %v), want zeros", az, pol, power)
	}
}

// TestHalfPowerBeamwidthDegenerate guards the n<2 cases: a single sample
// carries no width information, so the metric must report NaN instead of a
// fictitious full-circle beamwidth.
func TestHalfPowerBeamwidthDegenerate(t *testing.T) {
	one := Profile{Angles: []float64{1.0}, Power: []float64{0.9}}
	if w := one.HalfPowerBeamwidth(); !math.IsNaN(w) {
		t.Errorf("single-sample HPBW = %v, want NaN", w)
	}
	var empty Profile
	if w := empty.HalfPowerBeamwidth(); !math.IsNaN(w) {
		t.Errorf("empty HPBW = %v, want NaN", w)
	}
}

// TestParallelSerialEquivalence2D asserts the parallel grid scan is
// bit-identical to the serial reference: same indices, same float64 bits.
func TestParallelSerialEquivalence2D(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.1, 0), 150, 0.8, 0, nil)
	angles := UniformAngles(1024)
	for _, kind := range []Kind{KindQ, KindR} {
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		par := ev.Profile2D(angles)
		ser := ev.Profile2DSerial(angles)
		for i := range ser.Power {
			if par.Power[i] != ser.Power[i] {
				t.Fatalf("%v: power[%d] parallel %v != serial %v", kind, i, par.Power[i], ser.Power[i])
			}
		}
	}
}

// TestParallelSerialEquivalence3D is the 3D analogue, covering the chunked
// row scan.
func TestParallelSerialEquivalence3D(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.0, 0.5, 0.9), 120, 0.3, 0, nil)
	az := UniformAngles(90)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 45)
	for _, kind := range []Kind{KindQ, KindR} {
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		par := ev.Profile3D(az, pol)
		ser := ev.Profile3DSerial(az, pol)
		for i := range ser.Power {
			for j := range ser.Power[i] {
				if par.Power[i][j] != ser.Power[i][j] {
					t.Fatalf("%v: power[%d][%d] parallel %v != serial %v",
						kind, i, j, par.Power[i][j], ser.Power[i][j])
				}
			}
		}
	}
}

// TestExhaustivePeakMatchesSerialScan checks the parallel argmax against a
// plain serial scan of the same grid, including the lowest-index tie rule.
func TestExhaustivePeakMatchesSerialScan(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-1.8, -1.4, 0), 80, 1.1, 0, nil)
	step := geom.Radians(0.1)
	gotAngle, gotPow, err := ExhaustivePeak2D(snaps, p, KindR, step)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	sc := ev.NewScratch()
	n := gridSteps(2*math.Pi, step)
	bestIdx, bestPow := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		if v := ev.EvalAt(sc, float64(i)*step, 0); v > bestPow {
			bestIdx, bestPow = i, v
		}
	}
	if gotAngle != float64(bestIdx)*step || gotPow != bestPow {
		t.Errorf("parallel exhaustive peak (%v, %v) != serial (%v, %v)",
			gotAngle, gotPow, float64(bestIdx)*step, bestPow)
	}
}

var evalSink float64

// TestEvalAtZeroAllocs pins the tentpole property: once an Evaluator and its
// Scratch exist, a candidate-angle evaluation performs zero heap
// allocations, for both profile kinds and both 2D and 3D candidates.
func TestEvalAtZeroAllocs(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.4, 0.9, 0.5), 200, 0.6, 0, nil)
	for _, kind := range []Kind{KindQ, KindR} {
		ev, err := NewEvaluator(snaps, p, kind)
		if err != nil {
			t.Fatal(err)
		}
		sc := ev.NewScratch()
		phi := 0.0
		allocs := testing.AllocsPerRun(200, func() {
			evalSink = ev.EvalAt(sc, phi, 0.2)
			evalSink += ev.EvalCoarse(sc, phi, 0)
			phi += 0.01
		})
		if allocs != 0 {
			t.Errorf("%v: EvalAt allocates %v per op, want 0", kind, allocs)
		}
	}
}

// TestEvaluatorConcurrentUse hammers one shared Evaluator from many
// goroutines, each with its own Scratch, alongside whole parallel grid
// scans. Run under -race this is the data-race test for the engine.
func TestEvaluatorConcurrentUse(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 100, 0.2, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	angles := UniformAngles(256)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 7)
	want := ev.Profile2DSerial(angles)
	// Per-goroutine sink slots: writing the shared evalSink global from the
	// workers would itself be the data race this test exists to rule out of
	// the engine.
	sinks := make([]float64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := ev.NewScratch()
			for k := 0; k < 50; k++ {
				sinks[g] += ev.EvalAt(sc, float64(g)+float64(k)*0.03, 0.1)
			}
			got := ev.Profile2D(angles)
			for i := range want.Power {
				if got.Power[i] != want.Power[i] {
					t.Errorf("goroutine %d: profile diverged at %d", g, i)
					return
				}
			}
			ev.Profile3D(angles[:32], pol)
		}(g)
	}
	wg.Wait()
	evalSink = sinks[0]
}

// TestCompute3DParallelSpeedup measures the wall-clock win of the parallel
// 3D scan over the serial reference on the coarse-scan-shaped grid. It needs
// real cores to mean anything, so it skips below GOMAXPROCS 4 (and under the
// race detector, where scheduling noise drowns the signal).
func TestCompute3DParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS = %d, need ≥4 for a meaningful speedup", runtime.GOMAXPROCS(0))
	}
	if raceEnabled {
		t.Skip("race detector skews timing")
	}
	p := testParams()
	snaps := synth(p, geom.V3(-2.1, 0.8, 0.7), 200, 0.5, 0, nil)
	ev, err := NewEvaluator(snaps, p, KindR)
	if err != nil {
		t.Fatal(err)
	}
	az := UniformAngles(360)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	// Warm up once, then take the best of 3 rounds each to shed scheduler
	// noise.
	ev.Profile3D(az, pol)
	ev.Profile3DSerial(az, pol)
	serial, parallel := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for round := 0; round < 3; round++ {
		start := time.Now()
		ev.Profile3DSerial(az, pol)
		if d := time.Since(start); d < serial {
			serial = d
		}
		start = time.Now()
		ev.Profile3D(az, pol)
		if d := time.Since(start); d < parallel {
			parallel = d
		}
	}
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v, speedup %.2fx at GOMAXPROCS=%d",
		serial, parallel, speedup, runtime.GOMAXPROCS(0))
	if speedup < 2 {
		t.Errorf("parallel Compute3D speedup %.2fx, want ≥2x", speedup)
	}
}

// --- micro-benchmarks (run with -benchmem to see the 0 allocs/op) ---

func benchEvaluator(b *testing.B, kind Kind, n int) *Evaluator {
	b.Helper()
	p := testParams()
	snaps := synth(p, geom.V3(-2.3, 1.0, 0.6), n, 0.9, 0, nil)
	ev, err := NewEvaluator(snaps, p, kind)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

func BenchmarkEvalAtQ(b *testing.B) {
	ev := benchEvaluator(b, KindQ, 200)
	sc := ev.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalSink = ev.EvalAt(sc, float64(i)*0.001, 0.1)
	}
}

func BenchmarkEvalAtR(b *testing.B) {
	ev := benchEvaluator(b, KindR, 200)
	sc := ev.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalSink = ev.EvalAt(sc, float64(i)*0.001, 0.1)
	}
}

func BenchmarkProfile3DCoarseSerial(b *testing.B) {
	ev := benchEvaluator(b, KindR, 200)
	az := UniformAngles(180)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Profile3DSerial(az, pol)
	}
}

func BenchmarkProfile3DCoarseParallel(b *testing.B) {
	ev := benchEvaluator(b, KindR, 200)
	az := UniformAngles(180)
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Profile3D(az, pol)
	}
}

func BenchmarkProfile2DSerial(b *testing.B) {
	ev := benchEvaluator(b, KindR, 200)
	angles := UniformAngles(720)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Profile2DSerial(angles)
	}
}

func BenchmarkProfile2DParallel(b *testing.B) {
	ev := benchEvaluator(b, KindR, 200)
	angles := UniformAngles(720)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Profile2D(angles)
	}
}
