package spectrum

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file holds the process-wide plan cache for uniform-grid trig tables.
//
// The uniform coarse grids the peak searches scan are keyed entirely by
// (first index, point count, step, trig mode): every locate at the default
// 0.5° grid asks for exactly the same handful of tables — one per chunk of
// the coarse sweep — yet before this cache each Evaluator rebuilt them on
// every scan. Both builders are deterministic functions of the key (the
// exact path is math.Sincos per point; the fast path is the rotation
// recurrence re-seeded every trigReseedInterval points), so a cached table
// is bit-identical to a fresh build and caching cannot perturb results.
//
// The cache is sharded (planShards maps, each under its own RWMutex) so
// concurrent scans on the shared compute pool don't serialize on one lock,
// and bounded (planShardCap entries per shard; beyond that new keys are
// built directly and not stored — grids are operator-configured, so in
// practice the working set is a few dozen keys). Hits copy the canonical
// table into the caller's Scratch: a memcpy of ≤ a few KiB against a sincos
// per point. First-build races are benign — both racers compute identical
// bytes and the first store wins — which is what keeps the fill path free
// of per-key once-guards.

const (
	// planShards is the shard count (power of two) of the cache.
	planShards = 16
	// planShardCap bounds each shard's entry count; the cache stops
	// inserting (but keeps serving hits) once a shard is full.
	planShardCap = 256
	// planMinN is the smallest table worth caching: below it the map
	// lookup costs about as much as building the table.
	planMinN = 8
)

// planKey identifies one uniform-grid trig table: points φ_k = (i0+k)·step
// for k ∈ [0, n), built with the exact or fast kernel.
type planKey struct {
	i0, n int
	step  float64
	fast  bool
}

func (k planKey) shard() uint64 {
	h := uint64(k.i0)*0x9e3779b97f4a7c15 ^ uint64(k.n)*0xbf58476d1ce4e5b9 ^ math.Float64bits(k.step)
	if k.fast {
		h ^= 0x94d049bb133111eb
	}
	h ^= h >> 29
	return h & (planShards - 1)
}

// trigPlan is one cached table. The slices are immutable after insertion.
type trigPlan struct {
	sin, cos []float64
}

type planShard struct {
	mu sync.RWMutex
	m  map[planKey]*trigPlan
}

type planCacheT struct {
	shards [planShards]planShard
	hits   atomic.Uint64
	misses atomic.Uint64
	// nonUniformMiss counts trig-table builds the cache could not even be
	// asked about: non-uniform angle grids have no (i0, n, step) key, so
	// fillAngleTrig builds per-point tables directly. A climbing rate in
	// production means traffic is on the NUFFT/dense non-uniform paths and
	// the plan cache's hit rate no longer describes most table builds.
	nonUniformMiss atomic.Uint64
}

var planCache planCacheT

// fill writes the table for key into dstSin/dstCos (both length key.n),
// serving from the cache when possible and inserting on miss.
func (pc *planCacheT) fill(dstSin, dstCos []float64, key planKey) {
	sh := &pc.shards[key.shard()]
	sh.mu.RLock()
	pl := sh.m[key]
	sh.mu.RUnlock()
	if pl != nil {
		copy(dstSin, pl.sin)
		copy(dstCos, pl.cos)
		pc.hits.Add(1)
		return
	}
	pc.misses.Add(1)
	buildUniformTrig(dstSin, dstCos, key.i0, key.step, key.fast)
	// Insert a private copy so the cached table cannot alias Scratch
	// memory. First store wins; a racing builder produced identical bytes
	// (the builders are deterministic), so dropping the loser changes
	// nothing.
	backing := make([]float64, 2*key.n)
	pl = &trigPlan{sin: backing[:key.n:key.n], cos: backing[key.n:]}
	copy(pl.sin, dstSin)
	copy(pl.cos, dstCos)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[planKey]*trigPlan)
	}
	if _, exists := sh.m[key]; !exists && len(sh.m) < planShardCap {
		sh.m[key] = pl
	}
	sh.mu.Unlock()
}

// PlanCacheStats is a point-in-time snapshot of the process-wide trig plan
// cache, shaped for expvar publication.
type PlanCacheStats struct {
	// Hits and Misses are cumulative fill counts since process start (or
	// the last ResetPlanCache).
	Hits, Misses uint64
	// NonUniformMiss counts cache-unservable table builds: non-uniform
	// angle grids carry no uniform-step key, so they bypass the cache
	// entirely. It is not part of HitRate (those builds never query the
	// cache); it exists so the bypass rate is visible next to the hit rate.
	NonUniformMiss uint64
	// Entries is the current number of cached tables across all shards.
	Entries int
	// HitRate is Hits / (Hits + Misses), 0 when no fills have happened.
	HitRate float64
}

// PlanCacheSnapshot reports the plan cache's counters and size.
func PlanCacheSnapshot() PlanCacheStats {
	st := PlanCacheStats{
		Hits:           planCache.hits.Load(),
		Misses:         planCache.misses.Load(),
		NonUniformMiss: planCache.nonUniformMiss.Load(),
	}
	for i := range planCache.shards {
		sh := &planCache.shards[i]
		sh.mu.RLock()
		st.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// ResetPlanCache empties the cache and zeroes its counters. It exists for
// tests and benchmark isolation; production code never needs it.
func ResetPlanCache() {
	for i := range planCache.shards {
		sh := &planCache.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
	planCache.hits.Store(0)
	planCache.misses.Store(0)
	planCache.nonUniformMiss.Store(0)
}
