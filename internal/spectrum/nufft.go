package spectrum

import (
	"math"
	"sync"
)

// This file holds the type-2 NUFFT synthesis stage: evaluating the harmonic
// coefficient fold (harmonic.go) on an *arbitrary* target grid, lifting the
// uniform-step restriction of the Chebyshev recurrences that back
// harmonicArgmax2D and friends.
//
// The harmonic fold produces a trigonometric polynomial
//
//	T(φ) = A₀ + 2·Σ_{m=1}^{M} (A_m·cos mφ + B_m·sin mφ)
//
// of bandwidth M = maxM (≈25 on the testbed). Evaluating T at n arbitrary
// angles directly costs O(n·M) plus one sincos per angle; the NUFFT route
// amortizes the per-target work down to O(1) in M:
//
//  1. Deconvolve: scale harmonic m by e^{+τm²}. Convolving with the
//     periodized Gaussian G_τ(x) = Σ_k e^{−(x+2πk)²/4τ} multiplies harmonic
//     m by e^{−τm²} (G_τ's Fourier coefficient, up to the quadrature
//     prefactor folded into the taps below), so the spread in step 3 lands
//     back on the original polynomial.
//  2. Synthesize the deconvolved polynomial on a uniform oversampled grid of
//     U = nextPow2(2·(2M+1)) points with the existing Chebyshev synthesis
//     (synthesizeComplex) over a plan-cached trig table — O(U·M) once,
//     shared by every target.
//  3. Spread: each target φ reads the 2W+1 nearest grid samples through
//     truncated Gaussian taps. With h = 2π/U, δ = φ − u₀h the offset from
//     the nearest grid point, the tap at grid point u₀+j is
//
//	w_j = e^{−(δ−jh)²/4τ} = E0·E1^j·E2_{|j|},
//	E0 = e^{−δ²/4τ}, E1 = e^{δh/2τ}, E2_j = e^{−(jh)²/4τ},
//
//     so the whole stencil costs two small-range exponentials (|exponent| ≤
//     π√(1−2M/U)/W < 0.4, a short Taylor polynomial suffices — see
//     nufftExpSmall) plus 2W running multiplies; E2 is a precomputed table
//     with the trapezoid prefactor h/(2√(πτ)) folded in.
//
// Error bound (Greengard–Lee / Dutt–Rokhlin analysis, derived in DESIGN.md
// §14): with the parameter balance τU² = πW/√(1−2M/U), the trapezoid
// aliasing error and the tap truncation error are equalized at
//
//	ε_kernel = O(e^{−πW·√(1−2M/U)}) ≤ e^{−πW/√2} ≈ 2e−8   (W = 8),
//
// relative to Σ_m |deconvolved coefficient| — comfortably inside the
// nufftSlackQ/nufftSlackR shortlist windows below. The oversampling
// U ≥ 2·(2M+1) guarantees 1 − 2M/U > 1/2, so the bound holds for every
// bandwidth the fold can produce; TestNUFFTSynthError pins the measured
// error at least an order of magnitude under the windows.
//
// Exactness contract: like every accelerated route in this package, the
// NUFFT argmax keeps the PR-7 shortlist-then-rescore contract — collect the
// cells within the documented window of the synthesized maximum, rescore
// them with the exact per-cell formula (ascending index, strict >) — so the
// returned index is bit-identical to the dense scan over the same angle
// grid. Synthesized *values* (profiles) carry the kernel error instead and
// are gated by their own slack contract.

const (
	// nufftHalfWidth is W: the Gaussian spreading stencil reaches W grid
	// points to each side of the target's nearest grid point. W = 8 puts
	// the kernel error near 2e−8 (see the bound above) at ~70 flops per
	// target; the shortlist windows hold two decades of margin over it.
	nufftHalfWidth = 8

	// nufftSlackQ bounds |NUFFT-synthesized − exact| per cell for Q values.
	// Budget: spreading kernel ≤ ~2e−8 (bound above, amplified ≤ e^{τM²} ≈
	// 3× by deconvolution), direct-regime synthesis ≤ the harmonic budget
	// (~1e−12), small-range exp polynomial ≤ 1e−9. Matching harmonicSlack
	// keeps one Q window constant per route family.
	nufftSlackQ = 1e-6

	// nufftSlackR bounds the extra per-cell error of the R weighting pass
	// when its pass-one phasor sums come from the spreader instead of the
	// exact synthesis: the spread error ≤ nufftSlackQ perturbs the robust
	// circular mean by Δμ̂ ≤ nufftSlackQ/nufftMuGuard ≈ 1e−4, and
	// |∂R/∂μ̂| ≤ wNorm·e^{−1/2}/σ_w ≈ 11 at the σ floor, giving ≤ 1.1e−4;
	// 2e−4 covers it with margin. Argmax windows add the coarse-kernel
	// term rCoarseRel·wNorm on top, exactly like harmonicArgmaxR2D.
	nufftSlackR = 2e-4

	// nufftMuGuard is the |Ŝ(φ)|/n floor below which a spread-sourced
	// robust mean is not trusted (the NUFFT analogue of muGuardFrac,
	// raised because the spreader's error is ~1e−7 instead of ~1e−12):
	// guarded cells fall back to the dense per-cell R evaluation inside
	// weightRowR, keeping the Δμ̂ term of the nufftSlackR budget honest.
	nufftMuGuard = 1e-2

	// nufftMinCells is the target count below which gridded spreading
	// loses to direct per-cell Chebyshev synthesis: the U·M grid synthesis
	// (~128·25 madds) amortizes only once ~128 targets each save their
	// O(M) recurrence plus a sincos. Below it the NUFFT route evaluates
	// targets directly (synthAt) — the small-count regime of a type-2
	// transform — with the same shortlist window.
	nufftMinCells = 128

	// uniformAngleTol is the absolute gap tolerance (radians) under which
	// an angle grid counts as uniform-step: UniformAngles grids pass at
	// ~1e−15 gap wobble, any intentional jitter is ≥ microradians.
	uniformAngleTol = 1e-9
)

// anglesApproxUniform reports whether the grid's consecutive gaps all match
// the first gap within uniformAngleTol. Grids shorter than 3 cells are
// trivially uniform. Profile metrics use it to reject bin-count arithmetic
// on non-uniform grids (HalfPowerBeamwidth), and the routing tests pin it.
func anglesApproxUniform(angles []float64) bool {
	if len(angles) < 3 {
		return true
	}
	g0 := angles[1] - angles[0]
	for k := 2; k < len(angles); k++ {
		if d := angles[k] - angles[k-1] - g0; d > uniformAngleTol || d < -uniformAngleTol {
			return false
		}
	}
	return true
}

// nufftExpSmall evaluates e^z for |z| ≤ 0.4 by a degree-9 Taylor polynomial
// (Horner). The remainder |z|¹⁰/10!·e^|z| is < 5e−11 on the domain — the
// spreading exponents δ²/4τ and |δ|h/2τ are both bounded by
// π√(1−2M/U)/W < 0.4 because δ is measured from the *nearest* grid point —
// so the running-product weights stay within ~1e−9 of math.Exp at a tenth
// of its cost.
func nufftExpSmall(z float64) float64 {
	return 1 + z*(1+z*(1.0/2+z*(1.0/6+z*(1.0/24+z*(1.0/120+z*(1.0/720+
		z*(1.0/5040+z*(1.0/40320+z*(1.0/362880)))))))))
}

// nufftScratch holds one prepared spreading plan: the τ/U parameters, the
// deconvolution and tap tables, the oversampled grid trig (plan-cached), and
// the halo-padded grid buffers. Plans depend only on the fold's maxM, so a
// pooled instance is almost always reused as-is; prepare rebuilds the tables
// only when maxM changes.
type nufftScratch struct {
	maxM    int
	u       int     // oversampled grid size (power of two)
	h       float64 // grid step 2π/u
	invH    float64
	invU    float64
	e0Scale float64 // 1/(4τ)
	e1Scale float64 // h/(2τ)
	// deconv[m] = e^{+τm²}; taps[j] = (h/2√(πτ))·e^{−(jh)²/4τ}.
	deconv []float64
	taps   []float64
	coeffs harmonicCoeffs // deconvolved copy of the caller's fold
	// haloRe/haloIm hold the grid synthesis with nufftHalfWidth wrapped
	// cells replicated on each side, so the spreading stencil never
	// branches on the circular seam: halo[i] is grid cell (i−W) mod u.
	haloRe, haloIm []float64
	sinU, cosU     []float64
}

var nufftPool = sync.Pool{New: func() any { return new(nufftScratch) }}

// prepare sizes the plan for a fold of bandwidth maxM. U doubles the Nyquist
// count 2M+1 and rounds to a power of two, so the oversampling factor is
// always ≥ 2 and the aliasing term of the error bound never degenerates.
func (p *nufftScratch) prepare(maxM int) {
	if p.maxM == maxM && p.u != 0 {
		return
	}
	const w = nufftHalfWidth
	u := 1
	for u < 2*(2*maxM+1) {
		u <<= 1
	}
	h := 2 * math.Pi / float64(u)
	// τU² = πW/√(1−2M/U) balances grid aliasing e^{−τU(U−2M)} against tap
	// truncation e^{−(Wh)²/4τ}; both land at e^{−πW√(1−2M/U)}.
	frac := 1 - float64(2*maxM)/float64(u)
	tau := math.Pi * float64(w) / (math.Sqrt(frac) * float64(u) * float64(u))
	p.maxM = maxM
	p.u = u
	p.h = h
	p.invH = 1 / h
	p.invU = 1 / float64(u)
	p.e0Scale = 1 / (4 * tau)
	p.e1Scale = h / (2 * tau)
	if cap(p.deconv) < maxM+1 {
		p.deconv = make([]float64, maxM+1)
	}
	p.deconv = p.deconv[:maxM+1]
	deconv := p.deconv
	for m := range deconv {
		deconv[m] = math.Exp(tau * float64(m*m))
	}
	if cap(p.taps) < w+1 {
		p.taps = make([]float64, w+1)
	}
	p.taps = p.taps[:w+1]
	pref := h / (2 * math.Sqrt(math.Pi*tau))
	taps := p.taps
	for j := range taps {
		taps[j] = pref * math.Exp(-float64(j*j)*h*h*p.e0Scale)
	}
	need := u + 2*w + 1
	if cap(p.haloRe) < need {
		backing := make([]float64, 2*need)
		p.haloRe = backing[:need:need]
		p.haloIm = backing[need:]
	}
	p.haloRe = p.haloRe[:need]
	p.haloIm = p.haloIm[:need]
	if cap(p.sinU) < u {
		backing := make([]float64, 2*u)
		p.sinU = backing[:u:u]
		p.cosU = backing[u:]
	}
	p.sinU = p.sinU[:u]
	p.cosU = p.cosU[:u]
	// The oversampled grid is uniform by construction, so its trig table
	// comes from the shared plan cache like every uniform coarse grid.
	planCache.fill(p.sinU, p.cosU, planKey{i0: 0, n: u, step: h, fast: false})
}

// gridSynth runs steps 1–2: deconvolve hc into p.coeffs and synthesize the
// deconvolved polynomial onto the halo-padded oversampled grid.
func (p *nufftScratch) gridSynth(hc *harmonicCoeffs) {
	p.prepare(hc.maxM)
	const w = nufftHalfWidth
	u := p.u
	nb := hc.maxM + 1
	p.coeffs.reset(hc.maxM)
	deconv := p.deconv[:nb]
	srcARe, srcAIm := hc.aRe[:nb], hc.aIm[:nb]
	srcBRe, srcBIm := hc.bRe[:nb], hc.bIm[:nb]
	dstARe, dstAIm := p.coeffs.aRe[:nb], p.coeffs.aIm[:nb]
	dstBRe, dstBIm := p.coeffs.bRe[:nb], p.coeffs.bIm[:nb]
	for m := 0; m < nb; m++ {
		d := deconv[m]
		dstARe[m] = srcARe[m] * d
		dstAIm[m] = srcAIm[m] * d
		dstBRe[m] = srcBRe[m] * d
		dstBIm[m] = srcBIm[m] * d
	}
	p.coeffs.n = hc.n
	p.coeffs.maxM = hc.maxM
	p.coeffs.synthesizeComplex(p.haloRe[w:w+u], p.haloIm[w:w+u], p.sinU, p.cosU)
	hr, hi := p.haloRe, p.haloIm
	copy(hr[:w], hr[u:u+w])
	copy(hi[:w], hi[u:u+w])
	copy(hr[w+u:w+u+w+1], hr[w:w+w+1])
	copy(hi[w+u:w+u+w+1], hi[w:w+w+1])
}

// spreadComplex runs step 3 for complex outputs: outRe/outIm[k] ≈
// Ŝ(angles[k])/n. gridSynth must have run for the same fold.
func (p *nufftScratch) spreadComplex(angles, outRe, outIm []float64) {
	const w = nufftHalfWidth
	uF := float64(p.u)
	invH, invU, h := p.invH, p.invU, p.h
	e0Scale, e1Scale := p.e0Scale, p.e1Scale
	taps := p.taps[:w+1]
	hr, hi := p.haloRe, p.haloIm
	outRe = outRe[:len(angles)]
	outIm = outIm[:len(angles)]
	for k, phi := range angles {
		x := phi * invH
		x -= math.Floor(x*invU) * uF // grid units, wrapped into [0, u]
		u0 := int(x + 0.5)           // nearest grid index
		d := (x - float64(u0)) * h   // offset in radians, |d| ≤ h/2
		e0 := nufftExpSmall(-d * d * e0Scale)
		t := d * e1Scale
		e1 := nufftExpSmall(t)
		e1i := nufftExpSmall(-t)
		hrw := hr[u0 : u0+2*w+1]
		hiw := hi[u0 : u0+2*w+1]
		t0 := e0 * taps[0]
		re := t0 * hrw[w]
		im := t0 * hiw[w]
		pf, pb := e0, e0
		for j := 1; j <= w; j++ {
			pf *= e1
			pb *= e1i
			tj := taps[j]
			wf, wb := tj*pf, tj*pb
			re += wf*hrw[w+j] + wb*hrw[w-j]
			im += wf*hiw[w+j] + wb*hiw[w-j]
		}
		outRe[k] = re
		outIm[k] = im
	}
}

// spreadMag is spreadComplex for the magnitude-only Q route: out[k] ≈
// |Ŝ(angles[k])|/n without materializing the complex intermediates.
func (p *nufftScratch) spreadMag(angles, out []float64) {
	const w = nufftHalfWidth
	uF := float64(p.u)
	invH, invU, h := p.invH, p.invU, p.h
	e0Scale, e1Scale := p.e0Scale, p.e1Scale
	taps := p.taps[:w+1]
	hr, hi := p.haloRe, p.haloIm
	out = out[:len(angles)]
	for k, phi := range angles {
		x := phi * invH
		x -= math.Floor(x*invU) * uF
		u0 := int(x + 0.5)
		d := (x - float64(u0)) * h
		e0 := nufftExpSmall(-d * d * e0Scale)
		t := d * e1Scale
		e1 := nufftExpSmall(t)
		e1i := nufftExpSmall(-t)
		hrw := hr[u0 : u0+2*w+1]
		hiw := hi[u0 : u0+2*w+1]
		t0 := e0 * taps[0]
		re := t0 * hrw[w]
		im := t0 * hiw[w]
		pf, pb := e0, e0
		for j := 1; j <= w; j++ {
			pf *= e1
			pb *= e1i
			tj := taps[j]
			wf, wb := tj*pf, tj*pb
			re += wf*hrw[w+j] + wb*hrw[w-j]
			im += wf*hiw[w+j] + wb*hiw[w-j]
		}
		out[k] = math.Sqrt(re*re + im*im)
	}
}

// synthAtComplex evaluates the normalized complex phasor sum Ŝ(φ)/n at one
// arbitrary angle by direct Chebyshev recurrence — the small-count regime of
// the type-2 transform (and the hierarchical scanner's basin evaluator).
func (h *harmonicCoeffs) synthAtComplex(phi float64) (float64, float64) {
	s1, c1 := math.Sincos(phi)
	nb := h.maxM + 1
	aRe, aIm := h.aRe[:nb], h.aIm[:nb]
	bRe, bIm := h.bRe[:nb], h.bIm[:nb]
	if len(aRe) == 0 {
		return 0, 0
	}
	sumRe, sumIm := aRe[0], aIm[0]
	cPrev, sPrev := 1.0, 0.0
	cCur, sCur := c1, s1
	for m := 1; m < nb; m++ {
		sumRe += 2 * (aRe[m]*cCur + bRe[m]*sCur)
		sumIm += 2 * (aIm[m]*cCur + bIm[m]*sCur)
		cCur, cPrev = 2*c1*cCur-cPrev, cCur
		sCur, sPrev = 2*c1*sCur-sPrev, sCur
	}
	inv := 1 / float64(h.n)
	return sumRe * inv, sumIm * inv
}

// synthAt is synthAtComplex's magnitude: |Ŝ(φ)|/n at one arbitrary angle.
func (h *harmonicCoeffs) synthAt(phi float64) float64 {
	re, im := h.synthAtComplex(phi)
	return math.Sqrt(re*re + im*im)
}

// nufftSynthQ fills out[k] with the synthesized |Ŝ(angles[k])|/n, choosing
// gridded spreading or direct per-cell synthesis by target count. Values are
// within nufftSlackQ of the exact dense profile.
func nufftSynthQ(hc *harmonicCoeffs, angles, out []float64) {
	if len(angles) >= nufftMinCells {
		p := nufftPool.Get().(*nufftScratch)
		p.gridSynth(hc)
		p.spreadMag(angles, out)
		nufftPool.Put(p)
		return
	}
	out = out[:len(angles)]
	for k, phi := range angles {
		out[k] = hc.synthAt(phi)
	}
}

// nufftSynthComplex is nufftSynthQ for complex outputs — the pass-one feed
// of the R weighting replay.
func nufftSynthComplex(hc *harmonicCoeffs, angles, outRe, outIm []float64) {
	if len(angles) >= nufftMinCells {
		p := nufftPool.Get().(*nufftScratch)
		p.gridSynth(hc)
		p.spreadComplex(angles, outRe, outIm)
		nufftPool.Put(p)
		return
	}
	outRe = outRe[:len(angles)]
	outIm = outIm[:len(angles)]
	for k, phi := range angles {
		outRe[k], outIm[k] = hc.synthAtComplex(phi)
	}
}

// nufftSelectQ returns the dense-scan argmax index over an arbitrary angle
// grid for KindQ, from already-folded coefficients: synthesize every cell
// (NUFFT or direct), shortlist within 2·nufftSlackQ of the synthesized
// maximum, exact-rescore. hc may be the batch fold or the streaming
// Accumulator's coefficients — both routes share this selection, which is
// what makes streamed and batch angle-grid peaks bit-identical.
func (e *Evaluator) nufftSelectQ(terms termSlices, hc *harmonicCoeffs, angles []float64, hs *harmonicScratch) int {
	n := len(angles)
	if cap(hs.vals) < n {
		hs.vals = make([]float64, n)
	}
	vals := hs.vals[:n]
	nufftSynthQ(hc, angles, vals)
	maxV := math.Inf(-1)
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	cand := hs.cand[:0]
	for k, v := range vals {
		if v >= maxV-2*nufftSlackQ {
			cand = append(cand, k)
		}
	}
	hs.cand = cand
	return e.rescoreAngles(terms, cand, angles)
}

// nufftSelectR is nufftSelectQ for KindR: the spread (or direct) complex
// sums feed the same two-pass robust weighting kernel the uniform harmonic-R
// route uses (weightRowR with shortlist-grade coarse kernels), with the μ̂
// guard raised to nufftMuGuard and the window widened to cover both the
// spreader and the coarse kernels. The exact rescore then erases all of it.
func (e *Evaluator) nufftSelectR(terms termSlices, hc *harmonicCoeffs, angles []float64, hs *harmonicScratch) int {
	n := len(angles)
	if cap(hs.vals) < n {
		hs.vals = make([]float64, n)
	}
	vals := hs.vals[:n]
	sc := e.getScratch()
	fillAngleTrigExact(sc, angles)
	sc.ensureRow(n)
	qRe := sc.sumRe[:n]
	qIm := sc.sumIm[:n]
	nufftSynthComplex(hc, angles, qRe, qIm)
	e.weightRowR(terms, sc, 1, sc.sinPhi[:n], sc.cosPhi[:n], qRe, qIm, vals, true, nufftMuGuard)
	e.putScratch(sc)
	maxV := math.Inf(-1)
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	window := 2 * (nufftSlackR + rCoarseRel*e.wNorm)
	cand := hs.cand[:0]
	for k, v := range vals {
		if v >= maxV-window {
			cand = append(cand, k)
		}
	}
	hs.cand = cand
	return e.rescoreAngles(terms, cand, angles)
}

// nufftArgmaxQ is the batch entry: fold the coefficients over terms (γ = 0)
// and select on the angle grid.
func (e *Evaluator) nufftArgmaxQ(terms termSlices, angles []float64) int {
	hs := harmPool.Get().(*harmonicScratch)
	foldTermsHarmonic(hs, terms, 1)
	idx := e.nufftSelectQ(terms, &hs.coeffs, angles, hs)
	harmPool.Put(hs)
	return idx
}

// nufftArgmaxR is the batch KindR entry.
func (e *Evaluator) nufftArgmaxR(terms termSlices, angles []float64) int {
	hs := harmPool.Get().(*harmonicScratch)
	foldTermsHarmonic(hs, terms, 1)
	idx := e.nufftSelectR(terms, &hs.coeffs, angles, hs)
	harmPool.Put(hs)
	return idx
}
