package spectrum

import (
	"math"

	"github.com/tagspin/tagspin/internal/mathx"
)

// This file holds the batched row kernels: evaluating a whole row of
// candidate azimuths (fixed γ) against the snapshot terms in one call.
// Grid scans — Profile2D/3D, the argmax coarse passes of both FindPeak
// paths, and ExhaustivePeak2D — all funnel through evalRow.
//
// Exact mode reproduces the single-candidate arithmetic bit for bit: the
// candidate trig table is filled with math.Sincos per point, and the Q
// kernel, although loop-interchanged (snapshots outer, candidates inner),
// accumulates each candidate's phasor sum in the same snapshot order with
// the same expression shapes as evalQExact, so float rounding is
// identical. Fast mode replaces the per-snapshot sincos with
// mathx.FastSincos and fills uniform-grid tables with the rotation
// recurrence below.

// trigReseedInterval is how many rotation-recurrence steps the fast
// uniform-grid trig table takes between exact math.Sincos re-seeds. Each
// recurrence step multiplies by the unit phasor e^{iΔφ} and so compounds
// ~1 ulp of rounding per step; 64 steps keep the accumulated drift below
// ~1e-14 rad — three orders of magnitude under the FastSincos budget —
// while amortizing the seed sincos across the row.
const trigReseedInterval = 64

// fillAngleTrig fills sc.sinPhi/cosPhi with the trig of arbitrary
// candidate angles. The exact path must use math.Sincos so grid scans stay
// bit-identical to per-candidate evaluation; the fast path uses the
// bounded-error kernel (the per-candidate trig is one call amortized over
// every snapshot, so this is not the hot sincos — but keeping it fast
// avoids a second code shape).
func (e *Evaluator) fillAngleTrig(sc *Scratch, angles []float64) {
	sc.ensureRow(len(angles))
	if len(angles) >= planMinN {
		// Cache-unservable build: arbitrary angles have no uniform-step
		// plan key. Counted (like fillAngleTrigExact) so the non-uniform
		// bypass rate shows up next to the plan-cache hit rate.
		planCache.nonUniformMiss.Add(1)
	}
	if e.fastTrig {
		for k, phi := range angles {
			sc.sinPhi[k], sc.cosPhi[k] = mathx.FastSincos(phi)
		}
		return
	}
	for k, phi := range angles {
		sc.sinPhi[k], sc.cosPhi[k] = math.Sincos(phi)
	}
}

// fillUniformTrig fills sc.sinPhi/cosPhi for the uniform grid points
// φ_k = (i0+k)·step, k ∈ [0, n). Tables large enough to be worth a map
// lookup are served from the process-wide plan cache (plancache.go) —
// repeated locates at the same grid skip table construction entirely —
// and both cache paths produce exactly the bytes buildUniformTrig would,
// so results are unchanged.
func (e *Evaluator) fillUniformTrig(sc *Scratch, i0, n int, step float64) {
	sc.ensureRow(n)
	if n >= planMinN {
		planCache.fill(sc.sinPhi[:n], sc.cosPhi[:n], planKey{i0: i0, n: n, step: step, fast: e.fastTrig})
		return
	}
	buildUniformTrig(sc.sinPhi[:n], sc.cosPhi[:n], i0, step, e.fastTrig)
}

// buildUniformTrig computes sin/cos of the uniform grid points
// φ_k = (i0+k)·step into sin[:n]/cos[:n] (n = len(sin)). The angle values
// are computed as float64(i0+k)*step — exactly the expression the peak
// searches have always used — so the exact path stays bit-identical to
// PR-1. It is a pure function of (i0, step, fast, n), which is what makes
// the plan cache sound.
//
// The fast path hoists the per-candidate sincos through the rotation
// recurrence e^{iφ_{k+1}} = e^{iφ_k}·e^{iΔφ}: two multiplies and two adds
// per grid point instead of a sincos, re-seeded from math.Sincos every
// trigReseedInterval points so rounding drift cannot accumulate past
// ~1e-14 rad (TestUniformTrigRecurrenceDrift pins this).
func buildUniformTrig(sin, cos []float64, i0 int, step float64, fast bool) {
	n := len(sin)
	if !fast {
		for k := 0; k < n; k++ {
			sin[k], cos[k] = math.Sincos(float64(i0+k) * step)
		}
		return
	}
	sinStep, cosStep := math.Sincos(step)
	var s, c float64
	for k := 0; k < n; k++ {
		if k%trigReseedInterval == 0 {
			s, c = math.Sincos(float64(i0+k) * step)
		} else {
			s, c = s*cosStep+c*sinStep, c*cosStep-s*sinStep
		}
		sin[k], cos[k] = s, c
	}
}

// evalRow evaluates candidates 0..n-1 of the prepared trig tables at fixed
// gamma, writing the profile values of the requested kind into out[:n]. The
// caller must have filled sc.sinPhi/cosPhi (fillAngleTrig or
// fillUniformTrig) for exactly these candidates. kind is a parameter rather
// than e.kind so the Q-prescreen pass can run the cheap Q kernel on an
// R-configured Evaluator.
func (e *Evaluator) evalRow(kind Kind, terms termSlices, sc *Scratch, gamma float64, n int, out []float64) {
	cg := math.Cos(gamma)
	if kind != KindR {
		e.evalRowQ(terms, sc, cg, n, out)
		return
	}
	e.evalRowR(terms, sc, cg, n, out)
}

// evalRowQ is the loop-interchanged Q kernel: snapshots outer, candidates
// inner. Each term's fields live in registers across the whole row, and
// each candidate's phasor sum still accumulates in snapshot order — which
// is what keeps the exact path bit-identical to evalQExact.
func (e *Evaluator) evalRowQ(terms termSlices, sc *Scratch, cg float64, n int, out []float64) {
	sumRe := sc.sumRe[:n]
	sumIm := sc.sumIm[:n]
	for k := range sumRe {
		sumRe[k], sumIm[k] = 0, 0
	}
	sinPhi := sc.sinPhi[:n]
	cosPhi := sc.cosPhi[:n]
	m := terms.n()
	if e.fastTrig {
		for i := 0; i < m; i++ {
			tScale, tCosA, tSinA, tRel := terms.scale[i], terms.cosA[i], terms.sinA[i], terms.relPhase[i]
			for k := 0; k < n; k++ {
				aperture := tScale * (tCosA*cosPhi[k] + tSinA*sinPhi[k]) * cg
				s, c := mathx.FastSincos(tRel + aperture)
				sumRe[k] += c
				sumIm[k] += s
			}
		}
		inv := 1 / float64(m)
		for k := 0; k < n; k++ {
			out[k] = math.Sqrt(sumRe[k]*sumRe[k]+sumIm[k]*sumIm[k]) * inv
		}
		return
	}
	for i := 0; i < m; i++ {
		tScale, tCosA, tSinA, tRel := terms.scale[i], terms.cosA[i], terms.sinA[i], terms.relPhase[i]
		for k := 0; k < n; k++ {
			aperture := tScale * (tCosA*cosPhi[k] + tSinA*sinPhi[k]) * cg
			s, c := math.Sincos(tRel + aperture)
			sumRe[k] += c
			sumIm[k] += s
		}
	}
	for k := 0; k < n; k++ {
		out[k] = math.Hypot(sumRe[k], sumIm[k]) / float64(m)
	}
}

// evalRowR evaluates an R-profile row candidate by candidate: the circular
// mean that cancels the shared reference noise needs all of a candidate's
// residuals before the weighting pass, so a full interchange would need an
// n×m intermediate. The row form still amortizes the candidate trig table
// and, in fast mode, runs both snapshot passes on the fast kernel.
func (e *Evaluator) evalRowR(terms termSlices, sc *Scratch, cg float64, n int, out []float64) {
	sinPhi := sc.sinPhi[:n]
	cosPhi := sc.cosPhi[:n]
	if e.fastTrig {
		for k := 0; k < n; k++ {
			out[k] = e.evalRFast(terms, sc, sinPhi[k], cosPhi[k], cg)
		}
		return
	}
	for k := 0; k < n; k++ {
		out[k] = e.evalRExact(terms, sc, sinPhi[k], cosPhi[k], cg)
	}
}
