package spectrum

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
)

// jitteredAngles builds a sorted non-uniform candidate grid: the uniform
// n-cell circle with each point displaced by up to jitter·step. Sorting
// keeps the grid monotone (like a real survey grid) without restoring
// uniform spacing.
func jitteredAngles(n int, jitter float64, rng *rand.Rand) []float64 {
	step := 2 * math.Pi / float64(n)
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = (float64(i) + jitter*(2*rng.Float64()-1)) * step
	}
	sort.Float64s(angles)
	return angles
}

// synthJittered is synth with non-uniform sampling instants: each snapshot's
// time is displaced by up to tJitter of the nominal spacing, modeling the
// jittered-ω spindisk actuator. The aperture angles ω·t_i inherit the
// jitter, so the session exercises the non-uniform-aperture fold.
func synthJittered(p Params, reader geom.Vec3, n int, sigma, tJitter float64, rng *rand.Rand) []phase.Snapshot {
	period := p.Disk.Period()
	snaps := make([]phase.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		f := (float64(i) + tJitter*(2*rng.Float64()-1)) / float64(n)
		if f < 0 {
			f = 0
		}
		tm := time.Duration(float64(period) * f)
		tagPos := p.Disk.TagPosition(tm)
		ph := 4*math.Pi*tagPos.DistanceTo(reader)/testWave + 0.8
		if sigma > 0 {
			ph += rng.NormFloat64() * sigma
		}
		snaps = append(snaps, phase.Snapshot{
			Time:        tm,
			Phase:       mathx.WrapPhase(ph),
			FrequencyHz: testFreq,
		})
	}
	return snaps
}

// TestNUFFTSynthQError pins the value contract of nufftSynthQ: synthesized
// Q values on jittered grids stay within nufftSlackQ of the exact dense
// profile, in both the gridded-spreading regime (≥ nufftMinCells) and the
// direct per-cell regime below it.
func TestNUFFTSynthQError(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 30; trial++ {
		snaps := synth(p, randReader(rng, true), 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{64, nufftMinCells, 720} {
			angles := jitteredAngles(n, 0.35, rng)
			var exact Profile
			ev.Profile2DInto(&exact, angles)
			hs := harmPool.Get().(*harmonicScratch)
			foldTermsHarmonic(hs, ev.terms, 1)
			got := make([]float64, n)
			nufftSynthQ(&hs.coeffs, angles, got)
			harmPool.Put(hs)
			for k := range got {
				if d := math.Abs(got[k] - exact.Power[k]); d > nufftSlackQ {
					t.Fatalf("trial %d, %d cells: |synth-exact| = %v at cell %d exceeds %v",
						trial, n, d, k, nufftSlackQ)
				}
			}
		}
	}
}

// TestNUFFTSpreadMatchesDirect pins the spreader itself: on grids large
// enough to spread, the gridded Gaussian-kernel values must sit within the
// truncation bound (~2e-8 for W = 8) of the direct per-cell synthesis —
// the harmonic truncation error is common to both and cancels.
func TestNUFFTSpreadMatchesDirect(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(502))
	const spreadTol = 5e-8
	for trial := 0; trial < 20; trial++ {
		snaps := synth(p, randReader(rng, true), 30+rng.Intn(90), rng.Float64()*2, rng.Float64()*0.15, rng)
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		angles := jitteredAngles(nufftMinCells+rng.Intn(600), 0.35, rng)
		hs := harmPool.Get().(*harmonicScratch)
		foldTermsHarmonic(hs, ev.terms, 1)
		spread := make([]float64, len(angles))
		nufftSynthQ(&hs.coeffs, angles, spread)
		for k, phi := range angles {
			if d := math.Abs(spread[k] - hs.coeffs.synthAt(phi)); d > spreadTol {
				t.Fatalf("trial %d: spread error %v at cell %d exceeds %v", trial, d, k, spreadTol)
			}
		}
		harmPool.Put(hs)
	}
}

// TestNUFFTArgmaxBitIdentity is the routing contract: FindPeak2DAnglesEval
// with the NUFFT route (Auto) must return the dense scan's (azimuth, power)
// bit for bit, for both kinds, across jittered grids spanning the
// direct-synthesis and gridded-spreading regimes (including the
// nufftMinCells seam) and randomized sessions.
func TestNUFFTArgmaxBitIdentity(t *testing.T) {
	p := testParams()
	grids := []int{48, nufftMinCells - 1, nufftMinCells, nufftMinCells + 1, 720}
	for _, kind := range []Kind{KindQ, KindR} {
		name := "Q"
		if kind == KindR {
			name = "R"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(510 + int64(kind)))
			for trial := 0; trial < 25; trial++ {
				snaps := synth(p, randReader(rng, true), 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
				ev, err := NewEvaluator(snaps, p, kind)
				if err != nil {
					t.Fatal(err)
				}
				n := grids[trial%len(grids)]
				angles := jitteredAngles(n, 0.35, rng)
				gotAz, gotPow := FindPeak2DAnglesEval(ev, angles, SearchOptions{})
				wantAz, wantPow := FindPeak2DAnglesEval(ev, angles, SearchOptions{NUFFT: ToggleOff})
				if gotAz != wantAz || gotPow != wantPow {
					t.Fatalf("trial %d, %d cells: NUFFT (%v, %v) != dense (%v, %v)",
						trial, n, gotAz, gotPow, wantAz, wantPow)
				}
			}
		})
	}
}

// TestNUFFTJitteredOmegaSession repeats the bit-identity check on sessions
// whose sampling instants are themselves jittered (a wobbling actuator):
// non-uniform apertures AND a non-uniform candidate grid together.
func TestNUFFTJitteredOmegaSession(t *testing.T) {
	p := testParams()
	for _, kind := range []Kind{KindQ, KindR} {
		name := "Q"
		if kind == KindR {
			name = "R"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(520 + int64(kind)))
			for trial := 0; trial < 15; trial++ {
				snaps := synthJittered(p, randReader(rng, true), 40+rng.Intn(80), rng.Float64()*0.15, 0.4, rng)
				ev, err := NewEvaluator(snaps, p, kind)
				if err != nil {
					t.Fatal(err)
				}
				angles := jitteredAngles(720, 0.35, rng)
				gotAz, gotPow := FindPeak2DAnglesEval(ev, angles, SearchOptions{})
				wantAz, wantPow := FindPeak2DAnglesEval(ev, angles, SearchOptions{NUFFT: ToggleOff})
				if gotAz != wantAz || gotPow != wantPow {
					t.Fatalf("trial %d: NUFFT (%v, %v) != dense (%v, %v)",
						trial, gotAz, gotPow, wantAz, wantPow)
				}
			}
		})
	}
}

// TestAnglesRoutingCounters drives every (kind × toggle) combination of the
// angle-grid entry points and checks exactly one routing counter moves —
// the expvar surface operators use to confirm which path served traffic.
func TestAnglesRoutingCounters(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(530))
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	angles := jitteredAngles(720, 0.35, rng)
	cases := []struct {
		name string
		kind Kind
		opts SearchOptions
		pick func(SearchStats) uint64
	}{
		{"Q-auto", KindQ, SearchOptions{}, func(s SearchStats) uint64 { return s.NUFFT2D }},
		{"Q-on", KindQ, SearchOptions{NUFFT: ToggleOn}, func(s SearchStats) uint64 { return s.NUFFT2D }},
		{"Q-off", KindQ, SearchOptions{NUFFT: ToggleOff}, func(s SearchStats) uint64 { return s.DenseNU2D }},
		{"R-auto", KindR, SearchOptions{}, func(s SearchStats) uint64 { return s.NUFFTR2D }},
		{"R-on", KindR, SearchOptions{NUFFT: ToggleOn}, func(s SearchStats) uint64 { return s.NUFFTR2D }},
		{"R-off", KindR, SearchOptions{NUFFT: ToggleOff}, func(s SearchStats) uint64 { return s.DenseNU2D }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, err := NewEvaluator(snaps, p, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			ResetSearchStats()
			FindPeak2DAnglesEval(ev, angles, tc.opts)
			st := SearchStatsSnapshot()
			if got := tc.pick(st); got != 1 {
				t.Fatalf("expected routing counter = 1, snapshot %+v", st)
			}
			if total := st.NUFFT2D + st.NUFFTR2D + st.DenseNU2D; total != 1 {
				t.Fatalf("expected exactly one angle-grid route, snapshot %+v", st)
			}
		})
	}

	t.Run("profile", func(t *testing.T) {
		var prof Profile
		small := jitteredAngles(nufftMinCells-1, 0.35, rng)
		cases := []struct {
			name   string
			kind   Kind
			opts   SearchOptions
			angles []float64
			want   uint64
		}{
			{"Q-auto-large", KindQ, SearchOptions{}, angles, 1},
			{"Q-off", KindQ, SearchOptions{NUFFT: ToggleOff}, angles, 0},
			{"Q-small", KindQ, SearchOptions{}, small, 0},
			{"R-auto-large", KindR, SearchOptions{}, angles, 0},
		}
		for _, tc := range cases {
			ev, err := NewEvaluator(snaps, p, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			ResetSearchStats()
			ev.Profile2DIntoOpt(&prof, tc.angles, tc.opts)
			if got := SearchStatsSnapshot().NUFFTProfile; got != tc.want {
				t.Fatalf("%s: NUFFTProfile = %d, want %d", tc.name, got, tc.want)
			}
		}
	})

	t.Run("hier-synth", func(t *testing.T) {
		ev, err := NewEvaluator(snaps, p, KindQ)
		if err != nil {
			t.Fatal(err)
		}
		hier := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOn}
		ResetSearchStats()
		FindPeak2DEval(ev, hier)
		if st := SearchStatsSnapshot(); st.HierSynth != 0 {
			t.Fatalf("HierSynth moved without NUFFT: On: %+v", st)
		}
		hier.NUFFT = ToggleOn
		ResetSearchStats()
		FindPeak2DEval(ev, hier)
		st := SearchStatsSnapshot()
		if st.Hier2D != 1 {
			t.Fatalf("expected the hierarchical route, snapshot %+v", st)
		}
		if st.HierSynth != 1 {
			t.Fatalf("expected synthesized basin evals, snapshot %+v", st)
		}
	})
}

// TestHierSynthBitIdentity pins the widened capture bound: hierarchical
// scans with synthesized basin evaluation (NUFFT: On) must return the dense
// scan's KindQ peak bit for bit in 2D and 3D; KindR inherits the rescore
// route's within-one-cell contract.
func TestHierSynthBitIdentity(t *testing.T) {
	p := testParams()
	synthOpts := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOn, NUFFT: ToggleOn}
	dense := SearchOptions{HarmonicEval: ToggleOff, Hierarchical: ToggleOff}

	t.Run("2D-Q", func(t *testing.T) {
		rng := rand.New(rand.NewSource(540))
		for trial := 0; trial < 80; trial++ {
			snaps := synth(p, randReader(rng, true), 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
			ev, err := NewEvaluator(snaps, p, KindQ)
			if err != nil {
				t.Fatal(err)
			}
			wantAz, wantPow := FindPeak2DEval(ev, dense)
			gotAz, gotPow := FindPeak2DEval(ev, synthOpts)
			if gotAz != wantAz || gotPow != wantPow {
				t.Fatalf("trial %d: synth-hier (%v, %v) != dense (%v, %v)", trial, gotAz, gotPow, wantAz, wantPow)
			}
		}
	})

	t.Run("2D-R", func(t *testing.T) {
		rng := rand.New(rand.NewSource(541))
		for trial := 0; trial < 40; trial++ {
			snaps := synth(p, randReader(rng, true), 20+rng.Intn(120), rng.Float64()*2, rng.Float64()*0.2, rng)
			ev, err := NewEvaluator(snaps, p, KindR)
			if err != nil {
				t.Fatal(err)
			}
			wantAz, _ := FindPeak2DEval(ev, dense)
			gotAz, _ := FindPeak2DEval(ev, synthOpts)
			if d := geom.AngleDistance(gotAz, wantAz); d > synthOpts.coarseStep() {
				t.Fatalf("trial %d: synth-hier R peak %v is %v rad from dense %v", trial, gotAz, d, wantAz)
			}
		}
	})

	t.Run("3D-Q", func(t *testing.T) {
		rng := rand.New(rand.NewSource(542))
		so := SearchOptions{CoarsePolarStep: geom.Radians(2)}
		for trial := 0; trial < 15; trial++ {
			snaps := synth3D(p, randReader(rng, false), 24+rng.Intn(60), rng.Float64()*0.15, rng)
			ev, err := NewEvaluator(snaps, p, KindQ)
			if err != nil {
				t.Fatal(err)
			}
			d := dense
			d.CoarsePolarStep = so.CoarsePolarStep
			s := synthOpts
			s.CoarsePolarStep = so.CoarsePolarStep
			want := FindPeak3DEval(ev, d)
			got := FindPeak3DEval(ev, s)
			if got != want {
				t.Fatalf("trial %d: synth-hier %+v != dense %+v", trial, got, want)
			}
		}
	})
}

// TestAccumulatorAnglesBitIdentity walks the streamed angle-grid finalize
// across the coarseTermLimit seam for every accumulator mode: at and under
// the limit the streamed selection must return the batch angle-grid
// search's bits (the shared nufftSelect path or the dense finish), and one
// past it the finalize hands off to the batch search itself.
func TestAccumulatorAnglesBitIdentity(t *testing.T) {
	p := testParams()
	counts := []int{coarseTermLimit - 1, coarseTermLimit, coarseTermLimit + 1}
	for i, tc := range accumKinds {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(550 + int64(i)))
			angles := jitteredAngles(720, 0.35, rng)
			for _, harmonic := range []Toggle{ToggleAuto, ToggleOn} {
				for _, n := range counts {
					snaps := synth(p, randReader(rng, true), n, 0.8, 0.05, rng)
					pp := p
					pp.LiteralReference = tc.literal
					so := SearchOptions{PrescreenTopK: tc.prescreen, HarmonicEval: harmonic}
					a, err := NewAccumulator2DAngles(pp, tc.kind, angles, so)
					if err != nil {
						t.Fatal(err)
					}
					feedAccumulator(t, a, snaps)
					gotAz, gotPow, err := a.FindPeak2D()
					if err != nil {
						t.Fatal(err)
					}
					ev, err := NewEvaluator(snaps, pp, tc.kind)
					if err != nil {
						t.Fatal(err)
					}
					wantAz, wantPow := FindPeak2DAnglesEval(ev, angles, so)
					if gotAz != wantAz || gotPow != wantPow {
						t.Fatalf("%d snapshots, harmonic %v: streamed (%v, %v) != batch (%v, %v)",
							n, harmonic, gotAz, gotPow, wantAz, wantPow)
					}
				}
			}
		})
	}
}

// TestAccumulatorAnglesCoarseProfile pins the angle-grid streamed profile:
// in default (non-harmonic) mode the finished per-cell values are the batch
// Profile2D over the same angles bit for bit, in both trig modes; the
// returned Angles are the caller's grid.
func TestAccumulatorAnglesCoarseProfile(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(560))
	angles := jitteredAngles(360, 0.35, rng)
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	for _, tc := range accumKinds {
		for _, fast := range []bool{false, true} {
			var evalOpts []EvalOption
			if fast {
				evalOpts = append(evalOpts, WithFastTrig())
			}
			pp := p
			pp.LiteralReference = tc.literal
			a, err := NewAccumulator2DAngles(pp, tc.kind, angles, SearchOptions{PrescreenTopK: tc.prescreen}, evalOpts...)
			if err != nil {
				t.Fatal(err)
			}
			feedAccumulator(t, a, snaps)
			prof, err := a.CoarseProfile()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEvaluator(snaps, pp, tc.kind, evalOpts...)
			if err != nil {
				t.Fatal(err)
			}
			var want Profile
			ev.Profile2DInto(&want, angles)
			for k := range prof.Power {
				if prof.Angles[k] != angles[k] {
					t.Fatalf("%s fast=%v: angle %d mutated", tc.name, fast, k)
				}
				if prof.Power[k] != want.Power[k] {
					t.Fatalf("%s fast=%v: cell %d streamed %v != batch %v",
						tc.name, fast, k, prof.Power[k], want.Power[k])
				}
			}
		}
	}
}

// TestAccumulatorAnglesValidation covers the construction edges of the
// angle-grid accumulator.
func TestAccumulatorAnglesValidation(t *testing.T) {
	if _, err := NewAccumulator2DAngles(testParams(), KindQ, nil, SearchOptions{}); err == nil {
		t.Fatal("empty grid must be rejected")
	}
}

// TestHalfPowerBeamwidthChecked pins the non-uniform-grid guard: the HPBW
// walk assumes uniform spacing, so non-uniform Angles must return the typed
// error (and NaN) instead of a silently wrong width.
func TestHalfPowerBeamwidthChecked(t *testing.T) {
	p := testParams()
	snaps := synth(p, geom.V3(-2.8, 0, 0), 80, 1.3, 0, nil)
	uniform, err := Compute2D(snaps, p, KindQ, UniformAngles(720))
	if err != nil {
		t.Fatal(err)
	}
	w, err := uniform.HalfPowerBeamwidthChecked()
	if err != nil {
		t.Fatalf("uniform grid: unexpected error %v", err)
	}
	if w != uniform.HalfPowerBeamwidth() {
		t.Fatalf("checked width %v != unchecked %v", w, uniform.HalfPowerBeamwidth())
	}

	rng := rand.New(rand.NewSource(570))
	jittered, err := Compute2D(snaps, p, KindQ, jitteredAngles(720, 0.35, rng))
	if err != nil {
		t.Fatal(err)
	}
	w, err = jittered.HalfPowerBeamwidthChecked()
	if !errors.Is(err, ErrNonUniformAngles) {
		t.Fatalf("non-uniform grid: error = %v, want ErrNonUniformAngles", err)
	}
	if !math.IsNaN(w) {
		t.Fatalf("non-uniform grid: width = %v, want NaN", w)
	}
	if !math.IsNaN(jittered.HalfPowerBeamwidth()) {
		t.Fatal("unchecked HPBW on a non-uniform grid must be NaN")
	}

	tiny := Profile{Angles: []float64{0}, Power: []float64{1}}
	if w, err := tiny.HalfPowerBeamwidthChecked(); err != nil || !math.IsNaN(w) {
		t.Fatalf("degenerate profile: (%v, %v), want (NaN, nil)", w, err)
	}
}

// TestAnglesApproxUniform covers the guard's classifier directly.
func TestAnglesApproxUniform(t *testing.T) {
	if !anglesApproxUniform(UniformAngles(360)) {
		t.Fatal("uniform grid classified non-uniform")
	}
	if !anglesApproxUniform([]float64{0, 1}) {
		t.Fatal("2-point grids are trivially uniform")
	}
	rng := rand.New(rand.NewSource(571))
	if anglesApproxUniform(jitteredAngles(360, 0.35, rng)) {
		t.Fatal("jittered grid classified uniform")
	}
}

// TestNonUniformMissCounter pins the plan-cache bypass counter: non-uniform
// trig builds (batch scans and the streamed angle-grid table) must count,
// and ResetPlanCache must zero the counter.
func TestNonUniformMissCounter(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(572))
	angles := jitteredAngles(720, 0.35, rng)
	snaps := synth(p, geom.V3(-2.2, 1.3, 0), 60, 0.8, 0.05, rng)
	ev, err := NewEvaluator(snaps, p, KindQ)
	if err != nil {
		t.Fatal(err)
	}

	ResetPlanCache()
	var prof Profile
	ev.Profile2DInto(&prof, angles)
	if st := PlanCacheSnapshot(); st.NonUniformMiss == 0 {
		t.Fatal("dense non-uniform scan did not count a bypass")
	}

	ResetPlanCache()
	a, err := NewAccumulator2DAngles(p, KindQ, angles, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	if st := PlanCacheSnapshot(); st.NonUniformMiss != 1 {
		t.Fatalf("angle-grid accumulator counted %d bypasses, want 1", st.NonUniformMiss)
	}

	ResetPlanCache()
	if st := PlanCacheSnapshot(); st.NonUniformMiss != 0 {
		t.Fatalf("reset left NonUniformMiss at %d", st.NonUniformMiss)
	}
}
