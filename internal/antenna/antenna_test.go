package antenna

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

func TestValidate(t *testing.T) {
	good := Antenna{ID: 1, GainDBi: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid antenna rejected: %v", err)
	}
	for _, bad := range []Antenna{
		{ID: 0, GainDBi: 8},
		{ID: 1, GainDBi: 50},
		{ID: 1, GainDBi: 8, PatternExponent: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid antenna accepted: %+v", bad)
		}
	}
}

func TestGainPattern(t *testing.T) {
	a := Antenna{ID: 1, GainDBi: 8, Boresight: 0}
	boresight := a.GainTowards(geom.V3(5, 0, 0))
	if math.Abs(boresight-8) > 1e-9 {
		t.Errorf("boresight gain = %v, want 8", boresight)
	}
	offAxis := a.GainTowards(geom.V3(5, 5, 0)) // 45° off
	if offAxis >= boresight {
		t.Error("gain should fall off away from boresight")
	}
	behind := a.GainTowards(geom.V3(-5, 0, 0))
	if math.Abs(behind-(8-20)) > 1e-9 {
		t.Errorf("back lobe = %v, want -12", behind)
	}
	// Fall-off is monotone out to 90°.
	prev := boresight
	for deg := 5; deg <= 90; deg += 5 {
		az := geom.Radians(float64(deg))
		g := a.GainTowards(geom.V3(5*math.Cos(az), 5*math.Sin(az), 0))
		if g > prev+1e-9 {
			t.Errorf("gain not monotone at %d°: %v > %v", deg, g, prev)
		}
		prev = g
	}
}

func TestGainPatternSymmetric(t *testing.T) {
	a := Antenna{ID: 1, GainDBi: 8, Boresight: math.Pi / 3}
	left := a.GainTowards(geom.V3(math.Cos(math.Pi/3+0.4), math.Sin(math.Pi/3+0.4), 0))
	right := a.GainTowards(geom.V3(math.Cos(math.Pi/3-0.4), math.Sin(math.Pi/3-0.4), 0))
	if math.Abs(left-right) > 1e-9 {
		t.Errorf("pattern asymmetric: %v vs %v", left, right)
	}
}

func TestYeonSet(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	set := YeonSet(4, rng)
	if len(set) != 4 {
		t.Fatalf("len = %d", len(set))
	}
	divs := make(map[float64]bool, len(set))
	for i, a := range set {
		if a.ID != i+1 {
			t.Errorf("antenna %d has ID %d", i, a.ID)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("antenna %d invalid: %v", i, err)
		}
		if divs[a.Diversity] {
			t.Error("duplicate diversity across units")
		}
		divs[a.Diversity] = true
		if math.Abs(a.GainDBi-8) > 1.5 {
			t.Errorf("antenna %d gain %v far from 8 dBi", i, a.GainDBi)
		}
	}
}
