// Package antenna models the reader-side antennas of the paper's testbed:
// circularly polarized directional panels (the evaluation used four Yeon
// Technology units on an Impinj Speedway Revolution reader). Each antenna
// instance carries its own hardware-diversity phase term and a cosine-power
// gain pattern.
package antenna

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/geom"
)

// Antenna is one reader antenna port.
type Antenna struct {
	// ID is the reader port number (1-based, as in LLRP).
	ID int
	// Name labels the physical unit.
	Name string
	// Position is the phase center of the antenna.
	Position geom.Vec3
	// Boresight is the azimuth the panel faces.
	Boresight float64
	// GainDBi is the boresight gain (a Yeon circular panel is ≈8 dBi).
	GainDBi float64
	// PatternExponent shapes the cos^k fall-off of gain away from
	// boresight; higher is more directive. Zero means 2.
	PatternExponent float64
	// Diversity is the antenna's contribution to θ_div: cable length and
	// RF front-end phase offset, constant per unit.
	Diversity float64
}

// Validate checks the antenna's physical parameters.
func (a Antenna) Validate() error {
	if a.ID <= 0 {
		return fmt.Errorf("antenna: non-positive port id %d", a.ID)
	}
	if a.GainDBi < -10 || a.GainDBi > 20 {
		return fmt.Errorf("antenna: implausible gain %v dBi", a.GainDBi)
	}
	if a.PatternExponent < 0 {
		return fmt.Errorf("antenna: negative pattern exponent")
	}
	return nil
}

// exponent returns the effective pattern exponent, defaulting to 2.
func (a Antenna) exponent() float64 {
	if a.PatternExponent == 0 {
		return 2
	}
	return a.PatternExponent
}

// GainTowards returns the antenna gain in dBi toward a point. Directions
// behind the panel get a deep (-20 dB relative) back lobe rather than zero
// so link-budget math stays finite.
func (a Antenna) GainTowards(p geom.Vec3) float64 {
	az := p.Sub(a.Position).Azimuth()
	off := geom.AngleDistance(az, a.Boresight)
	if off >= math.Pi/2 {
		return a.GainDBi - 20
	}
	c := math.Cos(off)
	rel := 10 * a.exponent() * math.Log10(c)
	if rel < -20 {
		rel = -20
	}
	return a.GainDBi + rel
}

// YeonSet builds n antenna instances in the style of the paper's testbed:
// same model, per-unit diversity and small gain spread, all at the given
// position/boresight (callers usually reposition them afterwards).
func YeonSet(n int, rng *rand.Rand) []Antenna {
	out := make([]Antenna, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Antenna{
			ID:        i + 1,
			Name:      fmt.Sprintf("Yeon-%d", i+1),
			GainDBi:   8 + 0.2*rng.NormFloat64(),
			Diversity: rng.Float64() * 2 * math.Pi,
		})
	}
	return out
}
