package hologram

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

const (
	testFreq = 922.5e6
	testWave = 299_792_458.0 / testFreq
)

// synthSession builds one disk's snapshots with exact geometry.
func synthSession(center geom.Vec3, theta0 float64, reader geom.Vec3, n int, div, sigma float64, rng *rand.Rand) Session {
	disk := spindisk.Disk{Center: center, Radius: 0.10, Omega: math.Pi, Theta0: theta0}
	s := Session{Disk: disk}
	period := disk.Period()
	for i := 0; i < n; i++ {
		tm := time.Duration(float64(period) * float64(i) / float64(n) * 2)
		pos := disk.TagPosition(tm)
		ph := 4*math.Pi*pos.DistanceTo(reader)/testWave + div
		if sigma > 0 {
			ph += rng.NormFloat64() * sigma
		}
		s.Snapshots = append(s.Snapshots, phase.Snapshot{
			Time:        tm,
			Phase:       mathx.WrapPhase(ph),
			FrequencyHz: testFreq,
		})
	}
	return s
}

func bounds() Rect { return Rect{MinX: -3, MinY: -0.5, MaxX: 3, MaxY: 3.5} }

func TestLocate2DRecoversReader(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reader := geom.V3(-1.6, 1.7, 0)
	sessions := []Session{
		synthSession(geom.V3(-0.25, 0, 0), 0, reader, 150, 1.1, 0.1, rng),
		synthSession(geom.V3(0.25, 0, 0), 1, reader, 150, 4.2, 0.1, rng),
	}
	got, score, err := Locate2D(sessions, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	// Range is weakly constrained by the ridge crossing (same DOP as the
	// bearing intersection), so a single noisy draw lands within ~20 cm.
	if e := got.DistanceTo(reader.XY()); e > 0.20 {
		t.Errorf("hologram error %.1f cm (pos %v)", e*100, got)
	}
	if score < 0.5 || score > 1.001 {
		t.Errorf("score = %v", score)
	}
}

func TestLocate2DNoFarFieldBias(t *testing.T) {
	// Close-in reader where the far-field approximation is poorest: the
	// hologram uses exact distances and must stay accurate.
	rng := rand.New(rand.NewSource(2))
	reader := geom.V3(-0.4, 0.8, 0) // under 1 m from both disks
	sessions := []Session{
		synthSession(geom.V3(-0.25, 0, 0), 0, reader, 150, 0.4, 0.05, rng),
		synthSession(geom.V3(0.25, 0, 0), 1, reader, 150, 2.8, 0.05, rng),
	}
	got, _, err := Locate2D(sessions, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	if e := got.DistanceTo(reader.XY()); e > 0.08 {
		t.Errorf("near-field hologram error %.1f cm", e*100)
	}
}

func TestLocate2DSingleDiskStillFindsRidge(t *testing.T) {
	// One disk constrains bearing but barely constrains range: the
	// estimate must at least lie on the bearing ray.
	rng := rand.New(rand.NewSource(3))
	reader := geom.V3(-1.2, 2.0, 0)
	center := geom.V3(0, 0, 0)
	sessions := []Session{synthSession(center, 0, reader, 150, 0.9, 0.05, rng)}
	got, _, err := Locate2D(sessions, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	wantAz := reader.Sub(center).Azimuth()
	gotAz := got.Sub(center.XY()).Bearing()
	if geom.AngleDistance(gotAz, wantAz) > geom.Radians(2) {
		t.Errorf("single-disk bearing %.1f°, want %.1f°", geom.Degrees(gotAz), geom.Degrees(wantAz))
	}
}

func TestLocate2DThreeDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reader := geom.V3(1.4, 1.9, 0)
	sessions := []Session{
		synthSession(geom.V3(-0.25, 0, 0), 0, reader, 120, 0.1, 0.1, rng),
		synthSession(geom.V3(0.25, 0, 0), 1, reader, 120, 2.2, 0.1, rng),
		synthSession(geom.V3(0, -0.35, 0), 2, reader, 120, 5.0, 0.1, rng),
	}
	got, _, err := Locate2D(sessions, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	if e := got.DistanceTo(reader.XY()); e > 0.08 {
		t.Errorf("three-disk hologram error %.1f cm", e*100)
	}
}

func TestLocate2DErrors(t *testing.T) {
	if _, _, err := Locate2D(nil, Options{Bounds: bounds()}); !errors.Is(err, ErrNoTags) {
		t.Errorf("err = %v, want ErrNoTags", err)
	}
	rng := rand.New(rand.NewSource(5))
	good := synthSession(geom.V3(0, 0, 0), 0, geom.V3(-2, 1, 0), 50, 0, 0.1, rng)
	// Degenerate bounds.
	if _, _, err := Locate2D([]Session{good}, Options{Bounds: Rect{MinX: 1, MaxX: 0}}); err == nil {
		t.Error("degenerate bounds accepted")
	}
	// Invalid disk.
	bad := good
	bad.Disk.Omega = 0
	if _, _, err := Locate2D([]Session{bad}, Options{Bounds: bounds()}); err == nil {
		t.Error("invalid disk accepted")
	}
	// Missing carrier.
	bad2 := good
	bad2.Snapshots = append([]phase.Snapshot(nil), good.Snapshots...)
	bad2.Snapshots[3].FrequencyHz = 0
	if _, _, err := Locate2D([]Session{bad2}, Options{Bounds: bounds()}); err == nil {
		t.Error("missing carrier accepted")
	}
	// A session with <2 snapshots is skipped; all-skipped errors out.
	empty := Session{Disk: good.Disk, Snapshots: good.Snapshots[:1]}
	if _, _, err := Locate2D([]Session{empty}, Options{Bounds: bounds()}); !errors.Is(err, ErrNoTags) {
		t.Errorf("all-skipped err = %v, want ErrNoTags", err)
	}
}

func TestDiversityInvariance(t *testing.T) {
	// Shifting a tag's diversity must not move the hologram peak.
	reader := geom.V3(-2.0, 1.2, 0)
	a := []Session{
		synthSession(geom.V3(-0.25, 0, 0), 0, reader, 100, 0.0, 0, nil),
		synthSession(geom.V3(0.25, 0, 0), 1, reader, 100, 0.0, 0, nil),
	}
	b := []Session{
		synthSession(geom.V3(-0.25, 0, 0), 0, reader, 100, 2.9, 0, nil),
		synthSession(geom.V3(0.25, 0, 0), 1, reader, 100, 5.5, 0, nil),
	}
	pa, _, err := Locate2D(a, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := Locate2D(b, Options{Bounds: bounds()})
	if err != nil {
		t.Fatal(err)
	}
	if pa.DistanceTo(pb) > 1e-6 {
		t.Errorf("diversity moved the peak: %v vs %v", pa, pb)
	}
}
