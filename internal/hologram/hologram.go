// Package hologram implements the position-domain alternative to Tagspin's
// angle spectrum: holographic localization in the style of Miesen et al.
// (IEEE RFID'11) and Tagoram's differential augmented hologram, both cited
// by the paper (§VIII). Instead of estimating a bearing per disk and
// intersecting, a hologram scores every candidate *position* directly by
// how coherently the measured relative phasors stack under the exact
// round-trip distances from the tag's rim positions to the candidate.
//
// Compared with the angle spectrum this makes no far-field approximation
// (Eqn. 2 is bypassed entirely) and fuses any number of disks in a single
// surface, at the cost of a 2D search instead of 1D ones. Per-tag holograms
// combine *incoherently* (summed magnitudes): the unknown per-tag θ_div
// makes cross-tag phase relationships meaningless.
package hologram

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
)

// ErrNoTags reports that no usable tag sessions were supplied.
var ErrNoTags = errors.New("hologram: no usable tag sessions")

// Session is one spinning tag's contribution.
type Session struct {
	// Disk is the nominal disk geometry.
	Disk spindisk.Disk
	// Snapshots is the time-ordered phase series (one hop channel).
	Snapshots []phase.Snapshot
}

// Options tunes the search.
type Options struct {
	// Bounds is the search region.
	Bounds Rect
	// CoarseStep is the initial grid spacing; zero means 0.10 m.
	CoarseStep float64
	// Refinements is the number of 5× refinement rounds; zero means 3
	// (1 cm → 0.8 mm final resolution from a 10 cm start).
	Refinements int
}

// Rect bounds the horizontal search region.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// coarseStep returns the effective initial spacing.
func (o Options) coarseStep() float64 {
	if o.CoarseStep <= 0 {
		return 0.10
	}
	return o.CoarseStep
}

// refinements returns the effective refinement count.
func (o Options) refinements() int {
	if o.Refinements <= 0 {
		return 3
	}
	return o.Refinements
}

// term caches one snapshot's contribution.
type term struct {
	relPhase float64   // θ_i − θ_1, wrapped
	rim      geom.Vec3 // tag position at the snapshot instant
	k        float64   // 4π/λ_i
}

// tagTerms caches one session plus its reference rim.
type tagTerms struct {
	refRim geom.Vec3
	refK   float64
	terms  []term
}

// prepare caches the sessions.
func prepare(sessions []Session) ([]tagTerms, error) {
	var out []tagTerms
	for si, s := range sessions {
		if err := s.Disk.Validate(); err != nil {
			return nil, fmt.Errorf("hologram session %d: %w", si, err)
		}
		if len(s.Snapshots) < 2 {
			continue
		}
		ref := s.Snapshots[0]
		tt := tagTerms{
			refRim: s.Disk.TagPositionAt(s.Disk.Angle(ref.Time)),
			refK:   4 * math.Pi / ref.Wavelength(),
			terms:  make([]term, 0, len(s.Snapshots)),
		}
		for i, snap := range s.Snapshots {
			if snap.FrequencyHz <= 0 {
				return nil, fmt.Errorf("hologram session %d snapshot %d: no carrier", si, i)
			}
			a := s.Disk.Angle(snap.Time)
			tt.terms = append(tt.terms, term{
				relPhase: mathx.WrapToPi(snap.Phase - ref.Phase),
				rim:      s.Disk.TagPositionAt(a),
				k:        4 * math.Pi / snap.Wavelength(),
			})
		}
		out = append(out, tt)
	}
	if len(out) == 0 {
		return nil, ErrNoTags
	}
	return out, nil
}

// scoreAt evaluates the hologram intensity at candidate p (z fixed by the
// caller through the rim coordinates; this is the 2D in-plane hologram).
func scoreAt(tags []tagTerms, p geom.Vec3) float64 {
	var total float64
	for _, tt := range tags {
		refDist := tt.refRim.DistanceTo(p)
		var sum complex128
		for _, t := range tt.terms {
			// Predicted relative phase under candidate p, with exact
			// distances: ϑ_i − ϑ_1 = k_i·d_i − k_ref·d_1.
			pred := t.k*t.rim.DistanceTo(p) - tt.refK*refDist
			sum += cmplx.Rect(1, t.relPhase-pred)
		}
		total += cmplx.Abs(sum) / float64(len(tt.terms))
	}
	return total / float64(len(tags))
}

// Locate2D finds the candidate position with the brightest hologram via a
// coarse grid plus local refinement. The returned score is in [0, 1]; a
// perfectly coherent stack across all tags scores 1.
func Locate2D(sessions []Session, opts Options) (geom.Vec2, float64, error) {
	tags, err := prepare(sessions)
	if err != nil {
		return geom.Vec2{}, 0, err
	}
	if opts.Bounds.MaxX <= opts.Bounds.MinX || opts.Bounds.MaxY <= opts.Bounds.MinY {
		return geom.Vec2{}, 0, fmt.Errorf("hologram: degenerate bounds %+v", opts.Bounds)
	}
	z := sessions[0].Disk.Center.Z
	eval := func(x, y float64) float64 { return scoreAt(tags, geom.V3(x, y, z)) }

	step := opts.coarseStep()
	var best geom.Vec2
	bestScore := math.Inf(-1)
	for y := opts.Bounds.MinY; y <= opts.Bounds.MaxY+1e-9; y += step {
		for x := opts.Bounds.MinX; x <= opts.Bounds.MaxX+1e-9; x += step {
			if v := eval(x, y); v > bestScore {
				best, bestScore = geom.V2(x, y), v
			}
		}
	}
	for r := 0; r < opts.refinements(); r++ {
		fine := step / 5
		start := best
		for dy := -step; dy <= step+1e-12; dy += fine {
			for dx := -step; dx <= step+1e-12; dx += fine {
				if v := eval(start.X+dx, start.Y+dy); v > bestScore {
					best, bestScore = geom.V2(start.X+dx, start.Y+dy), v
				}
			}
		}
		step = fine
	}
	return best, bestScore, nil
}
