package phase

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/mathx"
)

const lambda = 0.325

func TestSnapshotWavelength(t *testing.T) {
	s := Snapshot{FrequencyHz: 922.5e6}
	if math.Abs(s.Wavelength()-0.32498) > 1e-4 {
		t.Errorf("Wavelength = %v", s.Wavelength())
	}
}

func TestSortByTime(t *testing.T) {
	snaps := []Snapshot{{Time: 3 * time.Second}, {Time: time.Second}, {Time: 2 * time.Second}}
	SortByTime(snaps)
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Time < snaps[i-1].Time {
			t.Fatalf("not sorted: %v", snaps)
		}
	}
}

func TestModel2DBasics(t *testing.T) {
	// With the tag at disk angle = φ the tag is nearest the reader:
	// distance D − r.
	got := Model2D(lambda, 2.0, 0.1, 1.2, 1.2)
	want := mathx.WrapPhase(4 * math.Pi / lambda * 1.9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Model2D nearest = %v, want %v", got, want)
	}
	// Half a turn later it is farthest: D + r.
	got = Model2D(lambda, 2.0, 0.1, 1.2+math.Pi, 1.2)
	want = mathx.WrapPhase(4 * math.Pi / lambda * 2.1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Model2D farthest = %v, want %v", got, want)
	}
}

func TestModel3DReducesTo2D(t *testing.T) {
	for _, a := range []float64{0, 0.7, 2.1, 4.4} {
		d2 := Model2D(lambda, 2.5, 0.1, a, 0.3)
		d3 := Model3D(lambda, 2.5, 0.1, a, 0.3, 0)
		if math.Abs(d2-d3) > 1e-12 {
			t.Errorf("γ=0 mismatch at a=%v: %v vs %v", a, d2, d3)
		}
	}
	// At γ = ±π/2 the aperture term vanishes entirely.
	up := Model3D(lambda, 2.5, 0.1, 1.0, 0.3, math.Pi/2)
	want := mathx.WrapPhase(4 * math.Pi / lambda * 2.5)
	if math.Abs(up-want) > 1e-9 {
		t.Errorf("γ=π/2 = %v, want %v", up, want)
	}
}

func TestModelPhaseApproximationAccuracy(t *testing.T) {
	// Eqn. 2's far-field approximation d(t) ≈ D − r·cos(a−φ) should agree
	// with exact geometry to well under a centimeter at D = 2 m, r = 0.1 m.
	bigD, r := 2.0, 0.1
	phi := 0.8
	for i := 0; i < 36; i++ {
		a := 2 * math.Pi * float64(i) / 36
		tagX := r * math.Cos(a)
		tagY := r * math.Sin(a)
		rx, ry := bigD*math.Cos(phi), bigD*math.Sin(phi)
		exact := math.Hypot(tagX-rx, tagY-ry)
		approx := bigD - r*math.Cos(a-phi)
		if math.Abs(exact-approx) > 0.005 {
			t.Errorf("approximation error %v m at a=%v", math.Abs(exact-approx), a)
		}
	}
}

func TestSmoothRemovesWrapJumps(t *testing.T) {
	// Synthesize Eqn. 3 phases over a rotation and check the smoothed
	// sequence has no jumps larger than π.
	var snaps []Snapshot
	for i := 0; i < 200; i++ {
		tm := time.Duration(i) * 10 * time.Millisecond
		a := math.Pi * tm.Seconds()
		snaps = append(snaps, Snapshot{
			Time:  tm,
			Phase: Model2D(lambda, 2.0, 0.1, a, 0),
		})
	}
	smooth := Smooth(snaps)
	for i := 1; i < len(smooth); i++ {
		if math.Abs(smooth[i]-smooth[i-1]) > math.Pi {
			t.Fatalf("jump of %v at %d", smooth[i]-smooth[i-1], i)
		}
	}
}

func TestEstimateDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trueDiv = 1.7
	var measured, theory []float64
	for i := 0; i < 500; i++ {
		th := rng.Float64() * 2 * math.Pi
		theory = append(theory, th)
		measured = append(measured, mathx.WrapPhase(th+trueDiv+rng.NormFloat64()*0.1))
	}
	offset, conf, err := EstimateDiversity(measured, theory)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mathx.WrapToPi(offset-trueDiv)) > 0.02 {
		t.Errorf("offset = %v, want ≈%v", offset, trueDiv)
	}
	if conf < 0.9 {
		t.Errorf("confidence = %v, want ≈1", conf)
	}
	if _, _, err := EstimateDiversity(nil, nil); err == nil {
		t.Error("empty sequences should error")
	}
	if _, _, err := EstimateDiversity([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

// synthOrientation builds center-spin calibration samples from a known
// ground-truth response.
func synthOrientation(truth func(float64) float64, n int, noise float64, rng *rand.Rand) []OrientationSample {
	samples := make([]OrientationSample, 0, n)
	for i := 0; i < n; i++ {
		rho := 2 * math.Pi * float64(i) / float64(n)
		ph := 2.5 + truth(rho) // 2.5 plays the constant distance+diversity term
		if noise > 0 {
			ph += rng.NormFloat64() * noise
		}
		samples = append(samples, OrientationSample{Rho: rho, Phase: mathx.WrapPhase(ph)})
	}
	return samples
}

func TestFitOrientationRecoversGroundTruth(t *testing.T) {
	truth := func(rho float64) float64 { return 0.33*math.Sin(2*rho+0.4) + 0.07*math.Sin(4*rho-0.2) }
	samples := synthOrientation(truth, 120, 0, nil)
	cal, err := FitOrientation(samples, DefaultOrientationOrder)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 72; i++ {
		rho := 2 * math.Pi * float64(i) / 72
		want := truth(rho) - truth(math.Pi/2)
		if got := cal.Offset(rho); math.Abs(got-want) > 1e-6 {
			t.Fatalf("Offset(%v) = %v, want %v", rho, got, want)
		}
	}
	if pp := cal.PeakToPeak(); math.Abs(pp-0.735) > 0.1 {
		t.Errorf("PeakToPeak = %v", pp)
	}
}

func TestFitOrientationNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := func(rho float64) float64 { return 0.3 * math.Sin(2*rho) }
	samples := synthOrientation(truth, 720, 0.1, rng)
	cal, err := FitOrientation(samples, DefaultOrientationOrder)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 72; i++ {
		rho := 2 * math.Pi * float64(i) / 72
		want := truth(rho) - truth(math.Pi/2)
		worst = math.Max(worst, math.Abs(cal.Offset(rho)-want))
	}
	if worst > 0.05 {
		t.Errorf("noisy fit worst-case error %v rad", worst)
	}
}

func TestFitOrientationReferenceIsPiOver2(t *testing.T) {
	truth := func(rho float64) float64 { return 0.2 * math.Cos(2*rho) }
	cal, err := FitOrientation(synthOrientation(truth, 90, 0, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.Offset(math.Pi / 2); math.Abs(got) > 1e-9 {
		t.Errorf("Offset(π/2) = %v, want 0 (reference orientation)", got)
	}
}

func TestFitOrientationErrors(t *testing.T) {
	if _, err := FitOrientation(nil, 4); err == nil {
		t.Error("no samples should error")
	}
	few := synthOrientation(func(float64) float64 { return 0 }, 5, 0, nil)
	if _, err := FitOrientation(few, 4); err == nil {
		t.Error("too few samples should error")
	}
}

func TestOrientationApply(t *testing.T) {
	truth := func(rho float64) float64 { return 0.33 * math.Sin(2*rho) }
	cal, err := FitOrientation(synthOrientation(truth, 120, 0, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots whose phase carries the orientation effect at known ρ.
	rhos := []float64{0.3, 1.2, 2.5, 4.0, 5.5}
	var snaps []Snapshot
	for _, rho := range rhos {
		snaps = append(snaps, Snapshot{Phase: mathx.WrapPhase(1 + truth(rho) - truth(math.Pi/2))})
	}
	fixed := cal.Apply(snaps, func(i int) float64 { return rhos[i] })
	for i, s := range fixed {
		if math.Abs(mathx.WrapToPi(s.Phase-1)) > 1e-6 {
			t.Errorf("snapshot %d: phase %v, want 1", i, s.Phase)
		}
	}
	// Input snapshots are untouched.
	if snaps[0].Phase == fixed[0].Phase && rhos[0] != math.Pi/2 {
		if math.Abs(cal.Offset(rhos[0])) > 1e-9 {
			t.Error("Apply modified input slice")
		}
	}
}
