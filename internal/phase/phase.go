// Package phase implements §III of the paper: the phase model of a spinning
// tag (Eqn. 1–4 and the 3D Eqn. 10), the smoothing rule that removes mod-2π
// discontinuities, and the two calibration steps — hardware diversity and
// tag orientation (Observation 3.1).
package phase

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tagspin/tagspin/internal/mathx"
)

// Snapshot is one phase report for a spinning tag, as collected from the
// reader. Time is the reader-side timestamp (the paper uses reader clocks to
// dodge network latency), measured from the start of the collection session.
type Snapshot struct {
	// Time is the reader timestamp of the read.
	Time time.Duration
	// Phase is the reported backscatter phase, wrapped to [0, 2π).
	Phase float64
	// RSSIdBm is the reported signal strength.
	RSSIdBm float64
	// FrequencyHz is the carrier the read happened on.
	FrequencyHz float64
	// AntennaID is the reader port that saw the tag.
	AntennaID int
}

// Wavelength returns the snapshot's carrier wavelength in meters.
func (s Snapshot) Wavelength() float64 {
	return 299_792_458.0 / s.FrequencyHz
}

// SortByTime sorts snapshots by timestamp in place.
func SortByTime(snaps []Snapshot) {
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Time < snaps[j].Time })
}

// Phases extracts the wrapped phase sequence of a snapshot series.
func Phases(snaps []Snapshot) []float64 {
	out := make([]float64, len(snaps))
	for i, s := range snaps {
		out[i] = s.Phase
	}
	return out
}

// Smooth returns the unwrapped ("smoothed", §III-B) phase sequence of a
// time-ordered snapshot series, applying the ±2π correction rule whenever
// consecutive samples jump by more than π.
func Smooth(snaps []Snapshot) []float64 {
	return mathx.Unwrap(Phases(snaps))
}

// Model2D evaluates Eqn. 4: the theoretical wrapped phase of the i-th
// snapshot of an edge-mounted spinning tag when the signal direction is phi.
//
//	ϑ(φ) = (4π/λ)·(D − r·cos(a − φ)) mod 2π
//
// where a is the tag's disk angle at the snapshot time and D the distance
// from disk center to reader.
func Model2D(lambda, bigD, radius, diskAngle, phi float64) float64 {
	return mathx.WrapPhase(4 * math.Pi / lambda * (bigD - radius*math.Cos(diskAngle-phi)))
}

// Model3D evaluates Eqn. 10, the 3D extension with polar angle gamma:
//
//	ϑ(φ, γ) = (4π/λ)·(D − r·cos(a − φ)·cos γ) mod 2π
func Model3D(lambda, bigD, radius, diskAngle, phi, gamma float64) float64 {
	return mathx.WrapPhase(4 * math.Pi / lambda *
		(bigD - radius*math.Cos(diskAngle-phi)*math.Cos(gamma)))
}

// EstimateDiversity estimates the constant misalignment between a measured
// phase sequence and its theoretical counterpart (Fig. 4(b)): the circular
// mean of the wrapped per-sample differences. The resultant length of that
// mean is returned as confidence in [0, 1].
func EstimateDiversity(measured, theoretical []float64) (offset, confidence float64, err error) {
	if len(measured) != len(theoretical) || len(measured) == 0 {
		return 0, 0, fmt.Errorf("phase: mismatched sequences (%d vs %d)", len(measured), len(theoretical))
	}
	diffs := make([]float64, len(measured))
	for i := range measured {
		diffs[i] = measured[i] - theoretical[i]
	}
	offset, confidence = mathx.CircularMean(diffs)
	return offset, confidence, nil
}

// OrientationSample is one calibration observation from the center-mounted
// prelude run: the tag's orientation ρ toward the reader and the phase the
// reader reported.
type OrientationSample struct {
	// Rho is the angle between tag plane and tag→reader sight line.
	Rho float64
	// Phase is the reported wrapped phase.
	Phase float64
}

// OrientationCalibration is the fitted phase-vs-orientation function of
// §III-B. Offset(ρ) is defined relative to the reference orientation
// ρ = π/2 (tag plane perpendicular to the incident signal), which the paper
// designates as the zero point.
type OrientationCalibration struct {
	series mathx.FourierSeries
	ref    float64
}

// DefaultOrientationOrder is the Fourier order used to fit the orientation
// response. Order 4 captures the 2ρ and 4ρ harmonics a roughly symmetric
// tag antenna exhibits.
const DefaultOrientationOrder = 4

// FitOrientation runs Step 1 of the §III-B workflow: fit a Fourier series
// of the given order to center-spin samples. Samples need not be sorted.
//
// The reported phases are wrapped while the underlying response is smooth,
// and real phase reports occasionally contain garbage (decode glitches).
// Sequential unwrapping would let a single such outlier inject a spurious
// ±2π step that corrupts everything after it, so the fit works directly in
// wrapped space: starting from the circular mean, it iteratively re-fits the
// series to currentModel + wrap(measured − currentModel), trimming samples
// whose wrapped residual is far outside the noise in the later rounds.
func FitOrientation(samples []OrientationSample, order int) (OrientationCalibration, error) {
	if order <= 0 {
		order = DefaultOrientationOrder
	}
	if len(samples) < 2*order+1 {
		return OrientationCalibration{}, fmt.Errorf(
			"phase: %d orientation samples, need ≥%d for order %d",
			len(samples), 2*order+1, order)
	}
	xs := make([]float64, len(samples))
	raw := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Rho
		raw[i] = s.Phase
	}
	mean, _ := mathx.CircularMean(raw)
	series := mathx.FourierSeries{A0: mean, A: make([]float64, order), B: make([]float64, order)}

	const rounds = 4
	for round := 0; round < rounds; round++ {
		var fitX, fitY []float64
		var residuals []float64
		for i := range xs {
			model := series.Eval(xs[i])
			res := mathx.WrapToPi(raw[i] - model)
			residuals = append(residuals, math.Abs(res))
			fitX = append(fitX, xs[i])
			fitY = append(fitY, model+res)
		}
		if round > 0 {
			// Trim gross outliers: beyond 4× the median absolute residual
			// (floored at 0.3 rad so tight fits don't reject honest noise).
			cut := math.Max(4*mathx.Percentile(residuals, 50), 0.3)
			trimX := fitX[:0]
			trimY := fitY[:0]
			for i := range fitX {
				if residuals[i] <= cut {
					trimX = append(trimX, fitX[i])
					trimY = append(trimY, fitY[i])
				}
			}
			fitX, fitY = trimX, trimY
			if len(fitX) < 2*order+1 {
				return OrientationCalibration{}, fmt.Errorf(
					"phase: only %d orientation samples survive outlier trimming", len(fitX))
			}
		}
		next, err := mathx.FitFourier(fitX, fitY, order)
		if err != nil {
			return OrientationCalibration{}, fmt.Errorf("orientation fit: %w", err)
		}
		series = next
	}
	return OrientationCalibration{series: series, ref: series.Eval(math.Pi / 2)}, nil
}

// Offset returns the phase shift attributable to orientation ρ, relative to
// the reference orientation π/2. Subtract it from a measured phase to erase
// the orientation effect (Step 2 of the workflow).
func (c OrientationCalibration) Offset(rho float64) float64 {
	return c.series.Eval(rho) - c.ref
}

// PeakToPeak reports the fitted response's peak-to-peak amplitude (the
// paper's ≈0.7 rad).
func (c OrientationCalibration) PeakToPeak() float64 {
	return c.series.PeakToPeak()
}

// orientationCalibrationJSON is the persisted form of a calibration.
type orientationCalibrationJSON struct {
	A0        float64   `json:"a0"`
	Cos       []float64 `json:"cos"`
	Sin       []float64 `json:"sin"`
	Reference float64   `json:"reference"`
}

// MarshalJSON implements json.Marshaler so calibrations can live in the
// spinning-tag registry.
func (c OrientationCalibration) MarshalJSON() ([]byte, error) {
	return json.Marshal(orientationCalibrationJSON{
		A0:        c.series.A0,
		Cos:       c.series.A,
		Sin:       c.series.B,
		Reference: c.ref,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *OrientationCalibration) UnmarshalJSON(data []byte) error {
	var j orientationCalibrationJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("orientation calibration: %w", err)
	}
	if len(j.Cos) != len(j.Sin) {
		return fmt.Errorf("orientation calibration: %d cos vs %d sin coefficients", len(j.Cos), len(j.Sin))
	}
	c.series = mathx.FourierSeries{A0: j.A0, A: j.Cos, B: j.Sin}
	c.ref = j.Reference
	return nil
}

// Apply returns a copy of snaps with the orientation offset removed.
// rhoAt must return the tag's orientation toward the (estimated) reader
// direction for snapshot i. Because ρ depends on the unknown reader
// direction, the pipeline applies this after a first, uncalibrated
// direction estimate (see internal/core).
func (c OrientationCalibration) Apply(snaps []Snapshot, rhoAt func(i int) float64) []Snapshot {
	out := make([]Snapshot, len(snaps))
	for i, s := range snaps {
		s.Phase = mathx.WrapPhase(s.Phase - c.Offset(rhoAt(i)))
		out[i] = s
	}
	return out
}
