// Package tags models the passive UHF tag population of the paper's testbed:
// the five Alien Technology tag models of Table I, each with a physical
// orientation-response signature, plus per-tag-instance hardware diversity.
//
// The orientation response is the heart of Observation 3.1: because a real
// tag antenna is never perfectly symmetric, the phase a reader measures
// shifts with the angle ρ between the tag plane and the tag→reader sight
// line, by roughly 0.7 rad peak-to-peak. The channel simulator injects each
// tag's ground-truth response; the calibration pipeline must recover it from
// data, never by peeking at these parameters.
package tags

import (
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/mathx"
)

// EPC is the 96-bit electronic product code identifying a tag on air.
type EPC [12]byte

// String renders the EPC as lowercase hex.
func (e EPC) String() string { return hex.EncodeToString(e[:]) }

// ParseEPC parses a 24-character hex string into an EPC.
func ParseEPC(s string) (EPC, error) {
	var e EPC
	b, err := hex.DecodeString(s)
	if err != nil {
		return e, fmt.Errorf("parse epc: %w", err)
	}
	if len(b) != len(e) {
		return e, fmt.Errorf("parse epc: got %d bytes, want %d", len(b), len(e))
	}
	copy(e[:], b)
	return e, nil
}

// Model describes one catalogue entry of Table I.
type Model struct {
	// Name is the marketing name ("Squig", "Square", ...).
	Name string
	// SKU is the Alien part number.
	SKU string
	// Company is the manufacturer.
	Company string
	// Chip is the tag IC.
	Chip string
	// SizeMM is the antenna footprint in millimeters (width × height).
	SizeMM [2]float64
	// Quantity is how many tags of the model the evaluation used.
	Quantity int
	// SensitivityDBm is the minimum forward power that wakes the chip.
	SensitivityDBm float64
	// Orientation-signature parameters: amplitude (rad) and phase of the
	// 1ρ…4ρ harmonics of the model's typical phase-vs-orientation
	// response. The even harmonics dominate (a dipole-like antenna looks
	// similar from front and back); the smaller odd harmonics come from
	// feed-point and chip-placement asymmetry, and they are what couples
	// the orientation effect into the ω aperture term — i.e. what makes
	// the calibration of §III-B matter.
	Orient1Amp, Orient1Phase float64
	Orient2Amp, Orient2Phase float64
	Orient3Amp, Orient3Phase float64
	Orient4Amp, Orient4Phase float64
}

// String implements fmt.Stringer.
func (m Model) String() string { return fmt.Sprintf("%s %s (%s)", m.Company, m.SKU, m.Name) }

// Catalog returns the Table I tag catalogue. The OCR of the paper lost the
// exact part numbers and sizes; the entries below are reconstructed from
// Alien Technology's product line of the era and flagged as such in
// EXPERIMENTS.md. Amplitudes are chosen so every model's orientation
// response is ≈0.5–0.8 rad peak-to-peak, matching §III-B's ≈0.7 rad figure.
func Catalog() []Model {
	return []Model{
		{
			Name: "Squig", SKU: "AZ-9540", Company: "Alien", Chip: "Higgs-3",
			SizeMM: [2]float64{94.8, 8.1}, Quantity: 10, SensitivityDBm: -18,
			Orient1Amp: 0.13, Orient1Phase: 0.7, Orient2Amp: 0.33, Orient2Phase: 0.4,
			Orient3Amp: 0.05, Orient3Phase: -0.4, Orient4Amp: 0.06, Orient4Phase: 1.1,
		},
		{
			Name: "Square", SKU: "AZ-9629", Company: "Alien", Chip: "Higgs-3",
			SizeMM: [2]float64{22.5, 22.5}, Quantity: 10, SensitivityDBm: -17,
			Orient1Amp: 0.10, Orient1Phase: -1.1, Orient2Amp: 0.26, Orient2Phase: -0.6,
			Orient3Amp: 0.04, Orient3Phase: 0.9, Orient4Amp: 0.05, Orient4Phase: 0.3,
		},
		{
			Name: "Squiglette", SKU: "AZ-9610", Company: "Alien", Chip: "Higgs-3",
			SizeMM: [2]float64{38.1, 7.9}, Quantity: 10, SensitivityDBm: -16,
			Orient1Amp: 0.15, Orient1Phase: 0.2, Orient2Amp: 0.37, Orient2Phase: 1.2,
			Orient3Amp: 0.06, Orient3Phase: 1.4, Orient4Amp: 0.08, Orient4Phase: -0.7,
		},
		{
			Name: "X", SKU: "AZ-9634", Company: "Alien", Chip: "Higgs-3",
			SizeMM: [2]float64{44.5, 44.5}, Quantity: 10, SensitivityDBm: -18,
			Orient1Amp: 0.12, Orient1Phase: 1.6, Orient2Amp: 0.30, Orient2Phase: 0.0,
			Orient3Amp: 0.05, Orient3Phase: -0.8, Orient4Amp: 0.07, Orient4Phase: 0.5,
		},
		{
			Name: "Short", SKU: "AZ-9662", Company: "Alien", Chip: "Higgs-3",
			SizeMM: [2]float64{70.0, 17.0}, Quantity: 10, SensitivityDBm: -17,
			Orient1Amp: 0.11, Orient1Phase: -0.3, Orient2Amp: 0.35, Orient2Phase: -1.0,
			Orient3Amp: 0.04, Orient3Phase: 0.5, Orient4Amp: 0.06, Orient4Phase: 0.9,
		},
	}
}

// DefaultModel returns the model used by most of the paper's experiments
// (the "X" / AZ-9634, chosen for its form factor and signal stability).
func DefaultModel() Model { return Catalog()[3] }

// ModelByName looks up a catalogue entry by Name or SKU.
func ModelByName(name string) (Model, error) {
	for _, m := range Catalog() {
		if m.Name == name || m.SKU == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("tags: unknown model %q", name)
}

// Tag is one physical tag instance: a catalogue model plus per-instance
// hardware diversity.
type Tag struct {
	// EPC identifies the tag on air.
	EPC EPC
	// Model is the catalogue entry the tag was built from.
	Model Model
	// Diversity is this tag's contribution to the θ_div term of Eqn. 1:
	// a constant phase offset from chip and matching-network variation.
	Diversity float64

	orient mathx.FourierSeries
}

// New mints a tag of the given model. The per-instance diversity term and
// small perturbations of the model's orientation signature are drawn from
// rng, so two tags of the same model behave similarly but not identically
// (the paper's Fig. 12(c) finding).
func New(model Model, rng *rand.Rand) *Tag {
	var epc EPC
	if _, err := rng.Read(epc[:]); err != nil {
		// rand.Rand.Read never fails; keep the EPC zero in the impossible case.
		epc = EPC{}
	}
	perturb := func(v float64) float64 { return v * (1 + 0.08*rng.NormFloat64()) }
	amps := []float64{model.Orient1Amp, model.Orient2Amp, model.Orient3Amp, model.Orient4Amp}
	phases := []float64{model.Orient1Phase, model.Orient2Phase, model.Orient3Phase, model.Orient4Phase}
	// Represent A·sin(kρ+ψ) as A·sin ψ·cos(kρ) + A·cos ψ·sin(kρ).
	orient := mathx.FourierSeries{A: make([]float64, 4), B: make([]float64, 4)}
	for k := range amps {
		a := perturb(amps[k])
		p := phases[k] + 0.05*rng.NormFloat64()
		orient.A[k] = a * math.Sin(p)
		orient.B[k] = a * math.Cos(p)
	}
	return &Tag{
		EPC:       epc,
		Model:     model,
		Diversity: rng.Float64() * 2 * math.Pi,
		orient:    orient,
	}
}

// OrientationOffset returns the ground-truth phase offset (radians) the tag
// adds when observed at orientation ρ. This is physical state of the
// simulated world: calibration code must estimate it from measurements.
func (t *Tag) OrientationOffset(rho float64) float64 {
	return t.orient.Eval(rho)
}

// OrientationPeakToPeak reports the peak-to-peak amplitude of the tag's
// ground-truth orientation response, for experiment verification.
func (t *Tag) OrientationPeakToPeak() float64 {
	return t.orient.PeakToPeak()
}
