package tags

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/mathx"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalogue has %d models, want 5 (Table I)", len(cat))
	}
	seen := make(map[string]bool, len(cat))
	for _, m := range cat {
		if m.Name == "" || m.SKU == "" || m.Chip == "" {
			t.Errorf("incomplete model %+v", m)
		}
		if seen[m.SKU] {
			t.Errorf("duplicate SKU %s", m.SKU)
		}
		seen[m.SKU] = true
		if m.SizeMM[0] <= 0 || m.SizeMM[1] <= 0 {
			t.Errorf("%s: bad size %v", m.SKU, m.SizeMM)
		}
		if m.SensitivityDBm >= 0 {
			t.Errorf("%s: implausible sensitivity %v dBm", m.SKU, m.SensitivityDBm)
		}
		if m.Quantity <= 0 {
			t.Errorf("%s: quantity %d", m.SKU, m.Quantity)
		}
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("Squig")
	if err != nil || m.SKU != "AZ-9540" {
		t.Errorf("by name = %v, %v", m, err)
	}
	m, err = ModelByName("AZ-9662")
	if err != nil || m.Name != "Short" {
		t.Errorf("by SKU = %v, %v", m, err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestDefaultModel(t *testing.T) {
	if DefaultModel().SKU != "AZ-9634" {
		t.Errorf("default model = %v", DefaultModel())
	}
}

func TestEPCRoundTrip(t *testing.T) {
	e := EPC{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8}
	parsed, err := ParseEPC(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != e {
		t.Errorf("round trip = %v, want %v", parsed, e)
	}
	if _, err := ParseEPC("zz"); err == nil {
		t.Error("bad hex should error")
	}
	if _, err := ParseEPC("abcd"); err == nil {
		t.Error("short EPC should error")
	}
}

func TestNewTagDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(DefaultModel(), rng)
	b := New(DefaultModel(), rng)
	if a.EPC == b.EPC {
		t.Error("two tags share an EPC")
	}
	if a.Diversity == b.Diversity {
		t.Error("two tags share a diversity term")
	}
	if a.Diversity < 0 || a.Diversity >= 2*math.Pi {
		t.Errorf("diversity out of range: %v", a.Diversity)
	}
}

func TestOrientationOffsetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range Catalog() {
		tag := New(m, rng)
		pp := tag.OrientationPeakToPeak()
		if pp < 0.3 || pp > 1.2 {
			t.Errorf("%s: orientation peak-to-peak %v outside the ≈0.7 rad regime", m.SKU, pp)
		}
		// The even harmonics dominate: the response is *approximately*
		// π-periodic, with the odd (asymmetry) part well below half the
		// even part.
		var oddMax float64
		for _, rho := range []float64{0, 0.5, 1.1, 2.2, 3.0} {
			d := tag.OrientationOffset(rho) - tag.OrientationOffset(rho+math.Pi)
			oddMax = math.Max(oddMax, math.Abs(d)/2)
		}
		if oddMax > 0.5*pp/2 {
			t.Errorf("%s: odd harmonic part %v rad too large vs p-p %v", m.SKU, oddMax, pp)
		}
		if oddMax == 0 {
			t.Errorf("%s: odd harmonics missing entirely", m.SKU)
		}
	}
}

func TestOrientationOffsetIsFittable(t *testing.T) {
	// The calibration pipeline fits a Fourier series to the response; make
	// sure a 4th-order fit can represent the ground truth exactly.
	rng := rand.New(rand.NewSource(6))
	tag := New(DefaultModel(), rng)
	var xs, ys []float64
	for i := 0; i < 90; i++ {
		x := 2 * math.Pi * float64(i) / 90
		xs = append(xs, x)
		ys = append(ys, tag.OrientationOffset(x))
	}
	fit, err := mathx.FitFourier(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if math.Abs(fit.Eval(x)-tag.OrientationOffset(x)) > 1e-9 {
			t.Fatalf("order-4 fit cannot represent ground truth at %v", x)
		}
	}
}

func TestSameModelTagsSimilarButNotIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(DefaultModel(), rng)
	b := New(DefaultModel(), rng)
	var maxDiff float64
	for i := 0; i < 360; i++ {
		rho := 2 * math.Pi * float64(i) / 360
		maxDiff = math.Max(maxDiff, math.Abs(a.OrientationOffset(rho)-b.OrientationOffset(rho)))
	}
	if maxDiff == 0 {
		t.Error("per-instance perturbation missing")
	}
	if maxDiff > 0.3 {
		t.Errorf("same-model tags too different: max Δ = %v rad", maxDiff)
	}
}
