// Package llrp implements a compact binary reader-protocol in the spirit of
// EPCglobal's Low Level Reader Protocol with Impinj's phase-report
// extension, which is how the paper's testbed shipped phase snapshots from
// the Speedway reader to the host. It is not wire-compatible with real LLRP
// (that protocol is far larger); it preserves the parts the system depends
// on: message framing, RO spec start/stop, batched tag report data carrying
// EPC, antenna, channel index, peak RSSI, a 12-bit phase word, and the
// reader-side microsecond timestamp, plus keepalives.
package llrp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ProtocolVersion is the only version this implementation speaks.
const ProtocolVersion = 1

// MaxMessageSize bounds the body size accepted from the wire, protecting
// the host from a corrupt or hostile length field.
const MaxMessageSize = 1 << 20

// headerSize is the encoded size of a message header:
// version(1) type(1) bodyLen(4) id(4).
const headerSize = 10

// Errors recognized by users of the codec.
var (
	// ErrBadVersion reports a frame with an unsupported protocol version.
	ErrBadVersion = errors.New("llrp: unsupported protocol version")
	// ErrUnknownType reports a frame with an unrecognized message type.
	ErrUnknownType = errors.New("llrp: unknown message type")
	// ErrTooLarge reports a frame whose declared body exceeds
	// MaxMessageSize.
	ErrTooLarge = errors.New("llrp: message too large")
	// ErrTruncated reports a body shorter than its structure requires.
	ErrTruncated = errors.New("llrp: truncated message body")
)

// MessageType enumerates the protocol's message types.
type MessageType uint8

const (
	// MsgReaderEventNotification announces reader lifecycle events.
	MsgReaderEventNotification MessageType = iota + 1
	// MsgStartROSpec asks the reader to begin an inventory session.
	MsgStartROSpec
	// MsgStartROSpecResponse acknowledges MsgStartROSpec.
	MsgStartROSpecResponse
	// MsgStopROSpec asks the reader to end the session.
	MsgStopROSpec
	// MsgStopROSpecResponse acknowledges MsgStopROSpec.
	MsgStopROSpecResponse
	// MsgROAccessReport carries a batch of tag reads.
	MsgROAccessReport
	// MsgKeepAlive is the reader's liveness probe.
	MsgKeepAlive
	// MsgKeepAliveAck answers MsgKeepAlive.
	MsgKeepAliveAck
	// MsgCloseConnection announces an orderly shutdown.
	MsgCloseConnection
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgReaderEventNotification:
		return "ReaderEventNotification"
	case MsgStartROSpec:
		return "StartROSpec"
	case MsgStartROSpecResponse:
		return "StartROSpecResponse"
	case MsgStopROSpec:
		return "StopROSpec"
	case MsgStopROSpecResponse:
		return "StopROSpecResponse"
	case MsgROAccessReport:
		return "ROAccessReport"
	case MsgKeepAlive:
		return "KeepAlive"
	case MsgKeepAliveAck:
		return "KeepAliveAck"
	case MsgCloseConnection:
		return "CloseConnection"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Message is one protocol message body.
type Message interface {
	// MsgType returns the wire type tag of the message.
	MsgType() MessageType
	// appendBody appends the encoded body to dst.
	appendBody(dst []byte) []byte
	// decodeBody parses the body.
	decodeBody(src []byte) error
}

// PhaseWordBits is the resolution of the phase report: Impinj readers report
// phase as a 12-bit word over [0, 2π).
const PhaseWordBits = 12

// phaseWordMax is the modulus of the phase word.
const phaseWordMax = 1 << PhaseWordBits

// PhaseWordFromRadians quantizes a phase in radians to the wire word.
func PhaseWordFromRadians(rad float64) uint16 {
	w := math.Mod(rad, 2*math.Pi)
	if w < 0 {
		w += 2 * math.Pi
	}
	return uint16(math.Round(w/(2*math.Pi)*phaseWordMax)) % phaseWordMax
}

// RadiansFromPhaseWord expands a wire phase word back to radians in [0, 2π).
func RadiansFromPhaseWord(word uint16) float64 {
	return float64(word%phaseWordMax) / phaseWordMax * 2 * math.Pi
}

// RSSIWordFromDBm quantizes an RSSI in dBm to the wire's centi-dBm int16.
func RSSIWordFromDBm(dbm float64) int16 {
	v := math.Round(dbm * 100)
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return int16(v)
}

// DBmFromRSSIWord expands a wire RSSI word to dBm.
func DBmFromRSSIWord(word int16) float64 { return float64(word) / 100 }

// TagReportData is one tag read inside an ROAccessReport.
type TagReportData struct {
	// EPC is the tag's 96-bit identity.
	EPC [12]byte
	// AntennaID is the 1-based reader port.
	AntennaID uint16
	// ChannelIndex is the hop-channel index of the read.
	ChannelIndex uint16
	// PeakRSSI is the received strength in centi-dBm.
	PeakRSSI int16
	// PhaseWord is the 12-bit backscatter phase word.
	PhaseWord uint16
	// FirstSeenMicros is the reader-clock timestamp in microseconds.
	FirstSeenMicros uint64
}

// tagReportSize is the encoded size of one TagReportData.
const tagReportSize = 12 + 2 + 2 + 2 + 2 + 8

// appendTo appends the encoded report to dst.
func (d TagReportData) appendTo(dst []byte) []byte {
	dst = append(dst, d.EPC[:]...)
	dst = binary.BigEndian.AppendUint16(dst, d.AntennaID)
	dst = binary.BigEndian.AppendUint16(dst, d.ChannelIndex)
	dst = binary.BigEndian.AppendUint16(dst, uint16(d.PeakRSSI))
	dst = binary.BigEndian.AppendUint16(dst, d.PhaseWord)
	dst = binary.BigEndian.AppendUint64(dst, d.FirstSeenMicros)
	return dst
}

// decodeFrom parses one report from src.
func (d *TagReportData) decodeFrom(src []byte) error {
	if len(src) < tagReportSize {
		return ErrTruncated
	}
	copy(d.EPC[:], src[:12])
	d.AntennaID = binary.BigEndian.Uint16(src[12:14])
	d.ChannelIndex = binary.BigEndian.Uint16(src[14:16])
	d.PeakRSSI = int16(binary.BigEndian.Uint16(src[16:18]))
	d.PhaseWord = binary.BigEndian.Uint16(src[18:20])
	d.FirstSeenMicros = binary.BigEndian.Uint64(src[20:28])
	return nil
}

// ROAccessReport is a batch of tag reads.
type ROAccessReport struct {
	Reports []TagReportData
}

// MsgType implements Message.
func (*ROAccessReport) MsgType() MessageType { return MsgROAccessReport }

func (m *ROAccessReport) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Reports)))
	for _, r := range m.Reports {
		dst = r.appendTo(dst)
	}
	return dst
}

func (m *ROAccessReport) decodeBody(src []byte) error {
	if len(src) < 4 {
		return ErrTruncated
	}
	n := binary.BigEndian.Uint32(src[:4])
	src = src[4:]
	if uint64(n)*tagReportSize != uint64(len(src)) {
		return fmt.Errorf("%w: %d reports need %d bytes, have %d",
			ErrTruncated, n, uint64(n)*tagReportSize, len(src))
	}
	m.Reports = make([]TagReportData, n)
	for i := range m.Reports {
		if err := m.Reports[i].decodeFrom(src[i*tagReportSize:]); err != nil {
			return err
		}
	}
	return nil
}

// StartROSpec asks the reader to begin inventorying for DurationMicros of
// simulated reader time (0 means until StopROSpec).
type StartROSpec struct {
	// ROSpecID correlates responses and reports with the request.
	ROSpecID uint32
	// DurationMicros bounds the session in reader-clock microseconds.
	DurationMicros uint64
}

// MsgType implements Message.
func (*StartROSpec) MsgType() MessageType { return MsgStartROSpec }

func (m *StartROSpec) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ROSpecID)
	dst = binary.BigEndian.AppendUint64(dst, m.DurationMicros)
	return dst
}

func (m *StartROSpec) decodeBody(src []byte) error {
	if len(src) < 12 {
		return ErrTruncated
	}
	m.ROSpecID = binary.BigEndian.Uint32(src[:4])
	m.DurationMicros = binary.BigEndian.Uint64(src[4:12])
	return nil
}

// StatusCode reports the result of a request.
type StatusCode uint8

const (
	// StatusOK means success.
	StatusOK StatusCode = 0
	// StatusError means the reader rejected or failed the request.
	StatusError StatusCode = 1
)

// StartROSpecResponse acknowledges StartROSpec.
type StartROSpecResponse struct {
	ROSpecID uint32
	Status   StatusCode
}

// MsgType implements Message.
func (*StartROSpecResponse) MsgType() MessageType { return MsgStartROSpecResponse }

func (m *StartROSpecResponse) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ROSpecID)
	return append(dst, byte(m.Status))
}

func (m *StartROSpecResponse) decodeBody(src []byte) error {
	if len(src) < 5 {
		return ErrTruncated
	}
	m.ROSpecID = binary.BigEndian.Uint32(src[:4])
	m.Status = StatusCode(src[4])
	return nil
}

// StopROSpec asks the reader to end the session.
type StopROSpec struct {
	ROSpecID uint32
}

// MsgType implements Message.
func (*StopROSpec) MsgType() MessageType { return MsgStopROSpec }

func (m *StopROSpec) appendBody(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, m.ROSpecID)
}

func (m *StopROSpec) decodeBody(src []byte) error {
	if len(src) < 4 {
		return ErrTruncated
	}
	m.ROSpecID = binary.BigEndian.Uint32(src[:4])
	return nil
}

// StopROSpecResponse acknowledges StopROSpec.
type StopROSpecResponse struct {
	ROSpecID uint32
	Status   StatusCode
}

// MsgType implements Message.
func (*StopROSpecResponse) MsgType() MessageType { return MsgStopROSpecResponse }

func (m *StopROSpecResponse) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ROSpecID)
	return append(dst, byte(m.Status))
}

func (m *StopROSpecResponse) decodeBody(src []byte) error {
	if len(src) < 5 {
		return ErrTruncated
	}
	m.ROSpecID = binary.BigEndian.Uint32(src[:4])
	m.Status = StatusCode(src[4])
	return nil
}

// EventCode enumerates reader lifecycle events.
type EventCode uint8

const (
	// EventConnectionAttempt is sent when a client connects.
	EventConnectionAttempt EventCode = iota + 1
	// EventROSpecStarted is sent when an RO spec begins running.
	EventROSpecStarted
	// EventROSpecDone is sent when an RO spec completes.
	EventROSpecDone
)

// ReaderEventNotification announces a reader lifecycle event.
type ReaderEventNotification struct {
	Event EventCode
	// TimestampMicros is the reader-clock time of the event.
	TimestampMicros uint64
}

// MsgType implements Message.
func (*ReaderEventNotification) MsgType() MessageType { return MsgReaderEventNotification }

func (m *ReaderEventNotification) appendBody(dst []byte) []byte {
	dst = append(dst, byte(m.Event))
	return binary.BigEndian.AppendUint64(dst, m.TimestampMicros)
}

func (m *ReaderEventNotification) decodeBody(src []byte) error {
	if len(src) < 9 {
		return ErrTruncated
	}
	m.Event = EventCode(src[0])
	m.TimestampMicros = binary.BigEndian.Uint64(src[1:9])
	return nil
}

// KeepAlive is the reader's liveness probe.
type KeepAlive struct{}

// MsgType implements Message.
func (*KeepAlive) MsgType() MessageType { return MsgKeepAlive }

func (*KeepAlive) appendBody(dst []byte) []byte { return dst }
func (*KeepAlive) decodeBody([]byte) error      { return nil }

// KeepAliveAck answers KeepAlive.
type KeepAliveAck struct{}

// MsgType implements Message.
func (*KeepAliveAck) MsgType() MessageType { return MsgKeepAliveAck }

func (*KeepAliveAck) appendBody(dst []byte) []byte { return dst }
func (*KeepAliveAck) decodeBody([]byte) error      { return nil }

// CloseConnection announces an orderly shutdown.
type CloseConnection struct{}

// MsgType implements Message.
func (*CloseConnection) MsgType() MessageType { return MsgCloseConnection }

func (*CloseConnection) appendBody(dst []byte) []byte { return dst }
func (*CloseConnection) decodeBody([]byte) error      { return nil }

// newMessage allocates an empty body struct for a wire type.
func newMessage(t MessageType) (Message, error) {
	switch t {
	case MsgReaderEventNotification:
		return &ReaderEventNotification{}, nil
	case MsgStartROSpec:
		return &StartROSpec{}, nil
	case MsgStartROSpecResponse:
		return &StartROSpecResponse{}, nil
	case MsgStopROSpec:
		return &StopROSpec{}, nil
	case MsgStopROSpecResponse:
		return &StopROSpecResponse{}, nil
	case MsgROAccessReport:
		return &ROAccessReport{}, nil
	case MsgKeepAlive:
		return &KeepAlive{}, nil
	case MsgKeepAliveAck:
		return &KeepAliveAck{}, nil
	case MsgCloseConnection:
		return &CloseConnection{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}
