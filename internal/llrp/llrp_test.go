package llrp

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPhaseWordRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) || math.Abs(raw) > 1e9 {
			return true
		}
		w := PhaseWordFromRadians(raw)
		if w >= phaseWordMax {
			return false
		}
		back := RadiansFromPhaseWord(w)
		// Quantization error is at most half a step.
		step := 2 * math.Pi / phaseWordMax
		diff := math.Abs(math.Mod(raw-back, 2*math.Pi))
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		return diff <= step/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseWordEdges(t *testing.T) {
	if PhaseWordFromRadians(0) != 0 {
		t.Error("0 rad should map to word 0")
	}
	// 2π wraps to 0, not 4096.
	if w := PhaseWordFromRadians(2 * math.Pi); w != 0 {
		t.Errorf("2π maps to %d", w)
	}
	if w := PhaseWordFromRadians(-0.001); w >= phaseWordMax {
		t.Errorf("negative phase maps to %d", w)
	}
	if got := RadiansFromPhaseWord(2048); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("word 2048 = %v, want π", got)
	}
}

func TestRSSIWordRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-62.5, -0.01, 0, -89.99, 30} {
		w := RSSIWordFromDBm(dbm)
		if math.Abs(DBmFromRSSIWord(w)-dbm) > 0.005 {
			t.Errorf("RSSI %v → %d → %v", dbm, w, DBmFromRSSIWord(w))
		}
	}
	if RSSIWordFromDBm(1e9) != math.MaxInt16 {
		t.Error("overflow not clamped")
	}
	if RSSIWordFromDBm(-1e9) != math.MinInt16 {
		t.Error("underflow not clamped")
	}
}

func sampleMessages() []Message {
	return []Message{
		&ReaderEventNotification{Event: EventROSpecStarted, TimestampMicros: 12345},
		&StartROSpec{ROSpecID: 7, DurationMicros: 4_000_000},
		&StartROSpecResponse{ROSpecID: 7, Status: StatusOK},
		&StopROSpec{ROSpecID: 7},
		&StopROSpecResponse{ROSpecID: 7, Status: StatusError},
		&ROAccessReport{Reports: []TagReportData{
			{
				EPC:             [12]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
				AntennaID:       3,
				ChannelIndex:    9,
				PeakRSSI:        -6250,
				PhaseWord:       4095,
				FirstSeenMicros: 999_999_999,
			},
			{PhaseWord: 1},
		}},
		&ROAccessReport{},
		&KeepAlive{},
		&KeepAliveAck{},
		&CloseConnection{},
	}
}

func TestMessageRoundTrips(t *testing.T) {
	for _, msg := range sampleMessages() {
		frame, err := Encode(42, msg)
		if err != nil {
			t.Fatalf("%v: %v", msg.MsgType(), err)
		}
		id, got, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v: %v", msg.MsgType(), err)
		}
		if id != 42 {
			t.Errorf("%v: id = %d", msg.MsgType(), id)
		}
		if !reflect.DeepEqual(normalizeReport(got), normalizeReport(msg)) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", msg.MsgType(), got, msg)
		}
	}
}

// normalizeReport maps a nil and an empty report slice to the same value so
// DeepEqual compares semantics rather than allocation details.
func normalizeReport(m Message) Message {
	if r, ok := m.(*ROAccessReport); ok && len(r.Reports) == 0 {
		return &ROAccessReport{Reports: []TagReportData{}}
	}
	return m
}

func TestReadMessageErrors(t *testing.T) {
	// Bad version.
	frame, err := Encode(1, &KeepAlive{})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 99
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
	// Unknown type.
	bad = append([]byte(nil), frame...)
	bad[1] = 200
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type err = %v", err)
	}
	// Oversized declared body.
	bad = append([]byte(nil), frame...)
	bad[2], bad[3], bad[4], bad[5] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
	// Truncated stream mid-header.
	if _, _, err := ReadMessage(bytes.NewReader(frame[:3])); err == nil {
		t.Error("mid-header truncation accepted")
	}
	// Truncated stream mid-body.
	full, err := Encode(1, &StartROSpec{ROSpecID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMessage(bytes.NewReader(full[:len(full)-2])); err == nil {
		t.Error("mid-body truncation accepted")
	}
}

func TestROAccessReportBodyValidation(t *testing.T) {
	// A report count inconsistent with the body length must be rejected.
	frame, err := Encode(5, &ROAccessReport{Reports: make([]TagReportData, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// Bump the declared count without adding bytes.
	frame[headerSize+3] = 3
	if _, _, err := ReadMessage(bytes.NewReader(frame)); !errors.Is(err, ErrTruncated) {
		t.Errorf("count mismatch err = %v", err)
	}
}

func TestStreamOfMessages(t *testing.T) {
	// Several frames back-to-back decode in order from one stream.
	var buf bytes.Buffer
	msgs := sampleMessages()
	for i, m := range msgs {
		if err := WriteMessage(&buf, uint32(i), m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		id, m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != uint32(i) {
			t.Errorf("frame %d: id = %d", i, id)
		}
		if m.MsgType() != msgs[i].MsgType() {
			t.Errorf("frame %d: type %v, want %v", i, m.MsgType(), msgs[i].MsgType())
		}
	}
	if _, _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("end of stream err = %v", err)
	}
}

func TestConnOverPipe(t *testing.T) {
	client, server := net.Pipe()
	cc, sc := NewConn(client), NewConn(server)
	defer cc.Close()
	defer sc.Close()

	done := make(chan error, 1)
	go func() {
		defer close(done)
		id, msg, err := sc.Receive()
		if err != nil {
			done <- err
			return
		}
		if _, ok := msg.(*StartROSpec); !ok {
			done <- errors.New("server got wrong type")
			return
		}
		done <- sc.Reply(id, &StartROSpecResponse{ROSpecID: 7, Status: StatusOK})
	}()

	sentID, err := cc.Send(&StartROSpec{ROSpecID: 7})
	if err != nil {
		t.Fatal(err)
	}
	gotID, resp, err := cc.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if gotID != sentID {
		t.Errorf("response id %d, want %d", gotID, sentID)
	}
	r, ok := resp.(*StartROSpecResponse)
	if !ok || r.Status != StatusOK || r.ROSpecID != 7 {
		t.Errorf("response = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnCorrelationIDsIncrease(t *testing.T) {
	client, server := net.Pipe()
	cc := NewConn(client)
	defer cc.Close()
	defer server.Close()
	go func() {
		// Drain whatever the client writes.
		io.Copy(io.Discard, server) //nolint:errcheck // draining only
	}()
	var last uint32
	for i := 0; i < 5; i++ {
		id, err := cc.Send(&KeepAlive{})
		if err != nil {
			t.Fatal(err)
		}
		if id <= last {
			t.Errorf("id %d did not increase past %d", id, last)
		}
		last = id
	}
}

func TestRandomTagReportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		var r TagReportData
		if _, err := rng.Read(r.EPC[:]); err != nil {
			t.Fatal(err)
		}
		r.AntennaID = uint16(rng.Intn(4) + 1)
		r.ChannelIndex = uint16(rng.Intn(16))
		r.PeakRSSI = int16(rng.Intn(20000) - 10000)
		r.PhaseWord = uint16(rng.Intn(phaseWordMax))
		r.FirstSeenMicros = rng.Uint64()
		rep := &ROAccessReport{Reports: []TagReportData{r}}
		frame, err := Encode(uint32(i), rep)
		if err != nil {
			t.Fatal(err)
		}
		_, back, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := back.(*ROAccessReport)
		if !ok || len(got.Reports) != 1 || got.Reports[0] != r {
			t.Fatalf("trial %d mismatch: %+v vs %+v", i, got, r)
		}
	}
}

func TestMessageTypeString(t *testing.T) {
	for _, m := range sampleMessages() {
		if m.MsgType().String() == "" {
			t.Errorf("empty name for %d", m.MsgType())
		}
	}
	if MessageType(250).String() == "" {
		t.Error("unknown type should render")
	}
}

// TestReadMessageNeverPanicsOnGarbage feeds random byte streams to the
// decoder: every outcome must be a clean error or a valid message, never a
// panic or a huge allocation.
func TestReadMessageNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		if _, err := rng.Read(buf); err != nil {
			t.Fatal(err)
		}
		// Half the trials get a valid version byte to reach deeper paths.
		if n > 0 && trial%2 == 0 {
			buf[0] = ProtocolVersion
		}
		_, _, err := ReadMessage(bytes.NewReader(buf))
		_ = err // any error is fine; a panic would fail the test
	}
}

// TestReadMessageTypeConfusion flips type bytes on valid frames: decoding a
// body under the wrong type must error or produce a well-formed message.
func TestReadMessageTypeConfusion(t *testing.T) {
	for _, msg := range sampleMessages() {
		frame, err := Encode(7, msg)
		if err != nil {
			t.Fatal(err)
		}
		for wrongType := byte(1); wrongType <= 9; wrongType++ {
			mutated := append([]byte(nil), frame...)
			mutated[1] = wrongType
			_, decoded, err := ReadMessage(bytes.NewReader(mutated))
			if err == nil && decoded == nil {
				t.Fatalf("type %d: nil message without error", wrongType)
			}
		}
	}
}
