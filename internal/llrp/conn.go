package llrp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Encode serializes a message with the given correlation id into a frame.
func Encode(id uint32, m Message) ([]byte, error) {
	body := m.appendBody(nil)
	if len(body) > MaxMessageSize {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(body))
	}
	frame := make([]byte, 0, headerSize+len(body))
	frame = append(frame, ProtocolVersion, byte(m.MsgType()))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.BigEndian.AppendUint32(frame, id)
	return append(frame, body...), nil
}

// ReadMessage reads and decodes one frame from r. It returns the correlation
// id and the decoded message.
func ReadMessage(r io.Reader) (uint32, Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != ProtocolVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[0])
	}
	msgType := MessageType(hdr[1])
	bodyLen := binary.BigEndian.Uint32(hdr[2:6])
	id := binary.BigEndian.Uint32(hdr[6:10])
	if bodyLen > MaxMessageSize {
		return 0, nil, fmt.Errorf("%w: declared body %d bytes", ErrTooLarge, bodyLen)
	}
	msg, err := newMessage(msgType)
	if err != nil {
		return 0, nil, err
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("read body of %v: %w", msgType, err)
	}
	if err := msg.decodeBody(body); err != nil {
		return 0, nil, fmt.Errorf("decode %v: %w", msgType, err)
	}
	return id, msg, nil
}

// WriteMessage encodes and writes one frame to w.
func WriteMessage(w io.Writer, id uint32, m Message) error {
	frame, err := Encode(id, m)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("write %v: %w", m.MsgType(), err)
	}
	return nil
}

// Conn is a message-oriented wrapper around a byte stream. Send and Receive
// are each safe for one concurrent user (one writer goroutine, one reader
// goroutine), the usual shape of an LLRP endpoint.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader

	sendMu sync.Mutex
	nextID uint32
}

// NewConn wraps a network connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{raw: c, br: bufio.NewReader(c)}
}

// Send writes a message with a fresh correlation id and returns that id.
func (c *Conn) Send(m Message) (uint32, error) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.nextID++
	id := c.nextID
	if err := WriteMessage(c.raw, id, m); err != nil {
		return 0, err
	}
	return id, nil
}

// Reply writes a message echoing an existing correlation id.
func (c *Conn) Reply(id uint32, m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return WriteMessage(c.raw, id, m)
}

// Receive reads the next message.
func (c *Conn) Receive() (uint32, Message, error) {
	return ReadMessage(c.br)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline sets the read/write deadline on the underlying connection.
// Setting a deadline in the past unblocks a pending Receive or Send — the
// mechanism context-aware callers use to abort an in-flight exchange.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }
