// Package sched owns the process-wide compute pool every chunked grid scan
// runs on. Before it existed, each spectrum scan privately spawned up to
// GOMAXPROCS goroutines, and a locate-batch multiplied that by per-tag
// bearing parallelism and the batch fan-out — B×T×GOMAXPROCS transient
// goroutines contending for the same cores. The pool replaces that with a
// fixed set of persistent workers (default GOMAXPROCS, overridable with
// SetWorkers or the TAGSPIN_WORKERS environment variable) that pull chunks
// from whatever jobs are active, round-robin across jobs, so concurrent
// requests interleave at chunk granularity instead of oversubscribing the Go
// scheduler.
//
// The execution contract matches the scan machinery it absorbed: a job is a
// half-open index range [0, n) cut into fixed-size chunks, every chunk is
// executed exactly once by exactly one goroutine, and each RunChunk call
// covers at most one chunk — callers (the 3D coarse scan in particular) may
// rely on chunk boundaries. Scheduling order never enters the caller's
// arithmetic, so results are bit-identical to a serial loop.
//
// Submitters participate in their own job: Run claims and executes chunks
// inline alongside the workers, which guarantees forward progress for every
// active job regardless of the pool width (even a 1-worker pool cannot
// starve one of two concurrent jobs) and keeps the pool deadlock-free — a
// job never waits on a worker becoming available.
//
// The steady-state hot path allocates nothing: job descriptors are pooled,
// completion is signaled through a reusable sync.WaitGroup, and the active
// job list reuses its backing array. That keeps the zero-allocs/op contract
// of the spectrum engine intact now that its scans route through here.
package sched

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// WorkersEnv is the environment variable that overrides the default pool
// width at process start. SetWorkers takes precedence once called.
const WorkersEnv = "TAGSPIN_WORKERS"

// Chunked is a unit of pool work: chunk [lo, hi) of a job's index range.
// Implementations must tolerate concurrent RunChunk calls on disjoint
// chunks (each chunk is delivered exactly once, to exactly one goroutine).
type Chunked interface {
	RunChunk(lo, hi int)
}

// job is one submitted scan: a chunk cursor over [0, n) plus completion
// accounting. Jobs are pooled; all fields are reset between uses.
type job struct {
	task    Chunked
	n       int // index range is [0, n)
	chunk   int // chunk size; last chunk may be partial
	nChunks int

	// next hands out chunk indices; it may run past nChunks (claims past
	// the end simply fail). completed counts finished chunks; the goroutine
	// that completes the last chunk releases the submitter's WaitGroup.
	next      atomic.Int64
	completed atomic.Int64
	// canceled makes remaining chunks drain as no-ops once the submitter
	// observes its context is done; claimed-but-running chunks finish.
	canceled atomic.Bool
	wg       sync.WaitGroup
	pool     *Pool
}

// claim hands out the next unclaimed chunk of the job.
func (jb *job) claim() (lo, hi int, ok bool) {
	c := int(jb.next.Add(1)) - 1
	if c >= jb.nChunks {
		return 0, 0, false
	}
	lo = c * jb.chunk
	hi = lo + jb.chunk
	if hi > jb.n {
		hi = jb.n
	}
	return lo, hi, true
}

// run executes (or, past cancellation, skips) one claimed chunk and
// performs the completion accounting. Recycle safety hinges on the access
// order here: until this goroutine's completed.Add lands, the job holds an
// uncounted chunk and cannot be recycled, so every field read must happen
// before the Add (hence the hoisted nChunks). After the Add, a non-final
// chunk must not touch the descriptor at all — a concurrent final completer
// may already have released the submitter and the descriptor may be reset
// for reuse. The final chunk alone may keep going: wg.Wait cannot return
// before its wg.Done.
func (jb *job) run(lo, hi int) {
	if !jb.canceled.Load() {
		jb.task.RunChunk(lo, hi)
		jb.pool.chunksRun.Add(1)
	}
	nChunks := int64(jb.nChunks)
	if jb.completed.Add(1) == nChunks {
		jb.wg.Done()
	}
}

// Pool is a bounded set of persistent workers executing chunked jobs.
// Use the package-level Run/SetWorkers for the shared process pool; NewPool
// exists so tests can exercise an isolated instance.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []*job // active jobs; workers round-robin over this list
	rr      int    // next job index workers pull from
	target  int    // desired worker count
	running int    // spawned workers that have not exited

	jobPool   sync.Pool
	start     time.Time
	chunksRun atomic.Uint64
	jobsRun   atomic.Uint64
}

// NewPool builds a pool with the given worker target (minimum 1). Workers
// spawn lazily on first use.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{target: workers, start: time.Now()}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// defaultWorkers resolves the initial width of the shared pool: a positive
// TAGSPIN_WORKERS wins, otherwise GOMAXPROCS at first use.
func defaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// shared is the process-wide pool, created on first use so that
// TAGSPIN_WORKERS and early SetWorkers calls are both honored.
var (
	sharedOnce sync.Once
	sharedPool *Pool
)

func shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(defaultWorkers()) })
	return sharedPool
}

// Run executes t over [0, n) on the shared pool. See Pool.Run.
func Run(ctx context.Context, t Chunked, n, chunk int) error {
	return shared().Run(ctx, t, n, chunk)
}

// SetWorkers pins the shared pool's width (minimum 1), letting operators
// size compute independently of GOMAXPROCS. Safe to call at any time;
// in-flight chunks finish where they are and the worker count converges.
func SetWorkers(n int) { shared().SetWorkers(n) }

// Workers reports the shared pool's configured width.
func Workers() int { return shared().Workers() }

// PoolStats reports the shared pool's counters.
func PoolStats() Stats { return shared().Stats() }

// SetWorkers adjusts the pool's worker target (minimum 1). Shrinking takes
// effect as surplus workers finish their current chunk; growing spawns
// immediately.
func (p *Pool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.target = n
	p.spawnLocked()
	p.mu.Unlock()
	// Wake idle workers so surplus ones notice the lower target and exit.
	p.cond.Broadcast()
}

// Workers returns the configured worker target.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// spawnLocked brings the running worker count up to the target. Caller
// holds p.mu.
func (p *Pool) spawnLocked() {
	for p.running < p.target {
		p.running++
		go p.worker()
	}
}

// worker is one persistent pool goroutine: pick the next active job
// round-robin, claim one chunk, run it, repeat; sleep when no jobs are
// active; exit when the pool shrank below this worker's slot.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		if p.running > p.target {
			p.running--
			p.mu.Unlock()
			return
		}
		if len(p.jobs) == 0 {
			p.cond.Wait()
			continue
		}
		if p.rr >= len(p.jobs) {
			p.rr = 0
		}
		jb := p.jobs[p.rr]
		p.rr++
		// Claim under the pool lock: a job can only be recycled after its
		// submitter detaches it (also under the lock) and every claimed
		// chunk completes, so a worker can never claim a stale descriptor.
		lo, hi, ok := jb.claim()
		if !ok {
			p.detachLocked(jb)
			continue
		}
		p.mu.Unlock()
		jb.run(lo, hi)
		p.mu.Lock()
	}
}

// detachLocked removes a drained job from the active list (idempotent).
func (p *Pool) detachLocked(jb *job) {
	for i, j := range p.jobs {
		if j == jb {
			last := len(p.jobs) - 1
			p.jobs[i] = p.jobs[last]
			p.jobs[last] = nil
			p.jobs = p.jobs[:last]
			return
		}
	}
}

// getJob draws a reset job descriptor from the pool.
func (p *Pool) getJob() *job {
	if jb, ok := p.jobPool.Get().(*job); ok {
		return jb
	}
	return &job{pool: p}
}

// putJob resets and returns a descriptor. Only called after wg.Wait has
// returned, so no other goroutine can still touch it.
func (p *Pool) putJob(jb *job) {
	jb.task = nil
	jb.n, jb.chunk, jb.nChunks = 0, 0, 0
	jb.next.Store(0)
	jb.completed.Store(0)
	jb.canceled.Store(false)
	p.jobPool.Put(jb)
}

// Run executes t's chunks of [0, n) and blocks until every executed chunk
// has finished. The calling goroutine participates: it claims and runs
// chunks of its own job alongside the workers, so every active job makes
// progress no matter how narrow the pool is. When ctx is canceled,
// unclaimed chunks are dropped, in-flight ones finish, and Run returns
// ctx.Err(); otherwise it returns nil with every chunk executed exactly
// once.
func (p *Pool) Run(ctx context.Context, t Chunked, n, chunk int) error {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = n
	}
	nChunks := (n + chunk - 1) / chunk
	jb := p.getJob()
	jb.task, jb.n, jb.chunk, jb.nChunks = t, n, chunk, nChunks
	jb.wg.Add(1)
	if nChunks > 1 {
		// Publish the job so workers help; a single-chunk job is just an
		// inline call and skips the list entirely.
		p.mu.Lock()
		p.spawnLocked()
		p.jobs = append(p.jobs, jb)
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	done := ctx.Done()
	for {
		if done != nil && !jb.canceled.Load() {
			select {
			case <-done:
				jb.canceled.Store(true)
			default:
			}
		}
		lo, hi, ok := jb.claim()
		if !ok {
			break
		}
		jb.run(lo, hi)
	}
	if nChunks > 1 {
		p.mu.Lock()
		p.detachLocked(jb)
		p.mu.Unlock()
	}
	jb.wg.Wait()
	p.jobsRun.Add(1)
	var err error
	if jb.canceled.Load() {
		err = ctx.Err()
	}
	p.putJob(jb)
	return err
}

// Stats is a point-in-time snapshot of a pool's activity, shaped for
// expvar publication.
type Stats struct {
	// Workers is the configured pool width (SetWorkers / TAGSPIN_WORKERS /
	// GOMAXPROCS default).
	Workers int
	// ActiveJobs is how many jobs currently have unclaimed chunks.
	ActiveJobs int
	// ChunksRun and JobsRun are cumulative since pool creation.
	ChunksRun uint64
	JobsRun   uint64
	// ChunksPerSec is the lifetime average chunk completion rate; scrape
	// ChunksRun deltas for instantaneous rates.
	ChunksPerSec float64
	// UptimeSec is seconds since the pool was created.
	UptimeSec float64
}

// Stats reports the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	workers, active := p.target, len(p.jobs)
	p.mu.Unlock()
	up := time.Since(p.start).Seconds()
	chunks := p.chunksRun.Load()
	var rate float64
	if up > 0 {
		rate = float64(chunks) / up
	}
	return Stats{
		Workers:      workers,
		ActiveJobs:   active,
		ChunksRun:    chunks,
		JobsRun:      p.jobsRun.Load(),
		ChunksPerSec: rate,
		UptimeSec:    up,
	}
}
