package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countTask records exactly which indices ran, and how often.
type countTask struct {
	hits  []atomic.Int32
	delay time.Duration
	// onChunk, when non-nil, observes each executed chunk start.
	onChunk func(lo, hi int)
}

func newCountTask(n int, delay time.Duration) *countTask {
	return &countTask{hits: make([]atomic.Int32, n), delay: delay}
}

func (t *countTask) RunChunk(lo, hi int) {
	if t.onChunk != nil {
		t.onChunk(lo, hi)
	}
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	for i := lo; i < hi; i++ {
		t.hits[i].Add(1)
	}
}

func (t *countTask) executed() int {
	n := 0
	for i := range t.hits {
		if t.hits[i].Load() > 0 {
			n++
		}
	}
	return n
}

// TestSchedRunCoversAllChunks proves the exactly-once contract across pool
// widths and chunk sizes, including partial final chunks and n < chunk.
func TestSchedRunCoversAllChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for _, tc := range []struct{ n, chunk int }{
			{1, 64}, {64, 64}, {65, 64}, {1000, 64}, {333, 10}, {5, 1},
		} {
			task := newCountTask(tc.n, 0)
			if err := p.Run(context.Background(), task, tc.n, tc.chunk); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, tc.n, err)
			}
			for i := range task.hits {
				if got := task.hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d chunk=%d: index %d ran %d times, want 1",
						workers, tc.n, tc.chunk, i, got)
				}
			}
		}
		if st := p.Stats(); st.JobsRun != 6 {
			t.Errorf("workers=%d: JobsRun = %d, want 6", workers, st.JobsRun)
		}
	}
}

// TestSchedConcurrentJobsShareWorkers hammers one pool from many submitters
// at once; under -race this is the data-race test for the job list and the
// claim/complete accounting.
func TestSchedConcurrentJobsShareWorkers(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				task := newCountTask(97, 0)
				if err := p.Run(context.Background(), task, 97, 8); err != nil {
					t.Errorf("run: %v", err)
					return
				}
				for i := range task.hits {
					if task.hits[i].Load() != 1 {
						t.Errorf("index %d not exactly-once", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSchedStarvation pins the fairness property the pool was built for: a
// 1-worker pool running a long job must not starve a second, shorter job —
// both make progress concurrently, and the short one finishes while the
// long one is still running.
func TestSchedStarvation(t *testing.T) {
	p := NewPool(1)
	const longChunks = 400
	long := newCountTask(longChunks, time.Millisecond)
	longStarted := make(chan struct{})
	var once sync.Once
	long.onChunk = func(lo, hi int) { once.Do(func() { close(longStarted) }) }

	longDone := make(chan struct{})
	go func() {
		defer close(longDone)
		if err := p.Run(context.Background(), long, longChunks, 1); err != nil {
			t.Errorf("long job: %v", err)
		}
	}()
	<-longStarted

	short := newCountTask(8, time.Millisecond)
	if err := p.Run(context.Background(), short, 8, 1); err != nil {
		t.Fatalf("short job: %v", err)
	}
	// The short job is done; the long one must still have work left —
	// i.e. the pool interleaved them instead of running the long job to
	// completion first.
	if got := long.executed(); got >= longChunks {
		t.Errorf("long job already finished (%d/%d chunks) when short job completed; no interleaving", got, longChunks)
	}
	if short.executed() != 8 {
		t.Errorf("short job executed %d/8 chunks", short.executed())
	}
	<-longDone
	if long.executed() != longChunks {
		t.Errorf("long job executed %d/%d chunks", long.executed(), longChunks)
	}
}

// TestSchedCancel checks that a canceled submitter stops receiving chunks:
// Run returns ctx.Err(), a (large) tail of the job never executes, and no
// chunk runs after Run has returned.
func TestSchedCancel(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 100000
	task := newCountTask(n, 0)
	task.onChunk = func(lo, hi int) {
		if lo == 0 {
			cancel()
		}
	}
	err := p.Run(ctx, task, n, 10)
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	executed := task.executed()
	if executed >= n/2 {
		t.Errorf("executed %d of %d indices after cancel, want an early stop", executed, n)
	}
	// Run has returned: every claimed chunk completed, so the count must
	// be frozen now.
	time.Sleep(20 * time.Millisecond)
	if again := task.executed(); again != executed {
		t.Errorf("chunks still executing after Run returned: %d -> %d", executed, again)
	}
}

// TestSchedSetWorkers exercises resizing in both directions while jobs are
// flowing.
func TestSchedSetWorkers(t *testing.T) {
	p := NewPool(2)
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	p.SetWorkers(0) // clamps to 1
	if got := p.Workers(); got != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", got)
	}
	p.SetWorkers(8)
	task := newCountTask(500, 0)
	if err := p.Run(context.Background(), task, 500, 7); err != nil {
		t.Fatal(err)
	}
	p.SetWorkers(1)
	task2 := newCountTask(500, 0)
	if err := p.Run(context.Background(), task2, 500, 7); err != nil {
		t.Fatal(err)
	}
	if task.executed() != 500 || task2.executed() != 500 {
		t.Errorf("executed %d and %d, want 500 each", task.executed(), task2.executed())
	}
	st := p.Stats()
	if st.Workers != 1 {
		t.Errorf("Stats().Workers = %d, want 1", st.Workers)
	}
	if st.ChunksRun == 0 || st.JobsRun != 2 {
		t.Errorf("Stats() = %+v, want nonzero ChunksRun and JobsRun=2", st)
	}
}

// TestSchedDefaultWorkersEnv pins the TAGSPIN_WORKERS resolution order:
// a positive integer wins, garbage and non-positive values fall back to
// GOMAXPROCS.
func TestSchedDefaultWorkersEnv(t *testing.T) {
	t.Setenv(WorkersEnv, "3")
	if got := defaultWorkers(); got != 3 {
		t.Errorf("defaultWorkers() with env=3: %d", got)
	}
	t.Setenv(WorkersEnv, "0")
	if got := defaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("defaultWorkers() with env=0: %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	t.Setenv(WorkersEnv, "not-a-number")
	if got := defaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("defaultWorkers() with garbage env: %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestSchedSharedPool sanity-checks the package-level wrappers around the
// process-wide pool (and restores its width for other tests).
func TestSchedSharedPool(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(2)
	if Workers() != 2 {
		t.Fatalf("shared Workers() = %d, want 2", Workers())
	}
	task := newCountTask(200, 0)
	if err := Run(context.Background(), task, 200, 16); err != nil {
		t.Fatal(err)
	}
	if task.executed() != 200 {
		t.Errorf("shared pool executed %d/200", task.executed())
	}
	if st := PoolStats(); st.ChunksRun == 0 || st.UptimeSec <= 0 {
		t.Errorf("PoolStats() = %+v", st)
	}
}

// TestSchedRunZeroAllocs pins the steady-state allocation contract of the
// submit path itself: the spectrum engine's 0 allocs/op guarantee now rests
// on it.
func TestSchedRunZeroAllocs(t *testing.T) {
	p := NewPool(4)
	task := newCountTask(1024, 0)
	ctx := context.Background()
	// Warm the descriptor pool and the job-list backing array.
	for i := 0; i < 4; i++ {
		if err := p.Run(ctx, task, 1024, 64); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := p.Run(ctx, task, 1024, 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Run allocates %v per op, want 0", allocs)
	}
}
