package registry

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

func validEntry(epcByte byte) Entry {
	var epc tags.EPC
	epc[0] = epcByte
	return Entry{
		EPC:            epc.String(),
		Center:         [3]float64{-0.25, 0, 0},
		RadiusM:        0.10,
		OmegaRadPerSec: math.Pi,
	}
}

func TestAddGetListRemove(t *testing.T) {
	r := New()
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(validEntry(2)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	e, err := r.Get(validEntry(1).EPC)
	if err != nil {
		t.Fatal(err)
	}
	if e.RadiusM != 0.10 {
		t.Errorf("entry = %+v", e)
	}
	list := r.List()
	if len(list) != 2 || list[0].EPC > list[1].EPC {
		t.Errorf("list not sorted: %v", list)
	}
	if err := r.Remove(validEntry(1).EPC); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(validEntry(1).EPC); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := r.Remove("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remove missing err = %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	r := New()
	bad := validEntry(1)
	bad.EPC = "zz"
	if err := r.Add(bad); err == nil {
		t.Error("bad EPC accepted")
	}
	bad = validEntry(1)
	bad.RadiusM = 0
	if err := r.Add(bad); err == nil {
		t.Error("zero radius accepted")
	}
	bad = validEntry(1)
	bad.OmegaRadPerSec = 0
	if err := r.Add(bad); err == nil {
		t.Error("zero omega accepted")
	}
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(validEntry(1)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	r := New()
	if err := r.Update(validEntry(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing err = %v", err)
	}
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	e := validEntry(1)
	e.RadiusM = 0.12
	if err := r.Update(e); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(e.EPC)
	if err != nil {
		t.Fatal(err)
	}
	if got.RadiusM != 0.12 {
		t.Errorf("update lost: %+v", got)
	}
}

func TestRoundTripSpinningTag(t *testing.T) {
	cal, err := phase.FitOrientation(orientationSamples(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var epc tags.EPC
	epc[11] = 7
	orig := core.SpinningTag{
		EPC: epc,
		Disk: spindisk.Disk{
			Center: geom.V3(0.25, 0, 0.095),
			Radius: 0.10,
			Omega:  math.Pi,
			Theta0: 1.2,
		},
		Orientation: &cal,
	}
	entry := EntryFromSpinningTag(orig)
	back, err := entry.SpinningTag()
	if err != nil {
		t.Fatal(err)
	}
	if back.EPC != orig.EPC || back.Disk != orig.Disk {
		t.Errorf("round trip mismatch: %+v vs %+v", back, orig)
	}
	for _, rho := range []float64{0, 1, 2, 3} {
		if math.Abs(back.Orientation.Offset(rho)-orig.Orientation.Offset(rho)) > 1e-12 {
			t.Errorf("calibration lost at ρ=%v", rho)
		}
	}
}

func orientationSamples() []phase.OrientationSample {
	var out []phase.OrientationSample
	for i := 0; i < 64; i++ {
		rho := 2 * math.Pi * float64(i) / 64
		out = append(out, phase.OrientationSample{Rho: rho, Phase: 1 + 0.3*math.Sin(2*rho)})
	}
	return out
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	r := New()
	cal, err := phase.FitOrientation(orientationSamples(), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := validEntry(1)
	e.Orientation = &cal
	if err := r.Add(e); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(validEntry(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	got, err := loaded.Get(e.EPC)
	if err != nil {
		t.Fatal(err)
	}
	if got.Orientation == nil {
		t.Fatal("orientation calibration not persisted")
	}
	for _, rho := range []float64{0.5, 1.5, 2.5} {
		if math.Abs(got.Orientation.Offset(rho)-cal.Offset(rho)) > 1e-9 {
			t.Errorf("persisted calibration differs at ρ=%v", rho)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("bad JSON accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestSpinningTags(t *testing.T) {
	r := New()
	if err := r.Add(validEntry(3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	st, err := r.SpinningTags()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("len = %d", len(st))
	}
	if st[0].EPC.String() > st[1].EPC.String() {
		t.Error("not sorted")
	}
}

// TestConcurrentAccess hammers the registry from many goroutines; run with
// -race to verify the locking.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var epc tags.EPC
				epc[0], epc[1] = byte(w), byte(i)
				e := validEntry(0)
				e.EPC = epc.String()
				if err := r.Add(e); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				if _, err := r.Get(e.EPC); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				r.List()
				e.RadiusM = 0.12
				if err := r.Update(e); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if i%2 == 0 {
					if err := r.Remove(e.EPC); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8*25 {
		t.Errorf("len = %d, want %d", r.Len(), 8*25)
	}
}

// TestSaveConcurrent hammers Save on one path from several goroutines; with
// the old fixed path+".tmp" scheme two concurrent Saves raced on the same
// temp file and could corrupt each other's rename. Run with -race.
func TestSaveConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	r := New()
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := r.Save(path); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load after concurrent saves: %v", err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded %d entries", loaded.Len())
	}
	assertNoTempFiles(t, dir)
}

// TestSaveFailedRenameCleansTemp points Save at a path whose rename must
// fail (the destination is an existing directory) and verifies the
// temporary file is removed instead of leaked.
func TestSaveFailedRenameCleansTemp(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "registry.json")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	// Make the rename target unremovable-over: a non-empty directory.
	if err := os.WriteFile(filepath.Join(blocked, "keep"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.Add(validEntry(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(blocked); err == nil {
		t.Fatal("save over a directory succeeded")
	}
	assertNoTempFiles(t, dir)
}

// TestSaveMissingDir fails before creating anything when the target
// directory does not exist.
func TestSaveMissingDir(t *testing.T) {
	r := New()
	if err := r.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "r.json")); err == nil {
		t.Error("save into missing directory succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}
