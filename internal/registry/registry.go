// Package registry is the localization server's store of spinning-tag
// installations: for each infrastructure tag, its EPC, the surveyed disk
// geometry (center, radius, angular velocity, phase reference), and the
// orientation calibration fitted at installation time (§III-B). The
// registry persists as JSON so deployments survive restarts.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

// ErrNotFound reports a lookup of an unregistered EPC.
var ErrNotFound = errors.New("registry: tag not found")

// ErrDuplicate reports registration of an already-present EPC.
var ErrDuplicate = errors.New("registry: tag already registered")

// Entry is one registered spinning tag in its wire/persisted form.
type Entry struct {
	// EPC is the tag identity, hex-encoded in JSON.
	EPC string `json:"epc"`
	// Center is the disk center in meters.
	Center [3]float64 `json:"centerM"`
	// RadiusM is the disk radius.
	RadiusM float64 `json:"radiusM"`
	// OmegaRadPerSec is the angular velocity.
	OmegaRadPerSec float64 `json:"omegaRadPerSec"`
	// Theta0Rad is the tag's disk angle at the session time origin.
	Theta0Rad float64 `json:"theta0Rad"`
	// Orientation is the fitted phase-orientation calibration, if any.
	Orientation *phase.OrientationCalibration `json:"orientation,omitempty"`
}

// Validate checks the entry.
func (e Entry) Validate() error {
	if _, err := tags.ParseEPC(e.EPC); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	disk := e.disk()
	if err := disk.Validate(); err != nil {
		return fmt.Errorf("registry: entry %s: %w", e.EPC, err)
	}
	if disk.Radius == 0 {
		return fmt.Errorf("registry: entry %s: zero radius", e.EPC)
	}
	return nil
}

// disk converts the entry's geometry fields.
func (e Entry) disk() spindisk.Disk {
	return spindisk.Disk{
		Center: geom.V3(e.Center[0], e.Center[1], e.Center[2]),
		Radius: e.RadiusM,
		Omega:  e.OmegaRadPerSec,
		Theta0: e.Theta0Rad,
	}
}

// SpinningTag converts the entry to the pipeline's representation.
func (e Entry) SpinningTag() (core.SpinningTag, error) {
	epc, err := tags.ParseEPC(e.EPC)
	if err != nil {
		return core.SpinningTag{}, err
	}
	return core.SpinningTag{EPC: epc, Disk: e.disk(), Orientation: e.Orientation}, nil
}

// EntryFromSpinningTag converts a pipeline representation to an entry.
func EntryFromSpinningTag(t core.SpinningTag) Entry {
	return Entry{
		EPC:            t.EPC.String(),
		Center:         [3]float64{t.Disk.Center.X, t.Disk.Center.Y, t.Disk.Center.Z},
		RadiusM:        t.Disk.Radius,
		OmegaRadPerSec: t.Disk.Omega,
		Theta0Rad:      t.Disk.Theta0,
		Orientation:    t.Orientation,
	}
}

// Registry is a concurrency-safe spinning-tag store.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// Add registers an entry. Duplicate EPCs are rejected.
func (r *Registry) Add(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[e.EPC]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, e.EPC)
	}
	r.entries[e.EPC] = e
	return nil
}

// Update replaces an existing entry (e.g. after re-running the orientation
// prelude).
func (r *Registry) Update(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[e.EPC]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, e.EPC)
	}
	r.entries[e.EPC] = e
	return nil
}

// Remove deletes an entry.
func (r *Registry) Remove(epc string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[epc]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, epc)
	}
	delete(r.entries, epc)
	return nil
}

// Get looks up one entry by hex EPC.
func (r *Registry) Get(epc string) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[epc]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, epc)
	}
	return e, nil
}

// List returns all entries sorted by EPC.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EPC < out[j].EPC })
	return out
}

// Len returns the number of registered tags.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// SpinningTags converts every entry for the pipeline.
func (r *Registry) SpinningTags() ([]core.SpinningTag, error) {
	entries := r.List()
	out := make([]core.SpinningTag, 0, len(entries))
	for _, e := range entries {
		t, err := e.SpinningTag()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Save writes the registry to path as JSON, atomically (write + rename).
// The temporary file gets a unique name in the target directory, so
// concurrent Saves to the same path cannot corrupt each other's rename, and
// it is removed on any failure rather than leaked.
func (r *Registry) Save(path string) (err error) {
	data, err := json.MarshalIndent(r.List(), "", "  ")
	if err != nil {
		return fmt.Errorf("registry save: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry save: %w", err)
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("registry save: %w", err)
	}
	if err = tmp.Chmod(0o644); err != nil {
		tmp.Close() //nolint:errcheck // already failing
		return fmt.Errorf("registry save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("registry save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("registry save: %w", err)
	}
	return nil
}

// Load reads a registry from a JSON file produced by Save.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry load: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("registry load: %w", err)
	}
	r := New()
	for _, e := range entries {
		if err := r.Add(e); err != nil {
			return nil, fmt.Errorf("registry load: %w", err)
		}
	}
	return r, nil
}
