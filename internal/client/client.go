// Package client implements the host side of the reader protocol: it
// connects to a reader, starts an inventory session, collects the streamed
// tag reports, and converts them into the snapshot series the localization
// pipeline consumes (expanding phase words to radians and channel indices to
// carrier frequencies).
//
// Collection is context-aware: a canceled or expired context unblocks an
// in-flight LLRP exchange immediately (the connection deadline is slammed to
// the past), and CollectRetry layers exponential-backoff retries on top for
// the transient failures flaky reader links produce.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"syscall"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/tags"
)

// ErrRejected reports that the reader refused to start the session.
var ErrRejected = errors.New("client: reader rejected RO spec")

// ErrReaderClosed reports that the reader ended the connection mid-session
// with a protocol-level CloseConnection. Like an abrupt TCP reset, this is a
// classic flaky-link condition: the reader (or a middlebox) recycled the
// connection, and a fresh session usually succeeds — so it is classified
// transient (see Transient) and retried by CollectRetry.
var ErrReaderClosed = errors.New("client: reader closed the connection mid-session")

// Config tunes a collection session.
type Config struct {
	// Band maps channel indices to carrier frequencies; zero value means
	// the China band the paper used.
	Band channel.Band
	// Duration is the simulated session length; zero means 4 s (two
	// rotations at ω = π).
	Duration time.Duration
	// Timeout bounds the whole wall-clock exchange; zero means 30 s. The
	// effective session deadline never cuts a configured Duration short:
	// it is max(Timeout, Duration + grace).
	Timeout time.Duration
	// MaxAttempts bounds how many times CollectRetry runs the exchange;
	// zero means 3. Plain Collect always makes exactly one attempt.
	MaxAttempts int
	// BaseBackoff is CollectRetry's first retry delay, doubled after each
	// failed attempt with ±50% jitter; zero means 100 ms.
	BaseBackoff time.Duration
	// OnMalformed, when non-nil, observes every malformed tag report a
	// session skipped (currently: an out-of-band channel index). Malformed
	// reports no longer abort the session — they are dropped read by read,
	// and collection fails only when a session produced nothing but
	// malformed reports.
	OnMalformed func(err error)
}

// band returns the effective frequency plan.
func (c Config) band() channel.Band {
	if c.Band.Channels == 0 {
		return channel.ChinaBand()
	}
	return c.Band
}

// duration returns the effective session length.
func (c Config) duration() time.Duration {
	if c.Duration <= 0 {
		return 4 * time.Second
	}
	return c.Duration
}

// timeout returns the effective wall-clock bound.
func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

// dialTimeout bounds the TCP dial alone. The dial must not be allowed to
// spend the whole session budget: a slow (but eventually successful) dial
// would otherwise leave ~0 budget for the exchange itself.
func (c Config) dialTimeout() time.Duration {
	dt := c.timeout() / 3
	if dt > 5*time.Second {
		dt = 5 * time.Second
	}
	return dt
}

// sessionGrace pads the session deadline past the requested inventory
// duration, covering connection setup, report draining, and the reader's
// final ROSpecDone.
const sessionGrace = 10 * time.Second

// sessionDeadline returns the wall-clock budget for the post-dial exchange:
// max(Timeout, Duration + grace), so a session longer than the default
// timeout is not doomed to die mid-stream.
func (c Config) sessionDeadline() time.Duration {
	if d := c.duration() + sessionGrace; d > c.timeout() {
		return d
	}
	return c.timeout()
}

// maxAttempts returns the effective CollectRetry attempt bound.
func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

// baseBackoff returns the effective first retry delay.
func (c Config) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.BaseBackoff
}

// ReportFunc observes one decoded tag snapshot the moment its report is
// read off the wire, before the session completes. Calls arrive from the
// collecting goroutine, in wire order; a slow sink backpressures the
// protocol loop, so sinks that do real work should hand off to their own
// goroutine (core.Stream does).
type ReportFunc func(epc tags.EPC, s phase.Snapshot)

// Collect dials a reader, runs one inventory session, and returns the
// per-EPC snapshot series. Canceling ctx aborts the exchange promptly, even
// while blocked mid-stream; the returned error then wraps ctx.Err().
func Collect(ctx context.Context, addr string, cfg Config) (core.Observations, error) {
	return CollectStream(ctx, addr, cfg, nil)
}

// CollectStream is Collect with a per-report callback: sink (when non-nil)
// sees every snapshot as it is decoded, letting downstream consumers overlap
// their work with the remainder of the session instead of waiting for the
// full Observations map. The map is still returned — the stream is a live
// copy, not a replacement — and on error the partial map is discarded while
// the sink has already seen the partial stream; callers that retry must
// reset their sink state per attempt (see CollectRetryStream).
func CollectStream(ctx context.Context, addr string, cfg Config, sink ReportFunc) (core.Observations, error) {
	dialer := net.Dialer{Timeout: cfg.dialTimeout()}
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client dial: %w", err)
	}
	deadline := time.Now().Add(cfg.sessionDeadline())
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := raw.SetDeadline(deadline); err != nil {
		raw.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("client deadline: %w", err)
	}
	conn := llrp.NewConn(raw)
	defer conn.Close() //nolint:errcheck // read side already drained
	// Watcher: when ctx is canceled mid-exchange, slam the connection
	// deadline so a blocked Receive (or Send) returns immediately instead
	// of waiting out the session deadline.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now()) //nolint:errcheck // best-effort abort
		case <-watchDone:
		}
	}()
	obs, err := collect(conn, cfg, sink)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("client: collect aborted: %w", cerr)
		}
		// The connection deadline is pinned to the context deadline above,
		// and net timers can fire a beat before context's own timer goroutine
		// marks the context done — surface the deadline, not the raw net
		// timeout, once its moment has passed.
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			return nil, fmt.Errorf("client: collect aborted: %w", context.DeadlineExceeded)
		}
		return nil, err
	}
	return obs, nil
}

// Transient reports whether err is worth retrying: dial failures, network
// timeouts, session rejections, mid-session connection closes (protocol
// CloseConnection or a TCP reset) are transient reader/link conditions;
// protocol errors and context cancellation are not.
func Transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrRejected) || errors.Is(err, ErrReaderClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		return true
	}
	return false
}

// CollectRetry runs Collect up to cfg.MaxAttempts times, sleeping an
// exponentially growing, jittered backoff between attempts. Only transient
// failures (see Transient) are retried; protocol errors and context
// cancellation surface immediately.
func CollectRetry(ctx context.Context, addr string, cfg Config) (core.Observations, error) {
	return CollectRetryStream(ctx, addr, cfg, nil)
}

// CollectRetryStream is CollectRetry with per-report streaming. start is
// called once per attempt and returns that attempt's sink (nil start, or a
// nil returned sink, disables streaming for the attempt) — a failed attempt
// has already streamed a partial prefix, so each retry needs a fresh sink
// that discards the previous attempt's state (core.Stream.Reset).
func CollectRetryStream(ctx context.Context, addr string, cfg Config, start func() ReportFunc) (core.Observations, error) {
	attempts := cfg.maxAttempts()
	backoff := cfg.baseBackoff()
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		var sink ReportFunc
		if start != nil {
			sink = start()
		}
		obs, err := CollectStream(ctx, addr, cfg, sink)
		if err == nil {
			return obs, nil
		}
		last = err
		if ctx.Err() != nil || !Transient(err) {
			return nil, err
		}
		if attempt == attempts {
			break
		}
		// Jitter the schedule to [backoff/2, 3·backoff/2) so a batch of
		// clients retrying the same reader doesn't stampede in lockstep.
		sleep := retryJitter(backoff)
		backoff *= 2
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: retry aborted: %w", ctx.Err())
		case <-time.After(sleep):
		}
	}
	return nil, fmt.Errorf("client: %d attempts failed: %w", attempts, last)
}

// retryJitterFloor is the smallest schedule retryJitter works from. It keeps
// rand.Int63n's argument positive when a caller hands CollectRetryStream a
// zero or negative backoff (BaseBackoff bypassing baseBackoff, or repeated
// doubling overflowing int64) instead of letting it panic mid-retry.
const retryJitterFloor = time.Millisecond

// RetryJitter maps a backoff schedule to a concrete jittered sleep in
// [backoff/2, 3·backoff/2) — the same stampede-avoidance draw CollectRetry
// uses between attempts, exported so other retrying tiers (the fleet
// coordinator's reroute backoff) share one schedule shape.
func RetryJitter(backoff time.Duration) time.Duration { return retryJitter(backoff) }

// retryJitter maps a backoff schedule to a concrete sleep in
// [backoff/2, 3·backoff/2), clamping non-positive schedules to
// retryJitterFloor first so the jitter draw is always well defined.
func retryJitter(backoff time.Duration) time.Duration {
	if backoff < retryJitterFloor {
		backoff = retryJitterFloor
	}
	return backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
}

// collect runs the session protocol over an established connection,
// calling sink (when non-nil) for each snapshot right after it is recorded.
func collect(conn *llrp.Conn, cfg Config, sink ReportFunc) (core.Observations, error) {
	if _, err := conn.Send(&llrp.StartROSpec{
		ROSpecID:       1,
		DurationMicros: uint64(cfg.duration() / time.Microsecond),
	}); err != nil {
		return nil, err
	}
	band := cfg.band()
	obs := make(core.Observations)
	started := false
	// Malformed reports (out-of-band channel indices) are skipped, not
	// fatal: one glitched read must not discard every good snapshot the
	// session already produced. The count and last cause are kept so an
	// all-malformed session still fails loudly.
	malformed := 0
	var lastMalformed error
	for {
		_, msg, err := conn.Receive()
		if err != nil {
			return nil, fmt.Errorf("client receive: %w", err)
		}
		switch m := msg.(type) {
		case *llrp.StartROSpecResponse:
			if m.Status != llrp.StatusOK {
				return nil, ErrRejected
			}
			started = true
		case *llrp.ROAccessReport:
			for _, rep := range m.Reports {
				freq, err := band.FrequencyHz(int(rep.ChannelIndex))
				if err != nil {
					malformed++
					lastMalformed = fmt.Errorf("client: report %v: %w", rep.EPC, err)
					if cfg.OnMalformed != nil {
						cfg.OnMalformed(lastMalformed)
					}
					continue
				}
				epc := tags.EPC(rep.EPC)
				snap := phase.Snapshot{
					Time:        time.Duration(rep.FirstSeenMicros) * time.Microsecond,
					Phase:       llrp.RadiansFromPhaseWord(rep.PhaseWord),
					RSSIdBm:     llrp.DBmFromRSSIWord(rep.PeakRSSI),
					FrequencyHz: freq,
					AntennaID:   int(rep.AntennaID),
				}
				obs[epc] = append(obs[epc], snap)
				if sink != nil {
					sink(epc, snap)
				}
			}
		case *llrp.KeepAlive:
			if err := conn.Reply(0, &llrp.KeepAliveAck{}); err != nil {
				return nil, err
			}
		case *llrp.ReaderEventNotification:
			if m.Event == llrp.EventROSpecDone {
				if !started {
					return nil, errors.New("client: session ended before it started")
				}
				if len(obs) == 0 && malformed > 0 {
					return nil, fmt.Errorf("client: all %d tag reports malformed: %w", malformed, lastMalformed)
				}
				return obs, nil
			}
		case *llrp.CloseConnection:
			return nil, ErrReaderClosed
		}
	}
}
