// Package client implements the host side of the reader protocol: it
// connects to a reader, starts an inventory session, collects the streamed
// tag reports, and converts them into the snapshot series the localization
// pipeline consumes (expanding phase words to radians and channel indices to
// carrier frequencies).
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/tags"
)

// ErrRejected reports that the reader refused to start the session.
var ErrRejected = errors.New("client: reader rejected RO spec")

// Config tunes a collection session.
type Config struct {
	// Band maps channel indices to carrier frequencies; zero value means
	// the China band the paper used.
	Band channel.Band
	// Duration is the simulated session length; zero means 4 s (two
	// rotations at ω = π).
	Duration time.Duration
	// Timeout bounds the whole wall-clock exchange; zero means 30 s.
	Timeout time.Duration
}

// band returns the effective frequency plan.
func (c Config) band() channel.Band {
	if c.Band.Channels == 0 {
		return channel.ChinaBand()
	}
	return c.Band
}

// duration returns the effective session length.
func (c Config) duration() time.Duration {
	if c.Duration <= 0 {
		return 4 * time.Second
	}
	return c.Duration
}

// timeout returns the effective wall-clock bound.
func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

// Collect dials a reader, runs one inventory session, and returns the
// per-EPC snapshot series.
func Collect(addr string, cfg Config) (core.Observations, error) {
	raw, err := net.DialTimeout("tcp", addr, cfg.timeout())
	if err != nil {
		return nil, fmt.Errorf("client dial: %w", err)
	}
	if err := raw.SetDeadline(time.Now().Add(cfg.timeout())); err != nil {
		raw.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("client deadline: %w", err)
	}
	conn := llrp.NewConn(raw)
	defer conn.Close() //nolint:errcheck // read side already drained
	return collect(conn, cfg)
}

// collect runs the session protocol over an established connection.
func collect(conn *llrp.Conn, cfg Config) (core.Observations, error) {
	if _, err := conn.Send(&llrp.StartROSpec{
		ROSpecID:       1,
		DurationMicros: uint64(cfg.duration() / time.Microsecond),
	}); err != nil {
		return nil, err
	}
	band := cfg.band()
	obs := make(core.Observations)
	started := false
	for {
		_, msg, err := conn.Receive()
		if err != nil {
			return nil, fmt.Errorf("client receive: %w", err)
		}
		switch m := msg.(type) {
		case *llrp.StartROSpecResponse:
			if m.Status != llrp.StatusOK {
				return nil, ErrRejected
			}
			started = true
		case *llrp.ROAccessReport:
			for _, rep := range m.Reports {
				freq, err := band.FrequencyHz(int(rep.ChannelIndex))
				if err != nil {
					return nil, fmt.Errorf("client: report %v: %w", rep.EPC, err)
				}
				epc := tags.EPC(rep.EPC)
				obs[epc] = append(obs[epc], phase.Snapshot{
					Time:        time.Duration(rep.FirstSeenMicros) * time.Microsecond,
					Phase:       llrp.RadiansFromPhaseWord(rep.PhaseWord),
					RSSIdBm:     llrp.DBmFromRSSIWord(rep.PeakRSSI),
					FrequencyHz: freq,
					AntennaID:   int(rep.AntennaID),
				})
			}
		case *llrp.KeepAlive:
			if err := conn.Reply(0, &llrp.KeepAliveAck{}); err != nil {
				return nil, err
			}
		case *llrp.ReaderEventNotification:
			if m.Event == llrp.EventROSpecDone {
				if !started {
					return nil, errors.New("client: session ended before it started")
				}
				return obs, nil
			}
		case *llrp.CloseConnection:
			return nil, errors.New("client: reader closed the connection mid-session")
		}
	}
}
