package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/llrp"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/tags"
)

// fakeReader scripts a reader endpoint over net.Pipe for protocol-level
// client tests (the full readersim integration lives in internal/readersim).
func fakeReader(t *testing.T, script func(conn *llrp.Conn)) *llrp.Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	for _, c := range []net.Conn{clientSide, serverSide} {
		if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	server := llrp.NewConn(serverSide)
	go func() {
		defer server.Close()
		script(server)
	}()
	cc := llrp.NewConn(clientSide)
	t.Cleanup(func() { cc.Close() })
	return cc
}

// expectStart consumes the client's StartROSpec.
func expectStart(t *testing.T, conn *llrp.Conn) uint32 {
	t.Helper()
	id, msg, err := conn.Receive()
	if err != nil {
		t.Errorf("server receive: %v", err)
		return 0
	}
	if _, ok := msg.(*llrp.StartROSpec); !ok {
		t.Errorf("server got %v, want StartROSpec", msg.MsgType())
	}
	return id
}

func TestCollectHappyPath(t *testing.T) {
	epc := [12]byte{1, 2, 3}
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{ROSpecID: 1, Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{{
			EPC:             epc,
			AntennaID:       2,
			ChannelIndex:    8,
			PeakRSSI:        -6215,
			PhaseWord:       1024, // π/2
			FirstSeenMicros: 500_000,
		}}}
		if _, err := s.Send(report); err != nil {
			return
		}
		if _, err := s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}); err != nil {
			return
		}
	})
	obs, err := collect(conn, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("tags = %d", len(obs))
	}
	for gotEPC, snaps := range obs {
		if gotEPC != epc {
			t.Errorf("EPC = %v", gotEPC)
		}
		if len(snaps) != 1 {
			t.Fatalf("snaps = %d", len(snaps))
		}
		s := snaps[0]
		if s.Time != 500*time.Millisecond {
			t.Errorf("time = %v", s.Time)
		}
		if s.AntennaID != 2 {
			t.Errorf("antenna = %d", s.AntennaID)
		}
		if s.RSSIdBm != -62.15 {
			t.Errorf("rssi = %v", s.RSSIdBm)
		}
		if d := s.Phase - 3.14159265/2; d > 0.01 || d < -0.01 {
			t.Errorf("phase = %v, want ≈π/2", s.Phase)
		}
		mid, err := channel.ChinaBand().FrequencyHz(8)
		if err != nil {
			t.Fatal(err)
		}
		if s.FrequencyHz != mid {
			t.Errorf("freq = %v, want %v", s.FrequencyHz, mid)
		}
	}
}

func TestCollectRejected(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusError}); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}, nil); !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
}

func TestCollectAnswersKeepAlive(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		if _, err := s.Send(&llrp.KeepAlive{}); err != nil {
			return
		}
		// The client must ack before the session ends.
		_, msg, err := s.Receive()
		if err != nil {
			t.Errorf("expected keepalive ack, got error %v", err)
			return
		}
		if _, ok := msg.(*llrp.KeepAliveAck); !ok {
			t.Errorf("got %v, want KeepAliveAck", msg.MsgType())
		}
		if _, err := s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectReaderClosesMidSession(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		if _, err := s.Send(&llrp.CloseConnection{}); err != nil {
			return
		}
	})
	_, err := collect(conn, Config{}, nil)
	if !errors.Is(err, ErrReaderClosed) {
		t.Errorf("err = %v, want ErrReaderClosed", err)
	}
	if !Transient(err) {
		t.Errorf("mid-session close %v should be transient (flaky link)", err)
	}
}

// TestCollectBadChannelIndexSkipped pins the skip-and-count behavior: one
// glitched read among good ones is dropped (and reported to the OnMalformed
// hook) instead of aborting the session and discarding the good snapshots.
func TestCollectBadChannelIndexSkipped(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{
			{EPC: [12]byte{1}, ChannelIndex: 99},
			{EPC: [12]byte{2}, ChannelIndex: 8, FirstSeenMicros: 1000},
		}}
		if _, err := s.Send(report); err != nil {
			return
		}
		s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}) //nolint:errcheck
	})
	var malformed int
	obs, err := collect(conn, Config{OnMalformed: func(error) { malformed++ }}, nil)
	if err != nil {
		t.Fatalf("session with one bad read failed: %v", err)
	}
	if len(obs) != 1 {
		t.Fatalf("tags = %d, want 1 (good read kept)", len(obs))
	}
	if _, ok := obs[[12]byte{2}]; !ok {
		t.Errorf("good read missing from observations")
	}
	if malformed != 1 {
		t.Errorf("OnMalformed saw %d reports, want 1", malformed)
	}
}

// TestCollectAllReportsMalformed keeps the loud failure when a session
// produced nothing usable: every read out-of-band must still error.
func TestCollectAllReportsMalformed(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{
			{EPC: [12]byte{1}, ChannelIndex: 99},
			{EPC: [12]byte{2}, ChannelIndex: 77},
		}}
		if _, err := s.Send(report); err != nil {
			return
		}
		s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}) //nolint:errcheck
	})
	var malformed int
	_, err := collect(conn, Config{OnMalformed: func(error) { malformed++ }}, nil)
	if err == nil {
		t.Fatal("all-malformed session accepted")
	}
	if !strings.Contains(err.Error(), "all 2 tag reports malformed") {
		t.Errorf("err = %v, want all-malformed count", err)
	}
	if malformed != 2 {
		t.Errorf("OnMalformed saw %d reports, want 2", malformed)
	}
}

func TestCollectDialFailure(t *testing.T) {
	_, err := Collect(context.Background(), "127.0.0.1:1", Config{Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Error("dial to a dead port succeeded")
	}
	if !Transient(err) {
		t.Errorf("dial failure %v should be transient", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.band().Channels != 16 {
		t.Errorf("default band = %+v", c.band())
	}
	if c.duration() != 4*time.Second {
		t.Errorf("default duration = %v", c.duration())
	}
	if c.timeout() != 30*time.Second {
		t.Errorf("default timeout = %v", c.timeout())
	}
	if c.maxAttempts() != 3 {
		t.Errorf("default attempts = %d", c.maxAttempts())
	}
	if c.baseBackoff() != 100*time.Millisecond {
		t.Errorf("default backoff = %v", c.baseBackoff())
	}
}

// TestBudgetSplit pins the dial/session budget separation: the dial may use
// at most min(timeout/3, 5s), and the session deadline never truncates a
// configured duration (max(timeout, duration+grace)) — a DurationMillis
// above 30 000 used to always die mid-session on the shared 30 s budget.
func TestBudgetSplit(t *testing.T) {
	var c Config // defaults: 30 s timeout, 4 s duration
	if got := c.dialTimeout(); got != 5*time.Second {
		t.Errorf("default dial timeout = %v, want capped 5 s", got)
	}
	if got := c.sessionDeadline(); got != 30*time.Second {
		t.Errorf("default session deadline = %v, want 30 s", got)
	}
	c = Config{Timeout: 6 * time.Second}
	if got := c.dialTimeout(); got != 2*time.Second {
		t.Errorf("dial timeout = %v, want timeout/3", got)
	}
	c = Config{Duration: 60 * time.Second}
	if got := c.sessionDeadline(); got != 60*time.Second+sessionGrace {
		t.Errorf("session deadline = %v, want duration+grace", got)
	}
}

// TestTransientClassification pins the retry policy's error taxonomy.
func TestTransientClassification(t *testing.T) {
	timeoutErr := &net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}
	dialErr := &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	resetErr := &net.OpError{Op: "read", Err: syscall.ECONNRESET}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrRejected, true},
		{fmt.Errorf("wrapped: %w", ErrRejected), true},
		{timeoutErr, true},
		{dialErr, true},
		{fmt.Errorf("client dial: %w", dialErr), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		// Mid-session closes are flaky-link conditions, not protocol bugs:
		// the reader (or a middlebox) recycled the connection and a fresh
		// session usually succeeds.
		{ErrReaderClosed, true},
		{fmt.Errorf("collect from r: %w", ErrReaderClosed), true},
		{resetErr, true},
		{fmt.Errorf("client receive: %w", resetErr), true},
		{io.ErrUnexpectedEOF, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// rejectingReader serves real TCP sessions that reject the first reject
// StartROSpecs with StatusError, then complete an empty session.
func rejectingReader(t *testing.T, reject int) (string, *atomic.Int32) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var sessions atomic.Int32
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				conn := llrp.NewConn(c)
				id, _, err := conn.Receive() // StartROSpec
				if err != nil {
					return
				}
				n := sessions.Add(1)
				if int(n) <= reject {
					conn.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusError}) //nolint:errcheck
					return
				}
				if err := conn.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
					return
				}
				conn.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}) //nolint:errcheck
			}(c)
		}
	}()
	return l.Addr().String(), &sessions
}

// TestCollectRetrySucceedsAfterRejections exercises the backoff loop against
// real wire-level rejections: two StatusError sessions, then success.
func TestCollectRetrySucceedsAfterRejections(t *testing.T) {
	addr, sessions := rejectingReader(t, 2)
	cfg := Config{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond}
	if _, err := CollectRetry(context.Background(), addr, cfg); err != nil {
		t.Fatalf("retry did not ride out rejections: %v", err)
	}
	if got := sessions.Load(); got != 3 {
		t.Errorf("sessions = %d, want 3", got)
	}
}

// TestCollectRetryExhaustsAttempts verifies the attempt bound and that the
// final error still reports the underlying rejection.
func TestCollectRetryExhaustsAttempts(t *testing.T) {
	addr, sessions := rejectingReader(t, 100)
	cfg := Config{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	_, err := CollectRetry(context.Background(), addr, cfg)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if got := sessions.Load(); got != 2 {
		t.Errorf("sessions = %d, want 2", got)
	}
}

// TestCollectContextCancelUnblocks cancels mid-exchange while the client is
// blocked in Receive against a silent but live endpoint; the watcher must
// slam the deadline and surface ctx.Err() well before the session deadline.
func TestCollectContextCancelUnblocks(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the conn open, never respond
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Collect(ctx, l.Addr().String(), Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt unblock", elapsed)
	}
}

// TestCollectStreamDeliversEverySnapshot pins the streaming contract: the
// sink sees exactly the snapshots the returned map holds, in wire order.
func TestCollectStreamDeliversEverySnapshot(t *testing.T) {
	epcA, epcB := [12]byte{1}, [12]byte{2}
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{
				{EPC: epcA, ChannelIndex: 8, PhaseWord: uint16(100 * i), FirstSeenMicros: uint64(1000 * i)},
				{EPC: epcB, ChannelIndex: 9, PhaseWord: uint16(200 * i), FirstSeenMicros: uint64(1000*i + 500)},
			}}
			if _, err := s.Send(report); err != nil {
				return
			}
		}
		s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}) //nolint:errcheck
	})
	streamed := make(core.Observations)
	obs, err := collect(conn, Config{}, func(epc tags.EPC, snap phase.Snapshot) {
		streamed[epc] = append(streamed[epc], snap)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 || len(streamed) != 2 {
		t.Fatalf("tags: returned %d, streamed %d, want 2", len(obs), len(streamed))
	}
	for epc, snaps := range obs {
		got := streamed[epc]
		if len(got) != len(snaps) {
			t.Fatalf("%v: streamed %d snapshots, returned %d", epc, len(got), len(snaps))
		}
		for i := range snaps {
			if got[i] != snaps[i] {
				t.Fatalf("%v snapshot %d: streamed %+v != returned %+v", epc, i, got[i], snaps[i])
			}
		}
	}
}

// TestCollectStreamPartialOnError verifies the documented failure shape: on
// a mid-session error the map is discarded but the sink has already seen
// the partial prefix — which is why retrying callers must reset per attempt.
func TestCollectStreamPartialOnError(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{
			{EPC: [12]byte{1}, ChannelIndex: 8},
			{EPC: [12]byte{1}, ChannelIndex: 8, FirstSeenMicros: 1000},
		}}
		if _, err := s.Send(report); err != nil {
			return
		}
		s.Send(&llrp.CloseConnection{}) //nolint:errcheck
	})
	var seen int
	obs, err := collect(conn, Config{}, func(tags.EPC, phase.Snapshot) { seen++ })
	if err == nil {
		t.Fatal("mid-session close accepted")
	}
	if obs != nil {
		t.Errorf("failed collect returned a map")
	}
	if seen != 2 {
		t.Errorf("sink saw %d snapshots before the failure, want 2", seen)
	}
}

// TestCollectRetryStreamFreshSinkPerAttempt verifies start() runs once per
// attempt, so a sink poisoned by a failed attempt's partial stream can be
// replaced before the retry.
func TestCollectRetryStreamFreshSinkPerAttempt(t *testing.T) {
	addr, sessions := rejectingReader(t, 1)
	cfg := Config{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond}
	var starts int
	_, err := CollectRetryStream(context.Background(), addr, cfg, func() ReportFunc {
		starts++
		return func(tags.EPC, phase.Snapshot) {}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sessions.Load(); got != 2 {
		t.Errorf("sessions = %d, want 2", got)
	}
	if starts != 2 {
		t.Errorf("start() called %d times, want once per attempt (2)", starts)
	}
}

// TestRetryJitterClampsNonPositive covers the schedules that used to panic
// inside rand.Int63n: an explicit zero, a negative value, and the negative
// product of int64 doubling overflow. All must yield a positive sleep.
func TestRetryJitterClampsNonPositive(t *testing.T) {
	big := time.Duration(math.MaxInt64)/2 + 1
	overflowed := big + big // doubled past MaxInt64, wrapping negative
	if overflowed > 0 {
		t.Fatalf("test setup: overflowed backoff %v is not negative", overflowed)
	}
	for _, backoff := range []time.Duration{0, -time.Second, overflowed, retryJitterFloor / 2} {
		for i := 0; i < 100; i++ {
			sleep := retryJitter(backoff)
			if sleep < retryJitterFloor/2 || sleep >= 3*retryJitterFloor/2 {
				t.Fatalf("retryJitter(%v) = %v, want in [%v, %v)",
					backoff, sleep, retryJitterFloor/2, 3*retryJitterFloor/2)
			}
		}
	}
}

// TestRetryJitterRange checks a healthy schedule stays within the documented
// [backoff/2, 3·backoff/2) stampede-avoidance window.
func TestRetryJitterRange(t *testing.T) {
	const backoff = 80 * time.Millisecond
	for i := 0; i < 200; i++ {
		sleep := retryJitter(backoff)
		if sleep < backoff/2 || sleep >= 3*backoff/2 {
			t.Fatalf("retryJitter(%v) = %v out of [%v, %v)",
				backoff, sleep, backoff/2, 3*backoff/2)
		}
	}
}

// TestCollectRetryZeroBaseBackoff runs the full retry loop with BaseBackoff
// left at zero — the configuration that used to reach rand.Int63n(0) — and
// verifies it retries to success instead of panicking.
func TestCollectRetryZeroBaseBackoff(t *testing.T) {
	addr, sessions := rejectingReader(t, 1)
	cfg := Config{MaxAttempts: 2, BaseBackoff: 0}
	if _, err := CollectRetry(context.Background(), addr, cfg); err != nil {
		t.Fatalf("retry with zero BaseBackoff failed: %v", err)
	}
	if got := sessions.Load(); got != 2 {
		t.Errorf("sessions = %d, want 2", got)
	}
}
