package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/llrp"
)

// fakeReader scripts a reader endpoint over net.Pipe for protocol-level
// client tests (the full readersim integration lives in internal/readersim).
func fakeReader(t *testing.T, script func(conn *llrp.Conn)) *llrp.Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	for _, c := range []net.Conn{clientSide, serverSide} {
		if err := c.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	server := llrp.NewConn(serverSide)
	go func() {
		defer server.Close()
		script(server)
	}()
	cc := llrp.NewConn(clientSide)
	t.Cleanup(func() { cc.Close() })
	return cc
}

// expectStart consumes the client's StartROSpec.
func expectStart(t *testing.T, conn *llrp.Conn) uint32 {
	t.Helper()
	id, msg, err := conn.Receive()
	if err != nil {
		t.Errorf("server receive: %v", err)
		return 0
	}
	if _, ok := msg.(*llrp.StartROSpec); !ok {
		t.Errorf("server got %v, want StartROSpec", msg.MsgType())
	}
	return id
}

func TestCollectHappyPath(t *testing.T) {
	epc := [12]byte{1, 2, 3}
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{ROSpecID: 1, Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{{
			EPC:             epc,
			AntennaID:       2,
			ChannelIndex:    8,
			PeakRSSI:        -6215,
			PhaseWord:       1024, // π/2
			FirstSeenMicros: 500_000,
		}}}
		if _, err := s.Send(report); err != nil {
			return
		}
		if _, err := s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}); err != nil {
			return
		}
	})
	obs, err := collect(conn, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("tags = %d", len(obs))
	}
	for gotEPC, snaps := range obs {
		if gotEPC != epc {
			t.Errorf("EPC = %v", gotEPC)
		}
		if len(snaps) != 1 {
			t.Fatalf("snaps = %d", len(snaps))
		}
		s := snaps[0]
		if s.Time != 500*time.Millisecond {
			t.Errorf("time = %v", s.Time)
		}
		if s.AntennaID != 2 {
			t.Errorf("antenna = %d", s.AntennaID)
		}
		if s.RSSIdBm != -62.15 {
			t.Errorf("rssi = %v", s.RSSIdBm)
		}
		if d := s.Phase - 3.14159265/2; d > 0.01 || d < -0.01 {
			t.Errorf("phase = %v, want ≈π/2", s.Phase)
		}
		mid, err := channel.ChinaBand().FrequencyHz(8)
		if err != nil {
			t.Fatal(err)
		}
		if s.FrequencyHz != mid {
			t.Errorf("freq = %v, want %v", s.FrequencyHz, mid)
		}
	}
}

func TestCollectRejected(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusError}); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}); !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
}

func TestCollectAnswersKeepAlive(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		if _, err := s.Send(&llrp.KeepAlive{}); err != nil {
			return
		}
		// The client must ack before the session ends.
		_, msg, err := s.Receive()
		if err != nil {
			t.Errorf("expected keepalive ack, got error %v", err)
			return
		}
		if _, ok := msg.(*llrp.KeepAliveAck); !ok {
			t.Errorf("got %v, want KeepAliveAck", msg.MsgType())
		}
		if _, err := s.Send(&llrp.ReaderEventNotification{Event: llrp.EventROSpecDone}); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectReaderClosesMidSession(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		if _, err := s.Send(&llrp.CloseConnection{}); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}); err == nil {
		t.Error("mid-session close accepted")
	}
}

func TestCollectBadChannelIndex(t *testing.T) {
	conn := fakeReader(t, func(s *llrp.Conn) {
		id := expectStart(t, s)
		if err := s.Reply(id, &llrp.StartROSpecResponse{Status: llrp.StatusOK}); err != nil {
			return
		}
		report := &llrp.ROAccessReport{Reports: []llrp.TagReportData{{ChannelIndex: 99}}}
		if _, err := s.Send(report); err != nil {
			return
		}
	})
	if _, err := collect(conn, Config{}); err == nil {
		t.Error("out-of-band channel index accepted")
	}
}

func TestCollectDialFailure(t *testing.T) {
	if _, err := Collect("127.0.0.1:1", Config{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial to a dead port succeeded")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.band().Channels != 16 {
		t.Errorf("default band = %+v", c.band())
	}
	if c.duration() != 4*time.Second {
		t.Errorf("default duration = %v", c.duration())
	}
	if c.timeout() != 30*time.Second {
		t.Errorf("default timeout = %v", c.timeout())
	}
}
