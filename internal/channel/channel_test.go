package channel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
)

func testSim(t *testing.T, cfg Config, seed int64) *Simulator {
	t.Helper()
	s, err := NewSimulator(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.PhaseNoiseStd = 0
	cfg.RSSINoiseStdDB = 0
	cfg.OrientationEffect = 0
	return cfg
}

func testQuery(rng *rand.Rand) Query {
	tag := tags.New(tags.DefaultModel(), rng)
	tag.Diversity = 0
	return Query{
		Tag:           tag,
		TagPos:        geom.V3(0.5, 0, 0),
		TagPlaneAngle: math.Pi / 2,
		Antenna:       antenna.Antenna{ID: 1, Position: geom.V3(3, 0, 0), Boresight: math.Pi, GainDBi: 8},
		FrequencyHz:   922.5e6,
	}
}

func TestWavelength(t *testing.T) {
	l := Wavelength(922.5e6)
	if math.Abs(l-0.32498) > 1e-4 {
		t.Errorf("λ(922.5 MHz) = %v, want ≈0.325 m", l)
	}
}

func TestChinaBand(t *testing.T) {
	b := ChinaBand()
	if b.Channels != 16 {
		t.Fatalf("channels = %d", b.Channels)
	}
	lo, err := b.FrequencyHz(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := b.FrequencyHz(b.Channels - 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 920.5e6 || hi > 924.5e6 {
		t.Errorf("band [%v, %v] outside 920.5–924.5 MHz", lo, hi)
	}
	if _, err := b.FrequencyHz(-1); err == nil {
		t.Error("negative channel accepted")
	}
	if _, err := b.FrequencyHz(16); err == nil {
		t.Error("out-of-band channel accepted")
	}
	if mid := b.MidChannel(); mid != 8 {
		t.Errorf("mid channel = %d", mid)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PhaseNoiseStd = -1
	if bad.Validate() == nil {
		t.Error("negative noise accepted")
	}
	bad = DefaultConfig()
	bad.Reflectors = []Reflector{{Normal: geom.Vec3{}, Coefficient: 0.3}}
	if bad.Validate() == nil {
		t.Error("zero-normal reflector accepted")
	}
	bad = DefaultConfig()
	bad.Reflectors = []Reflector{{Normal: geom.V3(1, 0, 0), Coefficient: 1.5}}
	if bad.Validate() == nil {
		t.Error("|Γ|≥1 reflector accepted")
	}
	if _, err := NewSimulator(DefaultConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestGeometricPhaseMatchesEqn1(t *testing.T) {
	a, b := geom.V3(0, 0, 0), geom.V3(2, 0, 0)
	freq := 922.5e6
	want := mathx.WrapPhase(4 * math.Pi * 2 / Wavelength(freq))
	if got := GeometricPhase(a, b, freq); math.Abs(got-want) > 1e-12 {
		t.Errorf("GeometricPhase = %v, want %v", got, want)
	}
}

func TestObservePhaseIsEqn1InFreeSpace(t *testing.T) {
	s := testSim(t, quietConfig(), 1)
	rng := rand.New(rand.NewSource(2))
	q := testQuery(rng)
	want := GeometricPhase(q.Antenna.Position, q.TagPos, q.FrequencyHz)
	obs, ok := s.Observe(q)
	for !ok { // read success is probabilistic; retry
		obs, ok = s.Observe(q)
	}
	if math.Abs(mathx.WrapToPi(obs.PhaseRad-want)) > 1e-9 {
		t.Errorf("phase = %v, want %v", obs.PhaseRad, want)
	}
}

func TestObserveIncludesDiversity(t *testing.T) {
	s := testSim(t, quietConfig(), 1)
	rng := rand.New(rand.NewSource(2))
	q := testQuery(rng)
	q.Tag.Diversity = 1.0
	q.Antenna.Diversity = 0.5
	base := GeometricPhase(q.Antenna.Position, q.TagPos, q.FrequencyHz)
	got := s.IdealPhase(q)
	if math.Abs(mathx.WrapToPi(got-base-1.5)) > 1e-9 {
		t.Errorf("diversity not additive: got %v, base %v", got, base)
	}
}

func TestObservePhaseNoiseStatistics(t *testing.T) {
	cfg := quietConfig()
	cfg.PhaseNoiseStd = 0.1
	s := testSim(t, cfg, 3)
	rng := rand.New(rand.NewSource(4))
	q := testQuery(rng)
	want := s.IdealPhase(q)
	var devs []float64
	for len(devs) < 4000 {
		if obs, ok := s.Observe(q); ok {
			devs = append(devs, mathx.WrapToPi(obs.PhaseRad-want))
		}
	}
	if m := mathx.Mean(devs); math.Abs(m) > 0.01 {
		t.Errorf("phase noise mean = %v, want ≈0", m)
	}
	if sd := mathx.Std(devs); math.Abs(sd-0.1) > 0.01 {
		t.Errorf("phase noise std = %v, want ≈0.1", sd)
	}
}

func TestOrientationEffectInjection(t *testing.T) {
	cfg := quietConfig()
	cfg.OrientationEffect = 1
	s := testSim(t, cfg, 5)
	rng := rand.New(rand.NewSource(6))
	q := testQuery(rng)
	base := GeometricPhase(q.Antenna.Position, q.TagPos, q.FrequencyHz)
	// Reader due east of the tag; ρ = plane angle − 0.
	var maxDev float64
	for i := 0; i < 72; i++ {
		q.TagPlaneAngle = 2 * math.Pi * float64(i) / 72
		dev := math.Abs(mathx.WrapToPi(s.IdealPhase(q) - base))
		maxDev = math.Max(maxDev, dev)
	}
	if maxDev < 0.2 {
		t.Errorf("orientation effect too small: max deviation %v rad", maxDev)
	}
	// Matches the tag's ground-truth response exactly.
	q.TagPlaneAngle = 1.234
	want := mathx.WrapPhase(base + q.Tag.OrientationOffset(1.234))
	if got := s.IdealPhase(q); math.Abs(mathx.WrapToPi(got-want)) > 1e-9 {
		t.Errorf("orientation offset mismatch: %v vs %v", got, want)
	}
}

func TestLinkBudgetDistanceFalloff(t *testing.T) {
	s := testSim(t, quietConfig(), 7)
	rng := rand.New(rand.NewSource(8))
	q := testQuery(rng)
	near, _ := s.Observe(q)
	q2 := q
	q2.Antenna.Position = geom.V3(6, 0, 0)
	far, _ := s.Observe(q2)
	if far.TagPowerDBm >= near.TagPowerDBm {
		t.Errorf("tag power should fall with distance: near %v, far %v",
			near.TagPowerDBm, far.TagPowerDBm)
	}
	// Doubling one-way distance costs ≈6 dB one-way.
	drop := near.TagPowerDBm - far.TagPowerDBm
	// Distances: 2.5 m vs 5.5 m → 20log10(5.5/2.5) ≈ 6.85 dB.
	if math.Abs(drop-20*math.Log10(5.5/2.5)) > 0.5 {
		t.Errorf("free-space falloff = %v dB", drop)
	}
}

func TestTagStopsRespondingBeyondSensitivity(t *testing.T) {
	s := testSim(t, quietConfig(), 9)
	rng := rand.New(rand.NewSource(10))
	q := testQuery(rng)
	q.Antenna.Position = geom.V3(500, 0, 0) // far outside UHF read range
	obs, ok := s.Observe(q)
	if ok {
		t.Error("tag read at 500 m")
	}
	if obs.TagPowerDBm >= q.Tag.Model.SensitivityDBm {
		t.Errorf("tag power %v above sensitivity at 500 m", obs.TagPowerDBm)
	}
}

func TestReadRateHigherWhenPerpendicular(t *testing.T) {
	s := testSim(t, DefaultConfig(), 11)
	rng := rand.New(rand.NewSource(12))
	q := testQuery(rng)
	q.Antenna.Position = geom.V3(4.5, 0, 0) // weak link so p(ρ) is not saturated
	count := func(plane float64) int {
		q.TagPlaneAngle = plane
		n := 0
		for i := 0; i < 3000; i++ {
			if _, ok := s.Observe(q); ok {
				n++
			}
		}
		return n
	}
	perp := count(math.Pi / 2) // plane ⊥ sight line: best coupling
	para := count(0)           // plane ∥ sight line: worst
	if perp <= para {
		t.Errorf("read rate should peak at ρ=π/2: perp %d vs para %d", perp, para)
	}
}

func TestMultipathPerturbsPhase(t *testing.T) {
	cfg := quietConfig()
	cfg.Reflectors = []Reflector{{
		Point:       geom.V3(0, 3, 0),
		Normal:      geom.V3(0, -1, 0), // reflective side faces the tags below
		Coefficient: -0.4,
	}}
	s := testSim(t, cfg, 13)
	free := testSim(t, quietConfig(), 13)
	rng := rand.New(rand.NewSource(14))
	q := testQuery(rng)
	d := math.Abs(mathx.WrapToPi(s.IdealPhase(q) - free.IdealPhase(q)))
	if d == 0 {
		t.Error("reflector had no effect on phase")
	}
	if d > 0.5 {
		t.Errorf("a single |Γ|=0.4 wall shifted phase by %v rad; implausibly large", d)
	}
}

func TestReflectorImage(t *testing.T) {
	r := Reflector{Point: geom.V3(0, 2, 0), Normal: geom.V3(0, 1, 0), Coefficient: -0.3}
	if r.Illuminates(geom.V3(1, 0, 0), geom.V3(0, 1, 0)) {
		t.Error("wall reflected from behind")
	}
	if !r.Illuminates(geom.V3(1, 3, 0), geom.V3(0, 4, 0)) {
		t.Error("wall failed to reflect on its front side")
	}
	img := r.Image(geom.V3(1, 0, 0.5))
	if img.DistanceTo(geom.V3(1, 4, 0.5)) > 1e-12 {
		t.Errorf("image = %v, want (1,4,0.5)", img)
	}
	// Reflecting twice returns the original point.
	if r.Image(img).DistanceTo(geom.V3(1, 0, 0.5)) > 1e-12 {
		t.Error("double reflection is not identity")
	}
}

func TestReadProbabilityShape(t *testing.T) {
	if readProbability(-1) != 0 || readProbability(0) != 0 {
		t.Error("no link margin must mean no reads")
	}
	if p := readProbability(100); p != 0.95 {
		t.Errorf("saturated probability = %v, want 0.95", p)
	}
	if readProbability(5) >= readProbability(10) {
		t.Error("read probability should grow with margin")
	}
}

func TestRSSIReasonableRange(t *testing.T) {
	s := testSim(t, DefaultConfig(), 15)
	rng := rand.New(rand.NewSource(16))
	q := testQuery(rng)
	var obs Observation
	ok := false
	for !ok {
		obs, ok = s.Observe(q)
	}
	// Backscatter RSSI at 2.5 m is typically -45…-75 dBm on COTS readers.
	if obs.RSSIdBm > -30 || obs.RSSIdBm < -90 {
		t.Errorf("RSSI = %v dBm, outside plausible backscatter range", obs.RSSIdBm)
	}
}
