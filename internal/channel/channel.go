// Package channel simulates the UHF backscatter radio channel between a
// reader antenna and a passive tag: the wrapped phase of Eqn. 1 including
// hardware diversity and the tag-orientation effect of Observation 3.1, a
// two-way Friis link budget with tag wake-up sensitivity, Gaussian phase and
// RSSI noise, optional image-method multipath, and the read-rate
// (sampling-density) behaviour the paper observed around ρ = π/2.
//
// This package is the substitution for the paper's physical testbed (see
// DESIGN.md §2): everything downstream consumes only the observation tuples
// it emits.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
)

// SpeedOfLight is c in m/s.
const SpeedOfLight = 299_792_458.0

// Wavelength converts a carrier frequency in Hz to a wavelength in meters.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// Band is a regulatory frequency plan the reader hops over.
type Band struct {
	// StartHz is the center frequency of channel 0.
	StartHz float64
	// StepHz is the channel spacing.
	StepHz float64
	// Channels is the number of hop channels.
	Channels int
}

// ChinaBand returns the 920.5–924.5 MHz UHF RFID band the paper operated in
// (16 channels at 250 kHz spacing; wavelengths ≈ 32.4–32.6 cm).
func ChinaBand() Band {
	return Band{StartHz: 920.625e6, StepHz: 250e3, Channels: 16}
}

// FrequencyHz returns the center frequency of hop channel ch.
func (b Band) FrequencyHz(ch int) (float64, error) {
	if ch < 0 || ch >= b.Channels {
		return 0, fmt.Errorf("channel: hop index %d outside band of %d channels", ch, b.Channels)
	}
	return b.StartHz + float64(ch)*b.StepHz, nil
}

// MidChannel returns the index of the band's center channel, the default
// fixed channel for non-hopping sessions.
func (b Band) MidChannel() int { return b.Channels / 2 }

// Reflector is a vertical planar wall for image-method multipath. The plane
// contains Point and has horizontal unit normal Normal. Coefficient is the
// signed amplitude reflection coefficient (typically negative, magnitude
// well below 1).
type Reflector struct {
	Point       geom.Vec3
	Normal      geom.Vec3
	Coefficient float64
}

// Image reflects p across the reflector's plane.
func (r Reflector) Image(p geom.Vec3) geom.Vec3 {
	n := r.Normal.Unit()
	d := p.Sub(r.Point).Dot(n)
	return p.Sub(n.Scale(2 * d))
}

// Illuminates reports whether the wall can reflect a path between a and b:
// both endpoints must sit on the side its normal points toward (a wall does
// not reflect from behind, and a degenerate zero-distance geometry would
// blow the 1/d amplitude up).
func (r Reflector) Illuminates(a, b geom.Vec3) bool {
	n := r.Normal.Unit()
	const minClearance = 0.05 // meters from the wall plane
	return a.Sub(r.Point).Dot(n) > minClearance && b.Sub(r.Point).Dot(n) > minClearance
}

// Config sets the invariant parameters of the simulated radio environment.
type Config struct {
	// TxPowerDBm is the reader transmit power (30 dBm ≈ 1 W ERP typical).
	TxPowerDBm float64
	// PhaseNoiseStd is the per-read phase noise σ in radians. The paper
	// (after Tagoram) uses 0.1 rad for COTS readers.
	PhaseNoiseStd float64
	// RSSINoiseStdDB is the per-read RSSI noise σ in dB.
	RSSINoiseStdDB float64
	// BackscatterLossDB is the modulation loss at the tag (positive dB).
	BackscatterLossDB float64
	// TagGainDBi is the tag antenna's best-case gain.
	TagGainDBi float64
	// Reflectors lists multipath walls. Empty means free space.
	Reflectors []Reflector
	// OrientationEffect scales the tag's ground-truth orientation phase
	// response; 1 is physical, 0 disables the effect (for controlled
	// experiments). Nil-like zero value means 1 when UseOrientationZero
	// is false — use DefaultConfig and override explicitly.
	OrientationEffect float64
	// OutlierProb is the probability that a successful read reports a
	// garbage phase (uniform on [0, 2π)) — decode glitches and capture
	// collisions in dense reader environments. Zero disables; the paper's
	// R profile is designed to survive exactly this regime ("strong noise
	// environment", §IV).
	OutlierProb float64
}

// DefaultConfig returns the environment used by the paper-style scenarios.
func DefaultConfig() Config {
	return Config{
		TxPowerDBm:        30,
		PhaseNoiseStd:     0.1,
		RSSINoiseStdDB:    0.5,
		BackscatterLossDB: 5,
		TagGainDBi:        2,
		OrientationEffect: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PhaseNoiseStd < 0 || c.RSSINoiseStdDB < 0 {
		return fmt.Errorf("channel: negative noise std")
	}
	if c.BackscatterLossDB < 0 {
		return fmt.Errorf("channel: negative backscatter loss")
	}
	if c.OrientationEffect < 0 {
		return fmt.Errorf("channel: negative orientation effect")
	}
	if c.OutlierProb < 0 || c.OutlierProb > 1 {
		return fmt.Errorf("channel: outlier probability %v outside [0, 1]", c.OutlierProb)
	}
	for i, r := range c.Reflectors {
		if r.Normal.Norm() == 0 {
			return fmt.Errorf("channel: reflector %d has zero normal", i)
		}
		if math.Abs(r.Coefficient) >= 1 {
			return fmt.Errorf("channel: reflector %d has |Γ| ≥ 1", i)
		}
	}
	return nil
}

// Observation is one successful tag read as the physical layer produces it,
// before reader-side quantization.
type Observation struct {
	// PhaseRad is the measured backscatter phase, wrapped to [0, 2π).
	PhaseRad float64
	// RSSIdBm is the received signal strength at the reader.
	RSSIdBm float64
	// TagPowerDBm is the forward power that reached the tag chip.
	TagPowerDBm float64
}

// Simulator evaluates the channel. It is not safe for concurrent use; give
// each goroutine its own Simulator (they are cheap).
type Simulator struct {
	cfg Config
	rng *rand.Rand
}

// NewSimulator builds a Simulator with the given environment and randomness
// source.
func NewSimulator(cfg Config, rng *rand.Rand) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	return &Simulator{cfg: cfg, rng: rng}, nil
}

// Config returns the simulator's environment configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Query describes one read attempt.
type Query struct {
	// Tag is the physical tag instance.
	Tag *tags.Tag
	// TagPos is the tag's true position.
	TagPos geom.Vec3
	// TagPlaneAngle is the absolute azimuth of the tag's antenna plane.
	TagPlaneAngle float64
	// Antenna is the interrogating reader antenna.
	Antenna antenna.Antenna
	// FrequencyHz is the carrier frequency.
	FrequencyHz float64
}

// oneWay returns the complex one-way channel gain between two points,
// including direct path and reflector images. The magnitude carries the 1/d
// spreading; the λ/4π aperture factor is applied by the link budget.
func (s *Simulator) oneWay(a, b geom.Vec3, lambda float64) complex128 {
	h := pathTerm(a.DistanceTo(b), lambda, 1)
	for _, r := range s.cfg.Reflectors {
		if !r.Illuminates(a, b) {
			continue
		}
		img := r.Image(a)
		h += pathTerm(img.DistanceTo(b), lambda, r.Coefficient)
	}
	return h
}

// pathTerm is (Γ/d)·e^{-j2πd/λ}.
func pathTerm(d, lambda, gamma float64) complex128 {
	if d <= 0 {
		d = 1e-6
	}
	return cmplx.Rect(gamma/d, -2*math.Pi*d/lambda)
}

// orientationTo returns ρ, the angle between the tag plane and the sight
// line from tag to reader.
func orientationTo(q Query) float64 {
	az := q.Antenna.Position.Sub(q.TagPos).Azimuth()
	return geom.NormalizeAngle(q.TagPlaneAngle - az)
}

// tagGainDB returns the tag antenna gain toward the reader: best when the
// tag plane is perpendicular to the sight line (ρ = π/2 + kπ), as §III-B
// explains, with a floor so the tag is never perfectly invisible.
func (s *Simulator) tagGainDB(rho float64) float64 {
	const floor = 0.15 // linear power fraction at worst orientation
	sin := math.Sin(rho)
	frac := floor + (1-floor)*sin*sin
	return s.cfg.TagGainDBi + 10*math.Log10(frac)
}

// linkState is the deterministic part of a read attempt.
type linkState struct {
	h        complex128
	rho      float64
	gReader  float64
	gTag     float64
	oneWayDB float64
	tagPower float64
}

// link evaluates the deterministic link budget for a query.
func (s *Simulator) link(q Query) linkState {
	lambda := Wavelength(q.FrequencyHz)
	h := s.oneWay(q.Antenna.Position, q.TagPos, lambda)
	rho := orientationTo(q)
	aperture := 20 * math.Log10(lambda/(4*math.Pi))
	oneWayDB := 20*math.Log10(cmplx.Abs(h)) + aperture
	gReader := q.Antenna.GainTowards(q.TagPos)
	gTag := s.tagGainDB(rho)
	return linkState{
		h: h, rho: rho, gReader: gReader, gTag: gTag, oneWayDB: oneWayDB,
		tagPower: s.cfg.TxPowerDBm + gReader + gTag + oneWayDB,
	}
}

// measure fills the noisy measurement fields of an observation for a
// singulated read.
func (s *Simulator) measure(q Query, ls linkState) Observation {
	obs := Observation{TagPowerDBm: ls.tagPower}
	// Round trip: reciprocal channel, so H = h². The reader reports the
	// negated argument of H plus the hardware and orientation terms.
	geomPhase := -2 * cmplx.Phase(ls.h)
	phase := geomPhase +
		q.Tag.Diversity +
		q.Antenna.Diversity +
		s.cfg.OrientationEffect*q.Tag.OrientationOffset(ls.rho) +
		s.rng.NormFloat64()*s.cfg.PhaseNoiseStd
	if s.cfg.OutlierProb > 0 && s.rng.Float64() < s.cfg.OutlierProb {
		phase = s.rng.Float64() * 2 * math.Pi
	}
	obs.PhaseRad = mathx.WrapPhase(phase)
	obs.RSSIdBm = ls.tagPower - s.cfg.BackscatterLossDB + ls.gTag + ls.gReader + ls.oneWayDB +
		s.rng.NormFloat64()*s.cfg.RSSINoiseStdDB
	return obs
}

// Observe performs one read attempt. ok reports whether the tag responded
// and the reader decoded it; when ok is false the Observation is only
// partially filled (TagPowerDBm is still meaningful).
func (s *Simulator) Observe(q Query) (Observation, bool) {
	ls := s.link(q)
	obs := Observation{TagPowerDBm: ls.tagPower}
	margin := ls.tagPower - q.Tag.Model.SensitivityDBm
	if margin <= 0 {
		return obs, false
	}
	if s.rng.Float64() >= readProbability(margin) {
		return obs, false
	}
	return s.measure(q, ls), true
}

// Powered reports whether the tag chip wakes up for this query. It is
// deterministic (no noise draw) — the Gen2 MAC uses it as the
// participation predicate, with slot contention handled by the MAC itself.
func (s *Simulator) Powered(q Query) bool {
	return s.link(q).tagPower > q.Tag.Model.SensitivityDBm
}

// ObserveSingulated produces the measurement for a read whose singulation
// was already decided by the MAC layer: the probabilistic read gate is
// skipped, only the power threshold applies.
func (s *Simulator) ObserveSingulated(q Query) (Observation, bool) {
	ls := s.link(q)
	if ls.tagPower <= q.Tag.Model.SensitivityDBm {
		return Observation{TagPowerDBm: ls.tagPower}, false
	}
	return s.measure(q, ls), true
}

// readProbability maps link margin (dB above tag sensitivity) to the
// probability that one inventory attempt yields a decoded read. It saturates
// at 0.95: even a hot link occasionally loses a slot to collisions.
func readProbability(marginDB float64) float64 {
	if marginDB <= 0 {
		return 0
	}
	p := 0.15 + 0.8*(marginDB/15)
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// IdealPhase returns the noise-free wrapped phase for a query, including
// diversity and orientation terms. Experiments use it as ground truth.
func (s *Simulator) IdealPhase(q Query) float64 {
	lambda := Wavelength(q.FrequencyHz)
	h := s.oneWay(q.Antenna.Position, q.TagPos, lambda)
	rho := orientationTo(q)
	return mathx.WrapPhase(-2*cmplx.Phase(h) +
		q.Tag.Diversity + q.Antenna.Diversity +
		s.cfg.OrientationEffect*q.Tag.OrientationOffset(rho))
}

// GeometricPhase returns the pure Eqn. 1 phase (4π·d/λ wrapped) between two
// points with no hardware terms and no multipath, for analytical checks.
func GeometricPhase(a, b geom.Vec3, freqHz float64) float64 {
	lambda := Wavelength(freqHz)
	return mathx.WrapPhase(4 * math.Pi * a.DistanceTo(b) / lambda)
}
