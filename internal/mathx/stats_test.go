package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStdRMS(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Std(xs); !almostEqual(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := RMS([]float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) || !math.IsNaN(RMS(nil)) {
		t.Error("empty slices should give NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotSortInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input reordered: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || !almostEqual(s.Std, 2, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{3, 1, 2})
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].Value != 1 || !almostEqual(cdf[0].Prob, 1.0/3, 1e-12) {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[2].Value != 3 || cdf[2].Prob != 1 {
		t.Errorf("last point = %+v", cdf[2])
	}
	if EmpiricalCDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	cdf := EmpiricalCDF([]float64{1, 2, 3, 4})
	tests := []struct{ v, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := CDFAt(cdf, tt.v); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CDFAt(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		cdf := EmpiricalCDF(xs)
		// Monotone in both coordinates, ends at probability 1.
		if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) &&
			!sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value <= cdf[j].Value }) {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Prob < cdf[i-1].Prob {
				return false
			}
		}
		return cdf[len(cdf)-1].Prob == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("n=1 Linspace = %v", got)
	}
}
