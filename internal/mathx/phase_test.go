package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWrapPhase(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-0.5, TwoPi - 0.5},
		{7, 7 - TwoPi},
		{-TwoPi - 1, TwoPi - 1},
	}
	for _, tt := range tests {
		if got := WrapPhase(tt.in); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("WrapPhase(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapPhaseRange(t *testing.T) {
	f := func(p float64) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > 1e12 {
			return true
		}
		w := WrapPhase(p)
		return w >= 0 && w < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnwrapReversesWrapping(t *testing.T) {
	// Build a smooth ramp, wrap it, unwrap it, and compare up to a constant.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 200
		truth := make([]float64, n)
		wrapped := make([]float64, n)
		truth[0] = rng.Float64() * TwoPi
		wrapped[0] = WrapPhase(truth[0])
		for i := 1; i < n; i++ {
			// Steps strictly below π so unwrapping is well-posed.
			truth[i] = truth[i-1] + (rng.Float64()-0.5)*2.5
			wrapped[i] = WrapPhase(truth[i])
		}
		un := Unwrap(wrapped)
		offset := un[0] - truth[0]
		for i := range truth {
			if !almostEqual(un[i]-truth[i], offset, 1e-9) {
				t.Fatalf("trial %d sample %d: unwrapped %v, truth %v, offset %v",
					trial, i, un[i], truth[i], offset)
			}
		}
	}
}

func TestUnwrapEdgeCases(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Errorf("Unwrap(nil) = %v, want empty", got)
	}
	if got := Unwrap([]float64{1.5}); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("Unwrap single = %v", got)
	}
	// Exactly the paper's rule: a drop of more than π adds 2π onward.
	in := []float64{6.0, 0.2, 0.4}
	got := Unwrap(in)
	want := []float64{6.0, 0.2 + TwoPi, 0.4 + TwoPi}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Unwrap[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnwrapDoesNotModifyInput(t *testing.T) {
	in := []float64{6.0, 0.2, 0.4}
	Unwrap(in)
	if in[1] != 0.2 {
		t.Errorf("input modified: %v", in)
	}
}

func TestCircularMean(t *testing.T) {
	mean, r := CircularMean([]float64{0.1, TwoPi - 0.1})
	if !almostEqual(mean, 0, 1e-9) && !almostEqual(mean, TwoPi, 1e-9) {
		t.Errorf("mean across wrap = %v, want ≈0", mean)
	}
	if r < 0.99 {
		t.Errorf("resultant = %v, want ≈1", r)
	}
	// Antipodal angles cancel.
	_, r = CircularMean([]float64{0, math.Pi})
	if r > 1e-9 {
		t.Errorf("antipodal resultant = %v, want 0", r)
	}
	if _, r := CircularMean(nil); r != 0 {
		t.Errorf("empty resultant = %v, want 0", r)
	}
}

func TestCircularStdMatchesLinearForSmallSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const sigma = 0.1
	angles := make([]float64, 20000)
	for i := range angles {
		angles[i] = WrapPhase(1 + rng.NormFloat64()*sigma)
	}
	got := CircularStd(angles)
	if math.Abs(got-sigma) > 0.01 {
		t.Errorf("CircularStd = %v, want ≈%v", got, sigma)
	}
}

func TestPhaseRMSD(t *testing.T) {
	a := []float64{0.1, 1.0, 6.2}
	b := []float64{0.1, 1.0, 6.2}
	if got := PhaseRMSD(a, b); got != 0 {
		t.Errorf("identical RMSD = %v, want 0", got)
	}
	// Differences evaluated on the circle: 6.2 vs 0.1 differs by ≈0.18, not 6.1.
	c := []float64{6.2, 1.0, 0.1}
	got := PhaseRMSD([]float64{0.1, 1.0, 6.2}, c)
	if got > 0.2 {
		t.Errorf("wrapped RMSD = %v, want small", got)
	}
	if !math.IsNaN(PhaseRMSD(a, []float64{1})) {
		t.Error("mismatched lengths should give NaN")
	}
	if !math.IsNaN(PhaseRMSD(nil, nil)) {
		t.Error("empty should give NaN")
	}
}

func TestGaussPDF(t *testing.T) {
	peak := GaussPDF(0, 0, 1)
	if !almostEqual(peak, 1/math.Sqrt(TwoPi), 1e-12) {
		t.Errorf("standard normal peak = %v", peak)
	}
	if GaussPDF(1, 0, 1) >= peak {
		t.Error("density at 1σ should be below the peak")
	}
	if !almostEqual(GaussPDF(3, 3, 0.5), 1/(0.5*math.Sqrt(TwoPi)), 1e-12) {
		t.Error("shifted/scaled peak wrong")
	}
	if !math.IsNaN(GaussPDF(0, 0, 0)) {
		t.Error("sigma=0 should give NaN")
	}
}

func TestGaussPDFSymmetry(t *testing.T) {
	f := func(x, mu float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(mu) > 1e6 {
			return true
		}
		return almostEqual(GaussPDF(mu+x, mu, 1.3), GaussPDF(mu-x, mu, 1.3), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
