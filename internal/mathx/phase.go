// Package mathx provides the numerical building blocks Tagspin needs on top
// of the standard library: phase wrapping and unwrapping, circular
// statistics, Gaussian densities, dense linear least squares, Fourier-series
// fitting, and summary statistics / empirical CDFs.
package mathx

import "math"

// TwoPi is 2π, the period of RFID phase reports.
const TwoPi = 2 * math.Pi

// WrapPhase maps a phase to the reader-report range [0, 2π).
func WrapPhase(p float64) float64 {
	p = math.Mod(p, TwoPi)
	if p < 0 {
		p += TwoPi
	}
	return p
}

// WrapToPi maps a phase difference to (-π, π].
func WrapToPi(p float64) float64 {
	p = math.Mod(p+math.Pi, TwoPi)
	if p <= 0 {
		p += TwoPi
	}
	return p - math.Pi
}

// Unwrap removes the mod-2π discontinuities of a wrapped phase sequence,
// implementing the smoothing rule of §III-B: whenever a step between
// consecutive samples exceeds π in magnitude, a ±2π correction is applied to
// the remainder of the sequence. The input is not modified.
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	offset := 0.0
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		switch {
		case d > math.Pi:
			offset -= TwoPi
		case d < -math.Pi:
			offset += TwoPi
		}
		out[i] = phases[i] + offset
	}
	return out
}

// CircularMean returns the mean direction of a set of angles, in [0, 2π),
// and the resultant length R in [0, 1]. R near 1 means the angles are
// tightly concentrated; R near 0 means they are spread out (the mean is then
// meaningless).
func CircularMean(angles []float64) (mean, resultant float64) {
	if len(angles) == 0 {
		return 0, 0
	}
	var s, c float64
	for _, a := range angles {
		s += math.Sin(a)
		c += math.Cos(a)
	}
	n := float64(len(angles))
	mean = math.Atan2(s/n, c/n)
	if mean < 0 {
		mean += TwoPi
	}
	return mean, math.Hypot(s/n, c/n)
}

// CircularStd returns the circular standard deviation sqrt(-2 ln R) of a set
// of angles. It is ≈ the linear standard deviation for tightly concentrated
// angles and grows without bound as the angles spread.
func CircularStd(angles []float64) float64 {
	_, r := CircularMean(angles)
	if r <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(-2 * math.Log(r))
}

// PhaseRMSD returns the root-mean-square wrapped difference between two
// equal-length phase sequences. It is the residual metric used by the
// calibration experiments (F4).
func PhaseRMSD(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range a {
		d := WrapToPi(a[i] - b[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}

// GaussPDF evaluates the probability density of N(mu, sigma²) at x. It is
// the weight kernel of the enhanced power profile R(φ) (Definition 4.1).
func GaussPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	d := (x - mu) / sigma
	return math.Exp(-d*d/2) / (sigma * math.Sqrt(TwoPi))
}
