package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports that a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular system")

// SolveLinear solves the square system a·x = b in place by Gaussian
// elimination with partial pivoting. a and b are consumed (overwritten).
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system shape %dx? rhs %d", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for k := row + 1; k < n; k++ {
			sum -= a[row][k] * x[k]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}

// LeastSquares solves min ‖design·x − y‖² via the normal equations
// designᵀ·design·x = designᵀ·y. design has one row per observation and one
// column per coefficient. It requires at least as many observations as
// coefficients.
func LeastSquares(design [][]float64, y []float64) ([]float64, error) {
	m := len(design)
	if m == 0 || len(y) != m {
		return nil, fmt.Errorf("mathx: design has %d rows, rhs has %d", m, len(y))
	}
	n := len(design[0])
	if m < n {
		return nil, fmt.Errorf("mathx: underdetermined: %d observations for %d coefficients", m, n)
	}
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	atb := make([]float64, n)
	for r := 0; r < m; r++ {
		row := design[r]
		if len(row) != n {
			return nil, fmt.Errorf("mathx: design row %d has %d columns, want %d", r, len(row), n)
		}
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * y[r]
		}
	}
	for i := 0; i < n; i++ { // mirror the upper triangle
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	return SolveLinear(ata, atb)
}
