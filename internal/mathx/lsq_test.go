package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs length mismatch should error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should error")
	}
}

func TestSolveLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = rng.NormFloat64()
				orig[i][j] = a[i][j]
			}
			a[i][i] += float64(n) + 2 // keep well-conditioned
			orig[i][i] = a[i][i]
			b[i] = rng.NormFloat64()
			origB[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var got float64
			for j := 0; j < n; j++ {
				got += orig[i][j] * x[j]
			}
			if !almostEqual(got, origB[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 3 + 2x fits exactly; LS must recover the coefficients.
	design := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(coef[0], 3, 1e-9) || !almostEqual(coef[1], 2, 1e-9) {
		t.Errorf("coef = %v, want [3 2]", coef)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line; the fit should land near the generating coefficients.
	rng := rand.New(rand.NewSource(2))
	var design [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		design = append(design, []float64{1, x})
		y = append(y, -1.5+0.75*x+rng.NormFloat64()*0.01)
	}
	coef, err := LeastSquares(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]+1.5) > 0.01 || math.Abs(coef[1]-0.75) > 0.01 {
		t.Errorf("coef = %v, want ≈[-1.5 0.75]", coef)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty design should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2, 3}}, []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged design should error")
	}
	// Collinear columns make the normal equations singular.
	design := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(design, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear err = %v, want ErrSingular", err)
	}
}

func TestFitFourierRecoversSeries(t *testing.T) {
	truth := FourierSeries{A0: 0.4, A: []float64{0.3, -0.1}, B: []float64{-0.2, 0.05}}
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := TwoPi * float64(i) / 100
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	got, err := FitFourier(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.A0, truth.A0, 1e-9) {
		t.Errorf("A0 = %v, want %v", got.A0, truth.A0)
	}
	for k := 0; k < 2; k++ {
		if !almostEqual(got.A[k], truth.A[k], 1e-9) || !almostEqual(got.B[k], truth.B[k], 1e-9) {
			t.Errorf("harmonic %d = (%v, %v), want (%v, %v)", k+1, got.A[k], got.B[k], truth.A[k], truth.B[k])
		}
	}
}

func TestFitFourierHigherOrderCapturesLower(t *testing.T) {
	// Fitting order 4 to an order-2 signal must leave harmonics 3,4 ≈ 0.
	truth := FourierSeries{A0: 0, A: []float64{0.3, 0.1}, B: []float64{0, 0}}
	var xs, ys []float64
	for i := 0; i < 180; i++ {
		x := TwoPi * float64(i) / 180
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	got, err := FitFourier(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k < 4; k++ {
		if math.Abs(got.A[k]) > 1e-9 || math.Abs(got.B[k]) > 1e-9 {
			t.Errorf("spurious harmonic %d: (%v, %v)", k+1, got.A[k], got.B[k])
		}
	}
}

func TestFitFourierNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := FourierSeries{A0: 0.1, A: []float64{0.35}, B: []float64{-0.2}}
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * TwoPi
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x)+rng.NormFloat64()*0.05)
	}
	got, err := FitFourier(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A[0]-0.35) > 0.01 || math.Abs(got.B[0]+0.2) > 0.01 {
		t.Errorf("noisy fit = %+v", got)
	}
}

func TestFitFourierErrors(t *testing.T) {
	if _, err := FitFourier([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("order 0 should error")
	}
	if _, err := FitFourier([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitFourier([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("too few samples should error")
	}
}

func TestFourierPeakToPeak(t *testing.T) {
	fs := FourierSeries{A0: 5, A: []float64{0.35}, B: []float64{0}}
	if got := fs.PeakToPeak(); math.Abs(got-0.7) > 1e-3 {
		t.Errorf("PeakToPeak = %v, want 0.7", got)
	}
}
