package mathx

import (
	"math"
	"testing"
)

// TestFastSincosErrorBound is the exhaustive-sweep property test backing the
// documented contract: over a dense sweep of the operating range (and well
// beyond it), |FastSincos − math.Sincos| never exceeds FastSincosMaxErr.
func TestFastSincosErrorBound(t *testing.T) {
	sweep := func(lo, hi float64, n int) (maxErr float64) {
		step := (hi - lo) / float64(n)
		for i := 0; i <= n; i++ {
			x := lo + float64(i)*step
			fs, fc := FastSincos(x)
			es, ec := math.Sincos(x)
			if d := math.Abs(fs - es); d > maxErr {
				maxErr = d
			}
			if d := math.Abs(fc - ec); d > maxErr {
				maxErr = d
			}
		}
		return maxErr
	}

	// Operating range of the spectrum engine: phases stay within tens of
	// radians. 4M points ≈ every 2.5e-5 rad.
	if err := sweep(-50, 50, 4_000_000); err > FastSincosMaxErr {
		t.Errorf("max error %.3g over [-50, 50], want ≤ %.1g", err, FastSincosMaxErr)
	}
	// Full fast-reduction range, coarser: the Cody–Waite reduction must
	// hold the bound all the way to the math.Sincos fallback threshold.
	if err := sweep(-FastSincosMaxArg, FastSincosMaxArg, 2_000_000); err > FastSincosMaxErr {
		t.Errorf("max error %.3g over ±2^20, want ≤ %.1g", err, FastSincosMaxErr)
	}
	// Quadrant boundaries are where reduction sign/swap bugs live.
	for k := -1000; k <= 1000; k++ {
		for _, eps := range []float64{0, 1e-9, -1e-9, 1e-3, -1e-3} {
			x := float64(k)*math.Pi/2 + eps
			fs, fc := FastSincos(x)
			es, ec := math.Sincos(x)
			if math.Abs(fs-es) > FastSincosMaxErr || math.Abs(fc-ec) > FastSincosMaxErr {
				t.Fatalf("quadrant boundary x=%v: fast (%v, %v) vs exact (%v, %v)", x, fs, fc, es, ec)
			}
		}
	}
}

// TestFastSincosFallback pins the out-of-range and non-finite behavior: the
// function must degrade to math.Sincos, never to garbage.
func TestFastSincosFallback(t *testing.T) {
	for _, x := range []float64{
		FastSincosMaxArg * 2, -FastSincosMaxArg * 2, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(),
	} {
		fs, fc := FastSincos(x)
		es, ec := math.Sincos(x)
		if math.IsNaN(es) {
			if !math.IsNaN(fs) || !math.IsNaN(fc) {
				t.Errorf("FastSincos(%v) = (%v, %v), want NaNs", x, fs, fc)
			}
			continue
		}
		if fs != es || fc != ec {
			t.Errorf("FastSincos(%v) = (%v, %v), want math.Sincos's (%v, %v)", x, fs, fc, es, ec)
		}
	}
}

// TestFastSincosIdentity checks sin²+cos² ≈ 1 across random-ish points — a
// cheap smoke test that the polynomial pair stays mutually consistent.
func TestFastSincosIdentity(t *testing.T) {
	for i := 0; i < 100_000; i++ {
		x := -40 + 80*float64(i)/100_000*1.000003
		s, c := FastSincos(x)
		if d := math.Abs(s*s + c*c - 1); d > 3*FastSincosMaxErr {
			t.Fatalf("sin²+cos² at %v off by %.3g", x, d)
		}
	}
}

var sincosSink float64

func BenchmarkMathSincos(b *testing.B) {
	x := 0.0
	for i := 0; i < b.N; i++ {
		s, c := math.Sincos(x)
		sincosSink = s + c
		x += 0.7
		if x > 40 {
			x -= 80
		}
	}
}

func BenchmarkFastSincos(b *testing.B) {
	x := 0.0
	for i := 0; i < b.N; i++ {
		s, c := FastSincos(x)
		sincosSink = s + c
		x += 0.7
		if x > 40 {
			x -= 80
		}
	}
}
