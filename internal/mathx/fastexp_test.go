package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastExpNegErrorBound sweeps the fast-path domain and verifies the
// documented relative error contract against math.Exp.
func TestFastExpNegErrorBound(t *testing.T) {
	check := func(x float64) {
		got := FastExpNeg(x)
		want := math.Exp(-x)
		if x >= FastExpNegCutoff {
			if got != 0 {
				t.Fatalf("FastExpNeg(%v) = %v, want exact 0 past cutoff", x, got)
			}
			if want > 1e-18 {
				t.Fatalf("cutoff too aggressive: e^(-%v) = %v", x, want)
			}
			return
		}
		rel := math.Abs(got-want) / want
		if rel > FastExpNegMaxErr {
			t.Fatalf("FastExpNeg(%v) = %v, want %v (rel err %.3g > %.3g)",
				x, got, want, rel, FastExpNegMaxErr)
		}
	}

	// Dense sweep across the whole fast-path range, including the cutoff
	// boundary and the reduction seams at multiples of ln2/2.
	for x := 0.0; x < FastExpNegCutoff+2; x += 1e-4 {
		check(x)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		check(rng.Float64() * FastExpNegCutoff)
	}
	// Exact endpoints and denormal-adjacent small arguments.
	for _, x := range []float64{0, math.SmallestNonzeroFloat64, 1e-300, 1e-16,
		math.Ln2 / 2, math.Ln2, 41.999999, FastExpNegCutoff} {
		check(x)
	}
}

// TestFastExpNegCoarseErrorBound sweeps the coarse kernel's table domain
// and verifies its relative error contract against math.Exp, including the
// last index before the cutoff where the guard entry feeds the interpolation.
func TestFastExpNegCoarseErrorBound(t *testing.T) {
	check := func(x float64) {
		got := FastExpNegCoarseCore(x)
		want := math.Exp(-x)
		rel := math.Abs(got-want) / want
		if rel > FastExpNegCoarseMaxErr {
			t.Fatalf("FastExpNegCoarseCore(%v) = %v, want %v (rel err %.3g > %.3g)",
				x, got, want, rel, FastExpNegCoarseMaxErr)
		}
	}
	for x := 0.0; x < FastExpNegCoarseCutoff; x += 1e-5 {
		check(x)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200000; i++ {
		check(rng.Float64() * FastExpNegCoarseCutoff)
	}
	for _, x := range []float64{0, math.SmallestNonzeroFloat64, 1e-300, 1e-16,
		math.Ln2 / 2, math.Ln2, 23.999999} {
		check(x)
	}
}

// TestFastExpNegFallback pins the out-of-domain behavior: negative, NaN and
// ±Inf arguments must defer to math.Exp semantics.
func TestFastExpNegFallback(t *testing.T) {
	for _, x := range []float64{-1, -1e-9, -300} {
		if got, want := FastExpNeg(x), math.Exp(-x); got != want {
			t.Fatalf("FastExpNeg(%v) = %v, want math.Exp fallback %v", x, got, want)
		}
	}
	if got := FastExpNeg(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("FastExpNeg(NaN) = %v, want NaN", got)
	}
	if got := FastExpNeg(math.Inf(1)); got != 0 {
		t.Fatalf("FastExpNeg(+Inf) = %v, want 0", got)
	}
	if got := FastExpNeg(math.Inf(-1)); !math.IsInf(got, 1) {
		t.Fatalf("FastExpNeg(-Inf) = %v, want +Inf", got)
	}
}

var benchSink float64

func BenchmarkFastExpNeg(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += FastExpNeg(float64(i&63) * 0.25)
	}
	benchSink = sink
}

func BenchmarkMathExpNeg(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Exp(-float64(i&63) * 0.25)
	}
	benchSink = sink
}
