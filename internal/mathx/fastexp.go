package mathx

import "math"

// FastExpNeg computes e^(-x) for x ≥ 0 with a table-free range-reduced
// polynomial kernel. It exists for the spectrum engine's all-cells R
// synthesis, where one Gaussian weight per snapshot per candidate dominates
// the second pass and the 0.5-ulp accuracy of math.Exp buys nothing.
//
// Numerical contract (verified by TestFastExpNegErrorBound):
//
//   - For 0 ≤ x < FastExpNegCutoff the relative error is at most
//     FastExpNegMaxErr (≈5e-10 by construction, < 1e-8 with margin). The
//     bound is the tail of the degree-7 Taylor kernel at ln2/2,
//     (ln2/2)⁸/8! ≈ 5.2e-10; the two-part Cody–Waite reduction contributes
//     ≲1e-12 on this range.
//   - For x ≥ FastExpNegCutoff it returns exactly 0. At the cutoff
//     e^(-x) < 6e-19, far below the synthesis slack that callers budget
//     for, so the truncation is absorbed by their documented error bound.
//   - Negative, NaN, and ±Inf arguments fall back to math.Exp(-x), so
//     results are always finite-safe and never worse than the bound.
//
// The kernel reduces x by multiples of ln 2 (round-to-nearest, two-part
// Cody–Waite constant) into r ∈ [-ln2/2, ln2/2], evaluates the Taylor
// polynomial for e^(-r), and applies the 2^(-k) scale by constructing the
// float64 exponent directly — no division, no lookup tables.
func FastExpNeg(x float64) float64 {
	if !(x >= 0) || x >= FastExpNegCutoff {
		if x >= FastExpNegCutoff {
			return 0
		}
		return math.Exp(-x) // negative, NaN
	}
	return FastExpNegCore(x)
}

// FastExpNegCore is FastExpNeg's branch-free kernel: identical results for
// 0 ≤ x < FastExpNegCutoff, undefined outside that range. It is split out
// so hot loops that already guard the cutoff themselves (the spectrum
// all-cells weighting pass) get the kernel inlined instead of paying a
// call per term — which is also why the body is written at minimum node
// count (alternating-sign Taylor constants instead of a negated argument,
// all-uint64 exponent bias): it must stay under the compiler's inlining
// budget.
func FastExpNegCore(x float64) float64 {
	// k = round(x·log2e); e^(-x) = 2^(-k) · e^(-r), r = x − k·ln2. With
	// x < 42 the integer k stays below 64, so the k·ln2Hi product is exact.
	t := x*log2E + roundBias
	kf := t - roundBias
	// Single-constant reduction: with k ≤ 61 the k·ln2 rounding error in r
	// stays under 7e-15 — three orders below the 1e-8 contract — so the
	// classic two-part Cody–Waite split would buy accuracy nothing and cost
	// the two nodes that keep this kernel inlinable.
	r := x - kf*ln2

	// e^(-r), r ∈ [-ln2/2, ln2/2]: Taylor to r⁷ in alternating-sign form,
	// tail ≤ (ln2/2)⁸/8! ≈ 5.2e-10.
	p := 1 + r*(expD1+r*(expD2+r*(expD3+r*(expD4+r*(expD5+r*(expD6+r*expD7))))))
	// Scale by 2^(-k): bias the exponent field directly. roundBias's own low
	// mantissa bits are zero, so Float64bits(t)<<52 is exactly k<<52 (x ≥ 0
	// ⇒ 0 ≤ k ≤ 61 — the shift discards everything above the mantissa), and
	// the 2^(-k) bias needs no mask or extract. k ≤ 61 keeps the result
	// normal (exponent ≥ 1023−61−1 after the kernel's ±1/√2 swing).
	return p * math.Float64frombits(1023<<52-math.Float64bits(t)<<52)
}

// FastExpNegCoarseCore is the shortlist-grade sibling of FastExpNegCore:
// a linear interpolation into a precomputed e^(-x) table instead of a
// range-reduced polynomial, trading accuracy (relative error ≤
// FastExpNegCoarseMaxErr, the Δx²/8 interpolation bound — uniform in
// relative terms because f” of e^(-x) shrinks with f itself) for the
// latency of the polynomial's float↔int exponent-bias round trips. It
// exists for consumers whose own error budget is forgiving because an
// exact rescore follows (the spectrum R argmax shortlist): they only need
// the result accurate enough that the true winner stays inside a widened
// shortlist window. Narrower domain contract than FastExpNegCore: 0 ≤ x <
// FastExpNegCoarseCutoff, undefined outside — callers flush past the
// coarse cutoff anyway (e^(-24) ≈ 3.8e-11 is invisible at shortlist
// scale). The index mask is a no-op for in-domain x that hands the
// compiler the bounds facts for both table loads.
func FastExpNegCoarseCore(x float64) float64 {
	u := x * expTableScale
	i := int(u) & (expTableN - 1)
	f := u - float64(i)
	a := expTable[i]
	return a + f*(expTable[i+1]-a)
}

const (
	expTableN     = 2048
	expTableScale = expTableN / FastExpNegCoarseCutoff
)

// expTable[i] = e^(-i/expTableScale), one guard entry past the end so the
// i+1 interpolation load needs no branch at the last in-domain index.
var expTable = func() (t [expTableN + 1]float64) {
	for i := range t {
		t[i] = math.Exp(-float64(i) / expTableScale)
	}
	return t
}()

const (
	// FastExpNegMaxErr is the guaranteed relative error bound of
	// FastExpNeg on 0 ≤ x < FastExpNegCutoff.
	FastExpNegMaxErr = 1e-8
	// FastExpNegCoarseMaxErr is the relative error bound of
	// FastExpNegCoarseCore on its 0 ≤ x < FastExpNegCoarseCutoff domain:
	// the interpolation bound Δx²/8 ≈ 1.7e-5 (verified by the sweep in
	// TestFastExpNegCoarseErrorBound); 2e-5 adds margin.
	FastExpNegCoarseMaxErr = 2e-5
	// FastExpNegCoarseCutoff is the end of the coarse kernel's table
	// domain. Shortlist-grade consumers flush terms past it: e^(-24) ≈
	// 3.8e-11, invisible against their widened shortlist windows.
	FastExpNegCoarseCutoff = 24.0
	// FastExpNegCutoff is where FastExpNeg flushes to zero. e^(-42) ≈
	// 5.7e-19: Gaussian residual weights this small are invisible next to
	// the ≥1e-6 synthesis slack budgets in internal/spectrum.
	FastExpNegCutoff = 42.0

	log2E = math.Log2E

	ln2 = math.Ln2

	// Alternating-sign Taylor coefficients of e^(-r) in r directly
	// ((-1)^n/n!): folding the sign into the constants spares the kernel a
	// negation, and IEEE negation being exact keeps the Horner chain
	// bit-identical to the 1/n! form in -r.
	expD1 = -1.0
	expD2 = 1.0 / 2
	expD3 = -1.0 / 6
	expD4 = 1.0 / 24
	expD5 = -1.0 / 120
	expD6 = 1.0 / 720
	expD7 = -1.0 / 5040
)
