package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation, or NaN for an empty slice.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// RMS returns the root mean square, or NaN for an empty slice.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics the evaluation section reports
// for an error-distance sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes a Summary of the samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Std: nan, Min: nan, Max: nan, Median: nan, P90: nan}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    xs[0],
		Max:    xs[0],
		Median: Percentile(xs, 50),
		P90:    Percentile(xs, 90),
	}
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// EmpiricalCDF returns the empirical CDF of the samples as a step-function
// sample: P(X ≤ Value) = Prob. The input is not modified.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Prob: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFAt evaluates an empirical CDF at value v.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	// Find the last point with Value <= v.
	idx := sort.Search(len(cdf), func(i int) bool { return cdf[i].Value > v })
	if idx == 0 {
		return 0
	}
	return cdf[idx-1].Prob
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
