package mathx

import "math"

// FastSincos computes (sin x, cos x) with a table-free range-reduced
// polynomial kernel. It exists for the spectrum engine's fast evaluation
// path, where one sincos per snapshot per candidate dominates grid scans
// and the full 0.5-ulp accuracy of math.Sincos buys nothing.
//
// Numerical contract (verified by TestFastSincosErrorBound):
//
//   - For |x| ≤ FastSincosMaxArg the absolute error of both results is at
//     most FastSincosMaxErr (2.5e-8 by construction, < 1e-7 with margin).
//     The bound is the tail of the degree-8 cosine polynomial at π/4,
//     (π/4)¹⁰/10! ≈ 2.45e-8; the degree-9 sine polynomial and the
//     three-part Cody–Waite reduction contribute ≲1e-9 on this range.
//   - Outside that range (and for NaN/±Inf) it falls back to math.Sincos,
//     so results are always finite-safe and never worse than the bound.
//
// The kernel reduces x by multiples of π/2 (round-to-nearest, three-part
// Cody–Waite constant) into r ∈ [-π/4, π/4], evaluates Taylor polynomials
// for sin r and cos r, and swaps/negates by reduction quadrant. No lookup
// tables: the working set is a handful of constants, so the kernel never
// pressures the cache that the snapshot terms want.
func FastSincos(x float64) (sin, cos float64) {
	if x < -FastSincosMaxArg || x > FastSincosMaxArg || x != x {
		return math.Sincos(x)
	}
	// k = round(x·2/π); r = x − k·π/2 with π/2 split into three parts so
	// the products are exact for |k| < 2^27 and the reduction error stays
	// below an ulp of r.
	t := x*twoOverPi + roundBias
	k := int64(math.Float64bits(t)) // low bits of t hold round(x·2/π) mod 2^52
	kf := t - roundBias
	r := x - kf*pio2Hi
	r -= kf * pio2Mid
	r -= kf * pio2Lo

	r2 := r * r
	// sin r, r ∈ [-π/4, π/4]: Taylor to r⁹, tail ≤ (π/4)¹¹/11! ≈ 1.6e-9.
	s := r * (1 + r2*(sinC3+r2*(sinC5+r2*(sinC7+r2*sinC9))))
	// cos r: Taylor to r⁸, tail ≤ (π/4)¹⁰/10! ≈ 2.45e-8.
	c := 1 + r2*(cosC2+r2*(cosC4+r2*(cosC6+r2*cosC8)))

	switch k & 3 {
	case 0:
		return s, c
	case 1:
		return c, -s
	case 2:
		return -s, -c
	default:
		return -c, s
	}
}

const (
	// FastSincosMaxErr is the guaranteed absolute error bound of
	// FastSincos on |x| ≤ FastSincosMaxArg.
	FastSincosMaxErr = 1e-7
	// FastSincosMaxArg bounds the fast reduction; beyond it FastSincos
	// delegates to math.Sincos. 2^20 keeps the k·π/2 Cody–Waite products
	// exact with a wide margin (the 26 significant bits of pio2Hi plus
	// the ≤21 bits of k stay under 53); spectrum arguments are tens of
	// radians at most.
	FastSincosMaxArg = 1 << 20

	twoOverPi = 2 / math.Pi
	// roundBias implements round-to-nearest via the float64 mantissa: for
	// |t| < 2^51, (t + 1.5·2^52) − 1.5·2^52 rounds t to the nearest
	// integer, and the integer sits in the low mantissa bits.
	roundBias = 1.5 / 0x1p-52

	// π/2 split into three parts (high bits exact in products with small
	// integers), standard Cody–Waite constants.
	pio2Hi  = 1.57079632673412561417e+00
	pio2Mid = 6.07710050650619224932e-11
	pio2Lo  = 2.02226624879595063154e-21

	sinC3 = -1.0 / 6
	sinC5 = 1.0 / 120
	sinC7 = -1.0 / 5040
	sinC9 = 1.0 / 362880

	cosC2 = -1.0 / 2
	cosC4 = 1.0 / 24
	cosC6 = -1.0 / 720
	cosC8 = 1.0 / 40320
)
