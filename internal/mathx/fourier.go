package mathx

import (
	"fmt"
	"math"
)

// FourierSeries is a truncated real Fourier series
//
//	f(x) = A0 + Σ_{k=1..K} (A[k-1]·cos(kx) + B[k-1]·sin(kx))
//
// over a 2π-periodic variable. Tagspin fits one to the phase-vs-orientation
// samples collected with the tag at the disk center (Observation 3.1) and
// subtracts it from operational phase measurements.
type FourierSeries struct {
	A0 float64
	A  []float64
	B  []float64
}

// Order returns the number of harmonics K of the series.
func (f FourierSeries) Order() int { return len(f.A) }

// Eval evaluates the series at x.
func (f FourierSeries) Eval(x float64) float64 {
	v := f.A0
	for k := range f.A {
		kx := float64(k+1) * x
		v += f.A[k]*math.Cos(kx) + f.B[k]*math.Sin(kx)
	}
	return v
}

// PeakToPeak estimates the peak-to-peak amplitude of the series by dense
// sampling over one period.
func (f FourierSeries) PeakToPeak() float64 {
	const samples = 720
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < samples; i++ {
		v := f.Eval(TwoPi * float64(i) / samples)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// FitFourier fits a Fourier series of the given order to samples (x[i],
// y[i]) by linear least squares. It needs at least 2·order+1 samples.
func FitFourier(x, y []float64, order int) (FourierSeries, error) {
	if order < 1 {
		return FourierSeries{}, fmt.Errorf("mathx: fourier order %d < 1", order)
	}
	if len(x) != len(y) {
		return FourierSeries{}, fmt.Errorf("mathx: %d x-samples vs %d y-samples", len(x), len(y))
	}
	cols := 2*order + 1
	if len(x) < cols {
		return FourierSeries{}, fmt.Errorf("mathx: need ≥%d samples for order %d, have %d", cols, order, len(x))
	}
	design := make([][]float64, len(x))
	for i, xi := range x {
		row := make([]float64, cols)
		row[0] = 1
		for k := 1; k <= order; k++ {
			row[2*k-1] = math.Cos(float64(k) * xi)
			row[2*k] = math.Sin(float64(k) * xi)
		}
		design[i] = row
	}
	coef, err := LeastSquares(design, y)
	if err != nil {
		return FourierSeries{}, fmt.Errorf("fit fourier: %w", err)
	}
	fs := FourierSeries{
		A0: coef[0],
		A:  make([]float64, order),
		B:  make([]float64, order),
	}
	for k := 1; k <= order; k++ {
		fs.A[k-1] = coef[2*k-1]
		fs.B[k-1] = coef[2*k]
	}
	return fs, nil
}
