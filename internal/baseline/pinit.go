package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/geom"
)

// PinIt adapts Wang & Katabi's PinIt (SIGCOMM'13) to reader localization.
// The original pins a tag by comparing its multipath/spatial profile —
// power received along a synthetic aperture — against reference tags'
// profiles using dynamic time warping, then averages the nearest
// references' positions. Here the "profile" of a candidate reader position
// is the vector of its RSSI readings over the reference-tag array ordered
// along the deployment (a spatial power profile); training records profiles
// on a position grid, and localization DTW-matches the measured profile and
// k-NN-averages the best grid positions. The DTW matching retains PinIt's
// robustness to local profile warps that plain Euclidean matching (LandMarc)
// lacks.
type PinIt struct {
	// Env is the shared deployment.
	Env *Environment
	// GridStep is the training-grid spacing; zero means 0.4 m.
	GridStep float64
	// K is the neighbour count; zero means 3.
	K int
	// Window is the DTW window in samples; zero means 3.
	Window int

	profiles []pinitProfile
}

// pinitProfile is one training entry.
type pinitProfile struct {
	pos     geom.Vec2
	profile []float64
}

var _ Method = (*PinIt)(nil)

// Name implements Method.
func (*PinIt) Name() string { return "PinIt" }

func (p *PinIt) gridStep() float64 {
	if p.GridStep <= 0 {
		return 0.4
	}
	return p.GridStep
}

func (p *PinIt) k() int {
	if p.K <= 0 {
		return 3
	}
	return p.K
}

func (p *PinIt) window() int {
	if p.Window <= 0 {
		return 3
	}
	return p.Window
}

// profileAt records the spatial power profile seen from pos. Unreadable
// reference tags contribute a floor value, which is itself a location
// signal (PinIt's "which references are in range" effect).
func (p *PinIt) profileAt(sim *channel.Simulator, pos geom.Vec2, freq float64) []float64 {
	const floorDBm = -95.0
	ant := antennaAt(geom.V3(pos.X, pos.Y, 0), p.Env.Room)
	out := make([]float64, len(p.Env.Refs))
	for i, ref := range p.Env.Refs {
		v, ok := measureRSSI(sim, ant, ref, freq, p.Env.reads())
		if !ok {
			v = floorDBm
		}
		out[i] = v
	}
	return out
}

// Train records reference profiles over the room grid.
func (p *PinIt) Train(rng *rand.Rand) error {
	if err := p.Env.Validate(); err != nil {
		return err
	}
	sim, err := channel.NewSimulator(p.Env.Channel, rng)
	if err != nil {
		return err
	}
	freq, err := p.Env.frequency()
	if err != nil {
		return err
	}
	p.profiles = p.profiles[:0]
	step := p.gridStep()
	for y := p.Env.Room.MinY; y <= p.Env.Room.MaxY+1e-9; y += step {
		for x := p.Env.Room.MinX; x <= p.Env.Room.MaxX+1e-9; x += step {
			pos := geom.V2(x, y)
			p.profiles = append(p.profiles, pinitProfile{
				pos:     pos,
				profile: p.profileAt(sim, pos, freq),
			})
		}
	}
	if len(p.profiles) < p.k() {
		return fmt.Errorf("pinit: only %d profiles for k=%d", len(p.profiles), p.k())
	}
	return nil
}

// Locate implements Method.
func (p *PinIt) Locate(ant antenna.Antenna, rng *rand.Rand) (geom.Vec2, error) {
	if len(p.profiles) == 0 {
		return geom.Vec2{}, ErrUntrained
	}
	sim, err := channel.NewSimulator(p.Env.Channel, rng)
	if err != nil {
		return geom.Vec2{}, err
	}
	freq, err := p.Env.frequency()
	if err != nil {
		return geom.Vec2{}, err
	}
	measured := p.profileAt(sim, ant.Position.XY(), freq)
	readable := 0
	for _, v := range measured {
		if v > -95 {
			readable++
		}
	}
	if readable < 3 {
		return geom.Vec2{}, fmt.Errorf("%w: %d readable", ErrNoSignal, readable)
	}
	type scored struct {
		d   float64
		pos geom.Vec2
	}
	all := make([]scored, 0, len(p.profiles))
	for _, prof := range p.profiles {
		all = append(all, scored{
			d:   DTW(measured, prof.profile, p.window()),
			pos: prof.pos,
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	k := p.k()
	if k > len(all) {
		k = len(all)
	}
	var est geom.Vec2
	var wSum float64
	for _, s := range all[:k] {
		w := 1 / (s.d + 1e-9)
		if math.IsInf(w, 0) {
			return s.pos, nil
		}
		est = est.Add(s.pos.Scale(w))
		wSum += w
	}
	return est.Scale(1 / wSum), nil
}
