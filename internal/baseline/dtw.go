package baseline

import "math"

// DTW computes the dynamic-time-warping distance between two sequences with
// a Sakoe-Chiba window. PinIt uses DTW to compare multipath/spatial profiles
// that are similar in shape but locally stretched. window ≤ 0 means
// unconstrained.
func DTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = maxInt(n, m)
	}
	// The window must be at least |n-m| to reach the corner.
	if d := n - m; d < 0 {
		if window < -d {
			window = -d
		}
	} else if window < d {
		window = d
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - window
		if lo < 1 {
			lo = 1
		}
		hi := i + window
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
