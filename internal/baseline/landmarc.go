package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/geom"
)

// LandMarc adapts Ni et al.'s LANDMARC (RSSI nearest-neighbours over
// reference tags) to the reader-localization problem: during training a
// probe antenna visits a grid of candidate positions and records the RSSI
// vector of all reference tags (the fingerprint database); online, the
// target reader's measured RSSI vector is matched against the database and
// the position is the 1/d²-weighted average of the k nearest fingerprints —
// LANDMARC's exact weighting rule, with signal-space distance playing the
// role of the original's tag-to-tracking-tag distance.
type LandMarc struct {
	// Env is the shared deployment.
	Env *Environment
	// GridStep is the training-grid spacing in meters; zero means 0.5.
	GridStep float64
	// K is the neighbour count; zero means 4 (the LANDMARC paper's k).
	K int

	fingerprints []fingerprint
}

// fingerprint is one training sample: a candidate position and the RSSI of
// every reference tag there (NaN when unreadable).
type fingerprint struct {
	pos  geom.Vec2
	rssi []float64
}

var _ Method = (*LandMarc)(nil)

// Name implements Method.
func (*LandMarc) Name() string { return "LandMarc" }

// gridStep returns the effective training spacing.
func (l *LandMarc) gridStep() float64 {
	if l.GridStep <= 0 {
		return 0.5
	}
	return l.GridStep
}

// k returns the effective neighbour count.
func (l *LandMarc) k() int {
	if l.K <= 0 {
		return 4
	}
	return l.K
}

// Train builds the fingerprint database.
func (l *LandMarc) Train(rng *rand.Rand) error {
	if err := l.Env.Validate(); err != nil {
		return err
	}
	sim, err := channel.NewSimulator(l.Env.Channel, rng)
	if err != nil {
		return err
	}
	freq, err := l.Env.frequency()
	if err != nil {
		return err
	}
	l.fingerprints = l.fingerprints[:0]
	step := l.gridStep()
	for y := l.Env.Room.MinY; y <= l.Env.Room.MaxY+1e-9; y += step {
		for x := l.Env.Room.MinX; x <= l.Env.Room.MaxX+1e-9; x += step {
			pos := geom.V2(x, y)
			fp := fingerprint{pos: pos, rssi: make([]float64, len(l.Env.Refs))}
			ant := antennaAt(geom.V3(x, y, 0), l.Env.Room)
			for i, ref := range l.Env.Refs {
				v, ok := measureRSSI(sim, ant, ref, freq, l.Env.reads())
				if !ok {
					v = math.NaN()
				}
				fp.rssi[i] = v
			}
			l.fingerprints = append(l.fingerprints, fp)
		}
	}
	if len(l.fingerprints) < l.k() {
		return fmt.Errorf("landmarc: only %d fingerprints for k=%d", len(l.fingerprints), l.k())
	}
	return nil
}

// signalDistance is the Euclidean distance in dB space over the tags both
// vectors observed; unreadable-in-one-only tags add a fixed penalty so "tag
// visible here but not there" still separates fingerprints.
func signalDistance(a, b []float64) float64 {
	const missPenaltyDB = 20.0
	var sum float64
	var dims int
	for i := range a {
		aNaN, bNaN := math.IsNaN(a[i]), math.IsNaN(b[i])
		switch {
		case aNaN && bNaN:
			continue
		case aNaN || bNaN:
			sum += missPenaltyDB * missPenaltyDB
			dims++
		default:
			d := a[i] - b[i]
			sum += d * d
			dims++
		}
	}
	if dims == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(dims))
}

// Locate implements Method.
func (l *LandMarc) Locate(ant antenna.Antenna, rng *rand.Rand) (geom.Vec2, error) {
	if len(l.fingerprints) == 0 {
		return geom.Vec2{}, ErrUntrained
	}
	sim, err := channel.NewSimulator(l.Env.Channel, rng)
	if err != nil {
		return geom.Vec2{}, err
	}
	freq, err := l.Env.frequency()
	if err != nil {
		return geom.Vec2{}, err
	}
	measured := make([]float64, len(l.Env.Refs))
	readable := 0
	for i, ref := range l.Env.Refs {
		v, ok := measureRSSI(sim, ant, ref, freq, l.Env.reads())
		if !ok {
			v = math.NaN()
		} else {
			readable++
		}
		measured[i] = v
	}
	if readable < 3 {
		return geom.Vec2{}, fmt.Errorf("%w: %d readable", ErrNoSignal, readable)
	}
	// k nearest fingerprints in signal space.
	type scored struct {
		d   float64
		pos geom.Vec2
	}
	best := make([]scored, 0, l.k()+1)
	for _, fp := range l.fingerprints {
		d := signalDistance(measured, fp.rssi)
		if math.IsInf(d, 1) {
			continue
		}
		best = append(best, scored{d: d, pos: fp.pos})
		// Keep the slice small: insertion sort capped at k.
		for i := len(best) - 1; i > 0 && best[i].d < best[i-1].d; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > l.k() {
			best = best[:l.k()]
		}
	}
	if len(best) == 0 {
		return geom.Vec2{}, ErrNoSignal
	}
	// LANDMARC weighting: w_i = (1/d_i²) / Σ(1/d_j²).
	var wSum float64
	var est geom.Vec2
	for _, s := range best {
		w := 1 / (s.d*s.d + 1e-9)
		est = est.Add(s.pos.Scale(w))
		wSum += w
	}
	return est.Scale(1 / wSum), nil
}
