// Package baseline reimplements the four comparison systems of §VII
// (LandMarc, AntLoc, PinIt, BackPos) as reader-localization methods run
// against the same simulated radio world as Tagspin. The paper compares
// against those systems' published numbers; here each algorithm actually
// runs, so the evaluation measures "who wins by what factor" rather than
// quoting it.
//
// All four share a deployment of static reference tags at known positions
// and a training (offline) phase, mirroring each original system's
// calibration requirements:
//
//   - LandMarc: RSSI fingerprint k-nearest-neighbours with 1/d² weighting.
//   - AntLoc: variable RF-attenuation ranging — sweep transmit power,
//     find each reference tag's wake-up threshold, invert the path-loss
//     model into ranges, and multilaterate.
//   - PinIt: spatial profile matching with dynamic time warping against
//     reference profiles recorded on a training grid.
//   - BackPos: phase-difference-of-arrival hyperbolic positioning over
//     reference-tag pairs with diversity calibrated out in training.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
)

// ErrUntrained reports Locate before Train.
var ErrUntrained = errors.New("baseline: method not trained")

// ErrNoSignal reports that too few reference tags were readable to estimate
// a position.
var ErrNoSignal = errors.New("baseline: too few readable reference tags")

// RefTag is one static reference tag. Pos is where the tag physically sits
// (what the channel simulator uses); Surveyed is where the operator's manual
// survey *says* it sits (what the algorithms use). The gap between them is
// the inaccuracy of manual calibration that motivates the paper (§I).
type RefTag struct {
	// Tag is the physical tag instance.
	Tag *tags.Tag
	// Pos is the true position.
	Pos geom.Vec3
	// Surveyed is the hand-surveyed position the algorithms believe.
	// A zero value means the survey was perfect.
	Surveyed geom.Vec3
	// PlaneAngle is the azimuth of the tag's antenna plane.
	PlaneAngle float64
}

// surveyed returns the position the algorithms should use.
func (r RefTag) surveyed() geom.Vec3 {
	if r.Surveyed == (geom.Vec3{}) {
		return r.Pos
	}
	return r.Surveyed
}

// Rect bounds the surveillance region in the horizontal plane.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p geom.Vec2) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Environment is the shared deployment the baselines operate in.
type Environment struct {
	// Channel is the radio environment (same as Tagspin's).
	Channel channel.Config
	// Band is the frequency plan; measurements use its middle channel.
	Band channel.Band
	// Refs are the static reference tags.
	Refs []RefTag
	// Room bounds candidate positions.
	Room Rect
	// ReadsPerMeasurement is how many interrogations are averaged per
	// measurement; zero means 16.
	ReadsPerMeasurement int
	// SurveyStd is the per-axis standard deviation of the manual survey
	// error applied to reference-tag positions by DefaultEnvironment.
	SurveyStd float64
}

// reads returns the effective averaging count.
func (e *Environment) reads() int {
	if e.ReadsPerMeasurement <= 0 {
		return 16
	}
	return e.ReadsPerMeasurement
}

// Validate checks the environment.
func (e *Environment) Validate() error {
	if len(e.Refs) < 3 {
		return fmt.Errorf("baseline: need ≥3 reference tags, have %d", len(e.Refs))
	}
	if e.Room.MaxX <= e.Room.MinX || e.Room.MaxY <= e.Room.MinY {
		return fmt.Errorf("baseline: degenerate room %+v", e.Room)
	}
	return e.Channel.Validate()
}

// frequency returns the measurement carrier.
func (e *Environment) frequency() (float64, error) {
	return e.Band.FrequencyHz(e.Band.MidChannel())
}

// DefaultEnvironment deploys a grid of nx × ny reference tags of the default
// model across the room, mirroring the reference deployments the original
// systems assume.
func DefaultEnvironment(room Rect, nx, ny int, rng *rand.Rand) (*Environment, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("baseline: reference grid %dx%d too small", nx, ny)
	}
	env := &Environment{
		Channel:   channel.DefaultConfig(),
		Band:      channel.ChinaBand(),
		Room:      room,
		SurveyStd: 0.01, // hand-surveyed reference tags (±1 cm per axis)
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			x := room.MinX + (room.MaxX-room.MinX)*float64(ix)/float64(nx-1)
			y := room.MinY + (room.MaxY-room.MinY)*float64(iy)/float64(ny-1)
			pos := geom.V3(x, y, 0)
			env.Refs = append(env.Refs, RefTag{
				Tag:        tags.New(tags.DefaultModel(), rng),
				Pos:        pos,
				Surveyed:   pos.Add(geom.V3(rng.NormFloat64()*env.SurveyStd, rng.NormFloat64()*env.SurveyStd, 0)),
				PlaneAngle: rng.Float64() * 2 * math.Pi,
			})
		}
	}
	return env, nil
}

// Method is a trained localization algorithm.
type Method interface {
	// Name labels the method in reports.
	Name() string
	// Train runs the offline phase.
	Train(rng *rand.Rand) error
	// Locate generates the reader-side measurements for an antenna at its
	// true position, then estimates that position from the measurements
	// alone.
	Locate(ant antenna.Antenna, rng *rand.Rand) (geom.Vec2, error)
}

// measureRSSI averages the RSSI of one reference tag over several reads.
// The boolean reports whether the tag was readable at all.
func measureRSSI(sim *channel.Simulator, ant antenna.Antenna, ref RefTag, freqHz float64, n int) (float64, bool) {
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		obs, ok := sim.Observe(channel.Query{
			Tag:           ref.Tag,
			TagPos:        ref.Pos,
			TagPlaneAngle: ref.PlaneAngle,
			Antenna:       ant,
			FrequencyHz:   freqHz,
		})
		if !ok {
			continue
		}
		sum += obs.RSSIdBm
		count++
	}
	if count == 0 {
		return math.NaN(), false
	}
	return sum / float64(count), true
}

// measurePhase circular-averages the phase of one reference tag.
func measurePhase(sim *channel.Simulator, ant antenna.Antenna, ref RefTag, freqHz float64, n int) (float64, bool) {
	var ph []float64
	for i := 0; i < n; i++ {
		obs, ok := sim.Observe(channel.Query{
			Tag:           ref.Tag,
			TagPos:        ref.Pos,
			TagPlaneAngle: ref.PlaneAngle,
			Antenna:       ant,
			FrequencyHz:   freqHz,
		})
		if !ok {
			continue
		}
		ph = append(ph, obs.PhaseRad)
	}
	if len(ph) == 0 {
		return math.NaN(), false
	}
	mean, _ := mathx.CircularMean(ph)
	return mean, true
}

// antennaAt places a standard 8 dBi measurement antenna at pos pointing at
// the room center.
func antennaAt(pos geom.Vec3, room Rect) antenna.Antenna {
	center := geom.V2((room.MinX+room.MaxX)/2, (room.MinY+room.MaxY)/2)
	return antenna.Antenna{
		ID:        1,
		Name:      "baseline-probe",
		Position:  pos,
		Boresight: center.Sub(pos.XY()).Bearing(),
		GainDBi:   8,
	}
}
