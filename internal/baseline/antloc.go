package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
)

// AntLoc reimplements the variable-RF-attenuation antenna-localization idea
// of Luo et al. (IEEE IECON'07): the reader sweeps its transmit power from
// low to high and records, for every reference tag, the minimum power at
// which the tag wakes up. That threshold is a proxy for path loss, hence for
// distance; inverting the free-space model yields per-tag ranges, and the
// reader position comes from weighted nonlinear multilateration (solved here
// with a Gauss-Newton refinement seeded by a coarse grid search).
type AntLoc struct {
	// Env is the shared deployment.
	Env *Environment
	// PowerStepDB is the attenuation sweep resolution; zero means 1 dB.
	PowerStepDB float64
	// MinPowerDBm/MaxPowerDBm bound the sweep; zeros mean 0 and 30 dBm.
	MinPowerDBm float64
	MaxPowerDBm float64

	// pathLossAt converts a wake-up threshold into a distance. Fitted in
	// training against reference tags at known distance from a probe.
	slope     float64
	intercept float64
	trained   bool
}

var _ Method = (*AntLoc)(nil)

// Name implements Method.
func (*AntLoc) Name() string { return "AntLoc" }

func (a *AntLoc) powerStep() float64 {
	if a.PowerStepDB <= 0 {
		return 1
	}
	return a.PowerStepDB
}

func (a *AntLoc) maxPower() float64 {
	if a.MaxPowerDBm == 0 {
		return 30
	}
	return a.MaxPowerDBm
}

// wakeUpThreshold returns the lowest transmit power at which the tag wakes
// up, minimized over antenna boresight rotations. AntLoc's prerequisite is a
// *rotatable* antenna: rotating until the tag sits on boresight removes the
// reader-gain term from the threshold, leaving (mostly) pure path loss.
// NaN means the tag never responded at full power in any direction.
func (a *AntLoc) wakeUpThreshold(sim *channel.Simulator, ant antenna.Antenna, ref RefTag, freq float64) float64 {
	base := a.Env.Channel
	bestNeed := math.NaN()
	const rotations = 8
	for rot := 0; rot < rotations; rot++ {
		ant.Boresight = 2 * math.Pi * float64(rot) / rotations
		var obs channel.Observation
		responded := false
		for attempt := 0; attempt < 4 && !responded; attempt++ {
			obs, responded = sim.Observe(channel.Query{
				Tag:           ref.Tag,
				TagPos:        ref.Pos,
				TagPlaneAngle: ref.PlaneAngle,
				Antenna:       ant,
				FrequencyHz:   freq,
			})
		}
		if !responded {
			continue
		}
		// The observation ran at base.TxPowerDBm; the tag wakes at any
		// power p with obs.TagPowerDBm - (base - p) ≥ sensitivity.
		need := ref.Tag.Model.SensitivityDBm - (obs.TagPowerDBm - base.TxPowerDBm)
		if math.IsNaN(bestNeed) || need < bestNeed {
			bestNeed = need
		}
	}
	if math.IsNaN(bestNeed) || bestNeed > a.maxPower() {
		return math.NaN()
	}
	if bestNeed < a.MinPowerDBm {
		bestNeed = a.MinPowerDBm
	}
	// Quantize up to the sweep grid, as real attenuator steps would.
	steps := math.Ceil((bestNeed - a.MinPowerDBm) / a.powerStep())
	return a.MinPowerDBm + steps*a.powerStep()
}

// Train fits the threshold→distance model using probe positions around the
// room (the original system calibrates its attenuation table the same way).
func (a *AntLoc) Train(rng *rand.Rand) error {
	if err := a.Env.Validate(); err != nil {
		return err
	}
	sim, err := channel.NewSimulator(a.Env.Channel, rng)
	if err != nil {
		return err
	}
	freq, err := a.Env.frequency()
	if err != nil {
		return err
	}
	// Probe from a handful of known positions; regress threshold (dB)
	// against log10(distance).
	var design [][]float64
	var y []float64
	probes := []geom.Vec2{
		{X: a.Env.Room.MinX + 0.5, Y: a.Env.Room.MinY + 0.5},
		{X: a.Env.Room.MaxX - 0.5, Y: a.Env.Room.MinY + 0.5},
		{X: a.Env.Room.MinX + 0.5, Y: a.Env.Room.MaxY - 0.5},
		{X: a.Env.Room.MaxX - 0.5, Y: a.Env.Room.MaxY - 0.5},
		{X: (a.Env.Room.MinX + a.Env.Room.MaxX) / 2, Y: (a.Env.Room.MinY + a.Env.Room.MaxY) / 2},
	}
	for _, p := range probes {
		ant := antennaAt(geom.V3(p.X, p.Y, 0), a.Env.Room)
		for _, ref := range a.Env.Refs {
			th := a.wakeUpThreshold(sim, ant, ref, freq)
			if math.IsNaN(th) {
				continue
			}
			d := ref.surveyed().XY().DistanceTo(p)
			if d < 0.3 {
				continue // near-field points distort the fit
			}
			design = append(design, []float64{1, th})
			y = append(y, math.Log10(d))
		}
	}
	if len(y) < 8 {
		return fmt.Errorf("antloc: only %d calibration points", len(y))
	}
	coef, err := mathx.LeastSquares(design, y)
	if err != nil {
		return fmt.Errorf("antloc train: %w", err)
	}
	a.intercept, a.slope = coef[0], coef[1]
	a.trained = true
	return nil
}

// distanceFromThreshold inverts the fitted model.
func (a *AntLoc) distanceFromThreshold(th float64) float64 {
	return math.Pow(10, a.intercept+a.slope*th)
}

// Locate implements Method.
func (a *AntLoc) Locate(ant antenna.Antenna, rng *rand.Rand) (geom.Vec2, error) {
	if !a.trained {
		return geom.Vec2{}, ErrUntrained
	}
	sim, err := channel.NewSimulator(a.Env.Channel, rng)
	if err != nil {
		return geom.Vec2{}, err
	}
	freq, err := a.Env.frequency()
	if err != nil {
		return geom.Vec2{}, err
	}
	type ranging struct {
		pos geom.Vec2
		d   float64
	}
	var ranges []ranging
	for _, ref := range a.Env.Refs {
		th := a.wakeUpThreshold(sim, ant, ref, freq)
		if math.IsNaN(th) {
			continue
		}
		ranges = append(ranges, ranging{pos: ref.surveyed().XY(), d: a.distanceFromThreshold(th)})
	}
	if len(ranges) < 3 {
		return geom.Vec2{}, fmt.Errorf("%w: %d ranged", ErrNoSignal, len(ranges))
	}
	cost := func(p geom.Vec2) float64 {
		var s float64
		for _, r := range ranges {
			e := p.DistanceTo(r.pos) - r.d
			s += e * e
		}
		return s
	}
	// Coarse grid seed, then Gauss-Newton refinement.
	best := geom.V2((a.Env.Room.MinX+a.Env.Room.MaxX)/2, (a.Env.Room.MinY+a.Env.Room.MaxY)/2)
	bestCost := cost(best)
	for y := a.Env.Room.MinY; y <= a.Env.Room.MaxY; y += 0.25 {
		for x := a.Env.Room.MinX; x <= a.Env.Room.MaxX; x += 0.25 {
			p := geom.V2(x, y)
			if c := cost(p); c < bestCost {
				best, bestCost = p, c
			}
		}
	}
	for iter := 0; iter < 20; iter++ {
		var jtj [2][2]float64
		var jtr [2]float64
		for _, r := range ranges {
			diff := best.Sub(r.pos)
			d := diff.Norm()
			if d < 1e-6 {
				continue
			}
			res := d - r.d
			jx, jy := diff.X/d, diff.Y/d
			jtj[0][0] += jx * jx
			jtj[0][1] += jx * jy
			jtj[1][0] += jy * jx
			jtj[1][1] += jy * jy
			jtr[0] += jx * res
			jtr[1] += jy * res
		}
		det := jtj[0][0]*jtj[1][1] - jtj[0][1]*jtj[1][0]
		if math.Abs(det) < 1e-12 {
			break
		}
		dx := (jtj[1][1]*jtr[0] - jtj[0][1]*jtr[1]) / det
		dy := (jtj[0][0]*jtr[1] - jtj[1][0]*jtr[0]) / det
		next := geom.V2(best.X-dx, best.Y-dy)
		if cost(next) >= bestCost {
			break
		}
		best, bestCost = next, cost(next)
	}
	return best, nil
}
