package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
)

// BackPos reimplements Liu et al.'s BackPos (INFOCOM'14) phase-based
// hyperbolic positioning, reversed for reader localization: the reader
// measures the backscatter phase of the reference tags; for every tag pair
// the wrapped phase difference constrains the *range difference* to the two
// anchors (a hyperbola, modulo λ/2); the estimate is the bounded grid
// argmin of the summed wrapped residuals, refined locally. Per-pair device
// offsets are calibrated once from a known probe position, as the original
// calibrates its RF chains. Its accuracy is limited by exactly what the
// paper's introduction warns about: the hand-surveyed anchor positions
// carry ≈1 cm errors, which is λ/30 of model error per anchor — enough to
// push the wrapped-residual minimum onto wrong branches at range.
type BackPos struct {
	// Env is the shared deployment.
	Env *Environment
	// AnchorCount limits how many reference tags serve as anchors (the
	// ones closest to the room center); zero means all of them. The
	// method needs its anchor hull to cover the placements — with few or
	// clustered anchors the wrapped-residual search locks onto wrong
	// branches, the documented failure mode outside the original's
	// antenna-constrained region.
	AnchorCount int
	// GridStep is the coarse search resolution; zero means 0.04 m.
	GridStep float64
	// Label overrides the reported name (e.g. "BackPos-4" vs
	// "BackPos-16" in the T2 comparison).
	Label string

	anchors []RefTag
	offsets []float64
	trained bool
	freq    float64
}

var _ Method = (*BackPos)(nil)

// Name implements Method.
func (b *BackPos) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "BackPos"
}

func (b *BackPos) gridStep() float64 {
	if b.GridStep <= 0 {
		return 0.04
	}
	return b.GridStep
}

// pairs enumerates anchor pairs (i, j), i < j.
func (b *BackPos) pairs() [][2]int {
	n := len(b.anchors)
	out := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// measureAll returns the circular-mean phase of every anchor seen from ant,
// with NaN for unreadable ones. The antenna rotates through four boresights
// so anchors behind the panel are read too — phase does not depend on the
// boresight, only readability does.
func (b *BackPos) measureAll(sim *channel.Simulator, ant antenna.Antenna) []float64 {
	out := make([]float64, len(b.anchors))
	for i, ref := range b.anchors {
		var sumSin, sumCos float64
		seen := false
		for rot := 0; rot < 4; rot++ {
			ant.Boresight = math.Pi / 2 * float64(rot)
			if v, ok := measurePhase(sim, ant, ref, b.freq, b.Env.reads()); ok {
				sumSin += math.Sin(v)
				sumCos += math.Cos(v)
				seen = true
			}
		}
		if !seen {
			out[i] = math.NaN()
			continue
		}
		out[i] = math.Atan2(sumSin, sumCos)
	}
	return out
}

// predictedDelta returns the model phase difference of anchor pair (i, j)
// for a candidate reader position: (4π/λ)(d_i − d_j).
func (b *BackPos) predictedDelta(p geom.Vec2, i, j int) float64 {
	lambda := channel.Wavelength(b.freq)
	di := b.anchors[i].surveyed().XY().DistanceTo(p)
	dj := b.anchors[j].surveyed().XY().DistanceTo(p)
	return 4 * math.Pi / lambda * (di - dj)
}

// Train adopts the environment's reference tags as anchors and calibrates
// per-pair phase offsets with the probe at a known position.
func (b *BackPos) Train(rng *rand.Rand) error {
	if err := b.Env.Validate(); err != nil {
		return err
	}
	sim, err := channel.NewSimulator(b.Env.Channel, rng)
	if err != nil {
		return err
	}
	b.freq, err = b.Env.frequency()
	if err != nil {
		return err
	}
	count := b.AnchorCount
	if count <= 0 || count > len(b.Env.Refs) {
		count = len(b.Env.Refs)
	}
	center := geom.V2((b.Env.Room.MinX+b.Env.Room.MaxX)/2, (b.Env.Room.MinY+b.Env.Room.MaxY)/2)
	b.anchors = append(b.anchors[:0], b.Env.Refs...)
	sort.Slice(b.anchors, func(i, j int) bool {
		return b.anchors[i].Pos.XY().DistanceTo(center) < b.anchors[j].Pos.XY().DistanceTo(center)
	})
	b.anchors = b.anchors[:count]
	// Known probe position offset from the array center.
	anchorProbe := geom.V2(center.X+0.4, center.Y+0.3)
	ant := antennaAt(geom.V3(anchorProbe.X, anchorProbe.Y, 0), b.Env.Room)
	phases := b.measureAll(sim, ant)
	allPairs := b.pairs()
	b.offsets = make([]float64, len(allPairs))
	calibrated := 0
	for k, pr := range allPairs {
		i, j := pr[0], pr[1]
		if math.IsNaN(phases[i]) || math.IsNaN(phases[j]) {
			b.offsets[k] = math.NaN()
			continue
		}
		measured := phases[i] - phases[j]
		b.offsets[k] = mathx.WrapToPi(measured - b.predictedDelta(anchorProbe, i, j))
		calibrated++
	}
	if calibrated < 3 {
		return fmt.Errorf("backpos: only %d pairs calibrated", calibrated)
	}
	b.trained = true
	return nil
}

// Locate implements Method.
func (b *BackPos) Locate(ant antenna.Antenna, rng *rand.Rand) (geom.Vec2, error) {
	if !b.trained {
		return geom.Vec2{}, ErrUntrained
	}
	sim, err := channel.NewSimulator(b.Env.Channel, rng)
	if err != nil {
		return geom.Vec2{}, err
	}
	phases := b.measureAll(sim, ant)
	type constraint struct {
		i, j  int
		delta float64 // measured, offset-corrected phase difference
	}
	var usable []constraint
	for k, pr := range b.pairs() {
		i, j := pr[0], pr[1]
		if math.IsNaN(phases[i]) || math.IsNaN(phases[j]) || math.IsNaN(b.offsets[k]) {
			continue
		}
		usable = append(usable, constraint{
			i: i, j: j,
			delta: phases[i] - phases[j] - b.offsets[k],
		})
	}
	if len(usable) < 3 {
		return geom.Vec2{}, fmt.Errorf("%w: %d usable pairs", ErrNoSignal, len(usable))
	}
	// Smooth wrap-aware cost: 1 − cos(residual) behaves like r²/2 near the
	// truth but stays bounded across wrap branches.
	cost := func(p geom.Vec2) float64 {
		var s float64
		for _, c := range usable {
			s += 1 - math.Cos(c.delta-b.predictedDelta(p, c.i, c.j))
		}
		return s
	}
	// Coarse grid search over the room, then two local refinements — the
	// wrapped-residual landscape has many local minima, so global search
	// comes first (as in the original's constrained solver).
	best := geom.V2((b.Env.Room.MinX+b.Env.Room.MaxX)/2, (b.Env.Room.MinY+b.Env.Room.MaxY)/2)
	bestCost := cost(best)
	step := b.gridStep()
	for y := b.Env.Room.MinY; y <= b.Env.Room.MaxY+1e-9; y += step {
		for x := b.Env.Room.MinX; x <= b.Env.Room.MaxX+1e-9; x += step {
			p := geom.V2(x, y)
			if c := cost(p); c < bestCost {
				best, bestCost = p, c
			}
		}
	}
	for round := 0; round < 2; round++ {
		fine := step / 5
		start := best
		for dy := -step; dy <= step+1e-12; dy += fine {
			for dx := -step; dx <= step+1e-12; dx += fine {
				p := geom.V2(start.X+dx, start.Y+dy)
				if c := cost(p); c < bestCost {
					best, bestCost = p, c
				}
			}
		}
		step = fine
	}
	return best, nil
}
