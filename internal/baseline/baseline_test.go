package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
)

func TestDTWBasics(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := DTW(a, a, 0); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// A time-shifted copy has small DTW but large Euclidean distance.
	b := []float64{1, 1, 2, 3}
	shifted := DTW(a, b, 0)
	var euclid float64
	for i := range a {
		euclid += math.Abs(a[i] - b[i])
	}
	if shifted >= euclid {
		t.Errorf("DTW %v not below L1 %v for a shifted copy", shifted, euclid)
	}
	if !math.IsInf(DTW(nil, a, 0), 1) {
		t.Error("empty sequence should give +Inf")
	}
}

func TestDTWWindow(t *testing.T) {
	a := []float64{0, 0, 0, 5, 0, 0}
	b := []float64{0, 0, 0, 0, 5, 0}
	// A window of 1 can absorb the single-sample shift.
	if d := DTW(a, b, 1); d != 0 {
		t.Errorf("windowed DTW = %v, want 0", d)
	}
	// Mismatched lengths still reach the corner with a small window.
	c := []float64{0, 0, 5}
	if d := DTW(a, c, 1); math.IsInf(d, 1) {
		t.Error("window smaller than length gap must be widened internally")
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 5+rng.Intn(10))
		b := make([]float64, 5+rng.Intn(10))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if d1, d2 := DTW(a, b, 4), DTW(b, a, 4); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

func testRoom() Rect { return Rect{MinX: -3, MinY: -3, MaxX: 3, MaxY: 3} }

func testEnv(t *testing.T, seed int64) *Environment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env, err := DefaultEnvironment(testRoom(), 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestDefaultEnvironment(t *testing.T) {
	env := testEnv(t, 1)
	if len(env.Refs) != 16 {
		t.Fatalf("refs = %d", len(env.Refs))
	}
	for _, ref := range env.Refs {
		if !env.Room.Contains(ref.Pos.XY()) {
			t.Errorf("ref at %v outside room", ref.Pos)
		}
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := DefaultEnvironment(testRoom(), 1, 4, rand.New(rand.NewSource(2))); err == nil {
		t.Error("1-column grid accepted")
	}
}

func TestEnvironmentValidate(t *testing.T) {
	env := testEnv(t, 1)
	bad := *env
	bad.Refs = env.Refs[:2]
	if bad.Validate() == nil {
		t.Error("two refs accepted")
	}
	bad = *env
	bad.Room = Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}
	if bad.Validate() == nil {
		t.Error("degenerate room accepted")
	}
}

// runMethod trains a method and localizes a probe at a few positions,
// returning the mean error.
func runMethod(t *testing.T, m Method, env *Environment, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if err := m.Train(rng); err != nil {
		t.Fatalf("%s train: %v", m.Name(), err)
	}
	targets := []geom.Vec2{
		{X: -1.2, Y: 0.8}, {X: 1.5, Y: -1.1}, {X: 0.3, Y: 1.9},
	}
	var sum float64
	for _, target := range targets {
		ant := antennaAt(geom.V3(target.X, target.Y, 0), env.Room)
		got, err := m.Locate(ant, rng)
		if err != nil {
			t.Fatalf("%s locate %v: %v", m.Name(), target, err)
		}
		sum += got.DistanceTo(target)
	}
	return sum / float64(len(targets))
}

func TestLandMarc(t *testing.T) {
	env := testEnv(t, 3)
	m := &LandMarc{Env: env}
	if _, err := m.Locate(antennaAt(geom.V3(0, 0, 0), env.Room), rand.New(rand.NewSource(1))); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained err = %v", err)
	}
	mean := runMethod(t, m, env, 4)
	t.Logf("LandMarc mean error %.2f m", mean)
	if mean > 1.5 {
		t.Errorf("LandMarc mean error %.2f m implausibly bad", mean)
	}
	if mean < 0.02 {
		t.Errorf("LandMarc mean error %.2f m implausibly good for an RSSI method", mean)
	}
}

func TestAntLoc(t *testing.T) {
	env := testEnv(t, 5)
	m := &AntLoc{Env: env}
	if _, err := m.Locate(antennaAt(geom.V3(0, 0, 0), env.Room), rand.New(rand.NewSource(1))); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained err = %v", err)
	}
	mean := runMethod(t, m, env, 6)
	t.Logf("AntLoc mean error %.2f m", mean)
	if mean > 1.5 {
		t.Errorf("AntLoc mean error %.2f m implausibly bad", mean)
	}
}

func TestPinIt(t *testing.T) {
	env := testEnv(t, 7)
	m := &PinIt{Env: env}
	if _, err := m.Locate(antennaAt(geom.V3(0, 0, 0), env.Room), rand.New(rand.NewSource(1))); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained err = %v", err)
	}
	mean := runMethod(t, m, env, 8)
	t.Logf("PinIt mean error %.2f m", mean)
	if mean > 1.2 {
		t.Errorf("PinIt mean error %.2f m implausibly bad", mean)
	}
}

func TestBackPos(t *testing.T) {
	env := testEnv(t, 9)
	m := &BackPos{Env: env}
	if _, err := m.Locate(antennaAt(geom.V3(0, 0, 0), env.Room), rand.New(rand.NewSource(1))); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained err = %v", err)
	}
	mean := runMethod(t, m, env, 10)
	t.Logf("BackPos mean error %.2f m", mean)
	if mean > 1.2 {
		t.Errorf("BackPos mean error %.2f m implausibly bad", mean)
	}
}

func TestNoSignalFarAway(t *testing.T) {
	env := testEnv(t, 11)
	rng := rand.New(rand.NewSource(12))
	m := &LandMarc{Env: env}
	if err := m.Train(rng); err != nil {
		t.Fatal(err)
	}
	far := antennaAt(geom.V3(400, 400, 0), env.Room)
	if _, err := m.Locate(far, rng); !errors.Is(err, ErrNoSignal) {
		t.Errorf("far-away err = %v, want ErrNoSignal", err)
	}
}

func TestSignalDistance(t *testing.T) {
	a := []float64{-50, -60, math.NaN()}
	if d := signalDistance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	b := []float64{-50, -60, -70}
	if d := signalDistance(a, b); d <= 0 {
		t.Errorf("NaN mismatch should cost something, got %v", d)
	}
	allNaN := []float64{math.NaN()}
	if d := signalDistance(allNaN, allNaN); !math.IsInf(d, 1) {
		t.Errorf("no common dims = %v, want +Inf", d)
	}
}
