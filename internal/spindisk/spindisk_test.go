package spindisk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
)

func testDisk() Disk {
	return Disk{Center: geom.V3(0.4, 0, 0), Radius: 0.10, Omega: math.Pi}
}

func TestDiskValidate(t *testing.T) {
	if err := testDisk().Validate(); err != nil {
		t.Errorf("valid disk rejected: %v", err)
	}
	bad := testDisk()
	bad.Radius = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative radius accepted")
	}
	bad = testDisk()
	bad.Omega = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero omega accepted")
	}
	bad = testDisk()
	bad.Mount = Mount(99)
	if err := bad.Validate(); err == nil {
		t.Error("unknown mount accepted")
	}
}

func TestDiskAngle(t *testing.T) {
	d := testDisk() // ω = π rad/s → half a turn per second
	if got := d.Angle(0); got != 0 {
		t.Errorf("Angle(0) = %v", got)
	}
	if got := d.Angle(time.Second); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("Angle(1s) = %v, want π", got)
	}
	if got := d.Angle(2 * time.Second); math.Abs(got) > 1e-9 && math.Abs(got-2*math.Pi) > 1e-9 {
		t.Errorf("Angle(2s) = %v, want 0 (full turn)", got)
	}
	d.Theta0 = 1
	if got := d.Angle(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Theta0 ignored: %v", got)
	}
}

func TestTagPositionOnRim(t *testing.T) {
	d := testDisk()
	p0 := d.TagPositionAt(0)
	want := geom.V3(0.5, 0, 0)
	if p0.DistanceTo(want) > 1e-12 {
		t.Errorf("position at angle 0 = %v, want %v", p0, want)
	}
	pHalf := d.TagPositionAt(math.Pi)
	if pHalf.DistanceTo(geom.V3(0.3, 0, 0)) > 1e-12 {
		t.Errorf("position at π = %v", pHalf)
	}
	// The tag always stays exactly Radius from the center, at the center's z.
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		p := d.TagPositionAt(a)
		return math.Abs(p.DistanceTo(d.Center)-d.Radius) < 1e-9 && p.Z == d.Center.Z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenterMount(t *testing.T) {
	d := testDisk()
	d.Mount = MountCenter
	for _, a := range []float64{0, 1, 2, 3} {
		if p := d.TagPositionAt(a); p.DistanceTo(d.Center) != 0 {
			t.Errorf("center-mounted tag moved to %v at angle %v", p, a)
		}
	}
	// But its plane still rotates.
	if d.TagPlaneAngle(1) == d.TagPlaneAngle(2) {
		t.Error("center-mounted plane should rotate")
	}
}

func TestOrientationTo(t *testing.T) {
	d := testDisk()
	// Edge-mounted tag at disk angle 0 sits at (0.5, 0); its plane is
	// tangential (pointing +y, i.e. π/2). For a reader due east (azimuth 0)
	// the orientation ρ is π/2: plane perpendicular to the sight line.
	rho := d.OrientationTo(0, 0)
	if math.Abs(rho-math.Pi/2) > 1e-12 {
		t.Errorf("ρ = %v, want π/2", rho)
	}
	// A quarter turn later the plane is parallel to the sight line.
	rho = d.OrientationTo(math.Pi/2, 0)
	if math.Abs(rho-math.Pi) > 1e-12 {
		t.Errorf("ρ = %v, want π", rho)
	}
}

func TestPeriod(t *testing.T) {
	d := testDisk()
	if got := d.Period(); math.Abs(got.Seconds()-2) > 1e-9 {
		t.Errorf("Period = %v, want 2s", got)
	}
	d.Omega = -2 * math.Pi
	if got := d.Period(); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("negative-ω Period = %v, want 1s", got)
	}
}

func TestMountString(t *testing.T) {
	if MountEdge.String() != "edge" || MountCenter.String() != "center" {
		t.Error("mount names wrong")
	}
	if Mount(42).String() == "" {
		t.Error("unknown mount should still render")
	}
}

func TestActuatorPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := NewActuator(testDisk(), ActuatorConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.SurveyError() != (geom.Vec3{}) {
		t.Errorf("perfect actuator has survey error %v", a.SurveyError())
	}
	if got := a.TrueAngle(time.Second); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("TrueAngle = %v, want π", got)
	}
	if a.TruePosition(0).DistanceTo(geom.V3(0.5, 0, 0)) > 1e-12 {
		t.Error("TruePosition wrong")
	}
}

func TestActuatorImperfections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := ActuatorConfig{JitterStd: 0.01, SurveyStd: 0.005}
	a, err := NewActuator(testDisk(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.SurveyError() == (geom.Vec3{}) {
		t.Error("survey error should be drawn")
	}
	if a.SurveyError().Z != 0 {
		t.Error("survey error must stay horizontal")
	}
	if a.TrueCenter().Sub(a.Nominal().Center).Sub(a.SurveyError()).Norm() > 1e-12 {
		t.Error("TrueCenter inconsistent with SurveyError")
	}
	// Jittered angles fluctuate around the ideal.
	var devs []float64
	for i := 0; i < 2000; i++ {
		dev := geom.WrapToPi(a.TrueAngle(time.Second) - a.Nominal().Angle(time.Second))
		devs = append(devs, dev)
	}
	var mean, varsum float64
	for _, d := range devs {
		mean += d
	}
	mean /= float64(len(devs))
	for _, d := range devs {
		varsum += (d - mean) * (d - mean)
	}
	std := math.Sqrt(varsum / float64(len(devs)))
	if math.Abs(std-0.01) > 0.002 {
		t.Errorf("jitter std = %v, want ≈0.01", std)
	}
}

func TestActuatorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bad := testDisk()
	bad.Omega = 0
	if _, err := NewActuator(bad, ActuatorConfig{}, rng); err == nil {
		t.Error("invalid disk accepted")
	}
	if _, err := NewActuator(testDisk(), ActuatorConfig{JitterStd: -1}, rng); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestVerticalDisk(t *testing.T) {
	d := VerticalDisk{Center: geom.V3(0, 0, 1), Radius: 0.1, Omega: math.Pi, PlaneAzimuth: 0}
	if p := d.TagPositionAt(0); p.DistanceTo(geom.V3(0.1, 0, 1)) > 1e-12 {
		t.Errorf("angle 0 position = %v", p)
	}
	if p := d.TagPositionAt(math.Pi / 2); p.DistanceTo(geom.V3(0, 0, 1.1)) > 1e-12 {
		t.Errorf("angle π/2 position = %v", p)
	}
	// Rotate the plane to the y-z plane.
	d.PlaneAzimuth = math.Pi / 2
	if p := d.TagPositionAt(0); p.DistanceTo(geom.V3(0, 0.1, 1)) > 1e-12 {
		t.Errorf("rotated plane position = %v", p)
	}
	if got := d.Angle(time.Second); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("Angle = %v", got)
	}
}
