// Package spindisk models the rotating disk that turns an ordinary passive
// tag into a circular synthetic-aperture antenna array (§II). A disk has a
// center, a radius, a uniform angular velocity, and a tag mounted either on
// its rim (normal operation) or at its center (the orientation-calibration
// prelude of §III-B).
package spindisk

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/tagspin/tagspin/internal/geom"
)

// Mount describes where the tag sits on the disk.
type Mount int

const (
	// MountEdge places the tag on the rim, tangential to the circle. This
	// is the normal Tagspin configuration; the tag sweeps the circular
	// aperture.
	MountEdge Mount = iota + 1
	// MountCenter places the tag at the disk center. Its distance to the
	// reader never changes, isolating the orientation effect (§III-B).
	MountCenter
)

// String implements fmt.Stringer.
func (m Mount) String() string {
	switch m {
	case MountEdge:
		return "edge"
	case MountCenter:
		return "center"
	default:
		return fmt.Sprintf("Mount(%d)", int(m))
	}
}

// Disk describes one spinning-tag installation. Disks rotate in a plane
// parallel to the horizontal (x-y) plane, as in the paper's experiments;
// the future-work vertical disk is modelled by VerticalDisk in this package.
type Disk struct {
	// Center is the disk center (the origin O of §III-A).
	Center geom.Vec3
	// Radius is the rim radius r in meters (default 0.10 m).
	Radius float64
	// Omega is the angular velocity ω in rad/s.
	Omega float64
	// Theta0 is the tag's angular position on the disk at t = 0.
	Theta0 float64
	// Mount selects rim or center mounting. Zero value means MountEdge.
	Mount Mount
}

// Validate checks the disk's physical parameters.
func (d Disk) Validate() error {
	if d.Radius < 0 {
		return fmt.Errorf("spindisk: negative radius %v", d.Radius)
	}
	if d.Omega == 0 {
		return fmt.Errorf("spindisk: zero angular velocity")
	}
	if d.Mount != 0 && d.Mount != MountEdge && d.Mount != MountCenter {
		return fmt.Errorf("spindisk: unknown mount %d", d.Mount)
	}
	return nil
}

// mount returns the effective mount, defaulting to MountEdge.
func (d Disk) mount() Mount {
	if d.Mount == 0 {
		return MountEdge
	}
	return d.Mount
}

// Angle returns the tag's angular position ωt + θ0 at time t, in [0, 2π).
func (d Disk) Angle(t time.Duration) float64 {
	return geom.NormalizeAngle(d.Omega*t.Seconds() + d.Theta0)
}

// TagPosition returns the tag's world position at time t.
func (d Disk) TagPosition(t time.Duration) geom.Vec3 {
	return d.TagPositionAt(d.Angle(t))
}

// TagPositionAt returns the tag's world position when its disk angle is a.
func (d Disk) TagPositionAt(a float64) geom.Vec3 {
	if d.mount() == MountCenter {
		return d.Center
	}
	return d.Center.Add(geom.V3(d.Radius*math.Cos(a), d.Radius*math.Sin(a), 0))
}

// TagPlaneAngle returns the absolute azimuthal angle of the tag's antenna
// plane at disk angle a. An edge-mounted tag is tangential to the rim, so
// its plane leads the radial direction by π/2; a center-mounted tag's plane
// simply co-rotates with the disk.
func (d Disk) TagPlaneAngle(a float64) float64 {
	if d.mount() == MountCenter {
		return geom.NormalizeAngle(a)
	}
	return geom.NormalizeAngle(a + math.Pi/2)
}

// OrientationTo returns ρ, the angle between the tag plane and the sight
// line from the disk center to an observer at the given azimuth (§III-B).
func (d Disk) OrientationTo(a, observerAzimuth float64) float64 {
	return geom.NormalizeAngle(d.TagPlaneAngle(a) - observerAzimuth)
}

// Period returns the rotation period of the disk.
func (d Disk) Period() time.Duration {
	return time.Duration(2 * math.Pi / math.Abs(d.Omega) * float64(time.Second))
}

// Actuator wraps a Disk with motor imperfections: angular jitter around the
// ideal uniform rotation and a survey error between the disk's true center
// and the center recorded in the registry. The localization algorithm only
// ever sees the *nominal* disk; the actuator is what the simulated world
// uses.
type Actuator struct {
	disk        Disk
	jitterStd   float64
	trueCenter  geom.Vec3
	surveyError geom.Vec3
	rng         *rand.Rand
}

// ActuatorConfig configures motor and survey imperfections.
type ActuatorConfig struct {
	// JitterStd is the standard deviation, in radians, of the zero-mean
	// angular error between the true tag angle and the ideal ωt + θ0.
	JitterStd float64
	// SurveyStd is the standard deviation, in meters, of each horizontal
	// component of the disk-center survey error.
	SurveyStd float64
}

// NewActuator builds an actuator for disk with the given imperfections,
// drawing the survey error once from rng.
func NewActuator(disk Disk, cfg ActuatorConfig, rng *rand.Rand) (*Actuator, error) {
	if err := disk.Validate(); err != nil {
		return nil, err
	}
	if cfg.JitterStd < 0 || cfg.SurveyStd < 0 {
		return nil, fmt.Errorf("spindisk: negative imperfection std")
	}
	var survey geom.Vec3
	if cfg.SurveyStd > 0 {
		survey = geom.V3(rng.NormFloat64()*cfg.SurveyStd, rng.NormFloat64()*cfg.SurveyStd, 0)
	}
	return &Actuator{
		disk:        disk,
		jitterStd:   cfg.JitterStd,
		trueCenter:  disk.Center.Add(survey),
		surveyError: survey,
		rng:         rng,
	}, nil
}

// Nominal returns the disk as recorded in the registry (no imperfections).
func (a *Actuator) Nominal() Disk { return a.disk }

// TrueCenter returns the actual disk center including survey error.
func (a *Actuator) TrueCenter() geom.Vec3 { return a.trueCenter }

// SurveyError returns the difference between true and nominal centers.
func (a *Actuator) SurveyError() geom.Vec3 { return a.surveyError }

// TrueAngle returns the tag's actual disk angle at time t, including motor
// jitter.
func (a *Actuator) TrueAngle(t time.Duration) float64 {
	jitter := 0.0
	if a.jitterStd > 0 {
		jitter = a.rng.NormFloat64() * a.jitterStd
	}
	return geom.NormalizeAngle(a.disk.Angle(t) + jitter)
}

// TruePosition returns the tag's actual world position at disk angle angle.
func (a *Actuator) TruePosition(angle float64) geom.Vec3 {
	shifted := a.disk
	shifted.Center = a.trueCenter
	return shifted.TagPositionAt(angle)
}

// VerticalDisk models the paper's future-work extension: a disk rotating in
// a vertical plane (containing the z axis) to add aperture diversity along
// z. The disk plane contains the z-axis and the horizontal direction at
// azimuth PlaneAzimuth.
type VerticalDisk struct {
	Center       geom.Vec3
	Radius       float64
	Omega        float64
	Theta0       float64
	PlaneAzimuth float64
}

// Angle returns the tag's angular position at time t in [0, 2π).
func (d VerticalDisk) Angle(t time.Duration) float64 {
	return geom.NormalizeAngle(d.Omega*t.Seconds() + d.Theta0)
}

// TagPositionAt returns the tag's world position when its disk angle is a.
// Angle 0 points along the horizontal direction of the disk plane; angle
// π/2 points straight up.
func (d VerticalDisk) TagPositionAt(a float64) geom.Vec3 {
	h := geom.V3(math.Cos(d.PlaneAzimuth), math.Sin(d.PlaneAzimuth), 0)
	return d.Center.Add(h.Scale(d.Radius * math.Cos(a))).Add(geom.V3(0, 0, d.Radius*math.Sin(a)))
}
