// Package trace records and replays collection sessions. A trace is a
// self-contained JSON-lines file: a header carrying the registered
// spinning-tag entries and optional ground truth, followed by one line per
// tag read. Traces make experiments replayable and let the pipeline run on
// captured data without a reader.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/tags"
)

// ErrEmptyTrace reports a trace without a header line.
var ErrEmptyTrace = errors.New("trace: empty input")

// Header is the first line of a trace file.
type Header struct {
	// Version identifies the format; only 1 exists.
	Version int `json:"version"`
	// Description is a free-form label.
	Description string `json:"description,omitempty"`
	// Registered holds the spinning-tag registry entries of the session.
	Registered []registry.Entry `json:"registered"`
	// TruePosition optionally records ground truth for evaluation.
	TruePosition *[3]float64 `json:"truePositionM,omitempty"`
}

// Record is one tag read.
type Record struct {
	// EPC is the hex tag identity.
	EPC string `json:"epc"`
	// TimeMicros is the reader timestamp.
	TimeMicros int64 `json:"timeUs"`
	// PhaseRad is the wrapped phase.
	PhaseRad float64 `json:"phaseRad"`
	// RSSIdBm is the received strength.
	RSSIdBm float64 `json:"rssiDBm"`
	// FrequencyHz is the carrier.
	FrequencyHz float64 `json:"freqHz"`
	// AntennaID is the reader port.
	AntennaID int `json:"antenna"`
}

// Trace is a parsed session.
type Trace struct {
	Header  Header
	Records []Record
}

// New builds a trace from pipeline data, ordering records by time then EPC
// so output is deterministic.
func New(description string, registered []core.SpinningTag, obs core.Observations, truth *[3]float64) *Trace {
	t := &Trace{Header: Header{
		Version:      1,
		Description:  description,
		TruePosition: truth,
	}}
	for _, st := range registered {
		t.Header.Registered = append(t.Header.Registered, registry.EntryFromSpinningTag(st))
	}
	for epc, snaps := range obs {
		for _, s := range snaps {
			t.Records = append(t.Records, Record{
				EPC:         epc.String(),
				TimeMicros:  int64(s.Time / time.Microsecond),
				PhaseRad:    s.Phase,
				RSSIdBm:     s.RSSIdBm,
				FrequencyHz: s.FrequencyHz,
				AntennaID:   s.AntennaID,
			})
		}
	}
	sort.Slice(t.Records, func(i, j int) bool {
		if t.Records[i].TimeMicros != t.Records[j].TimeMicros {
			return t.Records[i].TimeMicros < t.Records[j].TimeMicros
		}
		return t.Records[i].EPC < t.Records[j].EPC
	})
	return t
}

// Observations reconstructs the pipeline input.
func (t *Trace) Observations() (core.Observations, error) {
	obs := make(core.Observations)
	for i, r := range t.Records {
		epc, err := tags.ParseEPC(r.EPC)
		if err != nil {
			return nil, fmt.Errorf("trace record %d: %w", i, err)
		}
		obs[epc] = append(obs[epc], phase.Snapshot{
			Time:        time.Duration(r.TimeMicros) * time.Microsecond,
			Phase:       r.PhaseRad,
			RSSIdBm:     r.RSSIdBm,
			FrequencyHz: r.FrequencyHz,
			AntennaID:   r.AntennaID,
		})
	}
	return obs, nil
}

// SpinningTags reconstructs the registry entries.
func (t *Trace) SpinningTags() ([]core.SpinningTag, error) {
	out := make([]core.SpinningTag, 0, len(t.Header.Registered))
	for _, e := range t.Header.Registered {
		st, err := e.SpinningTag()
		if err != nil {
			return nil, fmt.Errorf("trace header: %w", err)
		}
		out = append(out, st)
	}
	return out, nil
}

// Write streams the trace as JSON lines.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Header); err != nil {
		return fmt.Errorf("trace header: %w", err)
	}
	for i, r := range t.Records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace from JSON lines.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace read: %w", err)
		}
		return nil, ErrEmptyTrace
	}
	var t Trace
	if err := json.Unmarshal(sc.Bytes(), &t.Header); err != nil {
		return nil, fmt.Errorf("trace header: %w", err)
	}
	if t.Header.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", t.Header.Version)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace read: %w", err)
	}
	return &t, nil
}

// Save writes the trace to a file.
func Save(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace save: %w", err)
	}
	if err := Write(f, t); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace save: %w", err)
	}
	return nil
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace load: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only
	return Read(f)
}
