package trace_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
	"github.com/tagspin/tagspin/internal/trace"
)

// session builds a small simulated collection for trace tests.
func session(t *testing.T) ([]core.SpinningTag, core.Observations, geom.Vec3) {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.5, 1.0, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	return registered, col.Obs, target
}

func TestRoundTripThroughBuffer(t *testing.T) {
	registered, obs, target := session(t)
	truth := [3]float64{target.X, target.Y, target.Z}
	tr := trace.New("unit test", registered, obs, &truth)

	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Description != "unit test" || back.Header.TruePosition == nil {
		t.Errorf("header = %+v", back.Header)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("records %d vs %d", len(back.Records), len(tr.Records))
	}
	// Replaying must reproduce the pipeline result exactly.
	obs2, err := back.Observations()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := back.SpinningTags()
	if err != nil {
		t.Fatal(err)
	}
	loc := core.NewLocator(core.Config{})
	r1, err := loc.Locate2D(registered, obs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loc.Locate2D(st2, obs2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Position.DistanceTo(r2.Position) > 1e-9 {
		t.Errorf("replayed result %v differs from live %v", r2.Position, r1.Position)
	}
}

func TestRecordsAreTimeOrdered(t *testing.T) {
	registered, obs, _ := session(t)
	tr := trace.New("", registered, obs, nil)
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].TimeMicros < tr.Records[i-1].TimeMicros {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	registered, obs, _ := session(t)
	tr := trace.New("file test", registered, obs, nil)
	path := filepath.Join(t.TempDir(), "session.jsonl")
	if err := trace.Save(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(tr.Records) {
		t.Errorf("records %d vs %d", len(back.Records), len(tr.Records))
	}
	if _, err := trace.Load(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("")); !errors.Is(err, trace.ErrEmptyTrace) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := trace.Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := trace.Read(strings.NewReader(`{"version":9,"registered":[]}` + "\n")); err == nil {
		t.Error("future version accepted")
	}
	good := `{"version":1,"registered":[]}` + "\n" + "garbage\n"
	if _, err := trace.Read(strings.NewReader(good)); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestBadEPCInRecords(t *testing.T) {
	tr := &trace.Trace{
		Header:  trace.Header{Version: 1},
		Records: []trace.Record{{EPC: "zz"}},
	}
	if _, err := tr.Observations(); err == nil {
		t.Error("bad EPC accepted")
	}
}
