package estimate

import (
	"math"
	"sync"
)

// initStep is the initial simplex edge (meters). The bearing seed is
// typically within a few centimeters of the optimum, so 5 cm brackets it
// while staying inside the likelihood's basin.
const initStep = 0.05

// convergeDiam is the simplex diameter at which refinement stops; well
// below the millimeter scale anything downstream can resolve.
const convergeDiam = 1e-6

// maxDim is the largest search dimension the backend refines (x, y, z).
const maxDim = 3

// optScratch holds every work area the refinement and Hessian passes need,
// sized for maxDim once and for all: the simplex vertices (backed by one
// flat array), the centroid/trial/perturbation points, and the Hessian.
// Solves borrow one from optPool so a steady-state Solve2D/Solve3D performs
// no optimizer allocations at all — the same per-request pooling discipline
// the spectrum package applies to its search scratch.
type optScratch struct {
	vertBuf  [(maxDim + 1) * maxDim]float64
	verts    [maxDim + 1][]float64
	vals     [maxDim + 1]float64
	centroid [maxDim]float64
	trial    [maxDim]float64
	pert     [maxDim]float64
	hess     [maxDim][maxDim]float64
}

var optPool = sync.Pool{New: func() any { return new(optScratch) }}

// nelderMead minimizes f from x0 with the standard downhill-simplex
// coefficients (reflect 1, expand 2, contract 0.5, shrink 0.5), writing the
// best vertex into dst (len(dst) == len(x0)) and returning its value. The
// result is copied out rather than returned by reference because the
// vertices live in the pooled scratch. Derivative-free on purpose: the
// likelihood is smooth near the optimum but the Q profiles make it cheap to
// evaluate and awkward to differentiate analytically.
func nelderMead(f func([]float64) float64, x0, dst []float64, maxIter int, s *optScratch) float64 {
	n := len(x0)
	verts := s.verts[:n+1]
	vals := s.vals[:n+1]
	for i := range verts {
		v := s.vertBuf[i*maxDim : i*maxDim+n]
		copy(v, x0)
		if i > 0 {
			v[i-1] += initStep
		}
		verts[i] = v
		vals[i] = f(v)
	}
	centroid := s.centroid[:n]
	trial := s.trial[:n]

	order := func() {
		for i := 1; i < len(verts); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				verts[j], verts[j-1] = verts[j-1], verts[j]
			}
		}
	}
	order()

	for iter := 0; iter < maxIter; iter++ {
		var diam float64
		for i := 1; i <= n; i++ {
			for d := 0; d < n; d++ {
				if dd := math.Abs(verts[i][d] - verts[0][d]); dd > diam {
					diam = dd
				}
			}
		}
		if diam < convergeDiam {
			break
		}

		for d := 0; d < n; d++ {
			var sum float64
			for i := 0; i < n; i++ { // all but the worst vertex
				sum += verts[i][d]
			}
			centroid[d] = sum / float64(n)
		}
		worst := n
		at := func(scale float64) float64 {
			for d := 0; d < n; d++ {
				trial[d] = centroid[d] + scale*(verts[worst][d]-centroid[d])
			}
			return f(trial)
		}

		fr := at(-1) // reflection
		switch {
		case fr < vals[0]:
			fe := at(-2) // expansion
			if fe < fr {
				copyFrom(verts[worst], centroid, -2)
				vals[worst] = fe
			} else {
				copyFrom(verts[worst], centroid, -1)
				vals[worst] = fr
			}
		case fr < vals[n-1]:
			copyFrom(verts[worst], centroid, -1)
			vals[worst] = fr
		default:
			fc := at(0.5) // contraction toward the worst vertex
			if fc < vals[worst] {
				copyFrom(verts[worst], centroid, 0.5)
				vals[worst] = fc
			} else {
				for i := 1; i <= n; i++ { // shrink toward the best
					for d := 0; d < n; d++ {
						verts[i][d] = verts[0][d] + 0.5*(verts[i][d]-verts[0][d])
					}
					vals[i] = f(verts[i])
				}
			}
		}
		order()
	}
	copy(dst, verts[0])
	return vals[0]
}

// copyFrom sets dst to centroid + scale·(dst − centroid) — the accepted
// trial point, recomputed in place exactly as `at` evaluated it.
func copyFrom(dst, centroid []float64, scale float64) {
	for d := range dst {
		dst[d] = centroid[d] + scale*(dst[d]-centroid[d])
	}
}

// covariance inverts the central-difference Hessian of f (the negative
// log-likelihood) at x, returning the covariance by value in the upper-left
// len(x)×len(x) block. It returns ok = false when the Hessian is not
// positive definite — a saddle or degenerate geometry where a Gaussian
// approximation would mislead. The dimension is at most maxDim, so the
// inverse comes from the closed-form 2×2/3×3 adjugate instead of a general
// elimination — no temporaries, which is what lets the whole Solve path run
// out of the pooled scratch.
func covariance(f func([]float64) float64, x []float64, s *optScratch) (cov [maxDim][maxDim]float64, ok bool) {
	n := len(x)
	h := hessianStep
	fx := f(x)
	p := s.pert[:n]
	pert := func(a int, da float64, b int, db float64) float64 {
		copy(p, x)
		p[a] += da
		if b >= 0 {
			p[b] += db
		}
		return f(p)
	}
	for a := 0; a < n; a++ {
		s.hess[a][a] = (pert(a, h, -1, 0) - 2*fx + pert(a, -h, -1, 0)) / (h * h)
		for b := a + 1; b < n; b++ {
			v := (pert(a, h, b, h) - pert(a, h, b, -h) -
				pert(a, -h, b, h) + pert(a, -h, b, -h)) / (4 * h * h)
			s.hess[a][b], s.hess[b][a] = v, v
		}
	}
	// Positive-definiteness check via leading principal minors (n ≤ 3).
	if !posDefinite(&s.hess, n) {
		return cov, false
	}
	if !invertSym(&s.hess, n, &cov) {
		return cov, false
	}
	for a := 0; a < n; a++ {
		if cov[a][a] <= 0 {
			return cov, false
		}
	}
	return cov, true
}

// invertSym writes the inverse of the symmetric n×n block of m into out via
// the adjugate formula. The determinant was already vetted positive by
// posDefinite; the explicit guard keeps a pathological near-zero determinant
// from laundering ±Inf into the covariance.
func invertSym(m *[maxDim][maxDim]float64, n int, out *[maxDim][maxDim]float64) bool {
	switch n {
	case 1:
		if m[0][0] == 0 {
			return false
		}
		out[0][0] = 1 / m[0][0]
	case 2:
		det := m[0][0]*m[1][1] - m[0][1]*m[1][0]
		if det == 0 || math.IsInf(det, 0) {
			return false
		}
		inv := 1 / det
		out[0][0] = m[1][1] * inv
		out[1][1] = m[0][0] * inv
		v := -m[0][1] * inv
		out[0][1], out[1][0] = v, v
	case 3:
		c00 := m[1][1]*m[2][2] - m[1][2]*m[2][1]
		c01 := m[0][2]*m[2][1] - m[0][1]*m[2][2]
		c02 := m[0][1]*m[1][2] - m[0][2]*m[1][1]
		c11 := m[0][0]*m[2][2] - m[0][2]*m[2][0]
		c12 := m[0][2]*m[1][0] - m[0][0]*m[1][2]
		c22 := m[0][0]*m[1][1] - m[0][1]*m[1][0]
		det := m[0][0]*c00 + m[1][0]*c01 + m[2][0]*c02
		if det == 0 || math.IsInf(det, 0) {
			return false
		}
		inv := 1 / det
		out[0][0] = c00 * inv
		out[1][1] = c11 * inv
		out[2][2] = c22 * inv
		out[0][1], out[1][0] = c01*inv, c01*inv
		out[0][2], out[2][0] = c02*inv, c02*inv
		out[1][2], out[2][1] = c12*inv, c12*inv
	default:
		return false
	}
	return true
}

// posDefinite checks Sylvester's criterion for the symmetric n×n block of m
// (n ≤ 3).
func posDefinite(m *[maxDim][maxDim]float64, n int) bool {
	if m[0][0] <= 0 {
		return false
	}
	if n >= 2 {
		if m[0][0]*m[1][1]-m[0][1]*m[1][0] <= 0 {
			return false
		}
	}
	if n >= 3 {
		det := m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
		if det <= 0 {
			return false
		}
	}
	return true
}
