package estimate

import (
	"math"

	"github.com/tagspin/tagspin/internal/mathx"
)

// initStep is the initial simplex edge (meters). The bearing seed is
// typically within a few centimeters of the optimum, so 5 cm brackets it
// while staying inside the likelihood's basin.
const initStep = 0.05

// convergeDiam is the simplex diameter at which refinement stops; well
// below the millimeter scale anything downstream can resolve.
const convergeDiam = 1e-6

// nelderMead minimizes f from x0 with the standard downhill-simplex
// coefficients (reflect 1, expand 2, contract 0.5, shrink 0.5). It returns
// the best vertex and its value. Derivative-free on purpose: the likelihood
// is smooth near the optimum but the Q profiles make it cheap to evaluate
// and awkward to differentiate analytically.
func nelderMead(f func([]float64) float64, x0 []float64, maxIter int) ([]float64, float64) {
	n := len(x0)
	verts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range verts {
		v := append([]float64(nil), x0...)
		if i > 0 {
			v[i-1] += initStep
		}
		verts[i] = v
		vals[i] = f(v)
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)

	order := func() {
		for i := 1; i < len(verts); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				verts[j], verts[j-1] = verts[j-1], verts[j]
			}
		}
	}
	order()

	for iter := 0; iter < maxIter; iter++ {
		var diam float64
		for i := 1; i <= n; i++ {
			for d := 0; d < n; d++ {
				if dd := math.Abs(verts[i][d] - verts[0][d]); dd > diam {
					diam = dd
				}
			}
		}
		if diam < convergeDiam {
			break
		}

		for d := 0; d < n; d++ {
			var s float64
			for i := 0; i < n; i++ { // all but the worst vertex
				s += verts[i][d]
			}
			centroid[d] = s / float64(n)
		}
		worst := n
		at := func(scale float64) float64 {
			for d := 0; d < n; d++ {
				trial[d] = centroid[d] + scale*(verts[worst][d]-centroid[d])
			}
			return f(trial)
		}

		fr := at(-1) // reflection
		switch {
		case fr < vals[0]:
			fe := at(-2) // expansion
			if fe < fr {
				copyFrom(verts[worst], centroid, -2)
				vals[worst] = fe
			} else {
				copyFrom(verts[worst], centroid, -1)
				vals[worst] = fr
			}
		case fr < vals[n-1]:
			copyFrom(verts[worst], centroid, -1)
			vals[worst] = fr
		default:
			fc := at(0.5) // contraction toward the worst vertex
			if fc < vals[worst] {
				copyFrom(verts[worst], centroid, 0.5)
				vals[worst] = fc
			} else {
				for i := 1; i <= n; i++ { // shrink toward the best
					for d := 0; d < n; d++ {
						verts[i][d] = verts[0][d] + 0.5*(verts[i][d]-verts[0][d])
					}
					vals[i] = f(verts[i])
				}
			}
		}
		order()
	}
	return verts[0], vals[0]
}

// copyFrom sets dst to centroid + scale·(dst − centroid) — the accepted
// trial point, recomputed in place exactly as `at` evaluated it.
func copyFrom(dst, centroid []float64, scale float64) {
	for d := range dst {
		dst[d] = centroid[d] + scale*(dst[d]-centroid[d])
	}
}

// covariance inverts the central-difference Hessian of f (the negative
// log-likelihood) at x. It returns ok = false when the Hessian is not
// positive definite — a saddle or degenerate geometry where a Gaussian
// approximation would mislead.
func covariance(f func([]float64) float64, x []float64) ([][]float64, bool) {
	n := len(x)
	h := hessianStep
	fx := f(x)
	pert := func(deltas ...[2]float64) float64 {
		p := append([]float64(nil), x...)
		for _, d := range deltas {
			p[int(d[0])] += d[1]
		}
		return f(p)
	}
	hess := make([][]float64, n)
	for a := range hess {
		hess[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		hess[a][a] = (pert([2]float64{float64(a), h}) - 2*fx + pert([2]float64{float64(a), -h})) / (h * h)
		for b := a + 1; b < n; b++ {
			v := (pert([2]float64{float64(a), h}, [2]float64{float64(b), h}) -
				pert([2]float64{float64(a), h}, [2]float64{float64(b), -h}) -
				pert([2]float64{float64(a), -h}, [2]float64{float64(b), h}) +
				pert([2]float64{float64(a), -h}, [2]float64{float64(b), -h})) / (4 * h * h)
			hess[a][b], hess[b][a] = v, v
		}
	}
	// Positive-definiteness check via leading principal minors (n ≤ 3).
	if !posDefinite(hess) {
		return nil, false
	}
	// Covariance = H⁻¹, column by column.
	cov := make([][]float64, n)
	for a := range cov {
		cov[a] = make([]float64, n)
	}
	for col := 0; col < n; col++ {
		aCopy := make([][]float64, n)
		for i := range aCopy {
			aCopy[i] = append([]float64(nil), hess[i]...)
		}
		e := make([]float64, n)
		e[col] = 1
		sol, err := mathx.SolveLinear(aCopy, e)
		if err != nil {
			return nil, false
		}
		for row := 0; row < n; row++ {
			cov[row][col] = sol[row]
		}
	}
	// Symmetrize away the last bits of finite-difference asymmetry.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			v := (cov[a][b] + cov[b][a]) / 2
			cov[a][b], cov[b][a] = v, v
		}
		if cov[a][a] <= 0 {
			return nil, false
		}
	}
	return cov, true
}

// posDefinite checks Sylvester's criterion for a symmetric matrix of
// dimension ≤ 3.
func posDefinite(m [][]float64) bool {
	n := len(m)
	if m[0][0] <= 0 {
		return false
	}
	if n >= 2 {
		if m[0][0]*m[1][1]-m[0][1]*m[1][0] <= 0 {
			return false
		}
	}
	if n >= 3 {
		det := m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
		if det <= 0 {
			return false
		}
	}
	return true
}
