package estimate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

const testFreqHz = 920.625e6

// synthTag generates one disk's snapshots under the exact far-field phase
// model the Q profile assumes — θ_j = C − (4πr/λ)·cos(a_j−φ*)·cos γ* + ε —
// toward a reader at p, with Gaussian phase noise. Est carries the true
// direction as the seed bearing (unit power).
func synthTag(id byte, disk spindisk.Disk, p geom.Vec3, sigma float64, n int, rng *rand.Rand) core.EstimatorTag {
	d := p.Sub(disk.Center)
	phiStar := math.Atan2(d.Y, d.X)
	gammaStar := math.Atan2(d.Z, math.Hypot(d.X, d.Y))
	wavelength := 299792458.0 / testFreqHz
	scale := 4 * math.Pi * disk.Radius / wavelength
	c0 := rng.Float64() * 2 * math.Pi

	duration := 2 * float64(disk.Period())
	snaps := make([]phase.Snapshot, n)
	for j := range snaps {
		t := time.Duration(float64(j) / float64(n) * duration)
		a := disk.Angle(t)
		snaps[j] = phase.Snapshot{
			Time:        t,
			Phase:       c0 - scale*math.Cos(a-phiStar)*math.Cos(gammaStar) + rng.NormFloat64()*sigma,
			FrequencyHz: testFreqHz,
		}
	}
	epc := tags.EPC{id}
	return core.EstimatorTag{
		Tag:   core.SpinningTag{EPC: epc, Disk: disk},
		Snaps: snaps,
		Est: core.TagEstimate{
			EPC:       epc,
			Azimuth:   phiStar,
			Polar:     gammaStar,
			Power:     1,
			Snapshots: n,
		},
	}
}

func defaultDisks(z float64) []spindisk.Disk {
	return []spindisk.Disk{
		{Center: geom.V3(-0.25, 0, z), Radius: 0.10, Omega: math.Pi},
		{Center: geom.V3(0.25, 0, z), Radius: 0.10, Omega: math.Pi, Theta0: math.Pi / 3},
		{Center: geom.V3(0, 0.3, z), Radius: 0.10, Omega: math.Pi, Theta0: 2 * math.Pi / 3},
	}
}

func TestMLSolve2DRecoversSyntheticTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	target := geom.V3(-1.6, 1.2, 0)
	var etags []core.EstimatorTag
	for i, d := range defaultDisks(0) {
		etags = append(etags, synthTag(byte(i+1), d, target, 0.1, 160, rng))
	}
	sol, err := NewML(Config{}).Solve2D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if d := sol.Position.DistanceTo(target.XY()); d > 0.02 {
		t.Errorf("position error %.1f mm, want < 20 mm (%v vs %v)", d*1000, sol.Position, target.XY())
	}
	if sol.Confidence == nil {
		t.Fatal("no confidence reported")
	}
	c := sol.Confidence
	if c.SemiMajorM <= 0 || c.SemiMinorM <= 0 || c.SemiMajorM < c.SemiMinorM {
		t.Errorf("bad ellipse: major %v minor %v", c.SemiMajorM, c.SemiMinorM)
	}
	if c.SemiMajorM > 0.05 {
		t.Errorf("1σ semi-major %.1f cm, want well under 5 cm for 3 disks × 160 reads", c.SemiMajorM*100)
	}
	if c.LogLikelihood >= 0 {
		t.Errorf("log-likelihood %v, want negative (log Q < 0)", c.LogLikelihood)
	}
}

// TestMLCoverageCalibration2D checks the covariance is calibrated: under
// Gaussian phase noise matching the assumed σ, the 1σ confidence ellipse
// must contain the true position at roughly the nominal 2D Gaussian rate of
// 1 − e^(−1/2) ≈ 39.3%.
func TestMLCoverageCalibration2D(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage calibration needs many trials")
	}
	rng := rand.New(rand.NewSource(23))
	target := geom.V3(-1.4, 1.1, 0)
	ml := NewML(Config{})
	const trials = 150
	hits, ok := 0, 0
	for trial := 0; trial < trials; trial++ {
		var etags []core.EstimatorTag
		for i, d := range defaultDisks(0) {
			etags = append(etags, synthTag(byte(i+1), d, target, 0.1, 160, rng))
		}
		sol, err := ml.Solve2D(etags)
		if err != nil {
			t.Fatal(err)
		}
		c := sol.Confidence
		if c == nil || c.SemiMinorM <= 0 {
			continue
		}
		ok++
		dx := sol.Position.X - target.X
		dy := sol.Position.Y - target.Y
		c11, c22, c12 := c.Cov[0][0], c.Cov[1][1], c.Cov[0][1]
		det := c11*c22 - c12*c12
		mahal := (dx*dx*c22 - 2*dx*dy*c12 + dy*dy*c11) / det
		if mahal <= 1 {
			hits++
		}
	}
	if ok < trials*9/10 {
		t.Fatalf("only %d/%d trials produced a covariance", ok, trials)
	}
	cov := float64(hits) / float64(ok)
	if cov < 0.28 || cov > 0.55 {
		t.Errorf("1σ coverage %.2f over %d trials, want ≈0.39 (accept [0.28, 0.55])", cov, ok)
	}
}

// TestMLSolve3DResolvesMirrorByLikelihood puts the disks at two different
// heights and the reader below both planes. The grid backend's default
// dead-space policy keeps the above-planes candidate — wrong here — while
// the joint likelihood identifies the true side because the staggered disk
// planes break the mirror symmetry.
func TestMLSolve3DResolvesMirrorByLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	disks := []spindisk.Disk{
		{Center: geom.V3(-0.25, 0, 0), Radius: 0.10, Omega: math.Pi},
		{Center: geom.V3(0.25, 0, 0.4), Radius: 0.10, Omega: math.Pi, Theta0: math.Pi / 3},
		{Center: geom.V3(0, 0.3, 0.2), Radius: 0.10, Omega: math.Pi, Theta0: 2 * math.Pi / 3},
	}
	target := geom.V3(-1.5, 1.0, -0.3)
	var etags []core.EstimatorTag
	for i, d := range disks {
		etags = append(etags, synthTag(byte(i+1), d, target, 0.05, 200, rng))
	}

	grid, err := core.GridEstimator{}.Solve3D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Position.Z < 0 {
		t.Fatalf("test premise broken: grid default policy picked z=%.2f < 0", grid.Position.Z)
	}

	sol, err := NewML(Config{}).Solve3D(etags)
	if err != nil {
		t.Fatal(err)
	}
	if d := sol.Position.DistanceTo(target); d > 0.05 {
		t.Errorf("ML position error %.1f cm, want < 5 cm (%v vs %v)", d*100, sol.Position, target)
	}
	if sol.Position.Z >= 0 {
		t.Errorf("ML kept the wrong mirror side: z = %.2f, want < 0", sol.Position.Z)
	}
	c := sol.Confidence
	if c == nil {
		t.Fatal("no confidence reported")
	}
	if c.LogLikelihood <= c.MirrorLogLikelihood {
		t.Errorf("selected likelihood %v not above mirror %v", c.LogLikelihood, c.MirrorLogLikelihood)
	}
	if c.SigmaZM <= 0 || c.SigmaZM > 0.2 {
		t.Errorf("σ_z = %v m, want in (0, 0.2]", c.SigmaZM)
	}
}

// TestMLMatchesGridOnTestbed runs both backends through the full pipeline
// on a simulated testbed session: the ML position must agree with the grid
// position to within the coarse-step tolerance and both must be near the
// true reader.
func TestMLMatchesGridOnTestbed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.8, 1.4, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}

	gridLoc := core.NewLocator(core.Config{})
	mlLoc := gridLoc.WithEstimator(NewML(Config{}))

	gridRes, err := gridLoc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	mlRes, err := mlLoc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if gridRes.Backend != "grid" || mlRes.Backend != "ml" {
		t.Errorf("backends = %q, %q; want grid, ml", gridRes.Backend, mlRes.Backend)
	}
	if gridRes.Confidence != nil {
		t.Errorf("grid backend reported confidence")
	}
	if mlRes.Confidence == nil {
		t.Errorf("ml backend reported no confidence")
	}
	if d := mlRes.Position.DistanceTo(gridRes.Position); d > 0.05 {
		t.Errorf("ml and grid disagree by %.1f cm, want < 5 cm (ml %v grid %v)",
			d*100, mlRes.Position, gridRes.Position)
	}
	if d := mlRes.Position.DistanceTo(target.XY()); d > 0.15 {
		t.Errorf("ml error %.1f cm, want < 15 cm", d*100)
	}
}

// TestMLMatchesGridOnTestbed3D is the 3D analogue with an elevated reader.
func TestMLMatchesGridOnTestbed3D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.5, 1.2, 0.9)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}

	gridLoc := core.NewLocator(core.Config{})
	mlLoc := gridLoc.WithEstimator(NewML(Config{}))

	gridRes, err := gridLoc.Locate3D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	mlRes, err := mlLoc.Locate3D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := mlRes.Position.DistanceTo(gridRes.Position); d > 0.10 {
		t.Errorf("ml and grid disagree by %.1f cm, want < 10 cm (ml %v grid %v)",
			d*100, mlRes.Position, gridRes.Position)
	}
	if mlRes.Confidence == nil || mlRes.Confidence.SigmaZM <= 0 {
		t.Errorf("ml 3D confidence missing or without σ_z: %+v", mlRes.Confidence)
	}
	if mlRes.Backend != "ml" {
		t.Errorf("backend = %q, want ml", mlRes.Backend)
	}
}

// TestMLAntennaWeighting checks the optional pattern weighting still
// recovers the target (it reweights, never silences, disks).
func TestMLAntennaWeighting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	target := geom.V3(-1.6, 1.2, 0)
	var etags []core.EstimatorTag
	for i, d := range defaultDisks(0) {
		etags = append(etags, synthTag(byte(i+1), d, target, 0.1, 160, rng))
	}
	plain, err := NewML(Config{}).Solve2D(etags)
	if err != nil {
		t.Fatal(err)
	}
	ant := antennaForTest()
	sol, err := NewML(Config{Antenna: &ant}).Solve2D(etags)
	if err != nil {
		t.Fatal(err)
	}
	// The disks subtend a small angle from the reader, so the pattern
	// weights are nearly equal and must not move the optimum much; and
	// reweighting must never silence a disk outright.
	if d := sol.Position.DistanceTo(plain.Position); d > 0.03 {
		t.Errorf("pattern weighting moved the fix by %.1f cm vs unweighted, want < 3 cm", d*100)
	}
	if d := sol.Position.DistanceTo(target.XY()); d > 0.10 {
		t.Errorf("pattern-weighted position error %.1f cm, want < 10 cm", d*100)
	}
}

// antennaForTest returns a directive panel for the weighting test.
func antennaForTest() antenna.Antenna {
	return antenna.Antenna{ID: 1, GainDBi: 8, PatternExponent: 2}
}

// TestMLSolve3DCoplanarTieKeepsAbovePlanes pins the mirror tie-break: with
// every disk in one plane the likelihood is exactly symmetric in z, so the
// "resolve by likelihood" rule has no evidence to go on and must fall back
// to the above-planes (dead-space) default instead of coin-flipping on
// optimizer noise — the failure mode that showed up as meter-scale mean
// error in the MLLocate3D bench sweep.
func TestMLSolve3DCoplanarTieKeepsAbovePlanes(t *testing.T) {
	ml := NewML(Config{Sigma: 0.1})
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		target := geom.V3(-1.5+0.3*float64(seed), 1.4, 0.5+0.1*float64(seed))
		var tags []core.EstimatorTag
		for i, disk := range defaultDisks(0) { // all disks at z = 0
			tags = append(tags, synthTag(byte(i+1), disk, target, 0.1, 160, rng))
		}
		sol, err := ml.Solve3D(tags)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Position.Z < 0 {
			t.Errorf("seed %d: coplanar tie resolved below the plane: z = %.3f (target %.3f)",
				seed, sol.Position.Z, target.Z)
		}
		if e := sol.Position.DistanceTo(target); e > 0.15 {
			t.Errorf("seed %d: position error %.1f cm", seed, e*100)
		}
	}
}
