package estimate

import (
	"math"
	"testing"
)

// quadratic is a well-conditioned test objective with a known minimum and
// Hessian: f(x) = Σ aᵢ·(xᵢ−cᵢ)², so ∇²f = diag(2a) and the covariance is
// diag(1/(2a)). Declared at package scope so the closure passed to the
// optimizer captures nothing per run.
var (
	quadA = [3]float64{3, 5, 7}
	quadC = [3]float64{0.3, -0.2, 0.8}
)

func quadratic(x []float64) float64 {
	var sum float64
	for i, v := range x {
		d := v - quadC[i]
		sum += quadA[i] * d * d
	}
	return sum
}

// TestOptimizerScratchCorrectness pins the pooled refactor's numerics:
// nelderMead must still land on the analytic minimum and covariance must
// return the analytic inverse Hessian, in both 2 and 3 dimensions.
func TestOptimizerScratchCorrectness(t *testing.T) {
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	for _, n := range []int{2, 3} {
		var x0, opt [3]float64
		x0 = [3]float64{1, 1, 1}
		val := nelderMead(quadratic, x0[:n], opt[:n], 500, s)
		for d := 0; d < n; d++ {
			if math.Abs(opt[d]-quadC[d]) > 1e-5 {
				t.Fatalf("n=%d: opt[%d] = %v, want %v", n, d, opt[d], quadC[d])
			}
		}
		if want := quadratic(opt[:n]); val != want {
			t.Fatalf("n=%d: returned value %v != f(opt) %v", n, val, want)
		}
		cov, ok := covariance(quadratic, opt[:n], s)
		if !ok {
			t.Fatalf("n=%d: covariance not ok on positive-definite quadratic", n)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := 0.0
				if a == b {
					want = 1 / (2 * quadA[a])
				}
				if math.Abs(cov[a][b]-want) > 1e-6 {
					t.Fatalf("n=%d: cov[%d][%d] = %v, want %v", n, a, b, cov[a][b], want)
				}
			}
		}
	}
}

// TestOptimizerScratchAllocFree is the alloc-regression pin for the pooled
// optimizer scratch: with a scratch in hand, a full refine + covariance
// round must not allocate. This is what keeps locsrv's per-request ML solves
// off the garbage collector once the pool is warm.
func TestOptimizerScratchAllocFree(t *testing.T) {
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	var x0, opt [3]float64
	allocs := testing.AllocsPerRun(50, func() {
		x0 = [3]float64{1, 1, 1}
		nelderMead(quadratic, x0[:], opt[:], 500, s)
		if _, ok := covariance(quadratic, opt[:], s); !ok {
			t.Fatal("covariance failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("refine+covariance allocated %.1f times per run, want 0", allocs)
	}
}
