// Package estimate implements the joint maximum-likelihood position backend:
// instead of collapsing each spinning tag's angle spectrum to a single peak
// and intersecting bearing lines (§V, the grid backend), it searches the
// reader position (x, y[, z]) directly and scores every candidate by the
// joint phase likelihood across *all* disks at once. Each disk's Q profile
// is a coherence measure — Q ≈ exp(−s²/2) for residual phase variance s² —
// so n·log Q is, up to a constant, the Gaussian log-likelihood of that
// disk's phase residuals, and summing over disks fuses the full shape of
// every spectrum rather than just its argmax.
//
// The search is seeded by the existing bearing solve and refined by
// Nelder–Mead; the Hessian of the negative log-likelihood at the optimum
// yields a position covariance and 1σ confidence ellipse. In 3D, both ±z
// mirror candidates (§V-B) are refined and the ambiguity is resolved by
// likelihood instead of policy: disks at different heights break the mirror
// symmetry, and the margin between the two likelihoods is reported.
package estimate

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/spectrum"
)

// qFloor clips the per-disk profile value before the log so a candidate that
// completely decoheres one disk (Q → 1/√n fluctuation floor) contributes a
// large-but-finite penalty instead of −Inf, keeping the refinement surface
// smooth enough for simplex steps and finite differences.
const qFloor = 1e-4

// hessianStep is the central-difference step (meters) for the Hessian at the
// optimum. The likelihood is built on exact-trig evaluators (noise ~1e-16),
// so 2 mm balances truncation against cancellation; it is also well inside
// the several-centimeter scale the likelihood varies on.
const hessianStep = 0.002

// mirrorMargin is the log-likelihood advantage the below-planes mirror
// candidate must show before it overrides the above-planes default. The Q
// profiles are exactly even in the polar angle, so with coplanar disks the
// two refined candidates tie up to optimizer wiggle and a bare comparison
// degenerates to a coin flip — flipping the sign of z on half the solves.
// Disks at distinct heights break the symmetry by far more than this margin
// (hundreds of log-units in the staggered-plane tests), while ties stay well
// under it, so 2 log-units (a ~7× likelihood ratio, the usual "substantial
// evidence" line) cleanly separates the two regimes.
const mirrorMargin = 2.0

// Config tunes the ML backend.
type Config struct {
	// Sigma is the assumed per-read phase noise (radians) that calibrates
	// the likelihood — and therefore the covariance. Zero means
	// spectrum.DefaultSigma.
	Sigma float64
	// Antenna, when non-nil, enables radiation-pattern weighting: the
	// pattern is evaluated from the seed position toward each disk center
	// and disks in the pattern's skirts are down-weighted (they carry less
	// SNR, so their spectra are noisier). Position and Boresight are
	// overridden per solve; only the pattern shape (GainDBi,
	// PatternExponent) is used.
	Antenna *antenna.Antenna
	// MaxIter bounds the Nelder–Mead iterations per refinement; zero
	// means 200.
	MaxIter int
}

// sigma returns the effective phase noise.
func (c Config) sigma() float64 {
	if c.Sigma <= 0 {
		return spectrum.DefaultSigma
	}
	return c.Sigma
}

// maxIter returns the effective iteration bound.
func (c Config) maxIter() int {
	if c.MaxIter <= 0 {
		return 200
	}
	return c.MaxIter
}

// ML is the joint maximum-likelihood estimator. It implements
// core.Estimator; construct with NewML and plug into core.Config.Estimator
// or Locator.WithEstimator. The zero Config is a good default.
type ML struct {
	cfg Config
}

// NewML builds the backend.
func NewML(cfg Config) *ML { return &ML{cfg: cfg} }

// Name implements core.Estimator.
func (*ML) Name() string { return "ml" }

// tagScene is one disk's contribution to the joint likelihood: an
// exact-trig Q evaluator over the tag's snapshots plus the fusion weight.
// Exact trig is deliberate — the fast kernel's ~1e-6 profile noise is far
// below any physical effect but would dominate the 4h² denominator of the
// finite-difference Hessian.
type tagScene struct {
	center geom.Vec3
	ev     *spectrum.Evaluator
	sc     *spectrum.Scratch
	w      float64
}

// scenes builds the per-disk evaluators for the live tags (Power > 0; dead
// tags carry no directional evidence, mirroring the grid backend's filter).
func (m *ML) scenes(tags []core.EstimatorTag) ([]*tagScene, []core.EstimatorTag, error) {
	live := make([]core.EstimatorTag, 0, len(tags))
	for _, t := range tags {
		if t.Est.Power > 0 && len(t.Snaps) > 0 {
			live = append(live, t)
		}
	}
	if len(live) < 2 {
		return nil, nil, fmt.Errorf("estimate: only %d of %d tags have a usable spectrum and snapshots: %w",
			len(live), len(tags), locate.ErrTooFewBearings)
	}
	sigma := m.cfg.sigma()
	out := make([]*tagScene, len(live))
	for i, t := range live {
		params := spectrum.Params{Disk: t.Tag.Disk, Sigma: sigma}
		ev, err := spectrum.NewEvaluator(t.Snaps, params, spectrum.KindQ)
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: tag %s: %w", t.Tag.EPC, err)
		}
		// n/σ²: n·log Q ≈ −½Σ(ε−ε̄)², so dividing by σ² makes the sum the
		// Gaussian log-likelihood kernel −½Σ((ε−ε̄)/σ)². That calibration
		// is what makes the Hessian the Fisher information and the 1σ
		// ellipse contain the truth at the nominal ≈39% rate.
		out[i] = &tagScene{
			center: t.Tag.Disk.Center,
			ev:     ev,
			sc:     ev.NewScratch(),
			w:      float64(len(t.Snaps)) / (sigma * sigma),
		}
	}
	return out, live, nil
}

// applyPatternWeights scales each scene's weight by the antenna pattern's
// linear gain from the seed position toward that disk, normalized to the
// best-lit disk and floored at 0.05 so no disk is silenced entirely.
func (m *ML) applyPatternWeights(seed geom.Vec3, scenes []*tagScene) {
	if m.cfg.Antenna == nil {
		return
	}
	ant := *m.cfg.Antenna
	ant.Position = seed
	var centroid geom.Vec3
	for _, s := range scenes {
		centroid = centroid.Add(s.center)
	}
	centroid = centroid.Scale(1 / float64(len(scenes)))
	ant.Boresight = centroid.Sub(seed).Azimuth()
	gains := make([]float64, len(scenes))
	maxGain := math.Inf(-1)
	for i, s := range scenes {
		gains[i] = math.Pow(10, ant.GainTowards(s.center)/10)
		if gains[i] > maxGain {
			maxGain = gains[i]
		}
	}
	for i, s := range scenes {
		w := gains[i] / maxGain
		if w < 0.05 {
			w = 0.05
		}
		s.w *= w
	}
}

// logL2D is the joint log-likelihood of a planar reader position: the
// candidate's azimuth toward each disk, evaluated on that disk's Q profile
// at γ = 0 (the grid 2D solve makes the same planar assumption).
func logL2D(scenes []*tagScene, p geom.Vec2) float64 {
	var sum float64
	for _, s := range scenes {
		d := p.Sub(s.center.XY())
		phi := math.Atan2(d.Y, d.X)
		q := s.ev.EvalAt(s.sc, phi, 0)
		if q < qFloor {
			q = qFloor
		}
		sum += s.w * math.Log(q)
	}
	return sum
}

// logL3D is the joint log-likelihood of a spatial reader position.
func logL3D(scenes []*tagScene, p geom.Vec3) float64 {
	var sum float64
	for _, s := range scenes {
		d := p.Sub(s.center)
		phi := math.Atan2(d.Y, d.X)
		gamma := math.Atan2(d.Z, math.Hypot(d.X, d.Y))
		q := s.ev.EvalAt(s.sc, phi, gamma)
		if q < qFloor {
			q = qFloor
		}
		sum += s.w * math.Log(q)
	}
	return sum
}

// Solve2D implements core.Estimator: seed from the bearing intersection,
// refine (x, y) by Nelder–Mead on the joint likelihood, report the
// covariance from the Hessian at the optimum.
func (m *ML) Solve2D(tags []core.EstimatorTag) (core.Solution2D, error) {
	scenes, live, err := m.scenes(tags)
	if err != nil {
		return core.Solution2D{}, err
	}
	bearings := make([]locate.Bearing2D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing2D{
			Origin:  t.Tag.Disk.Center.XY(),
			Azimuth: t.Est.Azimuth,
			Weight:  t.Est.Power,
		}
	}
	seed, err := locate.Solve2D(bearings)
	if err != nil {
		return core.Solution2D{}, err
	}
	m.applyPatternWeights(geom.V3(seed.X, seed.Y, 0), scenes)

	neg := func(x []float64) float64 { return -logL2D(scenes, geom.V2(x[0], x[1])) }
	opt, negL := nelderMead(neg, []float64{seed.X, seed.Y}, m.cfg.maxIter())
	pos := geom.V2(opt[0], opt[1])

	conf := &core.Confidence{LogLikelihood: -negL}
	if cov, ok := covariance(neg, opt); ok {
		conf.Cov[0][0], conf.Cov[0][1] = cov[0][0], cov[0][1]
		conf.Cov[1][0], conf.Cov[1][1] = cov[1][0], cov[1][1]
		fillEllipse(conf)
	}
	return core.Solution2D{Position: pos, Confidence: conf}, nil
}

// Solve3D implements core.Estimator: both ±z mirror candidates from the
// bearing solve are refined independently and the winner is chosen by
// likelihood — the evidence-based resolution of §V-B's ambiguity. The
// below-planes candidate must win by mirrorMargin: with exactly coplanar
// disks the two likelihoods tie (the geometry genuinely cannot distinguish
// the sides) and the above-planes candidate is kept, matching the paper's
// dead-space default.
func (m *ML) Solve3D(tags []core.EstimatorTag) (core.Solution3D, error) {
	scenes, live, err := m.scenes(tags)
	if err != nil {
		return core.Solution3D{}, err
	}
	bearings := make([]locate.Bearing3D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing3D{
			Origin:  t.Tag.Disk.Center,
			Azimuth: t.Est.Azimuth,
			Polar:   t.Est.Polar,
			Weight:  t.Est.Power,
		}
	}
	cands, err := locate.Solve3D(bearings, locate.Options3D{Policy: locate.ZKeepBoth})
	if err != nil {
		return core.Solution3D{}, err
	}
	m.applyPatternWeights(cands[0].Position, scenes)

	neg := func(x []float64) float64 { return -logL3D(scenes, geom.V3(x[0], x[1], x[2])) }
	type refined struct {
		x    []float64
		negL float64
		seed locate.Candidate
	}
	refs := make([]refined, len(cands))
	for i, c := range cands {
		x, negL := nelderMead(neg, []float64{c.Position.X, c.Position.Y, c.Position.Z}, m.cfg.maxIter())
		refs[i] = refined{x: x, negL: negL, seed: c}
	}
	best, mirror := refs[0], refs[1] // refs[0] is the above-planes candidate
	if mirror.negL < best.negL-mirrorMargin {
		best, mirror = mirror, best
	}

	conf := &core.Confidence{
		LogLikelihood:       -best.negL,
		MirrorLogLikelihood: -mirror.negL,
	}
	if cov, ok := covariance(neg, best.x); ok {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				conf.Cov[a][b] = cov[a][b]
			}
		}
		conf.SigmaZM = math.Sqrt(cov[2][2])
		fillEllipse(conf)
	}
	return core.Solution3D{
		Position:   geom.V3(best.x[0], best.x[1], best.x[2]),
		Mirror:     geom.V3(mirror.x[0], mirror.x[1], mirror.x[2]),
		ZSpread:    best.seed.ZSpread,
		Confidence: conf,
	}, nil
}

// fillEllipse derives the horizontal 1σ ellipse from the covariance's
// upper-left 2×2 block by eigendecomposition.
func fillEllipse(c *core.Confidence) {
	c11, c22, c12 := c.Cov[0][0], c.Cov[1][1], c.Cov[0][1]
	tr, diff := (c11+c22)/2, (c11-c22)/2
	disc := math.Sqrt(diff*diff + c12*c12)
	lMaj, lMin := tr+disc, tr-disc
	if lMaj < 0 {
		lMaj = 0
	}
	if lMin < 0 {
		lMin = 0
	}
	c.SemiMajorM = math.Sqrt(lMaj)
	c.SemiMinorM = math.Sqrt(lMin)
	c.OrientationRad = 0.5 * math.Atan2(2*c12, c11-c22)
}
