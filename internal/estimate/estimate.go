// Package estimate implements the joint maximum-likelihood position backend:
// instead of collapsing each spinning tag's angle spectrum to a single peak
// and intersecting bearing lines (§V, the grid backend), it searches the
// reader position (x, y[, z]) directly and scores every candidate by the
// joint phase likelihood across *all* disks at once. Each disk's Q profile
// is a coherence measure — Q ≈ exp(−s²/2) for residual phase variance s² —
// so n·log Q is, up to a constant, the Gaussian log-likelihood of that
// disk's phase residuals, and summing over disks fuses the full shape of
// every spectrum rather than just its argmax.
//
// The search is seeded by the existing bearing solve and refined by
// Nelder–Mead; the Hessian of the negative log-likelihood at the optimum
// yields a position covariance and 1σ confidence ellipse. In 3D, both ±z
// mirror candidates (§V-B) are refined and the ambiguity is resolved by
// likelihood instead of policy: disks at different heights break the mirror
// symmetry, and the margin between the two likelihoods is reported.
package estimate

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locate"
	"github.com/tagspin/tagspin/internal/spectrum"
)

// qFloor clips the per-disk profile value before the log so a candidate that
// completely decoheres one disk (Q → 1/√n fluctuation floor) contributes a
// large-but-finite penalty instead of −Inf, keeping the refinement surface
// smooth enough for simplex steps and finite differences.
const qFloor = 1e-4

// hessianStep is the central-difference step (meters) for the Hessian at the
// optimum. The likelihood is built on exact-trig evaluators (noise ~1e-16),
// so 2 mm balances truncation against cancellation; it is also well inside
// the several-centimeter scale the likelihood varies on.
const hessianStep = 0.002

// mirrorMargin is the log-likelihood advantage the below-planes mirror
// candidate must show before it overrides the above-planes default. The Q
// profiles are exactly even in the polar angle, so with coplanar disks the
// two refined candidates tie up to optimizer wiggle and a bare comparison
// degenerates to a coin flip — flipping the sign of z on half the solves.
// Disks at distinct heights break the symmetry by far more than this margin
// (hundreds of log-units in the staggered-plane tests), while ties stay well
// under it, so 2 log-units (a ~7× likelihood ratio, the usual "substantial
// evidence" line) cleanly separates the two regimes.
const mirrorMargin = 2.0

// Config tunes the ML backend.
type Config struct {
	// Sigma is the assumed per-read phase noise (radians) that calibrates
	// the likelihood — and therefore the covariance. Zero means
	// spectrum.DefaultSigma.
	Sigma float64
	// Antenna, when non-nil, enables radiation-pattern weighting: the
	// pattern is evaluated from the seed position toward each disk center
	// and disks in the pattern's skirts are down-weighted (they carry less
	// SNR, so their spectra are noisier). Position and Boresight are
	// overridden per solve; only the pattern shape (GainDBi,
	// PatternExponent) is used.
	Antenna *antenna.Antenna
	// MaxIter bounds the Nelder–Mead iterations per refinement; zero
	// means 200.
	MaxIter int
}

// sigma returns the effective phase noise.
func (c Config) sigma() float64 {
	if c.Sigma <= 0 {
		return spectrum.DefaultSigma
	}
	return c.Sigma
}

// maxIter returns the effective iteration bound.
func (c Config) maxIter() int {
	if c.MaxIter <= 0 {
		return 200
	}
	return c.MaxIter
}

// ML is the joint maximum-likelihood estimator. It implements
// core.Estimator; construct with NewML and plug into core.Config.Estimator
// or Locator.WithEstimator. The zero Config is a good default.
type ML struct {
	cfg Config
}

// NewML builds the backend.
func NewML(cfg Config) *ML { return &ML{cfg: cfg} }

// Name implements core.Estimator.
func (*ML) Name() string { return "ml" }

// sceneSet is the structure-of-arrays layout of the per-disk likelihood
// inputs: disk centers split into coordinate slices, fusion weights, and
// the evaluator/scratch handles in parallel arrays. The scoring loops run
// thousands of times per solve (every simplex trial and Hessian probe walks
// all disks), so the hot fields live in flat float64 slices the loop can
// stream with the bounds checks retired — the same layout rule the spectrum
// package applies to its term set. Exact trig is deliberate — the fast
// kernel's ~1e-6 profile noise is far below any physical effect but would
// dominate the 4h² denominator of the finite-difference Hessian.
type sceneSet struct {
	cx, cy, cz []float64 // disk centers, one coordinate per slice
	w          []float64 // fusion weight per disk
	evs        []*spectrum.Evaluator
	scs        []*spectrum.Scratch
}

// scenes builds the per-disk evaluators for the live tags (Power > 0; dead
// tags carry no directional evidence, mirroring the grid backend's filter).
func (m *ML) scenes(tags []core.EstimatorTag) (*sceneSet, []core.EstimatorTag, error) {
	live := make([]core.EstimatorTag, 0, len(tags))
	for _, t := range tags {
		if t.Est.Power > 0 && len(t.Snaps) > 0 {
			live = append(live, t)
		}
	}
	if len(live) < 2 {
		return nil, nil, fmt.Errorf("estimate: only %d of %d tags have a usable spectrum and snapshots: %w",
			len(live), len(tags), locate.ErrTooFewBearings)
	}
	sigma := m.cfg.sigma()
	n := len(live)
	coords := make([]float64, 4*n) // one backing array for cx/cy/cz/w
	set := &sceneSet{
		cx:  coords[0*n : 1*n],
		cy:  coords[1*n : 2*n],
		cz:  coords[2*n : 3*n],
		w:   coords[3*n : 4*n],
		evs: make([]*spectrum.Evaluator, n),
		scs: make([]*spectrum.Scratch, n),
	}
	for i, t := range live {
		params := spectrum.Params{Disk: t.Tag.Disk, Sigma: sigma}
		ev, err := spectrum.NewEvaluator(t.Snaps, params, spectrum.KindQ)
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: tag %s: %w", t.Tag.EPC, err)
		}
		c := t.Tag.Disk.Center
		set.cx[i], set.cy[i], set.cz[i] = c.X, c.Y, c.Z
		// n/σ²: n·log Q ≈ −½Σ(ε−ε̄)², so dividing by σ² makes the sum the
		// Gaussian log-likelihood kernel −½Σ((ε−ε̄)/σ)². That calibration
		// is what makes the Hessian the Fisher information and the 1σ
		// ellipse contain the truth at the nominal ≈39% rate.
		set.w[i] = float64(len(t.Snaps)) / (sigma * sigma)
		set.evs[i] = ev
		set.scs[i] = ev.NewScratch()
	}
	return set, live, nil
}

// applyPatternWeights scales each scene's weight by the antenna pattern's
// linear gain from the seed position toward that disk, normalized to the
// best-lit disk and floored at 0.05 so no disk is silenced entirely.
func (m *ML) applyPatternWeights(seed geom.Vec3, scenes *sceneSet) {
	if m.cfg.Antenna == nil {
		return
	}
	ant := *m.cfg.Antenna
	ant.Position = seed
	n := len(scenes.w)
	var centroid geom.Vec3
	for i := 0; i < n; i++ {
		centroid = centroid.Add(geom.V3(scenes.cx[i], scenes.cy[i], scenes.cz[i]))
	}
	centroid = centroid.Scale(1 / float64(n))
	ant.Boresight = centroid.Sub(seed).Azimuth()
	gains := make([]float64, n)
	maxGain := math.Inf(-1)
	for i := 0; i < n; i++ {
		gains[i] = math.Pow(10, ant.GainTowards(geom.V3(scenes.cx[i], scenes.cy[i], scenes.cz[i]))/10)
		if gains[i] > maxGain {
			maxGain = gains[i]
		}
	}
	for i := 0; i < n; i++ {
		w := gains[i] / maxGain
		if w < 0.05 {
			w = 0.05
		}
		scenes.w[i] *= w
	}
}

// logL2D is the joint log-likelihood of a planar reader position: the
// candidate's azimuth toward each disk, evaluated on that disk's Q profile
// at γ = 0 (the grid 2D solve makes the same planar assumption).
func logL2D(scenes *sceneSet, p geom.Vec2) float64 {
	cx := scenes.cx
	n := len(cx)
	cy := scenes.cy[:n]
	w := scenes.w[:n]
	evs := scenes.evs[:n]
	scs := scenes.scs[:n]
	var sum float64
	for i := 0; i < n; i++ {
		dx := p.X - cx[i]
		dy := p.Y - cy[i]
		phi := math.Atan2(dy, dx)
		q := evs[i].EvalAt(scs[i], phi, 0)
		if q < qFloor {
			q = qFloor
		}
		sum += w[i] * math.Log(q)
	}
	return sum
}

// logL3D is the joint log-likelihood of a spatial reader position.
func logL3D(scenes *sceneSet, p geom.Vec3) float64 {
	cx := scenes.cx
	n := len(cx)
	cy := scenes.cy[:n]
	cz := scenes.cz[:n]
	w := scenes.w[:n]
	evs := scenes.evs[:n]
	scs := scenes.scs[:n]
	var sum float64
	for i := 0; i < n; i++ {
		dx := p.X - cx[i]
		dy := p.Y - cy[i]
		dz := p.Z - cz[i]
		phi := math.Atan2(dy, dx)
		gamma := math.Atan2(dz, math.Hypot(dx, dy))
		q := evs[i].EvalAt(scs[i], phi, gamma)
		if q < qFloor {
			q = qFloor
		}
		sum += w[i] * math.Log(q)
	}
	return sum
}

// Solve2D implements core.Estimator: seed from the bearing intersection,
// refine (x, y) by Nelder–Mead on the joint likelihood, report the
// covariance from the Hessian at the optimum.
func (m *ML) Solve2D(tags []core.EstimatorTag) (core.Solution2D, error) {
	scenes, live, err := m.scenes(tags)
	if err != nil {
		return core.Solution2D{}, err
	}
	bearings := make([]locate.Bearing2D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing2D{
			Origin:  t.Tag.Disk.Center.XY(),
			Azimuth: t.Est.Azimuth,
			Weight:  t.Est.Power,
		}
	}
	seed, err := locate.Solve2D(bearings)
	if err != nil {
		return core.Solution2D{}, err
	}
	m.applyPatternWeights(geom.V3(seed.X, seed.Y, 0), scenes)

	neg := func(x []float64) float64 { return -logL2D(scenes, geom.V2(x[0], x[1])) }
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	x0 := [2]float64{seed.X, seed.Y}
	var opt [2]float64
	negL := nelderMead(neg, x0[:], opt[:], m.cfg.maxIter(), s)
	pos := geom.V2(opt[0], opt[1])

	conf := &core.Confidence{LogLikelihood: -negL}
	if cov, ok := covariance(neg, opt[:], s); ok {
		conf.Cov[0][0], conf.Cov[0][1] = cov[0][0], cov[0][1]
		conf.Cov[1][0], conf.Cov[1][1] = cov[1][0], cov[1][1]
		fillEllipse(conf)
	}
	return core.Solution2D{Position: pos, Confidence: conf}, nil
}

// Solve3D implements core.Estimator: both ±z mirror candidates from the
// bearing solve are refined independently and the winner is chosen by
// likelihood — the evidence-based resolution of §V-B's ambiguity. The
// below-planes candidate must win by mirrorMargin: with exactly coplanar
// disks the two likelihoods tie (the geometry genuinely cannot distinguish
// the sides) and the above-planes candidate is kept, matching the paper's
// dead-space default.
func (m *ML) Solve3D(tags []core.EstimatorTag) (core.Solution3D, error) {
	scenes, live, err := m.scenes(tags)
	if err != nil {
		return core.Solution3D{}, err
	}
	bearings := make([]locate.Bearing3D, len(live))
	for i, t := range live {
		bearings[i] = locate.Bearing3D{
			Origin:  t.Tag.Disk.Center,
			Azimuth: t.Est.Azimuth,
			Polar:   t.Est.Polar,
			Weight:  t.Est.Power,
		}
	}
	cands, err := locate.Solve3D(bearings, locate.Options3D{Policy: locate.ZKeepBoth})
	if err != nil {
		return core.Solution3D{}, err
	}
	m.applyPatternWeights(cands[0].Position, scenes)

	neg := func(x []float64) float64 { return -logL3D(scenes, geom.V3(x[0], x[1], x[2])) }
	s := optPool.Get().(*optScratch)
	defer optPool.Put(s)
	type refined struct {
		x    [3]float64 // by value: the simplex lives in the shared scratch
		negL float64
		seed locate.Candidate
	}
	refs := make([]refined, len(cands))
	for i, c := range cands {
		x0 := [3]float64{c.Position.X, c.Position.Y, c.Position.Z}
		refs[i].negL = nelderMead(neg, x0[:], refs[i].x[:], m.cfg.maxIter(), s)
		refs[i].seed = c
	}
	best, mirror := refs[0], refs[1] // refs[0] is the above-planes candidate
	if mirror.negL < best.negL-mirrorMargin {
		best, mirror = mirror, best
	}

	conf := &core.Confidence{
		LogLikelihood:       -best.negL,
		MirrorLogLikelihood: -mirror.negL,
	}
	if cov, ok := covariance(neg, best.x[:], s); ok {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				conf.Cov[a][b] = cov[a][b]
			}
		}
		conf.SigmaZM = math.Sqrt(cov[2][2])
		fillEllipse(conf)
	}
	return core.Solution3D{
		Position:   geom.V3(best.x[0], best.x[1], best.x[2]),
		Mirror:     geom.V3(mirror.x[0], mirror.x[1], mirror.x[2]),
		ZSpread:    best.seed.ZSpread,
		Confidence: conf,
	}, nil
}

// fillEllipse derives the horizontal 1σ ellipse from the covariance's
// upper-left 2×2 block by eigendecomposition.
func fillEllipse(c *core.Confidence) {
	c11, c22, c12 := c.Cov[0][0], c.Cov[1][1], c.Cov[0][1]
	tr, diff := (c11+c22)/2, (c11-c22)/2
	disc := math.Sqrt(diff*diff + c12*c12)
	lMaj, lMin := tr+disc, tr-disc
	if lMaj < 0 {
		lMaj = 0
	}
	if lMin < 0 {
		lMin = 0
	}
	c.SemiMajorM = math.Sqrt(lMaj)
	c.SemiMinorM = math.Sqrt(lMin)
	c.OrientationRad = 0.5 * math.Atan2(2*c12, c11-c22)
}
