package locsrv_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

// admissionFixture builds a 1-slot server whose collector blocks until
// released, so a test can hold the only admission slot occupied at will.
func admissionFixture(t *testing.T) (*httptest.Server, *locsrv.Server, chan struct{}, chan struct{}) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sc := testbed.DefaultScenario(0, rng)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	entered := make(chan struct{}, 8) // signals a collect has started
	release := make(chan struct{})    // closed to let collects finish
	srv, err := locsrv.New(locsrv.Config{
		Registry:     reg,
		MaxInFlight:  1,
		FastSpectrum: true,
		Collect: func(ctx context.Context, _ string, _ client.Config) (core.Observations, error) {
			entered <- struct{}{}
			select {
			case <-release:
				return col.Obs, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, entered, release
}

// TestAdmissionControl pins the shed-load path: with MaxInFlight=1 and the
// single slot occupied, further locate and locate-batch requests get an
// immediate 503 with a Retry-After hint (distinct from the 504 deadline
// path), the reject counter increments, and once the slot frees the same
// request succeeds.
func TestAdmissionControl(t *testing.T) {
	ts, srv, entered, release := admissionFixture(t)

	var wg sync.WaitGroup
	wg.Add(1)
	firstStatus := 0
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/locate", "application/json",
			strings.NewReader(`{"readerAddr":"sim"}`))
		if err != nil {
			return
		}
		firstStatus = resp.StatusCode
		resp.Body.Close()
	}()
	<-entered // the slot-holder is inside its collect

	for _, path := range []string{"/v1/locate", "/v1/locate-batch"} {
		var body any = locsrv.LocateRequest{ReaderAddr: "sim"}
		if path == "/v1/locate-batch" {
			body = locsrv.BatchRequest{Requests: []locsrv.LocateRequest{{ReaderAddr: "sim"}}}
		}
		resp := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while saturated: status %d, want 503", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got == "" {
			t.Errorf("%s 503 missing Retry-After header", path)
		}
	}
	if st := srv.Stats(); st.AdmissionRejects != 2 || st.InFlight != 1 || st.MaxInFlight != 1 {
		t.Errorf("Stats after rejects = %+v, want 2 rejects and 1/1 in flight", st)
	}

	close(release)
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Fatalf("slot-holding request finished with %d, want 200", firstStatus)
	}

	// Slot free again: the previously shed request now succeeds.
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "sim"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-saturation locate: status %d, want 200", resp.StatusCode)
	}
	st := srv.Stats()
	if st.Locates != 2 || st.AdmissionRejects != 2 {
		t.Errorf("final Stats = %+v, want Locates=2 AdmissionRejects=2", st)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all requests done, want 0", st.InFlight)
	}
}

// TestAdmissionDisabled pins the negative sentinel: MaxInFlight < 0 turns
// admission control off entirely.
func TestAdmissionDisabled(t *testing.T) {
	reg := registry.New()
	srv, err := locsrv.New(locsrv.Config{
		Registry:    reg,
		MaxInFlight: -1,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return nil, errors.New("no reader")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "sim"})
	if resp.StatusCode == http.StatusServiceUnavailable {
		t.Error("admission rejection with MaxInFlight=-1")
	}
	if st := srv.Stats(); st.MaxInFlight != 0 || st.AdmissionRejects != 0 {
		t.Errorf("Stats = %+v, want no admission accounting when disabled", st)
	}
}
