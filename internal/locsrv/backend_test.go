package locsrv_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

// backendFixture is fixture with the *locsrv.Server exposed for Stats.
func backendFixture(t *testing.T) (*httptest.Server, *locsrv.Server, geom.Vec3) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.7, 1.3, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(_ context.Context, _ string, _ client.Config) (core.Observations, error) {
			return col.Obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, target
}

func TestLocateMLBackend(t *testing.T) {
	ts, srv, target := backendFixture(t)

	grid := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if grid.StatusCode != http.StatusOK {
		t.Fatalf("grid status = %d", grid.StatusCode)
	}
	var gridOut locsrv.LocateResponse
	if err := json.NewDecoder(grid.Body).Decode(&gridOut); err != nil {
		t.Fatal(err)
	}
	if gridOut.Backend != "grid" {
		t.Errorf("default backend = %q, want grid", gridOut.Backend)
	}
	if gridOut.Confidence != nil {
		t.Errorf("grid response carries confidence")
	}

	ml := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Backend: "ml"})
	if ml.StatusCode != http.StatusOK {
		t.Fatalf("ml status = %d", ml.StatusCode)
	}
	var mlOut locsrv.LocateResponse
	if err := json.NewDecoder(ml.Body).Decode(&mlOut); err != nil {
		t.Fatal(err)
	}
	if mlOut.Backend != "ml" {
		t.Errorf("backend = %q, want ml", mlOut.Backend)
	}
	if mlOut.Confidence == nil {
		t.Fatal("ml response has no confidence block")
	}
	if mlOut.Confidence.SemiMajorM <= 0 || mlOut.Confidence.SemiMinorM <= 0 {
		t.Errorf("degenerate ellipse: %+v", mlOut.Confidence)
	}
	if mlOut.Confidence.LogLikelihood >= 0 {
		t.Errorf("logLikelihood = %v, want negative", mlOut.Confidence.LogLikelihood)
	}
	got := geom.V2(mlOut.Position[0], mlOut.Position[1])
	if e := got.DistanceTo(target.XY()); e > 0.15 {
		t.Errorf("ml 2D error %.1f cm", e*100)
	}
	gridPos := geom.V2(gridOut.Position[0], gridOut.Position[1])
	if d := got.DistanceTo(gridPos); d > 0.05 {
		t.Errorf("ml and grid disagree by %.1f cm over the same observations", d*100)
	}

	st := srv.Stats()
	if st.Locates != 2 {
		t.Errorf("Locates = %d, want 2", st.Locates)
	}
	if st.MLLocates != 1 {
		t.Errorf("MLLocates = %d, want 1", st.MLLocates)
	}
}

func TestLocateML3DConfidence(t *testing.T) {
	ts, _, _ := backendFixture(t)
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Mode: "3d", Backend: "ml"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Confidence == nil {
		t.Fatal("no confidence block")
	}
	if out.Confidence.SigmaZM <= 0 {
		t.Errorf("sigmaZM = %v, want > 0", out.Confidence.SigmaZM)
	}
	// The fixture's disks are coplanar, so the two mirror likelihoods tie;
	// the chosen (above-planes) candidate may trail the mirror by up to the
	// estimator's tie-break margin, but never meaningfully more.
	if out.Confidence.LogLikelihood < out.Confidence.MirrorLogLikelihood-2.5 {
		t.Errorf("selected likelihood %v below mirror %v",
			out.Confidence.LogLikelihood, out.Confidence.MirrorLogLikelihood)
	}
	if out.Mirror == nil {
		t.Errorf("3D response lost the mirror candidate")
	}
}

func TestLocateUnknownBackendRejected(t *testing.T) {
	ts, srv, _ := backendFixture(t)
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Backend: "banana"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	if st := srv.Stats(); st.MLLocates != 0 {
		t.Errorf("MLLocates = %d after rejected request, want 0", st.MLLocates)
	}
}
