package locsrv_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

// collectFixture builds a registry and canned observations for servers whose
// collector is substituted per test.
func collectFixture(t *testing.T) (*registry.Registry, core.Observations) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.7, 1.3, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	return reg, col.Obs
}

// TestDeadlineStatusTaxonomy pins the 499-vs-504 split the coordinator's
// reroute logic keys on: a server deadline (DeadlineExceeded) is 504 and
// reroutable, a vanished client (Canceled) is 499 and must not be rerouted.
// Client-initiated cancellation used to masquerade as 504.
func TestDeadlineStatusTaxonomy(t *testing.T) {
	reg, _ := collectFixture(t)
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"server deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"client gone", fmt.Errorf("client: collect aborted: %w", context.Canceled), locsrv.StatusClientClosedRequest},
		{"plain failure", fmt.Errorf("boom"), http.StatusBadGateway},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := locsrv.New(locsrv.Config{
				Registry: reg,
				Collect: func(context.Context, string, client.Config) (core.Observations, error) {
					return nil, tc.err
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestDrainShedsNewFinishesInFlight pins the drain sequence a replica runs
// on SIGTERM: after Drain(), healthz fails (so a coordinator health-trips
// the replica), new locates are shed with 503 + Retry-After, and requests
// already in flight complete successfully — zero drops.
func TestDrainShedsNewFinishesInFlight(t *testing.T) {
	reg, obs := collectFixture(t)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(ctx context.Context, _ string, _ client.Config) (core.Observations, error) {
			once.Do(func() { close(inFlight) })
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		done <- outcome{status: resp.StatusCode}
	}()
	<-inFlight
	srv.Drain()

	// Health fails so the coordinator stops routing here.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hresp.StatusCode)
	}
	// New work is shed with the backpressure shape clients already know.
	sresp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining locate = %d, want 503", sresp.StatusCode)
	}
	if sresp.Header.Get("Retry-After") == "" {
		t.Error("draining shed carries no Retry-After hint")
	}
	// The in-flight request still completes.
	close(release)
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("in-flight locate failed during drain: %v", out.err)
		}
		if out.status != http.StatusOK {
			t.Errorf("in-flight locate = %d, want 200", out.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight locate never completed")
	}
	st := srv.Stats()
	if !st.Draining {
		t.Error("Stats.Draining = false after Drain")
	}
	if st.AdmissionRejects == 0 {
		t.Error("drain shed not counted in AdmissionRejects")
	}
}

// TestStatsEndpoint verifies the coordinator-facing /v1/stats rollup source:
// the counter snapshot is served as JSON on the API listener.
func TestStatsEndpoint(t *testing.T) {
	reg, obs := collectFixture(t)
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate = %d", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st locsrv.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Locates != 1 {
		t.Errorf("stats locates = %d, want 1", st.Locates)
	}
	if st.Draining {
		t.Error("fresh server reports draining")
	}
}
