package locsrv_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/readersim"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

func TestNegativeDurationRejected(t *testing.T) {
	ts, _ := fixture(t)
	req := locsrv.LocateRequest{ReaderAddr: "reader:5084", DurationMillis: -5}
	if resp := postJSON(t, ts.URL+"/v1/locate", req); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative duration status = %d, want 400", resp.StatusCode)
	}
	// Batch items share locateOne, so the same request must fail inside the
	// item rather than run with the config default.
	bresp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{
		Requests: []locsrv.LocateRequest{req},
	})
	var out locsrv.BatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Error == "" || !strings.Contains(out.Items[0].Error, "durationMillis") {
		t.Errorf("batch item = %+v, want durationMillis error", out.Items[0])
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	reg := registry.New()
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			panic("collector exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "x"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("panic response is not the JSON error envelope: %v", err)
	}
	if !strings.Contains(body.Error, "internal error") {
		t.Errorf("error body = %q", body.Error)
	}
	// The server must still be alive for the next request.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", hresp.StatusCode)
	}
}

// startSimReader brings up a fault-configurable simulated reader for the
// scenario and returns its address.
func startSimReader(t *testing.T, sc *testbed.Scenario, faults readersim.Faults) string {
	t.Helper()
	r, err := readersim.New(readersim.Config{World: sc, TimeScale: 400, Seed: 3, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(l)                   //nolint:errcheck // closed via r.Close
	t.Cleanup(func() { r.Close() }) //nolint:errcheck // best-effort
	return l.Addr().String()
}

// TestRequestTimeoutCancelsStalledBatchItem is the acceptance scenario: a
// batch where one real reader stalls before ROSpecDone and one behaves. The
// server's RequestTimeout must fail the stalled item in ≪ the 30 s client
// wall-clock budget while the healthy item still localizes.
func TestRequestTimeoutCancelsStalledBatchItem(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(1.6, 1.2, 0)
	sc.PlaceReader(target)
	calibrated, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range calibrated {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	goodAddr := startSimReader(t, sc, readersim.Faults{})
	stallAddr := startSimReader(t, sc, readersim.Faults{StallBeforeDone: true})

	srv, err := locsrv.New(locsrv.Config{
		Registry:       reg,
		RequestTimeout: 3 * time.Second,
		// Both items must run concurrently even on a single-core box, or
		// the stalled item would pin the only slot until the deadline.
		BatchConcurrency: 2,
		// Real network client (no canned collector): the stall is a live
		// TCP connection that never completes, the timeout must cut it.
		Client: client.Config{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{
		Requests: []locsrv.LocateRequest{
			{ReaderAddr: goodAddr, DurationMillis: 4000},
			{ReaderAddr: stallAddr, DurationMillis: 4000},
		},
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Error != "" || out.Items[0].Result == nil {
		t.Errorf("healthy item failed: %+v", out.Items[0])
	} else {
		got := geom.V2(out.Items[0].Result.Position[0], out.Items[0].Result.Position[1])
		if e := got.DistanceTo(target.XY()); e > 0.20 {
			t.Errorf("healthy item error %.1f cm", e*100)
		}
	}
	if out.Items[1].Error == "" || out.Items[1].Result != nil {
		t.Errorf("stalled item should fail: %+v", out.Items[1])
	}
	// ≪ the 30 s client timeout: the request deadline (3 s) governs.
	if elapsed > 15*time.Second {
		t.Errorf("batch took %v; stalled reader pinned it past the request deadline", elapsed)
	}
}

// TestClientDisconnectCancelsCollect verifies the tentpole wiring: killing
// the HTTP request propagates ctx cancellation into the collector.
func TestClientDisconnectCancelsCollect(t *testing.T) {
	reg := registry.New()
	started := make(chan struct{})
	canceled := make(chan struct{})
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(ctx context.Context, _ string, _ client.Config) (core.Observations, error) {
			close(started)
			select {
			case <-ctx.Done():
				close(canceled)
				return nil, ctx.Err()
			case <-time.After(20 * time.Second):
				return nil, errors.New("request context never canceled")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/locate",
		strings.NewReader(`{"readerAddr":"reader:5084"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("collect never started")
	}
	cancel() // client walks away mid-collect
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("collect did not observe the disconnect")
	}
	<-errc // the aborted request errors; only the cancellation mattered
}
