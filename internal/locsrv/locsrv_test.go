package locsrv_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/readersim"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// fixture builds a server whose collector replays a canned simulated
// session, plus the scenario ground truth.
func fixture(t *testing.T) (*httptest.Server, geom.Vec3) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.7, 1.3, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(_ context.Context, addr string, _ client.Config) (core.Observations, error) {
			if addr == "fail" {
				return nil, errors.New("boom")
			}
			return col.Obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, target
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestNewValidation(t *testing.T) {
	if _, err := locsrv.New(locsrv.Config{}); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := fixture(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestLocate2DEndpoint(t *testing.T) {
	ts, target := fixture(t)
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := geom.V2(out.Position[0], out.Position[1])
	if e := got.DistanceTo(target.XY()); e > 0.15 {
		t.Errorf("2D error %.1f cm", e*100)
	}
	if len(out.Bearings) != 2 {
		t.Errorf("bearings = %d", len(out.Bearings))
	}
	for _, b := range out.Bearings {
		if b.Snapshots == 0 || b.EPC == "" {
			t.Errorf("bearing = %+v", b)
		}
	}
}

func TestLocate3DEndpoint(t *testing.T) {
	ts, _ := fixture(t)
	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Mode: "3d"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Mirror == nil {
		t.Fatal("3D response missing mirror candidate")
	}
	if math.Abs(out.Position[2]) != math.Abs((*out.Mirror)[2]) {
		t.Errorf("mirror z %v does not mirror %v", (*out.Mirror)[2], out.Position[2])
	}
}

func TestLocateErrors(t *testing.T) {
	ts, _ := fixture(t)
	// Missing reader address.
	if resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing addr status = %d", resp.StatusCode)
	}
	// Unknown mode.
	if resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "x", Mode: "4d"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode status = %d", resp.StatusCode)
	}
	// Collector failure maps to 502.
	if resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "fail"}); resp.StatusCode != http.StatusBadGateway {
		t.Errorf("collect failure status = %d", resp.StatusCode)
	}
	// Garbage body.
	resp, err := http.Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status = %d", resp.StatusCode)
	}
}

func TestTagCRUD(t *testing.T) {
	reg := registry.New()
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return nil, errors.New("unused")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entry := registry.Entry{
		EPC:            "000000000000000000000001",
		Center:         [3]float64{-0.25, 0, 0},
		RadiusM:        0.10,
		OmegaRadPerSec: math.Pi,
	}
	if resp := postJSON(t, ts.URL+"/v1/tags", entry); resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	// Duplicate add conflicts.
	if resp := postJSON(t, ts.URL+"/v1/tags", entry); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d", resp.StatusCode)
	}
	// List sees it.
	resp, err := http.Get(ts.URL + "/v1/tags")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []registry.Entry
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].EPC != entry.EPC {
		t.Errorf("list = %+v", list)
	}
	// Delete.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tags/"+entry.EPC, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete status = %d", dresp.StatusCode)
	}
	if reg.Len() != 0 {
		t.Errorf("registry still has %d entries", reg.Len())
	}
	// Delete again: 404.
	req2, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tags/"+entry.EPC, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Errorf("second delete status = %d", dresp2.StatusCode)
	}
}

// TestFullStack wires the real network client to a real simulated reader:
// HTTP request → locsrv → LLRP/TCP → readersim → channel model → pipeline.
func TestFullStack(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(1.9, 1.1, 0)
	sc.PlaceReader(target)

	reader, err := readersim.New(readersim.Config{World: sc, TimeScale: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go reader.Serve(l) //nolint:errcheck // closed via reader.Close
	defer reader.Close()

	calibrated, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range calibrated {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := locsrv.New(locsrv.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{
		ReaderAddr:     l.Addr().String(),
		DurationMillis: 4000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := geom.V2(out.Position[0], out.Position[1])
	if e := got.DistanceTo(target.XY()); e > 0.20 {
		t.Errorf("full-stack 2D error %.1f cm", e*100)
	}
}

func TestLocateBatch(t *testing.T) {
	ts, target := fixture(t)
	resp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{
		Requests: []locsrv.LocateRequest{
			{ReaderAddr: "reader-a:5084"},
			{ReaderAddr: "fail"},
			{ReaderAddr: "reader-b:5084", Mode: "3d"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("items = %d", len(out.Items))
	}
	// Item order matches request order.
	if out.Items[0].ReaderAddr != "reader-a:5084" || out.Items[0].Result == nil {
		t.Errorf("item 0 = %+v", out.Items[0])
	}
	got := geom.V2(out.Items[0].Result.Position[0], out.Items[0].Result.Position[1])
	if e := got.DistanceTo(target.XY()); e > 0.15 {
		t.Errorf("batch item 0 error %.1f cm", e*100)
	}
	if out.Items[1].Error == "" || out.Items[1].Result != nil {
		t.Errorf("item 1 should carry the collect failure: %+v", out.Items[1])
	}
	if out.Items[2].Result == nil || out.Items[2].Result.Mirror == nil {
		t.Errorf("item 2 should be a 3D result: %+v", out.Items[2])
	}
}

// TestLocateBatchBounded drives a full-size batch of 64 through a canned
// collector that records its own concurrency, and asserts the semaphore
// keeps the in-flight count at the configured bound. Run under -race it is
// also the data-race test for the batch fan-out.
func TestLocateBatchBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.7, 1.3, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	const bound = 4
	var inflight, peak, calls atomic.Int64
	srv, err := locsrv.New(locsrv.Config{
		Registry:         reg,
		BatchConcurrency: bound,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			calls.Add(1)
			n := inflight.Add(1)
			defer inflight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // widen the overlap window
			return col.Obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := locsrv.BatchRequest{Requests: make([]locsrv.LocateRequest, 64)}
	for i := range batch.Requests {
		batch.Requests[i].ReaderAddr = "reader:5084"
	}
	resp := postJSON(t, ts.URL+"/v1/locate-batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 64 {
		t.Fatalf("items = %d", len(out.Items))
	}
	for i, item := range out.Items {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d failed: %+v", i, item)
		}
	}
	if got := calls.Load(); got != 64 {
		t.Errorf("collector called %d times, want 64", got)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrency %d exceeds bound %d", p, bound)
	}
}

// TestLocateSingleMatchesBatchErrors pins the de-duplicated locate path:
// the single endpoint's error body and a batch item's error string must be
// the same text for the same invalid request — the drift this guards
// against is exactly what having two copies of the handler caused.
func TestLocateSingleMatchesBatchErrors(t *testing.T) {
	ts, _ := fixture(t)
	for _, req := range []locsrv.LocateRequest{
		{},                            // missing readerAddr
		{ReaderAddr: "x", Mode: "9d"}, // unknown mode
		{ReaderAddr: "fail"},          // collector failure
	} {
		resp := postJSON(t, ts.URL+"/v1/locate", req)
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var single struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &single); err != nil {
			t.Fatalf("single response %q: %v", body, err)
		}
		bresp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{
			Requests: []locsrv.LocateRequest{req},
		})
		var batch locsrv.BatchResponse
		if err := json.NewDecoder(bresp.Body).Decode(&batch); err != nil {
			t.Fatal(err)
		}
		if single.Error == "" || batch.Items[0].Error != single.Error {
			t.Errorf("request %+v: single error %q != batch error %q",
				req, single.Error, batch.Items[0].Error)
		}
	}
}

func TestLocateBatchValidation(t *testing.T) {
	ts, _ := fixture(t)
	if resp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", resp.StatusCode)
	}
	big := locsrv.BatchRequest{Requests: make([]locsrv.LocateRequest, 65)}
	for i := range big.Requests {
		big.Requests[i].ReaderAddr = "x"
	}
	if resp := postJSON(t, ts.URL+"/v1/locate-batch", big); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d", resp.StatusCode)
	}
	// Per-item validation failures surface inside items, not as HTTP errors.
	resp := postJSON(t, ts.URL+"/v1/locate-batch", locsrv.BatchRequest{
		Requests: []locsrv.LocateRequest{{}, {ReaderAddr: "x", Mode: "9d"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Error == "" || out.Items[1].Error == "" {
		t.Errorf("invalid items should carry errors: %+v", out.Items)
	}
}

// TestSearchOptionsPlumbing pins that Config.Search reaches the default
// locator: a server built with a non-default search configuration must
// return exactly what a core.Locator carrying the same core.Config returns
// over the same canned observations. A dropped Search field would fall back
// to the default coarse grid and (almost surely) different refined bits.
func TestSearchOptionsPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.7, 1.3, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	search := spectrum.SearchOptions{
		CoarseStep:   geom.Radians(2),
		Hierarchical: spectrum.ToggleOff,
		HarmonicEval: spectrum.ToggleOff,
	}
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Search:   search,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return col.Obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	want, err := core.NewLocator(core.Config{Search: search}).Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Position[0] != want.Position.X || out.Position[1] != want.Position.Y {
		t.Errorf("server position %v != direct locator %v", out.Position, want.Position)
	}
	if e := geom.V2(out.Position[0], out.Position[1]).DistanceTo(target.XY()); e > 0.15 {
		t.Errorf("2D error %.1f cm", e*100)
	}
}
