package locsrv_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// streamFixture builds the canned scenario the streaming server tests share.
func streamFixture(t *testing.T) (*registry.Registry, core.Observations, geom.Vec3) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(-1.7, 1.3, 0)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, st := range registered {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			t.Fatal(err)
		}
	}
	return reg, col.Obs, target
}

// streamObs feeds obs to sink in global time order, as a live session would.
func streamObs(obs core.Observations, sink client.ReportFunc) {
	type item struct {
		epc  tags.EPC
		snap phase.Snapshot
	}
	var items []item
	for epc, snaps := range obs {
		for _, s := range snaps {
			items = append(items, item{epc, s})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].snap.Time < items[j].snap.Time })
	for _, it := range items {
		sink(it.epc, it.snap)
	}
}

func locateBody(t *testing.T, resp *http.Response) locsrv.LocateResponse {
	t.Helper()
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLocateStreamingEndpoint runs a locate through a canned streaming
// collector and checks the response matches the batch pipeline bit for bit,
// with the streaming counters accounting for the session.
func TestLocateStreamingEndpoint(t *testing.T) {
	reg, obs, _ := streamFixture(t)
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		CollectStream: func(_ context.Context, _ string, _ client.Config, start func() client.ReportFunc) (core.Observations, error) {
			streamObs(obs, start())
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tsBatch := httptest.NewServer(batch.Handler())
	defer tsBatch.Close()

	for _, mode := range []string{"2d", "3d"} {
		resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Mode: mode})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", mode, resp.StatusCode)
		}
		respBatch := postJSON(t, tsBatch.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084", Mode: mode})
		if respBatch.StatusCode != http.StatusOK {
			t.Fatalf("%s batch status = %d", mode, respBatch.StatusCode)
		}
		got, want := locateBody(t, resp), locateBody(t, respBatch)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s streamed response differs from batch:\n got %+v\nwant %+v", mode, got, want)
		}
	}

	st := srv.Stats()
	if st.StreamLocates != 2 {
		t.Errorf("StreamLocates = %d, want 2", st.StreamLocates)
	}
	if st.StreamFallbackTags != 0 {
		t.Errorf("StreamFallbackTags = %d, want 0", st.StreamFallbackTags)
	}
	if st.SnapshotsStreamed == 0 {
		t.Error("SnapshotsStreamed = 0")
	}
	if st.FinalizeCount != 2 || st.FinalizeNsTotal <= 0 {
		t.Errorf("FinalizeCount = %d, FinalizeNsTotal = %d", st.FinalizeCount, st.FinalizeNsTotal)
	}
	if bs := batch.Stats(); bs.StreamLocates != 0 {
		t.Errorf("batch server StreamLocates = %d, want 0", bs.StreamLocates)
	}
}

// TestLocateStreamingRetryResets simulates a transient collection failure:
// the collector streams a disordered partial prefix, fails, and retries with
// a fresh sink. The retry's reset must discard the poisoned prefix so every
// tag still streams cleanly.
func TestLocateStreamingRetryResets(t *testing.T) {
	reg, obs, target := streamFixture(t)
	attempts := 0
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		CollectStream: func(_ context.Context, _ string, _ client.Config, start func() client.ReportFunc) (core.Observations, error) {
			// Attempt 1: disordered partial prefix, then failure.
			sink := start()
			attempts++
			for epc, snaps := range obs {
				for i := len(snaps) - 1; i >= 0 && i > len(snaps)-5; i-- {
					sink(epc, snaps[i])
				}
			}
			// Attempt 2: fresh sink, clean full session.
			sink = start()
			attempts++
			streamObs(obs, sink)
			return obs, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := locateBody(t, resp)
	if e := geom.V2(out.Position[0], out.Position[1]).DistanceTo(target.XY()); e > 0.15 {
		t.Errorf("2D error %.1f cm", e*100)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if st := srv.Stats(); st.StreamFallbackTags != 0 {
		t.Errorf("StreamFallbackTags = %d, want 0 after reset", st.StreamFallbackTags)
	}
}

// TestLocateStreamingTimeout stalls the streaming collector past
// RequestTimeout and expects the 504 deadline mapping on the stream path.
func TestLocateStreamingTimeout(t *testing.T) {
	reg, _, _ := streamFixture(t)
	srv, err := locsrv.New(locsrv.Config{
		Registry:       reg,
		RequestTimeout: 50 * time.Millisecond,
		CollectStream: func(ctx context.Context, _ string, _ client.Config, start func() client.ReportFunc) (core.Observations, error) {
			start()
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
}

// TestDisableStreaming checks the escape hatch: with DisableStreaming set,
// the canned streaming collector is never consulted and the plain collector
// serves the batch pipeline.
func TestDisableStreaming(t *testing.T) {
	reg, obs, _ := streamFixture(t)
	srv, err := locsrv.New(locsrv.Config{
		Registry:         reg,
		DisableStreaming: true,
		Collect: func(context.Context, string, client.Config) (core.Observations, error) {
			return obs, nil
		},
		CollectStream: func(context.Context, string, client.Config, func() client.ReportFunc) (core.Observations, error) {
			return nil, errors.New("streaming collector used despite DisableStreaming")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/locate", locsrv.LocateRequest{ReaderAddr: "reader:5084"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st := srv.Stats(); st.StreamLocates != 0 {
		t.Errorf("StreamLocates = %d, want 0", st.StreamLocates)
	}
}
