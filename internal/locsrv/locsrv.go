// Package locsrv is the central localization server of the Tagspin
// deployment (§II): it owns the spinning-tag registry, collects phase
// snapshots from readers over the wire protocol, runs the localization
// pipeline, and exposes an HTTP/JSON control API.
package locsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/estimate"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/sched"
	"github.com/tagspin/tagspin/internal/spectrum"
)

// CollectFunc gathers snapshots from a reader; it exists so tests can
// substitute a canned collector for the real network client. The context is
// the (possibly deadline-bounded) request context: implementations must
// return promptly once it is done.
type CollectFunc func(ctx context.Context, addr string, cfg client.Config) (core.Observations, error)

// CollectStreamFunc is CollectFunc with per-report streaming: start is
// invoked once per collection attempt and returns the sink that attempt
// feeds (see client.CollectRetryStream). Tests can substitute a canned
// streaming collector; the default is the real network client.
type CollectStreamFunc func(ctx context.Context, addr string, cfg client.Config, start func() client.ReportFunc) (core.Observations, error)

// Config configures the server.
type Config struct {
	// Registry is the spinning-tag store. Required.
	Registry *registry.Registry
	// Locator runs the pipeline; nil means a default core.Locator.
	Locator *core.Locator
	// FastSpectrum enables the fast spectrum kernel on the default locator
	// (core.Config.FastSpectrum). Ignored when Locator is non-nil — a
	// caller-supplied locator carries its own config.
	FastSpectrum bool
	// Search tunes the default locator's peak search (core.Config.Search):
	// hierarchical scanning, the harmonic azimuth evaluator, the NUFFT
	// synthesis route for non-uniform candidate grids, prescreen width, and
	// grid steps. The zero value keeps the defaults (harmonic +
	// hierarchical auto-on for Q spectra, NUFFT auto-on on the angle-grid
	// entry points). Ignored when Locator is non-nil.
	Search spectrum.SearchOptions
	// Collect gathers snapshots; nil means client.CollectRetry (the
	// network client with transient-failure retries). Supplying Collect
	// without CollectStream pins the server to the batch pipeline, since a
	// plain collector cannot feed mid-session accumulation.
	Collect CollectFunc
	// CollectStream gathers snapshots with per-report streaming, letting
	// locates overlap spectrum accumulation with collection; nil means
	// client.CollectRetryStream when Collect is also nil. See
	// DisableStreaming for when the server streams.
	CollectStream CollectStreamFunc
	// DisableStreaming forces the batch pipeline even when a streaming
	// collector is available. By default locates stream: snapshots are
	// folded into per-tag accumulators as they arrive, so only the peak
	// search and solve remain after collection ends.
	DisableStreaming bool
	// Client tunes collection sessions (including retry policy:
	// MaxAttempts, BaseBackoff).
	Client client.Config
	// BatchConcurrency bounds how many batch items run at once; zero means
	// GOMAXPROCS. Since the shared compute pool (internal/sched) took over
	// spectrum execution, this no longer multiplies CPU fan-out — all grid
	// scans queue on the pool's fixed workers regardless of how many items
	// run — so it mainly bounds concurrent *collects* (open reader
	// sessions, their buffers, and retry timers) and the pipeline working
	// set per in-flight item.
	BatchConcurrency int
	// Workers, when positive, pins the process-wide spectrum compute pool
	// width (sched.SetWorkers) when the server is built. Zero leaves the
	// pool at its current width (TAGSPIN_WORKERS env or GOMAXPROCS).
	Workers int
	// MaxInFlight bounds admitted locate/locate-batch HTTP requests (one
	// slot per request, whatever its batch size). Beyond it the server
	// sheds load with 503 + Retry-After instead of queueing: the compute
	// pool serializes excess scan work anyway, so queued requests would
	// only accumulate latency until they hit RequestTimeout (504) with no
	// extra throughput. Zero means 2 × the pool width; negative disables
	// admission control.
	MaxInFlight int
	// RequestTimeout bounds each locate/locate-batch request end to end;
	// zero means no server-imposed deadline. Batch items inherit the
	// request context, so one hung reader cannot pin a batch slot past the
	// deadline.
	RequestTimeout time.Duration
	// Logf, when non-nil, receives request log lines.
	Logf func(format string, args ...any)
}

// Server implements the HTTP API.
type Server struct {
	cfg     Config
	locator *core.Locator
	// mlLocator shares the locator's configuration with the joint
	// maximum-likelihood solve backend swapped in; requests select it with
	// "backend": "ml".
	mlLocator *core.Locator
	collect   CollectFunc
	mux       *http.ServeMux

	// collectStream, when non-nil, is the streaming collector locate items
	// use; streaming reports whether locates take the streaming path.
	collectStream CollectStreamFunc
	streaming     bool

	// admit is the admission-control semaphore for locate endpoints: one
	// buffered slot per admitted request. Nil disables admission control.
	admit chan struct{}

	// draining, once set, sheds every new locate with 503 and fails the
	// health check so a fleet coordinator stops routing here; in-flight
	// requests keep running to completion (the HTTP server's Shutdown
	// waits for them).
	draining atomic.Bool

	locates          atomic.Uint64
	mlLocates        atomic.Uint64
	batches          atomic.Uint64
	admissionRejects atomic.Uint64
	malformedReports atomic.Uint64

	streamLocates      atomic.Uint64
	streamFallbackTags atomic.Uint64
	snapshotsStreamed  atomic.Uint64
	maxAccumBacklog    atomic.Int64
	finalizeCount      atomic.Uint64
	finalizeNsTotal    atomic.Int64
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("locsrv: nil registry")
	}
	if cfg.Workers > 0 {
		sched.SetWorkers(cfg.Workers)
	}
	s := &Server{
		cfg:     cfg,
		locator: cfg.Locator,
		collect: cfg.Collect,
	}
	if s.locator == nil {
		s.locator = core.NewLocator(core.Config{FastSpectrum: cfg.FastSpectrum, Search: cfg.Search})
	}
	s.mlLocator = s.locator.WithEstimator(estimate.NewML(estimate.Config{}))
	if s.collect == nil {
		s.collect = client.CollectRetry
	}
	// Streaming is the default on the real network client; a caller-supplied
	// batch Collect (canned fixtures, custom transports) keeps the batch
	// pipeline unless it also supplies a CollectStream.
	switch {
	case cfg.CollectStream != nil:
		s.collectStream = cfg.CollectStream
	case cfg.Collect == nil:
		s.collectStream = client.CollectRetryStream
	}
	s.streaming = s.collectStream != nil && !cfg.DisableStreaming
	if cfg.MaxInFlight >= 0 {
		slots := cfg.MaxInFlight
		if slots == 0 {
			slots = 2 * sched.Workers()
		}
		s.admit = make(chan struct{}, slots)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/tags", s.handleListTags)
	mux.HandleFunc("POST /v1/tags", s.handleAddTag)
	mux.HandleFunc("DELETE /v1/tags/{epc}", s.handleRemoveTag)
	mux.HandleFunc("POST /v1/locate", s.handleLocate)
	mux.HandleFunc("POST /v1/locate-batch", s.handleLocateBatch)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler. Panics in request handlers are
// converted to 500 JSON responses instead of tearing down the connection.
func (s *Server) Handler() http.Handler { return s.recoverPanics(s.mux) }

// recoverPanics is middleware that turns a handler panic into a JSON 500.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and must keep its net/http semantics.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.logf("locsrv: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// requestContext derives the working context for one request: the client's
// own context (canceled when the client disconnects), bounded by
// RequestTimeout when configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// Drain flips the server into draining: the health check starts failing (a
// coordinator health-trips the replica and stops routing to it), and every
// new locate is shed with 503 + Retry-After while in-flight requests run to
// completion. Callers sequence it before http.Server.Shutdown so the drain
// window actually empties instead of racing new admissions.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// tryAdmit attempts to take an admission slot for one locate request,
// without blocking. On saturation — or while the server is draining — it
// writes the 503 shed-load response — with a Retry-After hint so
// well-behaved clients back off — and returns false. This is deliberately
// distinct from the 504 deadline path: 503 means "never started, retry
// elsewhere/later", 504 means "started and ran out of time".
func (s *Server) tryAdmit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		s.admissionRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return false
	}
	if s.admit == nil {
		return true
	}
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		s.admissionRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server at capacity (%d locate requests in flight)", cap(s.admit)))
		return false
	}
}

// releaseAdmit returns an admission slot taken by tryAdmit.
func (s *Server) releaseAdmit() {
	if s.admit != nil {
		<-s.admit
	}
}

// Stats is a point-in-time snapshot of the server's request counters,
// shaped for expvar publication.
type Stats struct {
	// Locates and Batches count requests that passed admission (whatever
	// their eventual outcome).
	Locates uint64
	Batches uint64
	// MLLocates counts locate items solved by the maximum-likelihood
	// backend ("backend": "ml"); the rest used the grid backend.
	MLLocates uint64
	// AdmissionRejects counts requests shed with 503 (saturation or
	// draining).
	AdmissionRejects uint64
	// MalformedReports counts tag reports skipped by collection sessions
	// (out-of-band channel indices — see client.Config.OnMalformed).
	MalformedReports uint64
	// Draining reports whether the server has begun its shutdown drain.
	Draining bool
	// InFlight and MaxInFlight describe the admission semaphore; both are
	// 0 when admission control is disabled.
	InFlight    int
	MaxInFlight int
	// StreamLocates counts locate items that ran the streaming pipeline;
	// StreamFallbackTags counts the per-tag batch fallbacks inside them
	// (disordered arrivals, channel mismatches, bootstrap-kind changes).
	StreamLocates      uint64
	StreamFallbackTags uint64
	// SnapshotsStreamed totals snapshots folded into accumulators while
	// their collection sessions were still running.
	SnapshotsStreamed uint64
	// MaxAccumBacklog is the accumulation queue's high-water mark across
	// all streamed locates — how far folding ever lagged the wire.
	MaxAccumBacklog int64
	// FinalizeCount and FinalizeNsTotal measure the streaming path's
	// last-snapshot-to-answer latency: total time spent in Finalize
	// (peak search + solve on pre-accumulated sums) over that many calls.
	FinalizeCount   uint64
	FinalizeNsTotal int64
	// SpectrumSearch is the process-wide coarse-search routing tally —
	// which accelerator (harmonic Q/R synthesis, hierarchical, prescreen,
	// all-cells profile synthesis) actually served the scans behind this
	// server's locates, versus the dense fallback. A fleet dashboard that
	// sees Dense2D climbing while HarmonicR2D stays flat is watching a
	// routing regression, not a load change.
	SpectrumSearch spectrum.SearchStats
}

// Stats reports the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Locates:            s.locates.Load(),
		MLLocates:          s.mlLocates.Load(),
		Batches:            s.batches.Load(),
		AdmissionRejects:   s.admissionRejects.Load(),
		MalformedReports:   s.malformedReports.Load(),
		Draining:           s.draining.Load(),
		StreamLocates:      s.streamLocates.Load(),
		StreamFallbackTags: s.streamFallbackTags.Load(),
		SnapshotsStreamed:  s.snapshotsStreamed.Load(),
		MaxAccumBacklog:    s.maxAccumBacklog.Load(),
		FinalizeCount:      s.finalizeCount.Load(),
		FinalizeNsTotal:    s.finalizeNsTotal.Load(),
	}
	if s.admit != nil {
		st.InFlight = len(s.admit)
		st.MaxInFlight = cap(s.admit)
	}
	st.SpectrumSearch = spectrum.SearchStatsSnapshot()
	return st
}

// noteStream folds one finished streamed locate into the server counters.
func (s *Server) noteStream(finalize time.Duration, st core.StreamStats) {
	s.streamLocates.Add(1)
	s.streamFallbackTags.Add(uint64(st.FallbackTags))
	s.snapshotsStreamed.Add(uint64(st.Snapshots))
	for {
		cur := s.maxAccumBacklog.Load()
		if st.MaxBacklog <= cur || s.maxAccumBacklog.CompareAndSwap(cur, st.MaxBacklog) {
			break
		}
	}
	if finalize >= 0 {
		s.finalizeCount.Add(1)
		s.finalizeNsTotal.Add(int64(finalize))
	}
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("locsrv: encode response: %v", err)
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError writes a JSON error.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats serves the counter snapshot on the API listener so a fleet
// coordinator can roll up replica stats without reaching the (possibly
// firewalled, possibly disabled) debug listener.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleListTags(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Registry.List())
}

func (s *Server) handleAddTag(w http.ResponseWriter, r *http.Request) {
	var e registry.Entry
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode entry: %w", err))
		return
	}
	if err := s.cfg.Registry.Add(e); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, registry.ErrDuplicate) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	s.logf("locsrv: registered tag %s", e.EPC)
	writeJSON(w, http.StatusCreated, e)
}

func (s *Server) handleRemoveTag(w http.ResponseWriter, r *http.Request) {
	epc := r.PathValue("epc")
	if err := s.cfg.Registry.Remove(epc); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, registry.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": epc})
}

// LocateRequest asks the server to localize one reader.
type LocateRequest struct {
	// ReaderAddr is the reader's protocol endpoint (host:port).
	ReaderAddr string `json:"readerAddr"`
	// Mode is "2d" or "3d"; empty means "2d".
	Mode string `json:"mode,omitempty"`
	// Backend selects the solve backend: "grid" (bearing intersection,
	// the default) or "ml" (joint maximum likelihood with confidence
	// output). Empty means "grid".
	Backend string `json:"backend,omitempty"`
	// DurationMillis overrides the session length in simulated
	// milliseconds.
	DurationMillis int `json:"durationMillis,omitempty"`
}

// BearingResult is the per-tag part of a localization response.
type BearingResult struct {
	EPC        string  `json:"epc"`
	AzimuthRad float64 `json:"azimuthRad"`
	PolarRad   float64 `json:"polarRad,omitempty"`
	Power      float64 `json:"power"`
	Snapshots  int     `json:"snapshots"`
}

// ConfidenceResult is the uncertainty block of a localization response,
// present when the solve backend quantifies uncertainty (the ml backend).
type ConfidenceResult struct {
	// CovM2 is the position covariance in m² (2D responses use the
	// upper-left 2×2 block).
	CovM2 [3][3]float64 `json:"covM2"`
	// SemiMajorM/SemiMinorM/OrientationRad describe the horizontal 1σ
	// confidence ellipse (≈39% mass for a 2D Gaussian).
	SemiMajorM     float64 `json:"semiMajorM"`
	SemiMinorM     float64 `json:"semiMinorM"`
	OrientationRad float64 `json:"orientationRad"`
	// SigmaZM is the 1σ height uncertainty (3D only).
	SigmaZM float64 `json:"sigmaZM,omitempty"`
	// LogLikelihood is the joint log-likelihood at the optimum;
	// MirrorLogLikelihood (3D only) is the rejected ±z candidate's — the
	// margin says how decisively the ambiguity was resolved.
	LogLikelihood       float64 `json:"logLikelihood"`
	MirrorLogLikelihood float64 `json:"mirrorLogLikelihood,omitempty"`
}

// LocateResponse carries a localization result.
type LocateResponse struct {
	Mode     string          `json:"mode"`
	Backend  string          `json:"backend,omitempty"`
	Position [3]float64      `json:"positionM"`
	Mirror   *[3]float64     `json:"mirrorM,omitempty"`
	ZSpread  float64         `json:"zSpreadM,omitempty"`
	Bearings []BearingResult `json:"bearings"`
	// Confidence is present when the backend reports uncertainty.
	Confidence *ConfidenceResult `json:"confidence,omitempty"`
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	if !s.tryAdmit(w) {
		return
	}
	defer s.releaseAdmit()
	s.locates.Add(1)
	var req LocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	spinning, err := s.cfg.Registry.SpinningTags()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, serr := s.locateOne(ctx, req, spinning)
	if serr != nil {
		writeError(w, serr.status, serr)
		return
	}
	s.logf("locsrv: located reader %s (%s) at %v", req.ReaderAddr, resp.Mode, resp.Position)
	writeJSON(w, http.StatusOK, resp)
}

// bearingResults converts pipeline bearings for the wire.
func bearingResults(in []core.TagEstimate) []BearingResult {
	out := make([]BearingResult, 0, len(in))
	for _, b := range in {
		out = append(out, BearingResult{
			EPC:        b.EPC.String(),
			AzimuthRad: b.Azimuth,
			PolarRad:   b.Polar,
			Power:      b.Power,
			Snapshots:  b.Snapshots,
		})
	}
	return out
}

// BatchRequest asks the server to localize several readers concurrently —
// the paper's motivating deployment calibrates all of a portal's antennas
// at once.
type BatchRequest struct {
	Requests []LocateRequest `json:"requests"`
}

// BatchItem is one reader's outcome within a batch.
type BatchItem struct {
	ReaderAddr string          `json:"readerAddr"`
	Error      string          `json:"error,omitempty"`
	Result     *LocateResponse `json:"result,omitempty"`
}

// BatchResponse carries all outcomes, in request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// MaxBatch bounds a single batch request; the coordinator enforces the same
// bound so a batch it accepts is one its replicas accept.
const MaxBatch = 64

// batchConcurrency returns the bound on concurrently running batch items.
func (s *Server) batchConcurrency() int {
	if s.cfg.BatchConcurrency > 0 {
		return s.cfg.BatchConcurrency
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Server) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	if !s.tryAdmit(w) {
		return
	}
	defer s.releaseAdmit()
	s.batches.Add(1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Requests), MaxBatch))
		return
	}
	spinning, err := s.cfg.Registry.SpinningTags()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// A semaphore bounds how many items are in flight: each item opens a
	// reader collect session and holds a pipeline working set, so an
	// unbounded fan-out would hammer the readers and balloon memory on
	// large batches (the CPU side is already bounded by the shared compute
	// pool).
	// Every item inherits the request context: when the client disconnects
	// or RequestTimeout fires, queued items fail fast instead of starting
	// doomed collects, and running ones are canceled.
	ctx, cancel := s.requestContext(r)
	defer cancel()
	items := make([]BatchItem, len(req.Requests))
	sem := make(chan struct{}, s.batchConcurrency())
	var wg sync.WaitGroup
	wg.Add(len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			defer wg.Done()
			item := BatchItem{ReaderAddr: req.Requests[i].ReaderAddr}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				item.Error = fmt.Sprintf("batch item not started: %v", ctx.Err())
				items[i] = item
				return
			}
			defer func() { <-sem }()
			resp, serr := s.locateOne(ctx, req.Requests[i], spinning)
			if serr != nil {
				item.Error = serr.Error()
			} else {
				item.Result = resp
			}
			items[i] = item
		}(i)
	}
	wg.Wait()
	s.logf("locsrv: batch of %d located", len(items))
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// statusError pairs the HTTP status the single-locate endpoint sends with
// the underlying error; the batch endpoint flattens it to a string.
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// StatusClientClosedRequest is the nginx-convention 499 status for a
// request abandoned by its own client. It is deliberately distinct from 504:
// a 504 means the *server's* deadline expired mid-work (another replica
// might finish in time, so a fleet coordinator may reroute it), while a 499
// means the requester is gone — rerouting would burn a replica slot
// computing an answer nobody will read.
const StatusClientClosedRequest = 499

// deadlineStatus maps an error to the HTTP status for a failed collect or
// solve: context.DeadlineExceeded is the server-imposed deadline (504,
// reroutable), context.Canceled is the client disconnecting mid-request
// (499, not reroutable — the client is gone), everything else is the given
// fallback. Mapping Canceled to 504 (as this used to) polluted the error
// taxonomy the coordinator's reroute logic keys on.
func deadlineStatus(err error, fallback int) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return StatusClientClosedRequest
	}
	return fallback
}

// locateOne validates one request, collects snapshots from the reader, and
// runs the localization pipeline. Both the single-locate handler and every
// batch item share this path, so validation, error mapping, and response
// construction cannot drift between the two. The context bounds the whole
// item: collect and solve are both canceled when it expires.
func (s *Server) locateOne(ctx context.Context, req LocateRequest, spinning []core.SpinningTag) (*LocateResponse, *statusError) {
	if req.ReaderAddr == "" {
		return nil, &statusError{http.StatusBadRequest, errors.New("readerAddr required")}
	}
	mode := req.Mode
	if mode == "" {
		mode = "2d"
	}
	if mode != "2d" && mode != "3d" {
		return nil, &statusError{http.StatusBadRequest, fmt.Errorf("unknown mode %q", mode)}
	}
	if req.DurationMillis < 0 {
		return nil, &statusError{http.StatusBadRequest, fmt.Errorf("negative durationMillis %d", req.DurationMillis)}
	}
	loc := s.locator
	switch req.Backend {
	case "", "grid":
	case "ml":
		loc = s.mlLocator
		s.mlLocates.Add(1)
	default:
		return nil, &statusError{http.StatusBadRequest, fmt.Errorf("unknown backend %q (want \"grid\" or \"ml\")", req.Backend)}
	}
	ccfg := s.cfg.Client
	if req.DurationMillis > 0 {
		ccfg.Duration = time.Duration(req.DurationMillis) * time.Millisecond
	}
	// Count skipped malformed reports into the server stats, chaining any
	// hook the caller installed.
	callerHook := ccfg.OnMalformed
	ccfg.OnMalformed = func(err error) {
		s.malformedReports.Add(1)
		if callerHook != nil {
			callerHook(err)
		}
	}
	if s.streaming {
		return s.locateStreaming(ctx, loc, req.ReaderAddr, ccfg, mode, spinning)
	}
	obs, err := s.collect(ctx, req.ReaderAddr, ccfg)
	if err != nil {
		return nil, &statusError{deadlineStatus(err, http.StatusBadGateway), fmt.Errorf("collect from %s: %w", req.ReaderAddr, err)}
	}
	switch mode {
	case "3d":
		res, err := loc.Locate3DContext(ctx, spinning, obs)
		if err != nil {
			return nil, &statusError{deadlineStatus(err, http.StatusUnprocessableEntity), err}
		}
		return respond3D(res), nil
	default:
		res, err := loc.Locate2DContext(ctx, spinning, obs)
		if err != nil {
			return nil, &statusError{deadlineStatus(err, http.StatusUnprocessableEntity), err}
		}
		return respond2D(res), nil
	}
}

// locateStreaming is locateOne's streaming pipeline: the spectrum grid
// accumulates while the reader session is still streaming reports, so after
// collection only the peak search, refinement, and bearing solve remain.
// Results are bit-identical to the batch pipeline on the same observations.
func (s *Server) locateStreaming(ctx context.Context, loc *core.Locator, addr string, ccfg client.Config, mode string, spinning []core.SpinningTag) (*LocateResponse, *statusError) {
	var st *core.Stream
	if mode == "3d" {
		st = loc.NewStream3D(spinning)
	} else {
		st = loc.NewStream2D(spinning)
	}
	defer st.Close()
	// Each collection attempt resets the stream: a failed attempt has
	// already folded a partial prefix that must not leak into the retry.
	obs, err := s.collectStream(ctx, addr, ccfg, func() client.ReportFunc {
		st.Reset()
		return st.Report
	})
	if err != nil {
		return nil, &statusError{deadlineStatus(err, http.StatusBadGateway), fmt.Errorf("collect from %s: %w", addr, err)}
	}
	finalize := time.Now()
	var resp *LocateResponse
	switch mode {
	case "3d":
		res, ferr := st.Finalize3D(ctx, obs)
		if ferr != nil {
			s.noteStream(-1, st.Stats())
			return nil, &statusError{deadlineStatus(ferr, http.StatusUnprocessableEntity), ferr}
		}
		resp = respond3D(res)
	default:
		res, ferr := st.Finalize2D(ctx, obs)
		if ferr != nil {
			s.noteStream(-1, st.Stats())
			return nil, &statusError{deadlineStatus(ferr, http.StatusUnprocessableEntity), ferr}
		}
		resp = respond2D(res)
	}
	s.noteStream(time.Since(finalize), st.Stats())
	return resp, nil
}

// confidenceResult shapes a pipeline confidence block for the wire.
func confidenceResult(c *core.Confidence) *ConfidenceResult {
	if c == nil {
		return nil
	}
	return &ConfidenceResult{
		CovM2:               c.Cov,
		SemiMajorM:          c.SemiMajorM,
		SemiMinorM:          c.SemiMinorM,
		OrientationRad:      c.OrientationRad,
		SigmaZM:             c.SigmaZM,
		LogLikelihood:       c.LogLikelihood,
		MirrorLogLikelihood: c.MirrorLogLikelihood,
	}
}

// respond2D shapes a 2D pipeline result for the wire.
func respond2D(res core.Result2D) *LocateResponse {
	return &LocateResponse{
		Mode:       "2d",
		Backend:    res.Backend,
		Position:   [3]float64{res.Position.X, res.Position.Y, 0},
		Bearings:   bearingResults(res.Bearings),
		Confidence: confidenceResult(res.Confidence),
	}
}

// respond3D shapes a 3D pipeline result for the wire.
func respond3D(res core.Result3D) *LocateResponse {
	mirror := [3]float64{res.Mirror.X, res.Mirror.Y, res.Mirror.Z}
	return &LocateResponse{
		Mode:       "3d",
		Backend:    res.Backend,
		Position:   [3]float64{res.Position.X, res.Position.Y, res.Position.Z},
		Mirror:     &mirror,
		ZSpread:    res.ZSpread,
		Bearings:   bearingResults(res.Bearings),
		Confidence: confidenceResult(res.Confidence),
	}
}
