package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/testbed"
)

// RunA1 sweeps the R-profile weight σ: too small over-trusts the model and
// kills honest snapshots, too large degrades toward Q.
func RunA1(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "A1",
		Title:  "Ablation: R-profile weight σ",
		Values: map[string]float64{},
	}
	var rows [][]string
	for _, sigma := range []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40} {
		errs, err := runTrials(trialSetup{
			locator: core.Config{Sigma: sigma},
		}, n, opts.Seed+300)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@sigma%.2f", sigma)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"σ (rad)", "mean (cm)", "p90 (cm)"}, rows)...)
	res.Lines = append(res.Lines, "(the channel's true per-read noise is σ = 0.1 rad)")
	return res, nil
}

// RunA2 validates the coarse-to-fine peak search against exhaustive search:
// same answer, far fewer profile evaluations.
func RunA2(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 301))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}

	const rounds = 20
	var maxDiff float64
	start := time.Now()
	var fastAz float64
	for i := 0; i < rounds; i++ {
		fastAz, _, err = spectrum.FindPeak2D(snaps, params, spectrum.KindR, spectrum.SearchOptions{})
		if err != nil {
			return Result{}, err
		}
	}
	fastDur := time.Since(start) / rounds
	start = time.Now()
	slowAz, _, err := spectrum.ExhaustivePeak2D(snaps, params, spectrum.KindR, geom.Radians(0.02))
	if err != nil {
		return Result{}, err
	}
	slowDur := time.Since(start)
	maxDiff = geom.Degrees(geom.AngleDistance(fastAz, slowAz))

	res := Result{
		ID:    "A2",
		Title: "Ablation: coarse-to-fine vs exhaustive search",
		Values: map[string]float64{
			"angleDiffDeg": maxDiff,
			"speedup":      float64(slowDur) / float64(fastDur),
		},
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("coarse-to-fine: %.3f ms; exhaustive @0.02°: %.1f ms; speedup %.0f×",
			float64(fastDur)/1e6, float64(slowDur)/1e6, res.Values["speedup"]),
		fmt.Sprintf("azimuth difference: %.3f° (both land on the same main lobe; small offsets", maxDiff),
		" reflect noise-level plateau structure near the peak)")
	return res, nil
}

// RunA3 sweeps the interrogation rate: more snapshots per rotation, lower
// error, with diminishing returns.
func RunA3(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "A3",
		Title:  "Ablation: read rate vs accuracy",
		Values: map[string]float64{},
	}
	var rows [][]string
	for _, rate := range []float64{10, 20, 40, 80, 160} {
		r := rate
		errs, err := runTrials(trialSetup{
			locator: core.Config{MinSnapshots: 6},
			modify:  func(sc *testbed.Scenario) { sc.ReadRateHz = r },
		}, n, opts.Seed+302)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@%.0fHz", r)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"attempts/s", "mean (cm)", "p90 (cm)"}, rows)...)
	return res, nil
}

// RunA4 sweeps multipath strength: image-method walls with growing
// reflection coefficients bias the phase model and degrade accuracy
// gracefully.
func RunA4(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "A4",
		Title:  "Ablation: multipath strength",
		Values: map[string]float64{},
	}
	var rows [][]string
	for _, gamma := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		g := gamma
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				if g == 0 {
					return
				}
				sc.Channel.Reflectors = []channel.Reflector{
					{Point: geom.V3(0, 3.8, 0), Normal: geom.V3(0, -1, 0), Coefficient: -g},
					{Point: geom.V3(-3.3, 0, 0), Normal: geom.V3(1, 0, 0), Coefficient: -g},
				}
			},
			// Keep the reader ≥1 m off the walls (as T2 does): standing
			// on a wall makes the image path degenerate, which is a
			// deployment error, not a multipath result.
			placeReader: func(rng *rand.Rand) geom.Vec3 {
				for {
					p := placement(rng, 0)
					if p.XY().Norm() <= 2.6 {
						return p
					}
				}
			},
		}, n, opts.Seed+303)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@gamma%.1f", g)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", g),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"|Γ| per wall", "mean (cm)", "p90 (cm)"}, rows)...)
	return res, nil
}

// RunA5 sweeps the number of disks: redundant bearings fused by weighted
// least squares shrink the error beyond the paper's two-disk setup.
func RunA5(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "A5",
		Title:  "Ablation: number of disks",
		Values: map[string]float64{},
	}
	// Candidate centers: a line plus offsets so extra disks add geometry.
	centers := []geom.Vec3{
		{X: -0.25}, {X: 0.25}, {X: 0, Y: -0.35}, {X: -0.5, Y: -0.2}, {X: 0.5, Y: -0.2},
	}
	var rows [][]string
	for count := 2; count <= 5; count++ {
		k := count
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				rng := rand.New(rand.NewSource(opts.Seed + 500 + int64(k)))
				base := sc.Installs[0]
				sc.Installs = sc.Installs[:0]
				for i := 0; i < k; i++ {
					in := base
					in.Tag = newDefaultTag(rng)
					in.Disk = spindisk.Disk{
						Center: centers[i],
						Radius: 0.10,
						Omega:  math.Pi,
						Theta0: float64(i) * math.Pi / 5,
					}
					sc.Installs = append(sc.Installs, in)
				}
			},
		}, n, opts.Seed+304)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@%ddisks", k)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"disks", "mean (cm)", "p90 (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		"(beyond the paper: extra disks fuse by weighted least squares, Eqn. 9 generalized)")
	return res, nil
}

// RunA6 compares Definition 4.1's literal first-snapshot reference against
// the robust common-offset-cancelling weights this implementation defaults
// to (see spectrum.Params.LiteralReference).
func RunA6(opts Options) (Result, error) {
	n := opts.trials(20)
	robust, err := runTrials(trialSetup{}, n, opts.Seed+305)
	if err != nil {
		return Result{}, err
	}
	literal, err := runTrials(trialSetup{
		locator: core.Config{LiteralReference: true},
	}, n, opts.Seed+305) // same seed: identical worlds
	if err != nil {
		return Result{}, err
	}
	mR, mL := mathx.Summarize(robust.combined), mathx.Summarize(literal.combined)
	res := Result{
		ID:    "A6",
		Title: "Ablation: literal vs robust R reference",
		Values: map[string]float64{
			"meanRobust":  mR.Mean,
			"meanLiteral": mL.Mean,
			"ratio":       mL.Mean / mR.Mean,
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("variant (cm)"), [][]string{
		summaryRow("robust (default)", mR),
		summaryRow("literal Definition 4.1", mL),
	})...)
	res.Lines = append(res.Lines,
		fmt.Sprintf("the literal weights inherit the reference snapshot's noise; robust wins %.1f×",
			res.Values["ratio"]))
	return res, nil
}

// RunA7 sweeps impulsive interference: a fraction of reads reports garbage
// phase (decode glitches, capture collisions). This is the regime the
// enhanced profile R was designed for — its likelihood weights discard the
// outliers while Q's uniform phasor sum absorbs them.
func RunA7(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "A7",
		Title:  "Ablation: impulsive interference, Q vs R",
		Values: map[string]float64{},
	}
	var rows [][]string
	for _, frac := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
		f := frac
		means := map[spectrum.Kind]float64{}
		for _, kind := range []spectrum.Kind{spectrum.KindQ, spectrum.KindR} {
			errs, err := runTrials(trialSetup{
				locator: core.Config{Kind: kind},
				modify:  func(sc *testbed.Scenario) { sc.Channel.OutlierProb = f },
			}, n, opts.Seed+306)
			if err != nil {
				return Result{}, err
			}
			means[kind] = mathx.Mean(errs.combined)
		}
		res.Values[fmt.Sprintf("meanQ@%.2f", f)] = means[spectrum.KindQ]
		res.Values[fmt.Sprintf("meanR@%.2f", f)] = means[spectrum.KindR]
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%.1f", means[spectrum.KindQ]*100),
			fmt.Sprintf("%.1f", means[spectrum.KindR]*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"outlier reads", "Q mean (cm)", "R mean (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		"(R's Gaussian weights suppress garbage reads; Q sums them coherently)")
	return res, nil
}
