package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/baseline"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// RunT1 reproduces Table I: the tag model catalogue.
func RunT1(Options) (Result, error) {
	res := Result{
		ID:     "T1",
		Title:  "Tag model catalogue (Table I)",
		Values: map[string]float64{},
	}
	var rows [][]string
	for i, m := range tags.Catalog() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			m.SKU, m.Name, m.Company, m.Chip,
			fmt.Sprintf("%.1f × %.1f", m.SizeMM[0], m.SizeMM[1]),
			fmt.Sprintf("%d", m.Quantity),
		})
		res.Values["qty@"+m.Name] = float64(m.Quantity)
	}
	res.Values["models"] = float64(len(tags.Catalog()))
	res.Lines = append(res.Lines, table(
		[]string{"#", "model", "name", "company", "chip", "size (mm²)", "qty"}, rows)...)
	res.Lines = append(res.Lines,
		"(part numbers and sizes reconstructed from Alien's product line; the OCR of",
		" the paper lost the exact digits — see EXPERIMENTS.md)")
	return res, nil
}

// officeWalls returns the multipath environment for the baseline
// comparison: two walls of the 6 m × 9 m office, enclosing every placement
// (normals point into the room). |Γ| = 0.08 models drywall seen through the
// reader's circular polarization, which attenuates odd-bounce reflections.
func officeWalls() []channel.Reflector {
	return []channel.Reflector{
		{Point: geom.V3(0, 3.8, 0), Normal: geom.V3(0, -1, 0), Coefficient: -0.08},
		{Point: geom.V3(-3.3, 0, 0), Normal: geom.V3(1, 0, 0), Coefficient: -0.08},
	}
}

// RunT2 reproduces the §VII-B comparison: Tagspin versus LandMarc, AntLoc,
// PinIt and BackPos, all run against the same multipath office and the same
// reader placements.
func RunT2(opts Options) (Result, error) {
	n := opts.trials(20)
	rng := rand.New(rand.NewSource(opts.Seed + 200))
	room := baseline.Rect{MinX: -3, MinY: -3, MaxX: 3, MaxY: 3}
	env, err := baseline.DefaultEnvironment(room, 4, 4, rng)
	if err != nil {
		return Result{}, err
	}
	env.Channel.Reflectors = officeWalls()
	methods := []baseline.Method{
		&baseline.LandMarc{Env: env},
		&baseline.AntLoc{Env: env},
		&baseline.PinIt{Env: env},
		// BackPos twice: with its published 4-anchor budget (fails outside
		// the anchor hull, its documented constraint) and with the full
		// calibrated 16-tag grid (stronger than its published numbers
		// because the simulator has no RF-chain drift) — see EXPERIMENTS.md.
		&baseline.BackPos{Env: env, AnchorCount: 4, Label: "BackPos-4"},
		&baseline.BackPos{Env: env, Label: "BackPos-16"},
	}
	for _, m := range methods {
		if err := m.Train(rng); err != nil {
			return Result{}, fmt.Errorf("train %s: %w", m.Name(), err)
		}
	}

	// Tagspin runs in the same multipath channel.
	sc := testbed.DefaultScenario(0, rng)
	sc.Channel.Reflectors = officeWalls()
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return Result{}, err
	}
	loc := core.NewLocator(core.Config{})

	// Shared placements, kept inside the room.
	targets := make([]geom.Vec3, 0, n)
	for len(targets) < n {
		p := placement(rng, 0)
		if p.XY().Norm() <= 2.6 && room.Contains(p.XY()) {
			targets = append(targets, p)
		}
	}
	errsByMethod := map[string][]float64{}
	for _, target := range targets {
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			return Result{}, err
		}
		res2d, err := loc.Locate2D(registered, col.Obs)
		if err != nil {
			return Result{}, err
		}
		errsByMethod["Tagspin"] = append(errsByMethod["Tagspin"],
			res2d.Position.DistanceTo(target.XY()))
		for _, m := range methods {
			ant := sc.Antenna // same physical antenna unit as Tagspin's target
			ant.Position = target
			got, err := m.Locate(ant, rng)
			if err != nil {
				// A miss (e.g. no signal) counts as a room-diagonal error,
				// the worst case — baselines must not silently skip
				// hard placements.
				errsByMethod[m.Name()] = append(errsByMethod[m.Name()],
					math.Hypot(room.MaxX-room.MinX, room.MaxY-room.MinY))
				continue
			}
			errsByMethod[m.Name()] = append(errsByMethod[m.Name()], got.DistanceTo(target.XY()))
		}
	}

	res := Result{
		ID:     "T2",
		Title:  "Baseline comparison (§VII-B)",
		Values: map[string]float64{"trials": float64(n)},
	}
	tagspinMean := mathx.Mean(errsByMethod["Tagspin"])
	order := []string{"Tagspin", "LandMarc", "AntLoc", "PinIt", "BackPos-4", "BackPos-16"}
	var rows [][]string
	for _, name := range order {
		s := mathx.Summarize(errsByMethod[name])
		res.Values["mean@"+name] = s.Mean
		res.Values["median@"+name] = s.Median
		factor := s.Mean / tagspinMean
		res.Values["factor@"+name] = factor
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", s.Mean*100),
			fmt.Sprintf("%.1f", s.Median*100),
			fmt.Sprintf("%.1f", s.Std*100),
			fmt.Sprintf("%.1f", s.P90*100),
			fmt.Sprintf("%.1f×", factor),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"method", "mean (cm)", "median (cm)", "std (cm)", "p90 (cm)", "vs Tagspin"}, rows)...)
	res.Lines = append(res.Lines,
		fmt.Sprintf("environment: office with two Γ=-0.08 walls (CP-rejected drywall); %d shared placements", n),
		"published means for context: LandMarc ≈100 cm, PinIt ≈11 cm, BackPos ≈13 cm",
		"(the paper quotes published numbers; here every method runs in-simulator)")
	return res, nil
}
