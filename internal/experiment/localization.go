package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/tags"
)

// RunF10a reproduces Fig. 10(a): the 2D localization error CDF over random
// reader placements, reported per axis and combined.
func RunF10a(opts Options) (Result, error) {
	n := opts.trials(50)
	errs, err := runTrials(trialSetup{}, n, opts.Seed+100)
	if err != nil {
		return Result{}, err
	}
	combined := mathx.Summarize(errs.combined)
	res := Result{
		ID:    "F10a",
		Title: "2D localization error CDF (Fig. 10a)",
		Values: map[string]float64{
			"trials":       float64(n),
			"meanX":        mathx.Mean(errs.x),
			"meanY":        mathx.Mean(errs.y),
			"meanCombined": combined.Mean,
			"stdCombined":  combined.Std,
			"p90Combined":  combined.P90,
			"minCombined":  combined.Min,
			"maxCombined":  combined.Max,
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("axis (cm)"), [][]string{
		summaryRow("x", mathx.Summarize(errs.x)),
		summaryRow("y", mathx.Summarize(errs.y)),
		summaryRow("combined", combined),
	})...)
	res.Lines = append(res.Lines, cdfLines("combined", errs.combined)...)
	return res, nil
}

// RunF10b reproduces Fig. 10(b): the 3D error CDF; the z axis is worst
// because both disks spin in the horizontal plane.
func RunF10b(opts Options) (Result, error) {
	n := opts.trials(50)
	errs, err := runTrials(trialSetup{diskZ: 0.095, mode3D: true}, n, opts.Seed+101)
	if err != nil {
		return Result{}, err
	}
	combined := mathx.Summarize(errs.combined)
	res := Result{
		ID:    "F10b",
		Title: "3D localization error CDF (Fig. 10b)",
		Values: map[string]float64{
			"trials":       float64(n),
			"meanX":        mathx.Mean(errs.x),
			"meanY":        mathx.Mean(errs.y),
			"meanZ":        mathx.Mean(errs.z),
			"meanCombined": combined.Mean,
			"stdCombined":  combined.Std,
			"p90Combined":  combined.P90,
			"minCombined":  combined.Min,
			"maxCombined":  combined.Max,
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("axis (cm)"), [][]string{
		summaryRow("x", mathx.Summarize(errs.x)),
		summaryRow("y", mathx.Summarize(errs.y)),
		summaryRow("z", mathx.Summarize(errs.z)),
		summaryRow("combined", combined),
	})...)
	res.Lines = append(res.Lines, cdfLines("combined", errs.combined)...)
	if res.Values["meanZ"] > res.Values["meanX"] && res.Values["meanZ"] > res.Values["meanY"] {
		res.Lines = append(res.Lines,
			"z error exceeds x/y, as the paper observes: both disks spin in the x-y plane,")
		res.Lines = append(res.Lines,
			"so aperture diversity concentrates on the horizontal axes")
	}
	return res, nil
}

// RunF11a reproduces Fig. 11(a): the mean relative phase versus orientation
// over the five tag models, referenced to ρ = 90°.
func RunF11a(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 110))
	cfg := channel.DefaultConfig()
	cfg.PhaseNoiseStd = 0.02 // averaged measurements, as in the figure
	sim, err := channel.NewSimulator(cfg, rng)
	if err != nil {
		return Result{}, err
	}
	ant := antenna.Antenna{ID: 1, Position: geom.V3(0, 2.0, 0), Boresight: -math.Pi / 2, GainDBi: 8}
	freq, err := channel.ChinaBand().FrequencyHz(channel.ChinaBand().MidChannel())
	if err != nil {
		return Result{}, err
	}
	tagsPerModel := opts.trials(2)
	steps := 72 // 5° resolution
	mean := make([]float64, steps)
	count := 0
	for _, model := range tags.Catalog() {
		for k := 0; k < tagsPerModel; k++ {
			tg := tags.New(model, rng)
			// The tag sits at a fixed position; we rotate its plane and
			// reference everything to the reading at ρ = 90°.
			tagPos := geom.V3(0, 0, 0)
			readerAz := ant.Position.Sub(tagPos).Azimuth()
			phaseAt := func(rho float64) (float64, bool) {
				q := channel.Query{
					Tag: tg, TagPos: tagPos,
					TagPlaneAngle: geom.NormalizeAngle(readerAz + rho),
					Antenna:       ant, FrequencyHz: freq,
				}
				var vals []float64
				for i := 0; i < 8; i++ {
					if obs, ok := sim.Observe(q); ok {
						vals = append(vals, obs.PhaseRad)
					}
				}
				if len(vals) == 0 {
					return 0, false
				}
				m, _ := mathx.CircularMean(vals)
				return m, true
			}
			ref, ok := phaseAt(math.Pi / 2)
			if !ok {
				continue
			}
			usable := true
			series := make([]float64, steps)
			for i := 0; i < steps; i++ {
				v, ok := phaseAt(2 * math.Pi * float64(i) / float64(steps))
				if !ok {
					usable = false
					break
				}
				series[i] = mathx.WrapToPi(v - ref)
			}
			if !usable {
				continue
			}
			for i := range mean {
				mean[i] += series[i]
			}
			count++
		}
	}
	if count == 0 {
		return Result{}, fmt.Errorf("f11a: no usable tags")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range mean {
		mean[i] /= float64(count)
		lo, hi = math.Min(lo, mean[i]), math.Max(hi, mean[i])
	}
	res := Result{
		ID:    "F11a",
		Title: "Phase vs orientation across tags (Fig. 11a)",
		Values: map[string]float64{
			"tags":          float64(count),
			"peakToPeakRad": hi - lo,
		},
	}
	var rows [][]string
	for i := 0; i < steps; i += 6 { // print every 30°
		rows = append(rows, []string{
			fmt.Sprintf("%d°", i*5),
			fmt.Sprintf("%+.3f", mean[i]),
		})
	}
	res.Lines = append(res.Lines, fmt.Sprintf("mean over %d tags (5 models), reference ρ=90°:", count))
	res.Lines = append(res.Lines, table([]string{"orientation", "Δphase (rad)"}, rows)...)
	res.Lines = append(res.Lines, fmt.Sprintf("peak-to-peak: %.2f rad (stable regularity across models)", hi-lo))
	return res, nil
}

// RunF11b reproduces Fig. 11(b): localization error with and without the
// orientation calibration step, on identical observations.
func RunF11b(opts Options) (Result, error) {
	n := opts.trials(60)
	with, err := runTrials(trialSetup{}, n, opts.Seed+111)
	if err != nil {
		return Result{}, err
	}
	without, err := runTrials(trialSetup{
		locator: core.Config{DisableOrientation: true},
	}, n, opts.Seed+111) // same seed: identical worlds and placements
	if err != nil {
		return Result{}, err
	}
	// Two more arms on the same worlds: the traditional Q profile with and
	// without calibration. The orientation effect's even harmonics are
	// nearly orthogonal to Q's aperture term, so Q degrades more gracefully
	// than R without calibration — but calibration helps both.
	withQ, err := runTrials(trialSetup{
		locator: core.Config{Kind: spectrum.KindQ},
	}, n, opts.Seed+111)
	if err != nil {
		return Result{}, err
	}
	withoutQ, err := runTrials(trialSetup{
		locator: core.Config{DisableOrientation: true, Kind: spectrum.KindQ},
	}, n, opts.Seed+111)
	if err != nil {
		return Result{}, err
	}
	mWith, mWithout := mathx.Summarize(with.combined), mathx.Summarize(without.combined)
	mWithQ, mWithoutQ := mathx.Summarize(withQ.combined), mathx.Summarize(withoutQ.combined)
	res := Result{
		ID:    "F11b",
		Title: "Orientation calibration impact (Fig. 11b)",
		Values: map[string]float64{
			"trials":            float64(n),
			"meanWith":          mWith.Mean,
			"meanWithout":       mWithout.Mean,
			"meanWithQ":         mWithQ.Mean,
			"meanWithoutQ":      mWithoutQ.Mean,
			"improvement":       mWithout.Mean / mWith.Mean,
			"improvementMedian": mWithout.Median / mWith.Median,
			"improvementQ":      mWithoutQ.Mean / mWithQ.Mean,
			"p90With":           mWith.P90,
			"p90Without":        mWithout.P90,
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("variant (cm)"), [][]string{
		summaryRow("with calibration (R)", mWith),
		summaryRow("without calibration (R)", mWithout),
		summaryRow("with calibration (Q)", mWithQ),
		summaryRow("without calibration (Q)", mWithoutQ),
	})...)
	res.Lines = append(res.Lines, cdfLines("with-R", with.combined)...)
	res.Lines = append(res.Lines, cdfLines("without-R", without.combined)...)
	res.Lines = append(res.Lines,
		fmt.Sprintf("calibration improves mean error %.1f× on R (median %.1f×) and %.1f× on Q",
			res.Values["improvement"], res.Values["improvementMedian"], res.Values["improvementQ"]),
		"(the paper reports ≈1.7× for its R-based system)")
	return res, nil
}
