// Package experiment regenerates every table and figure of the paper's
// evaluation (§VII) plus the ablations DESIGN.md calls out. Each experiment
// is a Runner producing a Result: human-readable lines (the same rows or
// series the paper reports) and machine-readable key metrics used by
// EXPERIMENTS.md and the test suite.
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// Options tunes a run.
type Options struct {
	// Seed drives all randomness; the default 0 is a valid fixed seed.
	Seed int64
	// Trials overrides the experiment's default trial count (for quick
	// benchmark runs). Zero keeps the default.
	Trials int
}

// trials returns the effective trial count given an experiment default.
func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (e.g. "F10a").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Lines is the rendered report.
	Lines []string
	// Values holds key metrics by name.
	Values map[string]float64
}

// Text renders the result for a terminal.
func (r Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner regenerates one paper artifact.
type Runner struct {
	// ID is the experiment identifier.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "F1", Title: "Toy overview: three spinning tags pinpoint the reader (Fig. 1)", Run: RunF1},
		{ID: "F3", Title: "Raw phase of a spinning tag (Fig. 3)", Run: RunF3},
		{ID: "F4", Title: "Phase calibration stages (Fig. 4)", Run: RunF4},
		{ID: "F5", Title: "Orientation-only phase fluctuation (Fig. 5)", Run: RunF5},
		{ID: "F6", Title: "Q(φ) vs R(φ) power profiles (Fig. 6)", Run: RunF6},
		{ID: "F8", Title: "3D power profiles and mirror peaks (Fig. 8)", Run: RunF8},
		{ID: "F10a", Title: "2D localization error CDF (Fig. 10a)", Run: RunF10a},
		{ID: "F10b", Title: "3D localization error CDF (Fig. 10b)", Run: RunF10b},
		{ID: "F11a", Title: "Phase vs orientation across tags (Fig. 11a)", Run: RunF11a},
		{ID: "F11b", Title: "Orientation calibration impact (Fig. 11b)", Run: RunF11b},
		{ID: "F12a", Title: "Impact of disk-centers distance (Fig. 12a)", Run: RunF12a},
		{ID: "F12b", Title: "Impact of disk radius (Fig. 12b)", Run: RunF12b},
		{ID: "F12c", Title: "Impact of tag model diversity (Fig. 12c)", Run: RunF12c},
		{ID: "F12d", Title: "Impact of reader-antenna diversity (Fig. 12d)", Run: RunF12d},
		{ID: "T1", Title: "Tag model catalogue (Table I)", Run: RunT1},
		{ID: "T2", Title: "Baseline comparison (§VII-B)", Run: RunT2},
		{ID: "A1", Title: "Ablation: R-profile weight σ", Run: RunA1},
		{ID: "A2", Title: "Ablation: coarse-to-fine vs exhaustive search", Run: RunA2},
		{ID: "A3", Title: "Ablation: read rate vs accuracy", Run: RunA3},
		{ID: "A4", Title: "Ablation: multipath strength", Run: RunA4},
		{ID: "A5", Title: "Ablation: number of disks", Run: RunA5},
		{ID: "A6", Title: "Ablation: literal vs robust R reference", Run: RunA6},
		{ID: "A7", Title: "Ablation: impulsive interference, Q vs R", Run: RunA7},
		{ID: "A8", Title: "Ablation: angle spectrum vs holographic search", Run: RunA8},
		{ID: "A9", Title: "Ablation: Gen2 MAC timing vs uniform sampling", Run: RunA9},
		{ID: "X1", Title: "Extension: vertical disk resolves the z-mirror ambiguity", Run: RunX1},
		{ID: "X2", Title: "Extension: joint ML estimator vs bearing grid, with confidence", Run: RunX2},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiment: unknown id %q", id)
}

// --- shared trial machinery ---

// placement draws a reader position: azimuth in the front half-plane
// ([20°, 160°], mirroring the paper's desk-facing setup and avoiding the
// degenerate collinear geometry), distance 1.5–3.5 m, height z.
func placement(rng *rand.Rand, z float64) geom.Vec3 {
	az := geom.Radians(20 + 140*rng.Float64())
	d := 1.5 + 2.0*rng.Float64()
	return geom.V3(d*math.Cos(az), d*math.Sin(az), z)
}

// trialSetup configures a batch of localization trials.
type trialSetup struct {
	// diskZ sets the disk plane height.
	diskZ float64
	// mode3D switches placements and the pipeline to 3D.
	mode3D bool
	// modify tweaks the scenario after construction (before calibration).
	modify func(*testbed.Scenario)
	// locator configures the pipeline.
	locator core.Config
	// skipCalibration disables the orientation prelude.
	skipCalibration bool
	// placeReader overrides the default placement sampler.
	placeReader func(rng *rand.Rand) geom.Vec3
}

// axisErrors collects per-axis and combined error samples.
type axisErrors struct {
	x, y, z, combined []float64
}

// runTrials executes n independent localization trials and returns error
// samples. Each trial shares one calibrated deployment (like the paper: the
// infrastructure is installed once, the reader moves).
func runTrials(setup trialSetup, n int, seed int64) (axisErrors, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := testbed.DefaultScenario(setup.diskZ, rng)
	if setup.modify != nil {
		setup.modify(sc)
	}
	// Calibrate against a bench placement before the reader moves.
	sc.PlaceReader(geom.V3(0, 2.5, setup.diskZ))
	var registered []core.SpinningTag
	var err error
	if setup.skipCalibration {
		for _, in := range sc.Installs {
			registered = append(registered, core.SpinningTag{EPC: in.Tag.EPC, Disk: in.Disk})
		}
	} else {
		registered, err = sc.CalibratedSpinningTags(rng)
		if err != nil {
			return axisErrors{}, err
		}
	}
	loc := core.NewLocator(setup.locator)
	place := setup.placeReader
	if place == nil {
		z := setup.diskZ
		if setup.mode3D {
			place = func(rng *rand.Rand) geom.Vec3 {
				return placement(rng, 0.3+1.5*rng.Float64())
			}
		} else {
			place = func(rng *rand.Rand) geom.Vec3 { return placement(rng, z) }
		}
	}
	var errs axisErrors
	for i := 0; i < n; i++ {
		target := place(rng)
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			return axisErrors{}, fmt.Errorf("trial %d: %w", i, err)
		}
		if setup.mode3D {
			res, err := loc.Locate3D(registered, col.Obs)
			if err != nil {
				return axisErrors{}, fmt.Errorf("trial %d: %w", i, err)
			}
			errs.x = append(errs.x, math.Abs(res.Position.X-target.X))
			errs.y = append(errs.y, math.Abs(res.Position.Y-target.Y))
			errs.z = append(errs.z, math.Abs(res.Position.Z-target.Z))
			errs.combined = append(errs.combined, res.Position.DistanceTo(target))
		} else {
			res, err := loc.Locate2D(registered, col.Obs)
			if err != nil {
				return axisErrors{}, fmt.Errorf("trial %d: %w", i, err)
			}
			errs.x = append(errs.x, math.Abs(res.Position.X-target.X))
			errs.y = append(errs.y, math.Abs(res.Position.Y-target.Y))
			errs.combined = append(errs.combined, res.Position.DistanceTo(target.XY()))
		}
	}
	return errs, nil
}

// --- rendering helpers ---

// cm formats a meter quantity in centimeters.
func cm(v float64) string { return fmt.Sprintf("%.1f cm", v*100) }

// table renders an aligned text table.
func table(header []string, rows [][]string) []string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	renderRow := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	out := []string{renderRow(header)}
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	out = append(out, renderRow(rule))
	for _, row := range rows {
		out = append(out, renderRow(row))
	}
	return out
}

// summaryRow renders a labelled mathx.Summary as table cells (in cm).
func summaryRow(label string, s mathx.Summary) []string {
	return []string{
		label,
		fmt.Sprintf("%.1f", s.Mean*100),
		fmt.Sprintf("%.1f", s.Std*100),
		fmt.Sprintf("%.1f", s.Median*100),
		fmt.Sprintf("%.1f", s.P90*100),
		fmt.Sprintf("%.1f", s.Min*100),
		fmt.Sprintf("%.1f", s.Max*100),
	}
}

// summaryHeader matches summaryRow.
func summaryHeader(first string) []string {
	return []string{first, "mean", "std", "median", "p90", "min", "max"}
}

// cdfLines renders a compact CDF (a few key quantiles).
func cdfLines(label string, xs []float64) []string {
	if len(xs) == 0 {
		return nil
	}
	qs := []float64{10, 25, 50, 75, 90, 95, 100}
	parts := make([]string, 0, len(qs))
	for _, q := range qs {
		parts = append(parts, fmt.Sprintf("p%.0f=%s", q, cm(mathx.Percentile(xs, q))))
	}
	return []string{fmt.Sprintf("%s CDF: %s", label, strings.Join(parts, " "))}
}

// sortedKeys returns a map's keys in order, for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// antennaType aliases the reader-antenna type for signatures in this
// package.
type antennaType = antenna.Antenna

// newDefaultTag mints a default-model tag (helper for scenario mutation).
func newDefaultTag(rng *rand.Rand) *tags.Tag { return tags.New(tags.DefaultModel(), rng) }
