package experiment

import (
	"fmt"
	"math/rand"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// RunF12a reproduces Fig. 12(a): localization error versus the distance
// between the two disk centers. Accuracy is stable beyond ≈20 cm and
// degrades when the disks nearly touch.
func RunF12a(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "F12a",
		Title:  "Impact of disk-centers distance (Fig. 12a)",
		Values: map[string]float64{},
	}
	var rows [][]string
	for dist := 0.10; dist <= 0.80+1e-9; dist += 0.10 {
		d := dist
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				sc.Installs[0].Disk.Center = geom.V3(-d/2, 0, 0)
				sc.Installs[1].Disk.Center = geom.V3(+d/2, 0, 0)
			},
		}, n, opts.Seed+120)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@%.0fcm", d*100)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", d*100),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 50)*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"centers distance (cm)", "mean (cm)", "median (cm)", "p90 (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		"(disk radius is 10 cm, so 20 cm is the smallest physical distance; the",
		" paper finds accuracy stable for ≥20 cm and impaired below)")
	return res, nil
}

// RunF12b reproduces Fig. 12(b): localization error versus disk radius.
// Tiny radii give no aperture; very large radii break the far-field
// approximation of Eqn. 2.
func RunF12b(opts Options) (Result, error) {
	n := opts.trials(15)
	res := Result{
		ID:     "F12b",
		Title:  "Impact of disk radius (Fig. 12b)",
		Values: map[string]float64{},
	}
	var rows [][]string
	for _, radius := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20} {
		r := radius
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				for i := range sc.Installs {
					sc.Installs[i].Disk.Radius = r
				}
			},
		}, n, opts.Seed+121)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values[fmt.Sprintf("mean@%.0fcm", r*100)] = mean
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r*100),
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Percentile(errs.combined, 90)*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"radius (cm)", "mean (cm)", "p90 (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		"(the paper finds the [8, 14] cm interval flat and recommends 10 cm)")
	return res, nil
}

// RunF12c reproduces Fig. 12(c): localization error per tag model. Because
// the pipeline cancels per-device diversity and calibrates orientation, the
// five models perform nearly identically.
func RunF12c(opts Options) (Result, error) {
	n := opts.trials(12)
	res := Result{
		ID:     "F12c",
		Title:  "Impact of tag model diversity (Fig. 12c)",
		Values: map[string]float64{},
	}
	var rows [][]string
	lo, hi := 0.0, 0.0
	for idx, model := range tags.Catalog() {
		m := model
		seed := opts.Seed + 122 + int64(idx)
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				rng := rand.New(rand.NewSource(seed * 7))
				for i := range sc.Installs {
					sc.Installs[i].Tag = tags.New(m, rng)
				}
			},
		}, n, seed)
		if err != nil {
			return Result{}, err
		}
		mean := mathx.Mean(errs.combined)
		res.Values["mean@"+m.Name] = mean
		if lo == 0 || mean < lo {
			lo = mean
		}
		if mean > hi {
			hi = mean
		}
		rows = append(rows, []string{
			m.Name, m.SKU,
			fmt.Sprintf("%.1f", mean*100),
			fmt.Sprintf("%.1f", mathx.Std(errs.combined)*100),
		})
	}
	res.Values["spread"] = hi - lo
	res.Lines = append(res.Lines, table(
		[]string{"model", "SKU", "mean (cm)", "std (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		fmt.Sprintf("max−min across models: %.1f cm (paper: ≤ a few cm — diversity handled)", (hi-lo)*100))
	return res, nil
}

// RunF12d reproduces Fig. 12(d): localization error per reader antenna.
// Antenna diversity is one more θ_div contribution, cancelled by the
// relative phasors, so the four units perform alike.
func RunF12d(opts Options) (Result, error) {
	n := opts.trials(12)
	rng := rand.New(rand.NewSource(opts.Seed + 123))
	units := antenna.YeonSet(4, rng)
	res := Result{
		ID:     "F12d",
		Title:  "Impact of reader-antenna diversity (Fig. 12d)",
		Values: map[string]float64{},
	}
	var rows [][]string
	for idx, unit := range units {
		u := unit
		errs, err := runTrials(trialSetup{
			modify: func(sc *testbed.Scenario) {
				// Keep the unit's identity (gain, diversity); placement
				// and boresight are set per trial by PlaceReader.
				sc.Antenna = u
			},
		}, n, opts.Seed+124+int64(idx))
		if err != nil {
			return Result{}, err
		}
		s := mathx.Summarize(errs.combined)
		res.Values[fmt.Sprintf("mean@antenna%d", u.ID)] = s.Mean
		res.Values[fmt.Sprintf("std@antenna%d", u.ID)] = s.Std
		rows = append(rows, []string{
			u.Name,
			fmt.Sprintf("%.1f", s.Mean*100),
			fmt.Sprintf("%.1f", s.Std*100),
			fmt.Sprintf("%.1f", s.P90*100),
		})
	}
	res.Lines = append(res.Lines, table(
		[]string{"antenna", "mean (cm)", "std (cm)", "p90 (cm)"}, rows)...)
	res.Lines = append(res.Lines,
		"(the paper reports only slight differences among the four antennas)")
	return res, nil
}
