package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/estimate"
	"github.com/tagspin/tagspin/internal/gen2"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/hologram"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// collectVertical simulates one session of a tag spinning on a vertical
// disk. The tag plane azimuth is the disk plane's, so the orientation offset
// the channel injects is constant and cancels with θ_div.
func collectVertical(sim *channel.Simulator, tg *tags.Tag, disk spindisk.VerticalDisk, ant channelAntenna, freq float64, rotations, rate float64) []phase.Snapshot {
	period := time.Duration(2 * math.Pi / math.Abs(disk.Omega) * float64(time.Second))
	duration := time.Duration(rotations * float64(period))
	step := time.Duration(float64(time.Second) / rate)
	var snaps []phase.Snapshot
	for tm := time.Duration(0); tm < duration; tm += step {
		a := disk.Angle(tm)
		obs, ok := sim.Observe(channel.Query{
			Tag:           tg,
			TagPos:        disk.TagPositionAt(a),
			TagPlaneAngle: disk.PlaneAzimuth,
			Antenna:       ant,
			FrequencyHz:   freq,
		})
		if !ok {
			continue
		}
		snaps = append(snaps, phase.Snapshot{Time: tm, Phase: obs.PhaseRad, RSSIdBm: obs.RSSIdBm, FrequencyHz: freq, AntennaID: ant.ID})
	}
	return snaps
}

// channelAntenna aliases the antenna type to keep the signature readable.
type channelAntenna = antennaType

// RunX1 evaluates the paper's future-work extension: a third tag spinning on
// a *vertical* disk resolves the ±z mirror ambiguity that a dead-space rule
// can only guess at. Readers are placed above AND below the disk plane; the
// dead-space rule (prefer z ≥ 0) is right only when the reader happens to be
// above, while the vertical disk recovers the sign from the phases.
func RunX1(opts Options) (Result, error) {
	n := opts.trials(20)
	rng := rand.New(rand.NewSource(opts.Seed + 400))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return Result{}, err
	}
	vDisk := spindisk.VerticalDisk{
		Center:       geom.V3(0, -0.35, 0),
		Radius:       0.10,
		Omega:        math.Pi,
		PlaneAzimuth: math.Pi / 2, // plane faces the survey region
	}
	vTag := tags.New(tags.DefaultModel(), rng)
	vParams := spectrum.VerticalParams{Disk: vDisk}
	loc := core.NewLocator(core.Config{ZPolicy: 0}) // default: prefer z ≥ 0

	var deadSpaceErr, verticalErr []float64
	signCorrect := 0
	for i := 0; i < n; i++ {
		zSign := 1.0
		if i%2 == 1 {
			zSign = -1
		}
		p := placement(rng, 0)
		target := geom.V3(p.X, p.Y, zSign*(0.4+1.0*rng.Float64()))
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			return Result{}, err
		}
		res, err := loc.Locate3D(registered, col.Obs)
		if err != nil {
			return Result{}, err
		}
		deadSpaceErr = append(deadSpaceErr, res.Position.DistanceTo(target))

		// The vertical disk's session decides between the two candidates.
		sim, err := channel.NewSimulator(sc.Channel, rng)
		if err != nil {
			return Result{}, err
		}
		freq, err := sc.Band.FrequencyHz(sc.Band.MidChannel())
		if err != nil {
			return Result{}, err
		}
		vSnaps := collectVertical(sim, vTag, vDisk, sc.Antenna, freq, 2, 80)
		if len(vSnaps) < 10 {
			return Result{}, fmt.Errorf("x1 trial %d: only %d vertical reads", i, len(vSnaps))
		}
		relCandidate := res.Position.Sub(vDisk.Center)
		signedPolar, err := spectrum.ResolveMirror(vSnaps, vParams, spectrum.KindR,
			relCandidate.Azimuth(), relCandidate.Polar())
		if err != nil {
			return Result{}, err
		}
		chosen := res.Position
		if signedPolar < 0 && chosen.Z > 0 || signedPolar > 0 && chosen.Z < 0 {
			chosen = res.Mirror
		}
		verticalErr = append(verticalErr, chosen.DistanceTo(target))
		if chosen.Z*target.Z > 0 {
			signCorrect++
		}
	}
	mDead, mVert := mathx.Summarize(deadSpaceErr), mathx.Summarize(verticalErr)
	res := Result{
		ID:    "X1",
		Title: "Extension: vertical disk resolves the z-mirror ambiguity",
		Values: map[string]float64{
			"trials":        float64(n),
			"meanDeadSpace": mDead.Mean,
			"meanVertical":  mVert.Mean,
			"signAccuracy":  float64(signCorrect) / float64(n),
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("strategy (cm)"), [][]string{
		summaryRow("dead-space rule (z ≥ 0)", mDead),
		summaryRow("vertical third disk", mVert),
	})...)
	res.Lines = append(res.Lines,
		"readers alternate above/below the disk plane; the dead-space rule is right",
		"half the time by construction, the vertical disk picked the correct sign in",
		fmt.Sprintf("%.0f%% of %d trials (the paper leaves this as future work, §V-B)",
			100*res.Values["signAccuracy"], n))
	return res, nil
}

// RunA8 compares Tagspin's angle-spectrum pipeline against direct
// holographic localization (Miesen et al. / Tagoram style, §VIII): the
// hologram uses exact distances (no Eqn. 2 far-field approximation) and
// fuses the disks in one surface, at a much higher search cost.
func RunA8(opts Options) (Result, error) {
	n := opts.trials(15)
	rng := rand.New(rand.NewSource(opts.Seed + 401))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return Result{}, err
	}
	loc := core.NewLocator(core.Config{})
	bounds := hologram.Rect{MinX: -4, MinY: -0.5, MaxX: 4, MaxY: 4}

	var pipelineErr, hologramErr []float64
	var pipelineDur, hologramDur time.Duration
	for i := 0; i < n; i++ {
		target := placement(rng, 0)
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		res, err := loc.Locate2D(registered, col.Obs)
		if err != nil {
			return Result{}, err
		}
		pipelineDur += time.Since(start)
		pipelineErr = append(pipelineErr, res.Position.DistanceTo(target.XY()))

		var sessions []hologram.Session
		for _, st := range registered {
			snaps := col.Obs[st.EPC]
			phase.SortByTime(snaps)
			// The hologram gets the same orientation-corrected snapshots
			// the pipeline's final pass used, via the public calibration.
			corrected := st.Orientation.Apply(snaps, func(k int) float64 {
				a := st.Disk.Angle(snaps[k].Time)
				rim := st.Disk.TagPositionAt(a)
				return geom.NormalizeAngle(st.Disk.TagPlaneAngle(a) -
					geom.V3(res.Position.X, res.Position.Y, 0).Sub(rim).Azimuth())
			})
			sessions = append(sessions, hologram.Session{Disk: st.Disk, Snapshots: corrected})
		}
		start = time.Now()
		hpos, _, err := hologram.Locate2D(sessions, hologram.Options{Bounds: bounds})
		if err != nil {
			return Result{}, err
		}
		hologramDur += time.Since(start)
		hologramErr = append(hologramErr, hpos.DistanceTo(target.XY()))
	}
	mPipe, mHolo := mathx.Summarize(pipelineErr), mathx.Summarize(hologramErr)
	res := Result{
		ID:    "A8",
		Title: "Ablation: angle spectrum vs holographic search",
		Values: map[string]float64{
			"trials":       float64(n),
			"meanPipeline": mPipe.Mean,
			"meanHologram": mHolo.Mean,
			"pipelineMs":   float64(pipelineDur.Milliseconds()) / float64(n),
			"hologramMs":   float64(hologramDur.Milliseconds()) / float64(n),
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("method (cm)"), [][]string{
		summaryRow("angle spectrum (Tagspin)", mPipe),
		summaryRow("hologram (exact distances)", mHolo),
	})...)
	res.Lines = append(res.Lines, fmt.Sprintf(
		"per-locate cost: pipeline %.0f ms vs hologram %.0f ms",
		res.Values["pipelineMs"], res.Values["hologramMs"]))
	return res, nil
}

// RunA9 compares the uniform-rate read scheduler against the EPC Gen2
// inventory MAC (slotted ALOHA, adaptive Q): localization accuracy should
// be indifferent to the timing model, since the SAR pipeline only needs
// enough snapshots spread over the rotation.
func RunA9(opts Options) (Result, error) {
	n := opts.trials(15)
	uniform, err := runTrials(trialSetup{}, n, opts.Seed+402)
	if err != nil {
		return Result{}, err
	}
	macErrs, err := runTrials(trialSetup{
		modify: func(sc *testbed.Scenario) {
			sc.Gen2 = &gen2.Config{AdaptiveQ: true}
		},
	}, n, opts.Seed+402)
	if err != nil {
		return Result{}, err
	}
	mUni, mMac := mathx.Summarize(uniform.combined), mathx.Summarize(macErrs.combined)
	res := Result{
		ID:    "A9",
		Title: "Ablation: Gen2 MAC timing vs uniform sampling",
		Values: map[string]float64{
			"trials":      float64(n),
			"meanUniform": mUni.Mean,
			"meanGen2":    mMac.Mean,
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("scheduler (cm)"), [][]string{
		summaryRow("uniform 80 Hz", mUni),
		summaryRow("Gen2 MAC (slotted ALOHA)", mMac),
	})...)
	res.Lines = append(res.Lines,
		"(bursty MAC timing does not hurt — the spectrum only needs snapshots spread",
		" across the rotation; the MAC's higher singulation count per session helps)")
	return res, nil
}

// mahalanobis2D returns d'C⁻¹d for the horizontal 2×2 block of a position
// covariance, or a negative value when the block is singular.
func mahalanobis2D(dx, dy float64, cov [3][3]float64) float64 {
	c00, c01, c11 := cov[0][0], cov[0][1], cov[1][1]
	det := c00*c11 - c01*c01
	if det <= 0 {
		return -1
	}
	return (dx*(c11*dx-c01*dy) + dy*(c00*dy-c01*dx)) / det
}

// RunX2 A/Bs the two solve backends: the grid pipeline (per-tag spectrum
// peaks intersected as bearing lines) against the joint maximum-likelihood
// estimator (internal/estimate), which searches the reader position directly
// and scores by the phase likelihood across all disks. Three readouts: the
// 2D error CDFs over a shared placement sweep, the fraction of trials whose
// truth falls inside the ML 1σ confidence ellipse (≈39% if the covariance is
// calibrated), and a z-sign arm with disks at two heights, where readers
// below the planes defeat the grid's dead-space default but the likelihood
// picks the side from the evidence.
func RunX2(opts Options) (Result, error) {
	n := opts.trials(20)
	rng := rand.New(rand.NewSource(opts.Seed + 410))
	grid := core.NewLocator(core.Config{})
	ml := grid.WithEstimator(estimate.NewML(estimate.Config{}))

	// Arm 1: planar sweep on the default (coplanar) deployment — both
	// backends see identical observations, placement by placement.
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return Result{}, err
	}
	var gridErr, mlErr []float64
	covered, confTrials := 0, 0
	for i := 0; i < n; i++ {
		target := placement(rng, 0)
		sc.PlaceReader(target)
		col, err := sc.Collect(rng)
		if err != nil {
			return Result{}, err
		}
		gres, err := grid.Locate2D(registered, col.Obs)
		if err != nil {
			return Result{}, err
		}
		gridErr = append(gridErr, gres.Position.DistanceTo(target.XY()))
		mres, err := ml.Locate2D(registered, col.Obs)
		if err != nil {
			return Result{}, err
		}
		mlErr = append(mlErr, mres.Position.DistanceTo(target.XY()))
		if c := mres.Confidence; c != nil {
			if m := mahalanobis2D(mres.Position.X-target.X, mres.Position.Y-target.Y, c.Cov); m >= 0 {
				confTrials++
				if m <= 1 {
					covered++
				}
			}
		}
	}

	// Arm 2: disks at two heights break the ±z mirror symmetry, so the
	// likelihood can tell above from below; readers alternate sides, making
	// the grid's above-planes default wrong half the time by construction.
	sc2 := testbed.DefaultScenario(0, rng)
	sc2.Installs[1].Disk.Center.Z = 0.4
	sc2.PlaceReader(geom.V3(0, 2.5, 0))
	registered2, err := sc2.CalibratedSpinningTags(rng)
	if err != nil {
		return Result{}, err
	}
	var grid3Err, ml3Err []float64
	signGrid, signML := 0, 0
	for i := 0; i < n; i++ {
		zSign := 1.0
		if i%2 == 1 {
			zSign = -1
		}
		p := placement(rng, 0)
		target := geom.V3(p.X, p.Y, zSign*(0.8+0.6*rng.Float64()))
		sc2.PlaceReader(target)
		col, err := sc2.Collect(rng)
		if err != nil {
			return Result{}, err
		}
		gres, err := grid.Locate3D(registered2, col.Obs)
		if err != nil {
			return Result{}, err
		}
		grid3Err = append(grid3Err, gres.Position.DistanceTo(target))
		if gres.Position.Z*target.Z > 0 {
			signGrid++
		}
		mres, err := ml.Locate3D(registered2, col.Obs)
		if err != nil {
			return Result{}, err
		}
		ml3Err = append(ml3Err, mres.Position.DistanceTo(target))
		if mres.Position.Z*target.Z > 0 {
			signML++
		}
	}

	mGrid, mML := mathx.Summarize(gridErr), mathx.Summarize(mlErr)
	mGrid3, mML3 := mathx.Summarize(grid3Err), mathx.Summarize(ml3Err)
	coverage := 0.0
	if confTrials > 0 {
		coverage = float64(covered) / float64(confTrials)
	}
	res := Result{
		ID:    "X2",
		Title: "Extension: joint ML estimator vs bearing grid, with confidence",
		Values: map[string]float64{
			"trials":         float64(n),
			"mean2DGrid":     mGrid.Mean,
			"mean2DML":       mML.Mean,
			"coverage1Sigma": coverage,
			"mean3DGrid":     mGrid3.Mean,
			"mean3DML":       mML3.Mean,
			"signAccGrid":    float64(signGrid) / float64(n),
			"signAccML":      float64(signML) / float64(n),
		},
	}
	res.Lines = append(res.Lines, table(summaryHeader("backend, 2D (cm)"), [][]string{
		summaryRow("bearing grid", mGrid),
		summaryRow("joint ML", mML),
	})...)
	res.Lines = append(res.Lines, cdfLines("grid 2D", gridErr)...)
	res.Lines = append(res.Lines, cdfLines("ml   2D", mlErr)...)
	res.Lines = append(res.Lines, fmt.Sprintf(
		"ML 1σ ellipse contained the truth in %.0f%% of %d trials (nominal 39%% for a calibrated 2D Gaussian)",
		100*coverage, confTrials))
	res.Lines = append(res.Lines, table(summaryHeader("backend, 3D staggered (cm)"), [][]string{
		summaryRow("bearing grid (z ≥ planes)", mGrid3),
		summaryRow("joint ML (likelihood)", mML3),
	})...)
	res.Lines = append(res.Lines, fmt.Sprintf(
		"readers alternate above/below the staggered disk planes: grid picked the correct z sign in %.0f%%, ML in %.0f%% of %d trials",
		100*res.Values["signAccGrid"], 100*res.Values["signAccML"], n))
	return res, nil
}
